// hcsim quickstart: generate a workload trace, simulate the monolithic
// baseline and a helper-cluster machine, and print the comparison.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "power/power_model.hpp"
#include "sim/simulator.hpp"

using namespace hcsim;

int main() {
  // 1. Pick a workload. SPEC Int 2000 profiles ship with the library; you
  //    can also build your own WorkloadProfile (see custom_workload.cpp).
  const WorkloadProfile& gcc = spec_profile("gcc");

  // 2. Pick a steering configuration. steering_ir() is the paper's best
  //    (8-8-8 + BR + LR + CR + CP + instruction splitting).
  const SteeringConfig steer = steering_ir();

  // 3. Run both machines on the same 200k-µop trace.
  const AppRun run = run_app(gcc, steer, 200000);

  std::printf("%s", describe_machine(helper_machine(steer)).c_str());
  std::printf("\nworkload           : %s (%llu uops)\n", run.app.c_str(),
              static_cast<unsigned long long>(run.helper.uops));
  std::printf("baseline IPC       : %.3f\n", run.baseline.ipc);
  std::printf("helper-cluster IPC : %.3f\n", run.helper.ipc);
  std::printf("speedup            : %.2f%%\n", run.perf_increase_pct());
  std::printf("steered to helper  : %.1f%%\n", 100.0 * run.helper.helper_frac());
  std::printf("copy instructions  : %.1f%%\n", 100.0 * run.helper.copy_frac());
  std::printf("width pred accuracy: %.1f%%\n", 100.0 * run.helper.wp_accuracy());

  // 4. Energy-delay^2 comparison (Section 3.7).
  const PowerReport pb = analyze_power(run.baseline, monolithic_baseline());
  const PowerReport ph = analyze_power(run.helper, helper_machine(steer));
  std::printf("ED^2 baseline/helper: %.3f (>1 means the helper wins)\n",
              pb.ed2p / ph.ed2p);
  return 0;
}
