// hcsim example: define a custom workload profile, inspect the trace it
// generates, persist it to disk, and compare steering schemes on it.
//
// This is the path a library user takes to study their own workload class:
// describe its width character with a WorkloadProfile, then measure what a
// helper cluster would buy.
#include <cstdio>

#include "analysis/trace_stats.hpp"
#include "sim/simulator.hpp"

using namespace hcsim;

int main() {
  // An image-filter-like kernel: byte pixels, small accumulators, regular
  // loops, almost no pointer chasing, modest cross-width traffic.
  WorkloadProfile prof;
  prof.name = "pixel_filter";
  prof.seed = 2026;
  prof.num_loops = 10;
  prof.w_narrow_chain = 2.0;   // pixel byte math
  prof.w_wide_chain = 0.6;     // row pointer arithmetic
  prof.w_cr_chain = 1.4;       // base+offset addressing
  prof.w_branchy_chain = 0.2;  // clamping branches
  prof.w_muldiv_chain = 0.08;  // scaling
  prof.p_cross_width_use = 0.12;
  prof.value_stability = 0.96;
  prof.byte_footprint_log2 = 16;  // a 64KB image tile

  const u64 n = 150000;
  const Trace trace = generate_trace(prof, n);

  // Width character of the generated trace.
  const auto nd = narrow_dependency_stats(trace);
  const auto cs = carry_stats(trace);
  std::printf("workload '%s': %zu uops from %zu static uops\n",
              prof.name.c_str(), trace.records.size(), trace.program.uops.size());
  std::printf("  narrow-dependent operands: %.1f%%\n",
              nd.operands_narrow_dependent.percent());
  std::printf("  carry confined (loads)   : %.1f%%\n", cs.load_confined.percent());

  // Traces serialize for reuse across tools.
  if (save_trace(trace, "/tmp/pixel_filter.hctrace")) {
    Trace reloaded;
    if (load_trace(reloaded, "/tmp/pixel_filter.hctrace"))
      std::printf("  trace round-tripped through /tmp/pixel_filter.hctrace\n");
  }

  // Compare every steering scheme on this workload.
  const std::vector<std::pair<const char*, SteeringConfig>> schemes = {
      {"8_8_8", steering_888()},
      {"+BR+LR", steering_888_br_lr()},
      {"+CR", steering_888_br_lr_cr()},
      {"+CP", steering_cp()},
      {"+IR", steering_ir()},
  };
  const SimResult base = simulate(monolithic_baseline(), trace);
  std::printf("\n%-8s %10s %10s %9s\n", "scheme", "perf+%", "steered%", "copies%");
  for (const auto& [name, cfg] : schemes) {
    const SimResult r = simulate(helper_machine(cfg), trace);
    std::printf("%-8s %10.1f %10.1f %9.1f\n", name,
                (r.speedup_vs(base) - 1.0) * 100.0, 100.0 * r.helper_frac(),
                100.0 * r.copy_frac());
  }
  return 0;
}
