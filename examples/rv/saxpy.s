# saxpy — integer y[i] = a*x[i] + y[i] over 512 byte elements, 16 passes,
# with a = 7 strength-reduced to shifts/adds. Narrow element math against
# wide pointer arithmetic keeps both clusters busy.
.text
main:
    li   a7, 16             # passes
pass:
    la   a0, xvec
    la   a1, yvec
    li   a2, 512            # elements
elem:
    lbu  a3, 0(a0)
    slli a4, a3, 3          # 8*x
    sub  a4, a4, a3         # 7*x
    lbu  a5, 0(a1)
    add  a4, a4, a5
    andi a4, a4, 0xFF       # stay a byte vector
    sb   a4, 0(a1)
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    bnez a2, elem
    addi a7, a7, -1
    bnez a7, pass
    # return the final first element
    la   a1, yvec
    lbu  a0, 0(a1)
    ret

.data
xvec:
    .byte 1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8
    .zero 496
yvec:
    .byte 9, 8, 7, 6, 5, 4, 3, 2, 9, 8, 7, 6, 5, 4, 3, 2
    .zero 496
