# memcpy — byte-wise copy of a 4 KiB buffer, repeated over 4 passes.
# Byte loads/stores with small induction variables: prime LR territory
# (8-bit loads replicate into both register files) and narrow steering.
.text
main:
    li   a4, 4              # passes
pass:
    la   a0, src            # src cursor
    la   a1, dst            # dst cursor
    li   a2, 4096           # bytes remaining
copy:
    lbu  a3, 0(a0)
    sb   a3, 0(a1)
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    bnez a2, copy
    addi a4, a4, -1
    bnez a4, pass
    # checksum the first 16 destination bytes so the copy is observable
    la   a1, dst
    li   a2, 16
    li   a0, 0
check:
    lbu  a3, 0(a1)
    add  a0, a0, a3
    addi a1, a1, 1
    addi a2, a2, -1
    bnez a2, check
    ret

.data
src:
    .byte 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
    .zero 4080
dst:
    .zero 4096
