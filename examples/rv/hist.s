# hist — 16-bin byte histogram over a 2 KiB buffer, 8 passes.
# The classic read-modify-write indexing pattern: a narrow value (bin index)
# scaled into a wide base address — the 8+32->32 shape the CR scheme covers.
.text
main:
    li   a6, 8              # passes
pass:
    la   a0, buf
    li   a1, 2048           # bytes
scan:
    lbu  a2, 0(a0)
    andi a2, a2, 15         # bin = byte & 15
    slli a2, a2, 2          # word offset
    la   a3, bins
    add  a3, a3, a2
    lw   a4, 0(a3)
    addi a4, a4, 1
    sw   a4, 0(a3)
    addi a0, a0, 1
    addi a1, a1, -1
    bnez a1, scan
    addi a6, a6, -1
    bnez a6, pass
    # return the count of bin 0
    la   a3, bins
    lw   a0, 0(a3)
    ret

.data
buf:
    .byte 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15
    .byte 1, 3, 5, 7, 9, 11, 13, 15, 0, 2, 4, 6, 8, 10, 12, 14
    .zero 2016
.align 2
bins:
    .zero 64
