# strlen — C-string scan over a long text, repeated over 64 passes.
# Byte loads feeding compare-and-branch: the cracked cmp+jcc pairs give the
# BR scheme a stream of narrow flags producers to chase.
.text
main:
    li   a5, 64             # passes
    li   a0, 0              # accumulated length
pass:
    la   a1, text
loop:
    lbu  a2, 0(a1)
    beqz a2, done
    addi a1, a1, 1
    addi a0, a0, 1
    j    loop
done:
    addi a5, a5, -1
    bnez a5, pass
    ret

.data
    .zero 512               # keep the string above address 256: the cursor
                            # stays wide, so pointer chasing loads balance
                            # onto the wide cluster while byte compares and
                            # counters fill the helper
text:
    .asciz "the quick brown fox jumps over the lazy dog while the helper cluster executes narrow bytes at double clock and the wide cluster keeps the pointers"
