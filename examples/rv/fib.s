# fib — recursive fibonacci(17) with a real call stack.
# Exercises jal/jalr cracking (link-register movimm + jump), stack
# loads/stores through sp, and deeply data-dependent narrow arithmetic.
.text
main:
    li   a0, 17
    call fib
    ecall                   # call clobbered ra: halt explicitly

fib:
    li   t0, 2
    blt  a0, t0, base       # fib(0)=0, fib(1)=1
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    mv   s0, a0             # save n
    addi a0, a0, -1
    call fib                # fib(n-1)
    sw   a0, 4(sp)          # spill partial sum
    addi a0, s0, -2
    call fib                # fib(n-2)
    lw   t1, 4(sp)
    add  a0, a0, t1
    lw   s0, 8(sp)
    lw   ra, 12(sp)
    addi sp, sp, 16
base_ret:
    ret
base:
    ret                     # a0 already 0 or 1
