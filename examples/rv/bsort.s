# bsort — bubble sort of 96 bytes, full O(n^2) passes.
# Byte compares drive taken/not-taken data-dependent branches (hard for the
# predictor), and the swap path stresses byte store-to-load forwarding.
.text
main:
    li   a0, 96             # n
    addi a1, a0, -1         # outer counter
outer:
    la   a2, arr
    li   a3, 0              # swapped flag
    mv   a4, a1             # inner counter
inner:
    lbu  a5, 0(a2)
    lbu  a6, 1(a2)
    bgeu a6, a5, no_swap    # in order?
    sb   a6, 0(a2)
    sb   a5, 1(a2)
    li   a3, 1
no_swap:
    addi a2, a2, 1
    addi a4, a4, -1
    bnez a4, inner
    beqz a3, sorted         # early exit when already sorted
    addi a1, a1, -1
    bnez a1, outer
sorted:
    la   a2, arr            # return first element (smallest)
    lbu  a0, 0(a2)
    ret

.data
arr:
    .byte 96, 95, 94, 93, 92, 91, 90, 89, 88, 87, 86, 85, 84, 83, 82, 81
    .byte 80, 79, 78, 77, 76, 75, 74, 73, 72, 71, 70, 69, 68, 67, 66, 65
    .byte 64, 63, 62, 61, 60, 59, 58, 57, 56, 55, 54, 53, 52, 51, 50, 49
    .byte 48, 47, 46, 45, 44, 43, 42, 41, 40, 39, 38, 37, 36, 35, 34, 33
    .byte 32, 31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17
    .byte 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1
