# crc32 — bitwise CRC-32 (reflected polynomial 0xEDB88320) over a 512-byte
# message. The inner bit loop mixes a wide running CRC with narrow byte data
# and single-bit masks: width-predictable narrow chains against wide xors.
.text
main:
    la   a0, msg
    li   a1, 512            # message bytes
    li   a2, -1             # crc = 0xFFFFFFFF
    li   a6, 0xEDB88320     # polynomial
byte_loop:
    lbu  a3, 0(a0)
    xor  a2, a2, a3
    li   a4, 8              # bit counter
bit_loop:
    andi a5, a2, 1
    srli a2, a2, 1
    beqz a5, no_poly
    xor  a2, a2, a6
no_poly:
    addi a4, a4, -1
    bnez a4, bit_loop
    addi a0, a0, 1
    addi a1, a1, -1
    bnez a1, byte_loop
    not  a0, a2             # final crc
    ret

.data
msg:
    .byte 0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39
    .zero 503
