# dot — integer dot product of two 256-element byte vectors, 8 passes.
# Byte loads with a shared induction variable; the accumulator grows wide
# while the element chains stay narrow (classic 8+32 CR shape on indexing).
.text
main:
    li   a7, 8              # passes
    li   a0, 0              # accumulator
pass:
    la   a1, vec_a
    la   a2, vec_b
    li   a3, 256            # elements
elem:
    lbu  a4, 0(a1)
    lbu  a5, 0(a2)
    mul_step:               # 8-bit multiply via shift-add (RV32I has no mul)
    li   a6, 0
    li   t0, 8
mul_loop:
    andi t1, a5, 1
    beqz t1, mul_skip
    add  a6, a6, a4
mul_skip:
    slli a4, a4, 1
    srli a5, a5, 1
    addi t0, t0, -1
    bnez t0, mul_loop
    add  a0, a0, a6
    addi a1, a1, 1
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, elem
    addi a7, a7, -1
    bnez a7, pass
    ret

.data
vec_a:
    .byte 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
    .zero 240
vec_b:
    .byte 2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5
    .zero 240
