// hcsim example: sweep every steering configuration of the paper across the
// SPEC Int 2000 suite and print the per-scheme summary that Section 3
// walks through (steered%, copies%, performance increase).
#include <cstdio>
#include <vector>

#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace hcsim;

int main() {
  const std::vector<std::pair<const char*, SteeringConfig>> schemes = {
      {"8_8_8", steering_888()},
      {"8_8_8+BR", steering_888_br()},
      {"8_8_8+BR+LR", steering_888_br_lr()},
      {"8_8_8+BR+LR+CR", steering_888_br_lr_cr()},
      {"+CP", steering_cp()},
      {"+IR", steering_ir()},
      {"+IR(nodest)", steering_ir_nodest()},
      {"+IR(block)", steering_ir_block()},
  };

  TextTable table({"scheme", "steered%", "copies%", "perf+%", "fatal%", "w2n-nready%",
                   "n2w-nready%"});
  for (const auto& [name, cfg] : schemes) {
    const std::vector<AppRun> runs = run_spec_suite(cfg);
    double steered = 0, copies = 0, fatal = 0, w2n = 0, n2w = 0;
    std::vector<double> speedups;
    for (const AppRun& r : runs) {
      steered += 100.0 * r.helper.helper_frac();
      copies += 100.0 * r.helper.copy_frac();
      fatal += 100.0 * r.helper.fatal_rate();
      w2n += r.helper.nready_w2n_pct();
      n2w += r.helper.nready_n2w_pct();
      speedups.push_back(r.speedup());
    }
    const double n = static_cast<double>(runs.size());
    table.add_row({name, TextTable::num(steered / n, 1), TextTable::num(copies / n, 1),
                   TextTable::num((geomean(speedups) - 1.0) * 100.0, 1),
                   TextTable::num(fatal / n, 2), TextTable::num(w2n / n, 1),
                   TextTable::num(n2w / n, 1)});
  }
  std::printf("%s", table.render().c_str());

  // Per-app detail for the full IR configuration.
  std::printf("\nPer-app detail, +IR configuration:\n");
  TextTable detail({"app", "base IPC", "helper IPC", "perf+%", "steered%", "copies%"});
  for (const AppRun& r : run_spec_suite(steering_ir())) {
    detail.add_row({r.app, TextTable::num(r.baseline.ipc, 3),
                    TextTable::num(r.helper.ipc, 3),
                    TextTable::num(r.perf_increase_pct(), 1),
                    TextTable::num(100.0 * r.helper.helper_frac(), 1),
                    TextTable::num(100.0 * r.helper.copy_frac(), 1)});
  }
  std::printf("%s", detail.render().c_str());
  return 0;
}
