// hcsim example: deep-dive inspector for one workload.
//
// Usage: trace_inspector [app] [scheme]
//   app    — a SPEC Int 2000 name (default gcc)
//   scheme — one of: 888 br lr cr cp ir irn (default ir)
//
// Prints the workload's width character (Figure 1/11/13 statistics), then
// simulates baseline + the chosen scheme and dumps the full pipeline
// statistics: steering mix, copies by direction, predictor behaviour,
// imbalance, cache behaviour.
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/trace_stats.hpp"
#include "power/power_model.hpp"
#include "sim/simulator.hpp"

using namespace hcsim;

static SteeringConfig scheme_by_name(const std::string& s) {
  if (s == "888") return steering_888();
  if (s == "br") return steering_888_br();
  if (s == "lr") return steering_888_br_lr();
  if (s == "cr") return steering_888_br_lr_cr();
  if (s == "cp") return steering_cp();
  if (s == "irn") return steering_ir_nodest();
  return steering_ir();
}

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "gcc";
  const std::string scheme = argc > 2 ? argv[2] : "ir";
  const WorkloadProfile& prof = spec_profile(app);
  const SteeringConfig steer = scheme_by_name(scheme);

  const Trace& trace = cached_trace(prof, default_trace_len());
  const NarrowDependencyStats nd = narrow_dependency_stats(trace);
  const CarryStats cs = carry_stats(trace);
  const DistanceStats ds = producer_consumer_distance(trace);

  std::printf("== workload character: %s (%zu uops, %zu static) ==\n", app.c_str(),
              trace.records.size(), trace.program.uops.size());
  std::printf("narrow-dependent operands : %.1f%%\n", nd.operands_narrow_dependent.percent());
  std::printf("ALU 1-narrow / 2n->wide / 2n->narrow : %.1f%% / %.1f%% / %.1f%%\n",
              nd.alu_one_narrow.percent(), nd.alu_two_narrow_wide_result.percent(),
              nd.alu_two_narrow_narrow_result.percent());
  std::printf("carry confined (load/arith) : %.1f%% / %.1f%%\n",
              cs.load_confined.percent(), cs.arith_confined.percent());
  std::printf("producer-consumer distance  : %.2f uops\n", ds.mean());

  const AppRun run = run_app(prof, steer);
  const SimResult& b = run.baseline;
  const SimResult& h = run.helper;
  std::printf("\n== %s vs baseline ==\n", h.config.c_str());
  std::printf("IPC                  : %.3f -> %.3f  (%+.1f%%)\n", b.ipc, h.ipc,
              run.perf_increase_pct());
  std::printf("baseline bpred acc   : %.1f%%  dl0 %.1f%%  ul1 %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(b.branch_mispredicts) /
                                 static_cast<double>(b.branches ? b.branches : 1)),
              100.0 * b.dl0_hit_rate, 100.0 * b.ul1_hit_rate);
  std::printf("steered to helper    : %.1f%% (BR %llu, CR %llu, splits %llu)\n",
              100.0 * h.helper_frac(), (unsigned long long)h.br_steered,
              (unsigned long long)h.cr_steered, (unsigned long long)h.split_uops);
  std::printf("copies               : %.1f%%  (w2n %llu, n2w %llu, prefetch %llu)\n",
              100.0 * h.copy_frac(), (unsigned long long)h.copies_w2n,
              (unsigned long long)h.copies_n2w, (unsigned long long)h.copy_prefetches);
  std::printf("copy wait mean       : %.1f ticks (p50 %llu p90 %llu p99 %llu, >63: %.1f%%)\n",
              h.copy_wait.mean(), (unsigned long long)h.copy_wait.quantile(0.5),
              (unsigned long long)h.copy_wait.quantile(0.9),
              (unsigned long long)h.copy_wait.quantile(0.99),
              100.0 * (1.0 - h.copy_wait.fraction_at_most(63)));
  std::printf("LR replicas          : %llu\n", (unsigned long long)h.replicated_loads);
  std::printf("width pred           : correct %.2f%%  nonfatal %.2f%%  fatal %.2f%%\n",
              100.0 * h.wp_accuracy(),
              100.0 * static_cast<double>(h.wp_nonfatal) /
                  static_cast<double>(h.wp_correct + h.wp_nonfatal + h.wp_fatal),
              100.0 * h.fatal_rate());
  std::printf("CR violations        : %llu\n", (unsigned long long)h.cr_violations);
  std::printf("CP useful/wasted     : %llu / %llu\n", (unsigned long long)h.cp_useful,
              (unsigned long long)h.cp_wasted);
  std::printf("NREADY w2n / n2w     : %.1f%% / %.1f%%\n", h.nready_w2n_pct(),
              h.nready_n2w_pct());
  std::printf("issues wide/helper/fp: %llu / %llu / %llu\n",
              (unsigned long long)h.counters.get("issue_wide"),
              (unsigned long long)h.counters.get("issue_helper"),
              (unsigned long long)h.counters.get("issue_fp"));
  std::printf("flush refills        : %llu\n",
              (unsigned long long)h.counters.get("flush_refills"));
  std::printf("mob forwards         : %llu\n",
              (unsigned long long)h.counters.get("mob_forwards"));

  const PowerReport pb = analyze_power(b, monolithic_baseline());
  const PowerReport ph = analyze_power(h, helper_machine(steer));
  std::printf("energy base/helper   : %.0f / %.0f  (ED2 ratio %.3f)\n", pb.energy,
              ph.energy, pb.ed2p / ph.ed2p);
  return 0;
}
