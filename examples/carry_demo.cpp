// hcsim example: the paper's Figure 10 worked example — carry-confined
// address generation on an 8-bit AGU — plus a live demonstration of the CR
// predictor learning and the flush recovery when a carry escapes.
#include <cstdio>

#include "predict/width_predictor.hpp"
#include "util/narrow.hpp"

using namespace hcsim;

int main() {
  // Figure 10: Loadbyte R1, (R2+R3) with R2 = FFFC4A02, R3 = 0000001C.
  const u32 r2 = 0xFFFC4A02u;
  const u32 r3 = 0x0000001Cu;
  const u32 addr = r2 + r3;
  std::printf("Figure 10 worked example\n");
  std::printf("  R2      = %08X (32-bit base)\n", r2);
  std::printf("  R3      = %08X (8-bit offset)\n", r3);
  std::printf("  R2+R3   = %08X\n", addr);
  std::printf("  low-byte add: %02X + %02X = %02X, carry out: %s\n", r2 & 0xFF,
              r3 & 0xFF, addr & 0xFF, carry_confined(r2, r3) ? "no" : "yes");
  std::printf("  => the 8-bit AGU in the helper cluster computes the LSB and\n");
  std::printf("     the upper 24 bits come from the tagged wide register.\n\n");

  // A case where the carry escapes: the CR hardware catches it via the
  // carry-out signal and the pipeline flushes + resteers.
  const u32 base2 = 0xFFFC4AF0u;
  std::printf("counter-example: %08X + %02X -> %08X, confined: %s\n", base2, 0x20,
              base2 + 0x20, carry_confined(base2, 0x20) ? "yes" : "no");

  // CR predictor behaviour on a drifting pattern: a loop whose index grows
  // until the sum crosses the byte boundary.
  std::printf("\nCR predictor on a loop whose offset grows past the boundary:\n");
  WidthPredictor pred;
  const u32 pc = 0x42;
  int steered = 0, violations = 0, missed = 0;
  for (u32 i = 0; i < 300; ++i) {
    const u32 offset = i & 0xFF;
    const bool confined = carry_confined(0xFFFC4A00u, offset);
    const auto p = pred.predict_carry(pc);
    if (p.narrow && p.confident) {
      ++steered;
      if (!confined) ++violations;  // fatal: flush + resteer
    } else if (confined) {
      ++missed;  // could have gone to the helper
    }
    pred.train_carry(pc, confined);
  }
  std::printf("  300 instances: %d steered to the helper AGU, %d carry "
              "violations (flushes), %d missed opportunities\n",
              steered, violations, missed);
  std::printf("  predictor accuracy: %.1f%%\n", pred.carry_accuracy().percent());
  return 0;
}
