// hcsim_sweep — run a named experiment sweep on the thread-pool runner and
// emit the aggregated report, optionally mirrored to CSV/JSON for plotting.
//
// Usage:
//   hcsim_sweep list                (or: hcsim_sweep --list)
//   hcsim_sweep <sweep> [--threads N] [--len N] [--seeds s1,s2,...]
//                       [--csv FILE] [--json FILE] [--quiet]
//                       [--sampled] [--sample-warmup N] [--sample-measure N]
//                       [--sample-period N] [--sample-windows N]
//                       [--compare-full] [--max-rel-err X]
//                       [--connect SOCK] [--journal-dir DIR] [--retry N]
//                       [--retry-backoff-ms N] [--timeout-ms N] [--no-fallback]
//   hcsim_sweep --connect SOCK --shutdown
//
// sweep: fig06 fig12 cumulative edp helper_design rv smoke
// --threads 0 uses every hardware thread; --threads 1 (default) runs
// serially. Results are identical across thread counts.
//
// --connect SOCK runs the sweep fault-tolerantly over a hcsimd socket: the
// grid is expanded into content-addressed jobs client-side, submitted in
// kRunJobs batches, and any transport failure triggers reconnect with capped
// exponential backoff (--retry attempts, --retry-backoff-ms base) followed
// by idempotent re-submission of only the still-missing jobs. When the
// daemon stays unreachable the remainder is computed in-process (--threads
// applies there; --no-fallback fails instead). --journal-dir DIR keeps a
// client-side journal (DIR/client.journal) so a killed hcsim_sweep rerun
// resumes from disk; it also enables journaled in-process runs without
// --connect. Because every job is a pure function of its request, the CSV
// is byte-identical to an uninterrupted in-process run no matter how the
// transport behaved. --compare-full needs per-point data and is not
// available in fault-tolerant mode. --timeout-ms bounds each protocol frame
// (default: block forever).
//
// Exit codes: 0 success; 1 runtime failure (I/O, --max-rel-err exceeded);
// 2 usage error or unknown sweep; 3 connect/transport failure after retries
// (including --shutdown over a dead socket, and sweeps with --no-fallback).
//
// Sampling: --sampled turns on warm-up/measure windowed simulation for every
// point (defaults warmup=20000 measure=80000, period auto ~20 windows); any
// --sample-* flag implies --sampled and overrides the HCSIM_SAMPLE_*
// environment. --compare-full additionally runs the full (unsampled) sweep
// and prints the sampled-vs-full error table; with --max-rel-err X the exit
// status is 1 when any metric's worst relative error exceeds X.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "sample/spec.hpp"
#include "svc/client.hpp"
#include "svc/remote_sweep.hpp"

using namespace hcsim;
using namespace hcsim::exp;

namespace {

/// Sanity cap on worker threads (also guards the u64 -> unsigned narrowing).
constexpr unsigned kMaxThreads = 4096;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <sweep|list|--list> [--threads N] [--len N] [--seeds s1,s2,...]\n"
               "          [--csv FILE] [--json FILE] [--quiet]\n"
               "          [--sampled] [--sample-warmup N] [--sample-measure N]\n"
               "          [--sample-period N] [--sample-windows N]\n"
               "          [--compare-full] [--max-rel-err X]\n"
               "          [--connect SOCK] [--journal-dir DIR] [--retry N]\n"
               "          [--retry-backoff-ms N] [--timeout-ms N] [--no-fallback]\n"
               "          [--shutdown]\n"
               "exit codes: 0 ok, 1 runtime failure, 2 usage/unknown sweep,\n"
               "            3 connect/transport failure after retries\n"
               "sweeps:",
               argv0);
  for (const std::string& n : sweep_names()) std::fprintf(stderr, " %s", n.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

int print_sweep_list() {
  for (const std::string& n : sweep_names()) {
    const auto spec = find_sweep(n);
    if (!spec) continue;  // unreachable: names come from the same table
    std::printf("%-14s %3llu points (%zu apps x %zu configs)\n", n.c_str(),
                static_cast<unsigned long long>(spec->num_points()),
                spec->workloads.size(), spec->variants.size());
  }
  return 0;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << content;
  return f.good();
}

/// Parse one decimal integer, rejecting trailing garbage ("100k") and,
/// unless `allow_zero`, the value 0.
u64 parse_u64(const char* flag, const char* s, bool allow_zero) {
  char* end = nullptr;
  const u64 v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || (!allow_zero && v == 0)) {
    std::fprintf(stderr, "%s: bad value '%s' (%s integer required)\n", flag, s,
                 allow_zero ? "non-negative" : "positive");
    std::exit(2);
  }
  return v;
}

/// Parse "s1,s2,..." as positive integers. Exits with a usage error on
/// malformed input or a 0 value — seed 0 is the runner's "keep the
/// profile's own seed" placeholder, never a valid explicit seed.
std::vector<u64> parse_u64_list(const char* flag, const char* s) {
  std::vector<u64> out;
  for (const char* p = s; *p;) {
    char* end = nullptr;
    const u64 v = std::strtoull(p, &end, 10);
    if (end == p || (*end != '\0' && *end != ',') || v == 0) {
      std::fprintf(stderr, "%s: bad value in list '%s' (positive integers only)\n",
                   flag, s);
      std::exit(2);
    }
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  if (out.empty()) {
    std::fprintf(stderr, "%s: empty list\n", flag);
    std::exit(2);
  }
  return out;
}

/// Parse one positive decimal double ("0.05"), rejecting trailing garbage.
double parse_double(const char* flag, const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v > 0.0)) {
    std::fprintf(stderr, "%s: bad value '%s' (positive number required)\n", flag, s);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string sweep_name;
  int flag_start = 2;
  if (argv[1][0] == '-') {
    flag_start = 1;  // flag-only invocation (--list, --connect ... --shutdown)
  } else {
    sweep_name = argv[1];
  }
  if (sweep_name == "list") return print_sweep_list();

  std::optional<SweepSpec> spec;
  if (!sweep_name.empty()) {
    spec = find_sweep(sweep_name);
    if (!spec) {
      std::fprintf(stderr, "unknown sweep '%s'\n", sweep_name.c_str());
      return usage(argv[0]);
    }
  }

  RunOptions opts;
  std::string csv_path, json_path, connect_path, journal_dir;
  u64 retries = 5;
  u64 retry_backoff_ms = 100;
  u64 timeout_ms = 0;  // 0 = no per-frame deadline
  bool no_fallback = false;
  bool shutdown_daemon = false;
  bool quiet = false;
  // Sampling starts from the HCSIM_SAMPLE_* environment so CLI flags only
  // override what they name; any --sample-* flag implies --sampled.
  sample::SampleSpec sample_spec = sample::spec_from_env();
  bool sampled = sample_spec.enabled();
  bool compare_full = false;
  double max_rel_err = 0.0;  // 0 = no bound enforced
  bool have_len = false, have_seeds = false;
  u64 len_override = 0;
  std::vector<u64> seed_override;
  for (int i = flag_start; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      const u64 threads = parse_u64("--threads", next(), /*allow_zero=*/true);
      if (threads > kMaxThreads) {
        std::fprintf(stderr, "--threads: %llu exceeds the limit of %u\n",
                     static_cast<unsigned long long>(threads), kMaxThreads);
        return 2;
      }
      opts.threads = static_cast<unsigned>(threads);
    } else if (arg == "--len") {
      len_override = parse_u64("--len", next(), /*allow_zero=*/false);
      have_len = true;
    } else if (arg == "--seeds") {
      seed_override = parse_u64_list("--seeds", next());
      have_seeds = true;
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--sampled") {
      sampled = true;
    } else if (arg == "--sample-warmup") {
      sample_spec.warmup = parse_u64("--sample-warmup", next(), /*allow_zero=*/true);
      sampled = true;
    } else if (arg == "--sample-measure") {
      sample_spec.measure = parse_u64("--sample-measure", next(), /*allow_zero=*/false);
      sampled = true;
    } else if (arg == "--sample-period") {
      sample_spec.period = parse_u64("--sample-period", next(), /*allow_zero=*/true);
      sampled = true;
    } else if (arg == "--sample-windows") {
      sample_spec.max_windows =
          parse_u64("--sample-windows", next(), /*allow_zero=*/true);
      sampled = true;
    } else if (arg == "--compare-full") {
      compare_full = true;
    } else if (arg == "--max-rel-err") {
      max_rel_err = parse_double("--max-rel-err", next());
    } else if (arg == "--connect") {
      connect_path = next();
    } else if (arg == "--journal-dir") {
      journal_dir = next();
    } else if (arg == "--retry") {
      retries = parse_u64("--retry", next(), /*allow_zero=*/false);
      if (retries > 1000) {
        std::fprintf(stderr, "--retry: %llu exceeds the limit of 1000\n",
                     static_cast<unsigned long long>(retries));
        return 2;
      }
    } else if (arg == "--retry-backoff-ms") {
      retry_backoff_ms = parse_u64("--retry-backoff-ms", next(), /*allow_zero=*/true);
    } else if (arg == "--timeout-ms") {
      timeout_ms = parse_u64("--timeout-ms", next(), /*allow_zero=*/false);
    } else if (arg == "--no-fallback") {
      no_fallback = true;
    } else if (arg == "--shutdown") {
      shutdown_daemon = true;
    } else if (arg == "--list") {
      return print_sweep_list();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (shutdown_daemon) {
    if (connect_path.empty()) {
      std::fprintf(stderr, "--shutdown needs --connect SOCK\n");
      return 2;
    }
    svc::Client client = svc::Client::connect(connect_path);
    if (!client.ok()) {
      std::fprintf(stderr, "%s\n", client.error().c_str());
      return 3;
    }
    if (timeout_ms != 0) client.set_timeout_ms(static_cast<int>(timeout_ms));
    std::string error;
    if (!client.shutdown(error)) {
      std::fprintf(stderr, "shutdown failed: %s\n", error.c_str());
      return 3;
    }
    if (sweep_name.empty()) return 0;
    std::fprintf(stderr, "daemon shut down; cannot also run '%s'\n",
                 sweep_name.c_str());
    return 2;
  }

  // Fault-tolerant mode: --connect and/or --journal-dir. The grid expands
  // client-side into content-addressed jobs; svc::run_sweep_ft drains them
  // through the client journal, the daemon (reconnecting with backoff), and
  // the in-process fallback, then assembles the same SweepResult the
  // in-process path would have produced.
  if (!connect_path.empty() || !journal_dir.empty()) {
    if (compare_full || max_rel_err > 0.0) {
      std::fprintf(stderr,
                   "--compare-full/--max-rel-err need a full in-process run "
                   "and are not available with --connect/--journal-dir\n");
      return 2;
    }
    if (sweep_name.empty()) return usage(argv[0]);
    if (have_len) spec->trace_lens = {len_override};
    if (have_seeds) spec->seeds = seed_override;

    svc::FtSweepOptions ft;
    ft.socket_path = connect_path;
    ft.journal_dir = journal_dir;
    ft.threads = opts.threads;
    ft.retries = static_cast<unsigned>(retries);
    ft.backoff_base_ms = retry_backoff_ms;
    ft.timeout_ms = timeout_ms != 0 ? static_cast<int>(timeout_ms) : -1;
    ft.allow_fallback = !no_fallback;
    ft.sampled = sampled;
    if (sampled) {
      ft.warmup = sample_spec.warmup;
      ft.measure = sample_spec.measure;
      ft.period = sample_spec.period;
      ft.max_windows = sample_spec.max_windows;
    }
    ft.log = [](const std::string& msg) {
      std::fprintf(stderr, "%s\n", msg.c_str());
    };

    SweepResult result;
    svc::FtSweepStats stats;
    std::string error;
    const svc::FtStatus status = run_sweep_ft(*spec, ft, result, stats, error);
    std::fprintf(stderr,
                 "fault tolerance: %llu job(s): %llu from client journal, "
                 "%llu from daemon journal, %llu computed remotely, "
                 "%llu computed locally; %llu reconnect(s), "
                 "%llu connect attempt(s)\n",
                 static_cast<unsigned long long>(stats.jobs),
                 static_cast<unsigned long long>(stats.client_journal_hits),
                 static_cast<unsigned long long>(stats.daemon_journal_hits),
                 static_cast<unsigned long long>(stats.remote_jobs),
                 static_cast<unsigned long long>(stats.local_jobs),
                 static_cast<unsigned long long>(stats.reconnects),
                 static_cast<unsigned long long>(stats.connect_attempts));
    if (status != svc::FtStatus::kOk) {
      std::fprintf(stderr, "sweep '%s' failed: %s\n", sweep_name.c_str(),
                   error.c_str());
      return status == svc::FtStatus::kTransportFailed ? 3 : 2;
    }
    const std::string via =
        connect_path.empty() ? "" : " (via " + connect_path + ")";
    std::printf("sweep %s: %zu points, %u thread%s%s\n", result.sweep.c_str(),
                result.points.size(), result.threads_used,
                result.threads_used == 1 ? "" : "s", via.c_str());
    std::printf("%s\n", render_summary(result).c_str());
    if (!csv_path.empty() && !write_file(csv_path, to_csv(result))) {
      std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
      return 1;
    }
    if (!json_path.empty() && !write_file(json_path, to_json(result))) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    return 0;
  }
  if (sweep_name.empty()) return usage(argv[0]);
  if (have_len) spec->trace_lens = {len_override};
  if (have_seeds) spec->seeds = seed_override;

  if (!quiet) {
    opts.on_point = [](const PointResult& pr, u64 done, u64 total) {
      std::fprintf(stderr, "[%3llu/%3llu] %-8s %-24s speedup %.3f\n",
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total),
                   pr.point.profile.name.c_str(), pr.point.variant.name.c_str(),
                   pr.speedup());
    };
  }

  if (max_rel_err > 0.0) compare_full = true;  // the bound needs the reference run
  if (compare_full) sampled = true;
  if (sampled) {
    if (sample_spec.measure == 0) sample_spec.measure = sample::kDefaultMeasure;
    sample_spec.validate();
  }

  // The full reference sweep runs first, with sampling forced off; the main
  // (possibly sampled) sweep then installs the active spec for its workers.
  SweepResult full_result;
  if (compare_full) {
    sample::set_active_sample_spec(sample::SampleSpec{});
    full_result = run_sweep(*spec, opts);
  }
  sample::set_active_sample_spec(sampled ? sample_spec : sample::SampleSpec{});
  const SweepResult result = run_sweep(*spec, opts);

  std::printf("sweep %s: %zu points, %u thread%s, %.2fs\n", result.sweep.c_str(),
              result.points.size(), result.threads_used,
              result.threads_used == 1 ? "" : "s", result.wall_seconds);
  if (sampled) std::printf("sampling: %s\n", sample_spec.describe().c_str());
  std::printf("%s\n", render_summary(result).c_str());

  if (compare_full) {
    std::printf("full sweep: %.2fs, sampled sweep: %.2fs (%.1fx)\n",
                full_result.wall_seconds, result.wall_seconds,
                result.wall_seconds > 0.0
                    ? full_result.wall_seconds / result.wall_seconds
                    : 0.0);
    std::printf("%s\n", render_sampling_error(full_result, result).c_str());
    const double worst = max_sampling_rel_error(full_result, result);
    if (max_rel_err > 0.0 && worst > max_rel_err) {
      std::fprintf(stderr,
                   "max relative error %.4f exceeds the --max-rel-err bound %.4f\n",
                   worst, max_rel_err);
      return 1;
    }
  }

  if (!csv_path.empty() && !write_file(csv_path, to_csv(result))) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  if (!json_path.empty() && !write_file(json_path, to_json(result))) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
