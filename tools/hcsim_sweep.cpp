// hcsim_sweep — run a named experiment sweep on the thread-pool runner and
// emit the aggregated report, optionally mirrored to CSV/JSON for plotting.
//
// Usage:
//   hcsim_sweep list                (or: hcsim_sweep --list)
//   hcsim_sweep <sweep> [--threads N] [--len N] [--seeds s1,s2,...]
//                       [--csv FILE] [--json FILE] [--quiet]
//                       [--sampled] [--sample-warmup N] [--sample-measure N]
//                       [--sample-period N] [--sample-windows N]
//                       [--compare-full] [--max-rel-err X]
//                       [--connect SOCK]
//   hcsim_sweep --connect SOCK --shutdown
//
// sweep: fig06 fig12 cumulative edp helper_design rv smoke
// --threads 0 uses every hardware thread; --threads 1 (default) runs
// serially. Results are identical across thread counts.
//
// --connect SOCK submits the sweep to a running hcsimd over its Unix-domain
// socket instead of simulating in-process. The daemon's CSV output is
// byte-identical to the in-process run (CSV carries no timing metadata; the
// JSON report embeds the daemon's wall time in its header but is otherwise
// identical). --compare-full needs per-point data and is not available over
// --connect; --threads is daemon-side configuration and is ignored.
//
// Sampling: --sampled turns on warm-up/measure windowed simulation for every
// point (defaults warmup=20000 measure=80000, period auto ~20 windows); any
// --sample-* flag implies --sampled and overrides the HCSIM_SAMPLE_*
// environment. --compare-full additionally runs the full (unsampled) sweep
// and prints the sampled-vs-full error table; with --max-rel-err X the exit
// status is 1 when any metric's worst relative error exceeds X.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "sample/spec.hpp"
#include "svc/client.hpp"

using namespace hcsim;
using namespace hcsim::exp;

namespace {

/// Sanity cap on worker threads (also guards the u64 -> unsigned narrowing).
constexpr unsigned kMaxThreads = 4096;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <sweep|list|--list> [--threads N] [--len N] [--seeds s1,s2,...]\n"
               "          [--csv FILE] [--json FILE] [--quiet]\n"
               "          [--sampled] [--sample-warmup N] [--sample-measure N]\n"
               "          [--sample-period N] [--sample-windows N]\n"
               "          [--compare-full] [--max-rel-err X]\n"
               "          [--connect SOCK] [--shutdown]\n"
               "sweeps:",
               argv0);
  for (const std::string& n : sweep_names()) std::fprintf(stderr, " %s", n.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

int print_sweep_list() {
  for (const std::string& n : sweep_names()) {
    const auto spec = find_sweep(n);
    if (!spec) continue;  // unreachable: names come from the same table
    std::printf("%-14s %3llu points (%zu apps x %zu configs)\n", n.c_str(),
                static_cast<unsigned long long>(spec->num_points()),
                spec->workloads.size(), spec->variants.size());
  }
  return 0;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << content;
  return f.good();
}

/// Parse one decimal integer, rejecting trailing garbage ("100k") and,
/// unless `allow_zero`, the value 0.
u64 parse_u64(const char* flag, const char* s, bool allow_zero) {
  char* end = nullptr;
  const u64 v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || (!allow_zero && v == 0)) {
    std::fprintf(stderr, "%s: bad value '%s' (%s integer required)\n", flag, s,
                 allow_zero ? "non-negative" : "positive");
    std::exit(2);
  }
  return v;
}

/// Parse "s1,s2,..." as positive integers. Exits with a usage error on
/// malformed input or a 0 value — seed 0 is the runner's "keep the
/// profile's own seed" placeholder, never a valid explicit seed.
std::vector<u64> parse_u64_list(const char* flag, const char* s) {
  std::vector<u64> out;
  for (const char* p = s; *p;) {
    char* end = nullptr;
    const u64 v = std::strtoull(p, &end, 10);
    if (end == p || (*end != '\0' && *end != ',') || v == 0) {
      std::fprintf(stderr, "%s: bad value in list '%s' (positive integers only)\n",
                   flag, s);
      std::exit(2);
    }
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  if (out.empty()) {
    std::fprintf(stderr, "%s: empty list\n", flag);
    std::exit(2);
  }
  return out;
}

/// Parse one positive decimal double ("0.05"), rejecting trailing garbage.
double parse_double(const char* flag, const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v > 0.0)) {
    std::fprintf(stderr, "%s: bad value '%s' (positive number required)\n", flag, s);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string sweep_name;
  int flag_start = 2;
  if (argv[1][0] == '-') {
    flag_start = 1;  // flag-only invocation (--list, --connect ... --shutdown)
  } else {
    sweep_name = argv[1];
  }
  if (sweep_name == "list") return print_sweep_list();

  std::optional<SweepSpec> spec;
  if (!sweep_name.empty()) {
    spec = find_sweep(sweep_name);
    if (!spec) {
      std::fprintf(stderr, "unknown sweep '%s'\n", sweep_name.c_str());
      return usage(argv[0]);
    }
  }

  RunOptions opts;
  std::string csv_path, json_path, connect_path;
  bool shutdown_daemon = false;
  bool quiet = false;
  // Sampling starts from the HCSIM_SAMPLE_* environment so CLI flags only
  // override what they name; any --sample-* flag implies --sampled.
  sample::SampleSpec sample_spec = sample::spec_from_env();
  bool sampled = sample_spec.enabled();
  bool compare_full = false;
  double max_rel_err = 0.0;  // 0 = no bound enforced
  bool have_len = false, have_seeds = false;
  u64 len_override = 0;
  std::vector<u64> seed_override;
  for (int i = flag_start; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      const u64 threads = parse_u64("--threads", next(), /*allow_zero=*/true);
      if (threads > kMaxThreads) {
        std::fprintf(stderr, "--threads: %llu exceeds the limit of %u\n",
                     static_cast<unsigned long long>(threads), kMaxThreads);
        return 2;
      }
      opts.threads = static_cast<unsigned>(threads);
    } else if (arg == "--len") {
      len_override = parse_u64("--len", next(), /*allow_zero=*/false);
      have_len = true;
    } else if (arg == "--seeds") {
      seed_override = parse_u64_list("--seeds", next());
      have_seeds = true;
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--sampled") {
      sampled = true;
    } else if (arg == "--sample-warmup") {
      sample_spec.warmup = parse_u64("--sample-warmup", next(), /*allow_zero=*/true);
      sampled = true;
    } else if (arg == "--sample-measure") {
      sample_spec.measure = parse_u64("--sample-measure", next(), /*allow_zero=*/false);
      sampled = true;
    } else if (arg == "--sample-period") {
      sample_spec.period = parse_u64("--sample-period", next(), /*allow_zero=*/true);
      sampled = true;
    } else if (arg == "--sample-windows") {
      sample_spec.max_windows =
          parse_u64("--sample-windows", next(), /*allow_zero=*/true);
      sampled = true;
    } else if (arg == "--compare-full") {
      compare_full = true;
    } else if (arg == "--max-rel-err") {
      max_rel_err = parse_double("--max-rel-err", next());
    } else if (arg == "--connect") {
      connect_path = next();
    } else if (arg == "--shutdown") {
      shutdown_daemon = true;
    } else if (arg == "--list") {
      return print_sweep_list();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  // Remote mode: hand the sweep to a running hcsimd and print its report.
  // The daemon's CSV/JSON is byte-identical to the in-process output, so
  // downstream plotting scripts cannot tell the difference.
  if (!connect_path.empty()) {
    if (compare_full || max_rel_err > 0.0) {
      std::fprintf(stderr,
                   "--compare-full/--max-rel-err need per-point data and are "
                   "not available over --connect\n");
      return 2;
    }
    svc::Client client = svc::Client::connect(connect_path);
    if (!client.ok()) {
      std::fprintf(stderr, "%s\n", client.error().c_str());
      return 1;
    }
    if (shutdown_daemon) {
      std::string error;
      if (!client.shutdown(error)) {
        std::fprintf(stderr, "shutdown failed: %s\n", error.c_str());
        return 1;
      }
      if (sweep_name.empty()) return 0;
      std::fprintf(stderr, "daemon shut down; cannot also run '%s'\n",
                   sweep_name.c_str());
      return 2;
    }
    if (sweep_name.empty()) return usage(argv[0]);
    svc::SweepRequest req;
    req.sweep = sweep_name;
    if (have_len) req.trace_len = len_override;
    if (have_seeds) req.seeds = seed_override;
    req.sampled = sampled;
    if (sampled) {
      req.warmup = sample_spec.warmup;
      req.measure = sample_spec.measure;
      req.period = sample_spec.period;
      req.max_windows = sample_spec.max_windows;
    }
    req.want_csv = !csv_path.empty();
    req.want_json = !json_path.empty();
    svc::SweepResponse resp;
    std::string error;
    if (!client.sweep(req, resp, error)) {
      std::fprintf(stderr, "sweep '%s' failed: %s\n", sweep_name.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("sweep %s: %llu points, %u thread%s, %.2fs (via %s)\n",
                sweep_name.c_str(),
                static_cast<unsigned long long>(resp.n_points),
                resp.threads_used, resp.threads_used == 1 ? "" : "s",
                static_cast<double>(resp.wall_ms) / 1000.0,
                connect_path.c_str());
    std::printf("%s\n", resp.summary.c_str());
    if (!csv_path.empty() && !write_file(csv_path, resp.csv)) {
      std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
      return 1;
    }
    if (!json_path.empty() && !write_file(json_path, resp.json)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    return 0;
  }
  if (shutdown_daemon) {
    std::fprintf(stderr, "--shutdown needs --connect SOCK\n");
    return 2;
  }
  if (sweep_name.empty()) return usage(argv[0]);
  if (have_len) spec->trace_lens = {len_override};
  if (have_seeds) spec->seeds = seed_override;

  if (!quiet) {
    opts.on_point = [](const PointResult& pr, u64 done, u64 total) {
      std::fprintf(stderr, "[%3llu/%3llu] %-8s %-24s speedup %.3f\n",
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total),
                   pr.point.profile.name.c_str(), pr.point.variant.name.c_str(),
                   pr.speedup());
    };
  }

  if (max_rel_err > 0.0) compare_full = true;  // the bound needs the reference run
  if (compare_full) sampled = true;
  if (sampled) {
    if (sample_spec.measure == 0) sample_spec.measure = sample::kDefaultMeasure;
    sample_spec.validate();
  }

  // The full reference sweep runs first, with sampling forced off; the main
  // (possibly sampled) sweep then installs the active spec for its workers.
  SweepResult full_result;
  if (compare_full) {
    sample::set_active_sample_spec(sample::SampleSpec{});
    full_result = run_sweep(*spec, opts);
  }
  sample::set_active_sample_spec(sampled ? sample_spec : sample::SampleSpec{});
  const SweepResult result = run_sweep(*spec, opts);

  std::printf("sweep %s: %zu points, %u thread%s, %.2fs\n", result.sweep.c_str(),
              result.points.size(), result.threads_used,
              result.threads_used == 1 ? "" : "s", result.wall_seconds);
  if (sampled) std::printf("sampling: %s\n", sample_spec.describe().c_str());
  std::printf("%s\n", render_summary(result).c_str());

  if (compare_full) {
    std::printf("full sweep: %.2fs, sampled sweep: %.2fs (%.1fx)\n",
                full_result.wall_seconds, result.wall_seconds,
                result.wall_seconds > 0.0
                    ? full_result.wall_seconds / result.wall_seconds
                    : 0.0);
    std::printf("%s\n", render_sampling_error(full_result, result).c_str());
    const double worst = max_sampling_rel_error(full_result, result);
    if (max_rel_err > 0.0 && worst > max_rel_err) {
      std::fprintf(stderr,
                   "max relative error %.4f exceeds the --max-rel-err bound %.4f\n",
                   worst, max_rel_err);
      return 1;
    }
  }

  if (!csv_path.empty() && !write_file(csv_path, to_csv(result))) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  if (!json_path.empty() && !write_file(json_path, to_json(result))) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
