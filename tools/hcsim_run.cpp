// hcsim_run — simulate a saved trace (or a named profile) on a steering
// configuration and print the full result, including the power report.
//
// Usage:
//   hcsim_run <trace.hctrace|profile-name> [scheme] [n_uops]
//             [--sampled] [--sample-warmup N] [--sample-measure N]
//             [--sample-period N] [--sample-windows N]
//             [--threads N] [--compare-full] [--verbose]
//
// --verbose additionally dumps every raw event counter (bb_cache_*,
// issue_*, rf_write_*, ...) after the summary.
//
// scheme: baseline 888 br lr cr cp ir irn      (default: ir)
//
// Sampling: --sampled switches to warm-up/measure windowed simulation
// (defaults warmup=20000 measure=80000, period auto ~20 windows) and prints
// the per-window table; any --sample-* flag implies --sampled and overrides
// the HCSIM_SAMPLE_* environment. --threads N slices the windows across a
// thread pool (bit-identical to --threads 1). --compare-full additionally
// runs the full simulation and prints the sampled-vs-full error per metric.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/counters.hpp"
#include "power/power_model.hpp"
#include "sample/spec.hpp"
#include "sample/windowed.hpp"
#include "sim/simulator.hpp"

using namespace hcsim;

namespace {

SteeringConfig scheme_by_name(const std::string& s) {
  if (s == "baseline") return steering_baseline();
  if (s == "888") return steering_888();
  if (s == "br") return steering_888_br();
  if (s == "lr") return steering_888_br_lr();
  if (s == "cr") return steering_888_br_lr_cr();
  if (s == "cp") return steering_cp();
  if (s == "irn") return steering_ir_nodest();
  return steering_ir();
}

bool is_spec_name(const std::string& s) {
  for (const WorkloadProfile& p : spec_int_2000_profiles())
    if (p.name == s) return true;
  return false;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.hctrace|profile> [scheme] [n_uops]\n"
               "          [--sampled] [--sample-warmup N] [--sample-measure N]\n"
               "          [--sample-period N] [--sample-windows N]\n"
               "          [--threads N] [--compare-full] [--verbose]\n",
               argv0);
  return 2;
}

/// Parse one decimal integer, rejecting trailing garbage ("100k").
u64 parse_u64(const char* flag, const char* s, bool allow_zero) {
  char* end = nullptr;
  const u64 v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || (!allow_zero && v == 0)) {
    std::fprintf(stderr, "%s: bad value '%s' (%s integer required)\n", flag, s,
                 allow_zero ? "non-negative" : "positive");
    std::exit(2);
  }
  return v;
}

void print_counters(const SimResult& r) {
  std::printf("\ncounters:\n");
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    std::printf("  %-24s %llu\n", std::string(counter_name(c)).c_str(),
                (unsigned long long)r.counters.get(c));
  }
}

void print_result(const SimResult& r, const MachineConfig& cfg) {
  const PowerReport power = analyze_power(r, cfg);
  std::printf("\nworkload      : %s (%llu uops)\n", r.workload.c_str(),
              static_cast<unsigned long long>(r.uops));
  std::printf("config        : %s\n", r.config.c_str());
  std::printf("wide cycles   : %.0f   IPC %.3f\n", r.wide_cycles, r.ipc);
  std::printf("steered       : %.1f%% (BR %llu, CR %llu, splits %llu)\n",
              100.0 * r.helper_frac(), (unsigned long long)r.br_steered,
              (unsigned long long)r.cr_steered, (unsigned long long)r.split_uops);
  std::printf("copies        : %.1f%% (w2n %llu, n2w %llu, prefetched %llu)\n",
              100.0 * r.copy_frac(), (unsigned long long)r.copies_w2n,
              (unsigned long long)r.copies_n2w,
              (unsigned long long)r.copy_prefetches);
  std::printf("width pred    : %.2f%% correct, %.3f%% fatal\n",
              100.0 * r.wp_accuracy(), 100.0 * r.fatal_rate());
  std::printf("branches      : %llu (%.2f%% mispredicted)\n",
              (unsigned long long)r.branches,
              r.branches ? 100.0 * static_cast<double>(r.branch_mispredicts) /
                               static_cast<double>(r.branches)
                         : 0.0);
  std::printf("caches        : DL0 %.1f%%, UL1 %.1f%% hit\n",
              100.0 * r.dl0_hit_rate, 100.0 * r.ul1_hit_rate);
  std::printf("NREADY        : w2n %.1f%%  n2w %.1f%%\n", r.nready_w2n_pct(),
              r.nready_n2w_pct());
  std::printf("energy        : %.0f (frontend %.0f, wide %.0f, helper %.0f, "
              "mem %.0f, clock %.0f, copies %.0f)\n",
              power.energy, power.frontend, power.wide_backend,
              power.helper_backend, power.memory, power.clock, power.copies);
  std::printf("ED^2          : %.3g\n", power.ed2p);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  sample::SampleSpec spec = sample::spec_from_env();
  bool sampled = spec.enabled();
  bool compare_full = false;
  bool verbose = false;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sampled") {
      sampled = true;
    } else if (arg == "--sample-warmup") {
      spec.warmup = parse_u64("--sample-warmup", next(), /*allow_zero=*/true);
      sampled = true;
    } else if (arg == "--sample-measure") {
      spec.measure = parse_u64("--sample-measure", next(), /*allow_zero=*/false);
      sampled = true;
    } else if (arg == "--sample-period") {
      spec.period = parse_u64("--sample-period", next(), /*allow_zero=*/true);
      sampled = true;
    } else if (arg == "--sample-windows") {
      spec.max_windows = parse_u64("--sample-windows", next(), /*allow_zero=*/true);
      sampled = true;
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(
          parse_u64("--threads", next(), /*allow_zero=*/false));
    } else if (arg == "--compare-full") {
      compare_full = true;
      sampled = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty() || positional.size() > 3) return usage(argv[0]);

  const std::string source = positional[0];
  const SteeringConfig steer =
      scheme_by_name(positional.size() > 1 ? positional[1] : "ir");
  const u64 n = positional.size() > 2
                    ? parse_u64("n_uops", positional[2].c_str(), /*allow_zero=*/false)
                    : default_trace_len();
  if (sampled) {
    if (spec.measure == 0) spec.measure = sample::kDefaultMeasure;
    spec.validate();
  }
  // This tool drives sampling explicitly via simulate_sampled(); clear the
  // env-initialized active spec so simulate_workload always runs full.
  sample::set_active_sample_spec(sample::SampleSpec{});

  const MachineConfig cfg =
      steer.helper_enabled ? helper_machine(steer) : monolithic_baseline();
  std::printf("%s", describe_machine(cfg).c_str());

  // The trace source: a SPEC/rv profile routes through the cached/streamed
  // trace machinery; anything else must be a readable .hctrace file.
  const bool from_profile = is_spec_name(source);
  Trace owned;
  if (!from_profile && !load_trace(owned, source)) {
    std::fprintf(stderr, "'%s' is neither a SPEC profile nor a readable trace\n",
                 source.c_str());
    return 1;
  }

  if (!sampled) {
    const SimResult r = from_profile
                            ? simulate_workload(cfg, spec_profile(source), n)
                            : simulate(cfg, owned);
    print_result(r, cfg);
    if (verbose) print_counters(r);
    return 0;
  }

  const sample::SampledResult sr =
      from_profile ? sample::simulate_sampled(cfg, spec_profile(source), n, spec, threads)
                   : sample::simulate_sampled(cfg, owned, spec, threads);
  std::printf("\nsampling      : %s\n", spec.describe().c_str());
  if (!sr.sampled) {
    std::printf("trace too short for the schedule; fell back to a full run\n");
  } else {
    std::printf("windows       : %zu (%llu of %llu uops simulated, %llu measured)\n",
                sr.windows.size(), (unsigned long long)sr.simulated_uops,
                (unsigned long long)sr.trace_len,
                (unsigned long long)sr.measured_uops);
    std::printf("\n%s", sample::render_window_table(sr).c_str());
  }
  print_result(sr.total, cfg);
  if (verbose) print_counters(sr.total);

  if (compare_full) {
    const SimResult full = from_profile
                               ? simulate_workload(cfg, spec_profile(source), n)
                               : simulate(cfg, owned);
    std::printf("\nsampled vs full:\n");
    for (const sample::SampleError& e : sample::sampling_errors(full, sr.total))
      std::printf("  %-28s full %12.6f  sampled %12.6f  rel err %6.2f%%\n",
                  e.metric.c_str(), e.full, e.sampled, 100.0 * e.rel_err);
  }
  return 0;
}
