// hcsim_run — simulate a saved trace (or a named profile) on a steering
// configuration and print the full result, including the power report.
//
// Usage:
//   hcsim_run <trace.hctrace|profile-name> [scheme] [n_uops]
//
// scheme: baseline 888 br lr cr cp ir irn      (default: ir)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "power/power_model.hpp"
#include "sim/simulator.hpp"

using namespace hcsim;

namespace {

SteeringConfig scheme_by_name(const std::string& s) {
  if (s == "baseline") return steering_baseline();
  if (s == "888") return steering_888();
  if (s == "br") return steering_888_br();
  if (s == "lr") return steering_888_br_lr();
  if (s == "cr") return steering_888_br_lr_cr();
  if (s == "cp") return steering_cp();
  if (s == "irn") return steering_ir_nodest();
  return steering_ir();
}

bool is_spec_name(const std::string& s) {
  for (const WorkloadProfile& p : spec_int_2000_profiles())
    if (p.name == s) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.hctrace|profile> [scheme] [n_uops]\n",
                 argv[0]);
    return 2;
  }
  const std::string source = argv[1];
  const SteeringConfig steer = scheme_by_name(argc > 2 ? argv[2] : "ir");
  const u64 n = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : default_trace_len();

  const MachineConfig cfg =
      steer.helper_enabled ? helper_machine(steer) : monolithic_baseline();
  std::printf("%s", describe_machine(cfg).c_str());

  SimResult r;
  if (is_spec_name(source)) {
    // Cached trace for CI-sized runs; streamed chunk-wise above the
    // threshold, so paper-scale n_uops don't materialize a multi-GB trace.
    r = simulate_workload(cfg, spec_profile(source), n);
  } else {
    Trace owned;
    if (!load_trace(owned, source)) {
      std::fprintf(stderr, "'%s' is neither a SPEC profile nor a readable trace\n",
                   source.c_str());
      return 1;
    }
    r = simulate(cfg, owned);
  }
  const PowerReport power = analyze_power(r, cfg);

  std::printf("\nworkload      : %s (%llu uops)\n", r.workload.c_str(),
              static_cast<unsigned long long>(r.uops));
  std::printf("config        : %s\n", r.config.c_str());
  std::printf("wide cycles   : %.0f   IPC %.3f\n", r.wide_cycles, r.ipc);
  std::printf("steered       : %.1f%% (BR %llu, CR %llu, splits %llu)\n",
              100.0 * r.helper_frac(), (unsigned long long)r.br_steered,
              (unsigned long long)r.cr_steered, (unsigned long long)r.split_uops);
  std::printf("copies        : %.1f%% (w2n %llu, n2w %llu, prefetched %llu)\n",
              100.0 * r.copy_frac(), (unsigned long long)r.copies_w2n,
              (unsigned long long)r.copies_n2w,
              (unsigned long long)r.copy_prefetches);
  std::printf("width pred    : %.2f%% correct, %.3f%% fatal\n",
              100.0 * r.wp_accuracy(), 100.0 * r.fatal_rate());
  std::printf("branches      : %llu (%.2f%% mispredicted)\n",
              (unsigned long long)r.branches,
              r.branches ? 100.0 * static_cast<double>(r.branch_mispredicts) /
                               static_cast<double>(r.branches)
                         : 0.0);
  std::printf("caches        : DL0 %.1f%%, UL1 %.1f%% hit\n",
              100.0 * r.dl0_hit_rate, 100.0 * r.ul1_hit_rate);
  std::printf("NREADY        : w2n %.1f%%  n2w %.1f%%\n", r.nready_w2n_pct(),
              r.nready_n2w_pct());
  std::printf("energy        : %.0f (frontend %.0f, wide %.0f, helper %.0f, "
              "mem %.0f, clock %.0f, copies %.0f)\n",
              power.energy, power.frontend, power.wide_backend,
              power.helper_backend, power.memory, power.clock, power.copies);
  std::printf("ED^2          : %.3g\n", power.ed2p);
  return 0;
}
