// hcsim_bench — simulator-throughput measurement for the repo's own
// performance trajectory (items/sec, not a paper figure).
//
// Times the hot paths that dominate every experiment: synthetic trace
// generation, the baseline pipeline, the batched SoA feed with a shared
// decode cache (pipeline_batched) and its cache-disabled twin
// (pipeline_batched_nocache — the gap isolates the cache), the helper+IR
// pipeline, the fused streaming path (generation + simulation, no
// materialized trace), and the warm-up/measure sampled path (pipeline_sampled: a 5-window schedule
// simulating ~25% of the trace — its items/sec counts *trace µops covered*,
// so the gap to pipeline_streamed is the sampling speedup). Results go to
// stdout as JSON; append them to BENCH_sim_throughput.json so each PR has a
// recorded baseline to beat (see README "Performance").
//
// Usage:
//   hcsim_bench [--uops N] [--reps N] [--label S] [--json FILE]
//
// Defaults: 100000 µops, 5 repetitions; the best rep wins, whatever --reps
// says (matching bench_sim_throughput's BM_PipelineBaseline/100000).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <span>

#include "bbcache/bb_cache.hpp"
#include "core/cluster_epoch.hpp"
#include "sample/spec.hpp"
#include "sample/windowed.hpp"
#include "sim/simulator.hpp"

using namespace hcsim;

namespace {

u64 parse_u64(const char* flag, const char* s) {
  char* end = nullptr;
  const u64 v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || v == 0) {
    std::fprintf(stderr, "%s: bad value '%s' (positive integer required)\n", flag, s);
    std::exit(2);
  }
  return v;
}

/// Best-of-`reps` throughput of `body` in items (µops) per second.
template <typename Fn>
double best_items_per_sec(u64 n_items, unsigned reps, Fn&& body) {
  double best = 0.0;
  for (unsigned r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (secs > 0.0) best = std::max(best, static_cast<double>(n_items) / secs);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  u64 n_uops = 100000;
  unsigned reps = 5;
  std::string label = "local";
  std::string json_path;
  double max_helper_gap = 0.0;  // 0 = no assertion
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--uops") {
      n_uops = parse_u64("--uops", next());
    } else if (arg == "--reps") {
      reps = static_cast<unsigned>(parse_u64("--reps", next()));
    } else if (arg == "--label") {
      label = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--max-helper-gap") {
      max_helper_gap = std::strtod(next(), nullptr);
      if (max_helper_gap <= 0.0) {
        std::fprintf(stderr, "--max-helper-gap: positive ratio required\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--uops N] [--reps N] [--label S] [--json FILE]\n"
                   "          [--max-helper-gap X]\n",
                   argv[0]);
      return 2;
    }
  }

  const WorkloadProfile& prof = spec_profile("gcc");
  const MachineConfig baseline = monolithic_baseline();
  const MachineConfig helper_ir = helper_machine(steering_ir());

  const double gen = best_items_per_sec(n_uops, reps, [&] {
    Trace t = generate_trace(prof, n_uops);
    if (t.records.empty()) std::abort();  // keep the work observable
  });

  const Trace& trace = cached_trace(prof, n_uops);
  const double base = best_items_per_sec(n_uops, reps, [&] {
    SimResult r = simulate(baseline, trace);
    if (r.final_tick == 0) std::abort();
  });
  const double ir = best_items_per_sec(n_uops, reps, [&] {
    SimResult r = simulate(helper_ir, trace);
    if (r.final_tick == 0) std::abort();
  });
  // Same baseline workload through the legacy SlotSchedule/QueueTracker
  // structures (the HCSIM_EPOCH=0 path): the in-process A/B for the fused
  // engine, immune to run-to-run machine-load drift.
  epoch_set_enabled(false);
  const double epoch_off = best_items_per_sec(n_uops, reps, [&] {
    SimResult r = simulate(baseline, trace);
    if (r.final_tick == 0) std::abort();
  });
  epoch_reset_enabled();
  const double streamed = best_items_per_sec(n_uops, reps, [&] {
    SimResult r = simulate_streamed(baseline, prof, n_uops);
    if (r.final_tick == 0) std::abort();
  });

  // Batched SoA feed with a decode cache shared across reps (the sweep
  // driver's steady state) and its cache-disabled twin: the gap between the
  // two isolates the decode cache's contribution.
  DecodeCache shared_cache(/*enabled=*/true);
  const double batched = best_items_per_sec(n_uops, reps, [&] {
    Pipeline p(baseline, trace.program, &shared_cache);
    p.feed(std::span<const TraceRecord>(trace.records));
    SimResult r = p.finish();
    if (r.final_tick == 0) std::abort();
  });
  DecodeCache off_cache(/*enabled=*/false);
  const double batched_nocache = best_items_per_sec(n_uops, reps, [&] {
    Pipeline p(baseline, trace.program, &off_cache);
    p.feed(std::span<const TraceRecord>(trace.records));
    SimResult r = p.finish();
    if (r.final_tick == 0) std::abort();
  });

  // Sampled path: 5 windows of 1% warm-up + 4% measure each, so ~25% of the
  // trace is actually fed. Throughput still counts every trace µop *covered*
  // (simulated or skipped) — the paper-scale figure of merit.
  sample::SampleSpec sspec;
  sspec.warmup = std::max<u64>(1, n_uops / 100);
  sspec.measure = std::max<u64>(1, n_uops / 25);
  sspec.period = n_uops / 5;
  const double sampled = best_items_per_sec(n_uops, reps, [&] {
    sample::SampledResult r = sample::simulate_sampled(baseline, prof, n_uops, sspec);
    if (r.total.final_tick == 0) std::abort();
  });

  std::string escaped_label;
  for (char c : label) {
    if (c == '"' || c == '\\') {
      escaped_label += '\\';
      escaped_label += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char esc[8];
      std::snprintf(esc, sizeof(esc), "\\u%04x", c);
      escaped_label += esc;
    } else {
      escaped_label += c;
    }
  }
  // Helper-cluster slowdown factor: the helper+IR machine simulates the
  // same trace through two clusters and the copy machinery, so it is
  // inherently slower per µop; the gap is the honest measure of how much.
  // Computed from the same run, so machine-load drift cancels.
  const double helper_gap = ir > 0.0 ? base / ir : 0.0;

  char buf[640];
  std::string json = "{\n  \"label\": \"" + escaped_label + "\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"workload\": \"gcc\",\n"
                "  \"uops\": %llu,\n"
                "  \"reps\": %u,\n"
                "  \"helper_gap\": %.3f,\n"
                "  \"items_per_second\": {\n"
                "    \"trace_gen\": %.0f,\n"
                "    \"pipeline_baseline\": %.0f,\n"
                "    \"pipeline_epoch_off\": %.0f,\n"
                "    \"pipeline_batched\": %.0f,\n"
                "    \"pipeline_batched_nocache\": %.0f,\n"
                "    \"pipeline_helper_ir\": %.0f,\n"
                "    \"pipeline_streamed\": %.0f,\n"
                "    \"pipeline_sampled\": %.0f\n"
                "  }\n"
                "}\n",
                static_cast<unsigned long long>(n_uops), reps, helper_gap, gen,
                base, epoch_off, batched, batched_nocache, ir, streamed, sampled);
  json += buf;
  std::fputs(json.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream f(json_path, std::ios::binary);
    if (!f || !(f << json)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  if (max_helper_gap > 0.0 && helper_gap > max_helper_gap) {
    std::fprintf(stderr,
                 "helper gap %.3f exceeds --max-helper-gap %.3f "
                 "(pipeline_helper_ir fell too far behind pipeline_baseline)\n",
                 helper_gap, max_helper_gap);
    return 1;
  }
  return 0;
}
