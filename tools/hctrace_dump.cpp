// hctrace_dump — inspect a saved trace: program disassembly, width
// statistics, and the first dynamic records.
//
// Usage:
//   hctrace_dump <trace.hctrace> [n_records]
#include <cstdio>
#include <cstdlib>

#include "analysis/trace_stats.hpp"
#include "trace/trace.hpp"
#include "util/narrow.hpp"

using namespace hcsim;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.hctrace> [n_records]\n", argv[0]);
    return 2;
  }
  Trace trace;
  if (!load_trace(trace, argv[1])) {
    std::fprintf(stderr, "failed to load %s\n", argv[1]);
    return 1;
  }
  const u64 show = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;

  std::printf("trace '%s': %zu dynamic uops, %zu static uops, seed %llu\n\n",
              trace.program.name.c_str(), trace.records.size(),
              trace.program.uops.size(),
              static_cast<unsigned long long>(trace.seed));

  std::printf("-- static program --\n");
  for (u32 pc = 0; pc < trace.program.uops.size() && pc < 64; ++pc) {
    const StaticUop& u = trace.program.uops[pc];
    std::printf("%4u: %-28s", pc, disassemble(u).c_str());
    if (is_branch(u.opcode)) std::printf(" -> %u", trace.program.target_of(pc));
    std::printf("\n");
  }
  if (trace.program.uops.size() > 64)
    std::printf("  ... %zu more\n", trace.program.uops.size() - 64);

  const auto nd = narrow_dependency_stats(trace);
  const auto cs = carry_stats(trace);
  const auto ds = producer_consumer_distance(trace);
  std::printf("\n-- width character --\n");
  std::printf("narrow-dependent operands : %.1f%%\n",
              nd.operands_narrow_dependent.percent());
  std::printf("carry confined arith/load : %.1f%% / %.1f%%\n",
              cs.arith_confined.percent(), cs.load_confined.percent());
  std::printf("producer-consumer distance: %.2f uops\n", ds.mean());

  std::printf("\n-- first %llu records --\n", static_cast<unsigned long long>(show));
  for (u64 i = 0; i < show && i < trace.records.size(); ++i) {
    const TraceRecord& r = trace.records[i];
    const StaticUop& u = trace.uop_of(r);
    std::printf("%6llu pc=%-4u %-24s", static_cast<unsigned long long>(i), r.pc,
                disassemble(u).c_str());
    if (u.has_dst())
      std::printf(" = %08X%s", r.result, is_narrow8(r.result) ? " (narrow)" : "");
    if (is_memory(u.opcode)) std::printf(" @%08X", r.mem_addr);
    if (is_branch(u.opcode)) std::printf(" %s", r.taken ? "taken" : "not-taken");
    std::printf("\n");
  }
  return 0;
}
