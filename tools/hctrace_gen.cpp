// hctrace_gen — generate a workload trace and save it to disk.
//
// Usage:
//   hctrace_gen <profile> <n_uops> <out.hctrace> [seed]
//
// <profile> is a SPEC Int 2000 name (gcc, mcf, ...), "<category>:<index>"
// for a Table 2 application (e.g. "mm:17"), or "default" for the base
// profile. The optional seed overrides the profile's seed.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/trace.hpp"
#include "wload/executor.hpp"
#include "wload/profile.hpp"

using namespace hcsim;

namespace {

bool resolve_profile(const std::string& name, WorkloadProfile& out) {
  if (name == "default") {
    out = WorkloadProfile{};
    out.name = "default";
    return true;
  }
  const auto colon = name.find(':');
  if (colon != std::string::npos) {
    const std::string cat_name = name.substr(0, colon);
    const unsigned index = static_cast<unsigned>(std::atoi(name.c_str() + colon + 1));
    for (const WorkloadCategory& cat : workload_categories()) {
      if (cat.name == cat_name && index < cat.num_traces) {
        out = category_app_profile(cat, index);
        return true;
      }
    }
    return false;
  }
  for (const WorkloadProfile& p : spec_int_2000_profiles()) {
    if (p.name == name) {
      out = p;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <profile|cat:idx|default> <n_uops> <out.hctrace> [seed]\n",
                 argv[0]);
    return 2;
  }
  WorkloadProfile prof;
  if (!resolve_profile(argv[1], prof)) {
    std::fprintf(stderr, "unknown profile '%s'\n", argv[1]);
    return 2;
  }
  const u64 n = std::strtoull(argv[2], nullptr, 10);
  if (n == 0) {
    std::fprintf(stderr, "n_uops must be positive\n");
    return 2;
  }
  if (argc > 4) prof.seed = std::strtoull(argv[4], nullptr, 0);

  const Trace trace = generate_trace(prof, n);
  if (!save_trace(trace, argv[3])) {
    std::fprintf(stderr, "failed to write %s\n", argv[3]);
    return 1;
  }
  std::printf("%s: %zu uops (%zu static) -> %s\n", prof.name.c_str(),
              trace.records.size(), trace.program.uops.size(), argv[3]);
  return 0;
}
