// hcsimd — persistent simulation service.
//
// Keeps the process-wide trace cache and config registry warm across sweep
// requests, runs every job on one shared thread pool, and (on request)
// hosts trace-bus producers on shared-memory rings. Clients speak the
// length-prefixed framed protocol of docs/PROTOCOL.md over a Unix-domain
// socket; `hcsim_sweep --connect <sock>` is the reference client.
//
// Usage:
//   hcsimd --socket PATH [--threads N] [--idle-timeout-ms N]
//          [--conn-idle-timeout-ms N] [--shm-dir DIR] [--journal-dir DIR]
//
// --threads 0 (default) sizes the sweep pool to the hardware. With
// --idle-timeout-ms the daemon exits by itself once it has had no client
// and no live trace-bus segment for that long — shutdown unlinks the
// socket and every shm segment it created. --conn-idle-timeout-ms (default
// 60000, 0 = off) drops a connection that sends nothing for that long so an
// idle client cannot starve waiting ones. --shm-dir (default /dev/shm)
// confines kServeTrace ring segments: requests naming a path outside it are
// answered with kError. --journal-dir persists every completed kRunJobs
// result to DIR/daemon.journal and recovers it on restart, so a crashed
// daemon serves re-submitted jobs from disk instead of recomputing them
// (docs/PROTOCOL.md, "Job ids and the journal").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "svc/daemon.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--threads N] [--idle-timeout-ms N]\n"
               "       [--conn-idle-timeout-ms N] [--shm-dir DIR] [--journal-dir DIR]\n",
               argv0);
  return 2;
}

hcsim::u64 parse_u64(const char* flag, const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "%s: bad value '%s'\n", flag, s);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  hcsim::svc::DaemonOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      opts.socket_path = next();
    } else if (arg == "--threads") {
      const hcsim::u64 n = parse_u64("--threads", next());
      if (n > 4096) {
        std::fprintf(stderr, "--threads: %llu exceeds the limit of 4096\n",
                     static_cast<unsigned long long>(n));
        return 2;
      }
      opts.threads = static_cast<unsigned>(n);
    } else if (arg == "--idle-timeout-ms") {
      opts.idle_timeout_ms = parse_u64("--idle-timeout-ms", next());
    } else if (arg == "--conn-idle-timeout-ms") {
      opts.conn_idle_timeout_ms = parse_u64("--conn-idle-timeout-ms", next());
    } else if (arg == "--shm-dir") {
      opts.shm_dir = next();
    } else if (arg == "--journal-dir") {
      opts.journal_dir = next();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (opts.socket_path.empty()) return usage(argv[0]);
  return hcsim::svc::run_daemon(opts);
}
