// hcrv — RISC-V RV32I frontend CLI: assemble, run and trace real programs
// through the helper-cluster simulator.
//
// Usage:
//   hcrv kernels                                   list bundled kernels
//   hcrv asm   <file.s|kernel> [--list] [-o out.bin]
//   hcrv run   <file.s|kernel> [--steer SCHEME] [--budget N]
//   hcrv trace <file.s|kernel> -o out.trace [--budget N]
//
// <file.s|kernel> is a path to an assembly file, or the name of a bundled
// kernel (examples/rv/, embedded at build time). SCHEME uses describe()
// syntax: baseline, 8_8_8, 8_8_8+BR, ..., 8_8_8+BR+LR+CR+CP+IR.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "rv/assembler.hpp"
#include "rv/crack.hpp"
#include "rv/kernels.hpp"
#include "sim/simulator.hpp"

using namespace hcsim;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hcrv kernels\n"
               "       hcrv asm   <file.s|kernel> [--list] [-o out.bin]\n"
               "       hcrv run   <file.s|kernel> [--steer SCHEME] [--budget N]\n"
               "       hcrv trace <file.s|kernel> -o out.trace [--budget N]\n");
  return 2;
}

/// Resolve the program argument: bundled kernel name first, then file path.
bool load_source(const std::string& arg, std::string& name, std::string& source) {
  if (const rv::RvKernel* k = rv::find_kernel(arg)) {
    name = k->name;
    source = k->source;
    return true;
  }
  std::ifstream f(arg, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "hcrv: '%s' is neither a bundled kernel nor a readable file\n",
                 arg.c_str());
    return false;
  }
  std::ostringstream os;
  os << f.rdbuf();
  source = os.str();
  const std::size_t slash = arg.find_last_of('/');
  name = slash == std::string::npos ? arg : arg.substr(slash + 1);
  if (name.size() > 2 && name.substr(name.size() - 2) == ".s")
    name = name.substr(0, name.size() - 2);
  return true;
}

bool assemble_arg(const std::string& arg, rv::RvProgram& prog) {
  std::string name, source;
  if (!load_source(arg, name, source)) return false;
  rv::AsmResult res = rv::assemble(name, source);
  if (!res.ok()) {
    std::fprintf(stderr, "hcrv: %s: %s\n", name.c_str(), res.error.c_str());
    return false;
  }
  prog = std::move(res.program);
  return true;
}

u64 parse_budget(const char* s) {
  char* end = nullptr;
  const u64 v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || v == 0) {
    std::fprintf(stderr, "hcrv: bad --budget '%s'\n", s);
    std::exit(2);
  }
  return v;
}

int cmd_kernels() {
  for (const rv::RvKernel& k : rv::bundled_kernels()) {
    rv::AsmResult res = rv::assemble(k.name, k.source);
    if (!res.ok()) {
      std::printf("%-10s (broken: %s)\n", k.name.c_str(), res.error.c_str());
      continue;
    }
    std::printf("%-10s %4u insts, %5zu byte image\n", k.name.c_str(),
                res.program.num_insts(), res.program.image.size());
  }
  return 0;
}

int cmd_asm(const std::string& arg, bool list, const std::string& out_path) {
  rv::RvProgram prog;
  if (!assemble_arg(arg, prog)) return 1;
  std::printf("%s: %u instructions, %zu byte image (%u text + %zu data)\n",
              prog.name.c_str(), prog.num_insts(), prog.image.size(),
              prog.text_bytes, prog.image.size() - prog.text_bytes);
  if (list) {
    for (u32 pc = 0; pc < prog.text_bytes; pc += 4) {
      const u32 word = prog.inst_word(pc);
      std::printf("%6x: %08x  %s\n", pc, word, rv::rv_disassemble(rv::decode(word)).c_str());
    }
    for (const auto& [label, addr] : prog.symbols)
      std::printf("%6x: <%s>\n", addr, label.c_str());
  }
  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(prog.image.data()),
            static_cast<std::streamsize>(prog.image.size()));
    if (!f.good()) {
      std::fprintf(stderr, "hcrv: failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_run(const std::string& arg, const std::string& scheme, u64 budget) {
  rv::RvProgram prog;
  if (!assemble_arg(arg, prog)) return 1;
  const auto steer = steering_from_name(scheme);
  if (!steer) {
    std::fprintf(stderr, "hcrv: unknown steering scheme '%s'\n", scheme.c_str());
    return 2;
  }
  rv::RvTraceInfo info;
  const Trace trace = rv::trace_from_program(prog, budget, &info);
  if (!info.error.empty()) {
    std::fprintf(stderr, "hcrv: %s trapped: %s\n", prog.name.c_str(),
                 info.error.c_str());
    return 1;
  }
  std::printf("%s: %llu RV instructions -> %zu uops (%zu static)%s\n",
              prog.name.c_str(), static_cast<unsigned long long>(info.instret),
              trace.records.size(), trace.program.uops.size(),
              info.completed ? "" : " [budget cut]");

  const SimResult base = simulate(monolithic_baseline(), trace);
  const MachineConfig cfg = steer->helper_enabled ? helper_machine(*steer)
                                                  : monolithic_baseline();
  const SimResult r = simulate(cfg, trace);
  std::printf("baseline      : %.0f wide cycles, IPC %.3f\n", base.wide_cycles,
              base.ipc);
  std::printf("%-14s: %.0f wide cycles, IPC %.3f\n", r.config.c_str(),
              r.wide_cycles, r.ipc);
  std::printf("speedup       : %.3f (%+.1f%%)\n", r.speedup_vs(base),
              100.0 * (r.speedup_vs(base) - 1.0));
  std::printf("steered       : %.1f%% to helper (BR %llu, CR %llu, splits %llu)\n",
              100.0 * r.helper_frac(), (unsigned long long)r.br_steered,
              (unsigned long long)r.cr_steered, (unsigned long long)r.split_uops);
  std::printf("copies        : %.1f%% (w2n %llu, n2w %llu)\n",
              100.0 * r.copy_frac(), (unsigned long long)r.copies_w2n,
              (unsigned long long)r.copies_n2w);
  return 0;
}

int cmd_trace(const std::string& arg, u64 budget, const std::string& out_path) {
  if (out_path.empty()) {
    std::fprintf(stderr, "hcrv trace: -o <out.trace> is required\n");
    return 2;
  }
  rv::RvProgram prog;
  if (!assemble_arg(arg, prog)) return 1;
  rv::RvTraceInfo info;
  const Trace trace = rv::trace_from_program(prog, budget, &info);
  if (!info.error.empty()) {
    std::fprintf(stderr, "hcrv: %s trapped: %s\n", prog.name.c_str(),
                 info.error.c_str());
    return 1;
  }
  if (!save_trace(trace, out_path)) {
    std::fprintf(stderr, "hcrv: failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s: %llu RV instructions -> %zu uops -> %s%s\n", prog.name.c_str(),
              static_cast<unsigned long long>(info.instret), trace.records.size(),
              out_path.c_str(), info.completed ? "" : " [budget cut]");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "kernels") return cmd_kernels();
  if (argc < 3) return usage();
  const std::string prog_arg = argv[2];

  std::string out_path, scheme = "8_8_8+BR+LR+CR+CP+IR";
  bool list = false;
  u64 budget = default_trace_len();
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hcrv: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-o") out_path = next();
    else if (arg == "--list") list = true;
    else if (arg == "--steer") scheme = next();
    else if (arg == "--budget") budget = parse_budget(next());
    else {
      std::fprintf(stderr, "hcrv: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  if (cmd == "asm") return cmd_asm(prog_arg, list, out_path);
  if (cmd == "run") return cmd_run(prog_arg, scheme, budget);
  if (cmd == "trace") return cmd_trace(prog_arg, budget, out_path);
  return usage();
}
