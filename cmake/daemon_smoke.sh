#!/usr/bin/env bash
# Daemon smoke (ctest): start hcsimd on a scratch socket, drive it with
# hcsim_sweep --connect, and demand the fig06 grid's CSV be byte-identical
# to the in-process run. Also covers the sweep CLI contract: --list prints
# the registry, unknown sweep names exit 2 with a diagnostic, and
# --connect --shutdown stops the daemon.
# Usage: daemon_smoke.sh <hcsimd> <hcsim_sweep> <work_dir>
set -euo pipefail

DAEMON=$1
SWEEP=$2
WORK_DIR=$3

rm -rf "$WORK_DIR"
mkdir -p "$WORK_DIR"
SOCK="$WORK_DIR/hcsimd.sock"

# --- CLI contract (no daemon needed) -----------------------------------------
"$SWEEP" --list | grep -q "^fig06 "
"$SWEEP" list | grep -q "^smoke "

set +e
"$SWEEP" no_such_sweep --quiet 2> "$WORK_DIR/unknown.err"
rc=$?
set -e
if [ "$rc" -ne 2 ]; then
  echo "unknown sweep: expected exit 2, got $rc" >&2
  exit 1
fi
grep -q "unknown sweep 'no_such_sweep'" "$WORK_DIR/unknown.err"

set +e
"$SWEEP" fig06 --shutdown --quiet 2> "$WORK_DIR/shutdown.err"
rc=$?
set -e
if [ "$rc" -ne 2 ]; then
  echo "--shutdown without --connect: expected exit 2, got $rc" >&2
  exit 1
fi

# --connect to a socket nobody listens on: the fault-tolerant client retries,
# then falls back to in-process execution (exit 0). With --no-fallback the
# transport failure is surfaced as exit 3. Neither may hang.
"$SWEEP" smoke --quiet --connect "$WORK_DIR/nope.sock" --retry 2 \
  --retry-backoff-ms 10 2> "$WORK_DIR/fallback.err" > /dev/null
grep -q "daemon unreachable; computing" "$WORK_DIR/fallback.err"

set +e
"$SWEEP" smoke --quiet --connect "$WORK_DIR/nope.sock" --no-fallback --retry 2 \
  --retry-backoff-ms 10 2> "$WORK_DIR/refused.err"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "--connect dead socket with --no-fallback: expected exit 3, got $rc" >&2
  exit 1
fi
grep -q "fallback disabled" "$WORK_DIR/refused.err"

# --- daemon round trip --------------------------------------------------------
"$DAEMON" --socket "$SOCK" --threads 2 2> "$WORK_DIR/hcsimd.log" &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT

for _ in $(seq 1 200); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "hcsimd never came up" >&2; cat "$WORK_DIR/hcsimd.log" >&2; exit 1; }

# ISSUE 7 acceptance: the fig06 grid over --connect, byte-identical CSV.
"$SWEEP" fig06 --len 6000 --quiet --csv "$WORK_DIR/local.csv" > /dev/null
"$SWEEP" fig06 --len 6000 --quiet --csv "$WORK_DIR/remote.csv" --connect "$SOCK" > /dev/null
cmp "$WORK_DIR/local.csv" "$WORK_DIR/remote.csv"

# A second request on the warm daemon (cached traces) must agree too.
"$SWEEP" fig06 --len 6000 --quiet --csv "$WORK_DIR/remote2.csv" --connect "$SOCK" > /dev/null
cmp "$WORK_DIR/local.csv" "$WORK_DIR/remote2.csv"

"$SWEEP" --connect "$SOCK" --shutdown
wait "$DPID"
rc=$?
if [ "$rc" -ne 0 ]; then
  echo "hcsimd exited with $rc" >&2
  cat "$WORK_DIR/hcsimd.log" >&2
  exit 1
fi
[ ! -e "$SOCK" ] || { echo "socket not unlinked on shutdown" >&2; exit 1; }

echo "daemon smoke OK"
