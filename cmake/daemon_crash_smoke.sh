#!/usr/bin/env bash
# Crash-recovery smoke (ctest): the ISSUE 9 headline invariant. Kill the
# daemon mid-sweep — both deterministically (HCSIM_FAULT=job.abort:5) and
# with a raw SIGKILL — restart it, and demand the final sweep CSV be
# byte-identical to an uninterrupted in-process run. Also asserts the
# journal actually carries the recovery: after the crash, a rerun against
# the restarted daemon must be served from journals, computing nothing.
# Usage: daemon_crash_smoke.sh <hcsimd> <hcsim_sweep> <work_dir>
set -euo pipefail

DAEMON=$1
SWEEP=$2
WORK_DIR=$3

rm -rf "$WORK_DIR"
mkdir -p "$WORK_DIR"
SOCK="$WORK_DIR/hcsimd.sock"
DPID=""
trap '[ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true' EXIT

start_daemon() {  # start_daemon <log> [env VAR=VAL ...]
  local log=$1; shift
  rm -f "$SOCK"
  env "$@" "$DAEMON" --socket "$SOCK" --threads 2 \
    --journal-dir "$WORK_DIR/daemon_journal" 2> "$log" &
  DPID=$!
  for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && return 0
    sleep 0.05
  done
  echo "hcsimd never came up" >&2
  cat "$log" >&2
  return 1
}

# Ground truth: the smoke grid, in-process, no journals.
"$SWEEP" smoke --len 3000 --quiet --csv "$WORK_DIR/clean.csv" > /dev/null

# --- deterministic crash: abort() before the 5th fresh job -------------------
start_daemon "$WORK_DIR/crash1.log" HCSIM_FAULT=job.abort:5

"$SWEEP" smoke --len 3000 --quiet --csv "$WORK_DIR/crash.csv" \
  --connect "$SOCK" --journal-dir "$WORK_DIR/client_a" \
  --retry 3 --retry-backoff-ms 10 2> "$WORK_DIR/crash.err" > /dev/null
cmp "$WORK_DIR/clean.csv" "$WORK_DIR/crash.csv"
# The daemon must actually have died from the injected abort, and the client
# must have noticed (reconnect attempts and/or local fallback in the summary).
wait "$DPID" && { echo "daemon survived job.abort" >&2; exit 1; }
DPID=""
grep -q "fault tolerance:" "$WORK_DIR/crash.err"
# The client must have seen the crash and finished the remainder itself.
grep -q "connection lost" "$WORK_DIR/crash.err"
grep -Eq "[1-9][0-9]* computed locally" "$WORK_DIR/crash.err"

# --- restart: the daemon journal must carry everything it finished ----------
start_daemon "$WORK_DIR/restart.log"

"$SWEEP" smoke --len 3000 --quiet --csv "$WORK_DIR/recovered.csv" \
  --connect "$SOCK" --journal-dir "$WORK_DIR/client_b" \
  --retry 3 --retry-backoff-ms 10 2> "$WORK_DIR/recovered.err" > /dev/null
cmp "$WORK_DIR/clean.csv" "$WORK_DIR/recovered.csv"
grep -q " 0 computed locally" "$WORK_DIR/recovered.err"
# At least one job must have been a journal hit somewhere (daemon recovered
# the pre-crash work from disk).
grep -Eq "[1-9][0-9]* from daemon journal" "$WORK_DIR/recovered.err"

# A rerun with the now-warm client journal touches no sockets at all.
"$SWEEP" smoke --len 3000 --quiet --csv "$WORK_DIR/rerun.csv" \
  --connect "$SOCK" --journal-dir "$WORK_DIR/client_b" \
  2> "$WORK_DIR/rerun.err" > /dev/null
cmp "$WORK_DIR/clean.csv" "$WORK_DIR/rerun.csv"
grep -q " 0 connect attempt(s)" "$WORK_DIR/rerun.err"

"$SWEEP" --connect "$SOCK" --shutdown
wait "$DPID" || { echo "clean daemon exited nonzero" >&2; cat "$WORK_DIR/restart.log" >&2; exit 1; }
DPID=""

# --- raw SIGKILL mid-sweep ---------------------------------------------------
# No fault injection: start a sweep against a live daemon and SIGKILL the
# daemon while the sweep runs. Whatever the timing — before, during, or
# after the batch — the client must finish with exit 0 and the same bytes.
start_daemon "$WORK_DIR/kill.log"

"$SWEEP" smoke --len 3000 --quiet --csv "$WORK_DIR/killed.csv" \
  --connect "$SOCK" --journal-dir "$WORK_DIR/client_c" \
  --retry 2 --retry-backoff-ms 10 2> "$WORK_DIR/killed.err" > /dev/null &
SWEEP_PID=$!
sleep 0.2
kill -9 "$DPID" 2>/dev/null || true
wait "$SWEEP_PID" || {
  echo "sweep failed after daemon SIGKILL" >&2
  cat "$WORK_DIR/killed.err" >&2
  exit 1
}
wait "$DPID" 2>/dev/null || true
DPID=""
cmp "$WORK_DIR/clean.csv" "$WORK_DIR/killed.csv"

echo "daemon crash smoke OK"
