# CLI round-trip test (ctest): generate a trace twice, dump both, and demand
# byte-identical artifacts; also smoke the hcrv frontend on a bundled kernel.
# Variables: GEN (hctrace_gen), DUMP (hctrace_dump), HCRV (hcrv), WORK_DIR.

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc
                  WORKING_DIRECTORY ${WORK_DIR}
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

function(capture out_var)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  WORKING_DIRECTORY ${WORK_DIR}
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Two independent generations of the same profile must be bit-identical.
run_checked(${GEN} gcc 5000 a.hctrace)
run_checked(${GEN} gcc 5000 b.hctrace)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/a.hctrace ${WORK_DIR}/b.hctrace
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "hctrace_gen is not deterministic: a.hctrace != b.hctrace")
endif()

# The dump of both must agree (load path + formatting determinism).
capture(dump_a ${DUMP} a.hctrace 32)
capture(dump_b ${DUMP} b.hctrace 32)
if(NOT dump_a STREQUAL dump_b)
  message(FATAL_ERROR "hctrace_dump outputs differ for identical traces")
endif()
string(FIND "${dump_a}" "dynamic uops" found)
if(found EQUAL -1)
  message(FATAL_ERROR "hctrace_dump output missing expected header:\n${dump_a}")
endif()

# RV frontend round-trip: hcrv trace -> hctrace_dump must load and identify
# the kernel, twice, byte-identically.
run_checked(${HCRV} trace crc32 -o rv_a.trace --budget 20000)
run_checked(${HCRV} trace crc32 -o rv_b.trace --budget 20000)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/rv_a.trace ${WORK_DIR}/rv_b.trace
                RESULT_VARIABLE rv_same)
if(NOT rv_same EQUAL 0)
  message(FATAL_ERROR "hcrv trace is not deterministic")
endif()
capture(rv_dump ${DUMP} rv_a.trace 8)
string(FIND "${rv_dump}" "trace 'crc32'" rv_found)
if(rv_found EQUAL -1)
  message(FATAL_ERROR "hctrace_dump could not identify the hcrv trace:\n${rv_dump}")
endif()

message(STATUS "tools round-trip OK")
