// hcsim — data-width aware instruction steering policies (the paper's core
// contribution, Section 3).
//
// The pipeline collects a SteerContext for every µop at rename time and asks
// the SteeringPolicy where to send it. Policies are expressed as a feature
// set so the paper's cumulative configurations (8-8-8, +BR, +LR, +CR, +CP,
// +IR, IR-nodest) compose exactly the way the evaluation section stacks
// them.
#pragma once

#include <optional>
#include <string>

#include "isa/uop.hpp"
#include "util/types.hpp"

namespace hcsim {

/// Backend identifiers. The wide cluster owns the FP scheduler; the helper
/// cluster is integer-only (Section 2.1).
enum class Cluster : u8 { kWide = 0, kHelper = 1, kWideFp = 2 };
inline constexpr unsigned kNumIntClusters = 2;  // copy traffic is wide<->helper

/// Feature flags mirroring the paper's schemes.
struct SteeringConfig {
  bool helper_enabled = true;  // false = monolithic baseline
  bool p888 = true;    // Section 3.2: all sources + result narrow
  bool br = false;     // Section 3.3: flags-dependent branches follow producer
  bool lr = false;     // Section 3.4: replicate 8-bit loads into the wide RF
  bool cr = false;     // Section 3.5: carry-confined 8+32->32 ops
  bool cp = false;     // Section 3.6: copy prefetching
  bool ir = false;     // Section 3.7: split wide ops on w->n imbalance
  bool ir_nodest_only = false;  // Section 3.7 fine-tune: split only dest-less µops

  /// IR trigger thresholds on issue-queue occupancy discrepancy: split when
  /// wide occupancy fraction exceeds the first and helper occupancy fraction
  /// is below the second.
  double ir_wide_occ_frac = 0.45;
  double ir_helper_occ_frac = 0.30;

  /// Scheme (5) also works in reverse: "if the helper cluster is overloaded,
  /// we steer narrow instructions to the wide cluster until the workload
  /// balance is restored". Enabled together with IR.
  bool balance_throttle = false;
  double helper_overload_frac = 0.85;

  /// The paper's proposed extension (Section 3.7, last paragraph): split at
  /// a looser granularity — once imbalance triggers a split, the next
  /// `ir_block_len` splittable µops are sent to the helper *as a block*,
  /// and split results are not prefetched back (intra-block consumers stay
  /// in the helper; only actual wide consumers pay demand copies). This
  /// minimizes copies while still reducing imbalance.
  bool ir_block = false;
  unsigned ir_block_len = 8;

  std::string describe() const;

  /// Memberwise equality — the decode cache (src/bbcache) keys cached µop
  /// templates on the steering configuration and must detect any change.
  bool operator==(const SteeringConfig&) const = default;
};

/// Canonical configurations used throughout the evaluation.
SteeringConfig steering_baseline();       // monolithic (no helper cluster)
SteeringConfig steering_888();            // Figure 6/7
SteeringConfig steering_888_br();         // Figure 8
SteeringConfig steering_888_br_lr();      // Figure 9
SteeringConfig steering_888_br_lr_cr();   // Figure 12
SteeringConfig steering_cp();             // Section 3.6 (888+BR+LR+CR+CP)
SteeringConfig steering_ir();             // Section 3.7 full splitting
SteeringConfig steering_ir_nodest();      // Section 3.7 fine-tuned variant
SteeringConfig steering_ir_block();       // Section 3.7 proposed extension

/// Parse a scheme name in describe() syntax ("baseline", "8_8_8",
/// "8_8_8+BR+LR", ..., "+IR(nodest)"/"+IR(block)"). Feature suffixes must
/// appear in describe() order. std::nullopt on malformed names — the CLIs
/// turn that into a usage error.
std::optional<SteeringConfig> steering_from_name(const std::string& name);

/// Everything the rename stage knows about a µop when steering it.
struct SteerContext {
  const StaticUop* uop = nullptr;
  bool helper_capable = false;      // op class exists in the helper cluster
  bool all_srcs_narrow = false;     // known-or-predicted narrow sources
  bool result_pred_narrow = false;  // width predictor output
  bool result_confident = false;    // 2-bit confidence says trust it
  // CR shape: exactly one wide source, remaining sources narrow, result
  // predicted wide — an 8+32->32 candidate (loads/adds/subs only).
  bool cr_shape = false;
  bool carry_pred_confined = false;
  bool carry_confident = false;
  // BR: conditional branch whose flags producer was steered to the helper
  // cluster and whose target resolves in the frontend.
  bool flags_producer_in_helper = false;
  bool frontend_resolvable = false;
  // IR trigger inputs.
  unsigned iq_occ_wide = 0;
  unsigned iq_occ_helper = 0;
  unsigned iq_size_wide = 32;
  unsigned iq_size_helper = 32;
};

/// Steering outcome.
enum class SteerDecision : u8 {
  kWide,      // execute in the 32-bit backend
  kHelper,    // execute in the 8-bit backend (8-8-8 or BR path)
  kHelperCr,  // execute in the helper via the carry-confined path
  kSplit,     // crack into 4 chained 8-bit chunks for the helper (IR)
};

class SteeringPolicy {
 public:
  explicit SteeringPolicy(const SteeringConfig& cfg) : cfg_(cfg) {}

  SteerDecision decide(const SteerContext& ctx) const;
  const SteeringConfig& config() const { return cfg_; }

 private:
  bool ir_triggered(const SteerContext& ctx) const;

  SteeringConfig cfg_;
};

}  // namespace hcsim
