#include "steer/steering.hpp"

#include <sstream>
#include <string_view>

namespace hcsim {

std::string SteeringConfig::describe() const {
  if (!helper_enabled) return "baseline";
  std::ostringstream os;
  os << "8_8_8";
  if (br) os << "+BR";
  if (lr) os << "+LR";
  if (cr) os << "+CR";
  if (cp) os << "+CP";
  if (ir) os << (ir_block ? "+IR(block)" : ir_nodest_only ? "+IR(nodest)" : "+IR");
  return os.str();
}

SteeringConfig steering_baseline() {
  SteeringConfig c;
  c.helper_enabled = false;
  c.p888 = false;
  return c;
}

SteeringConfig steering_888() { return SteeringConfig{}; }

SteeringConfig steering_888_br() {
  SteeringConfig c;
  c.br = true;
  return c;
}

SteeringConfig steering_888_br_lr() {
  SteeringConfig c = steering_888_br();
  c.lr = true;
  return c;
}

SteeringConfig steering_888_br_lr_cr() {
  SteeringConfig c = steering_888_br_lr();
  c.cr = true;
  return c;
}

SteeringConfig steering_cp() {
  SteeringConfig c = steering_888_br_lr_cr();
  c.cp = true;
  return c;
}

SteeringConfig steering_ir() {
  SteeringConfig c = steering_cp();
  c.ir = true;
  c.balance_throttle = true;
  return c;
}

SteeringConfig steering_ir_nodest() {
  SteeringConfig c = steering_ir();
  c.ir_nodest_only = true;
  return c;
}

SteeringConfig steering_ir_block() {
  SteeringConfig c = steering_ir();
  c.ir_block = true;
  return c;
}

std::optional<SteeringConfig> steering_from_name(const std::string& name) {
  if (name == "baseline") return steering_baseline();
  std::string_view rest = name;
  if (rest.substr(0, 5) != "8_8_8") return std::nullopt;
  rest.remove_prefix(5);
  SteeringConfig c;  // plain 8_8_8
  auto take = [&](std::string_view feature) {
    if (rest.substr(0, feature.size()) != feature) return false;
    rest.remove_prefix(feature.size());
    return true;
  };
  if (take("+BR")) c.br = true;
  if (take("+LR")) c.lr = true;
  if (take("+CR")) c.cr = true;
  if (take("+CP")) c.cp = true;
  if (take("+IR(nodest)")) {
    c.ir = c.balance_throttle = c.ir_nodest_only = true;
  } else if (take("+IR(block)")) {
    c.ir = c.balance_throttle = c.ir_block = true;
  } else if (take("+IR")) {
    c.ir = c.balance_throttle = true;
  }
  if (!rest.empty()) return std::nullopt;
  // Round-trip guarantee: the parsed config renders back to the input.
  if (c.describe() != name) return std::nullopt;
  return c;
}

bool SteeringPolicy::ir_triggered(const SteerContext& ctx) const {
  const double wide_frac =
      static_cast<double>(ctx.iq_occ_wide) / static_cast<double>(ctx.iq_size_wide);
  const double helper_frac =
      static_cast<double>(ctx.iq_occ_helper) / static_cast<double>(ctx.iq_size_helper);
  return wide_frac >= cfg_.ir_wide_occ_frac && helper_frac <= cfg_.ir_helper_occ_frac;
}

SteerDecision SteeringPolicy::decide(const SteerContext& ctx) const {
  if (!cfg_.helper_enabled) return SteerDecision::kWide;
  const StaticUop& u = *ctx.uop;

  if (!ctx.helper_capable) return SteerDecision::kWide;

  // Reverse imbalance reduction: when the helper cluster is overloaded,
  // narrow instructions go back to the wide cluster until balance is
  // restored (Section 3.7, introduction of scheme 5).
  const bool helper_overloaded =
      cfg_.balance_throttle &&
      static_cast<double>(ctx.iq_occ_helper) >
          cfg_.helper_overload_frac * static_cast<double>(ctx.iq_size_helper);
  if (helper_overloaded && !is_branch(u.opcode)) return SteerDecision::kWide;

  // (3.3) BR: a conditional branch follows its flags producer into the
  // helper cluster, provided the frontend can resolve its target. This both
  // raises helper occupancy and kills the flags copy.
  if (is_branch(u.opcode)) {
    if (cfg_.br && ctx.flags_producer_in_helper && ctx.frontend_resolvable)
      return SteerDecision::kHelper;
    return SteerDecision::kWide;
  }

  // (3.2) 8-8-8: every source and the result narrow, with high confidence.
  const bool result_ok =
      !u.has_dst() || (ctx.result_pred_narrow && ctx.result_confident);
  if (cfg_.p888 && ctx.all_srcs_narrow && result_ok) return SteerDecision::kHelper;

  // (3.5) CR: one wide source, narrow remainder, result predicted wide, and
  // the carry predictor says (confidently) the carry stays in the low byte.
  if (cfg_.cr && ctx.cr_shape && ctx.carry_pred_confined && ctx.carry_confident)
    return SteerDecision::kHelperCr;

  // (3.7) IR: on wide->narrow imbalance, split a wide ALU µop into 8-bit
  // chunks for the underutilized helper cluster.
  if (cfg_.ir && opcode_info(u.opcode).op_class == OpClass::kIntAlu &&
      !is_branch(u.opcode) && ir_triggered(ctx)) {
    if (!cfg_.ir_nodest_only || !u.has_dst()) return SteerDecision::kSplit;
  }

  return SteerDecision::kWide;
}

}  // namespace hcsim
