#include <algorithm>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "wload/profile.hpp"

namespace hcsim {
namespace {

WorkloadProfile base_int() {
  WorkloadProfile p;
  return p;
}

/// Tuning notes. Each profile encodes the qualitative behaviour the paper
/// reports for that benchmark rather than any proprietary knowledge:
///  * Figure 1 narrow-dependency ordering (bzip2/gzip/parser high, crafty/
///    vortex lower),
///  * Figure 6: bzip2 worst 8-8-8 performer with a high copy/narrow ratio,
///    gcc best with a low copy/narrow ratio,
///  * mcf memory bound (tiny speedups on any scheme),
///  * Figure 11: loads confine carries more often than arithmetic.
std::vector<WorkloadProfile> make_spec() {
  std::vector<WorkloadProfile> v;

  {  // bzip2 — byte-stream compression: very narrow, but narrow results are
     // constantly used as table indices -> highest copy pressure.
    WorkloadProfile p = base_int();
    p.name = "bzip2";
    p.seed = 0xB21;
    p.w_narrow_chain = 1.35; p.w_wide_chain = 1.0; p.w_cr_chain = 0.8;
    p.p_cross_width_use = 0.80; p.value_stability = 0.90;
    p.p_narrow_flags = 0.92;  // byte-stream compares
    p.byte_footprint_log2 = 18; p.word_footprint_log2 = 19;
    p.p_carry_propagate = 0.16;
    v.push_back(p);
  }
  {  // crafty — chess: wide bitboard-style logic dominates.
    WorkloadProfile p = base_int();
    p.name = "crafty";
    p.seed = 0xC4A;
    p.w_narrow_chain = 0.55; p.w_wide_chain = 2.2; p.w_cr_chain = 0.7;
    p.w_branchy_chain = 0.8; p.p_cross_width_use = 0.30;
    p.value_stability = 0.93; p.p_wide_loop = 0.2;
    v.push_back(p);
  }
  {  // eon — C++ ray tracing: mixed integer with an FP component.
    WorkloadProfile p = base_int();
    p.name = "eon";
    p.seed = 0xE01;
    p.w_narrow_chain = 0.70; p.w_wide_chain = 1.4; p.w_cr_chain = 0.7;
    p.w_fp_chain = 0.5; p.p_cross_width_use = 0.28;
    v.push_back(p);
  }
  {  // gap — computational group theory: arithmetic and mul heavy.
    WorkloadProfile p = base_int();
    p.name = "gap";
    p.seed = 0x6A9;
    p.w_narrow_chain = 0.75; p.w_wide_chain = 1.3; p.w_cr_chain = 0.9;
    p.w_muldiv_chain = 0.25; p.p_cross_width_use = 0.30;
    v.push_back(p);
  }
  {  // gcc — compiler: flags/branches everywhere, narrow values stay in
     // narrow contexts -> lowest copy/narrow ratio, best 8-8-8 speedup.
    WorkloadProfile p = base_int();
    p.name = "gcc";
    p.seed = 0x6CC;
    p.w_narrow_chain = 1.30; p.w_wide_chain = 0.9; p.w_cr_chain = 1.1;
    p.w_branchy_chain = 1.4; p.p_cross_width_use = 0.08;
    p.p_narrow_flags = 0.35;  // gcc compares pointers more than bytes
    p.value_stability = 0.95; p.num_loops = 24;
    v.push_back(p);
  }
  {  // gzip — LZ byte compression: narrow heavy, moderate cross-width.
    WorkloadProfile p = base_int();
    p.name = "gzip";
    p.seed = 0x621;
    p.w_narrow_chain = 1.25; p.w_wide_chain = 0.9; p.w_cr_chain = 0.9;
    p.p_cross_width_use = 0.30; p.byte_footprint_log2 = 17;
    v.push_back(p);
  }
  {  // mcf — network simplex: pointer chasing over a huge footprint;
     // memory bound so every steering scheme helps little.
    WorkloadProfile p = base_int();
    p.name = "mcf";
    p.seed = 0x3CF;
    p.w_narrow_chain = 0.50; p.w_wide_chain = 2.4; p.w_cr_chain = 1.0;
    p.p_pointer_chase = 0.5; p.p_cross_width_use = 0.25;
    p.byte_footprint_log2 = 24; p.word_footprint_log2 = 26;
    p.p_wide_loop = 0.3;
    v.push_back(p);
  }
  {  // parser — word processing: character data, many branches.
    WorkloadProfile p = base_int();
    p.name = "parser";
    p.seed = 0xAA5;
    p.w_narrow_chain = 1.10; p.w_wide_chain = 1.1; p.w_cr_chain = 0.9;
    p.w_branchy_chain = 1.2; p.p_cross_width_use = 0.22;
    v.push_back(p);
  }
  {  // perlbmk — interpreter: dispatch-style branches, mixed widths.
    WorkloadProfile p = base_int();
    p.name = "perlbmk";
    p.seed = 0x9E7;
    p.w_narrow_chain = 0.85; p.w_wide_chain = 1.3; p.w_cr_chain = 0.8;
    p.w_branchy_chain = 1.3; p.p_cross_width_use = 0.30;
    p.value_stability = 0.90;
    v.push_back(p);
  }
  {  // twolf — placement/routing: integer arithmetic, moderate widths.
    WorkloadProfile p = base_int();
    p.name = "twolf";
    p.seed = 0x201F;
    p.w_narrow_chain = 0.80; p.w_wide_chain = 1.4; p.w_cr_chain = 0.9;
    p.w_muldiv_chain = 0.12; p.p_cross_width_use = 0.27;
    v.push_back(p);
  }
  {  // vortex — OO database: pointer heavy, moderate narrow content.
    WorkloadProfile p = base_int();
    p.name = "vortex";
    p.seed = 0x0E7E;
    p.w_narrow_chain = 0.60; p.w_wide_chain = 2.0; p.w_cr_chain = 1.0;
    p.p_cross_width_use = 0.33; p.word_footprint_log2 = 20;
    v.push_back(p);
  }
  {  // vpr — place & route: mixed arithmetic.
    WorkloadProfile p = base_int();
    p.name = "vpr";
    p.seed = 0x0B9;
    p.w_narrow_chain = 0.80; p.w_wide_chain = 1.2; p.w_cr_chain = 1.0;
    p.w_muldiv_chain = 0.10; p.p_cross_width_use = 0.25;
    v.push_back(p);
  }
  return v;
}

std::vector<WorkloadCategory> make_categories() {
  std::vector<WorkloadCategory> v;
  auto add = [&](const char* name, const char* desc, unsigned n,
                 WorkloadProfile base) {
    base.name = name;
    v.push_back(WorkloadCategory{name, desc, n, std::move(base)});
  };

  {  // Audio/video encode: regular byte/sample kernels.
    WorkloadProfile p = base_int();
    p.w_narrow_chain = 1.60; p.w_wide_chain = 0.9; p.w_cr_chain = 1.4;
    p.p_cross_width_use = 0.18; p.w_muldiv_chain = 0.10;
    p.w_branchy_chain = 0.3; p.p_narrow_flags = 0.90;
    add("enc", "Audio/video encode", 62, p);
  }
  {  // SPEC FP: FP kernels with narrow loop control and address arithmetic.
    WorkloadProfile p = base_int();
    p.w_narrow_chain = 0.65; p.w_wide_chain = 1.0; p.w_cr_chain = 1.3;
    p.w_fp_chain = 1.6; p.p_cross_width_use = 0.12;
    add("sfp", "Spec FP's", 41, p);
  }
  {  // Kernels: VectorAdd, FIRs — extremely regular.
    WorkloadProfile p = base_int();
    p.w_narrow_chain = 1.20; p.w_wide_chain = 0.8; p.w_cr_chain = 1.7;
    p.w_branchy_chain = 0.15; p.p_cross_width_use = 0.10;
    p.value_stability = 0.97;
    add("kernels", "VectorAdd, FIRs", 52, p);
  }
  {  // Multimedia: WMedia, photoshop — regular control flow, arithmetic.
    WorkloadProfile p = base_int();
    p.w_narrow_chain = 1.30; p.w_wide_chain = 1.0; p.w_cr_chain = 1.5;
    p.w_branchy_chain = 0.3; p.p_cross_width_use = 0.15;
    p.p_narrow_flags = 0.85;
    add("mm", "WMedia, photoshop", 85, p);
  }
  {  // Office: Excel, word, ppt — irregular, pointer and branch heavy.
    WorkloadProfile p = base_int();
    p.w_narrow_chain = 0.55; p.w_wide_chain = 2.0; p.w_cr_chain = 0.7;
    p.w_branchy_chain = 1.6; p.p_cross_width_use = 0.40;
    p.value_stability = 0.85; p.word_footprint_log2 = 22;
    p.p_pointer_chase = 0.25; p.p_narrow_flags = 0.30;
    add("office", "Excel, word, ppt", 75, p);
  }
  {  // Productivity: internet content — similar to office, slightly more
     // byte handling (text/markup).
    WorkloadProfile p = base_int();
    p.w_narrow_chain = 0.70; p.w_wide_chain = 1.7; p.w_cr_chain = 0.8;
    p.w_branchy_chain = 1.4; p.p_cross_width_use = 0.36;
    p.value_stability = 0.86; p.word_footprint_log2 = 21;
    p.p_pointer_chase = 0.15; p.p_narrow_flags = 0.35;
    add("prod", "Internet content", 45, p);
  }
  {  // Workstation: paper lists the same exemplars as kernels; modeled as a
     // slightly less regular kernels family.
    WorkloadProfile p = base_int();
    p.w_narrow_chain = 1.05; p.w_wide_chain = 1.1; p.w_cr_chain = 1.4;
    p.w_branchy_chain = 0.5; p.p_cross_width_use = 0.16;
    add("ws", "VectorAdd, FIRs", 49, p);
  }
  return v;
}

}  // namespace

const std::vector<WorkloadProfile>& spec_int_2000_profiles() {
  static const std::vector<WorkloadProfile> kProfiles = make_spec();
  return kProfiles;
}

const WorkloadProfile& spec_profile(const std::string& name) {
  for (const auto& p : spec_int_2000_profiles())
    if (p.name == name) return p;
  HCSIM_CHECK(false, "unknown SPEC profile: " + name);
}

const std::vector<WorkloadCategory>& workload_categories() {
  static const std::vector<WorkloadCategory> kCategories = make_categories();
  return kCategories;
}

WorkloadProfile category_app_profile(const WorkloadCategory& cat, unsigned index) {
  HCSIM_CHECK(index < cat.num_traces, "category app index out of range");
  WorkloadProfile p = cat.base;
  p.name = cat.name + "_" + std::to_string(index);

  // Deterministic per-app jitter: every app in a family shares the family's
  // character but differs in mix, footprint and predictability, producing
  // the spread of the Figure 14 S-curve.
  u64 s = cat.base.seed ^ (0x9E3779B97F4A7C15ull * (index + 1));
  for (char c : cat.name) s = s * 131 + static_cast<unsigned char>(c);
  Rng rng(s);
  p.seed = rng.next_u64();

  // Jitter widths by +/-25% around the family base: enough spread for the
  // Figure 14 S-curve, narrow enough that category character survives.
  auto jitter = [&](double w) {
    return std::max(0.02, w * (0.75 + 0.5 * rng.uniform()));
  };
  p.w_narrow_chain = jitter(p.w_narrow_chain);
  p.w_wide_chain = jitter(p.w_wide_chain);
  p.w_cr_chain = jitter(p.w_cr_chain);
  p.w_branchy_chain = jitter(p.w_branchy_chain);
  p.w_muldiv_chain = jitter(p.w_muldiv_chain + 0.02);
  if (p.w_fp_chain > 0) p.w_fp_chain = jitter(p.w_fp_chain);
  p.p_cross_width_use = std::clamp(p.p_cross_width_use * (0.8 + 0.4 * rng.uniform()), 0.02, 0.8);
  p.value_stability = std::clamp(p.value_stability + (rng.uniform() - 0.5) * 0.04, 0.75, 0.99);
  p.p_carry_propagate = std::clamp(p.p_carry_propagate * (0.7 + 0.6 * rng.uniform()), 0.01, 0.5);
  p.num_loops = static_cast<unsigned>(rng.range(10, 20));
  // Footprints stay near the family base (memory character is categorical).
  p.byte_footprint_log2 = static_cast<unsigned>(
      std::clamp<i64>(rng.range(-1, 1) + p.byte_footprint_log2, 12, 22));
  p.word_footprint_log2 = static_cast<unsigned>(
      std::clamp<i64>(rng.range(-1, 1) + p.word_footprint_log2, 14, 24));
  p.p_wide_loop = std::clamp(p.p_wide_loop * (0.7 + 0.6 * rng.uniform()), 0.0, 0.6);
  return p;
}

}  // namespace hcsim
