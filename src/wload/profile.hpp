// hcsim — workload profiles.
//
// The paper evaluates on proprietary traces: 12 SPEC Int 2000 traces for the
// detailed studies and 412 traces across 7 categories (Table 2) for the
// wrap-up. We cannot ship those, so each workload is described by a profile
// that drives a structured program generator (program_gen.hpp) whose
// functional execution reproduces the *width-relevant* characteristics the
// steering policies key on: narrow-operand mix, narrow data-width
// dependency (Figure 1), width predictability (Figure 5), carry-confinement
// rates (Figure 11), producer-consumer distances (Figure 13), copy pressure
// and memory behaviour.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace hcsim {

struct WorkloadProfile {
  std::string name;
  u64 seed = 1;

  /// Non-empty = this workload is a bundled RISC-V kernel (src/rv): trace
  /// generation assembles, executes and cracks the named kernel instead of
  /// running the synthetic program generator, and every other knob below is
  /// ignored. RV traces are deterministic functions of the kernel source
  /// alone, so `seed` only participates in cache keying.
  std::string rv_kernel;

  // --- static code shape -------------------------------------------------
  unsigned num_loops = 12;       // top-level loop nests in the program
  unsigned body_chains_min = 2;  // compute chains per loop body
  unsigned body_chains_max = 6;
  double p_nested_loop = 0.3;    // probability a loop nest has depth 2

  // --- chain mix (normalised internally) ----------------------------------
  double w_narrow_chain = 1.0;  // byte loads + narrow ALU (+ byte store)
  double w_wide_chain = 1.0;    // pointer arithmetic + word loads
  double w_cr_chain = 0.6;      // wide base + narrow offset address math
  double w_muldiv_chain = 0.05; // long-latency integer
  double w_fp_chain = 0.0;      // FP arithmetic (wide cluster only)
  double w_branchy_chain = 0.4; // data-dependent forward branches

  // --- value behaviour -----------------------------------------------------
  /// Probability that a narrow chain's final value is additionally consumed
  /// by a wide computation (indexing/addressing) — this is the knob that
  /// creates inter-cluster copy pressure (high for bzip2, low for gcc in the
  /// paper's Figure 6/7 discussion).
  double p_cross_width_use = 0.25;
  /// Fraction of word-array elements that happen to be narrow (value
  /// locality of loads); lower values make width prediction harder.
  double value_stability = 0.92;
  /// Probability that a CR-style base register has a large low byte so the
  /// narrow-offset add carries into the upper bits (fatal CR misprediction).
  double p_carry_propagate = 0.10;

  // --- loop behaviour ------------------------------------------------------
  unsigned trip_min = 8;
  unsigned trip_max = 180;       // < 256 keeps induction variables narrow
  double p_wide_loop = 0.12;     // loops with trip counts up to ~4000

  // --- memory behaviour ----------------------------------------------------
  /// log2 of the byte-array footprint; large values defeat the caches
  /// (mcf-style memory-bound behaviour).
  unsigned byte_footprint_log2 = 14;
  unsigned word_footprint_log2 = 16;
  double p_pointer_chase = 0.0;  // wide loads feeding the next load address

  // --- instruction mix extras ---------------------------------------------
  double p_store = 0.45;  // stores appended to narrow chains
  /// Fraction of data-dependent branches whose flags producer tests a
  /// narrow value (byte compares) rather than a wide one (pointer
  /// compares). Narrow flags producers are what the BR scheme chases.
  double p_narrow_flags = 0.70;
};

/// The 12 SPEC Int 2000 benchmarks of the paper's detailed evaluation.
const std::vector<WorkloadProfile>& spec_int_2000_profiles();

/// Look up a single SPEC profile by name ("gcc", "mcf", ...). Aborts if
/// unknown.
const WorkloadProfile& spec_profile(const std::string& name);

/// Table 2 workload categories.
struct WorkloadCategory {
  std::string name;         // enc, sfp, kernels, mm, office, prod, ws
  std::string description;  // paper's description column
  unsigned num_traces;      // paper's #traces column
  WorkloadProfile base;     // family base profile; apps jitter around it
};

const std::vector<WorkloadCategory>& workload_categories();

/// The i-th application of a category: base profile with deterministic
/// per-app parameter jitter (i in [0, num_traces)).
WorkloadProfile category_app_profile(const WorkloadCategory& cat, unsigned index);

}  // namespace hcsim
