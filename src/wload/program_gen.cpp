#include "wload/program_gen.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace hcsim {
namespace {

using namespace mem_layout;

/// Register allocation convention for generated programs:
///   ebp — byte-array base       esp — word-array base
///   edi — CR base (wide ptr)    esi — pointer-chase cursor
///   ecx — outer loop counter    edx — inner loop counter
///   eax, ebx, t0..t7 — scratch, allocated round-robin
class Builder {
 public:
  explicit Builder(const WorkloadProfile& p) : prof_(p), rng_(p.seed) {}

  Program build() {
    const unsigned loops = std::max(1u, prof_.num_loops);
    for (unsigned i = 0; i < loops; ++i) emit_loop_nest(/*depth=*/0, kRegEcx);
    prog_.name = prof_.name;
    return std::move(prog_);
  }

 private:
  // --- emission primitives -------------------------------------------------
  u32 emit(StaticUop u, u32 target = 0) {
    u.pc = static_cast<u32>(prog_.uops.size());
    prog_.uops.push_back(u);
    prog_.branch_targets.push_back(target);
    return u.pc;
  }

  StaticUop alu(Opcode op, RegId dst, RegId a, RegId b) {
    StaticUop u;
    u.opcode = op;
    u.dst = dst;
    u.srcs = {a, b, kRegNone};
    return u;
  }

  StaticUop alui(Opcode op, RegId dst, RegId a, u32 imm) {
    StaticUop u;
    u.opcode = op;
    u.dst = dst;
    u.srcs = {a, kRegNone, kRegNone};
    u.has_imm = true;
    u.imm = imm;
    return u;
  }

  StaticUop movi(RegId dst, u32 imm) {
    StaticUop u;
    u.opcode = Opcode::kMovImm;
    u.dst = dst;
    u.has_imm = true;
    u.imm = imm;
    return u;
  }

  StaticUop load(Opcode op, RegId dst, RegId base, RegId index, u32 disp) {
    StaticUop u;
    u.opcode = op;
    u.dst = dst;
    u.srcs = {base, index, kRegNone};
    u.has_imm = true;
    u.imm = disp;
    return u;
  }

  StaticUop store(Opcode op, RegId base, RegId index, RegId data, u32 disp) {
    StaticUop u;
    u.opcode = op;
    u.srcs = {base, index, data};
    u.has_imm = true;
    u.imm = disp;
    return u;
  }

  RegId scratch() {
    // t7 is reserved as the loop accumulator, t6 as a spare wide temp.
    static constexpr RegId kPool[] = {kRegEax, kRegEbx, kRegT0, kRegT1,
                                      kRegT2,  kRegT3,  kRegT4, kRegT5};
    return kPool[scratch_next_++ % (sizeof(kPool) / sizeof(kPool[0]))];
  }

  Opcode random_narrow_alu() {
    static constexpr Opcode kOps[] = {Opcode::kAdd, Opcode::kSub, Opcode::kAnd,
                                      Opcode::kXor, Opcode::kOr};
    return kOps[rng_.below(5)];
  }

  // --- structure ------------------------------------------------------------
  void emit_loop_nest(unsigned depth, RegId ctr) {
    // Fresh base registers per loop nest so different loops touch different
    // slices of each region (and large-footprint profiles defeat the caches).
    const u32 byte_span = (1u << prof_.byte_footprint_log2);
    const u32 word_span = (1u << prof_.word_footprint_log2);
    // Array bases are allocator-aligned (64B), so index+displacement adds
    // rarely carry past the low byte — the behaviour CR exploits.
    emit(movi(kRegEbp, kByteRegionBase + align64(rng_.below(byte_span))));
    emit(movi(kRegEsp, kWordRegionBase + align64(rng_.below(word_span))));
    // CR base: a wide pointer whose low byte is small, so a narrow-offset
    // add stays carry-confined (Figure 10). With p_carry_propagate the low
    // byte is large instead, making carries escape and exercising the CR
    // recovery path.
    const u32 cr_low = rng_.chance(prof_.p_carry_propagate)
                           ? 0xC0u + static_cast<u32>(rng_.below(0x40))
                           : static_cast<u32>(rng_.below(0x20));
    emit(movi(kRegEdi, kPtrRegionBase + (align256(rng_.below(word_span)) | cr_low)));
    if (prof_.p_pointer_chase > 0)
      emit(movi(kRegEsi, kPtrRegionBase + align4(rng_.below(word_span))));
    // Wide accumulator (sum += byte patterns accumulate into it).
    emit(movi(kRegT7, 0x00020000u + static_cast<u32>(rng_.below(1u << 20))));

    // Inner loops run short trips (classic loop-nest shape); this also keeps
    // any single nest from monopolizing the dynamic window.
    const bool wide_loop = depth == 0 && rng_.chance(prof_.p_wide_loop);
    u32 trip;
    if (depth > 0) {
      trip = static_cast<u32>(rng_.range(4, 24));
    } else if (wide_loop) {
      trip = static_cast<u32>(rng_.range(300, 1500));
    } else {
      trip = static_cast<u32>(
          rng_.range(prof_.trip_min, std::max(prof_.trip_min + 1u, prof_.trip_max)));
    }

    emit(movi(ctr, 0));
    const u32 top = static_cast<u32>(prog_.uops.size());

    const unsigned chains = static_cast<unsigned>(
        rng_.range(prof_.body_chains_min, std::max(prof_.body_chains_min + 1u, prof_.body_chains_max)));
    for (unsigned c = 0; c < chains; ++c) emit_chain(ctr);

    if (depth == 0 && rng_.chance(prof_.p_nested_loop)) emit_loop_nest(depth + 1, kRegEdx);

    // Loop latch: increment, compare against the trip count, branch back.
    // The compare writes the flags the back-edge branch reads; with a
    // narrow trip count the flags producer is narrow (the BR case).
    emit(alui(Opcode::kAdd, ctr, ctr, 1));
    emit(alui(Opcode::kCmp, kRegNone, ctr, trip));
    StaticUop br;
    br.opcode = Opcode::kBranchCond;
    br.srcs = {kRegFlags, kRegNone, kRegNone};
    br.has_imm = true;
    br.imm = kCondNe;
    emit(br, top);
  }

  void emit_chain(RegId ctr) {
    const double total = prof_.w_narrow_chain + prof_.w_wide_chain + prof_.w_cr_chain +
                         prof_.w_muldiv_chain + prof_.w_fp_chain + prof_.w_branchy_chain;
    double pick = rng_.uniform() * total;
    if ((pick -= prof_.w_narrow_chain) < 0) return emit_narrow_chain(ctr);
    if ((pick -= prof_.w_wide_chain) < 0) return emit_wide_chain(ctr);
    if ((pick -= prof_.w_cr_chain) < 0) return emit_cr_chain(ctr);
    if ((pick -= prof_.w_muldiv_chain) < 0) return emit_muldiv_chain(ctr);
    if ((pick -= prof_.w_fp_chain) < 0) return emit_fp_chain();
    return emit_branchy_chain(ctr);
  }

  // Byte load -> 1..3 narrow ALU ops -> optional byte store. All values are
  // 8-bit; with p_cross_width_use the final narrow value is additionally
  // consumed by a wide address computation (inter-cluster copy pressure).
  void emit_narrow_chain(RegId ctr) {
    const RegId v = scratch();
    emit(load(Opcode::kLoadByte, v, kRegEbp, ctr, static_cast<u32>(rng_.below(56))));
    RegId cur = v;
    const unsigned n_ops = 1 + static_cast<unsigned>(rng_.below(2));
    for (unsigned i = 0; i < n_ops; ++i) {
      const RegId nxt = scratch();
      if (last_narrow_ != kRegNone && rng_.chance(0.45)) {
        emit(alu(random_narrow_alu(), nxt, cur, last_narrow_));  // two narrow regs
      } else {
        emit(alui(random_narrow_alu(), nxt, cur, static_cast<u32>(rng_.below(100))));
      }
      cur = nxt;
    }
    if (rng_.chance(prof_.p_store))
      emit(store(Opcode::kStoreByte, kRegEbp, ctr, cur, static_cast<u32>(rng_.below(56))));
    last_narrow_ = cur;

    // Accumulator pattern (sum += byte): a narrow operand feeding a wide
    // accumulation — narrow data-width *dependent* (Figure 1) but not
    // 8-8-8-steerable, since the result is wide. CR-class work.
    if (rng_.chance(0.45))
      emit(alu(Opcode::kAdd, kRegT7, kRegT7, cur));

    if (rng_.chance(prof_.p_cross_width_use)) {
      // Narrow result used as a table index: wide consumer of a narrow
      // producer. This is the bzip2-style pattern that generates copies.
      const RegId p = scratch();
      emit(alu(Opcode::kAdd, p, kRegEsp, cur));
      emit(load(Opcode::kLoad, scratch(), p, kRegNone, static_cast<u32>(align4(rng_.below(256)))));
      if (rng_.chance(prof_.p_cross_width_use)) {
        // Heavy cross-width profiles consume intermediate narrow values
        // widely too (two table lookups per byte), doubling copy pressure.
        const RegId p2 = scratch();
        emit(alu(Opcode::kAdd, p2, kRegEsp, v));
        emit(load(Opcode::kLoad, scratch(), p2, kRegNone,
                  static_cast<u32>(align4(rng_.below(256)))));
      }
    }
  }

  // Pointer arithmetic + word load + wide integer ops.
  void emit_wide_chain(RegId ctr) {
    const RegId idx = scratch();
    // Scale the induction variable so the touched span tracks the profile's
    // footprint (big footprints -> strides that defeat the caches).
    const unsigned max_shift =
        prof_.word_footprint_log2 > 14 ? prof_.word_footprint_log2 - 13 : 2;
    emit(alui(Opcode::kShl, idx, ctr, 2 + static_cast<u32>(rng_.below(std::max(1u, max_shift)))));
    const RegId p = scratch();
    emit(alu(Opcode::kAdd, p, kRegEsp, idx));
    const RegId v = scratch();
    if (prof_.p_pointer_chase > 0 && rng_.chance(prof_.p_pointer_chase)) {
      // Pointer chase: the loaded value is the next address.
      emit(load(Opcode::kLoad, kRegEsi, kRegEsi, kRegNone, 0));
      emit(alu(Opcode::kXor, v, kRegEsi, p));
    } else {
      emit(load(Opcode::kLoad, v, p, kRegNone, static_cast<u32>(align4(rng_.below(64)))));
      // A short dependent wide-ALU tail: this is the work that keeps the
      // wide scheduler busy and that IR can offload when it backs up.
      RegId w = scratch();
      emit(alu(rng_.chance(0.5) ? Opcode::kAdd : Opcode::kXor, w, v, p));
      const unsigned tail = static_cast<unsigned>(rng_.below(3));
      for (unsigned i = 0; i < tail; ++i) {
        const RegId w2 = scratch();
        emit(alu(rng_.chance(0.5) ? Opcode::kAdd : Opcode::kOr, w2, w,
                 rng_.chance(0.5) ? kRegEsp : kRegT7));
        w = w2;
      }
      last_wide_ = w;
    }
    if (rng_.chance(prof_.p_store * 0.5))
      emit(store(Opcode::kStore, p, kRegNone, last_wide_ != kRegNone ? last_wide_ : v,
                 static_cast<u32>(align4(rng_.below(64)))));
  }

  // The CR pattern of Section 3.5: wide base + narrow offset. Both the AGU
  // form (a load whose address is base+offset) and the plain-arithmetic
  // form are emitted.
  void emit_cr_chain(RegId ctr) {
    RegId off = ctr;
    if (rng_.chance(0.5)) {
      off = scratch();
      emit(alui(Opcode::kAnd, off, ctr, 0x1F));  // definitely narrow offset
    }
    const RegId v = scratch();
    emit(load(Opcode::kLoad, v, kRegEdi, off, static_cast<u32>(rng_.below(16))));
    if (rng_.chance(0.6)) {
      const RegId a = scratch();
      emit(alu(Opcode::kAdd, a, kRegEdi, off));  // 8+32 -> 32 arithmetic
      last_wide_ = a;
    }
  }

  void emit_muldiv_chain(RegId ctr) {
    const RegId a = scratch();
    emit(alui(Opcode::kAdd, a, ctr, static_cast<u32>(rng_.below(50))));
    const RegId d = scratch();
    if (rng_.chance(0.85))
      emit(alu(Opcode::kMul, d, a, last_wide_ != kRegNone ? last_wide_ : kRegEsp));
    else
      emit(alu(Opcode::kDiv, d, last_wide_ != kRegNone ? last_wide_ : kRegEsp, a));
    last_wide_ = d;
  }

  void emit_fp_chain() {
    const unsigned n = 2 + static_cast<unsigned>(rng_.below(3));
    for (unsigned i = 0; i < n; ++i) {
      StaticUop u;
      const double r = rng_.uniform();
      u.opcode = r < 0.5 ? Opcode::kFpAdd : (r < 0.85 ? Opcode::kFpMul : Opcode::kFpDiv);
      const RegId d = static_cast<RegId>(kRegF0 + rng_.below(kNumFpRegs));
      const RegId s0 = static_cast<RegId>(kRegF0 + rng_.below(kNumFpRegs));
      const RegId s1 = static_cast<RegId>(kRegF0 + rng_.below(kNumFpRegs));
      u.dst = d;
      u.srcs = {s0, s1, kRegNone};
      emit(u);
    }
  }

  // A data-dependent forward branch guarding 1-2 filler ops. The flags
  // producer is a TEST of a narrow value, so when the test executes in the
  // helper cluster the BR scheme can steer the branch there too.
  void emit_branchy_chain(RegId ctr) {
    const RegId v = scratch();
    emit(load(Opcode::kLoadByte, v, kRegEbp, ctr, static_cast<u32>(rng_.below(224))));
    StaticUop t;
    if (rng_.chance(prof_.p_narrow_flags)) {
      t = alu(Opcode::kTest, kRegNone, v, v);
      t.dst = kRegNone;
    } else {
      // Occasionally compare two wide values instead (flags producer wide).
      t = alu(Opcode::kCmp, kRegNone, last_wide_ != kRegNone ? last_wide_ : kRegEsp, v);
      t.dst = kRegNone;
    }
    emit(t);

    StaticUop br;
    br.opcode = Opcode::kBranchCond;
    br.srcs = {kRegFlags, kRegNone, kRegNone};
    br.has_imm = true;
    br.imm = rng_.chance(0.5) ? kCondEq : kCondLt;
    const u32 br_pc = emit(br, /*target=*/0);  // patched below

    const unsigned filler = 1 + static_cast<unsigned>(rng_.below(2));
    for (unsigned i = 0; i < filler; ++i) {
      const RegId d = scratch();
      emit(alui(random_narrow_alu(), d, v, static_cast<u32>(rng_.below(64))));
    }
    prog_.branch_targets[br_pc] = static_cast<u32>(prog_.uops.size());
  }

  static u32 align4(u64 x) { return static_cast<u32>(x) & ~3u; }
  static u32 align64(u64 x) { return static_cast<u32>(x) & ~63u; }
  static u32 align256(u64 x) { return static_cast<u32>(x) & ~255u; }

  const WorkloadProfile& prof_;
  Rng rng_;
  Program prog_;
  unsigned scratch_next_ = 0;
  RegId last_narrow_ = kRegNone;
  RegId last_wide_ = kRegNone;
};

}  // namespace

Program generate_program(const WorkloadProfile& profile) {
  Builder b(profile);
  Program p = b.build();
  HCSIM_CHECK(!p.uops.empty(), "generated empty program");
  return p;
}

}  // namespace hcsim
