#include "wload/executor.hpp"

#include <array>

#include "rv/kernels.hpp"
#include "util/log.hpp"
#include "util/narrow.hpp"
#include "wload/program_gen.hpp"

namespace hcsim {
namespace {

using namespace mem_layout;

/// Deterministic 32-bit mixer (finalizer of murmur3) — used to synthesize
/// stable per-address memory contents.
constexpr u32 mix32(u32 x) {
  x ^= x >> 16;
  x *= 0x85EBCA6Bu;
  x ^= x >> 13;
  x *= 0xC2B2AE35u;
  x ^= x >> 16;
  return x;
}

constexpr double unit(u32 h) { return static_cast<double>(h) * 0x1p-32; }

}  // namespace

u32 SyntheticMemory::synthesize(u32 addr) const {
  const u32 word_addr = addr & ~3u;
  const u32 h = mix32(word_addr ^ static_cast<u32>(prof_.seed));
  if (in_byte_region(addr)) {
    // Byte arrays: always-narrow unsigned bytes.
    return h & 0xFFu;
  }
  if (in_ptr_region(addr)) {
    // Pointer structures: valid in-region addresses (pointer chasing stays
    // inside the region) — wide by construction.
    const u32 span = (1u << prof_.word_footprint_log2) - 1u;
    return kPtrRegionBase + ((h & span) & ~3u);
  }
  // Word arrays: blocks of 64B share a width character (spatial width
  // locality); within a block, elements deviate with 1-value_stability.
  const u32 block_h = mix32((word_addr >> 6) * 0x9E3779B9u ^ static_cast<u32>(prof_.seed >> 32));
  const bool block_narrow = unit(block_h) < 0.30;
  const bool deviate = unit(mix32(h + 0x1234567u)) >= prof_.value_stability;
  const bool narrow = block_narrow != deviate;
  if (narrow) return h & 0xFFu;
  return h | 0x00010000u;  // guarantee at least 17 significant bits
}

u32 SyntheticMemory::load(u32 addr, bool byte) const {
  const u32 word_addr = addr & ~3u;
  u32 word;
  if (auto it = written_.find(word_addr); it != written_.end()) {
    word = it->second;
  } else {
    word = synthesize(addr);
  }
  if (!byte) return word;
  const unsigned shift = (addr & 3u) * 8u;
  return (word >> shift) & 0xFFu;
}

void SyntheticMemory::store(u32 addr, u32 value, bool byte) {
  const u32 word_addr = addr & ~3u;
  if (!byte) {
    written_[word_addr] = value;
    return;
  }
  u32 word = load(word_addr, /*byte=*/false);
  const unsigned shift = (addr & 3u) * 8u;
  word = (word & ~(0xFFu << shift)) | ((value & 0xFFu) << shift);
  written_[word_addr] = word;
}

namespace {

/// Architectural register reset: FP registers start with arbitrary wide bit
/// patterns, everything else with zero.
std::array<u32, kNumRegs> initial_regs() {
  std::array<u32, kNumRegs> regs{};
  for (unsigned i = 0; i < kNumFpRegs; ++i)
    regs[kRegF0 + i] = mix32(0xF00Du + i) | 0x3F800000u;
  return regs;
}

/// Interpret the µop at `pc`, updating `regs`/`mem`/`pc` (with program
/// restart), and return its dynamic record. Shared by the materializing
/// executor and the streaming cursor so both emit bit-identical streams.
TraceRecord step_uop(const Program& program, std::array<u32, kNumRegs>& regs,
                     SyntheticMemory& mem, u32& pc) {
  const u32 n_static = static_cast<u32>(program.uops.size());
  const StaticUop& u = program.uops[pc];
  TraceRecord r;
  r.pc = pc;
  for (unsigned i = 0; i < kMaxSrcs; ++i)
    r.src_vals[i] = (u.srcs[i] != kRegNone) ? regs[u.srcs[i]] : 0;

  const u32 a = r.src_vals[0];
  const u32 b = u.has_imm ? u.imm : r.src_vals[1];
  u32 result = 0;
  u32 flags = 0;
  bool wrote_result = false;
  u32 next_pc = pc + 1;

  switch (u.opcode) {
    case Opcode::kNop:
      break;
    case Opcode::kAdd: result = a + b; flags = result; wrote_result = true; break;
    case Opcode::kSub: result = a - b; flags = result; wrote_result = true; break;
    case Opcode::kAnd: result = a & b; flags = result; wrote_result = true; break;
    case Opcode::kOr:  result = a | b; flags = result; wrote_result = true; break;
    case Opcode::kXor: result = a ^ b; flags = result; wrote_result = true; break;
    case Opcode::kShl: result = a << (b & 31u); flags = result; wrote_result = true; break;
    case Opcode::kShr: result = a >> (b & 31u); flags = result; wrote_result = true; break;
    case Opcode::kMov: result = a; wrote_result = true; break;
    case Opcode::kMovImm: result = u.imm; wrote_result = true; break;
    case Opcode::kCmp: flags = a - b; break;
    case Opcode::kTest: flags = a & b; break;
    case Opcode::kMul: result = a * b; flags = result; wrote_result = true; break;
    case Opcode::kDiv: result = b ? a / b : a; flags = result; wrote_result = true; break;
    case Opcode::kLea: result = a + b; wrote_result = true; break;
    case Opcode::kLoad:
    case Opcode::kLoadByte: {
      const u32 idx = (u.srcs[1] != kRegNone) ? r.src_vals[1] : 0;
      r.mem_addr = a + idx + u.imm;
      result = mem.load(r.mem_addr, u.opcode == Opcode::kLoadByte);
      wrote_result = true;
      break;
    }
    case Opcode::kStore:
    case Opcode::kStoreByte: {
      const u32 idx = (u.srcs[1] != kRegNone) ? r.src_vals[1] : 0;
      r.mem_addr = a + idx + u.imm;
      mem.store(r.mem_addr, r.src_vals[2], u.opcode == Opcode::kStoreByte);
      break;
    }
    case Opcode::kBranchCond: {
      r.taken = eval_cond(u.imm, regs[kRegFlags]);
      if (r.taken) next_pc = program.target_of(pc);
      break;
    }
    case Opcode::kJump: {
      r.taken = true;
      next_pc = program.target_of(pc);
      break;
    }
    case Opcode::kFpAdd:
    case Opcode::kFpMul:
    case Opcode::kFpDiv: {
      // FP values are opaque wide bit patterns: the width machinery does
      // not track FP, only the scheduling behaviour matters.
      result = mix32(a ^ (r.src_vals[1] * 3u) ^ 0xC0FFEEu) | 0x30000000u;
      wrote_result = true;
      break;
    }
    case Opcode::kCopy:
    case Opcode::kChunkAlu:
    case Opcode::kCount:
      HCSIM_CHECK(false, "pipeline-internal opcode in a static program");
  }

  if (wrote_result && u.has_dst()) {
    regs[u.dst] = result;
    r.result = result;
  }
  if (u.writes_flags()) {
    regs[kRegFlags] = flags;
    r.flags_val = flags;
  }

  pc = next_pc;
  if (pc >= n_static) pc = 0;  // program restart (trace-length control)
  return r;
}

}  // namespace

Trace execute_program(const Program& program, const WorkloadProfile& profile,
                      u64 n_records) {
  HCSIM_CHECK(!program.uops.empty(), "cannot execute an empty program");
  Trace trace;
  trace.program = program;
  trace.seed = profile.seed;
  trace.records.reserve(n_records);

  std::array<u32, kNumRegs> regs = initial_regs();
  SyntheticMemory mem(profile);
  u32 pc = 0;
  while (trace.records.size() < n_records)
    trace.records.push_back(step_uop(program, regs, mem, pc));
  return trace;
}

ProgramTraceCursor::ProgramTraceCursor(Program program, const WorkloadProfile& profile,
                                       u64 n_records, std::size_t chunk_records)
    : program_(std::move(program)),
      profile_(profile),
      mem_(profile_),
      regs_(initial_regs()),
      chunk_(chunk_records),
      remaining_(n_records) {
  HCSIM_CHECK(!program_.uops.empty(), "cannot execute an empty program");
  HCSIM_CHECK(chunk_records > 0, "chunk_records must be positive");
  buf_.reserve(std::min<u64>(chunk_, remaining_));
}

std::span<const TraceRecord> ProgramTraceCursor::next_chunk() {
  buf_.clear();
  const u64 n = std::min<u64>(chunk_, remaining_);
  for (u64 i = 0; i < n; ++i)
    buf_.push_back(step_uop(program_, regs_, mem_, pc_));
  remaining_ -= n;
  return buf_;
}

Trace generate_trace(const WorkloadProfile& profile, u64 n_records) {
  // RISC-V kernel workloads route through the src/rv frontend: n_records is
  // the µop budget (kernels run to completion, generated programs loop).
  if (!profile.rv_kernel.empty()) return rv::kernel_trace(profile.rv_kernel, n_records);
  const Program program = generate_program(profile);
  return execute_program(program, profile, n_records);
}

}  // namespace hcsim
