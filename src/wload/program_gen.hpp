// hcsim — structured synthetic program generator.
//
// Generates small, well-formed loop-nest programs whose functional
// execution exhibits the width-relevant behaviour described by a
// WorkloadProfile: narrow byte-processing chains, wide pointer arithmetic,
// carry-confined base+offset addressing (the CR case of Figure 10),
// data-dependent branches whose flags producers are narrow (the BR case),
// long-latency integer and FP chains, and cross-width value uses that
// create inter-cluster copy pressure.
#pragma once

#include "trace/trace.hpp"
#include "wload/profile.hpp"

namespace hcsim {

/// Address-space layout used by generated programs and the synthetic memory
/// model. Regions are disjoint by construction; classification is by range.
namespace mem_layout {
inline constexpr u32 kByteRegionBase = 0x10000000u;
inline constexpr u32 kWordRegionBase = 0x40000000u;
inline constexpr u32 kPtrRegionBase = 0x80000000u;  // CR bases / pointer chase
inline constexpr u32 kRegionLimit = 0xF0000000u;

constexpr bool in_byte_region(u32 a) { return a >= kByteRegionBase && a < kWordRegionBase; }
constexpr bool in_word_region(u32 a) { return a >= kWordRegionBase && a < kPtrRegionBase; }
constexpr bool in_ptr_region(u32 a) { return a >= kPtrRegionBase && a < kRegionLimit; }
}  // namespace mem_layout

/// Build the static program for `profile`. Deterministic in profile.seed.
Program generate_program(const WorkloadProfile& profile);

}  // namespace hcsim
