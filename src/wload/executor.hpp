// hcsim — functional executor: turns a static program into a value-accurate
// dynamic trace.
//
// The executor interprets the generated program with a concrete register
// file and a synthetic memory image, recording every executed µop with its
// real source values, result, flags and effective address. Widths, carry
// behaviour and branch outcomes downstream are therefore *computed*, never
// sampled from a distribution.
#pragma once

#include <unordered_map>

#include "trace/trace.hpp"
#include "wload/profile.hpp"

namespace hcsim {

/// Synthetic memory image. Addresses fall into the regions of
/// mem_layout (byte arrays, word arrays, pointer/CR structures); a load
/// from a never-written address synthesizes a deterministic value shaped by
/// the region and the profile's value_stability, while stores persist.
class SyntheticMemory {
 public:
  explicit SyntheticMemory(const WorkloadProfile& profile) : prof_(profile) {}

  u32 load(u32 addr, bool byte) const;
  void store(u32 addr, u32 value, bool byte);

 private:
  u32 synthesize(u32 addr) const;

  const WorkloadProfile& prof_;
  std::unordered_map<u32, u32> written_;  // word-granular backing store
};

/// Functionally execute `program` until `n_records` dynamic µops have been
/// emitted (the program restarts from the top when it falls off the end).
Trace execute_program(const Program& program, const WorkloadProfile& profile,
                      u64 n_records);

/// Convenience: generate_program + execute_program.
Trace generate_trace(const WorkloadProfile& profile, u64 n_records);

}  // namespace hcsim
