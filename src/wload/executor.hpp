// hcsim — functional executor: turns a static program into a value-accurate
// dynamic trace.
//
// The executor interprets the generated program with a concrete register
// file and a synthetic memory image, recording every executed µop with its
// real source values, result, flags and effective address. Widths, carry
// behaviour and branch outcomes downstream are therefore *computed*, never
// sampled from a distribution.
#pragma once

#include <array>
#include <unordered_map>

#include "isa/reg.hpp"
#include "trace/trace.hpp"
#include "wload/profile.hpp"

namespace hcsim {

/// Synthetic memory image. Addresses fall into the regions of
/// mem_layout (byte arrays, word arrays, pointer/CR structures); a load
/// from a never-written address synthesizes a deterministic value shaped by
/// the region and the profile's value_stability, while stores persist.
class SyntheticMemory {
 public:
  explicit SyntheticMemory(const WorkloadProfile& profile) : prof_(profile) {}

  u32 load(u32 addr, bool byte) const;
  void store(u32 addr, u32 value, bool byte);

 private:
  u32 synthesize(u32 addr) const;

  const WorkloadProfile& prof_;
  std::unordered_map<u32, u32> written_;  // word-granular backing store
};

/// Functionally execute `program` until `n_records` dynamic µops have been
/// emitted (the program restarts from the top when it falls off the end).
Trace execute_program(const Program& program, const WorkloadProfile& profile,
                      u64 n_records);

/// Convenience: generate_program + execute_program.
Trace generate_trace(const WorkloadProfile& profile, u64 n_records);

/// Streaming counterpart of execute_program: a pull cursor that interprets
/// the program on demand, one bounded chunk at a time, into an internal
/// reusable buffer. Long runs therefore cost O(chunk) memory instead of a
/// materialized record vector — the record stream is bit-identical to
/// execute_program's. Owns the program; generated-workload only (RISC-V
/// kernels stream push-side, see rv/kernels.hpp).
class ProgramTraceCursor final : public TraceCursor {
 public:
  static constexpr std::size_t kDefaultChunkRecords = kTraceChunkRecords;

  ProgramTraceCursor(Program program, const WorkloadProfile& profile,
                     u64 n_records, std::size_t chunk_records = kDefaultChunkRecords);

  // Self-referential (mem_ keeps a reference into profile_): not movable.
  ProgramTraceCursor(const ProgramTraceCursor&) = delete;
  ProgramTraceCursor& operator=(const ProgramTraceCursor&) = delete;

  const Program& program() const override { return program_; }
  std::span<const TraceRecord> next_chunk() override;

 private:
  Program program_;
  WorkloadProfile profile_;  // mem_ keeps a reference into this copy
  SyntheticMemory mem_;
  std::array<u32, kNumRegs> regs_{};
  std::vector<TraceRecord> buf_;
  std::size_t chunk_;
  u64 remaining_;
  u32 pc_ = 0;
};

}  // namespace hcsim
