// hcsim — trace analytics backing Figures 1, 11 and 13 and the Section 1
// operand-mix statistics.
//
// These are pure functions over a value-accurate trace: they implement the
// paper's *measurement definitions* (narrow data-width dependency, the
// 8-32-32 carry-confinement rate, producer-consumer distance) independent of
// any pipeline modeling.
#pragma once

#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace hcsim {

/// Figure 1: a consumer operand is narrow data-width *dependent* when the
/// producer's value is narrow. Reported as the fraction of register source
/// operands (GPRs; flags and FP excluded) whose current producer value is
/// narrow.
struct NarrowDependencyStats {
  Ratio operands_narrow_dependent;  // Figure 1 bar per app
  // Section 1 text: regular ALU instruction operand mix.
  Ratio alu_one_narrow;             // exactly one narrow source
  Ratio alu_two_narrow_wide_result;
  Ratio alu_two_narrow_narrow_result;
};
NarrowDependencyStats narrow_dependency_stats(const Trace& trace,
                                              unsigned width = 8);

/// Figure 11: among µops with one narrow (8-bit) and one wide (32-bit)
/// source and a wide result, the fraction whose carry does not propagate
/// past the low byte — split into loads and additive arithmetic.
struct CarryStats {
  Ratio load_confined;
  Ratio arith_confined;
};
CarryStats carry_stats(const Trace& trace, unsigned width = 8);

/// Figure 13: average distance, in dynamic instructions, between a value
/// producer and its first consumer.
struct DistanceStats {
  Histogram distance{128};
  double mean() const { return distance.mean(); }
};
DistanceStats producer_consumer_distance(const Trace& trace);

}  // namespace hcsim
