#include "analysis/trace_stats.hpp"

#include <array>

#include "util/narrow.hpp"

namespace hcsim {

NarrowDependencyStats narrow_dependency_stats(const Trace& trace, unsigned width) {
  NarrowDependencyStats s;
  // Width of the value currently held by each GPR (producer value width).
  std::array<bool, kNumRegs> reg_narrow{};
  reg_narrow.fill(true);  // registers start at zero

  for (const TraceRecord& rec : trace.records) {
    const StaticUop& u = trace.uop_of(rec);
    const OpcodeInfo& info = opcode_info(u.opcode);

    unsigned reg_srcs = 0;
    unsigned narrow_srcs = 0;
    for (unsigned k = 0; k < kMaxSrcs; ++k) {
      const RegId r = u.srcs[k];
      if (r == kRegNone || !is_gpr(r)) continue;
      ++reg_srcs;
      const bool narrow = reg_narrow[r];
      if (narrow) ++narrow_srcs;
      s.operands_narrow_dependent.add(narrow);
    }

    // Section 1 operand-mix statistics over regular ALU instructions.
    if (info.op_class == OpClass::kIntAlu && u.opcode != Opcode::kNop) {
      unsigned total_srcs = reg_srcs + (u.has_imm ? 1u : 0u);
      unsigned narrow_total = narrow_srcs + ((u.has_imm && is_narrow(u.imm, width)) ? 1u : 0u);
      if (total_srcs >= 1) {
        s.alu_one_narrow.add(narrow_total == 1);
        if (u.has_dst()) {
          const bool res_narrow = is_narrow(rec.result, width);
          s.alu_two_narrow_wide_result.add(total_srcs >= 2 && narrow_total >= 2 && !res_narrow);
          s.alu_two_narrow_narrow_result.add(total_srcs >= 2 && narrow_total >= 2 && res_narrow);
        }
      }
    }

    if (u.has_dst() && is_gpr(u.dst)) reg_narrow[u.dst] = is_narrow(rec.result, width);
  }
  return s;
}

CarryStats carry_stats(const Trace& trace, unsigned width) {
  CarryStats s;
  for (const TraceRecord& rec : trace.records) {
    const StaticUop& u = trace.uop_of(rec);
    const bool additive = u.opcode == Opcode::kAdd || u.opcode == Opcode::kSub ||
                          u.opcode == Opcode::kLea;
    const bool memory = is_memory(u.opcode);
    if (!additive && !memory) continue;

    // Collect source widths (registers + immediate).
    unsigned wide = 0, narrow = 0;
    u32 wide_val = 0;
    for (unsigned k = 0; k < kMaxSrcs; ++k) {
      const RegId r = u.srcs[k];
      if (r == kRegNone || !is_gpr(r)) continue;
      if (memory && k == 2) continue;  // store data is not an address source
      if (is_narrow(rec.src_vals[k], width)) {
        ++narrow;
      } else {
        ++wide;
        wide_val = rec.src_vals[k];
      }
    }
    if (u.has_imm) {
      if (is_narrow(u.imm, width)) ++narrow;
      else { ++wide; wide_val = u.imm; }
    }
    // The 8-32-32 pattern: one wide source, at least one narrow source,
    // wide output (result or effective address).
    const u32 output = memory ? rec.mem_addr : rec.result;
    if (wide != 1 || narrow == 0) continue;
    if (!memory && (!u.has_dst() || is_narrow(rec.result, width))) continue;

    const bool confined = upper_bits_match(wide_val, output, width);
    if (memory)
      s.load_confined.add(confined);
    else
      s.arith_confined.add(confined);
  }
  return s;
}

DistanceStats producer_consumer_distance(const Trace& trace) {
  DistanceStats s;
  std::array<u64, kNumRegs> producer_idx{};
  std::array<bool, kNumRegs> live{};
  std::array<bool, kNumRegs> consumed{};
  producer_idx.fill(0);
  live.fill(false);
  consumed.fill(false);

  u64 idx = 0;
  for (const TraceRecord& rec : trace.records) {
    const StaticUop& u = trace.uop_of(rec);
    for (unsigned k = 0; k < kMaxSrcs; ++k) {
      const RegId r = u.srcs[k];
      if (r == kRegNone) continue;
      if (live[r] && !consumed[r]) {
        s.distance.add(idx - producer_idx[r]);
        consumed[r] = true;  // first consumer only
      }
    }
    if (u.has_dst()) {
      producer_idx[u.dst] = idx;
      live[u.dst] = true;
      consumed[u.dst] = false;
    }
    if (u.writes_flags()) {
      producer_idx[kRegFlags] = idx;
      live[kRegFlags] = true;
      consumed[kRegFlags] = false;
    }
    ++idx;
  }
  return s;
}

}  // namespace hcsim
