#include "isa/reg.hpp"

namespace hcsim {

std::string_view reg_name(RegId r) {
  static constexpr std::string_view kGpr[] = {"eax", "ebx", "ecx", "edx",
                                              "esi", "edi", "ebp", "esp",
                                              "t0",  "t1",  "t2",  "t3",
                                              "t4",  "t5",  "t6",  "t7"};
  static constexpr std::string_view kFp[] = {"f0", "f1", "f2", "f3",
                                             "f4", "f5", "f6", "f7"};
  static constexpr std::string_view kRv[] = {
      "x0",  "x1",  "x2",  "x3",  "x4",  "x5",  "x6",  "x7",
      "x8",  "x9",  "x10", "x11", "x12", "x13", "x14", "x15",
      "x16", "x17", "x18", "x19", "x20", "x21", "x22", "x23",
      "x24", "x25", "x26", "x27", "x28", "x29", "x30", "x31"};
  if (r < kNumIntRegs) return kGpr[r];
  if (is_flags(r)) return "flags";
  if (is_fp(r)) return kFp[r - kRegF0];
  if (is_rv(r)) return kRv[r - kRegX0];
  return "r?";
}

}  // namespace hcsim
