#include "isa/reg.hpp"

namespace hcsim {

std::string_view reg_name(RegId r) {
  static constexpr std::string_view kGpr[] = {"eax", "ebx", "ecx", "edx",
                                              "esi", "edi", "ebp", "esp",
                                              "t0",  "t1",  "t2",  "t3",
                                              "t4",  "t5",  "t6",  "t7"};
  static constexpr std::string_view kFp[] = {"f0", "f1", "f2", "f3",
                                             "f4", "f5", "f6", "f7"};
  if (is_gpr(r)) return kGpr[r];
  if (is_flags(r)) return "flags";
  if (is_fp(r)) return kFp[r - kRegF0];
  return "r?";
}

}  // namespace hcsim
