// hcsim — architectural register namespace of the modeled IA-32-like
// µop machine.
//
// The frontend cracks IA-32 instructions into µops that operate on the
// 8 architectural GPRs, a handful of internal temporaries (the paper notes
// the IA-32 internal machine state allows more than 2 inputs), the flags
// register (written by arithmetic µops, read by conditional branches), and
// 8 FP stack registers.
#pragma once

#include <array>
#include <string_view>

#include "util/types.hpp"

namespace hcsim {

using RegId = u8;

// General-purpose architectural registers (IA-32 names).
inline constexpr RegId kRegEax = 0;
inline constexpr RegId kRegEbx = 1;
inline constexpr RegId kRegEcx = 2;
inline constexpr RegId kRegEdx = 3;
inline constexpr RegId kRegEsi = 4;
inline constexpr RegId kRegEdi = 5;
inline constexpr RegId kRegEbp = 6;
inline constexpr RegId kRegEsp = 7;
// Internal µop temporaries (cracked-instruction intermediate state).
inline constexpr RegId kRegT0 = 8;
inline constexpr RegId kRegT1 = 9;
inline constexpr RegId kRegT2 = 10;
inline constexpr RegId kRegT3 = 11;
inline constexpr RegId kRegT4 = 12;
inline constexpr RegId kRegT5 = 13;
inline constexpr RegId kRegT6 = 14;
inline constexpr RegId kRegT7 = 15;
inline constexpr unsigned kNumIntRegs = 16;
// Flags register: carries the condition codes between an arithmetic µop and
// a dependent conditional branch (the BR scheme keys on this dependency).
inline constexpr RegId kRegFlags = 16;
// FP stack registers (wide cluster only).
inline constexpr RegId kRegF0 = 17;
inline constexpr unsigned kNumFpRegs = 8;
// RV32I architectural registers (src/rv frontend). RISC-V programs are
// cracked into the same µop namespace, but their 32 integer registers get a
// dedicated block so IA-32 and RV32I traces never alias register state and
// disassembly stays unambiguous. x0 is never a destination (the cracker
// drops writes to it), so it behaves as the architectural constant zero.
inline constexpr RegId kRegX0 = kRegF0 + kNumFpRegs;  // 25
inline constexpr unsigned kNumRvRegs = 32;
inline constexpr unsigned kNumRegs =
    17 + kNumFpRegs + kNumRvRegs;  // GPRs + flags + FP + RV32I

inline constexpr RegId kRegNone = 0xFF;

constexpr bool is_rv(RegId r) { return r >= kRegX0 && r < kRegX0 + kNumRvRegs; }
// RV32I registers are general-purpose too: the width machinery tracks them
// exactly like the IA-32 GPRs/temporaries.
constexpr bool is_gpr(RegId r) { return r < kNumIntRegs || is_rv(r); }
constexpr bool is_flags(RegId r) { return r == kRegFlags; }
constexpr bool is_fp(RegId r) { return r >= kRegF0 && r < kRegF0 + kNumFpRegs; }

std::string_view reg_name(RegId r);

}  // namespace hcsim
