// hcsim — static µop encoding shared by the workload generator, the traces
// and the pipeline.
#pragma once

#include <array>
#include <string>

#include "isa/opcode.hpp"
#include "isa/reg.hpp"
#include "util/types.hpp"

namespace hcsim {

/// Maximum register sources a µop may carry. IA-32 µops can have more than
/// two inputs (Section 3.2 remarks on this); three covers base+index+data
/// for stores and flag-reading ops.
inline constexpr unsigned kMaxSrcs = 3;

/// A *static* µop as emitted by the program generator / decoder: opcode,
/// register operands and an optional immediate. Dynamic instances reference
/// a StaticUop by its `pc`.
struct StaticUop {
  u32 pc = 0;                 // static µop address (unique per static uop)
  Opcode opcode = Opcode::kNop;
  RegId dst = kRegNone;       // destination register (kRegNone if none)
  std::array<RegId, kMaxSrcs> srcs = {kRegNone, kRegNone, kRegNone};
  bool has_imm = false;
  u32 imm = 0;

  unsigned num_srcs() const {
    unsigned n = 0;
    for (RegId s : srcs) n += (s != kRegNone) ? 1 : 0;
    return n;
  }
  bool has_dst() const { return dst != kRegNone; }
  bool writes_flags() const { return opcode_info(opcode).writes_flags; }
  bool reads_flags() const { return opcode_info(opcode).reads_flags; }
};

/// Human-readable rendering, e.g. "add eax, ebx, #4".
std::string disassemble(const StaticUop& uop);

}  // namespace hcsim
