#include "isa/uop.hpp"

#include <sstream>

namespace hcsim {

std::string disassemble(const StaticUop& uop) {
  std::ostringstream os;
  os << opcode_info(uop.opcode).mnemonic;
  bool first = true;
  auto sep = [&] {
    os << (first ? " " : ", ");
    first = false;
  };
  if (uop.has_dst()) {
    sep();
    os << reg_name(uop.dst);
  }
  for (RegId s : uop.srcs) {
    if (s == kRegNone) continue;
    sep();
    os << reg_name(s);
  }
  if (uop.has_imm) {
    sep();
    os << "#" << static_cast<i32>(uop.imm);
  }
  return os.str();
}

}  // namespace hcsim
