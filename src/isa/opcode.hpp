// hcsim — µop opcodes and their static execution properties.
#pragma once

#include <string_view>

#include "util/types.hpp"

namespace hcsim {

/// Concrete µop opcodes. This is the internal (post-crack) instruction set;
/// kCopy and kChunk* exist only inside the pipeline (inter-cluster copies
/// and IR split products) but are given opcodes so traces, disassembly and
/// statistics treat them uniformly.
enum class Opcode : u8 {
  kNop = 0,
  // Integer ALU, register/immediate forms.
  kAdd, kSub, kAnd, kOr, kXor, kShl, kShr, kMov, kMovImm,
  // Flag-writing compare class (no destination register — IR-nodest splits these).
  kCmp, kTest,
  // Long-latency integer (wide cluster only; ineligible for CR, Section 3.5).
  kMul, kDiv,
  // Memory.
  kLoad, kLoadByte, kStore, kStoreByte, kLea,
  // Control.
  kBranchCond, kJump,
  // Floating point (wide cluster only).
  kFpAdd, kFpMul, kFpDiv,
  // Pipeline-internal.
  kCopy,      // inter-cluster register copy (Canal/Parcerisa/González scheme)
  kChunkAlu,  // 8-bit chunk of a split 32-bit ALU µop (IR, Section 3.7)
  kCount
};

inline constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::kCount);

/// Coarse functional-unit class used by the schedulers.
enum class OpClass : u8 {
  kIntAlu,   // 1-cycle integer
  kIntMul,   // pipelined long latency
  kIntDiv,   // unpipelined long latency
  kMem,      // AGU + cache access
  kBranch,   // flag check + (possibly front-end-resolved) target
  kFpAdd,
  kFpMul,
  kFpDiv,
  kCopy,
  kCount
};

struct OpcodeInfo {
  std::string_view mnemonic;
  OpClass op_class;
  /// Execution latency in *wide-cluster cycles* on a 32-bit backend.
  u8 latency_wide;
  /// Whether the µop writes the flags register.
  bool writes_flags;
  /// Whether the µop reads the flags register.
  bool reads_flags;
  /// Whether the op class exists in the helper cluster at all (the helper
  /// has integer ALUs/AGUs only, Section 2.1).
  bool helper_capable;
  /// Whether the result width is data dependent (vs. always wide, e.g. LEA
  /// of a pointer is usually wide but still data dependent; FP is not
  /// tracked by the width machinery at all).
  bool width_tracked;
};

const OpcodeInfo& opcode_info(Opcode op);

/// Branch condition codes carried in StaticUop::imm for kBranchCond.
/// Conditions are evaluated against the flags register, whose value is the
/// raw result of the last flag-writing µop (cmp stores a-b, test stores a&b).
inline constexpr u32 kCondEq = 0;  // flags == 0
inline constexpr u32 kCondNe = 1;  // flags != 0
inline constexpr u32 kCondLt = 2;  // flags sign bit set
inline constexpr u32 kCondGe = 3;  // flags sign bit clear

/// Evaluate a condition code against a flags value.
constexpr bool eval_cond(u32 cond, u32 flags) {
  switch (cond) {
    case kCondEq: return flags == 0;
    case kCondNe: return flags != 0;
    case kCondLt: return (flags >> 31) != 0;
    default: return (flags >> 31) == 0;
  }
}

constexpr bool is_memory(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kLoadByte || op == Opcode::kStore ||
         op == Opcode::kStoreByte;
}
constexpr bool is_load(Opcode op) { return op == Opcode::kLoad || op == Opcode::kLoadByte; }
constexpr bool is_store(Opcode op) { return op == Opcode::kStore || op == Opcode::kStoreByte; }
constexpr bool is_branch(Opcode op) { return op == Opcode::kBranchCond || op == Opcode::kJump; }
constexpr bool is_fp(Opcode op) {
  return op == Opcode::kFpAdd || op == Opcode::kFpMul || op == Opcode::kFpDiv;
}

}  // namespace hcsim
