#include "isa/opcode.hpp"

#include <array>

#include "util/log.hpp"

namespace hcsim {
namespace {

// Latencies follow the Table 1 machine: 1-cycle ALU, 3-cycle DL0 load-use
// handled by the memory system (the kMem latency here is AGU only), long
// latency mul/div, classic FP latencies.
constexpr std::array<OpcodeInfo, kNumOpcodes> kOpcodeTable = {{
    //                 mnemonic      class            lat  wF     rF     helper width
    /* kNop       */ {"nop",        OpClass::kIntAlu, 1, false, false, true,  false},
    /* kAdd       */ {"add",        OpClass::kIntAlu, 1, true,  false, true,  true},
    /* kSub       */ {"sub",        OpClass::kIntAlu, 1, true,  false, true,  true},
    /* kAnd       */ {"and",        OpClass::kIntAlu, 1, true,  false, true,  true},
    /* kOr        */ {"or",         OpClass::kIntAlu, 1, true,  false, true,  true},
    /* kXor       */ {"xor",        OpClass::kIntAlu, 1, true,  false, true,  true},
    /* kShl       */ {"shl",        OpClass::kIntAlu, 1, true,  false, true,  true},
    /* kShr       */ {"shr",        OpClass::kIntAlu, 1, true,  false, true,  true},
    /* kMov       */ {"mov",        OpClass::kIntAlu, 1, false, false, true,  true},
    /* kMovImm    */ {"movi",       OpClass::kIntAlu, 1, false, false, true,  true},
    /* kCmp       */ {"cmp",        OpClass::kIntAlu, 1, true,  false, true,  false},
    /* kTest      */ {"test",       OpClass::kIntAlu, 1, true,  false, true,  false},
    /* kMul       */ {"mul",        OpClass::kIntMul, 4, true,  false, false, true},
    /* kDiv       */ {"div",        OpClass::kIntDiv, 20, true, false, false, true},
    /* kLoad      */ {"ld",         OpClass::kMem,    1, false, false, true,  true},
    /* kLoadByte  */ {"ldb",        OpClass::kMem,    1, false, false, true,  true},
    /* kStore     */ {"st",         OpClass::kMem,    1, false, false, true,  false},
    /* kStoreByte */ {"stb",        OpClass::kMem,    1, false, false, true,  false},
    /* kLea       */ {"lea",        OpClass::kIntAlu, 1, false, false, true,  true},
    /* kBranchCond*/ {"jcc",        OpClass::kBranch, 1, false, true,  true,  false},
    /* kJump      */ {"jmp",        OpClass::kBranch, 1, false, false, true,  false},
    /* kFpAdd     */ {"fadd",       OpClass::kFpAdd,  3, false, false, false, false},
    /* kFpMul     */ {"fmul",       OpClass::kFpMul,  5, false, false, false, false},
    /* kFpDiv     */ {"fdiv",       OpClass::kFpDiv,  20, false, false, false, false},
    /* kCopy      */ {"copy",       OpClass::kCopy,   1, false, false, true,  false},
    /* kChunkAlu  */ {"chunk",      OpClass::kIntAlu, 1, true,  false, true,  false},
}};

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  const auto idx = static_cast<unsigned>(op);
  HCSIM_CHECK(idx < kNumOpcodes, "opcode out of range");
  return kOpcodeTable[idx];
}

}  // namespace hcsim
