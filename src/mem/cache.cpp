#include "mem/cache.hpp"

#include <algorithm>
#include <bit>

#include "util/log.hpp"

namespace hcsim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  HCSIM_CHECK(cfg_.line_bytes > 0 && std::has_single_bit(cfg_.line_bytes),
              "cache line size must be a power of two");
  HCSIM_CHECK(cfg_.ways > 0, "cache must have at least one way");
  const u32 lines_total = cfg_.size_bytes / cfg_.line_bytes;
  HCSIM_CHECK(lines_total >= cfg_.ways, "cache smaller than one set");
  num_sets_ = lines_total / cfg_.ways;
  HCSIM_CHECK(std::has_single_bit(num_sets_), "number of sets must be a power of two");
  ways_ = cfg_.ways;
  line_shift_ = static_cast<unsigned>(std::countr_zero(cfg_.line_bytes));
  tag_shift_ = line_shift_ + static_cast<unsigned>(std::countr_zero(num_sets_));
  HCSIM_CHECK(tag_shift_ < 32, "cache covers the whole 32-bit address space");
  stamp_bits_ = 64 - (32 - tag_shift_);
  stamp_mask_ = (u64{1} << stamp_bits_) - 1;
  ways_data_.assign(static_cast<std::size_t>(num_sets_) * ways_, 0);
}

bool Cache::probe(u32 addr) const {
  const std::size_t base = static_cast<std::size_t>(set_of(addr)) * ways_;
  const u64 tagged = static_cast<u64>(tag_of(addr)) << stamp_bits_;
  for (u32 w = 0; w < ways_; ++w) {
    const u64 e = ways_data_[base + w];
    if ((e & ~stamp_mask_) == tagged && (e & stamp_mask_) != 0) return true;
  }
  return false;
}

void Cache::invalidate_all() {
  // Stamp 0 marks a way invalid; the tag bits are unreachable behind it.
  std::fill(ways_data_.begin(), ways_data_.end(), 0);
}

}  // namespace hcsim
