#include "mem/cache.hpp"

#include <bit>

#include "util/log.hpp"

namespace hcsim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  HCSIM_CHECK(cfg_.line_bytes > 0 && std::has_single_bit(cfg_.line_bytes),
              "cache line size must be a power of two");
  HCSIM_CHECK(cfg_.ways > 0, "cache must have at least one way");
  const u32 lines_total = cfg_.size_bytes / cfg_.line_bytes;
  HCSIM_CHECK(lines_total >= cfg_.ways, "cache smaller than one set");
  num_sets_ = lines_total / cfg_.ways;
  HCSIM_CHECK(std::has_single_bit(num_sets_), "number of sets must be a power of two");
  lines_.assign(static_cast<std::size_t>(num_sets_) * cfg_.ways, Line{});
}

bool Cache::probe(u32 addr) const {
  const u32 set = set_of(addr);
  const u32 tag = tag_of(addr);
  const Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void Cache::invalidate_all() {
  for (Line& l : lines_) l = Line{};
}

}  // namespace hcsim
