// hcsim — two-level memory hierarchy + memory order buffer.
//
// Models the Table 1 hierarchy: DL0 32KB/8-way/3-cycle/2 ports,
// UL1 4MB/16-way/13-cycle/1 port, 450-cycle main memory. Port contention is
// modeled by per-level "next free slot" bookkeeping at wide-cycle
// granularity. The MOB is shared by both clusters (Section 3.4: "there is a
// single Memory Order Buffer"), which is what makes load replication legal.
#pragma once

#include "util/slot_schedule.hpp"
#include "mem/cache.hpp"
#include "util/types.hpp"

namespace hcsim {

struct MemoryConfig {
  CacheConfig dl0{"DL0", 32 * 1024, 64, 8, 3, 2};
  CacheConfig ul1{"UL1", 4 * 1024 * 1024, 64, 16, 13, 1};
  u32 main_memory_cycles = 450;
};

class MemorySystem {
 public:
  explicit MemorySystem(const MemoryConfig& cfg);

  /// Schedule a data access whose address generation finished at wide cycle
  /// `agu_done`. Returns the wide cycle at which the data is available.
  /// Caches are pipelined: a port is occupied for one cycle per access while
  /// the access latency overlaps with younger accesses. Inline: one call per
  /// load/store on the per-µop hot path, and the DL0 hit exit dominates.
  u64 access(u64 agu_done_cycle, u32 addr, bool is_store) {
    const u64 dl0_start = dl0_ports_.reserve(agu_done_cycle);
    if (dl0_.access(addr)) return dl0_start + cfg_.dl0.latency_cycles;
    const u64 ul1_start = ul1_ports_.reserve(dl0_start + cfg_.dl0.latency_cycles);
    if (ul1_.access(addr)) return ul1_start + cfg_.ul1.latency_cycles;
    // Stores that miss all the way allocate without stalling the pipeline on
    // the full memory round trip (write-allocate, store buffer drains them);
    // loads pay the main-memory latency.
    const u64 mem_done = ul1_start + cfg_.ul1.latency_cycles + cfg_.main_memory_cycles;
    return is_store ? ul1_start + cfg_.ul1.latency_cycles : mem_done;
  }

  const Cache& dl0() const { return dl0_; }
  const Cache& ul1() const { return ul1_; }
  const MemoryConfig& config() const { return cfg_; }

 private:
  MemoryConfig cfg_;
  Cache dl0_;
  Cache ul1_;
  SlotSchedule dl0_ports_;  // ports per wide cycle (pipelined)
  SlotSchedule ul1_ports_;
};

/// Memory order buffer: tracks in-flight stores so loads can forward from
/// or wait on older same-address stores. Entries are keyed by the dynamic
/// sequence number assigned at dispatch; both clusters share this structure.
/// Entries live in a flat power-of-two ring ordered by seq — the window is
/// short (stores retire at commit), so the reverse forwarding scan walks a
/// few contiguous entries instead of chasing std::deque segment pointers.
class Mob {
 public:
  Mob() : stores_(kInitialCap), mask_(kInitialCap - 1) {}

  // One call per store (x2) / per load on the per-µop hot path: inline.
  void add_store(SeqNum seq, u32 addr, u64 data_ready_cycle) {
    if (tail_ - head_ > mask_) [[unlikely]] grow();
    stores_[tail_ & mask_] = StoreEntry{seq, addr, data_ready_cycle};
    ++tail_;
  }

  void store_retired(SeqNum seq) {
    while (head_ != tail_ && stores_[head_ & mask_].seq <= seq) ++head_;
  }

  /// Result of a load disambiguation probe.
  struct LoadCheck {
    bool forwarded = false;    // an older store supplies the data
    u64 ready_cycle = 0;       // when the forwarded data is available
  };

  /// Check a load at sequence `seq`, address `addr`, against older stores.
  LoadCheck check_load(SeqNum seq, u32 addr) const {
    LoadCheck res;
    if (head_ == tail_) [[likely]] return res;
    // Youngest older store to the same word wins (store-to-load forwarding).
    const u32 word = addr & ~3u;
    for (u64 i = tail_; i != head_;) {
      const StoreEntry& e = stores_[--i & mask_];
      if (e.seq >= seq) continue;
      if ((e.addr & ~3u) == word) {
        res.forwarded = true;
        res.ready_cycle = e.data_ready_cycle;
        return res;
      }
    }
    return res;
  }

  /// Squash all stores younger than or equal to `seq` (pipeline flush).
  void squash_from(SeqNum seq);

  std::size_t size() const { return tail_ - head_; }

 private:
  struct StoreEntry {
    SeqNum seq;
    u32 addr;
    u64 data_ready_cycle;
  };
  static constexpr u64 kInitialCap = 64;  // power of two

  void grow();

  std::vector<StoreEntry> stores_;  // ring ordered by seq, [head_, tail_)
  u64 mask_;
  u64 head_ = 0;
  u64 tail_ = 0;
};

}  // namespace hcsim
