// hcsim — set-associative cache timing model.
//
// Timing only: the simulator's data values come from the trace, so caches
// track presence (tags + LRU) and charge latencies, which is exactly what a
// trace-driven performance model needs.
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace hcsim {

struct CacheConfig {
  std::string name = "cache";
  u32 size_bytes = 32 * 1024;
  u32 line_bytes = 64;
  u32 ways = 8;
  u32 latency_cycles = 3;  // hit latency in wide cycles
  u32 ports = 2;           // accesses per wide cycle
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Probe + allocate-on-miss. Returns true on hit. Runs for every load and
  /// store on the per-µop hot path — defined inline.
  bool access(u32 addr) {
    const u32 set = set_of(addr);
    const u32 tag = tag_of(addr);
    Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
    ++access_clock_;

    for (u32 w = 0; w < cfg_.ways; ++w) {
      Line& line = base[w];
      if (line.valid && line.tag == tag) {
        line.lru = access_clock_;
        hits_.add(true);
        return true;
      }
    }
    // Miss: fill into an invalid way if any, else evict the LRU way.
    Line* victim = base;
    for (u32 w = 0; w < cfg_.ways; ++w) {
      Line& line = base[w];
      if (!line.valid) {
        victim = &line;
        break;
      }
      if (line.lru < victim->lru) victim = &line;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = access_clock_;
    hits_.add(false);
    return false;
  }

  /// Probe without allocation.
  bool probe(u32 addr) const;

  void invalidate_all();

  const CacheConfig& config() const { return cfg_; }
  const Ratio& hit_ratio() const { return hits_; }
  u64 accesses() const { return hits_.den; }

 private:
  struct Line {
    u32 tag = 0;
    bool valid = false;
    u64 lru = 0;
  };

  u32 set_of(u32 addr) const { return (addr / cfg_.line_bytes) & (num_sets_ - 1); }
  u32 tag_of(u32 addr) const { return addr / cfg_.line_bytes / num_sets_; }

  CacheConfig cfg_;
  u32 num_sets_;
  std::vector<Line> lines_;  // num_sets_ * ways, row-major by set
  u64 access_clock_ = 0;
  Ratio hits_;
};

}  // namespace hcsim
