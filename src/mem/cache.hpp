// hcsim — set-associative cache timing model.
//
// Timing only: the simulator's data values come from the trace, so caches
// track presence (tags + LRU) and charge latencies, which is exactly what a
// trace-driven performance model needs.
//
// Each way is one packed u64: the tag in the high bits, the LRU stamp in
// the low bits, so a set probe walks a single contiguous run (one cache
// line for an 8-way set) instead of separate tag and stamp arrays. The
// access clock pre-increments and is masked to the stamp field, so a live
// stamp is never 0 and stamp==0 marks a never-filled (or invalidated) way.
// The min-stamp victim scan then picks the first invalid way when one
// exists (all live stamps are larger), which is exactly the victim the
// explicit valid-flag walk chose. Addresses are 32-bit, so the tag needs
// 32 - tag_shift_ bits and the stamp field gets the rest — at least 44
// bits for any plausible geometry, far beyond any run length here.
// Set/tag extraction is shift/mask: line size and set count are checked
// powers of two at construction.
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace hcsim {

struct CacheConfig {
  std::string name = "cache";
  u32 size_bytes = 32 * 1024;
  u32 line_bytes = 64;
  u32 ways = 8;
  u32 latency_cycles = 3;  // hit latency in wide cycles
  u32 ports = 2;           // accesses per wide cycle
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Probe + allocate-on-miss. Returns true on hit. Runs for every load and
  /// store on the per-µop hot path — defined inline.
  bool access(u32 addr) {
    const std::size_t base = static_cast<std::size_t>(set_of(addr)) * ways_;
    u64* set = &ways_data_[base];
    const u64 tagged = static_cast<u64>(tag_of(addr)) << stamp_bits_;
    const u64 stamp = ++access_clock_ & stamp_mask_;

    for (u32 w = 0; w < ways_; ++w) {
      const u64 e = set[w];
      if ((e & ~stamp_mask_) == tagged && (e & stamp_mask_) != 0) {
        set[w] = tagged | stamp;
        hits_.add(true);
        return true;
      }
    }
    // Miss: fill the min-stamp way (first on ties); invalid ways carry
    // stamp 0 and therefore win, replicating "first invalid way, else LRU".
    u32 victim = 0;
    u64 best = set[0] & stamp_mask_;
    for (u32 w = 1; w < ways_; ++w) {
      const u64 s = set[w] & stamp_mask_;
      if (s < best) {
        best = s;
        victim = w;
      }
    }
    set[victim] = tagged | stamp;
    hits_.add(false);
    return false;
  }

  /// Probe without allocation.
  bool probe(u32 addr) const;

  void invalidate_all();

  const CacheConfig& config() const { return cfg_; }
  const Ratio& hit_ratio() const { return hits_; }
  u64 accesses() const { return hits_.den; }

 private:
  u32 set_of(u32 addr) const { return (addr >> line_shift_) & (num_sets_ - 1); }
  u32 tag_of(u32 addr) const { return addr >> tag_shift_; }

  CacheConfig cfg_;
  u32 num_sets_;
  u32 ways_;
  unsigned line_shift_ = 0;  // log2(line_bytes)
  unsigned tag_shift_ = 0;   // log2(line_bytes * num_sets_)
  unsigned stamp_bits_ = 0;  // 64 - tag bits
  u64 stamp_mask_ = 0;
  std::vector<u64> ways_data_;  // (tag << stamp_bits_) | stamp, row-major
  u64 access_clock_ = 0;
  Ratio hits_;
};

}  // namespace hcsim
