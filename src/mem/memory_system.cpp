#include "mem/memory_system.hpp"

#include <algorithm>

namespace hcsim {

MemorySystem::MemorySystem(const MemoryConfig& cfg)
    : cfg_(cfg),
      dl0_(cfg.dl0),
      ul1_(cfg.ul1),
      dl0_ports_(cfg.dl0.ports, /*cycle_ticks=*/1),
      ul1_ports_(cfg.ul1.ports, /*cycle_ticks=*/1) {}

u64 MemorySystem::access(u64 agu_done_cycle, u32 addr, bool is_store) {
  const u64 dl0_start = dl0_ports_.reserve(agu_done_cycle);
  if (dl0_.access(addr)) return dl0_start + cfg_.dl0.latency_cycles;
  const u64 ul1_start = ul1_ports_.reserve(dl0_start + cfg_.dl0.latency_cycles);
  if (ul1_.access(addr)) return ul1_start + cfg_.ul1.latency_cycles;
  // Stores that miss all the way allocate without stalling the pipeline on
  // the full memory round trip (write-allocate, store buffer drains them);
  // loads pay the main-memory latency.
  const u64 mem_done = ul1_start + cfg_.ul1.latency_cycles + cfg_.main_memory_cycles;
  return is_store ? ul1_start + cfg_.ul1.latency_cycles : mem_done;
}

void Mob::add_store(SeqNum seq, u32 addr, u64 data_ready_cycle) {
  stores_.push_back(StoreEntry{seq, addr, data_ready_cycle});
}

void Mob::store_retired(SeqNum seq) {
  while (!stores_.empty() && stores_.front().seq <= seq) stores_.pop_front();
}

Mob::LoadCheck Mob::check_load(SeqNum seq, u32 addr) const {
  LoadCheck res;
  // Youngest older store to the same word wins (store-to-load forwarding).
  const u32 word = addr & ~3u;
  for (auto it = stores_.rbegin(); it != stores_.rend(); ++it) {
    if (it->seq >= seq) continue;
    if ((it->addr & ~3u) == word) {
      res.forwarded = true;
      res.ready_cycle = it->data_ready_cycle;
      return res;
    }
  }
  return res;
}

void Mob::squash_from(SeqNum seq) {
  while (!stores_.empty() && stores_.back().seq >= seq) stores_.pop_back();
}

}  // namespace hcsim
