#include "mem/memory_system.hpp"

#include <algorithm>

namespace hcsim {

MemorySystem::MemorySystem(const MemoryConfig& cfg)
    : cfg_(cfg),
      dl0_(cfg.dl0),
      ul1_(cfg.ul1),
      dl0_ports_(cfg.dl0.ports, /*cycle_ticks=*/1),
      ul1_ports_(cfg.ul1.ports, /*cycle_ticks=*/1) {}

void Mob::squash_from(SeqNum seq) {
  while (tail_ != head_ && stores_[(tail_ - 1) & mask_].seq >= seq) --tail_;
}

void Mob::grow() {
  const u64 cap = (mask_ + 1) * 2;
  std::vector<StoreEntry> bigger(cap);
  for (u64 i = head_; i != tail_; ++i) bigger[i & (cap - 1)] = stores_[i & mask_];
  stores_ = std::move(bigger);
  mask_ = cap - 1;
}

}  // namespace hcsim
