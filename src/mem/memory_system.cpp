#include "mem/memory_system.hpp"

#include <algorithm>

namespace hcsim {

MemorySystem::MemorySystem(const MemoryConfig& cfg)
    : cfg_(cfg),
      dl0_(cfg.dl0),
      ul1_(cfg.ul1),
      dl0_ports_(cfg.dl0.ports, /*cycle_ticks=*/1),
      ul1_ports_(cfg.ul1.ports, /*cycle_ticks=*/1) {}

void Mob::squash_from(SeqNum seq) {
  while (!stores_.empty() && stores_.back().seq >= seq) stores_.pop_back();
}

}  // namespace hcsim
