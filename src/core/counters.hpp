// hcsim — enum-indexed simulator event counters.
//
// The per-µop hot path (core/pipeline.cpp) bumps event counters constantly;
// a string-keyed map there costs a hash/tree lookup per event. Counters are
// therefore a fixed enum indexing a flat array — O(1) increments with no
// allocation — while the string names every reporting consumer relies on
// are preserved through a static name table and the to_bag() bridge.
#pragma once

#include <array>
#include <string_view>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace hcsim {

/// Every raw event the pipeline counts. Keep in sync with kCounterNames in
/// counters.cpp (same order); names are the stable external identifiers.
enum class Counter : u8 {
  kBbCacheHits,           // decode cache: template replayed from a prior crack
  kBbCacheInvalidations,  // decode cache: templates dropped by a rebind
  kBbCacheMisses,         // decode cache: first encounter, template built
  kBlockSplits,       // IR block mode: splits joined without a trigger
  kChunkRenameSlots,  // extra rename slots consumed by IR chunks
  kCommitted,         // µops committed
  kCopyRenameSlots,   // rename slots consumed by copy µops
  kDl0Accesses,
  kFetched,
  kFlushRefills,      // width-misprediction flush + resteer events
  kIssueFp,
  kIssueHelper,
  kIssueWide,
  kLoadAccesses,
  kMobForwards,
  kNreadyTruncations,  // NREADY probes clipped by the slot-ledger GC horizon
  kRfWriteHelper,
  kRfWriteWide,
  // Per-stage stall attribution: which constraint bound each µop's dispatch
  // (ties credit the earlier stage). kStallIssue is separate — it counts
  // executions that sat ready in the queue waiting for an issue slot.
  kStallCommit,  // dispatch bound by ROB recycling (commit pressure)
  kStallFetch,   // dispatch bound by fetch + frontend depth (no stall)
  kStallIssue,   // issued later than ready (issue-width contention)
  kStallQueue,   // dispatch bound by issue-queue backpressure
  kStallRename,  // dispatch bound by rename-width serialization
  kStoreAccesses,
  kUl1Accesses,
  kWpredLookups,
  kCount,
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);

/// Stable external name of a counter (e.g. "issue_wide").
std::string_view counter_name(Counter c);

/// Reverse lookup; Counter::kCount if `name` is not a known counter.
Counter counter_from_name(std::string_view name);

/// Flat array of all counters. Enum indexing is the hot path; the string
/// accessors exist for tests/reporting and tolerate unknown names the same
/// way CounterBag does (reads of unknown names yield 0).
class CounterArray {
 public:
  u64& operator[](Counter c) { return v_[static_cast<std::size_t>(c)]; }
  u64 operator[](Counter c) const { return v_[static_cast<std::size_t>(c)]; }
  u64 get(Counter c) const { return v_[static_cast<std::size_t>(c)]; }

  /// Name-based access for tests and reporting (not for the hot path).
  u64 get(std::string_view name) const;
  u64& operator[](std::string_view name);  // checks the name is known

  /// Bridge for consumers that want the legacy named-map view.
  CounterBag to_bag() const;

 private:
  std::array<u64, kNumCounters> v_{};
};

}  // namespace hcsim
