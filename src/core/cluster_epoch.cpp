#include "core/cluster_epoch.hpp"

#include <cstdlib>

namespace hcsim {

namespace {

/// -1 = follow the environment; 0/1 = forced by epoch_set_enabled.
int g_epoch_override = -1;

bool env_epoch_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("HCSIM_EPOCH");
    return v == nullptr || (v[0] != '0' || v[1] != '\0');
  }();
  return enabled;
}

}  // namespace

bool epoch_enabled_default() {
  const int o = g_epoch_override;
  return o < 0 ? env_epoch_enabled() : o != 0;
}

void epoch_set_enabled(bool on) { g_epoch_override = on ? 1 : 0; }
void epoch_reset_enabled() { g_epoch_override = -1; }

void ClusterEpoch::init(unsigned issue_width, unsigned queue_size,
                        unsigned copy_ports, Tick cycle_ticks) {
  HCSIM_CHECK(issue_width > 0 && issue_width < 256,
              "ClusterEpoch issue width out of range");
  HCSIM_CHECK(queue_size > 0, "ClusterEpoch queue size must be positive");
  HCSIM_CHECK(cycle_ticks > 0, "ClusterEpoch cycle_ticks must be positive");
  cycle_ticks_ = cycle_ticks;
  pow2_ = std::has_single_bit(static_cast<u64>(cycle_ticks_));
  shift_ = static_cast<unsigned>(std::countr_zero(static_cast<u64>(cycle_ticks_)));
  size_ = queue_size;
  qring_.assign(kInitialQueueCycles, 0);
  qocc_.assign(kInitialQueueCycles / 64, 0);
  qmask_ = kInitialQueueCycles - 1;
  issue_.width = issue_width;
  issue_.used.assign(kWindowCycles, 0);
  issue_.full.assign(kWindowCycles / 64, 0);
  copy_.width = copy_ports;
  if (copy_ports > 0) {
    copy_.used.assign(kWindowCycles, 0);
    copy_.full.assign(kWindowCycles / 64, 0);
  }
}

u64 ClusterEpoch::first_nonfull(const SlotRing& r, u64 cycle) const {
  // kWindowCycles is a multiple of 64, so consecutive cycles within one
  // bitmap word are consecutive ring positions: scan a word at a time.
  const u64 end = r.frontier + 1;
  u64 c = cycle;
  while (c < end) {
    const u64 pos = c & kMask;
    const u64 free_bits = ~r.full[pos >> 6] >> (pos & 63);
    if (free_bits != 0) {
      const u64 cand = c + static_cast<u64>(std::countr_zero(free_bits));
      return cand < end ? cand : end;
    }
    c += 64 - (pos & 63);
  }
  return end;
}

void ClusterEpoch::gc_ring(SlotRing& r, u64 new_base) {
  if (new_base <= r.base) return;
  if (new_base - r.base >= kWindowCycles) {
    std::fill(r.used.begin(), r.used.end(), u8{0});
    std::fill(r.full.begin(), r.full.end(), u64{0});
  } else {
    for (u64 c = r.base; c < new_base; ++c) {
      r.used[c & kMask] = 0;
      r.full[(c & kMask) >> 6] &= ~(u64{1} << (c & 63));
    }
  }
  r.base = new_base;
}

SlotRangeProbe ClusterEpoch::free_issue_slot_in(Tick from, Tick until) const {
  SlotRangeProbe p;
  if (until <= from) return p;
  u64 c0 = to_cycle(from);
  const u64 c1 = to_cycle(until - 1);  // last cycle overlapping the range
  if (c0 < issue_.base) {
    p.truncated = true;
    c0 = issue_.base;
    if (c0 > c1) return p;
  }
  if (c1 > issue_.frontier) {
    p.free = true;  // cycles past the frontier are empty
    return p;
  }
  p.free = first_nonfull(issue_, c0) <= c1;
  return p;
}

u64 ClusterEpoch::next_occupied(u64 from) const {
  u64 c = from;
  while (c < qtail_) {
    const u64 pos = c & qmask_;
    const u64 bits = qocc_[pos >> 6] >> (pos & 63);
    if (bits != 0) {
      const u64 cand = c + static_cast<u64>(std::countr_zero(bits));
      return cand < qtail_ ? cand : kNoCycle;
    }
    c += 64 - (pos & 63);
  }
  return kNoCycle;
}

void ClusterEpoch::drain_cycles(u64 target_cycle) {
  u64 c = qnext_;  // first occupied bucket; caller ensured c < target_cycle
  do {
    const u64 pos = c & qmask_;
    live_ -= qring_[pos];
    qring_[pos] = 0;
    qocc_[pos >> 6] &= ~(u64{1} << (pos & 63));
    if (live_ == 0) {
      c = kNoCycle;
      break;
    }
    c = next_occupied(c + 1);
  } while (c < target_cycle);
  qnext_ = c;
  qdrained_ = target_cycle;
}

void ClusterEpoch::grow_queue(u64 cycle) {
  u64 cap = qmask_ + 1;
  while (cycle - qdrained_ >= cap) cap *= 2;
  std::vector<u32> bigger(cap, 0);
  std::vector<u64> bits(cap / 64, 0);
  const u64 new_mask = cap - 1;
  for (u64 c = qdrained_; c < qtail_; ++c) {
    const u32 n = qring_[c & qmask_];
    if (n) {
      bigger[c & new_mask] = n;
      bits[(c & new_mask) >> 6] |= u64{1} << (c & 63);
    }
  }
  qring_ = std::move(bigger);
  qocc_ = std::move(bits);
  qmask_ = new_mask;
}

Tick ClusterEpoch::earliest_dispatch_full() const {
  // QueueTracker::earliest_dispatch_full in the cycle domain: find the
  // bucket whose departures free the (live_ - size_ + 1)-th entry, with the
  // (full_at_cycle_, full_slack_) cache amortizing repeated probes while
  // the queue stays saturated. Invalidation matches the tick-domain rule:
  // a drain past the cached answer makes head_tick_ exceed its tick.
  if (head_tick_ > from_cycle(full_at_cycle_)) {
    u64 need = live_ - size_ + 1;
    u64 c = qnext_;  // live_ >= size_ >= 1, so an occupied bucket exists
    for (;;) {
      HCSIM_CHECK(c != kNoCycle, "ClusterEpoch: live entries unaccounted for");
      const u64 n = qring_[c & qmask_];
      if (n >= need) {
        full_at_cycle_ = c;
        full_slack_ = static_cast<i64>(n - need);
        return from_cycle(c);
      }
      need -= n;
      c = next_occupied(c + 1);
    }
  }
  while (full_slack_ < 0) {
    const u64 c = next_occupied(full_at_cycle_ + 1);
    HCSIM_CHECK(c != kNoCycle, "ClusterEpoch: live entries unaccounted for");
    full_slack_ += static_cast<i64>(qring_[c & qmask_]);
    full_at_cycle_ = c;
  }
  return from_cycle(full_at_cycle_);
}

}  // namespace hcsim
