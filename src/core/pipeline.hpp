// hcsim — the clustered out-of-order pipeline model.
//
// A program-order resource model of the Figure 2 machine: a shared frontend
// (fetch from the trace cache, decode/split, rename/steer, dispatch) feeding
// a 32-bit wide backend (integer + FP schedulers) and an optional 8-bit
// helper backend clocked `ticks_per_wide_cycle`x faster. µops are processed
// in program order; out-of-order issue is modeled by per-cluster issue-slot
// ledgers, issue-queue occupancy tracking, dependence-driven ready times,
// a shared MOB + two-level cache hierarchy, inter-cluster copy µops, branch
// misprediction redirects, and flush-based width-misprediction recovery.
//
// Global time advances in ticks: one tick = one helper-cluster cycle; the
// frontend, wide backend, caches and commit operate every
// `ticks_per_wide_cycle` ticks (Section 2.2's synchronized 2x clocking).
//
// Hot-path architecture (see src/bbcache): everything derivable from the
// static µop alone is cracked once per PC into a UopTemplate and replayed
// for every dynamic instance; the batched feed() overload additionally runs
// the value-width classification as a branchless SoA prepass over
// WidthLaneBlock sub-batches. Scalar feed(), batched feed(), cache-on and
// cache-off all funnel into the same feed_record() core, so every variant
// is bit-identical by construction.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "bbcache/bb_cache.hpp"
#include "core/cluster_epoch.hpp"
#include "core/machine_config.hpp"
#include "core/sim_result.hpp"
#include "util/slot_schedule.hpp"
#include "mem/memory_system.hpp"
#include "predict/branch_predictor.hpp"
#include "predict/width_predictor.hpp"
#include "steer/steering.hpp"
#include "trace/trace.hpp"

namespace hcsim {

class Pipeline {
 public:
  /// The pipeline binds to a static program; dynamic records are fed in
  /// program order — all at once (run) or incrementally (feed/finish), which
  /// is what lets long traces stream through without being materialized.
  ///
  /// `shared_cache` optionally substitutes an external decode cache for the
  /// pipeline's private one — sweep drivers reuse cracked templates across
  /// runs of the same (program, config); the cache rebinds (and invalidates
  /// on key changes) here.
  Pipeline(const MachineConfig& cfg, const Program& program,
           DecodeCache* shared_cache = nullptr);
  ~Pipeline();

  /// Process one dynamic µop.
  void feed(const TraceRecord& rec);

  /// Process a batch of dynamic µops in program order. Bit-identical to
  /// feeding each record individually; the batch form amortizes the width
  /// classification into an SoA prepass per WidthLaneBlock.
  void feed(std::span<const TraceRecord> recs);

  /// Flush training windows, derive the summary statistics and return the
  /// result. Call exactly once, after the last feed().
  SimResult finish();

  /// Pull every record from `cursor` through feed() and finish().
  SimResult run(TraceCursor& cursor);

  /// Raw running-statistics checkpoint for windowed sampling (src/sample):
  /// every integer event field accumulated so far (derived doubles unset —
  /// only finish() computes those) plus the cache hit/access totals that
  /// finish() folds into rates. Two checkpoints of one run subtract to
  /// exactly the events of the µops fed between them.
  ///
  /// This is the counter half of the window checkpoint contract. The
  /// *machine-state* half is deliberately reset-plus-warmup instead of
  /// snapshot/restore: a window re-simulated from a cold Pipeline after K
  /// warm-up µops is a pure function of (config, program, record range), so
  /// window slices can run on any thread in any order and still splice
  /// bit-identically to the serial windowed run — a mutable snapshot of
  /// predictors/caches/schedulers would reintroduce cross-window ordering.
  struct StatsCheckpoint {
    SimResult res;
    u64 dl0_hits = 0, dl0_accesses = 0;
    u64 ul1_hits = 0, ul1_accesses = 0;
  };
  StatsCheckpoint checkpoint_stats() const;

  /// Dynamic µops fed so far.
  u64 fed_uops() const { return next_seq_; }

 private:
  struct CpTrainEntry;

  // Cluster index helpers: 0 = wide int, 1 = helper, 2 = wide FP.
  static constexpr unsigned kWideIdx = 0;
  static constexpr unsigned kHelperIdx = 1;
  static constexpr unsigned kFpIdx = 2;
  static constexpr unsigned kNumBackends = 3;

  /// Program-order view of one architectural register: where its current
  /// value lives (per backend), when it becomes readable there, its actual
  /// and predicted widths, and the producing µop (for CP training and the
  /// BR rule). In the header so acquire_value's all-hot fast path — value
  /// already present in the right cluster — stays inline.
  struct RegState {
    std::array<Tick, kNumBackends> avail = {0, 0, 0};
    std::array<bool, kNumBackends> present = {true, true, true};
    bool value_narrow = true;   // actual width of the current value
    bool pred_narrow = true;    // width the producer's predictor announced
    Tick known_at = 0;          // when the actual width is architecturally known
    u32 producer_pc = ~0u;
    SeqNum producer_seq = kSeqNone;
    unsigned producer_cluster = kWideIdx;
    bool prefetched = false;    // a CP prefetch put the value in the other cluster
  };

  Tick wide_ticks() const { return cfg_.ticks_per_wide_cycle; }
  Tick cycle_ticks(unsigned cluster) const {
    return cluster == kHelperIdx ? 1 : wide_ticks();
  }

  /// The decode-once/replay-many core: one dynamic µop against its cracked
  /// template, with the record's width lanes precomputed (`result_narrow`
  /// is the result-value lane; `src_lanes` the per-operand-slot source
  /// lanes, folded against the template masks).
  void feed_record(const TraceRecord& rec, const UopTemplate& t,
                   bool result_narrow, u8 src_lanes);

  /// Template for `pc`: decode-cache replay when enabled (counting hits and
  /// misses), a fresh crack into scratch_tmpl_ when disabled.
  const UopTemplate& lookup_template(u32 pc) {
    if (cache_on_) {
      if (const UopTemplate* t = cache_->try_get(pc)) [[likely]] {
        res_.counters[Counter::kBbCacheHits]++;
        return *t;
      }
      res_.counters[Counter::kBbCacheMisses]++;
      return cache_->fill(pc);
    }
    scratch_tmpl_ = build_uop_template(program_.uops[pc], cfg_.steer,
                                       cfg_.helper_width_bits);
    return scratch_tmpl_;
  }

  /// Value availability of register `r` in `cluster`, generating a demand
  /// copy µop if the value lives only in the other cluster. Returns the tick
  /// the value becomes readable there. Runs up to three times per µop; the
  /// dominant already-present case stays inline, the copy machinery doesn't.
  Tick acquire_value(RegId r, unsigned cluster, Tick dispatch_tick) {
    RegState& st = (*regs_)[r];
    if (st.present[cluster]) [[likely]] {
      if (st.prefetched && st.producer_cluster != cluster) [[unlikely]]
        return acquire_prefetched(st, cluster);
      return st.avail[cluster];
    }
    return acquire_demand_copy(st, cluster, dispatch_tick);
  }
  Tick acquire_prefetched(RegState& st, unsigned cluster);
  Tick acquire_demand_copy(RegState& st, unsigned cluster, Tick dispatch_tick);

  /// Schedule one copy µop from `from` cluster to `to` cluster for a value
  /// that becomes available in `from` at `value_ready`. Returns availability
  /// tick in `to`.
  Tick schedule_copy(unsigned from, unsigned to, Tick request_tick, Tick value_ready);

  /// CP: producer-side copy prefetch at writeback (Section 3.6).
  void maybe_copy_prefetch(RegId dst, u32 pc, unsigned cluster, Tick complete);

  /// Memory access path shared by loads and stores.
  Tick memory_access(SeqNum seq, u32 addr, bool is_store, bool is_load_byte,
                     Tick agu_done);

  /// NREADY imbalance accounting for a µop that waited to issue.
  void account_nready(unsigned cluster, bool eligible_other, Tick ready, Tick issue);

  void train_cp_window(SeqNum upto_seq);

  /// Counters that tick exactly once per µop regardless of path (fetched,
  /// width-table lookups, committed, uops) — bumped per feed() call instead
  /// of per record.
  void bump_per_uop_counters(u64 n);

  const MachineConfig cfg_;
  const Program& program_;
  SteeringPolicy policy_;

  WidthPredictor wpred_;
  BranchPredictor bpred_;
  MemorySystem memsys_;
  Mob mob_;

  // Decode-and-steer cache (src/bbcache): private by default, injectable.
  DecodeCache own_cache_;
  DecodeCache* cache_ = nullptr;
  bool cache_on_ = false;
  UopTemplate scratch_tmpl_;  // cache-off: per-record crack target

  // Config facts hoisted out of the per-µop walk.
  Tick frontend_ticks_ = 0;   // frontend_depth * wide_ticks
  unsigned width_bits_ = 8;   // helper datapath width
  bool wt_pow2_ = true;       // ticks_per_wide_cycle is a power of two
  unsigned wt_shift_ = 1;     // log2(ticks_per_wide_cycle) when wt_pow2_
  bool needs_occ_ = false;    // decide() reads issue-queue occupancy
  bool cr_on_ = false;
  bool lr_on_ = false;
  bool cp_on_ = false;
  bool ir_block_on_ = false;

  // Frontend / commit schedules (wide clock domain). Fetch and commit are
  // strictly in order — every reserve is clamped to the previous result —
  // so they use the two-word MonotonicSlots. Rename's request sequence is
  // non-decreasing too, but the proof for helper configs leans on the
  // dispatch-backpressure invariant (the split path reserves again at disp;
  // the flush path reserves at redisp, and exec_in has already raised
  // dispatch_backpressure_ to at least that tick, so the next µop cannot
  // request earlier). The epoch engine relies on that proof and always uses
  // MonotonicSlots; the legacy path keeps the conservative ring ledger for
  // helper configs, which doubles as the cross-check — epoch-on and
  // epoch-off sweeps must be byte-identical.
  MonotonicSlots fetch_slots_;
  SlotSchedule rename_slots_;
  MonotonicSlots rename_mono_slots_;
  bool rename_mono_ = false;
  MonotonicSlots commit_slots_;

  // Per-cluster resources. When the epoch engine is on (HCSIM_EPOCH, the
  // default) each backend's issue slots + queue ledger + copy ports live in
  // one by-value ClusterEpoch and the legacy structures below stay
  // unallocated; HCSIM_EPOCH=0 flips to the per-µop SlotSchedule +
  // QueueTracker pair, which is the reference model for the differential
  // fuzz test and the epoch-off golden sweeps.
  bool epoch_on_ = true;
  std::array<ClusterEpoch, kNumBackends> epochs_;
  // Legacy backend issue slots and queue occupancy (epoch off only).
  std::array<std::unique_ptr<SlotSchedule>, kNumBackends> issue_slots_;
  std::array<std::unique_ptr<QueueTracker>, kNumBackends> queues_;
  // Dedicated copy-µop scheduling resources per integer cluster (Section 4:
  // the copy scheme "requires its own scheduling resources").
  std::array<std::unique_ptr<SlotSchedule>, kNumIntClusters> copy_slots_;

  // Architectural register location/width state (program-order view).
  std::unique_ptr<std::array<RegState, kNumRegs>> regs_;

  // ROB occupancy: commit ticks of the last rob_entries µops.
  std::vector<Tick> rob_commit_;

  // CP training window (producers awaiting "did it incur a copy?").
  std::vector<CpTrainEntry> cp_window_;

  // Rolling ring positions (seq % rob_entries / seq % cp_window size without
  // the per-µop u64 modulo; advanced once per feed_record).
  unsigned rob_pos_ = 0;
  unsigned cp_pos_ = 0;

  /// Block-granularity IR (the Section 3.7 extension): while positive,
  /// splittable µops join the current helper block without re-consulting
  /// the imbalance trigger.
  unsigned block_split_remaining_ = 0;

  Tick fetch_barrier_ = 0;     // redirect/flush refill point
  Tick last_fetch_ = 0;
  Tick last_dispatch_ = 0;
  Tick last_commit_ = 0;
  /// In-order dispatch backpressure: when a µop (or one of its copies)
  /// stalls on a full issue queue, younger µops cannot dispatch earlier.
  Tick dispatch_backpressure_ = 0;
  SeqNum next_seq_ = 0;

  SimResult res_;
};

/// Convenience wrapper: build a pipeline and run the trace.
SimResult simulate(const MachineConfig& cfg, const Trace& trace);

/// Streaming form: records are pulled chunk-wise from the cursor.
SimResult simulate(const MachineConfig& cfg, TraceCursor& cursor);

}  // namespace hcsim
