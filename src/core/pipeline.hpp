// hcsim — the clustered out-of-order pipeline model.
//
// A program-order resource model of the Figure 2 machine: a shared frontend
// (fetch from the trace cache, decode/split, rename/steer, dispatch) feeding
// a 32-bit wide backend (integer + FP schedulers) and an optional 8-bit
// helper backend clocked `ticks_per_wide_cycle`x faster. µops are processed
// in program order; out-of-order issue is modeled by per-cluster issue-slot
// ledgers, issue-queue occupancy tracking, dependence-driven ready times,
// a shared MOB + two-level cache hierarchy, inter-cluster copy µops, branch
// misprediction redirects, and flush-based width-misprediction recovery.
//
// Global time advances in ticks: one tick = one helper-cluster cycle; the
// frontend, wide backend, caches and commit operate every
// `ticks_per_wide_cycle` ticks (Section 2.2's synchronized 2x clocking).
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/machine_config.hpp"
#include "core/sim_result.hpp"
#include "util/slot_schedule.hpp"
#include "mem/memory_system.hpp"
#include "predict/branch_predictor.hpp"
#include "predict/width_predictor.hpp"
#include "steer/steering.hpp"
#include "trace/trace.hpp"

namespace hcsim {

class Pipeline {
 public:
  /// The pipeline binds to a static program; dynamic records are fed in
  /// program order — all at once (run) or incrementally (feed/finish), which
  /// is what lets long traces stream through without being materialized.
  Pipeline(const MachineConfig& cfg, const Program& program);
  ~Pipeline();

  /// Process one dynamic µop.
  void feed(const TraceRecord& rec);

  /// Flush training windows, derive the summary statistics and return the
  /// result. Call exactly once, after the last feed().
  SimResult finish();

  /// Pull every record from `cursor` through feed() and finish().
  SimResult run(TraceCursor& cursor);

  /// Raw running-statistics checkpoint for windowed sampling (src/sample):
  /// every integer event field accumulated so far (derived doubles unset —
  /// only finish() computes those) plus the cache hit/access totals that
  /// finish() folds into rates. Two checkpoints of one run subtract to
  /// exactly the events of the µops fed between them.
  ///
  /// This is the counter half of the window checkpoint contract. The
  /// *machine-state* half is deliberately reset-plus-warmup instead of
  /// snapshot/restore: a window re-simulated from a cold Pipeline after K
  /// warm-up µops is a pure function of (config, program, record range), so
  /// window slices can run on any thread in any order and still splice
  /// bit-identically to the serial windowed run — a mutable snapshot of
  /// predictors/caches/schedulers would reintroduce cross-window ordering.
  struct StatsCheckpoint {
    SimResult res;
    u64 dl0_hits = 0, dl0_accesses = 0;
    u64 ul1_hits = 0, ul1_accesses = 0;
  };
  StatsCheckpoint checkpoint_stats() const;

  /// Dynamic µops fed so far.
  u64 fed_uops() const { return next_seq_; }

 private:
  struct RegState;
  struct CpTrainEntry;

  // Cluster index helpers: 0 = wide int, 1 = helper, 2 = wide FP.
  static constexpr unsigned kWideIdx = 0;
  static constexpr unsigned kHelperIdx = 1;
  static constexpr unsigned kFpIdx = 2;
  static constexpr unsigned kNumBackends = 3;

  Tick wide_ticks() const { return cfg_.ticks_per_wide_cycle; }
  Tick cycle_ticks(unsigned cluster) const {
    return cluster == kHelperIdx ? 1 : wide_ticks();
  }

  /// Value availability of register `r` in `cluster`, generating a demand
  /// copy µop if the value lives only in the other cluster. Returns the tick
  /// the value becomes readable there.
  Tick acquire_value(RegId r, unsigned cluster, Tick dispatch_tick);

  /// Schedule one copy µop from `from` cluster to `to` cluster for a value
  /// that becomes available in `from` at `value_ready`. Returns availability
  /// tick in `to`.
  Tick schedule_copy(unsigned from, unsigned to, Tick request_tick, Tick value_ready);

  /// CP: producer-side copy prefetch at writeback (Section 3.6).
  void maybe_copy_prefetch(RegId dst, u32 pc, unsigned cluster, Tick complete);

  /// Memory access path shared by loads and stores.
  Tick memory_access(SeqNum seq, u32 addr, bool is_store, bool is_load_byte,
                     Tick agu_done);

  /// NREADY imbalance accounting for a µop that waited to issue.
  void account_nready(unsigned cluster, bool eligible_other, Tick ready, Tick issue);

  void train_cp_window(SeqNum upto_seq);

  const MachineConfig cfg_;
  const Program& program_;
  SteeringPolicy policy_;

  WidthPredictor wpred_;
  BranchPredictor bpred_;
  MemorySystem memsys_;
  Mob mob_;

  // Frontend / commit schedules (wide clock domain).
  SlotSchedule fetch_slots_;
  SlotSchedule rename_slots_;
  SlotSchedule commit_slots_;
  // Backend issue slots and queue occupancy.
  std::array<std::unique_ptr<SlotSchedule>, kNumBackends> issue_slots_;
  std::array<std::unique_ptr<QueueTracker>, kNumBackends> queues_;
  // Dedicated copy-µop scheduling resources per integer cluster (Section 4:
  // the copy scheme "requires its own scheduling resources").
  std::array<std::unique_ptr<SlotSchedule>, kNumIntClusters> copy_slots_;

  // Architectural register location/width state (program-order view).
  std::unique_ptr<std::array<RegState, kNumRegs>> regs_;

  // ROB occupancy: commit ticks of the last rob_entries µops.
  std::vector<Tick> rob_commit_;

  // CP training window (producers awaiting "did it incur a copy?").
  std::vector<CpTrainEntry> cp_window_;

  /// Block-granularity IR (the Section 3.7 extension): while positive,
  /// splittable µops join the current helper block without re-consulting
  /// the imbalance trigger.
  unsigned block_split_remaining_ = 0;

  Tick fetch_barrier_ = 0;     // redirect/flush refill point
  Tick last_fetch_ = 0;
  Tick last_dispatch_ = 0;
  Tick last_commit_ = 0;
  /// In-order dispatch backpressure: when a µop (or one of its copies)
  /// stalls on a full issue queue, younger µops cannot dispatch earlier.
  Tick dispatch_backpressure_ = 0;
  SeqNum next_seq_ = 0;

  SimResult res_;
};

/// Convenience wrapper: build a pipeline and run the trace.
SimResult simulate(const MachineConfig& cfg, const Trace& trace);

/// Streaming form: records are pulled chunk-wise from the cursor.
SimResult simulate(const MachineConfig& cfg, TraceCursor& cursor);

}  // namespace hcsim
