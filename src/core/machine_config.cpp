#include "core/machine_config.hpp"

namespace hcsim {

MachineConfig monolithic_baseline() {
  MachineConfig cfg;
  cfg.steer = steering_baseline();
  return cfg;
}

MachineConfig helper_machine(const SteeringConfig& steer) {
  MachineConfig cfg;
  cfg.steer = steer;
  return cfg;
}

}  // namespace hcsim
