// hcsim — machine configuration (Table 1 baseline + helper cluster knobs).
#pragma once

#include "mem/memory_system.hpp"
#include "predict/branch_predictor.hpp"
#include "predict/width_predictor.hpp"
#include "steer/steering.hpp"
#include "util/types.hpp"

namespace hcsim {

struct MachineConfig {
  // --- frontend (shared by both backends, Figure 2) -----------------------
  unsigned fetch_width = 6;    // µops per wide cycle out of the trace cache
  unsigned rename_width = 6;
  unsigned commit_width = 6;   // Table 1: commit width 6
  unsigned rob_entries = 128;
  /// Fetch-to-dispatch depth in wide cycles; also the branch-redirect and
  /// width-misprediction refill penalty.
  unsigned frontend_depth = 8;

  // --- wide (32-bit) backend: Table 1 -------------------------------------
  unsigned iq_wide = 32;        // integer scheduler entries
  unsigned issue_wide = 3;
  unsigned iq_fp = 32;          // FP scheduler entries
  unsigned issue_fp = 3;

  // --- helper (8-bit) backend: Section 2 ----------------------------------
  unsigned iq_helper = 32;
  unsigned issue_helper = 3;
  unsigned helper_width_bits = 8;
  /// Helper clock ratio: wide-cycle length in ticks (helper cycle = 1 tick).
  /// 2 reproduces the paper's clocking argument (Section 2.2).
  unsigned ticks_per_wide_cycle = 2;

  // --- inter-cluster communication (PACT'99 copy scheme) ------------------
  /// Transfer latency of a copy µop's value, in wide cycles, after the copy
  /// issues in the producer's cluster.
  unsigned copy_transfer_cycles = 1;
  /// Copy µops have their own scheduling resources (Section 4): issue ports
  /// per producer-cluster cycle dedicated to copies.
  unsigned copy_ports = 2;

  // --- substructures --------------------------------------------------------
  MemoryConfig mem;
  WidthPredictorConfig wpred;
  BranchPredictorConfig bpred;
  SteeringConfig steer;

  Tick wide_cycle_ticks() const { return ticks_per_wide_cycle; }
};

/// The paper's baseline monolithic machine (Table 1): helper disabled.
MachineConfig monolithic_baseline();

/// Baseline + helper cluster with the given steering configuration.
MachineConfig helper_machine(const SteeringConfig& steer);

}  // namespace hcsim
