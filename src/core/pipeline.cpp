#include "core/pipeline.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/narrow.hpp"

namespace hcsim {

// ---------------------------------------------------------------------------
// Internal state types
// ---------------------------------------------------------------------------

/// Program-order view of one architectural register: where its current value
/// lives (per backend), when it becomes readable there, its actual and
/// predicted widths, and the producing µop (for CP training and the BR rule).
struct Pipeline::RegState {
  std::array<Tick, kNumBackends> avail = {0, 0, 0};
  std::array<bool, kNumBackends> present = {true, true, true};
  bool value_narrow = true;   // actual width of the current value
  bool pred_narrow = true;    // width the producer's predictor announced
  Tick known_at = 0;          // when the actual width becomes architecturally known
  u32 producer_pc = ~0u;
  SeqNum producer_seq = kSeqNone;
  unsigned producer_cluster = kWideIdx;
  bool prefetched = false;    // a CP prefetch put the value in the other cluster
};

/// CP training window entry: producers wait here until they age out of the
/// pipeline, at which point the copy predictor learns whether this instance
/// incurred (or usefully prefetched) an inter-cluster copy.
struct Pipeline::CpTrainEntry {
  SeqNum seq = kSeqNone;
  u32 pc = 0;
  bool copied = false;
  bool prefetch_used = false;
  bool valid = false;
};

namespace {

constexpr bool cr_eligible_opcode(Opcode op) {
  // The CR scheme relies on the carry signal, so only additive address/value
  // arithmetic and memory address generation qualify; mul/div are explicitly
  // ineligible (Section 3.5).
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kLea:
    case Opcode::kLoad:
    case Opcode::kLoadByte:
    case Opcode::kStore:
    case Opcode::kStoreByte:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Pipeline::Pipeline(const MachineConfig& cfg, const Program& program)
    : cfg_(cfg),
      program_(program),
      policy_(cfg.steer),
      wpred_(cfg.wpred),
      bpred_(cfg.bpred),
      memsys_(cfg.mem),
      fetch_slots_(cfg.fetch_width, cfg.ticks_per_wide_cycle),
      rename_slots_(cfg.rename_width, cfg.ticks_per_wide_cycle),
      commit_slots_(cfg.commit_width, cfg.ticks_per_wide_cycle) {
  issue_slots_[kWideIdx] =
      std::make_unique<SlotSchedule>(cfg.issue_wide, cfg.ticks_per_wide_cycle);
  issue_slots_[kHelperIdx] = std::make_unique<SlotSchedule>(cfg.issue_helper, Tick{1});
  issue_slots_[kFpIdx] =
      std::make_unique<SlotSchedule>(cfg.issue_fp, cfg.ticks_per_wide_cycle);
  queues_[kWideIdx] = std::make_unique<QueueTracker>(cfg.iq_wide);
  queues_[kHelperIdx] = std::make_unique<QueueTracker>(cfg.iq_helper);
  queues_[kFpIdx] = std::make_unique<QueueTracker>(cfg.iq_fp);
  copy_slots_[kWideIdx] =
      std::make_unique<SlotSchedule>(cfg.copy_ports, cfg.ticks_per_wide_cycle);
  copy_slots_[kHelperIdx] = std::make_unique<SlotSchedule>(cfg.copy_ports, Tick{1});
  regs_ = std::make_unique<std::array<RegState, kNumRegs>>();
  rob_commit_.assign(cfg.rob_entries, 0);
  cp_window_.assign(2 * cfg.rob_entries, CpTrainEntry{});
  res_.workload = program.name;
  res_.config = cfg.steer.describe();
}

Pipeline::~Pipeline() = default;

// ---------------------------------------------------------------------------
// Inter-cluster value movement
// ---------------------------------------------------------------------------

Tick Pipeline::schedule_copy(unsigned from, unsigned to, Tick request_tick,
                             Tick value_ready) {
  // The copy µop is dispatched into the *producer's* cluster (PACT'99
  // scheme). Copies have their own scheduling resources (Section 4), so
  // they do not contend for main issue-queue entries: the copy fires once
  // the value is produced and a copy port is free, then spends the transfer
  // latency on the inter-cluster wires before the consumer's register file
  // is written.
  res_.counters[Counter::kCopyRenameSlots]++;
  const Tick ready = std::max(request_tick, value_ready);
  const Tick issue = copy_slots_[from]->reserve(ready);
  const Tick done =
      issue + cycle_ticks(from) + cfg_.copy_transfer_cycles * wide_ticks();
  ++res_.copies;
  if (from == kHelperIdx && to == kWideIdx) ++res_.copies_n2w;
  if (from == kWideIdx && to == kHelperIdx) ++res_.copies_w2n;
  return done;
}

Tick Pipeline::acquire_value(RegId r, unsigned cluster, Tick dispatch_tick) {
  RegState& st = (*regs_)[r];
  if (st.present[cluster]) {
    if (st.prefetched && st.producer_cluster != cluster) {
      // The value got here ahead of demand thanks to a CP prefetch.
      ++res_.cp_useful;
      st.prefetched = false;
      if (st.producer_seq != kSeqNone) {
        CpTrainEntry& e = cp_window_[st.producer_seq % cp_window_.size()];
        if (e.valid && e.seq == st.producer_seq) e.prefetch_used = true;
      }
    }
    return st.avail[cluster];
  }
  const unsigned from = st.producer_cluster;
  const Tick avail = schedule_copy(from, cluster, dispatch_tick, st.avail[from]);
  st.present[cluster] = true;
  st.avail[cluster] = avail;
  if (avail > dispatch_tick) res_.copy_wait.add(avail - dispatch_tick);
  if (st.producer_seq != kSeqNone) {
    CpTrainEntry& e = cp_window_[st.producer_seq % cp_window_.size()];
    if (e.valid && e.seq == st.producer_seq) e.copied = true;
  }
  return avail;
}

void Pipeline::maybe_copy_prefetch(RegId dst, u32 pc, unsigned cluster,
                                   Tick complete) {
  if (!cfg_.steer.cp || cluster == kFpIdx) return;
  if (!wpred_.predict_copy(pc)) return;
  RegState& st = (*regs_)[dst];
  const unsigned other = (cluster == kHelperIdx) ? kWideIdx : kHelperIdx;
  if (st.present[other]) return;
  // Hybrid direction policy (Section 3.6): narrow-to-wide prefetches are
  // driven by the CP bit; wide-to-narrow prefetches additionally require the
  // width predictor to announce a narrow value (only narrow values fit in
  // the 8-bit register file).
  if (cluster == kWideIdx && !st.pred_narrow) return;
  const Tick avail = schedule_copy(cluster, other, complete, complete);
  st.present[other] = true;
  st.avail[other] = avail;
  st.prefetched = true;
  ++res_.copy_prefetches;
}

void Pipeline::train_cp_window(SeqNum upto_seq) {
  // Entries are trained lazily when their ring slot is recycled; this is
  // called once at the end of the run to flush the remainder.
  for (CpTrainEntry& e : cp_window_) {
    if (e.valid && e.seq <= upto_seq) {
      wpred_.train_copy(e.pc, e.copied || e.prefetch_used);
      e.valid = false;
    }
  }
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

Tick Pipeline::memory_access(SeqNum seq, u32 addr, bool is_store, bool,
                             Tick agu_done) {
  const Tick wt = wide_ticks();
  const u64 agu_cycle = (agu_done + wt - 1) / wt;
  if (is_store) {
    mob_.add_store(seq, addr, agu_done);
    // The store's cache access happens post-commit; charge the hierarchy now
    // for port/replacement modeling without stalling the pipeline.
    (void)memsys_.access(agu_cycle, addr, /*is_store=*/true);
    res_.counters[Counter::kStoreAccesses]++;
    return agu_done;
  }
  const Mob::LoadCheck fwd = mob_.check_load(seq, addr);
  if (fwd.forwarded) {
    res_.counters[Counter::kMobForwards]++;
    return std::max(agu_done, fwd.ready_cycle) + wt;
  }
  const u64 done_cycle = memsys_.access(agu_cycle, addr, /*is_store=*/false);
  res_.counters[Counter::kLoadAccesses]++;
  return done_cycle * wt;
}

// ---------------------------------------------------------------------------
// NREADY imbalance metric (Section 3.7)
// ---------------------------------------------------------------------------

void Pipeline::account_nready(unsigned cluster, bool eligible_other, Tick ready,
                              Tick issue) {
  if (!cfg_.steer.helper_enabled || !eligible_other || cluster == kFpIdx) return;
  if (issue <= ready) return;
  // A µop counts toward the imbalance metric (at most once) if, during any
  // cycle it sat ready-but-unissued in its own cluster, the other cluster
  // had an issue slot it could have used (Section 3.7's NREADY). The ring
  // ledger answers this as a single range probe over [ready, issue) —
  // arbitrarily long ready→issue gaps are classified exactly (the old
  // tick-stepping loop silently gave up after 64 samples and, stepping by
  // the slower cluster's cycle, skipped half the fast-clock cycles).
  const unsigned other = (cluster == kHelperIdx) ? kWideIdx : kHelperIdx;
  const SlotSchedule::RangeProbe probe = issue_slots_[other]->free_slot_in(ready, issue);
  if (probe.truncated) res_.counters[Counter::kNreadyTruncations]++;
  if (probe.free) {
    if (cluster == kWideIdx)
      ++res_.nready_w2n;
    else
      ++res_.nready_n2w;
  }
}

// ---------------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------------

void Pipeline::feed(const TraceRecord& rec) {
  const Tick wt = wide_ticks();
  const StaticUop& su = program_.uops[rec.pc];
  const OpcodeInfo& info = opcode_info(su.opcode);
  const SeqNum seq = next_seq_++;

  // ----- fetch (trace cache, wide clock) --------------------------------
  const Tick fetch = fetch_slots_.reserve(std::max(fetch_barrier_, last_fetch_));
  last_fetch_ = fetch;
  res_.counters[Counter::kFetched]++;

  // ----- rename/dispatch --------------------------------------------------
  Tick rename_ready = fetch + cfg_.frontend_depth * wt;
  rename_ready = std::max(rename_ready, rob_commit_[seq % cfg_.rob_entries]);
  rename_ready = std::max(rename_ready, dispatch_backpressure_);
  const Tick disp = rename_slots_.reserve(std::max(rename_ready, last_dispatch_));
  last_dispatch_ = disp;

  // ----- steering context -------------------------------------------------
  SteerContext ctx;
  ctx.uop = &su;
  ctx.helper_capable = info.helper_capable;
  ctx.frontend_resolvable = su.opcode == Opcode::kBranchCond;

  bool all_srcs_narrow = true;
  unsigned wide_srcs = 0;
  u32 wide_src_val = 0;
  bool have_narrow_src = false;
  for (unsigned k = 0; k < kMaxSrcs; ++k) {
    const RegId r = su.srcs[k];
    if (r == kRegNone) continue;
    const RegState& st = (*regs_)[r];
    // Paper Section 3.2: the actual width is used if the producer already
    // wrote back; otherwise the rename-table width bit (prediction).
    const bool narrow = is_flags(r) ? true
                        : (st.known_at <= disp ? st.value_narrow : st.pred_narrow);
    if (!narrow) {
      ++wide_srcs;
      wide_src_val = rec.src_vals[k];
    } else if (!is_flags(r)) {
      have_narrow_src = true;
    }
    all_srcs_narrow = all_srcs_narrow && narrow;
  }
  if (su.has_imm) {
    const bool narrow_imm = is_narrow(su.imm, cfg_.helper_width_bits);
    all_srcs_narrow = all_srcs_narrow && narrow_imm;
    if (narrow_imm) {
      have_narrow_src = true;
    } else {
      ++wide_srcs;
      wide_src_val = su.imm;
    }
  }
  ctx.all_srcs_narrow = all_srcs_narrow;

  const bool tracked = info.width_tracked && su.has_dst();
  const WidthPredictor::Prediction rp = wpred_.predict_result(rec.pc);
  ctx.result_pred_narrow = rp.narrow;
  ctx.result_confident = rp.confident;
  res_.counters[Counter::kWpredLookups]++;

  // CR shape: exactly one wide source, at least one narrow, additive op,
  // result expected wide (Section 3.5's 8-32-32 pattern).
  ctx.cr_shape = cr_eligible_opcode(su.opcode) && wide_srcs == 1 && have_narrow_src &&
                 (!tracked || !rp.narrow);
  if (ctx.cr_shape) {
    const WidthPredictor::Prediction cp = wpred_.predict_carry(rec.pc);
    ctx.carry_pred_confined = cp.narrow;
    ctx.carry_confident = cp.confident;
  }

  if (su.reads_flags()) {
    ctx.flags_producer_in_helper =
        (*regs_)[kRegFlags].producer_cluster == kHelperIdx;
  }
  ctx.iq_occ_wide = queues_[kWideIdx]->occupancy(disp);
  ctx.iq_occ_helper = queues_[kHelperIdx]->occupancy(disp);
  ctx.iq_size_wide = cfg_.iq_wide;
  ctx.iq_size_helper = cfg_.iq_helper;

  SteerDecision decision = policy_.decide(ctx);

  // Block-granularity splitting (Section 3.7's proposed extension): a
  // triggered split opens a block; subsequent splittable µops follow it
  // into the helper so intra-block dataflow never crosses the clusters.
  if (cfg_.steer.ir_block) {
    const bool splittable = info.helper_capable &&
                            info.op_class == OpClass::kIntAlu &&
                            !is_branch(su.opcode);
    if (decision == SteerDecision::kSplit) {
      block_split_remaining_ = cfg_.steer.ir_block_len;
    } else if (block_split_remaining_ > 0 && splittable &&
               decision == SteerDecision::kWide) {
      decision = SteerDecision::kSplit;
      res_.counters[Counter::kBlockSplits]++;
    }
    if (block_split_remaining_ > 0) --block_split_remaining_;
  }

  // ----- actual widths (used for misprediction detection + training) -----
  const bool result_narrow_actual =
      su.has_dst() ? is_narrow(rec.result, cfg_.helper_width_bits) : true;
  bool srcs_narrow_actual = true;
  for (unsigned k = 0; k < kMaxSrcs; ++k) {
    if (su.srcs[k] == kRegNone || is_flags(su.srcs[k])) continue;
    srcs_narrow_actual =
        srcs_narrow_actual && is_narrow(rec.src_vals[k], cfg_.helper_width_bits);
  }
  if (su.has_imm)
    srcs_narrow_actual = srcs_narrow_actual && is_narrow(su.imm, cfg_.helper_width_bits);

  // ----- execution helper --------------------------------------------------
  // Runs the µop in `cluster` starting no earlier than `from_tick`;
  // returns {ready, issue, complete}.
  struct ExecTimes {
    Tick ready, issue, complete;
  };
  auto exec_in = [&](unsigned cluster, Tick from_tick) -> ExecTimes {
    Tick src_ready = from_tick;
    for (unsigned k = 0; k < kMaxSrcs; ++k) {
      const RegId r = su.srcs[k];
      if (r == kRegNone) continue;
      src_ready = std::max(src_ready, acquire_value(r, cluster, from_tick));
    }
    const Tick qdisp = queues_[cluster]->earliest_dispatch(from_tick);
    // Dispatch is in order: a full issue queue backpressures the frontend
    // for younger µops as well.
    dispatch_backpressure_ = std::max(dispatch_backpressure_, qdisp);
    const Tick ready = std::max(src_ready, qdisp);
    const Tick issue = issue_slots_[cluster]->reserve(ready);
    queues_[cluster]->add(issue);
    res_.counters[cluster == kHelperIdx ? Counter::kIssueHelper
                  : cluster == kFpIdx   ? Counter::kIssueFp
                                        : Counter::kIssueWide]++;

    Tick complete;
    if (is_memory(su.opcode)) {
      const Tick agu_done = issue + cycle_ticks(cluster);
      complete = memory_access(seq, rec.mem_addr, is_store(su.opcode),
                               su.opcode == Opcode::kLoadByte, agu_done);
    } else {
      complete = issue + info.latency_wide * cycle_ticks(cluster);
    }
    return ExecTimes{ready, issue, complete};
  };

  // Actual carry confinement for CR candidates: the operation's output
  // (result, or effective address for memory ops) must agree with the wide
  // source on everything above the helper width (Figure 10's condition).
  const u32 cr_output = is_memory(su.opcode) ? rec.mem_addr : rec.result;
  const bool cr_confined_actual =
      upper_bits_match(wide_src_val, cr_output, cfg_.helper_width_bits);

  unsigned cluster;
  Tick issue = 0;
  Tick complete = 0;
  bool fatal = false;

  if (decision == SteerDecision::kSplit) {
    // ----- IR instruction splitting (Section 3.7) -------------------------
    ++res_.split_uops;
    res_.chunk_uops += 4;
    res_.counters[Counter::kChunkRenameSlots] += 3;
    for (unsigned k = 0; k < 3; ++k) (void)rename_slots_.reserve(disp);

    Tick src_ready = disp;
    for (unsigned k = 0; k < kMaxSrcs; ++k) {
      const RegId r = su.srcs[k];
      if (r == kRegNone) continue;
      src_ready = std::max(src_ready, acquire_value(r, kHelperIdx, disp));
    }
    // Four chained 8-bit chunks, LSB to MSB, back to back in the helper.
    Tick prev = src_ready;
    for (unsigned k = 0; k < 4; ++k) {
      const Tick qd = queues_[kHelperIdx]->earliest_dispatch(disp);
      dispatch_backpressure_ = std::max(dispatch_backpressure_, qd);
      const Tick rdy = std::max(qd, prev);
      const Tick iss = issue_slots_[kHelperIdx]->reserve(rdy);
      queues_[kHelperIdx]->add(iss);
      res_.counters[Counter::kIssueHelper]++;
      if (k == 0) issue = iss;
      prev = iss + cycle_ticks(kHelperIdx);
    }
    complete = prev;
    cluster = kHelperIdx;
    account_nready(kHelperIdx, true, std::max(src_ready, disp), issue);
  } else {
    cluster = is_fp(su.opcode) ? kFpIdx
              : (decision == SteerDecision::kWide ? kWideIdx : kHelperIdx);
    ExecTimes t = exec_in(cluster, disp);

    // ----- width misprediction detection (fatal = flush + resteer) -------
    if (cluster == kHelperIdx) {
      if (decision == SteerDecision::kHelper) {
        fatal = !srcs_narrow_actual || (tracked && !result_narrow_actual);
      } else if (decision == SteerDecision::kHelperCr) {
        // Carry escaped the low byte: caught by the carry-out signal.
        fatal = !cr_confined_actual;
        if (fatal) ++res_.cr_violations;
      }
      if (fatal) {
        // Flushing recovery (Section 3.2): squash from this µop, refill
        // the frontend, re-execute in the wide backend. CR violations are
        // caught by the AGU/ALU carry-out signal at execute; 8-8-8 result
        // width violations are only known at writeback (data return).
        const Tick detect = decision == SteerDecision::kHelperCr
                                ? t.issue + cycle_ticks(kHelperIdx)
                                : t.complete;
        fetch_barrier_ = std::max(fetch_barrier_, detect);
        const Tick redisp = detect + cfg_.frontend_depth * wt;
        (void)rename_slots_.reserve(redisp);
        t = exec_in(kWideIdx, redisp);
        cluster = kWideIdx;
        res_.counters[Counter::kFlushRefills]++;
      }
    }
    issue = t.issue;
    complete = t.complete;

    // NREADY eligibility is structural (Section 3.7): a wide µop counts
    // against the helper when the helper had a free slot it *could* have
    // used (via steering or splitting), and vice versa.
    const bool eligible_other = cluster == kHelperIdx || info.helper_capable;
    account_nready(cluster, eligible_other, t.ready, t.issue);
  }

  // ----- steering statistics ---------------------------------------------
  if (cluster == kHelperIdx) {
    ++res_.to_helper;
    if (decision == SteerDecision::kHelperCr) ++res_.cr_steered;
    if (is_branch(su.opcode)) ++res_.br_steered;
  } else if (cluster != kFpIdx) {
    ++res_.to_wide;
  }

  // ----- width prediction classification (Figure 5) -----------------------
  if (tracked) {
    if (fatal && decision != SteerDecision::kHelperCr) {
      ++res_.wp_fatal;
    } else if (rp.narrow != result_narrow_actual) {
      ++res_.wp_nonfatal;
    } else {
      ++res_.wp_correct;
    }
    wpred_.train_result(rec.pc, result_narrow_actual);
  }
  if (ctx.cr_shape) wpred_.train_carry(rec.pc, cr_confined_actual);

  // ----- branches -----------------------------------------------------------
  if (su.opcode == Opcode::kBranchCond) {
    ++res_.branches;
    const bool pred = bpred_.predict(rec.pc);
    bpred_.update(rec.pc, rec.taken);
    if (pred != rec.taken) {
      ++res_.branch_mispredicts;
      fetch_barrier_ = std::max(fetch_barrier_, complete);
    }
  }

  // ----- writeback: register location/width bookkeeping -------------------
  if (su.has_dst()) {
    RegState& st = (*regs_)[su.dst];
    st = RegState{};
    st.present = {false, false, false};
    st.avail = {kTickNever, kTickNever, kTickNever};
    st.present[cluster] = true;
    st.avail[cluster] = complete;
    st.value_narrow = result_narrow_actual;
    st.pred_narrow = tracked ? rp.narrow : result_narrow_actual;
    st.known_at = complete;
    st.producer_pc = rec.pc;
    st.producer_seq = seq;
    st.producer_cluster = cluster;
    res_.counters[cluster == kHelperIdx ? Counter::kRfWriteHelper : Counter::kRfWriteWide]++;

    if (decision == SteerDecision::kSplit) {
      if (cfg_.steer.ir_block) {
        // Block mode: results stay helper-resident; only µops outside the
        // block that actually consume the value pay a demand copy.
      } else {
        // The full 32-bit result is prefetched back to the wide cluster
        // via four 8-bit copy µops (Section 3.7).
        Tick wavail = complete;
        for (unsigned k = 0; k < 4; ++k)
          wavail = std::max(
              wavail, schedule_copy(kHelperIdx, kWideIdx, complete, complete));
        st.present[kWideIdx] = true;
        st.avail[kWideIdx] = wavail;
      }
    } else if (decision == SteerDecision::kHelperCr && cluster == kHelperIdx &&
               !result_narrow_actual) {
      if (is_load(su.opcode)) {
        // CR load: the AGU add ran in the helper but the (wide) data is
        // delivered by the shared MOB straight into the wide register
        // file — the 8-bit RF cannot hold it.
        st.present = {true, false, false};
        st.avail = {complete, kTickNever, kTickNever};
        st.producer_cluster = kWideIdx;
      }
      // CR arithmetic: the low byte lives in the helper; the upper 24
      // bits stay in the tagged wide source register (Section 3.5), so a
      // wide consumer reconstructs the value through the ordinary demand
      // copy of the low byte. Nothing extra to do here.
    }

    // LR (Section 3.4): the MOB is shared, so 8-bit loads allocate a
    // register in *both* clusters and the load data is written to both
    // register files at writeback — no copy µop needed. This covers both
    // directions: a byte load whose address resolves in the wide cluster
    // feeding a narrow consumer, and a helper-executed byte load feeding
    // a wide consumer.
    if (cfg_.steer.lr && su.opcode == Opcode::kLoadByte && cluster != kFpIdx) {
      const unsigned other = cluster == kHelperIdx ? kWideIdx : kHelperIdx;
      if (!st.present[other] && result_narrow_actual) {
        st.present[other] = true;
        st.avail[other] = complete + cfg_.copy_transfer_cycles * wt;
        ++res_.replicated_loads;
        res_.counters[other == kHelperIdx ? Counter::kRfWriteHelper : Counter::kRfWriteWide]++;
      }
    }

    // CP training-window bookkeeping + prefetch generation.
    CpTrainEntry& slot = cp_window_[seq % cp_window_.size()];
    if (slot.valid) wpred_.train_copy(slot.pc, slot.copied || slot.prefetch_used);
    slot = CpTrainEntry{seq, rec.pc, false, false, true};
    maybe_copy_prefetch(su.dst, rec.pc, cluster, complete);
  }
  if (su.writes_flags()) {
    RegState& fl = (*regs_)[kRegFlags];
    fl = RegState{};
    fl.present = {false, false, false};
    fl.avail = {kTickNever, kTickNever, kTickNever};
    fl.present[cluster] = true;
    fl.avail[cluster] = complete;
    fl.value_narrow = true;  // condition codes are narrow by definition
    fl.pred_narrow = true;
    fl.known_at = complete;
    fl.producer_pc = rec.pc;
    fl.producer_seq = kSeqNone;  // flags don't participate in CP training
    fl.producer_cluster = cluster;
  }

  // ----- commit (in order, wide clock) -------------------------------------
  const Tick ctick = commit_slots_.reserve(std::max(complete, last_commit_));
  last_commit_ = std::max(last_commit_, ctick);
  rob_commit_[seq % cfg_.rob_entries] = ctick;
  if (is_store(su.opcode)) mob_.store_retired(seq);
  ++res_.uops;
  res_.counters[Counter::kCommitted]++;
  res_.final_tick = std::max(res_.final_tick, ctick);
}

Pipeline::StatsCheckpoint Pipeline::checkpoint_stats() const {
  StatsCheckpoint cp;
  cp.res = res_;
  cp.dl0_hits = memsys_.dl0().hit_ratio().num;
  cp.dl0_accesses = memsys_.dl0().hit_ratio().den;
  cp.ul1_hits = memsys_.ul1().hit_ratio().num;
  cp.ul1_accesses = memsys_.ul1().hit_ratio().den;
  return cp;
}

SimResult Pipeline::finish() {
  const Tick wt = wide_ticks();
  train_cp_window(next_seq_);
  res_.cp_wasted = res_.copy_prefetches >= res_.cp_useful
                       ? res_.copy_prefetches - res_.cp_useful
                       : 0;
  res_.wide_cycles = static_cast<double>(res_.final_tick) / static_cast<double>(wt);
  res_.ipc = res_.wide_cycles > 0
                 ? static_cast<double>(res_.uops) / res_.wide_cycles
                 : 0.0;
  res_.dl0_hit_rate = memsys_.dl0().hit_ratio().value();
  res_.ul1_hit_rate = memsys_.ul1().hit_ratio().value();
  res_.counters[Counter::kDl0Accesses] = memsys_.dl0().accesses();
  res_.counters[Counter::kUl1Accesses] = memsys_.ul1().accesses();
  return res_;
}

SimResult Pipeline::run(TraceCursor& cursor) {
  for (std::span<const TraceRecord> chunk = cursor.next_chunk(); !chunk.empty();
       chunk = cursor.next_chunk()) {
    for (const TraceRecord& rec : chunk) feed(rec);
  }
  return finish();
}

SimResult simulate(const MachineConfig& cfg, const Trace& trace) {
  TraceVectorCursor cursor(trace);
  Pipeline p(cfg, trace.program);
  return p.run(cursor);
}

SimResult simulate(const MachineConfig& cfg, TraceCursor& cursor) {
  Pipeline p(cfg, cursor.program());
  return p.run(cursor);
}

}  // namespace hcsim
