#include "core/pipeline.hpp"

#include <algorithm>
#include <bit>

#include "util/log.hpp"
#include "util/narrow.hpp"

namespace hcsim {

// ---------------------------------------------------------------------------
// Internal state types
// ---------------------------------------------------------------------------

/// CP training window entry: producers wait here until they age out of the
/// pipeline, at which point the copy predictor learns whether this instance
/// incurred (or usefully prefetched) an inter-cluster copy.
struct Pipeline::CpTrainEntry {
  SeqNum seq = kSeqNone;
  u32 pc = 0;
  bool copied = false;
  bool prefetch_used = false;
  bool valid = false;
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Pipeline::Pipeline(const MachineConfig& cfg, const Program& program,
                   DecodeCache* shared_cache)
    : cfg_(cfg),
      program_(program),
      policy_(cfg.steer),
      wpred_(cfg.wpred),
      bpred_(cfg.bpred),
      memsys_(cfg.mem),
      fetch_slots_(cfg.fetch_width, cfg.ticks_per_wide_cycle),
      rename_slots_(cfg.rename_width, cfg.ticks_per_wide_cycle),
      rename_mono_slots_(cfg.rename_width, cfg.ticks_per_wide_cycle),
      commit_slots_(cfg.commit_width, cfg.ticks_per_wide_cycle) {
  epoch_on_ = epoch_enabled_default();
  if (epoch_on_) {
    epochs_[kWideIdx].init(cfg.issue_wide, cfg.iq_wide, cfg.copy_ports,
                           cfg.ticks_per_wide_cycle);
    epochs_[kHelperIdx].init(cfg.issue_helper, cfg.iq_helper, cfg.copy_ports,
                             Tick{1});
    epochs_[kFpIdx].init(cfg.issue_fp, cfg.iq_fp, /*copy_ports=*/0,
                         cfg.ticks_per_wide_cycle);
  } else {
    issue_slots_[kWideIdx] =
        std::make_unique<SlotSchedule>(cfg.issue_wide, cfg.ticks_per_wide_cycle);
    issue_slots_[kHelperIdx] =
        std::make_unique<SlotSchedule>(cfg.issue_helper, Tick{1});
    issue_slots_[kFpIdx] =
        std::make_unique<SlotSchedule>(cfg.issue_fp, cfg.ticks_per_wide_cycle);
    queues_[kWideIdx] = std::make_unique<QueueTracker>(cfg.iq_wide);
    queues_[kHelperIdx] = std::make_unique<QueueTracker>(cfg.iq_helper);
    queues_[kFpIdx] = std::make_unique<QueueTracker>(cfg.iq_fp);
    copy_slots_[kWideIdx] =
        std::make_unique<SlotSchedule>(cfg.copy_ports, cfg.ticks_per_wide_cycle);
    copy_slots_[kHelperIdx] = std::make_unique<SlotSchedule>(cfg.copy_ports, Tick{1});
  }
  regs_ = std::make_unique<std::array<RegState, kNumRegs>>();
  rob_commit_.assign(cfg.rob_entries, 0);
  cp_window_.assign(2 * cfg.rob_entries, CpTrainEntry{});
  res_.workload = program.name;
  res_.config = cfg.steer.describe();

  frontend_ticks_ = cfg.frontend_depth * wide_ticks();
  width_bits_ = cfg.helper_width_bits;
  wt_pow2_ = std::has_single_bit(static_cast<u64>(wide_ticks()));
  wt_shift_ = static_cast<unsigned>(std::countr_zero(static_cast<u64>(wide_ticks())));
  // decide() consults issue-queue occupancy only for the IR imbalance
  // trigger and the balance throttle; skipping the occupancy probes
  // otherwise is output-invisible because QueueTracker's lazy drain is
  // monotonic — any later query drains at least as far.
  needs_occ_ = cfg.steer.helper_enabled && (cfg.steer.ir || cfg.steer.balance_throttle);
  cr_on_ = cfg.steer.cr;
  lr_on_ = cfg.steer.lr;
  cp_on_ = cfg.steer.cp;
  ir_block_on_ = cfg.steer.ir_block;
  // Out-of-band rename reserves (split, flush refill) exist only with the
  // helper on, but even those are non-decreasing in the *requested* tick
  // (dispatch backpressure covers the flush refill), so the epoch engine
  // uses the two-word monotonic counter unconditionally. The legacy path
  // keeps the ring ledger for helper configs as the reference behaviour.
  rename_mono_ = epoch_on_ || !cfg.steer.helper_enabled;

  cache_ = shared_cache ? shared_cache : &own_cache_;
  cache_on_ = cache_->enabled();
  if (cache_on_) {
    res_.counters[Counter::kBbCacheInvalidations] +=
        cache_->bind(program, cfg.steer, cfg.helper_width_bits);
  }
}

Pipeline::~Pipeline() = default;

// ---------------------------------------------------------------------------
// Inter-cluster value movement
// ---------------------------------------------------------------------------

Tick Pipeline::schedule_copy(unsigned from, unsigned to, Tick request_tick,
                             Tick value_ready) {
  // The copy µop is dispatched into the *producer's* cluster (PACT'99
  // scheme). Copies have their own scheduling resources (Section 4), so
  // they do not contend for main issue-queue entries: the copy fires once
  // the value is produced and a copy port is free, then spends the transfer
  // latency on the inter-cluster wires before the consumer's register file
  // is written.
  res_.counters[Counter::kCopyRenameSlots]++;
  const Tick ready = std::max(request_tick, value_ready);
  const Tick issue = epoch_on_ ? epochs_[from].reserve_copy(ready)
                               : copy_slots_[from]->reserve(ready);
  const Tick done =
      issue + cycle_ticks(from) + cfg_.copy_transfer_cycles * wide_ticks();
  ++res_.copies;
  if (from == kHelperIdx && to == kWideIdx) ++res_.copies_n2w;
  if (from == kWideIdx && to == kHelperIdx) ++res_.copies_w2n;
  return done;
}

Tick Pipeline::acquire_prefetched(RegState& st, unsigned cluster) {
  // The value got here ahead of demand thanks to a CP prefetch.
  ++res_.cp_useful;
  st.prefetched = false;
  if (st.producer_seq != kSeqNone) {
    CpTrainEntry& e = cp_window_[st.producer_seq % cp_window_.size()];
    if (e.valid && e.seq == st.producer_seq) e.prefetch_used = true;
  }
  return st.avail[cluster];
}

Tick Pipeline::acquire_demand_copy(RegState& st, unsigned cluster,
                                   Tick dispatch_tick) {
  const unsigned from = st.producer_cluster;
  const Tick avail = schedule_copy(from, cluster, dispatch_tick, st.avail[from]);
  st.present[cluster] = true;
  st.avail[cluster] = avail;
  if (avail > dispatch_tick) res_.copy_wait.add(avail - dispatch_tick);
  // The CP training-window entry only exists (and only matters) when the
  // copy-prefetch scheme maintains the window.
  if (cp_on_ && st.producer_seq != kSeqNone) {
    CpTrainEntry& e = cp_window_[st.producer_seq % cp_window_.size()];
    if (e.valid && e.seq == st.producer_seq) e.copied = true;
  }
  return avail;
}

void Pipeline::maybe_copy_prefetch(RegId dst, u32 pc, unsigned cluster,
                                   Tick complete) {
  if (!cfg_.steer.cp || cluster == kFpIdx) return;
  if (!wpred_.predict_copy(pc)) return;
  RegState& st = (*regs_)[dst];
  const unsigned other = (cluster == kHelperIdx) ? kWideIdx : kHelperIdx;
  if (st.present[other]) return;
  // Hybrid direction policy (Section 3.6): narrow-to-wide prefetches are
  // driven by the CP bit; wide-to-narrow prefetches additionally require the
  // width predictor to announce a narrow value (only narrow values fit in
  // the 8-bit register file).
  if (cluster == kWideIdx && !st.pred_narrow) return;
  const Tick avail = schedule_copy(cluster, other, complete, complete);
  st.present[other] = true;
  st.avail[other] = avail;
  st.prefetched = true;
  ++res_.copy_prefetches;
}

void Pipeline::train_cp_window(SeqNum upto_seq) {
  // Entries are trained lazily when their ring slot is recycled; this is
  // called once at the end of the run to flush the remainder.
  for (CpTrainEntry& e : cp_window_) {
    if (e.valid && e.seq <= upto_seq) {
      wpred_.train_copy(e.pc, e.copied || e.prefetch_used);
      e.valid = false;
    }
  }
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

Tick Pipeline::memory_access(SeqNum seq, u32 addr, bool is_store, bool,
                             Tick agu_done) {
  const Tick wt = wide_ticks();
  // Runs for every load/store; the tick→wide-cycle ceil-division is a shift
  // for the power-of-two clock ratios (1, 2, 4 — everything but the ratio
  // ablation's 3).
  const u64 agu_up = agu_done + wt - 1;
  const u64 agu_cycle = wt_pow2_ ? (agu_up >> wt_shift_) : (agu_up / wt);
  if (is_store) {
    mob_.add_store(seq, addr, agu_done);
    // The store's cache access happens post-commit; charge the hierarchy now
    // for port/replacement modeling without stalling the pipeline.
    (void)memsys_.access(agu_cycle, addr, /*is_store=*/true);
    res_.counters[Counter::kStoreAccesses]++;
    return agu_done;
  }
  const Mob::LoadCheck fwd = mob_.check_load(seq, addr);
  if (fwd.forwarded) {
    res_.counters[Counter::kMobForwards]++;
    return std::max(agu_done, fwd.ready_cycle) + wt;
  }
  const u64 done_cycle = memsys_.access(agu_cycle, addr, /*is_store=*/false);
  res_.counters[Counter::kLoadAccesses]++;
  return done_cycle * wt;
}

// ---------------------------------------------------------------------------
// NREADY imbalance metric (Section 3.7)
// ---------------------------------------------------------------------------

void Pipeline::account_nready(unsigned cluster, bool eligible_other, Tick ready,
                              Tick issue) {
  if (!cfg_.steer.helper_enabled || !eligible_other || cluster == kFpIdx) return;
  if (issue <= ready) return;
  // A µop counts toward the imbalance metric (at most once) if, during any
  // cycle it sat ready-but-unissued in its own cluster, the other cluster
  // had an issue slot it could have used (Section 3.7's NREADY). The ring
  // ledger answers this as a single range probe over [ready, issue) —
  // arbitrarily long ready→issue gaps are classified exactly (the old
  // tick-stepping loop silently gave up after 64 samples and, stepping by
  // the slower cluster's cycle, skipped half the fast-clock cycles).
  const unsigned other = (cluster == kHelperIdx) ? kWideIdx : kHelperIdx;
  const SlotRangeProbe probe = epoch_on_
                                   ? epochs_[other].free_issue_slot_in(ready, issue)
                                   : issue_slots_[other]->free_slot_in(ready, issue);
  if (probe.truncated) res_.counters[Counter::kNreadyTruncations]++;
  if (probe.free) {
    if (cluster == kWideIdx)
      ++res_.nready_w2n;
    else
      ++res_.nready_n2w;
  }
}

// ---------------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------------

void Pipeline::feed_record(const TraceRecord& rec, const UopTemplate& t,
                           bool result_narrow, u8 src_lanes) {
  const Tick wt = wide_ticks();
  const SeqNum seq = next_seq_++;

  // Once-per-µop unconditional counters (kFetched, kWpredLookups,
  // kCommitted, uops) are bumped en bloc by the feed() overloads.

  // ----- fetch (trace cache, wide clock) --------------------------------
  const Tick fetch = fetch_slots_.reserve(std::max(fetch_barrier_, last_fetch_));
  last_fetch_ = fetch;

  // ----- rename/dispatch --------------------------------------------------
  // The max chain doubles as per-stage stall attribution: whichever term
  // strictly raises the dispatch-ready tick last is the binding constraint
  // for this µop (ties go to the earlier stage, matching std::max). The
  // counters are diagnostics only — they never feed back into timing.
  // Branchless on purpose: the binding stage flips often enough that a
  // branchy chain costs measurable mispredicts on the hot path.
  static constexpr Counter kStallByStage[4] = {
      Counter::kStallFetch, Counter::kStallCommit, Counter::kStallQueue,
      Counter::kStallRename};
  Tick rename_ready = fetch + frontend_ticks_;
  const Tick commit_gate = rob_commit_[rob_pos_];
  unsigned stage = commit_gate > rename_ready ? 1u : 0u;
  rename_ready = commit_gate > rename_ready ? commit_gate : rename_ready;
  const bool queue_binds = dispatch_backpressure_ > rename_ready;
  stage = queue_binds ? 2u : stage;
  rename_ready = queue_binds ? dispatch_backpressure_ : rename_ready;
  const bool rename_binds = last_dispatch_ > rename_ready;
  stage = rename_binds ? 3u : stage;
  rename_ready = rename_binds ? last_dispatch_ : rename_ready;
  res_.counters[kStallByStage[stage]]++;
  const Tick disp = rename_mono_ ? rename_mono_slots_.reserve(rename_ready)
                                 : rename_slots_.reserve(rename_ready);
  last_dispatch_ = disp;

  const bool tracked = t.tracked;
  // The paper's machine performs a width-table lookup for every µop (the
  // counter reflects that), but the prediction is only *consumed* for
  // tracked µops or when the full steering ladder runs — predict_result is
  // const, so eliding the dead table read is output-invisible.
  const WidthPredictor::Prediction rp = (tracked || !t.static_wide)
                                            ? wpred_.predict_result(rec.pc)
                                            : WidthPredictor::Prediction{};

  // ----- actual widths (used for misprediction detection + training) -----
  // Folded from the precomputed value lanes against the template's operand
  // masks instead of re-walking the operand array per record.
  const bool result_narrow_actual = t.has_dst ? result_narrow : true;
  const bool srcs_narrow_actual =
      (src_lanes & t.width_lane_mask) == t.width_lane_mask && t.imm_narrow;

  // ----- steering ---------------------------------------------------------
  SteerDecision decision = SteerDecision::kWide;
  bool cr_shape = false;
  u32 wide_src_val = 0;

  if (!t.static_wide) {
    SteerContext ctx;
    ctx.uop = t.uop;
    ctx.helper_capable = t.helper_capable;
    ctx.frontend_resolvable = t.is_branch_cond;

    bool all_srcs_narrow = true;
    unsigned wide_srcs = 0;
    bool have_narrow_src = false;
    for (u8 j = 0; j < t.n_width_srcs; ++j) {
      const RegState& st = (*regs_)[t.width_srcs[j]];
      // Paper Section 3.2: the actual width is used if the producer already
      // wrote back; otherwise the rename-table width bit (prediction).
      const bool narrow = st.known_at <= disp ? st.value_narrow : st.pred_narrow;
      if (!narrow) {
        ++wide_srcs;
        wide_src_val = rec.src_vals[t.width_lane[j]];
      } else {
        have_narrow_src = true;
      }
      all_srcs_narrow = all_srcs_narrow && narrow;
    }
    if (t.has_imm) {
      all_srcs_narrow = all_srcs_narrow && t.imm_narrow;
      if (t.imm_narrow) {
        have_narrow_src = true;
      } else {
        ++wide_srcs;
        wide_src_val = t.imm;
      }
    }
    ctx.all_srcs_narrow = all_srcs_narrow;
    ctx.result_pred_narrow = rp.narrow;
    ctx.result_confident = rp.confident;

    // CR shape: exactly one wide source, at least one narrow, additive op,
    // result expected wide (Section 3.5's 8-32-32 pattern). Only consulted
    // (and only trained) when the CR scheme is configured.
    if (t.wants_cr) {
      ctx.cr_shape = wide_srcs == 1 && have_narrow_src && (!tracked || !rp.narrow);
      if (ctx.cr_shape) {
        const WidthPredictor::Prediction cp = wpred_.predict_carry(rec.pc);
        ctx.carry_pred_confined = cp.narrow;
        ctx.carry_confident = cp.confident;
      }
      cr_shape = ctx.cr_shape;
    }

    if (t.reads_flags) {
      ctx.flags_producer_in_helper =
          (*regs_)[kRegFlags].producer_cluster == kHelperIdx;
    }
    if (needs_occ_) {
      if (epoch_on_) {
        ctx.iq_occ_wide = epochs_[kWideIdx].occupancy(disp);
        ctx.iq_occ_helper = epochs_[kHelperIdx].occupancy(disp);
      } else {
        ctx.iq_occ_wide = queues_[kWideIdx]->occupancy(disp);
        ctx.iq_occ_helper = queues_[kHelperIdx]->occupancy(disp);
      }
      ctx.iq_size_wide = cfg_.iq_wide;
      ctx.iq_size_helper = cfg_.iq_helper;
    }

    decision = policy_.decide(ctx);
  } else if (t.wants_cr) {
    // Memoized kWide verdict, but a CR-eligible opcode under a CR config
    // still trains the carry predictor (its table entries alias by PC, so
    // skipping the training would perturb other µops' carry predictions).
    unsigned wide_srcs = 0;
    bool have_narrow_src = false;
    for (u8 j = 0; j < t.n_width_srcs; ++j) {
      const RegState& st = (*regs_)[t.width_srcs[j]];
      const bool narrow = st.known_at <= disp ? st.value_narrow : st.pred_narrow;
      if (!narrow) {
        ++wide_srcs;
        wide_src_val = rec.src_vals[t.width_lane[j]];
      } else {
        have_narrow_src = true;
      }
    }
    if (t.has_imm) {
      if (t.imm_narrow) {
        have_narrow_src = true;
      } else {
        ++wide_srcs;
        wide_src_val = t.imm;
      }
    }
    cr_shape = wide_srcs == 1 && have_narrow_src && (!tracked || !rp.narrow);
  }

  // Block-granularity splitting (Section 3.7's proposed extension): a
  // triggered split opens a block; subsequent splittable µops follow it
  // into the helper so intra-block dataflow never crosses the clusters.
  if (ir_block_on_) {
    if (decision == SteerDecision::kSplit) {
      block_split_remaining_ = cfg_.steer.ir_block_len;
    } else if (block_split_remaining_ > 0 && t.splittable &&
               decision == SteerDecision::kWide) {
      decision = SteerDecision::kSplit;
      res_.counters[Counter::kBlockSplits]++;
    }
    if (block_split_remaining_ > 0) --block_split_remaining_;
  }

  // ----- execution helper --------------------------------------------------
  // Runs the µop in `cluster` starting no earlier than `from_tick`;
  // returns {ready, issue, complete}.
  struct ExecTimes {
    Tick ready, issue, complete;
  };
  auto exec_in = [&](unsigned cluster, Tick from_tick) -> ExecTimes {
    Tick src_ready = from_tick;
    for (u8 j = 0; j < t.n_srcs; ++j)
      src_ready = std::max(src_ready, acquire_value(t.srcs[j], cluster, from_tick));
    Tick qdisp, ready, issue;
    if (epoch_on_) [[likely]] {
      const ClusterEpoch::Dispatched d = epochs_[cluster].dispatch(from_tick, src_ready);
      qdisp = d.qdisp;
      ready = d.ready;
      issue = d.issue;
    } else {
      qdisp = queues_[cluster]->earliest_dispatch(from_tick);
      ready = std::max(src_ready, qdisp);
      issue = issue_slots_[cluster]->reserve(ready);
      queues_[cluster]->add(issue);
    }
    // Dispatch is in order: a full issue queue backpressures the frontend
    // for younger µops as well.
    dispatch_backpressure_ = std::max(dispatch_backpressure_, qdisp);
    res_.counters[Counter::kStallIssue] += issue > ready;
    res_.counters[cluster == kHelperIdx ? Counter::kIssueHelper
                  : cluster == kFpIdx   ? Counter::kIssueFp
                                        : Counter::kIssueWide]++;

    Tick complete;
    if (t.is_mem) {
      const Tick agu_done = issue + cycle_ticks(cluster);
      complete = memory_access(seq, rec.mem_addr, t.is_store_op, t.is_load_byte,
                               agu_done);
    } else {
      complete = issue + t.latency_wide * cycle_ticks(cluster);
    }
    return ExecTimes{ready, issue, complete};
  };

  // Actual carry confinement for CR candidates: the operation's output
  // (result, or effective address for memory ops) must agree with the wide
  // source on everything above the helper width (Figure 10's condition).
  bool cr_confined_actual = false;
  if (cr_shape) {
    const u32 cr_output = t.is_mem ? rec.mem_addr : rec.result;
    cr_confined_actual = upper_bits_match(wide_src_val, cr_output, width_bits_);
  }

  unsigned cluster;
  Tick issue = 0;
  Tick complete = 0;
  bool fatal = false;

  if (decision == SteerDecision::kSplit) {
    // ----- IR instruction splitting (Section 3.7) -------------------------
    ++res_.split_uops;
    res_.chunk_uops += 4;
    res_.counters[Counter::kChunkRenameSlots] += 3;
    if (rename_mono_) {
      for (unsigned k = 0; k < 3; ++k) (void)rename_mono_slots_.reserve(disp);
    } else {
      for (unsigned k = 0; k < 3; ++k) (void)rename_slots_.reserve(disp);
    }

    Tick src_ready = disp;
    for (u8 j = 0; j < t.n_srcs; ++j)
      src_ready = std::max(src_ready, acquire_value(t.srcs[j], kHelperIdx, disp));
    // Four chained 8-bit chunks, LSB to MSB, back to back in the helper.
    Tick prev = src_ready;
    for (unsigned k = 0; k < 4; ++k) {
      Tick qd, iss;
      if (epoch_on_) [[likely]] {
        const ClusterEpoch::Dispatched d = epochs_[kHelperIdx].dispatch(disp, prev);
        qd = d.qdisp;
        iss = d.issue;
      } else {
        qd = queues_[kHelperIdx]->earliest_dispatch(disp);
        iss = issue_slots_[kHelperIdx]->reserve(std::max(qd, prev));
        queues_[kHelperIdx]->add(iss);
      }
      dispatch_backpressure_ = std::max(dispatch_backpressure_, qd);
      res_.counters[Counter::kIssueHelper]++;
      if (k == 0) issue = iss;
      prev = iss + cycle_ticks(kHelperIdx);
    }
    complete = prev;
    cluster = kHelperIdx;
    account_nready(kHelperIdx, true, std::max(src_ready, disp), issue);
  } else {
    cluster = t.is_fp_op ? kFpIdx
              : (decision == SteerDecision::kWide ? kWideIdx : kHelperIdx);
    ExecTimes t2 = exec_in(cluster, disp);

    // ----- width misprediction detection (fatal = flush + resteer) -------
    if (cluster == kHelperIdx) {
      if (decision == SteerDecision::kHelper) {
        fatal = !srcs_narrow_actual || (tracked && !result_narrow_actual);
      } else if (decision == SteerDecision::kHelperCr) {
        // Carry escaped the low byte: caught by the carry-out signal.
        fatal = !cr_confined_actual;
        if (fatal) ++res_.cr_violations;
      }
      if (fatal) {
        // Flushing recovery (Section 3.2): squash from this µop, refill
        // the frontend, re-execute in the wide backend. CR violations are
        // caught by the AGU/ALU carry-out signal at execute; 8-8-8 result
        // width violations are only known at writeback (data return).
        const Tick detect = decision == SteerDecision::kHelperCr
                                ? t2.issue + cycle_ticks(kHelperIdx)
                                : t2.complete;
        fetch_barrier_ = std::max(fetch_barrier_, detect);
        const Tick redisp = detect + frontend_ticks_;
        if (rename_mono_)
          (void)rename_mono_slots_.reserve(redisp);
        else
          (void)rename_slots_.reserve(redisp);
        t2 = exec_in(kWideIdx, redisp);
        cluster = kWideIdx;
        res_.counters[Counter::kFlushRefills]++;
      }
    }
    issue = t2.issue;
    complete = t2.complete;

    // NREADY eligibility is structural (Section 3.7): a wide µop counts
    // against the helper when the helper had a free slot it *could* have
    // used (via steering or splitting), and vice versa. static_wide µops
    // are never eligible (helper disabled or helper-incapable op class),
    // so the probe is skipped with them.
    if (!t.static_wide) {
      const bool eligible_other = cluster == kHelperIdx || t.helper_capable;
      account_nready(cluster, eligible_other, t2.ready, t2.issue);
    }
  }

  // ----- steering statistics ---------------------------------------------
  if (cluster == kHelperIdx) {
    ++res_.to_helper;
    if (decision == SteerDecision::kHelperCr) ++res_.cr_steered;
    if (t.is_branch_op) ++res_.br_steered;
  } else if (cluster != kFpIdx) {
    ++res_.to_wide;
  }

  // ----- width prediction classification (Figure 5) -----------------------
  if (tracked) {
    if (fatal && decision != SteerDecision::kHelperCr) {
      ++res_.wp_fatal;
    } else if (rp.narrow != result_narrow_actual) {
      ++res_.wp_nonfatal;
    } else {
      ++res_.wp_correct;
    }
    wpred_.train_result(rec.pc, result_narrow_actual);
  }
  if (cr_shape) wpred_.train_carry(rec.pc, cr_confined_actual);

  // ----- branches -----------------------------------------------------------
  if (t.is_branch_cond) {
    ++res_.branches;
    const bool pred = bpred_.predict(rec.pc);
    bpred_.update(rec.pc, rec.taken);
    if (pred != rec.taken) {
      ++res_.branch_mispredicts;
      fetch_barrier_ = std::max(fetch_barrier_, complete);
    }
  }

  // ----- writeback: register location/width bookkeeping -------------------
  if (t.has_dst) {
    RegState& st = (*regs_)[t.dst];
    // Every field is (re)assigned — no default-construct-then-overwrite.
    st.present = {false, false, false};
    st.avail = {kTickNever, kTickNever, kTickNever};
    st.present[cluster] = true;
    st.avail[cluster] = complete;
    st.value_narrow = result_narrow_actual;
    st.pred_narrow = tracked ? rp.narrow : result_narrow_actual;
    st.known_at = complete;
    st.producer_pc = rec.pc;
    st.producer_seq = seq;
    st.producer_cluster = cluster;
    st.prefetched = false;
    res_.counters[cluster == kHelperIdx ? Counter::kRfWriteHelper : Counter::kRfWriteWide]++;

    if (decision == SteerDecision::kSplit) {
      if (ir_block_on_) {
        // Block mode: results stay helper-resident; only µops outside the
        // block that actually consume the value pay a demand copy.
      } else {
        // The full 32-bit result is prefetched back to the wide cluster
        // via four 8-bit copy µops (Section 3.7).
        Tick wavail = complete;
        for (unsigned k = 0; k < 4; ++k)
          wavail = std::max(
              wavail, schedule_copy(kHelperIdx, kWideIdx, complete, complete));
        st.present[kWideIdx] = true;
        st.avail[kWideIdx] = wavail;
      }
    } else if (decision == SteerDecision::kHelperCr && cluster == kHelperIdx &&
               !result_narrow_actual) {
      if (t.is_load_op) {
        // CR load: the AGU add ran in the helper but the (wide) data is
        // delivered by the shared MOB straight into the wide register
        // file — the 8-bit RF cannot hold it.
        st.present = {true, false, false};
        st.avail = {complete, kTickNever, kTickNever};
        st.producer_cluster = kWideIdx;
      }
      // CR arithmetic: the low byte lives in the helper; the upper 24
      // bits stay in the tagged wide source register (Section 3.5), so a
      // wide consumer reconstructs the value through the ordinary demand
      // copy of the low byte. Nothing extra to do here.
    }

    // LR (Section 3.4): the MOB is shared, so 8-bit loads allocate a
    // register in *both* clusters and the load data is written to both
    // register files at writeback — no copy µop needed. This covers both
    // directions: a byte load whose address resolves in the wide cluster
    // feeding a narrow consumer, and a helper-executed byte load feeding
    // a wide consumer.
    if (lr_on_ && t.is_load_byte && cluster != kFpIdx) {
      const unsigned other = cluster == kHelperIdx ? kWideIdx : kHelperIdx;
      if (!st.present[other] && result_narrow_actual) {
        st.present[other] = true;
        st.avail[other] = complete + cfg_.copy_transfer_cycles * wt;
        ++res_.replicated_loads;
        res_.counters[other == kHelperIdx ? Counter::kRfWriteHelper : Counter::kRfWriteWide]++;
      }
    }

    // CP training-window bookkeeping + prefetch generation. The window only
    // feeds the copy predictor, which only the CP scheme consults.
    if (cp_on_) {
      CpTrainEntry& slot = cp_window_[cp_pos_];
      if (slot.valid) wpred_.train_copy(slot.pc, slot.copied || slot.prefetch_used);
      slot = CpTrainEntry{seq, rec.pc, false, false, true};
      maybe_copy_prefetch(t.dst, rec.pc, cluster, complete);
    }
  }
  if (t.writes_flags) {
    RegState& fl = (*regs_)[kRegFlags];
    fl.present = {false, false, false};
    fl.avail = {kTickNever, kTickNever, kTickNever};
    fl.present[cluster] = true;
    fl.avail[cluster] = complete;
    fl.value_narrow = true;  // condition codes are narrow by definition
    fl.pred_narrow = true;
    fl.known_at = complete;
    fl.producer_pc = rec.pc;
    fl.producer_seq = kSeqNone;  // flags don't participate in CP training
    fl.producer_cluster = cluster;
    fl.prefetched = false;
  }

  // ----- commit (in order, wide clock) -------------------------------------
  const Tick ctick = commit_slots_.reserve(std::max(complete, last_commit_));
  last_commit_ = std::max(last_commit_, ctick);
  rob_commit_[rob_pos_] = ctick;
  if (++rob_pos_ == cfg_.rob_entries) rob_pos_ = 0;
  if (++cp_pos_ == cp_window_.size()) cp_pos_ = 0;
  if (t.is_store_op) mob_.store_retired(seq);
  // Commit ticks are non-decreasing (each reserve is clamped to the last),
  // so the running final_tick is a plain store, not a max.
  res_.final_tick = ctick;
}

void Pipeline::bump_per_uop_counters(u64 n) {
  res_.counters[Counter::kFetched] += n;
  res_.counters[Counter::kWpredLookups] += n;
  res_.counters[Counter::kCommitted] += n;
  res_.uops += n;
}

void Pipeline::feed(const TraceRecord& rec) {
  const UopTemplate& t = lookup_template(rec.pc);
  u8 lanes = 0;
  for (unsigned k = 0; k < kMaxSrcs; ++k)
    lanes |= static_cast<u8>(is_narrow(rec.src_vals[k], width_bits_)) << k;
  feed_record(rec, t, is_narrow(rec.result, width_bits_), lanes);
  bump_per_uop_counters(1);
}

void Pipeline::feed(std::span<const TraceRecord> recs) {
  WidthLaneBlock lanes;
  bump_per_uop_counters(recs.size());
  while (!recs.empty()) {
    const std::size_t n = std::min(recs.size(), WidthLaneBlock::kRecords);
    const std::span<const TraceRecord> sub = recs.first(n);
    lanes.classify(sub, width_bits_);
    for (std::size_t i = 0; i < n; ++i)
      feed_record(sub[i], lookup_template(sub[i].pc), lanes.result_narrow(i),
                  lanes.src_mask(i));
    recs = recs.subspan(n);
  }
}

Pipeline::StatsCheckpoint Pipeline::checkpoint_stats() const {
  StatsCheckpoint cp;
  cp.res = res_;
  cp.dl0_hits = memsys_.dl0().hit_ratio().num;
  cp.dl0_accesses = memsys_.dl0().hit_ratio().den;
  cp.ul1_hits = memsys_.ul1().hit_ratio().num;
  cp.ul1_accesses = memsys_.ul1().hit_ratio().den;
  return cp;
}

SimResult Pipeline::finish() {
  const Tick wt = wide_ticks();
  train_cp_window(next_seq_);
  res_.cp_wasted = res_.copy_prefetches >= res_.cp_useful
                       ? res_.copy_prefetches - res_.cp_useful
                       : 0;
  res_.wide_cycles = static_cast<double>(res_.final_tick) / static_cast<double>(wt);
  res_.ipc = res_.wide_cycles > 0
                 ? static_cast<double>(res_.uops) / res_.wide_cycles
                 : 0.0;
  res_.dl0_hit_rate = memsys_.dl0().hit_ratio().value();
  res_.ul1_hit_rate = memsys_.ul1().hit_ratio().value();
  res_.counters[Counter::kDl0Accesses] = memsys_.dl0().accesses();
  res_.counters[Counter::kUl1Accesses] = memsys_.ul1().accesses();
  return res_;
}

SimResult Pipeline::run(TraceCursor& cursor) {
  for (std::span<const TraceRecord> chunk = cursor.next_chunk(); !chunk.empty();
       chunk = cursor.next_chunk()) {
    feed(chunk);
  }
  return finish();
}

SimResult simulate(const MachineConfig& cfg, const Trace& trace) {
  TraceVectorCursor cursor(trace);
  Pipeline p(cfg, trace.program);
  return p.run(cursor);
}

SimResult simulate(const MachineConfig& cfg, TraceCursor& cursor) {
  Pipeline p(cfg, cursor.program());
  return p.run(cursor);
}

}  // namespace hcsim
