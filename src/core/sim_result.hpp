// hcsim — results of one simulation run; every figure/table in the paper is
// derived from these fields.
//
// NOTE: the windowed-sampling splice (src/sample/windowed.cpp) subtracts and
// accumulates every *integer* field of this struct field-by-field; when
// adding a field here, extend measured_delta()/accumulate() there or sampled
// runs will silently drop it.
#pragma once

#include <string>

#include "core/counters.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace hcsim {

struct SimResult {
  std::string workload;
  std::string config;

  // --- time ------------------------------------------------------------
  u64 uops = 0;          // committed trace µops (excludes copies/chunks)
  Tick final_tick = 0;   // commit tick of the last µop
  double wide_cycles = 0.0;
  double ipc = 0.0;      // committed µops per wide cycle

  // --- steering (Figures 6/7/8/9/12, Section 3.7) -----------------------
  u64 to_wide = 0;
  u64 to_helper = 0;        // µops executed in the helper (incl. CR + BR)
  u64 br_steered = 0;       // branches steered by the BR rule
  u64 cr_steered = 0;       // µops steered via the carry-confined path
  u64 split_uops = 0;       // original µops split by IR
  u64 chunk_uops = 0;       // 8-bit chunks created by IR
  u64 replicated_loads = 0; // LR wide-RF replicas

  // --- copies ------------------------------------------------------------
  u64 copies = 0;           // total copy µops (demand + prefetch + IR backs)
  u64 copies_w2n = 0;
  u64 copies_n2w = 0;
  u64 copy_prefetches = 0;  // CP-generated
  u64 cp_useful = 0;        // prefetched and later consumed
  u64 cp_wasted = 0;        // prefetched, never consumed
  Histogram copy_wait{64};  // consumer stall ticks on demand copies

  // --- width prediction (Figure 5) ---------------------------------------
  u64 wp_correct = 0;
  u64 wp_nonfatal = 0;  // mispredicted, but the µop went wide: no recovery
  u64 wp_fatal = 0;     // mispredicted in the helper: flush + resteer
  u64 cr_violations = 0;

  // --- branches -----------------------------------------------------------
  u64 branches = 0;
  u64 branch_mispredicts = 0;

  // --- imbalance (Section 3.7) --------------------------------------------
  /// NREADY events: cycles a ready µop could not issue in its own cluster
  /// while the other cluster had a free slot it could have used.
  u64 nready_w2n = 0;
  u64 nready_n2w = 0;

  // --- memory ---------------------------------------------------------------
  double dl0_hit_rate = 0.0;
  double ul1_hit_rate = 0.0;

  // --- misc event counts (power model input) --------------------------------
  // Enum-indexed on the hot path; string lookups and the CounterBag bridge
  // (counters.to_bag()) remain available for reporting consumers.
  CounterArray counters;

  // --- derived -----------------------------------------------------------
  double helper_frac() const {
    return uops ? static_cast<double>(to_helper) / static_cast<double>(uops) : 0.0;
  }
  double copy_frac() const {
    return uops ? static_cast<double>(copies) / static_cast<double>(uops) : 0.0;
  }
  double wp_accuracy() const {
    const u64 tot = wp_correct + wp_nonfatal + wp_fatal;
    return tot ? static_cast<double>(wp_correct) / static_cast<double>(tot) : 0.0;
  }
  double fatal_rate() const {
    const u64 tot = wp_correct + wp_nonfatal + wp_fatal;
    return tot ? static_cast<double>(wp_fatal) / static_cast<double>(tot) : 0.0;
  }
  double nready_w2n_pct() const {
    return uops ? 100.0 * static_cast<double>(nready_w2n) / static_cast<double>(uops) : 0.0;
  }
  double nready_n2w_pct() const {
    return uops ? 100.0 * static_cast<double>(nready_n2w) / static_cast<double>(uops) : 0.0;
  }
  /// Speedup of this run relative to a baseline run of the same trace.
  double speedup_vs(const SimResult& baseline) const {
    return final_tick ? static_cast<double>(baseline.final_tick) / static_cast<double>(final_tick)
                      : 0.0;
  }
};

}  // namespace hcsim
