// hcsim — per-cluster epoch engine: the fused cluster resource model.
//
// The pipeline used to probe three separate structures per dynamic µop and
// cluster — a SlotSchedule for issue slots, a QueueTracker for issue-queue
// occupancy, and a second SlotSchedule for copy ports — each behind its own
// heap allocation, each re-deriving the tick→cycle conversion, and each
// paying its own drain/GC bookkeeping per probe. ClusterEpoch fuses all
// three into one cluster-local engine that processes time as a sequence of
// cycle *epochs*:
//
//   * Issue slots keep the ring-of-per-cycle-counts representation, but the
//     steady-state window slide (one cycle of GC per frontier advance) is
//     open-coded in the reserve fast path instead of a call.
//   * Queue occupancy is ledgered per *cycle bucket* (every departure tick
//     is cycle-aligned — it comes from an issue-slot reservation), not per
//     tick: half the ring traffic at the wide clock. Two epoch cursors —
//     `qdrained_` (buckets below are retired) and `qnext_` (earliest
//     occupied bucket) — make the per-µop drain a pair of compares; bucket
//     scans happen once per epoch advance, not once per probe.
//   * dispatch() fuses the earliest_dispatch → reserve → add triple into a
//     single call so the whole per-µop resource interaction touches one
//     object whose hot header shares a cache line.
//
// Semantics are tick-exact with the legacy pair by construction — the same
// window length, the same GC-horizon truncation, the same queue-full walk
// with the same (answer, slack) amortization, the same "already departed"
// add guard — and enforced by the differential fuzz in
// tests/test_cluster_epoch.cpp plus the golden sweeps run with the engine
// on and off (the HCSIM_EPOCH=0 kill switch selects the legacy structures).
#pragma once

#include <bit>
#include <vector>

#include "util/log.hpp"
#include "util/slot_schedule.hpp"
#include "util/types.hpp"

namespace hcsim {

/// Resolve the HCSIM_EPOCH environment default (unset/non-zero = enabled),
/// unless overridden by epoch_set_enabled. Read once per Pipeline.
bool epoch_enabled_default();
/// Test/debug override; trumps the environment until epoch_reset_enabled.
void epoch_set_enabled(bool on);
void epoch_reset_enabled();

class ClusterEpoch {
 public:
  /// An engine with no storage; init() before use. (Pipeline embeds one per
  /// backend by value and only materializes them when the engine is on.)
  ClusterEpoch() = default;

  /// `copy_ports` == 0 means the cluster schedules no copies (FP).
  void init(unsigned issue_width, unsigned queue_size, unsigned copy_ports,
            Tick cycle_ticks);

  /// Fused per-µop resource interaction, equivalent to the legacy sequence
  ///   qdisp = queue.earliest_dispatch(from);
  ///   ready = max(src_ready, qdisp);
  ///   issue = slots.reserve(ready);
  ///   queue.add(issue);
  struct Dispatched {
    Tick qdisp;  // earliest tick the queue admits an entry (>= from)
    Tick ready;  // max(src_ready, qdisp)
    Tick issue;  // start of the cycle the µop issues in
  };
  Dispatched dispatch(Tick from, Tick src_ready) {
    const Tick qdisp = earliest_dispatch(from);
    const Tick ready = src_ready > qdisp ? src_ready : qdisp;
    const Tick issue = reserve_ring(issue_, ready);
    queue_add(issue);
    return {qdisp, ready, issue};
  }

  /// Earliest tick >= `t` at which the issue queue has a free entry. Pure
  /// query apart from the lazy drain (exactly QueueTracker semantics).
  ///
  /// The drain is deferred past laziness: `live_` is allowed to go stale
  /// *high* (departed entries still counted), because the answer is `t`
  /// whenever even the stale count is below capacity — the true occupancy
  /// can only be lower. Only when the stale count reaches capacity does the
  /// bucket walk run (catch_up), so the non-saturated common case is one
  /// compare. head_tick_ still advances eagerly: it gates queue_add's
  /// already-departed drop, which must match the reference model exactly.
  Tick earliest_dispatch(Tick t) {
    if (t + 1 > head_tick_) head_tick_ = t + 1;
    if (live_ < size_) [[likely]] return t;
    catch_up();
    if (live_ < size_) return t;
    return earliest_dispatch_full();
  }

  /// Record a dispatched µop departing the queue at `issue` (cycle-aligned
  /// — it comes from an issue-slot reservation).
  void queue_add(Tick issue) {
    // Same guard as QueueTracker::add — an entry departing at or below the
    // drain head already "left" the queue.
    if (issue < head_tick_) [[unlikely]] return;
    const u64 c = to_cycle(issue);
    if (c - qdrained_ > qmask_) [[unlikely]] grow_queue(c);
    const u64 pos = c & qmask_;
    if (qring_[pos]++ == 0) qocc_[pos >> 6] |= u64{1} << (pos & 63);
    ++live_;
    qtail_ = c >= qtail_ ? c + 1 : qtail_;
    qnext_ = c < qnext_ ? c : qnext_;
    full_slack_ -= c > full_at_cycle_;
  }

  /// Queue occupancy as seen at tick `t` (after the lazy drain). Unlike
  /// earliest_dispatch this needs the exact count, so it always catches up.
  unsigned occupancy(Tick t) {
    if (t + 1 > head_tick_) head_tick_ = t + 1;
    catch_up();
    return static_cast<unsigned>(live_);
  }

  /// Reserve a copy port: identical to SlotSchedule::reserve on the copy
  /// ring. Only valid when constructed with copy_ports > 0.
  Tick reserve_copy(Tick ready) { return reserve_ring(copy_, ready); }

  /// NREADY range probe over the *issue* slots: identical semantics
  /// (including the GC-horizon truncation) to SlotSchedule::free_slot_in.
  SlotRangeProbe free_issue_slot_in(Tick from, Tick until) const;

  unsigned queue_size() const { return size_; }
  u64 issue_reservations() const { return issue_.reservations; }

 private:
  /// Sliding-window length of a slot ring in cycles; must match
  /// SlotSchedule::kWindowCycles so GC-horizon truncation is identical.
  static constexpr u64 kWindowCycles = kSlotWindowCycles;
  static constexpr u64 kMask = kWindowCycles - 1;
  /// Initial queue-ledger span in cycle buckets (power of two, multiple of
  /// 64); grows by doubling. Departures spread over at most a main-memory
  /// round trip, so 16k cycles is generous.
  static constexpr u64 kInitialQueueCycles = u64{1} << 14;
  /// "No occupied bucket" sentinel; compares greater than any real cycle.
  static constexpr u64 kNoCycle = ~u64{0};

  /// Issue-slot / copy-port ledger: ring of per-cycle reservation counts
  /// with a full-cycle bitmap, exactly SlotSchedule's representation.
  struct SlotRing {
    std::vector<u8> used;   // per-cycle reservation counts (ring)
    std::vector<u64> full;  // bitmap: cycle saturated (used == width)
    u64 base = 0;           // GC horizon: lowest cycle still tracked
    u64 frontier = 0;       // highest cycle ever reserved
    u64 reservations = 0;
    unsigned width = 0;
  };

  u64 to_cycle(Tick t) const { return pow2_ ? (t >> shift_) : (t / cycle_ticks_); }
  Tick from_cycle(u64 c) const { return pow2_ ? (c << shift_) : (c * cycle_ticks_); }

  /// SlotSchedule::reserve, open-coded: next-cycle fast path, bitmap scan
  /// fallback, and the steady-state single-cycle window slide inline.
  Tick reserve_ring(SlotRing& r, Tick earliest) {
    u64 cycle = to_cycle(earliest);
    if (cycle < r.base) cycle = r.base;
    if (cycle <= r.frontier && r.used[cycle & kMask] >= r.width) {
      const u64 nxt = cycle + 1;
      if (nxt > r.frontier || r.used[nxt & kMask] < r.width)
        cycle = nxt;
      else
        cycle = first_nonfull(r, nxt);
    }
    if (cycle >= r.base + kWindowCycles) [[unlikely]] {
      // In steady state the frontier advances one cycle at a time, so the
      // window slides by one: open-code that step, fall back for jumps.
      if (cycle == r.base + kWindowCycles) {
        r.used[r.base & kMask] = 0;
        r.full[(r.base & kMask) >> 6] &= ~(u64{1} << (r.base & 63));
        ++r.base;
      } else {
        gc_ring(r, cycle - kWindowCycles + 1);
      }
    }
    u8& used = r.used[cycle & kMask];
    ++used;
    if (used == r.width) r.full[(cycle & kMask) >> 6] |= u64{1} << (cycle & 63);
    if (cycle > r.frontier) r.frontier = cycle;
    ++r.reservations;
    return from_cycle(cycle);
  }

  /// Retire every queue entry departing below head_tick_ (the deferred
  /// drain). Requires head_tick_ > 0 — both callers bump it first. Buckets
  /// are only walked when the drain cursor actually crosses occupied cycles.
  void catch_up() {
    const u64 tc = to_cycle(head_tick_ - 1) + 1;  // retire cycles < tc
    if (tc <= qdrained_) return;
    if (tc <= qnext_) {  // nothing occupied below the target epoch
      qdrained_ = tc;
      return;
    }
    drain_cycles(tc);
  }

  void drain_cycles(u64 target_cycle);
  Tick earliest_dispatch_full() const;  // the queue-full walk
  void grow_queue(u64 cycle);
  /// First occupied bucket cycle >= `from`; kNoCycle if none below qtail_.
  u64 next_occupied(u64 from) const;
  u64 first_nonfull(const SlotRing& r, u64 cycle) const;
  void gc_ring(SlotRing& r, u64 new_base);

  // --- hot header (shared by every per-µop probe) -------------------------
  Tick cycle_ticks_ = 1;
  bool pow2_ = true;
  unsigned shift_ = 0;
  unsigned size_ = 0;      // queue capacity
  u64 live_ = 0;           // entries currently in the queue
  u64 qdrained_ = 0;       // buckets with cycle < qdrained_ are retired
  u64 qnext_ = kNoCycle;   // earliest occupied bucket cycle
  Tick head_tick_ = 0;     // every departure tick < head_tick_ is drained
  u64 qtail_ = 0;          // one past the largest occupied bucket cycle
  u64 qmask_ = 0;

  // Queue-full answer cache, exactly QueueTracker's (full_at_, full_slack_)
  // amortization in the cycle domain. Mutable: invisible to query results.
  mutable u64 full_at_cycle_ = 0;
  mutable i64 full_slack_ = -1;

  std::vector<u32> qring_;  // per-cycle-bucket departure counts
  std::vector<u64> qocc_;   // bitmap: bucket non-empty

  SlotRing issue_;
  SlotRing copy_;
};

}  // namespace hcsim
