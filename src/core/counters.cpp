#include "core/counters.hpp"

#include "util/log.hpp"

namespace hcsim {

namespace {

/// Parallel to enum class Counter (counters.hpp) — same order.
constexpr std::string_view kCounterNames[kNumCounters] = {
    "bb_cache_hits",
    "bb_cache_invalidations",
    "bb_cache_misses",
    "block_splits",
    "chunk_rename_slots",
    "committed",
    "copy_rename_slots",
    "dl0_accesses",
    "fetched",
    "flush_refills",
    "issue_fp",
    "issue_helper",
    "issue_wide",
    "load_accesses",
    "mob_forwards",
    "nready_truncations",
    "rf_write_helper",
    "rf_write_wide",
    "stall_commit",
    "stall_fetch",
    "stall_issue",
    "stall_queue",
    "stall_rename",
    "store_accesses",
    "ul1_accesses",
    "wpred_lookups",
};

}  // namespace

std::string_view counter_name(Counter c) {
  HCSIM_CHECK(c < Counter::kCount, "counter_name: out of range");
  return kCounterNames[static_cast<std::size_t>(c)];
}

Counter counter_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumCounters; ++i)
    if (kCounterNames[i] == name) return static_cast<Counter>(i);
  return Counter::kCount;
}

u64 CounterArray::get(std::string_view name) const {
  const Counter c = counter_from_name(name);
  return c == Counter::kCount ? 0 : get(c);
}

u64& CounterArray::operator[](std::string_view name) {
  const Counter c = counter_from_name(name);
  HCSIM_CHECK(c != Counter::kCount, "unknown counter name");
  return (*this)[c];
}

CounterBag CounterArray::to_bag() const {
  CounterBag bag;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const std::string name(kCounterNames[i]);
    bag[name] = v_[i];
  }
  return bag;
}

}  // namespace hcsim
