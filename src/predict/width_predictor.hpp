// hcsim — data-width predictor (paper Section 3.2, Figure 4) with the CR
// carry bit (Section 3.5) and the CP copy bit (Section 3.6).
//
// A simple table-based *tagless* scheme indexed by the µop PC. Each entry
// stores:
//   * 1 bit — the width of the last result this static µop generated,
//   * a 2-bit confidence counter — only high-confidence narrow predictions
//     may steer a µop to the helper cluster (this is what reduced fatal
//     mispredictions from 2.11% to 0.83% in the paper),
//   * 1 bit + 2-bit confidence — whether the last occurrence operated with
//     only 8 bits, i.e. its carry stayed confined (the CR scheme),
//   * 1 bit — whether the last occurrence incurred an inter-cluster copy
//     (the CP last-value copy predictor).
#pragma once

#include <vector>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace hcsim {

struct WidthPredictorConfig {
  u32 entries = 256;          // paper: 256 entries is the chosen design point
  bool use_confidence = true; // 2-bit confidence estimator (Section 3.2)
  u8 confidence_threshold = 3;
};

class WidthPredictor {
 public:
  explicit WidthPredictor(const WidthPredictorConfig& cfg = {});

  struct Prediction {
    bool narrow = false;     // predicted result width
    bool confident = false;  // high-confidence (eligible for narrow steering)
  };

  // Lookups and training run once (or more) per dynamic µop — all defined
  // inline below; the table is 256 entries of a few bytes, L1-resident.

  /// Predict the width of the result a static µop will produce.
  Prediction predict_result(u32 pc) const {
    const Entry& e = table_[index(pc)];
    const bool confident = !cfg_.use_confidence || e.conf >= cfg_.confidence_threshold;
    return Prediction{e.last_narrow, confident};
  }

  /// Predict whether an 8+32->32 µop's carry will stay confined (CR).
  Prediction predict_carry(u32 pc) const {
    const Entry& e = table_[index(pc)];
    const bool confident =
        !cfg_.use_confidence || e.carry_conf >= cfg_.confidence_threshold;
    return Prediction{e.carry_confined, confident};
  }

  /// Predict whether this producer will incur an inter-cluster copy (CP).
  bool predict_copy(u32 pc) const { return table_[index(pc)].copy_likely; }

  /// Writeback-time training.
  void train_result(u32 pc, bool was_narrow) {
    Entry& e = table_[index(pc)];
    result_acc_.add(e.last_narrow == was_narrow);
    if (e.last_narrow == was_narrow) {
      if (e.conf < 3) ++e.conf;
    } else {
      e.last_narrow = was_narrow;
      e.conf = 0;
    }
  }

  void train_carry(u32 pc, bool was_confined) {
    Entry& e = table_[index(pc)];
    carry_acc_.add(e.carry_confined == was_confined);
    if (e.carry_confined == was_confined) {
      if (e.carry_conf < 3) ++e.carry_conf;
    } else {
      e.carry_confined = was_confined;
      e.carry_conf = 0;
    }
  }

  void train_copy(u32 pc, bool generated_copy) {
    Entry& e = table_[index(pc)];
    copy_acc_.add(e.copy_likely == generated_copy);
    e.copy_likely = generated_copy;
  }

  /// Training-accuracy ratios (used by Figure 5 and the CP accuracy claim).
  const Ratio& result_accuracy() const { return result_acc_; }
  const Ratio& carry_accuracy() const { return carry_acc_; }
  const Ratio& copy_accuracy() const { return copy_acc_; }

  const WidthPredictorConfig& config() const { return cfg_; }

 private:
  struct Entry {
    bool last_narrow = false;  // initialized wide: safe default
    u8 conf = 0;
    bool carry_confined = false;
    u8 carry_conf = 0;
    bool copy_likely = false;
  };

  u32 index(u32 pc) const { return pc & mask_; }

  WidthPredictorConfig cfg_;
  u32 mask_;
  std::vector<Entry> table_;
  Ratio result_acc_;
  Ratio carry_acc_;
  Ratio copy_acc_;
};

}  // namespace hcsim
