#include "predict/width_predictor.hpp"

#include <bit>

#include "util/log.hpp"

namespace hcsim {

WidthPredictor::WidthPredictor(const WidthPredictorConfig& cfg) : cfg_(cfg) {
  HCSIM_CHECK(cfg_.entries > 0 && std::has_single_bit(cfg_.entries),
              "width predictor table size must be a power of two");
  mask_ = cfg_.entries - 1;
  table_.assign(cfg_.entries, Entry{});
}

}  // namespace hcsim
