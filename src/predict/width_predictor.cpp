#include "predict/width_predictor.hpp"

#include <bit>

#include "util/log.hpp"

namespace hcsim {

WidthPredictor::WidthPredictor(const WidthPredictorConfig& cfg) : cfg_(cfg) {
  HCSIM_CHECK(cfg_.entries > 0 && std::has_single_bit(cfg_.entries),
              "width predictor table size must be a power of two");
  mask_ = cfg_.entries - 1;
  table_.assign(cfg_.entries, Entry{});
}

WidthPredictor::Prediction WidthPredictor::predict_result(u32 pc) const {
  const Entry& e = table_[index(pc)];
  const bool confident = !cfg_.use_confidence || e.conf >= cfg_.confidence_threshold;
  return Prediction{e.last_narrow, confident};
}

WidthPredictor::Prediction WidthPredictor::predict_carry(u32 pc) const {
  const Entry& e = table_[index(pc)];
  const bool confident = !cfg_.use_confidence || e.carry_conf >= cfg_.confidence_threshold;
  return Prediction{e.carry_confined, confident};
}

bool WidthPredictor::predict_copy(u32 pc) const { return table_[index(pc)].copy_likely; }

void WidthPredictor::train_result(u32 pc, bool was_narrow) {
  Entry& e = table_[index(pc)];
  result_acc_.add(e.last_narrow == was_narrow);
  if (e.last_narrow == was_narrow) {
    if (e.conf < 3) ++e.conf;
  } else {
    e.last_narrow = was_narrow;
    e.conf = 0;
  }
}

void WidthPredictor::train_carry(u32 pc, bool was_confined) {
  Entry& e = table_[index(pc)];
  carry_acc_.add(e.carry_confined == was_confined);
  if (e.carry_confined == was_confined) {
    if (e.carry_conf < 3) ++e.carry_conf;
  } else {
    e.carry_confined = was_confined;
    e.carry_conf = 0;
  }
}

void WidthPredictor::train_copy(u32 pc, bool generated_copy) {
  Entry& e = table_[index(pc)];
  copy_acc_.add(e.copy_likely == generated_copy);
  e.copy_likely = generated_copy;
}

}  // namespace hcsim
