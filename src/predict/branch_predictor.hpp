// hcsim — gshare conditional branch predictor.
//
// The paper's trace-driven methodology resolves branch *targets* from the
// trace; the direction predictor determines when the frontend fetches down
// the wrong path and pays a flush penalty. A standard gshare keeps the
// baseline pipeline honest without introducing steering-specific effects.
#pragma once

#include <vector>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace hcsim {

struct BranchPredictorConfig {
  u32 entries = 4096;      // 2-bit counters
  u32 history_bits = 12;
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& cfg = {});

  // Once per conditional branch on the per-µop hot path: inline.
  bool predict(u32 pc) const { return counters_[index(pc)] >= 2; }

  void update(u32 pc, bool taken) {
    u8& c = counters_[index(pc)];
    acc_.add((c >= 2) == taken);
    if (taken && c < 3) ++c;
    if (!taken && c > 0) --c;
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
  }

  const Ratio& accuracy() const { return acc_; }

 private:
  u32 index(u32 pc) const { return (pc ^ history_) & mask_; }

  BranchPredictorConfig cfg_;
  u32 mask_;
  u32 history_mask_;
  u32 history_ = 0;
  std::vector<u8> counters_;  // 2-bit saturating, init weakly-not-taken
  Ratio acc_;
};

}  // namespace hcsim
