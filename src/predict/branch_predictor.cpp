#include "predict/branch_predictor.hpp"

#include <bit>

#include "util/log.hpp"

namespace hcsim {

BranchPredictor::BranchPredictor(const BranchPredictorConfig& cfg) : cfg_(cfg) {
  HCSIM_CHECK(cfg_.entries > 0 && std::has_single_bit(cfg_.entries),
              "branch predictor table size must be a power of two");
  mask_ = cfg_.entries - 1;
  history_mask_ = (cfg_.history_bits >= 32) ? ~0u : ((1u << cfg_.history_bits) - 1u);
  counters_.assign(cfg_.entries, 1);  // weakly not-taken
}

}  // namespace hcsim
