#include "svc/service.hpp"

#include <chrono>
#include <thread>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "rv/kernels.hpp"
#include "sample/spec.hpp"

namespace hcsim::svc {

SweepService::SweepService(unsigned threads)
    : pool_(threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                         : threads) {}

bool SweepService::run(const SweepRequest& req,
                       const std::function<bool()>& cancelled, SweepResponse& resp,
                       std::string& error) {
  if (req.version != kProtocolVersion) {
    error = "unsupported protocol version " + std::to_string(req.version);
    return false;
  }
  auto spec = exp::find_sweep(req.sweep);
  if (!spec) {
    error = "unknown sweep '" + req.sweep + "'";
    return false;
  }
  if (req.trace_len != 0) spec->trace_lens = {req.trace_len};
  if (!req.seeds.empty()) {
    for (u64 s : req.seeds)
      if (s == 0) {
        error = "seed 0 is not a valid explicit seed";
        return false;
      }
    spec->seeds = req.seeds;
  }

  // Assemble the sample spec with the same non-fatal checks SampleSpec::
  // validate() enforces fatally — a malformed request must not abort hcsimd.
  sample::SampleSpec sample_spec;
  if (req.sampled) {
    sample_spec.warmup = req.warmup != 0 ? req.warmup : sample::kDefaultWarmup;
    sample_spec.measure = req.measure != 0 ? req.measure : sample::kDefaultMeasure;
    sample_spec.period = req.period;
    sample_spec.max_windows = req.max_windows;
    if (sample_spec.period != 0 &&
        sample_spec.period < sample_spec.warmup + sample_spec.measure) {
      error = "sample period smaller than warmup + measure";
      return false;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  exp::SweepResult result;
  {
    std::lock_guard<std::mutex> job(job_mu_);
    sample::set_active_sample_spec(sample_spec);
    exp::RunOptions opts;
    opts.pool = &pool_;
    opts.cancelled = cancelled;
    result = exp::run_sweep(*spec, opts);
    sample::set_active_sample_spec(sample::SampleSpec{});
  }
  if (result.cancelled) {
    error = "cancelled";
    return false;
  }

  resp.summary = exp::render_summary(result);
  if (req.want_csv) resp.csv = exp::to_csv(result);
  if (req.want_json) resp.json = exp::to_json(result);
  resp.n_points = result.points.size();
  resp.threads_used = result.threads_used;
  resp.wall_ms = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return true;
}

bool resolve_workload(const std::string& name, WorkloadProfile& out,
                      std::string& error) {
  if (name.rfind("rv:", 0) == 0) {
    const std::string kernel = name.substr(3);
    if (!rv::find_kernel(kernel)) {
      error = "unknown rv kernel '" + kernel + "'";
      return false;
    }
    out = rv::rv_workload_profile(kernel);
    return true;
  }
  for (const WorkloadProfile& p : spec_int_2000_profiles()) {
    if (p.name == name) {
      out = p;
      return true;
    }
  }
  error = "unknown workload '" + name + "' (use \"rv:<kernel>\" or a SPEC name)";
  return false;
}

}  // namespace hcsim::svc
