#include "svc/service.hpp"

#include <sys/stat.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <thread>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "rv/kernels.hpp"
#include "sample/spec.hpp"
#include "sim/simulator.hpp"
#include "util/faultpoint.hpp"

namespace hcsim::svc {

SweepService::SweepService(unsigned threads, const std::string& journal_dir)
    : pool_(threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                         : threads) {
  if (journal_dir.empty()) return;
  ::mkdir(journal_dir.c_str(), 0755);  // single level; EEXIST is fine
  if (!journal_.open(journal_dir + "/daemon.journal"))
    journal_error_ = journal_.error();
}

bool SweepService::run(const SweepRequest& req,
                       const std::function<bool()>& cancelled, SweepResponse& resp,
                       std::string& error) {
  if (req.version != kProtocolVersion) {
    error = "unsupported protocol version " + std::to_string(req.version);
    return false;
  }
  auto spec = exp::find_sweep(req.sweep);
  if (!spec) {
    error = "unknown sweep '" + req.sweep + "'";
    return false;
  }
  if (req.trace_len != 0) spec->trace_lens = {req.trace_len};
  if (!req.seeds.empty()) {
    for (u64 s : req.seeds)
      if (s == 0) {
        error = "seed 0 is not a valid explicit seed";
        return false;
      }
    spec->seeds = req.seeds;
  }

  // Assemble the sample spec with the same non-fatal checks SampleSpec::
  // validate() enforces fatally — a malformed request must not abort hcsimd.
  sample::SampleSpec sample_spec;
  if (req.sampled) {
    sample_spec.warmup = req.warmup != 0 ? req.warmup : sample::kDefaultWarmup;
    sample_spec.measure = req.measure != 0 ? req.measure : sample::kDefaultMeasure;
    sample_spec.period = req.period;
    sample_spec.max_windows = req.max_windows;
    if (sample_spec.period != 0 &&
        sample_spec.period < sample_spec.warmup + sample_spec.measure) {
      error = "sample period smaller than warmup + measure";
      return false;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  exp::SweepResult result;
  {
    std::lock_guard<std::mutex> job(job_mu_);
    sample::set_active_sample_spec(sample_spec);
    exp::RunOptions opts;
    opts.pool = &pool_;
    opts.cancelled = cancelled;
    result = exp::run_sweep(*spec, opts);
    sample::set_active_sample_spec(sample::SampleSpec{});
  }
  if (result.cancelled) {
    error = "cancelled";
    return false;
  }

  resp.summary = exp::render_summary(result);
  if (req.want_csv) resp.csv = exp::to_csv(result);
  if (req.want_json) resp.json = exp::to_json(result);
  resp.n_points = result.points.size();
  resp.threads_used = result.threads_used;
  resp.wall_ms = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return true;
}

bool SweepService::run_jobs(const std::vector<JobRequest>& reqs,
                            const std::function<bool()>& cancelled,
                            const std::function<bool(const JobResponse&)>& on_result,
                            BatchOutcome& outcome, std::string& error) {
  outcome = BatchOutcome{};
  if (reqs.empty()) return true;

  const JobRequest& first = reqs.front();
  for (const JobRequest& req : reqs) {
    if (req.version != kProtocolVersion) {
      error = "unsupported protocol version " + std::to_string(req.version);
      return false;
    }
    if (req.n_records == 0) {
      error = "job with n_records 0";
      return false;
    }
    // The active sample spec is process-global, so one batch = one spec.
    if (req.sampled != first.sampled || req.warmup != first.warmup ||
        req.measure != first.measure || req.period != first.period ||
        req.max_windows != first.max_windows) {
      error = "mixed sample specs in one job batch";
      return false;
    }
  }

  sample::SampleSpec sample_spec;
  if (first.sampled) {
    sample_spec.warmup = first.warmup != 0 ? first.warmup : sample::kDefaultWarmup;
    sample_spec.measure = first.measure != 0 ? first.measure : sample::kDefaultMeasure;
    sample_spec.period = first.period;
    sample_spec.max_windows = first.max_windows;
    if (sample_spec.period != 0 &&
        sample_spec.period < sample_spec.warmup + sample_spec.measure) {
      error = "sample period smaller than warmup + measure";
      return false;
    }
  }

  std::lock_guard<std::mutex> job(job_mu_);
  sample::set_active_sample_spec(sample_spec);

  // Per-batch latch (the pool is shared); `mu` also serializes on_result and
  // the outcome counters.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t left = reqs.size();
  bool stream_ok = true;
  bool batch_cancelled = false;

  for (const JobRequest& req : reqs) {
    pool_.submit([&, &req = req] {
      if (cancelled && cancelled()) {
        std::lock_guard<std::mutex> lock(mu);
        batch_cancelled = true;
        if (--left == 0) cv.notify_all();
        return;
      }
      JobResponse resp;
      resp.job_id = job_id(req);
      const bool journaled = journal_.lookup(resp.job_id, resp.result);
      resp.from_journal = journaled;
      if (!journaled) {
        // The crash the journal exists to survive: abort() between jobs, at
        // a deterministic index, with everything before it already durable.
        if (fault::enabled() && fault::fire("job.abort")) std::abort();
        resp.result = simulate_workload(req.config, req.profile, req.n_records);
        journal_.append(resp.job_id, resp.result);
      }
      std::lock_guard<std::mutex> lock(mu);
      // A dead stream stops sending but NOT simulating: the remainder keeps
      // landing in the journal, so the client's re-submission after
      // reconnect is served as pure journal hits.
      if (stream_ok) {
        if (on_result(resp)) {
          ++outcome.completed;
          if (resp.from_journal) ++outcome.journal_hits;
        } else {
          stream_ok = false;
        }
      }
      if (--left == 0) cv.notify_all();
    });
  }

  bool ok;
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&left] { return left == 0; });
    ok = stream_ok && !batch_cancelled;
    outcome.stream_lost = !stream_ok;
    if (batch_cancelled) error = "cancelled";
    else if (!stream_ok) error = "client connection lost mid-batch";
  }
  sample::set_active_sample_spec(sample::SampleSpec{});
  return ok;
}

bool resolve_workload(const std::string& name, WorkloadProfile& out,
                      std::string& error) {
  if (name.rfind("rv:", 0) == 0) {
    const std::string kernel = name.substr(3);
    if (!rv::find_kernel(kernel)) {
      error = "unknown rv kernel '" + kernel + "'";
      return false;
    }
    out = rv::rv_workload_profile(kernel);
    return true;
  }
  for (const WorkloadProfile& p : spec_int_2000_profiles()) {
    if (p.name == name) {
      out = p;
      return true;
    }
  }
  error = "unknown workload '" + name + "' (use \"rv:<kernel>\" or a SPEC name)";
  return false;
}

}  // namespace hcsim::svc
