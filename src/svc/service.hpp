// hcsim — the sweep engine behind hcsimd.
//
// One SweepService lives for the daemon's lifetime: it owns the process-wide
// exp::ThreadPool every job runs on, and serializes jobs (one sweep at a
// time, parallel *within* the sweep). Serialization is not a convenience —
// the active sample spec and the cached-trace store are process-global, so
// two concurrent sweeps with different sampling schedules would race. The
// payoff of the persistent process is exactly those globals staying warm:
// a repeated (workload, seed, len) cell reuses the cached trace instead of
// regenerating it.
#pragma once

#include <functional>
#include <mutex>
#include <string>

#include "exp/runner.hpp"
#include "svc/protocol.hpp"

namespace hcsim::svc {

class SweepService {
 public:
  /// `threads` sizes the shared pool; 0 = hardware concurrency.
  explicit SweepService(unsigned threads);

  /// Validate and run one request. `cancelled` is polled between points;
  /// a cancelled run returns false with error "cancelled". Returns false
  /// with a diagnostic for unknown sweeps, bad versions, or inconsistent
  /// sampling parameters — never aborts on request content.
  bool run(const SweepRequest& req, const std::function<bool()>& cancelled,
           SweepResponse& resp, std::string& error);

  exp::ThreadPool& pool() { return pool_; }

 private:
  exp::ThreadPool pool_;
  std::mutex job_mu_;  // one sweep at a time (global sample spec + cache)
};

/// Resolve a ServeTraceRequest workload: "rv:<kernel>" or a SPEC profile
/// name. Returns false with a diagnostic on unknown names.
bool resolve_workload(const std::string& name, WorkloadProfile& out,
                      std::string& error);

}  // namespace hcsim::svc
