// hcsim — the sweep engine behind hcsimd.
//
// One SweepService lives for the daemon's lifetime: it owns the process-wide
// exp::ThreadPool every job runs on, and serializes jobs (one sweep at a
// time, parallel *within* the sweep). Serialization is not a convenience —
// the active sample spec and the cached-trace store are process-global, so
// two concurrent sweeps with different sampling schedules would race. The
// payoff of the persistent process is exactly those globals staying warm:
// a repeated (workload, seed, len) cell reuses the cached trace instead of
// regenerating it.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "svc/journal.hpp"
#include "svc/protocol.hpp"

namespace hcsim::svc {

class SweepService {
 public:
  /// `threads` sizes the shared pool; 0 = hardware concurrency. A non-empty
  /// `journal_dir` persists every completed job to
  /// `<journal_dir>/daemon.journal` and recovers completed results on
  /// construction — journal_error() reports an unusable journal (the
  /// service still runs, just without durability).
  explicit SweepService(unsigned threads, const std::string& journal_dir = "");

  /// Validate and run one request. `cancelled` is polled between points;
  /// a cancelled run returns false with error "cancelled". Returns false
  /// with a diagnostic for unknown sweeps, bad versions, or inconsistent
  /// sampling parameters — never aborts on request content.
  bool run(const SweepRequest& req, const std::function<bool()>& cancelled,
           SweepResponse& resp, std::string& error);

  /// How one kRunJobs batch went.
  struct BatchOutcome {
    u64 completed = 0;
    u64 journal_hits = 0;  // jobs served from the journal, not recomputed
    /// The result stream died mid-batch (on_result returned false) — a
    /// transport failure the caller must not answer as a semantic error.
    bool stream_lost = false;
  };

  /// Run a batch of self-contained jobs on the pool. Journaled jobs are
  /// served from the journal (from_journal set); fresh results are appended
  /// to it before `on_result` streams them out. `on_result` is called from
  /// pool workers but serialized (never concurrently); returning false
  /// (client gone) stops the stream — remaining jobs still simulate and
  /// journal, so the work survives for the re-submission. Returns false
  /// with a diagnostic on bad versions, mixed sample specs, cancellation,
  /// or a dead result stream. Fault point: "job.abort" fires before each
  /// fresh simulation and abort()s the process — the crash the journal
  /// exists to survive.
  bool run_jobs(const std::vector<JobRequest>& reqs,
                const std::function<bool()>& cancelled,
                const std::function<bool(const JobResponse&)>& on_result,
                BatchOutcome& outcome, std::string& error);

  exp::ThreadPool& pool() { return pool_; }
  /// Non-empty when a requested journal could not be opened.
  const std::string& journal_error() const { return journal_error_; }
  /// Journal state for startup logging and tests.
  const Journal& journal() const { return journal_; }

 private:
  exp::ThreadPool pool_;
  std::mutex job_mu_;  // one sweep/batch at a time (global sample spec + cache)
  Journal journal_;
  std::string journal_error_;
};

/// Resolve a ServeTraceRequest workload: "rv:<kernel>" or a SPEC profile
/// name. Returns false with a diagnostic on unknown names.
bool resolve_workload(const std::string& name, WorkloadProfile& out,
                      std::string& error);

}  // namespace hcsim::svc
