// hcsim — socket I/O helpers for the svc layer.
//
// Every read/write/poll the daemon and its clients perform funnels through
// these helpers so that (a) a stray signal's EINTR can never abort a healthy
// connection mid-frame, (b) per-request timeouts are enforced with a poll
// deadline rather than SO_RCVTIMEO (whose EAGAIN is indistinguishable from a
// non-blocking socket's), and (c) the deterministic fault harness
// (util/faultpoint.hpp) can inject short reads/writes, EINTR storms and
// connection resets at exact hit counts. Fault points compiled in here:
//
//   sock.read.eintr / sock.read.short / sock.read.reset
//   sock.write.eintr / sock.write.short / sock.write.reset
//   sock.poll.eintr
#pragma once

#include <atomic>
#include <cstddef>

namespace hcsim::svc::io {

enum class Status {
  kOk,       // the full buffer was transferred
  kEof,      // orderly EOF before (or mid-way through) the buffer
  kTimeout,  // the deadline expired first
  kError,    // hard socket error (errno is meaningful)
};

/// Receive exactly `n` bytes. `timeout_ms < 0` blocks forever; the deadline
/// spans the whole buffer, not each chunk. EINTR and EAGAIN are retried
/// until the deadline.
Status read_exact(int fd, void* buf, std::size_t n, int timeout_ms = -1);

/// Send exactly `n` bytes (SIGPIPE-safe: a departed peer is kError, never a
/// signal). Same deadline semantics as read_exact.
Status write_all(int fd, const void* buf, std::size_t n, int timeout_ms = -1);

/// Wait for POLLIN. Returns 1 when readable (or the peer hung up), 0 on
/// timeout, -1 on error. EINTR is retried with the remaining budget — unless
/// `interrupt` is set and true, which returns -1 so signal-driven loops
/// (the daemon's accept loop re-checking its stop flag) can exit promptly.
int poll_in(int fd, int timeout_ms, const std::atomic<bool>* interrupt = nullptr);

}  // namespace hcsim::svc::io
