#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_set>
#include <utility>

namespace hcsim::svc {

Client Client::connect(const std::string& socket_path) {
  Client c;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    c.error_ = "bad socket path";
    return c;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    c.error_ = "socket() failed";
    return c;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    c.error_ = "cannot connect to " + socket_path + " (is hcsimd running?)";
    return c;
  }
  c.fd_ = fd;
  return c;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept { *this = std::move(other); }

Client& Client::operator=(Client&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) ::close(fd_);
  fd_ = std::exchange(other.fd_, -1);
  error_ = std::move(other.error_);
  return *this;
}

bool Client::round_trip(u8 type, const std::vector<u8>& payload, u8 expect,
                        Frame& reply, std::string& error) {
  if (!ok()) {
    error = error_.empty() ? "not connected" : error_;
    return false;
  }
  if (!write_frame(fd_, type, payload, timeout_ms_)) {
    error = "connection lost while sending";
    return false;
  }
  std::string frame_err;
  if (!read_frame(fd_, reply, kMaxResponseFrame, &frame_err, timeout_ms_)) {
    error = frame_err.empty() ? "daemon closed the connection" : frame_err;
    return false;
  }
  if (reply.type == kError) {
    wire::Reader r(reply.payload.data(), reply.payload.size());
    if (!r.get_string(error, kMaxResponseFrame)) error = "malformed error reply";
    return false;
  }
  if (reply.type != expect) {
    error = "unexpected reply type " + std::to_string(reply.type);
    return false;
  }
  return true;
}

bool Client::sweep(const SweepRequest& req, SweepResponse& resp, std::string& error) {
  std::vector<u8> payload;
  encode(payload, req);
  Frame reply;
  if (!round_trip(kSweep, payload, kResult, reply, error)) return false;
  wire::Reader r(reply.payload.data(), reply.payload.size());
  if (!decode(r, resp)) {
    error = "malformed result payload";
    return false;
  }
  return true;
}

bool Client::list_sweeps(std::vector<std::string>& names, std::string& error) {
  Frame reply;
  if (!round_trip(kListSweeps, {}, kSweepList, reply, error)) return false;
  wire::Reader r(reply.payload.data(), reply.payload.size());
  if (!decode_sweep_list(r, names)) {
    error = "malformed sweep list";
    return false;
  }
  return true;
}

bool Client::ping(std::string& error) {
  Frame reply;
  return round_trip(kPing, {}, kPong, reply, error);
}

bool Client::serve_trace(const ServeTraceRequest& req, std::string& error) {
  std::vector<u8> payload;
  encode(payload, req);
  Frame reply;
  return round_trip(kServeTrace, payload, kServing, reply, error);
}

bool Client::shutdown(std::string& error) {
  Frame reply;
  return round_trip(kShutdown, {}, kBye, reply, error);
}

bool Client::cancel() {
  if (!ok()) return false;
  return write_frame(fd_, kCancel, {}, timeout_ms_);
}

Client::BatchStatus Client::run_jobs(
    const std::vector<JobRequest>& reqs,
    const std::function<void(const JobResponse&)>& on_result, JobsDone& done,
    std::string& error) {
  done = JobsDone{};
  if (!ok()) {
    error = error_.empty() ? "not connected" : error_;
    return BatchStatus::kTransport;
  }
  std::unordered_set<u64> expected;
  std::vector<u8> payload;
  wire::put_u32(payload, static_cast<u32>(reqs.size()));
  for (const JobRequest& req : reqs) {
    expected.insert(job_id(req));
    encode(payload, req);
  }
  if (!write_frame(fd_, kRunJobs, payload, timeout_ms_)) {
    error = "connection lost while sending job batch";
    return BatchStatus::kTransport;
  }
  // The daemon streams one kJobResult per job (completion order), then
  // exactly one kJobsDone. Anything else on the wire is either a daemon
  // verdict (kError — not retryable) or a broken stream. The daemon
  // validates the whole batch before streaming, so a kError after results
  // have arrived can only mean the stream broke mid-batch — transport,
  // not verdict.
  bool got_results = false;
  for (;;) {
    Frame reply;
    std::string frame_err;
    if (!read_frame(fd_, reply, kMaxResponseFrame, &frame_err, timeout_ms_)) {
      error = frame_err.empty() ? "daemon closed the connection" : frame_err;
      return BatchStatus::kTransport;
    }
    wire::Reader r(reply.payload.data(), reply.payload.size());
    if (reply.type == kJobResult) {
      JobResponse resp;
      if (!decode(r, resp) || expected.count(resp.job_id) == 0) {
        error = "malformed job result";
        return BatchStatus::kTransport;
      }
      if (on_result) on_result(resp);
      got_results = true;
    } else if (reply.type == kJobsDone) {
      if (!decode(r, done)) {
        error = "malformed batch summary";
        return BatchStatus::kTransport;
      }
      return BatchStatus::kDone;
    } else if (reply.type == kError) {
      if (!r.get_string(error, kMaxResponseFrame)) error = "malformed error reply";
      return got_results ? BatchStatus::kTransport : BatchStatus::kRemoteError;
    } else {
      error = "unexpected reply type " + std::to_string(reply.type);
      return BatchStatus::kTransport;
    }
  }
}

}  // namespace hcsim::svc
