// hcsim — durable job journal: append-only, checksummed, torn-tail safe.
//
// Both ends of the fault-tolerant sweep path persist finished jobs here:
// hcsimd (--journal-dir) so a crashed/restarted daemon serves re-submitted
// jobs from disk instead of recomputing them, and hcsim_sweep
// (--journal-dir) so a killed client resumes with only the missing
// remainder. A journal file is
//
//   [u32 magic "HCJ1"] [u32 file version]
//   repeated: [u32 len] [u32 crc32(payload)] [payload]
//
// where payload = [u64 job_id][canonical SimResult encoding]
// (svc/protocol.hpp codecs). Records are written with a single write(2), so
// a SIGKILL can only tear the final record; open() scans the file, keeps
// every record whose length and CRC check out, truncates the torn/corrupt
// tail, and reopens for append. Determinism makes replays free: a job id is
// a content hash of the simulation inputs, so a journaled result is THE
// result, byte-exact.
//
// Thread safety: lookup/append/counters take an internal mutex — the
// service appends from concurrent pool workers.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "core/sim_result.hpp"
#include "util/types.hpp"

namespace hcsim::svc {

class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (creating if absent) and recover a journal file. False with
  /// error() when the path is unusable or holds a foreign file (bad magic —
  /// never truncate what we did not write). A recovered torn tail is NOT an
  /// error: dropped_bytes() reports it and the journal is usable.
  bool open(const std::string& path);

  bool valid() const;
  const std::string& error() const { return error_; }
  const std::string& path() const { return path_; }

  /// Fetch a completed job's result. Counts toward hits() on success.
  bool lookup(u64 job_id, SimResult& out);
  bool contains(u64 job_id) const;

  /// Persist one completed job (no-op overwrite if the id is already
  /// journaled). False when the write fails — the journal then disables
  /// itself (failed()) rather than risk a half-written log mid-file.
  bool append(u64 job_id, const SimResult& result);

  std::size_t size() const;
  /// Results served by lookup() since open — the dedupe counter the
  /// fault-matrix tests assert on.
  u64 hits() const;
  /// Records recovered from disk by open().
  u64 recovered() const;
  /// Torn/corrupt tail bytes truncated by open().
  u64 dropped_bytes() const;

 private:
  bool append_locked(u64 job_id, const SimResult& result);

  mutable std::mutex mu_;
  int fd_ = -1;
  bool failed_ = false;
  std::string path_;
  std::string error_;
  std::map<u64, SimResult> results_;
  u64 hits_ = 0;
  u64 recovered_ = 0;
  u64 dropped_bytes_ = 0;
};

/// CRC-32 (IEEE 802.3, poly 0xEDB88320) over a byte buffer — the journal's
/// record checksum. Exposed for tests that forge corrupt records.
u32 crc32(const u8* data, std::size_t n);

}  // namespace hcsim::svc
