// hcsim — client side of the hcsimd protocol (used by hcsim_sweep --connect
// and the service tests).
#pragma once

#include <string>
#include <vector>

#include "svc/protocol.hpp"

namespace hcsim::svc {

class Client {
 public:
  /// Connect to a daemon socket. ok() is false (with error()) on failure.
  static Client connect(const std::string& socket_path);

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool ok() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }
  int fd() const { return fd_; }

  /// Round-trips. Each returns false with `error` set on a protocol error,
  /// daemon-side failure (kError reply), or connection loss.
  bool sweep(const SweepRequest& req, SweepResponse& resp, std::string& error);
  bool list_sweeps(std::vector<std::string>& names, std::string& error);
  bool ping(std::string& error);
  bool serve_trace(const ServeTraceRequest& req, std::string& error);
  /// Ask the daemon to exit (waits for the kBye acknowledgement).
  bool shutdown(std::string& error);
  /// Fire-and-forget cancel of the daemon's in-flight job.
  bool cancel();

 private:
  /// Send `type`+payload, then read the reply frame, unwrapping kError.
  bool round_trip(u8 type, const std::vector<u8>& payload, u8 expect,
                  Frame& reply, std::string& error);

  int fd_ = -1;
  std::string error_;
};

}  // namespace hcsim::svc
