// hcsim — client side of the hcsimd protocol (used by hcsim_sweep --connect
// and the service tests).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "svc/protocol.hpp"

namespace hcsim::svc {

class Client {
 public:
  /// Connect to a daemon socket. ok() is false (with error()) on failure.
  static Client connect(const std::string& socket_path);

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool ok() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }
  int fd() const { return fd_; }

  /// Per-request deadline for every subsequent round trip (each frame read
  /// and write gets the full budget). -1 (default) blocks forever. A timed
  /// out request poisons the byte stream like any transport failure — the
  /// caller reconnects.
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }
  int timeout_ms() const { return timeout_ms_; }

  /// Round-trips. Each returns false with `error` set on a protocol error,
  /// daemon-side failure (kError reply), or connection loss.
  bool sweep(const SweepRequest& req, SweepResponse& resp, std::string& error);
  bool list_sweeps(std::vector<std::string>& names, std::string& error);
  bool ping(std::string& error);
  bool serve_trace(const ServeTraceRequest& req, std::string& error);
  /// Ask the daemon to exit (waits for the kBye acknowledgement).
  bool shutdown(std::string& error);
  /// Fire-and-forget cancel of the daemon's in-flight job.
  bool cancel();

  /// How a run_jobs batch ended. kTransport means the connection is dead
  /// (reconnect and re-submit — results already delivered stay delivered);
  /// kRemoteError is a daemon-side verdict retrying cannot change (bad
  /// version, mixed sample specs).
  enum class BatchStatus { kDone, kTransport, kRemoteError };

  /// Submit a kRunJobs batch and stream the kJobResult frames into
  /// `on_result` (called once per job, daemon completion order) until
  /// kJobsDone. A result whose job_id was not in `reqs` is treated as
  /// transport corruption.
  BatchStatus run_jobs(const std::vector<JobRequest>& reqs,
                       const std::function<void(const JobResponse&)>& on_result,
                       JobsDone& done, std::string& error);

 private:
  /// Send `type`+payload, then read the reply frame, unwrapping kError.
  bool round_trip(u8 type, const std::vector<u8>& payload, u8 expect,
                  Frame& reply, std::string& error);

  int fd_ = -1;
  int timeout_ms_ = -1;
  std::string error_;
};

}  // namespace hcsim::svc
