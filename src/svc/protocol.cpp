#include "svc/protocol.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace hcsim::svc {

namespace {

/// recv() exactly n bytes; short only on EOF/error.
bool read_exact(int fd, void* buf, std::size_t n) {
  u8* p = static_cast<u8*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      p += got;
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    return false;  // EOF or hard error
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const u8* p = static_cast<const u8*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a departed peer must surface as an error, not SIGPIPE.
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    return false;
  }
  return true;
}

}  // namespace

bool read_frame(int fd, Frame& frame, u32 max_frame, std::string* err) {
  if (err) err->clear();
  u8 len_bytes[sizeof(u32)];
  if (!read_exact(fd, len_bytes, sizeof(len_bytes))) return false;  // err empty: EOF
  const u32 len = wire::load_u32le(len_bytes);  // same byte order as write_frame
  if (len < 1 || len > max_frame) {
    if (err) *err = "bad frame length " + std::to_string(len);
    return false;
  }
  if (!read_exact(fd, &frame.type, 1)) {
    if (err) *err = "frame truncated";
    return false;
  }
  frame.payload.resize(len - 1);
  if (!frame.payload.empty() &&
      !read_exact(fd, frame.payload.data(), frame.payload.size())) {
    if (err) *err = "frame truncated";
    return false;
  }
  return true;
}

bool write_frame(int fd, u8 type, const std::vector<u8>& payload) {
  std::vector<u8> buf;
  buf.reserve(sizeof(u32) + 1 + payload.size());
  wire::put_u32(buf, static_cast<u32>(1 + payload.size()));
  wire::put_u8(buf, type);
  buf.insert(buf.end(), payload.begin(), payload.end());
  return write_all(fd, buf.data(), buf.size());
}

bool write_error(int fd, const std::string& msg) {
  std::vector<u8> payload;
  wire::put_string(payload, msg);
  return write_frame(fd, kError, payload);
}

// --- kSweep -----------------------------------------------------------------

void encode(std::vector<u8>& buf, const SweepRequest& req) {
  wire::put_u32(buf, req.version);
  wire::put_string(buf, req.sweep);
  wire::put_u64(buf, req.trace_len);
  wire::put_u32(buf, static_cast<u32>(req.seeds.size()));
  for (u64 s : req.seeds) wire::put_u64(buf, s);
  wire::put_u8(buf, req.sampled ? 1 : 0);
  wire::put_u64(buf, req.warmup);
  wire::put_u64(buf, req.measure);
  wire::put_u64(buf, req.period);
  wire::put_u64(buf, req.max_windows);
  wire::put_u8(buf, req.want_csv ? 1 : 0);
  wire::put_u8(buf, req.want_json ? 1 : 0);
}

bool decode(wire::Reader& r, SweepRequest& req) {
  u32 n_seeds = 0;
  u8 sampled = 0, want_csv = 0, want_json = 0;
  if (!r.get_u32(req.version) || !r.get_string(req.sweep, 256) ||
      !r.get_u64(req.trace_len) || !r.get_u32(n_seeds))
    return false;
  if (n_seeds > 4096) return false;  // corrupt count, not a real seed list
  req.seeds.resize(n_seeds);
  for (u32 i = 0; i < n_seeds; ++i)
    if (!r.get_u64(req.seeds[i])) return false;
  if (!r.get_u8(sampled) || !r.get_u64(req.warmup) || !r.get_u64(req.measure) ||
      !r.get_u64(req.period) || !r.get_u64(req.max_windows) ||
      !r.get_u8(want_csv) || !r.get_u8(want_json))
    return false;
  req.sampled = sampled != 0;
  req.want_csv = want_csv != 0;
  req.want_json = want_json != 0;
  return r.remaining() == 0;
}

// --- kResult ----------------------------------------------------------------

void encode(std::vector<u8>& buf, const SweepResponse& resp) {
  wire::put_string(buf, resp.summary);
  wire::put_string(buf, resp.csv);
  wire::put_string(buf, resp.json);
  wire::put_u64(buf, resp.n_points);
  wire::put_u32(buf, resp.threads_used);
  wire::put_u64(buf, resp.wall_ms);
}

bool decode(wire::Reader& r, SweepResponse& resp) {
  if (!r.get_string(resp.summary, kMaxResponseFrame) ||
      !r.get_string(resp.csv, kMaxResponseFrame) ||
      !r.get_string(resp.json, kMaxResponseFrame) || !r.get_u64(resp.n_points) ||
      !r.get_u32(resp.threads_used) || !r.get_u64(resp.wall_ms))
    return false;
  return r.remaining() == 0;
}

// --- kServeTrace ------------------------------------------------------------

void encode(std::vector<u8>& buf, const ServeTraceRequest& req) {
  wire::put_u32(buf, req.version);
  wire::put_string(buf, req.shm_path);
  wire::put_u64(buf, req.ring_capacity);
  wire::put_string(buf, req.workload);
  wire::put_u64(buf, req.seed);
  wire::put_u64(buf, req.trace_len);
}

bool decode(wire::Reader& r, ServeTraceRequest& req) {
  if (!r.get_u32(req.version) || !r.get_string(req.shm_path, 4096) ||
      !r.get_u64(req.ring_capacity) || !r.get_string(req.workload, 256) ||
      !r.get_u64(req.seed) || !r.get_u64(req.trace_len))
    return false;
  return r.remaining() == 0;
}

// --- kSweepList -------------------------------------------------------------

void encode_sweep_list(std::vector<u8>& buf, const std::vector<std::string>& names) {
  wire::put_u32(buf, static_cast<u32>(names.size()));
  for (const std::string& n : names) wire::put_string(buf, n);
}

bool decode_sweep_list(wire::Reader& r, std::vector<std::string>& names) {
  u32 n = 0;
  if (!r.get_u32(n) || n > 4096) return false;
  names.resize(n);
  for (u32 i = 0; i < n; ++i)
    if (!r.get_string(names[i], 256)) return false;
  return r.remaining() == 0;
}

}  // namespace hcsim::svc
