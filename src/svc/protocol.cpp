#include "svc/protocol.hpp"

#include <cstring>

#include "svc/io.hpp"

namespace hcsim::svc {

namespace {

/// IEEE-754 bit pattern — exact round trips, identical bytes on every host.
void put_f64(std::vector<u8>& buf, double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof(bits));
  wire::put_u64(buf, bits);
}

bool get_f64(wire::Reader& r, double& v) {
  u64 bits;
  if (!r.get_u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof(bits));
  return true;
}

void put_unsigned(std::vector<u8>& buf, unsigned v) {
  wire::put_u32(buf, static_cast<u32>(v));
}

bool get_unsigned(wire::Reader& r, unsigned& v) {
  u32 raw;
  if (!r.get_u32(raw)) return false;
  v = raw;
  return true;
}

void put_bool(std::vector<u8>& buf, bool v) { wire::put_u8(buf, v ? 1 : 0); }

bool get_bool(wire::Reader& r, bool& v) {
  u8 raw;
  if (!r.get_u8(raw)) return false;
  v = raw != 0;
  return true;
}

}  // namespace

bool read_frame(int fd, Frame& frame, u32 max_frame, std::string* err,
                int timeout_ms) {
  if (err) err->clear();
  const auto fail = [&](io::Status st, const char* what) {
    if (!err) return false;
    if (st == io::Status::kTimeout) *err = "timed out reading " + std::string(what);
    else if (st != io::Status::kEof) *err = std::string(what) + " read error";
    // EOF before any header byte stays "" (clean EOF); mid-frame EOF is
    // corruption and is labelled by the caller-specific messages below.
    return false;
  };
  u8 len_bytes[sizeof(u32)];
  io::Status st = io::read_exact(fd, len_bytes, sizeof(len_bytes), timeout_ms);
  if (st != io::Status::kOk) return fail(st, "frame header");
  const u32 len = wire::load_u32le(len_bytes);  // same byte order as write_frame
  if (len < 1 || len > max_frame) {
    if (err) *err = "bad frame length " + std::to_string(len);
    return false;
  }
  st = io::read_exact(fd, &frame.type, 1, timeout_ms);
  if (st == io::Status::kEof) {
    if (err) *err = "frame truncated";
    return false;
  }
  if (st != io::Status::kOk) return fail(st, "frame body");
  frame.payload.resize(len - 1);
  if (!frame.payload.empty()) {
    st = io::read_exact(fd, frame.payload.data(), frame.payload.size(), timeout_ms);
    if (st == io::Status::kEof) {
      if (err) *err = "frame truncated";
      return false;
    }
    if (st != io::Status::kOk) return fail(st, "frame body");
  }
  return true;
}

bool write_frame(int fd, u8 type, const std::vector<u8>& payload, int timeout_ms) {
  std::vector<u8> buf;
  buf.reserve(sizeof(u32) + 1 + payload.size());
  wire::put_u32(buf, static_cast<u32>(1 + payload.size()));
  wire::put_u8(buf, type);
  buf.insert(buf.end(), payload.begin(), payload.end());
  return io::write_all(fd, buf.data(), buf.size(), timeout_ms) == io::Status::kOk;
}

bool write_error(int fd, const std::string& msg) {
  std::vector<u8> payload;
  wire::put_string(payload, msg);
  return write_frame(fd, kError, payload);
}

// --- kSweep -----------------------------------------------------------------

void encode(std::vector<u8>& buf, const SweepRequest& req) {
  wire::put_u32(buf, req.version);
  wire::put_string(buf, req.sweep);
  wire::put_u64(buf, req.trace_len);
  wire::put_u32(buf, static_cast<u32>(req.seeds.size()));
  for (u64 s : req.seeds) wire::put_u64(buf, s);
  wire::put_u8(buf, req.sampled ? 1 : 0);
  wire::put_u64(buf, req.warmup);
  wire::put_u64(buf, req.measure);
  wire::put_u64(buf, req.period);
  wire::put_u64(buf, req.max_windows);
  wire::put_u8(buf, req.want_csv ? 1 : 0);
  wire::put_u8(buf, req.want_json ? 1 : 0);
}

bool decode(wire::Reader& r, SweepRequest& req) {
  u32 n_seeds = 0;
  u8 sampled = 0, want_csv = 0, want_json = 0;
  if (!r.get_u32(req.version) || !r.get_string(req.sweep, 256) ||
      !r.get_u64(req.trace_len) || !r.get_u32(n_seeds))
    return false;
  if (n_seeds > 4096) return false;  // corrupt count, not a real seed list
  req.seeds.resize(n_seeds);
  for (u32 i = 0; i < n_seeds; ++i)
    if (!r.get_u64(req.seeds[i])) return false;
  if (!r.get_u8(sampled) || !r.get_u64(req.warmup) || !r.get_u64(req.measure) ||
      !r.get_u64(req.period) || !r.get_u64(req.max_windows) ||
      !r.get_u8(want_csv) || !r.get_u8(want_json))
    return false;
  req.sampled = sampled != 0;
  req.want_csv = want_csv != 0;
  req.want_json = want_json != 0;
  return r.remaining() == 0;
}

// --- kResult ----------------------------------------------------------------

void encode(std::vector<u8>& buf, const SweepResponse& resp) {
  wire::put_string(buf, resp.summary);
  wire::put_string(buf, resp.csv);
  wire::put_string(buf, resp.json);
  wire::put_u64(buf, resp.n_points);
  wire::put_u32(buf, resp.threads_used);
  wire::put_u64(buf, resp.wall_ms);
}

bool decode(wire::Reader& r, SweepResponse& resp) {
  if (!r.get_string(resp.summary, kMaxResponseFrame) ||
      !r.get_string(resp.csv, kMaxResponseFrame) ||
      !r.get_string(resp.json, kMaxResponseFrame) || !r.get_u64(resp.n_points) ||
      !r.get_u32(resp.threads_used) || !r.get_u64(resp.wall_ms))
    return false;
  return r.remaining() == 0;
}

// --- kServeTrace ------------------------------------------------------------

void encode(std::vector<u8>& buf, const ServeTraceRequest& req) {
  wire::put_u32(buf, req.version);
  wire::put_string(buf, req.shm_path);
  wire::put_u64(buf, req.ring_capacity);
  wire::put_string(buf, req.workload);
  wire::put_u64(buf, req.seed);
  wire::put_u64(buf, req.trace_len);
}

bool decode(wire::Reader& r, ServeTraceRequest& req) {
  if (!r.get_u32(req.version) || !r.get_string(req.shm_path, 4096) ||
      !r.get_u64(req.ring_capacity) || !r.get_string(req.workload, 256) ||
      !r.get_u64(req.seed) || !r.get_u64(req.trace_len))
    return false;
  return r.remaining() == 0;
}

// --- kSweepList -------------------------------------------------------------

void encode_sweep_list(std::vector<u8>& buf, const std::vector<std::string>& names) {
  wire::put_u32(buf, static_cast<u32>(names.size()));
  for (const std::string& n : names) wire::put_string(buf, n);
}

bool decode_sweep_list(wire::Reader& r, std::vector<std::string>& names) {
  u32 n = 0;
  if (!r.get_u32(n) || n > 4096) return false;
  names.resize(n);
  for (u32 i = 0; i < n; ++i)
    if (!r.get_string(names[i], 256)) return false;
  return r.remaining() == 0;
}

// --- value codecs -----------------------------------------------------------
// Declaration order of each struct is encoding order. These feed job_id()
// hashing and the on-disk journal, so the order is part of the format.

namespace {

void encode_cache(std::vector<u8>& buf, const CacheConfig& c) {
  wire::put_string(buf, c.name);
  wire::put_u32(buf, c.size_bytes);
  wire::put_u32(buf, c.line_bytes);
  wire::put_u32(buf, c.ways);
  wire::put_u32(buf, c.latency_cycles);
  wire::put_u32(buf, c.ports);
}

bool decode_cache(wire::Reader& r, CacheConfig& c) {
  return r.get_string(c.name, 256) && r.get_u32(c.size_bytes) &&
         r.get_u32(c.line_bytes) && r.get_u32(c.ways) &&
         r.get_u32(c.latency_cycles) && r.get_u32(c.ports);
}

}  // namespace

void encode(std::vector<u8>& buf, const MachineConfig& cfg) {
  put_unsigned(buf, cfg.fetch_width);
  put_unsigned(buf, cfg.rename_width);
  put_unsigned(buf, cfg.commit_width);
  put_unsigned(buf, cfg.rob_entries);
  put_unsigned(buf, cfg.frontend_depth);
  put_unsigned(buf, cfg.iq_wide);
  put_unsigned(buf, cfg.issue_wide);
  put_unsigned(buf, cfg.iq_fp);
  put_unsigned(buf, cfg.issue_fp);
  put_unsigned(buf, cfg.iq_helper);
  put_unsigned(buf, cfg.issue_helper);
  put_unsigned(buf, cfg.helper_width_bits);
  put_unsigned(buf, cfg.ticks_per_wide_cycle);
  put_unsigned(buf, cfg.copy_transfer_cycles);
  put_unsigned(buf, cfg.copy_ports);
  encode_cache(buf, cfg.mem.dl0);
  encode_cache(buf, cfg.mem.ul1);
  wire::put_u32(buf, cfg.mem.main_memory_cycles);
  wire::put_u32(buf, cfg.wpred.entries);
  put_bool(buf, cfg.wpred.use_confidence);
  wire::put_u8(buf, cfg.wpred.confidence_threshold);
  wire::put_u32(buf, cfg.bpred.entries);
  wire::put_u32(buf, cfg.bpred.history_bits);
  const SteeringConfig& st = cfg.steer;
  put_bool(buf, st.helper_enabled);
  put_bool(buf, st.p888);
  put_bool(buf, st.br);
  put_bool(buf, st.lr);
  put_bool(buf, st.cr);
  put_bool(buf, st.cp);
  put_bool(buf, st.ir);
  put_bool(buf, st.ir_nodest_only);
  put_f64(buf, st.ir_wide_occ_frac);
  put_f64(buf, st.ir_helper_occ_frac);
  put_bool(buf, st.balance_throttle);
  put_f64(buf, st.helper_overload_frac);
  put_bool(buf, st.ir_block);
  put_unsigned(buf, st.ir_block_len);
}

bool decode(wire::Reader& r, MachineConfig& cfg) {
  if (!get_unsigned(r, cfg.fetch_width) || !get_unsigned(r, cfg.rename_width) ||
      !get_unsigned(r, cfg.commit_width) || !get_unsigned(r, cfg.rob_entries) ||
      !get_unsigned(r, cfg.frontend_depth) || !get_unsigned(r, cfg.iq_wide) ||
      !get_unsigned(r, cfg.issue_wide) || !get_unsigned(r, cfg.iq_fp) ||
      !get_unsigned(r, cfg.issue_fp) || !get_unsigned(r, cfg.iq_helper) ||
      !get_unsigned(r, cfg.issue_helper) ||
      !get_unsigned(r, cfg.helper_width_bits) ||
      !get_unsigned(r, cfg.ticks_per_wide_cycle) ||
      !get_unsigned(r, cfg.copy_transfer_cycles) ||
      !get_unsigned(r, cfg.copy_ports))
    return false;
  if (!decode_cache(r, cfg.mem.dl0) || !decode_cache(r, cfg.mem.ul1) ||
      !r.get_u32(cfg.mem.main_memory_cycles))
    return false;
  if (!r.get_u32(cfg.wpred.entries) || !get_bool(r, cfg.wpred.use_confidence) ||
      !r.get_u8(cfg.wpred.confidence_threshold))
    return false;
  if (!r.get_u32(cfg.bpred.entries) || !r.get_u32(cfg.bpred.history_bits))
    return false;
  SteeringConfig& st = cfg.steer;
  return get_bool(r, st.helper_enabled) && get_bool(r, st.p888) &&
         get_bool(r, st.br) && get_bool(r, st.lr) && get_bool(r, st.cr) &&
         get_bool(r, st.cp) && get_bool(r, st.ir) &&
         get_bool(r, st.ir_nodest_only) && get_f64(r, st.ir_wide_occ_frac) &&
         get_f64(r, st.ir_helper_occ_frac) && get_bool(r, st.balance_throttle) &&
         get_f64(r, st.helper_overload_frac) && get_bool(r, st.ir_block) &&
         get_unsigned(r, st.ir_block_len);
}

void encode(std::vector<u8>& buf, const WorkloadProfile& p) {
  wire::put_string(buf, p.name);
  wire::put_u64(buf, p.seed);
  wire::put_string(buf, p.rv_kernel);
  put_unsigned(buf, p.num_loops);
  put_unsigned(buf, p.body_chains_min);
  put_unsigned(buf, p.body_chains_max);
  put_f64(buf, p.p_nested_loop);
  put_f64(buf, p.w_narrow_chain);
  put_f64(buf, p.w_wide_chain);
  put_f64(buf, p.w_cr_chain);
  put_f64(buf, p.w_muldiv_chain);
  put_f64(buf, p.w_fp_chain);
  put_f64(buf, p.w_branchy_chain);
  put_f64(buf, p.p_cross_width_use);
  put_f64(buf, p.value_stability);
  put_f64(buf, p.p_carry_propagate);
  put_unsigned(buf, p.trip_min);
  put_unsigned(buf, p.trip_max);
  put_f64(buf, p.p_wide_loop);
  put_unsigned(buf, p.byte_footprint_log2);
  put_unsigned(buf, p.word_footprint_log2);
  put_f64(buf, p.p_pointer_chase);
  put_f64(buf, p.p_store);
  put_f64(buf, p.p_narrow_flags);
}

bool decode(wire::Reader& r, WorkloadProfile& p) {
  return r.get_string(p.name, 256) && r.get_u64(p.seed) &&
         r.get_string(p.rv_kernel, 256) && get_unsigned(r, p.num_loops) &&
         get_unsigned(r, p.body_chains_min) && get_unsigned(r, p.body_chains_max) &&
         get_f64(r, p.p_nested_loop) && get_f64(r, p.w_narrow_chain) &&
         get_f64(r, p.w_wide_chain) && get_f64(r, p.w_cr_chain) &&
         get_f64(r, p.w_muldiv_chain) && get_f64(r, p.w_fp_chain) &&
         get_f64(r, p.w_branchy_chain) && get_f64(r, p.p_cross_width_use) &&
         get_f64(r, p.value_stability) && get_f64(r, p.p_carry_propagate) &&
         get_unsigned(r, p.trip_min) && get_unsigned(r, p.trip_max) &&
         get_f64(r, p.p_wide_loop) && get_unsigned(r, p.byte_footprint_log2) &&
         get_unsigned(r, p.word_footprint_log2) && get_f64(r, p.p_pointer_chase) &&
         get_f64(r, p.p_store) && get_f64(r, p.p_narrow_flags);
}

void encode(std::vector<u8>& buf, const SimResult& s) {
  wire::put_string(buf, s.workload);
  wire::put_string(buf, s.config);
  wire::put_u64(buf, s.uops);
  wire::put_u64(buf, s.final_tick);
  put_f64(buf, s.wide_cycles);
  put_f64(buf, s.ipc);
  wire::put_u64(buf, s.to_wide);
  wire::put_u64(buf, s.to_helper);
  wire::put_u64(buf, s.br_steered);
  wire::put_u64(buf, s.cr_steered);
  wire::put_u64(buf, s.split_uops);
  wire::put_u64(buf, s.chunk_uops);
  wire::put_u64(buf, s.replicated_loads);
  wire::put_u64(buf, s.copies);
  wire::put_u64(buf, s.copies_w2n);
  wire::put_u64(buf, s.copies_n2w);
  wire::put_u64(buf, s.copy_prefetches);
  wire::put_u64(buf, s.cp_useful);
  wire::put_u64(buf, s.cp_wasted);
  wire::put_u32(buf, static_cast<u32>(s.copy_wait.bins()));
  for (std::size_t i = 0; i <= s.copy_wait.bins(); ++i)
    wire::put_u64(buf, s.copy_wait.bin(i));
  wire::put_u64(buf, s.copy_wait.sum());
  wire::put_u64(buf, s.wp_correct);
  wire::put_u64(buf, s.wp_nonfatal);
  wire::put_u64(buf, s.wp_fatal);
  wire::put_u64(buf, s.cr_violations);
  wire::put_u64(buf, s.branches);
  wire::put_u64(buf, s.branch_mispredicts);
  wire::put_u64(buf, s.nready_w2n);
  wire::put_u64(buf, s.nready_n2w);
  put_f64(buf, s.dl0_hit_rate);
  put_f64(buf, s.ul1_hit_rate);
  wire::put_u32(buf, static_cast<u32>(kNumCounters));
  for (std::size_t i = 0; i < kNumCounters; ++i)
    wire::put_u64(buf, s.counters.get(static_cast<Counter>(i)));
}

bool decode(wire::Reader& r, SimResult& s) {
  if (!r.get_string(s.workload, 256) || !r.get_string(s.config, 256) ||
      !r.get_u64(s.uops) || !r.get_u64(s.final_tick) ||
      !get_f64(r, s.wide_cycles) || !get_f64(r, s.ipc) ||
      !r.get_u64(s.to_wide) || !r.get_u64(s.to_helper) ||
      !r.get_u64(s.br_steered) || !r.get_u64(s.cr_steered) ||
      !r.get_u64(s.split_uops) || !r.get_u64(s.chunk_uops) ||
      !r.get_u64(s.replicated_loads) || !r.get_u64(s.copies) ||
      !r.get_u64(s.copies_w2n) || !r.get_u64(s.copies_n2w) ||
      !r.get_u64(s.copy_prefetches) || !r.get_u64(s.cp_useful) ||
      !r.get_u64(s.cp_wasted))
    return false;
  u32 n_bins = 0;
  if (!r.get_u32(n_bins) || n_bins > (1u << 16)) return false;
  std::vector<u64> counts(n_bins + 1);
  for (u64& c : counts)
    if (!r.get_u64(c)) return false;
  u64 hist_sum = 0;
  if (!r.get_u64(hist_sum)) return false;
  s.copy_wait.restore(std::move(counts), hist_sum);
  if (!r.get_u64(s.wp_correct) || !r.get_u64(s.wp_nonfatal) ||
      !r.get_u64(s.wp_fatal) || !r.get_u64(s.cr_violations) ||
      !r.get_u64(s.branches) || !r.get_u64(s.branch_mispredicts) ||
      !r.get_u64(s.nready_w2n) || !r.get_u64(s.nready_n2w) ||
      !get_f64(r, s.dl0_hit_rate) || !get_f64(r, s.ul1_hit_rate))
    return false;
  u32 n_counters = 0;
  if (!r.get_u32(n_counters) || n_counters != kNumCounters) return false;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    u64 v = 0;
    if (!r.get_u64(v)) return false;
    s.counters[static_cast<Counter>(i)] = v;
  }
  return true;
}

// --- kRunJobs ---------------------------------------------------------------

namespace {

/// Everything that determines a job's result — the version field stays out
/// so a pure protocol revision does not orphan journaled work.
void encode_job_body(std::vector<u8>& buf, const JobRequest& req) {
  encode(buf, req.config);
  encode(buf, req.profile);
  wire::put_u64(buf, req.n_records);
  put_bool(buf, req.sampled);
  wire::put_u64(buf, req.warmup);
  wire::put_u64(buf, req.measure);
  wire::put_u64(buf, req.period);
  wire::put_u64(buf, req.max_windows);
}

}  // namespace

void encode(std::vector<u8>& buf, const JobRequest& req) {
  wire::put_u32(buf, req.version);
  encode_job_body(buf, req);
}

bool decode(wire::Reader& r, JobRequest& req) {
  return r.get_u32(req.version) && decode(r, req.config) &&
         decode(r, req.profile) && r.get_u64(req.n_records) &&
         get_bool(r, req.sampled) && r.get_u64(req.warmup) &&
         r.get_u64(req.measure) && r.get_u64(req.period) &&
         r.get_u64(req.max_windows);
}

u64 job_id(const JobRequest& req) {
  std::vector<u8> body;
  body.reserve(512);
  encode_job_body(body, req);
  // FNV-1a 64 over a domain-separation tag + the canonical body bytes.
  u64 h = 14695981039346656037ull;
  const auto mix = [&h](const void* data, std::size_t n) {
    const u8* p = static_cast<const u8*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  static constexpr char kTag[] = "hcsim-job-v1";
  mix(kTag, sizeof(kTag) - 1);
  mix(body.data(), body.size());
  return h;
}

void encode(std::vector<u8>& buf, const JobResponse& resp) {
  wire::put_u64(buf, resp.job_id);
  put_bool(buf, resp.from_journal);
  encode(buf, resp.result);
}

bool decode(wire::Reader& r, JobResponse& resp) {
  if (!r.get_u64(resp.job_id) || !get_bool(r, resp.from_journal) ||
      !decode(r, resp.result))
    return false;
  return r.remaining() == 0;
}

void encode(std::vector<u8>& buf, const JobsDone& done) {
  wire::put_u64(buf, done.completed);
  wire::put_u64(buf, done.journal_hits);
}

bool decode(wire::Reader& r, JobsDone& done) {
  if (!r.get_u64(done.completed) || !r.get_u64(done.journal_hits)) return false;
  return r.remaining() == 0;
}

}  // namespace hcsim::svc
