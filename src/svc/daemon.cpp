#include "svc/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bus/trace_bus.hpp"
#include "exp/sweep.hpp"
#include "sample/record_stream.hpp"
#include "sim/simulator.hpp"
#include "svc/io.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "util/faultpoint.hpp"

namespace hcsim::svc {

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

/// A trace-bus producer the daemon hosts: the ring (daemon-owned, so the
/// segment file is unlinked when the job dies) plus its serving thread.
struct ServeJob {
  bus::ShmRing ring;
  std::thread thread;
  std::atomic<bool> done{false};
};

/// True when the client is gone (EOF/HUP) or sent kCancel. Pipelined
/// non-cancel frames are left un-consumed for the main loop.
bool connection_cancelled(int fd) {
  const int r = io::poll_in(fd, 0);
  if (r < 0) return true;  // poll error: the descriptor is unusable
  if (r == 0) return false;

  u8 head[5];
  ssize_t got;
  do {
    got = ::recv(fd, head, sizeof(head), MSG_PEEK | MSG_DONTWAIT);
  } while (got < 0 && errno == EINTR);
  if (got == 0) return true;  // orderly EOF: client departed mid-job
  if (got < 0) return !(errno == EAGAIN || errno == EWOULDBLOCK);
  if (got < static_cast<ssize_t>(sizeof(head))) return false;  // partial header
  const u32 len = wire::load_u32le(head);
  if (len != 1 || head[4] != kCancel) return false;  // a pipelined request
  do {
    got = ::recv(fd, head, sizeof(head), 0);  // consume the cancel frame
  } while (got < 0 && errno == EINTR);
  return true;
}

/// Thread-safe wrapper for the sweep's cancelled callback: run_jobs polls it
/// from every pool worker concurrently, but connection_cancelled consumes
/// bytes from the socket — two threads probing at once could each take the
/// 5-byte kCancel frame and the second would steal bytes from a pipelined
/// request. try_lock funnels the probe through one thread at a time, and the
/// verdict latches so nothing touches the socket after cancellation.
class CancelLatch {
 public:
  explicit CancelLatch(int fd) : fd_(fd) {}

  bool check() {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock())  // another worker is probing right now
      return cancelled_.load(std::memory_order_acquire);
    if (connection_cancelled(fd_)) cancelled_.store(true, std::memory_order_release);
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  const int fd_;
  std::mutex mu_;
  std::atomic<bool> cancelled_{false};
};

/// kServeTrace confinement: accept only a plain filename directly inside
/// `shm_dir` — no subdirectories, no "..", no empty name. The path names a
/// file the daemon will create (and may unlink), so anything looser hands a
/// hostile client the daemon's filesystem permissions.
bool shm_path_allowed(const std::string& path, const std::string& shm_dir,
                      std::string& error) {
  std::string dir = shm_dir;
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  const std::string prefix = dir + "/";
  const bool inside = path.size() > prefix.size() &&
                      path.compare(0, prefix.size(), prefix) == 0 &&
                      path.find('/', prefix.size()) == std::string::npos &&
                      path.find("..") == std::string::npos;
  if (!inside)
    error = "shm_path must be a plain filename under " + dir + "/";
  return inside;
}

class Daemon {
 public:
  explicit Daemon(const DaemonOptions& opts)
      : opts_(opts), service_(opts.threads, opts.journal_dir) {}

  int run() {
    // Domain-tag every fire() on the serve thread so fault schedules can
    // target "daemon.sock.write.reset" without also severing an in-process
    // client's writes (the fixture tests host both ends in one process).
    fault::ScopedDomain domain("daemon");
    const int listen_fd = open_socket();
    if (listen_fd < 0) return 1;
    std::fprintf(stderr, "hcsimd: listening on %s (%u worker threads)\n",
                 opts_.socket_path.c_str(), service_.pool().size());
    if (!opts_.journal_dir.empty()) {
      if (!service_.journal_error().empty())
        std::fprintf(stderr, "hcsimd: WARNING: journal disabled: %s\n",
                     service_.journal_error().c_str());
      else
        std::fprintf(stderr,
                     "hcsimd: journal %s (%llu jobs recovered, %llu torn bytes "
                     "dropped)\n",
                     service_.journal().path().c_str(),
                     static_cast<unsigned long long>(service_.journal().recovered()),
                     static_cast<unsigned long long>(service_.journal().dropped_bytes()));
    }

    bool shutdown_requested = false;
    while (!shutdown_requested && !g_stop.load(std::memory_order_relaxed)) {
      const int timeout =
          opts_.idle_timeout_ms == 0
              ? -1
              : static_cast<int>(std::min<u64>(opts_.idle_timeout_ms, 1u << 30));
      const int r = io::poll_in(listen_fd, timeout, &g_stop);
      if (r < 0) {
        // Interrupted by a shutdown signal, or a hard poll error.
        if (!g_stop.load(std::memory_order_relaxed)) std::perror("hcsimd: poll");
        break;
      }
      if (r == 0) {
        reap_serve_jobs();
        if (!serve_jobs_.empty()) continue;  // a consumer is still attached
        std::fprintf(stderr, "hcsimd: idle for %llums, shutting down\n",
                     static_cast<unsigned long long>(opts_.idle_timeout_ms));
        break;
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        std::perror("hcsimd: accept");
        continue;
      }
      shutdown_requested = handle_connection(fd);
      ::close(fd);
      reap_serve_jobs();
    }

    ::close(listen_fd);
    ::unlink(opts_.socket_path.c_str());
    release_serve_jobs();
    std::fprintf(stderr, "hcsimd: bye\n");
    return 0;
  }

 private:
  int open_socket() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
      std::fprintf(stderr, "hcsimd: socket path too long: %s\n",
                   opts_.socket_path.c_str());
      return -1;
    }
    std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
                opts_.socket_path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      std::perror("hcsimd: socket");
      return -1;
    }
    ::unlink(opts_.socket_path.c_str());  // replace a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, 16) < 0) {
      std::perror("hcsimd: bind/listen");
      ::close(fd);
      return -1;
    }
    return fd;
  }

  /// Serve one client until EOF, a framing error, or conn_idle_timeout_ms of
  /// silence between requests (connections are served one at a time, so an
  /// idle client must not hold the accept loop hostage). Returns true when
  /// the client asked the daemon to shut down.
  bool handle_connection(int fd) {
    for (;;) {
      if (opts_.conn_idle_timeout_ms != 0) {
        const int timeout = static_cast<int>(
            std::min<u64>(opts_.conn_idle_timeout_ms, 1u << 30));
        const int r = io::poll_in(fd, timeout, &g_stop);
        if (r == 0) {
          std::fprintf(stderr, "hcsimd: dropping idle connection\n");
          return false;
        }
        if (r < 0) return false;  // poll error or shutdown signal
      }
      Frame frame;
      std::string err;
      if (!read_frame(fd, frame, kMaxRequestFrame, &err)) {
        // EOF (err empty) or corrupt framing: either way this byte stream
        // is finished — but the daemon is not.
        if (!err.empty())
          std::fprintf(stderr, "hcsimd: dropping connection: %s\n", err.c_str());
        return false;
      }
      switch (frame.type) {
        case kSweep:
          handle_sweep(fd, frame);
          break;
        case kListSweeps: {
          std::vector<u8> payload;
          encode_sweep_list(payload, exp::sweep_names());
          write_frame(fd, kSweepList, payload);
          break;
        }
        case kPing:
          write_frame(fd, kPong, {});
          break;
        case kCancel:
          break;  // nothing in flight: a late cancel is a no-op
        case kShutdown:
          write_frame(fd, kBye, {});
          return true;
        case kServeTrace:
          handle_serve_trace(fd, frame);
          break;
        case kRunJobs:
          if (!handle_run_jobs(fd, frame)) return false;
          break;
        default:
          write_error(fd, "unknown frame type " + std::to_string(frame.type));
          break;
      }
    }
  }

  void handle_sweep(int fd, const Frame& frame) {
    SweepRequest req;
    wire::Reader r(frame.payload.data(), frame.payload.size());
    if (!decode(r, req)) {
      write_error(fd, "malformed sweep request");
      return;
    }
    std::fprintf(stderr, "hcsimd: sweep '%s' from client\n", req.sweep.c_str());
    SweepResponse resp;
    std::string error;
    CancelLatch cancel(fd);
    const bool ok = service_.run(
        req,
        [&cancel] {
          // Runs on pool workers: re-establish the daemon fault domain.
          fault::ScopedDomain domain("daemon");
          return cancel.check();
        },
        resp, error);
    if (!ok) {
      std::fprintf(stderr, "hcsimd: sweep '%s' failed: %s\n", req.sweep.c_str(),
                   error.c_str());
      write_error(fd, error);
      return;
    }
    std::vector<u8> payload;
    encode(payload, resp);
    write_frame(fd, kResult, payload);
  }

  /// Returns false when the connection must be dropped (the result stream
  /// died mid-batch, so the byte stream is desynchronized even if the
  /// descriptor still looks alive).
  bool handle_run_jobs(int fd, const Frame& frame) {
    std::vector<JobRequest> reqs;
    wire::Reader r(frame.payload.data(), frame.payload.size());
    u32 n = 0;
    if (!r.get_u32(n) || n > 4096) {
      write_error(fd, "malformed job batch");
      return true;
    }
    reqs.resize(n);
    for (u32 i = 0; i < n; ++i)
      if (!decode(r, reqs[i])) {
        write_error(fd, "malformed job batch");
        return true;
      }
    if (r.remaining() != 0) {
      write_error(fd, "malformed job batch");
      return true;
    }
    SweepService::BatchOutcome outcome;
    std::string error;
    const bool ok = service_.run_jobs(
        reqs, /*cancelled=*/nullptr,
        [fd](const JobResponse& resp) {
          // Called from pool workers (serialized): re-establish the daemon
          // fault domain for the result write.
          fault::ScopedDomain domain("daemon");
          std::vector<u8> payload;
          encode(payload, resp);
          return write_frame(fd, kJobResult, payload);
        },
        outcome, error);
    if (!ok) {
      std::fprintf(stderr, "hcsimd: job batch failed: %s\n", error.c_str());
      // A dead result stream must NOT be answered with kError: the failure
      // was transport, not verdict, and a client that still sees a live
      // socket (half-open connection) would mistake kError for a semantic
      // rejection and give up instead of re-submitting. Drop the connection.
      if (outcome.stream_lost) return false;
      write_error(fd, error);
      return true;
    }
    std::fprintf(stderr, "hcsimd: %u jobs done (%llu from journal)\n", n,
                 static_cast<unsigned long long>(outcome.journal_hits));
    std::vector<u8> payload;
    encode(payload, JobsDone{outcome.completed, outcome.journal_hits});
    write_frame(fd, kJobsDone, payload);
    return true;
  }

  void handle_serve_trace(int fd, const Frame& frame) {
    ServeTraceRequest req;
    wire::Reader r(frame.payload.data(), frame.payload.size());
    if (!decode(r, req)) {
      write_error(fd, "malformed serve-trace request");
      return;
    }
    if (req.version != kProtocolVersion) {
      write_error(fd, "unsupported protocol version " + std::to_string(req.version));
      return;
    }
    std::string error;
    if (!shm_path_allowed(req.shm_path, opts_.shm_dir, error)) {
      write_error(fd, error);
      return;
    }
    if (req.ring_capacity > bus::ShmRing::kMaxCapacity) {
      write_error(fd, "ring_capacity exceeds the limit");
      return;
    }
    WorkloadProfile profile;
    if (!resolve_workload(req.workload, profile, error)) {
      write_error(fd, error);
      return;
    }
    if (req.seed != 0) profile.seed = req.seed;
    const u64 len = req.trace_len != 0 ? req.trace_len : default_trace_len();
    const u64 cap = req.ring_capacity != 0 ? req.ring_capacity : (1u << 20);

    auto job = std::make_unique<ServeJob>();
    job->ring = bus::ShmRing::create(req.shm_path, cap);
    if (!job->ring.valid()) {
      write_error(fd, "cannot create shm ring: " + job->ring.error());
      return;
    }
    // RV traces are seedless (the program fully determines them, seed 1 by
    // the kernel_trace convention); generated traces carry the profile seed.
    const u64 trace_seed = profile.rv_kernel.empty() ? profile.seed : 1;
    ServeJob* j = job.get();
    job->thread = std::thread([j, profile, len, trace_seed] {
      bus::serve_trace_ranges(j->ring,
                              sample::workload_stream_factory(profile, len),
                              trace_seed);
      j->done.store(true, std::memory_order_release);
    });
    serve_jobs_.push_back(std::move(job));
    std::fprintf(stderr, "hcsimd: serving %s (len %llu) on %s\n",
                 req.workload.c_str(), static_cast<unsigned long long>(len),
                 req.shm_path.c_str());
    write_frame(fd, kServing, {});
  }

  /// Join serving threads whose consumer departed.
  void reap_serve_jobs() {
    for (auto it = serve_jobs_.begin(); it != serve_jobs_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = serve_jobs_.erase(it);  // ~ShmRing unlinks the segment
      } else {
        ++it;
      }
    }
  }

  /// Shutdown: force every producer loop to exit, then release the segments.
  void release_serve_jobs() {
    for (auto& job : serve_jobs_) job->ring.close_read();
    for (auto& job : serve_jobs_) {
      job->thread.join();
    }
    serve_jobs_.clear();
  }

  DaemonOptions opts_;
  SweepService service_;
  std::vector<std::unique_ptr<ServeJob>> serve_jobs_;
};

}  // namespace

int run_daemon(const DaemonOptions& opts) {
  if (opts.socket_path.empty()) {
    std::fprintf(stderr, "hcsimd: --socket is required\n");
    return 2;
  }
  // Arm the deterministic fault schedule (HCSIM_FAULT) before anything can
  // hit a fault point; a fresh daemon process starts with fresh counters.
  fault::reload_from_env();
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  Daemon d(opts);
  return d.run();
}

}  // namespace hcsim::svc
