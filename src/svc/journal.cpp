#include "svc/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <vector>

#include "svc/protocol.hpp"
#include "trace/wire.hpp"
#include "util/faultpoint.hpp"

namespace hcsim::svc {

namespace {

constexpr u32 kMagic = 0x314A4348;  // "HCJ1" little-endian
constexpr u32 kFileVersion = 1;
constexpr u32 kHeaderBytes = 8;
/// Sanity cap on one record; a length beyond it is corruption, not data.
constexpr u32 kMaxRecordBytes = 1u << 26;

bool write_fully(int fd, const u8* p, std::size_t n) {
  while (n > 0) {
    const ssize_t put = ::write(fd, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace

u32 crc32(const u8* data, std::size_t n) {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  u32 crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

bool Journal::valid() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0 && !failed_;
}

bool Journal::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    error_ = "journal already open";
    return false;
  }
  path_ = path;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    error_ = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }

  struct stat st{};
  if (::fstat(fd_, &st) != 0 || !S_ISREG(st.st_mode)) {
    error_ = path + " is not a regular file";
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  const u64 file_size = static_cast<u64>(st.st_size);

  if (file_size == 0) {
    // Fresh journal: stamp the header.
    u8 header[kHeaderBytes];
    wire::store_u32le(header, kMagic);
    wire::store_u32le(header + 4, kFileVersion);
    if (!write_fully(fd_, header, sizeof(header))) {
      error_ = "cannot write journal header: " + std::string(std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  std::vector<u8> bytes(file_size);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t got = ::read(fd_, bytes.data() + off, bytes.size() - off);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    off += static_cast<std::size_t>(got);
  }
  bytes.resize(off);

  // Never truncate a file we cannot positively identify as ours: a typo'd
  // --journal-dir must not eat foreign data.
  if (bytes.size() < kHeaderBytes || wire::load_u32le(bytes.data()) != kMagic) {
    error_ = path + " is not an hcsim journal (bad magic)";
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  if (wire::load_u32le(bytes.data() + 4) != kFileVersion) {
    error_ = path + ": unsupported journal version";
    ::close(fd_);
    fd_ = -1;
    return false;
  }

  // Scan records; stop at the first torn/corrupt one — everything after a
  // bad record is unreachable (lengths chain), so the valid prefix is all
  // there is to recover.
  u64 good_end = kHeaderBytes;
  std::size_t pos = kHeaderBytes;
  while (pos + 8 <= bytes.size()) {
    const u32 len = wire::load_u32le(bytes.data() + pos);
    const u32 crc = wire::load_u32le(bytes.data() + pos + 4);
    if (len == 0 || len > kMaxRecordBytes) break;
    if (pos + 8 + len > bytes.size()) break;  // torn tail
    const u8* payload = bytes.data() + pos + 8;
    if (crc32(payload, len) != crc) break;  // corrupt record
    wire::Reader r(payload, len);
    u64 id = 0;
    SimResult result;
    if (!r.get_u64(id) || !decode(r, result) || r.remaining() != 0) break;
    results_.emplace(id, std::move(result));
    ++recovered_;
    pos += 8 + len;
    good_end = pos;
  }

  if (good_end < bytes.size()) {
    dropped_bytes_ = bytes.size() - good_end;
    if (::ftruncate(fd_, static_cast<off_t>(good_end)) != 0) {
      error_ = "cannot truncate torn tail: " + std::string(std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
      return false;
    }
  }
  if (::lseek(fd_, static_cast<off_t>(good_end), SEEK_SET) < 0) {
    error_ = "cannot seek journal: " + std::string(std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool Journal::lookup(u64 job_id, SimResult& out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(job_id);
  if (it == results_.end()) return false;
  out = it->second;
  ++hits_;
  return true;
}

bool Journal::contains(u64 job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.count(job_id) != 0;
}

bool Journal::append(u64 job_id, const SimResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  return append_locked(job_id, result);
}

bool Journal::append_locked(u64 job_id, const SimResult& result) {
  if (fd_ < 0 || failed_) return false;
  if (results_.count(job_id) != 0) return true;  // already durable

  std::vector<u8> payload;
  wire::put_u64(payload, job_id);
  encode(payload, result);

  std::vector<u8> record;
  record.reserve(8 + payload.size());
  wire::put_u32(record, static_cast<u32>(payload.size()));
  wire::put_u32(record, crc32(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());

  if (fault::enabled() && fault::fire("journal.append.torn")) {
    // Simulate a crash mid-write: half the record lands on disk and the
    // journal declares itself broken (a real crash would take the process).
    write_fully(fd_, record.data(), record.size() / 2);
    failed_ = true;
    error_ = "injected torn append";
    return false;
  }

  // One write(2) for the whole record: a crash tears at most this record,
  // which recovery detects by length/CRC and truncates.
  if (!write_fully(fd_, record.data(), record.size())) {
    failed_ = true;
    error_ = "journal append failed: " + std::string(std::strerror(errno));
    return false;
  }
  results_.emplace(job_id, result);
  return true;
}

std::size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

u64 Journal::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

u64 Journal::recovered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_;
}

u64 Journal::dropped_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_bytes_;
}

}  // namespace hcsim::svc
