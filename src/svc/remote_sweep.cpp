#include "svc/remote_sweep.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "power/power_model.hpp"
#include "sample/spec.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "util/rng.hpp"

namespace hcsim::svc {

namespace {

/// Capped exponential backoff with deterministic jitter (splitmix64 of the
/// global attempt counter, so retry schedules are reproducible in tests but
/// two clients hammering one socket still spread out).
u64 backoff_delay_ms(const FtSweepOptions& opts, unsigned attempt, u64 salt) {
  const unsigned shift = attempt > 0 ? attempt - 1 : 0;
  u64 delay = opts.backoff_cap_ms;
  if (shift < 63) {
    const u64 grown = opts.backoff_base_ms << shift;
    // Detect overflow of the shift as well as exceeding the cap.
    if ((grown >> shift) == opts.backoff_base_ms)
      delay = std::min<u64>(opts.backoff_cap_ms, grown);
  }
  u64 state = 0x9E3779B97F4A7C15ULL ^ (salt * 0x100000001B3ULL + attempt);
  const u64 jitter = delay > 0 ? splitmix64(state) % (delay / 2 + 1) : 0;
  return delay + jitter;
}

size_t encoded_size(const JobRequest& req) {
  std::vector<u8> buf;
  encode(buf, req);
  return buf.size();
}

/// Greedy chunking so each kRunJobs payload (u32 count + requests) stays
/// under the daemon's request-frame cap with headroom to spare.
std::vector<std::vector<JobRequest>> chunk_jobs(const std::vector<JobRequest>& jobs) {
  constexpr size_t kBudget = kMaxRequestFrame - 64;
  constexpr size_t kMaxPerBatch = 4096;  // daemon-side count cap
  std::vector<std::vector<JobRequest>> batches;
  size_t used = 4;  // the count prefix
  for (const JobRequest& req : jobs) {
    const size_t sz = encoded_size(req);
    if (batches.empty() || used + sz > kBudget ||
        batches.back().size() >= kMaxPerBatch) {
      batches.emplace_back();
      used = 4;
    }
    batches.back().push_back(req);
    used += sz;
  }
  return batches;
}

}  // namespace

FtStatus run_sweep_ft(const exp::SweepSpec& spec, const FtSweepOptions& opts,
                      exp::SweepResult& out, FtSweepStats& stats,
                      std::string& error) {
  out = exp::SweepResult{};
  stats = FtSweepStats{};
  error.clear();
  const auto logf = [&opts](const std::string& msg) {
    if (opts.log) opts.log(msg);
  };

  // Resolve the sample spec up front with the same defaulting the daemon
  // applies, so the local fallback and the remote path run identical windows.
  sample::SampleSpec sample_spec;
  if (opts.sampled) {
    sample_spec.warmup = opts.warmup != 0 ? opts.warmup : sample::kDefaultWarmup;
    sample_spec.measure =
        opts.measure != 0 ? opts.measure : sample::kDefaultMeasure;
    sample_spec.period = opts.period;
    sample_spec.max_windows = opts.max_windows;
    if (sample_spec.period != 0 &&
        sample_spec.period < sample_spec.warmup + sample_spec.measure) {
      error = "sample period smaller than warmup + measure";
      return FtStatus::kBadSpec;
    }
  }

  const std::vector<exp::ExperimentPoint> points = exp::expand(spec);
  if (points.empty()) {
    error = "sweep '" + spec.name + "' expands to zero points";
    return FtStatus::kBadSpec;
  }

  // Expand the grid into content-addressed jobs, mirroring exp::run_sweep:
  // one baseline job per (workload, seed, len) cell plus one job per point.
  // Jobs are deduplicated by id — a variant whose machine equals the
  // baseline collapses onto the cell job.
  JobRequest proto;
  proto.sampled = opts.sampled;
  proto.warmup = opts.warmup;
  proto.measure = opts.measure;
  proto.period = opts.period;
  proto.max_windows = opts.max_windows;

  std::vector<JobRequest> jobs;        // unique, stable submission order
  std::unordered_map<u64, u32> job_of;  // id -> index in `jobs`
  const auto add_job = [&](const MachineConfig& config,
                           const WorkloadProfile& profile, u64 n_records) {
    JobRequest req = proto;
    req.config = config;
    req.profile = profile;
    req.n_records = n_records;
    const u64 id = job_id(req);
    if (job_of.emplace(id, static_cast<u32>(jobs.size())).second)
      jobs.push_back(std::move(req));
    return id;
  };

  std::map<std::tuple<u32, u32, u32>, u64> cell_job;  // cell key -> job id
  std::vector<u64> point_baseline_job(points.size());
  std::vector<u64> point_job(points.size());
  for (const exp::ExperimentPoint& p : points) {
    const auto key = std::make_tuple(p.workload_idx, p.seed_idx, p.len_idx);
    auto it = cell_job.find(key);
    if (it == cell_job.end())
      it = cell_job.emplace(key, add_job(spec.baseline, p.profile, p.n_records))
               .first;
    point_baseline_job[p.index] = it->second;
    point_job[p.index] = add_job(p.variant.machine, p.profile, p.n_records);
  }
  stats.jobs = jobs.size();

  // Client journal: everything completed by a previous attempt — local or
  // remote — is already durable here and costs nothing to "re-run".
  Journal journal;
  bool have_journal = false;
  if (!opts.journal_dir.empty()) {
    ::mkdir(opts.journal_dir.c_str(), 0755);  // single level; EEXIST is fine
    if (journal.open(opts.journal_dir + "/client.journal")) {
      have_journal = true;
      if (journal.dropped_bytes() > 0)
        logf("client journal: dropped " +
             std::to_string(journal.dropped_bytes()) + " torn tail bytes");
    } else {
      logf("WARNING: client journal unusable (" + journal.error() +
           "); continuing without local durability");
    }
  }

  std::mutex results_mu;
  std::unordered_map<u64, SimResult> results;
  enum class Source { kClientJournal, kRemote, kRemoteJournal, kLocal };
  const auto record = [&](u64 id, const SimResult& res, Source src) {
    std::lock_guard<std::mutex> lock(results_mu);
    if (!results.emplace(id, res).second) return;
    switch (src) {
      case Source::kClientJournal: ++stats.client_journal_hits; break;
      case Source::kRemote: ++stats.remote_jobs; break;
      case Source::kRemoteJournal:
        ++stats.remote_jobs;
        ++stats.daemon_journal_hits;
        break;
      case Source::kLocal: ++stats.local_jobs; break;
    }
    if (src != Source::kClientJournal && have_journal) journal.append(id, res);
  };
  const auto missing_jobs = [&] {
    std::vector<JobRequest> pending;
    std::lock_guard<std::mutex> lock(results_mu);
    for (const JobRequest& req : jobs)
      if (results.count(job_id(req)) == 0) pending.push_back(req);
    return pending;
  };

  if (have_journal) {
    for (const JobRequest& req : jobs) {
      SimResult res;
      const u64 id = job_id(req);
      if (journal.lookup(id, res)) record(id, res, Source::kClientJournal);
    }
  }

  // --- layer 2: the daemon, reconnecting across transport failures --------
  const unsigned attempts_per_cycle = std::max(1u, opts.retries);
  bool remote_exhausted = false;
  if (!opts.socket_path.empty()) {
    bool connected_before = false;
    unsigned dry_cycles = 0;  // consecutive reconnect cycles with no progress
    for (;;) {
      std::vector<JobRequest> pending = missing_jobs();
      if (pending.empty()) break;

      Client client;
      for (unsigned attempt = 1; attempt <= attempts_per_cycle; ++attempt) {
        ++stats.connect_attempts;
        client = Client::connect(opts.socket_path);
        if (client.ok()) break;
        logf("connect attempt " + std::to_string(attempt) + "/" +
             std::to_string(attempts_per_cycle) + " failed: " + client.error());
        if (attempt < attempts_per_cycle)
          std::this_thread::sleep_for(std::chrono::milliseconds(
              backoff_delay_ms(opts, attempt, stats.connect_attempts)));
      }
      if (!client.ok()) {
        remote_exhausted = true;
        break;
      }
      if (connected_before) ++stats.reconnects;
      connected_before = true;
      client.set_timeout_ms(opts.timeout_ms);

      const size_t before = pending.size();
      bool transport_died = false;
      for (const std::vector<JobRequest>& batch : chunk_jobs(pending)) {
        JobsDone done;
        std::string batch_err;
        const Client::BatchStatus st = client.run_jobs(
            batch,
            [&](const JobResponse& resp) {
              record(resp.job_id, resp.result,
                     resp.from_journal ? Source::kRemoteJournal : Source::kRemote);
            },
            done, batch_err);
        if (st == Client::BatchStatus::kDone) continue;
        if (st == Client::BatchStatus::kRemoteError) {
          error = "daemon rejected job batch: " + batch_err;
          return FtStatus::kBadSpec;
        }
        logf("connection lost (" + batch_err + "); will resubmit " +
             std::to_string(missing_jobs().size()) + " unfinished job(s)");
        transport_died = true;
        break;
      }
      if (!transport_died) continue;  // loop re-checks what is still missing

      const size_t after = missing_jobs().size();
      if (after >= before) {
        if (++dry_cycles >= attempts_per_cycle) {
          remote_exhausted = true;
          break;
        }
      } else {
        dry_cycles = 0;
      }
    }
  }

  // --- layer 3: in-process fallback for whatever is still missing ---------
  std::vector<JobRequest> pending = missing_jobs();
  unsigned threads = opts.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  if (!pending.empty()) {
    if (remote_exhausted && !opts.allow_fallback) {
      error = "daemon unreachable after " + std::to_string(attempts_per_cycle) +
              " attempt(s) and fallback disabled; " +
              std::to_string(pending.size()) + " job(s) unfinished";
      return FtStatus::kTransportFailed;
    }
    if (remote_exhausted)
      logf("daemon unreachable; computing " + std::to_string(pending.size()) +
           " remaining job(s) in-process");

    sample::set_active_sample_spec(sample_spec);
    const auto run_one = [&](const JobRequest& req) {
      record(job_id(req), simulate_workload(req.config, req.profile, req.n_records),
             Source::kLocal);
    };
    if (threads <= 1) {
      for (const JobRequest& req : pending) run_one(req);
    } else {
      exp::ThreadPool pool(threads);
      std::mutex mu;
      std::condition_variable cv;
      std::size_t left = pending.size();
      for (const JobRequest& req : pending)
        pool.submit([&, &req = req] {
          run_one(req);
          std::lock_guard<std::mutex> lock(mu);
          if (--left == 0) cv.notify_all();
        });
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&left] { return left == 0; });
    }
    sample::set_active_sample_spec(sample::SampleSpec{});
  }

  // --- assemble the SweepResult in grid order -----------------------------
  out.sweep = spec.name;
  out.threads_used = threads;
  out.points.resize(points.size());
  for (const exp::ExperimentPoint& p : points) {
    const auto base_it = results.find(point_baseline_job[p.index]);
    const auto sim_it = results.find(point_job[p.index]);
    if (base_it == results.end() || sim_it == results.end()) {
      error = "internal: job results missing after execution";
      return FtStatus::kTransportFailed;
    }
    exp::PointResult pr;
    pr.point = p;
    pr.baseline = base_it->second;
    pr.sim = sim_it->second;
    pr.power_baseline = analyze_power(pr.baseline, spec.baseline);
    pr.power_sim = analyze_power(pr.sim, p.variant.machine);
    out.points[p.index] = std::move(pr);
  }
  return FtStatus::kOk;
}

}  // namespace hcsim::svc
