// hcsim — hcsimd's listen/serve loop.
//
// Lifecycle (documented in docs/PROTOCOL.md):
//   1. bind + listen on a Unix-domain socket (stale socket files are
//      replaced);
//   2. accept one connection at a time — sweep jobs are serialized by the
//      SweepService anyway, and the kernel backlog queues waiting clients;
//   3. per connection, answer frames until EOF, a framing error, or
//      `conn_idle_timeout_ms` of silence (semantic errors are answered with
//      kError and the connection survives);
//   4. exit on kShutdown, SIGINT/SIGTERM, or after `idle_timeout_ms` with no
//      client and no live trace-bus segment. Shutdown unlinks the socket and
//      closes + unlinks every shm segment the daemon created.
#pragma once

#include <string>

#include "util/types.hpp"

namespace hcsim::svc {

struct DaemonOptions {
  std::string socket_path;
  /// Worker threads for the shared sweep pool; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Exit after this long with nothing to do; 0 = run until kShutdown or a
  /// signal.
  u64 idle_timeout_ms = 0;
  /// kServeTrace ring segments must be plain filenames directly inside this
  /// directory — shm_path is client-controlled, and confining it keeps a
  /// hostile request from touching anything else the daemon can write.
  std::string shm_dir = "/dev/shm";
  /// Drop a connection that sends nothing for this long, so one idle client
  /// cannot starve the accept loop (connections are served one at a time).
  /// 0 disables the limit.
  u64 conn_idle_timeout_ms = 60000;
  /// Non-empty: persist completed kRunJobs results to
  /// `<journal_dir>/daemon.journal` and recover them on startup, so a
  /// crashed daemon serves re-submitted jobs from disk instead of
  /// recomputing (docs/PROTOCOL.md, "Job ids and the journal").
  std::string journal_dir;
};

/// Run the daemon until shutdown. Returns a process exit code.
int run_daemon(const DaemonOptions& opts);

}  // namespace hcsim::svc
