#include "svc/io.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "util/faultpoint.hpp"
#include "util/types.hpp"

namespace hcsim::svc::io {

namespace {

/// Absolute deadline so retries (EINTR, EAGAIN, injected faults) never
/// extend the caller's budget.
class Deadline {
 public:
  explicit Deadline(int timeout_ms) : infinite_(timeout_ms < 0) {
    if (!infinite_)
      end_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  }

  /// Remaining budget as a poll() timeout: -1 = infinite, 0 = expired.
  int remaining_ms() const {
    if (infinite_) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          end_ - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return 0;
    return static_cast<int>(std::min<long long>(left, 1 << 30));
  }

 private:
  bool infinite_;
  std::chrono::steady_clock::time_point end_;
};

int poll_wait(int fd, short events, const Deadline& dl,
              const std::atomic<bool>* interrupt) {
  for (;;) {
    if (fault::enabled() && fault::fire("sock.poll.eintr")) {
      // Simulated EINTR: take the same path a real signal would.
      if (interrupt != nullptr && interrupt->load(std::memory_order_relaxed)) return -1;
      continue;
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int r = ::poll(&p, 1, dl.remaining_ms());
    if (r < 0) {
      if (errno == EINTR) {
        if (interrupt != nullptr && interrupt->load(std::memory_order_relaxed))
          return -1;
        continue;
      }
      return -1;
    }
    if (r == 0) return 0;
    if (p.revents & POLLNVAL) return -1;
    // POLLERR/POLLHUP count as ready: the next recv/send surfaces the
    // error or EOF, which is how callers learn what happened.
    return 1;
  }
}

}  // namespace

Status read_exact(int fd, void* buf, std::size_t n, int timeout_ms) {
  const Deadline dl(timeout_ms);
  u8* p = static_cast<u8*>(buf);
  while (n > 0) {
    if (fault::enabled()) {
      if (fault::fire("sock.read.reset")) {
        errno = ECONNRESET;
        return Status::kError;
      }
      if (fault::fire("sock.read.eintr")) continue;  // simulated EINTR: retry
    }
    std::size_t chunk = n;
    if (fault::enabled() && fault::fire("sock.read.short")) chunk = 1;
    const ssize_t got = ::recv(fd, p, chunk, MSG_DONTWAIT);
    if (got > 0) {
      p += got;
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return Status::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int r = poll_wait(fd, POLLIN, dl, nullptr);
      if (r == 0) return Status::kTimeout;
      if (r < 0) return Status::kError;
      continue;
    }
    return Status::kError;
  }
  return Status::kOk;
}

Status write_all(int fd, const void* buf, std::size_t n, int timeout_ms) {
  const Deadline dl(timeout_ms);
  const u8* p = static_cast<const u8*>(buf);
  while (n > 0) {
    if (fault::enabled()) {
      if (fault::fire("sock.write.reset")) {
        errno = ECONNRESET;
        return Status::kError;
      }
      if (fault::fire("sock.write.eintr")) continue;
    }
    std::size_t chunk = n;
    if (fault::enabled() && fault::fire("sock.write.short")) chunk = 1;
    // MSG_NOSIGNAL: a departed peer must surface as an error, not SIGPIPE.
    const ssize_t put = ::send(fd, p, chunk, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (put > 0) {
      p += put;
      n -= static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int r = poll_wait(fd, POLLOUT, dl, nullptr);
      if (r == 0) return Status::kTimeout;
      if (r < 0) return Status::kError;
      continue;
    }
    return Status::kError;
  }
  return Status::kOk;
}

int poll_in(int fd, int timeout_ms, const std::atomic<bool>* interrupt) {
  const Deadline dl(timeout_ms);
  return poll_wait(fd, POLLIN, dl, interrupt);
}

}  // namespace hcsim::svc::io
