// hcsim — framed Unix-socket protocol between hcsimd and its clients.
//
// Every message is one frame:
//
//   [u32 len] [u8 type] [len-1 bytes payload]
//
// `len` counts the type byte plus the payload, so len >= 1. Payloads use
// the trace/wire.hpp packing (little-endian, length-prefixed strings), the
// same encoding the trace bus and the v3 trace files use. The full schema
// lives in docs/PROTOCOL.md.
//
// Error handling contract (the daemon must survive hostile clients):
//   - semantic errors (unknown sweep, undecodable payload, unsupported
//     version) get a kError reply and the connection stays usable;
//   - framing errors (oversized or short frames) poison the byte stream,
//     so the daemon closes the connection — but never exits.
#pragma once

#include <string>
#include <vector>

#include "core/machine_config.hpp"
#include "core/sim_result.hpp"
#include "trace/wire.hpp"
#include "util/types.hpp"
#include "wload/profile.hpp"

namespace hcsim::svc {

inline constexpr u32 kProtocolVersion = 1;

/// Client -> daemon frames are small (requests carry names and scalars).
inline constexpr u32 kMaxRequestFrame = 1u << 16;
/// Daemon -> client frames carry whole CSV/JSON reports.
inline constexpr u32 kMaxResponseFrame = 1u << 26;

enum FrameType : u8 {
  // client -> daemon
  kSweep = 0x01,       // SweepRequest; answered with kResult or kError
  kListSweeps = 0x02,  // answered with kSweepList
  kPing = 0x03,        // answered with kPong (liveness probe)
  kCancel = 0x04,      // cancel the in-flight job (no reply of its own)
  kShutdown = 0x05,    // answered with kBye, then the daemon exits
  kServeTrace = 0x06,  // ServeTraceRequest; answered with kServing or kError
  kRunJobs = 0x07,     // u32 n + n JobRequests; answered with a kJobResult
                       // stream (completion order) closed by kJobsDone

  // daemon -> client
  kResult = 0x81,     // SweepResponse
  kSweepList = 0x82,  // u32 n, then n strings
  kPong = 0x83,
  kBye = 0x84,
  kError = 0x85,    // string message
  kServing = 0x86,  // trace bus is up on the requested shm path
  kJobResult = 0x87,  // JobResponse (one per job, any order)
  kJobsDone = 0x88,   // u64 jobs completed, u64 journal hits in the batch
};

struct Frame {
  u8 type = 0;
  std::vector<u8> payload;
};

/// Read one frame. False on EOF, socket error, a length outside
/// [1, max_frame], or after `timeout_ms` (< 0 = block forever) — the stream
/// is unusable afterwards; `err` (when non-null) distinguishes clean EOF
/// ("") from corruption/timeout.
bool read_frame(int fd, Frame& frame, u32 max_frame, std::string* err = nullptr,
                int timeout_ms = -1);

/// Write one frame (SIGPIPE-safe). False when the peer is gone or the
/// deadline expires mid-frame.
bool write_frame(int fd, u8 type, const std::vector<u8>& payload,
                 int timeout_ms = -1);

/// Convenience: kError frame with a message.
bool write_error(int fd, const std::string& msg);

// --- kSweep -----------------------------------------------------------------

/// One sweep job. Zero/empty fields mean "the sweep's own default", exactly
/// like the corresponding hcsim_sweep flags.
struct SweepRequest {
  u32 version = kProtocolVersion;
  std::string sweep;       // registry name (fig06, smoke, ...)
  u64 trace_len = 0;       // 0 = spec default
  std::vector<u64> seeds;  // empty = spec default
  bool sampled = false;    // warm-up/measure windowed simulation
  u64 warmup = 0;          // sample spec (meaningful when sampled)
  u64 measure = 0;
  u64 period = 0;
  u64 max_windows = 0;
  bool want_csv = false;
  bool want_json = false;
};

void encode(std::vector<u8>& buf, const SweepRequest& req);
bool decode(wire::Reader& r, SweepRequest& req);

// --- kResult ----------------------------------------------------------------

struct SweepResponse {
  std::string summary;  // exp::render_summary text
  std::string csv;      // empty unless requested; byte-identical to to_csv
  std::string json;     // empty unless requested
  u64 n_points = 0;
  u32 threads_used = 1;
  u64 wall_ms = 0;
};

void encode(std::vector<u8>& buf, const SweepResponse& resp);
bool decode(wire::Reader& r, SweepResponse& resp);

// --- kServeTrace ------------------------------------------------------------

/// Ask the daemon to host a trace-bus producer: it creates a ShmRing at
/// `shm_path` and runs serve_trace_ranges on it until the consumer departs
/// (or the daemon shuts down — idle shutdown closes and unlinks every
/// segment it owns).
struct ServeTraceRequest {
  u32 version = kProtocolVersion;
  std::string shm_path;
  u64 ring_capacity = 0;  // 0 = default (1 MiB)
  std::string workload;   // "rv:<kernel>" or a SPEC profile name
  u64 seed = 0;           // 0 = profile's own seed
  u64 trace_len = 0;      // 0 = default_trace_len()
};

void encode(std::vector<u8>& buf, const ServeTraceRequest& req);
bool decode(wire::Reader& r, ServeTraceRequest& req);

// --- kSweepList -------------------------------------------------------------

void encode_sweep_list(std::vector<u8>& buf, const std::vector<std::string>& names);
bool decode_sweep_list(wire::Reader& r, std::vector<std::string>& names);

// --- value codecs (kRunJobs payloads + the job journal) ---------------------
// Canonical little-endian encodings of the simulation inputs and outputs.
// Field order is part of the format: job ids are content hashes over these
// bytes, and the journal persists them — change them only with a version
// bump (kProtocolVersion for frames, Journal's file version for the log).
// Doubles travel as IEEE-754 bit patterns, so encode/decode round-trips are
// exact and the bytes are identical on every host.

void encode(std::vector<u8>& buf, const MachineConfig& cfg);
bool decode(wire::Reader& r, MachineConfig& cfg);

void encode(std::vector<u8>& buf, const WorkloadProfile& profile);
bool decode(wire::Reader& r, WorkloadProfile& profile);

void encode(std::vector<u8>& buf, const SimResult& result);
bool decode(wire::Reader& r, SimResult& result);

// --- kRunJobs ---------------------------------------------------------------

/// One simulation job, fully self-contained: unlike kSweep (which names a
/// registry entry), the request carries the machine config, the workload
/// profile and the sampling window spec, so any daemon computes the same
/// result regardless of its local registry — the property that makes jobs
/// journal-addressable and re-submittable anywhere.
struct JobRequest {
  u32 version = kProtocolVersion;
  MachineConfig config;
  WorkloadProfile profile;
  u64 n_records = 0;  // resolved trace length (never 0 on the wire)
  // Sampling window spec; all jobs of one kRunJobs batch must agree (the
  // active spec is process-global on the daemon).
  bool sampled = false;
  u64 warmup = 0;
  u64 measure = 0;
  u64 period = 0;
  u64 max_windows = 0;
};

void encode(std::vector<u8>& buf, const JobRequest& req);
bool decode(wire::Reader& r, JobRequest& req);

/// Stable content-addressed job identity: FNV-1a 64 over the canonical
/// encoding of everything that determines the result (config, profile,
/// n_records, sample spec — not the protocol version). Two processes that
/// would simulate the same point compute the same id, which is what lets a
/// restarted daemon or client recognise already-journaled work.
u64 job_id(const JobRequest& req);

struct JobResponse {
  u64 job_id = 0;
  bool from_journal = false;  // served from the journal, not recomputed
  SimResult result;
};

void encode(std::vector<u8>& buf, const JobResponse& resp);
bool decode(wire::Reader& r, JobResponse& resp);

/// kJobsDone payload: how the batch went.
struct JobsDone {
  u64 completed = 0;
  u64 journal_hits = 0;
};

void encode(std::vector<u8>& buf, const JobsDone& done);
bool decode(wire::Reader& r, JobsDone& done);

}  // namespace hcsim::svc
