// hcsim — framed Unix-socket protocol between hcsimd and its clients.
//
// Every message is one frame:
//
//   [u32 len] [u8 type] [len-1 bytes payload]
//
// `len` counts the type byte plus the payload, so len >= 1. Payloads use
// the trace/wire.hpp packing (little-endian, length-prefixed strings), the
// same encoding the trace bus and the v3 trace files use. The full schema
// lives in docs/PROTOCOL.md.
//
// Error handling contract (the daemon must survive hostile clients):
//   - semantic errors (unknown sweep, undecodable payload, unsupported
//     version) get a kError reply and the connection stays usable;
//   - framing errors (oversized or short frames) poison the byte stream,
//     so the daemon closes the connection — but never exits.
#pragma once

#include <string>
#include <vector>

#include "trace/wire.hpp"
#include "util/types.hpp"

namespace hcsim::svc {

inline constexpr u32 kProtocolVersion = 1;

/// Client -> daemon frames are small (requests carry names and scalars).
inline constexpr u32 kMaxRequestFrame = 1u << 16;
/// Daemon -> client frames carry whole CSV/JSON reports.
inline constexpr u32 kMaxResponseFrame = 1u << 26;

enum FrameType : u8 {
  // client -> daemon
  kSweep = 0x01,       // SweepRequest; answered with kResult or kError
  kListSweeps = 0x02,  // answered with kSweepList
  kPing = 0x03,        // answered with kPong (liveness probe)
  kCancel = 0x04,      // cancel the in-flight job (no reply of its own)
  kShutdown = 0x05,    // answered with kBye, then the daemon exits
  kServeTrace = 0x06,  // ServeTraceRequest; answered with kServing or kError

  // daemon -> client
  kResult = 0x81,     // SweepResponse
  kSweepList = 0x82,  // u32 n, then n strings
  kPong = 0x83,
  kBye = 0x84,
  kError = 0x85,    // string message
  kServing = 0x86,  // trace bus is up on the requested shm path
};

struct Frame {
  u8 type = 0;
  std::vector<u8> payload;
};

/// Read one frame (blocking). False on EOF, socket error, or a length
/// outside [1, max_frame] — the stream is unusable afterwards; `err` (when
/// non-null) distinguishes clean EOF ("") from corruption.
bool read_frame(int fd, Frame& frame, u32 max_frame, std::string* err = nullptr);

/// Write one frame (blocking, SIGPIPE-safe). False when the peer is gone.
bool write_frame(int fd, u8 type, const std::vector<u8>& payload);

/// Convenience: kError frame with a message.
bool write_error(int fd, const std::string& msg);

// --- kSweep -----------------------------------------------------------------

/// One sweep job. Zero/empty fields mean "the sweep's own default", exactly
/// like the corresponding hcsim_sweep flags.
struct SweepRequest {
  u32 version = kProtocolVersion;
  std::string sweep;       // registry name (fig06, smoke, ...)
  u64 trace_len = 0;       // 0 = spec default
  std::vector<u64> seeds;  // empty = spec default
  bool sampled = false;    // warm-up/measure windowed simulation
  u64 warmup = 0;          // sample spec (meaningful when sampled)
  u64 measure = 0;
  u64 period = 0;
  u64 max_windows = 0;
  bool want_csv = false;
  bool want_json = false;
};

void encode(std::vector<u8>& buf, const SweepRequest& req);
bool decode(wire::Reader& r, SweepRequest& req);

// --- kResult ----------------------------------------------------------------

struct SweepResponse {
  std::string summary;  // exp::render_summary text
  std::string csv;      // empty unless requested; byte-identical to to_csv
  std::string json;     // empty unless requested
  u64 n_points = 0;
  u32 threads_used = 1;
  u64 wall_ms = 0;
};

void encode(std::vector<u8>& buf, const SweepResponse& resp);
bool decode(wire::Reader& r, SweepResponse& resp);

// --- kServeTrace ------------------------------------------------------------

/// Ask the daemon to host a trace-bus producer: it creates a ShmRing at
/// `shm_path` and runs serve_trace_ranges on it until the consumer departs
/// (or the daemon shuts down — idle shutdown closes and unlinks every
/// segment it owns).
struct ServeTraceRequest {
  u32 version = kProtocolVersion;
  std::string shm_path;
  u64 ring_capacity = 0;  // 0 = default (1 MiB)
  std::string workload;   // "rv:<kernel>" or a SPEC profile name
  u64 seed = 0;           // 0 = profile's own seed
  u64 trace_len = 0;      // 0 = default_trace_len()
};

void encode(std::vector<u8>& buf, const ServeTraceRequest& req);
bool decode(wire::Reader& r, ServeTraceRequest& req);

// --- kSweepList -------------------------------------------------------------

void encode_sweep_list(std::vector<u8>& buf, const std::vector<std::string>& names);
bool decode_sweep_list(wire::Reader& r, std::vector<std::string>& names);

}  // namespace hcsim::svc
