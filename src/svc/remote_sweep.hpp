// hcsim — fault-tolerant sweep execution over the hcsimd job protocol.
//
// run_sweep_ft() expands a sweep into content-addressed jobs (job_id of
// svc/protocol.hpp), then drains them through up to three layers, cheapest
// first:
//   1. the client journal (`<journal_dir>/client.journal`) — jobs a previous
//      run of this process already completed cost nothing;
//   2. the daemon, in batched kRunJobs frames, reconnecting with capped
//      exponential backoff whenever the transport dies mid-batch (the daemon
//      journals the remainder, so the re-submission is served from disk);
//   3. an in-process fallback that computes only the still-missing jobs when
//      the daemon stays unreachable (disable with allow_fallback = false).
// Every result, whatever layer produced it, is appended to the client
// journal before use. Because each job is a pure function of its request,
// the assembled SweepResult — and therefore exp::to_csv() — is byte-
// identical to an uninterrupted in-process run no matter how many times the
// daemon or the connection died along the way.
#pragma once

#include <functional>
#include <string>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "util/types.hpp"

namespace hcsim::svc {

struct FtSweepOptions {
  /// Daemon socket. Empty = skip the remote layer entirely (journaled local
  /// run: still dedupes against the client journal).
  std::string socket_path;
  /// Directory for the client journal. Empty = no client-side durability.
  std::string journal_dir;
  /// Threads for the in-process fallback; 0 = hardware concurrency,
  /// 1 = serial.
  unsigned threads = 1;
  /// Connect attempts per (re)connect cycle, and the cap on consecutive
  /// zero-progress reconnect cycles before the remote layer is abandoned.
  unsigned retries = 5;
  /// Backoff between connect attempts: min(cap, base << (attempt-1)) plus
  /// deterministic jitter.
  u64 backoff_base_ms = 100;
  u64 backoff_cap_ms = 5000;
  /// Per-frame client deadline, in ms; -1 blocks forever.
  int timeout_ms = -1;
  /// When the daemon stays unreachable: true = compute the remainder
  /// in-process, false = fail with kTransportFailed.
  bool allow_fallback = true;
  /// Sampling spec applied to every job (one sweep = one spec).
  bool sampled = false;
  u64 warmup = 0, measure = 0, period = 0, max_windows = 0;
  /// Progress / retry diagnostics (the CLI wires this to stderr). Null = quiet.
  std::function<void(const std::string&)> log;
};

/// Where the work actually happened, for logging and the recovery tests.
struct FtSweepStats {
  u64 jobs = 0;                 // unique jobs in the expanded sweep
  u64 client_journal_hits = 0;  // served from the local journal, no I/O
  u64 daemon_journal_hits = 0;  // daemon replied from_journal
  u64 remote_jobs = 0;          // results received over the socket
  u64 local_jobs = 0;           // computed by the in-process fallback
  u64 reconnects = 0;           // successful connects beyond the first
  u64 connect_attempts = 0;     // every ::connect tried, failed or not
};

enum class FtStatus {
  kOk,
  /// Transport exhausted and fallback disabled — the sweep is incomplete
  /// (completed jobs are still in the client journal for the next attempt).
  kTransportFailed,
  /// The daemon rejected the batch outright (version skew, malformed spec) —
  /// retrying cannot help.
  kBadSpec,
};

/// Execute `spec` fault-tolerantly. On kOk, `out` matches exp::run_sweep()
/// of the same spec bit-for-bit.
FtStatus run_sweep_ft(const exp::SweepSpec& spec, const FtSweepOptions& opts,
                      exp::SweepResult& out, FtSweepStats& stats,
                      std::string& error);

}  // namespace hcsim::svc
