#include "rv/exec.hpp"

#include <algorithm>
#include <sstream>

namespace hcsim::rv {
namespace {

std::string hex(u32 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

RvMachine::RvMachine(const RvProgram& prog, const ExecLimits& limits)
    : prog_(&prog), limits_(limits) {
  if (prog.text_bytes == 0 || prog.text_bytes % 4 != 0) {
    error_ = "program has no (word-aligned) text";
    return;
  }
  if (prog.image.size() > limits.mem_bytes) {
    error_ = "image larger than memory";
    return;
  }

  // Pre-decode the text section once; the image is not self-modifying (a
  // store into text traps below).
  const u32 n_insts = prog.num_insts();
  code_.resize(n_insts);
  for (u32 i = 0; i < n_insts; ++i) code_[i] = decode(prog.inst_word(i * 4));

  mem_.assign(limits.mem_bytes, 0);
  std::copy(prog.image.begin(), prog.image.end(), mem_.begin());

  x_[1] = kRvHaltAddr;              // ra: top-level `ret` halts
  x_[2] = limits.mem_bytes & ~15u;  // sp: 16-byte aligned stack top
}

RvMachine::Outcome RvMachine::trap(const std::string& msg) {
  error_ = "pc=" + hex(pc_) + ": " + msg;
  return Outcome::kTrapped;
}

RvMachineState RvMachine::save() const {
  RvMachineState s;
  s.regs = x_;
  s.mem = mem_;
  s.pc = pc_;
  s.steps = steps_;
  s.completed = completed_;
  s.error = error_;
  return s;
}

void RvMachine::restore(const RvMachineState& s) {
  x_ = s.regs;
  mem_ = s.mem;
  pc_ = s.pc;
  steps_ = s.steps;
  completed_ = s.completed;
  error_ = s.error;
}

RvMachine::Outcome RvMachine::step(RvStep& out) {
  if (!error_.empty()) return Outcome::kTrapped;
  if (completed_) return Outcome::kHalted;
  if (steps_ >= limits_.max_steps) return Outcome::kBudget;
  if (pc_ == kRvHaltAddr) {
    completed_ = true;
    return Outcome::kHalted;
  }
  if (pc_ >= prog_->text_bytes || pc_ % 4 != 0)
    return trap("instruction fetch outside text");
  const RvInst& in = code_[pc_ / 4];
  if (in.op == RvOp::kIllegal)
    return trap("illegal instruction " + hex(prog_->inst_word(pc_)));

  const u32 pc = pc_;
  out = RvStep{};
  out.pc = pc;
  out.inst = in;
  const u32 a = x_[in.rs1];
  const u32 b = x_[in.rs2];
  out.rs1_val = a;
  out.rs2_val = b;
  const u32 imm = static_cast<u32>(in.imm);

  u32 result = 0;
  bool wrote_rd = true;
  u32 next_pc = pc + 4;

  // Bounds- and alignment-checked memory access. Stores into the text
  // prefix trap: the executor pre-decodes and does not model i-fetch from
  // dirty lines.
  auto check_addr = [&](u32 addr, unsigned n, bool store) -> bool {
    if (addr % n != 0) {
      trap("unaligned " + std::to_string(n) + "-byte access at " + hex(addr));
      return false;
    }
    if (addr > limits_.mem_bytes - n) {
      trap("memory access out of bounds at " + hex(addr));
      return false;
    }
    if (store && addr < prog_->text_bytes) {
      trap("store into text at " + hex(addr));
      return false;
    }
    return true;
  };
  auto load_n = [&](u32 addr, unsigned n) {
    u32 v = 0;
    for (unsigned i = 0; i < n; ++i) v |= static_cast<u32>(mem_[addr + i]) << (8 * i);
    return v;
  };
  auto store_n = [&](u32 addr, unsigned n, u32 v) {
    for (unsigned i = 0; i < n; ++i) mem_[addr + i] = static_cast<u8>(v >> (8 * i));
  };

  switch (in.op) {
    case RvOp::kLui: result = imm; break;
    case RvOp::kAuipc: result = pc + imm; break;
    case RvOp::kJal:
      result = pc + 4;
      out.taken = true;
      next_pc = pc + imm;
      break;
    case RvOp::kJalr:
      result = pc + 4;
      out.taken = true;
      next_pc = (a + imm) & ~1u;
      break;
    case RvOp::kBeq:
    case RvOp::kBne:
    case RvOp::kBlt:
    case RvOp::kBge:
    case RvOp::kBltu:
    case RvOp::kBgeu: {
      bool taken = false;
      switch (in.op) {
        case RvOp::kBeq: taken = a == b; break;
        case RvOp::kBne: taken = a != b; break;
        case RvOp::kBlt: taken = static_cast<i32>(a) < static_cast<i32>(b); break;
        case RvOp::kBge: taken = static_cast<i32>(a) >= static_cast<i32>(b); break;
        case RvOp::kBltu: taken = a < b; break;
        default: taken = a >= b; break;
      }
      out.taken = taken;
      if (taken) next_pc = pc + imm;
      wrote_rd = false;
      break;
    }
    case RvOp::kLb:
    case RvOp::kLbu:
      out.mem_addr = a + imm;
      if (!check_addr(out.mem_addr, 1, false)) return Outcome::kTrapped;
      result = load_n(out.mem_addr, 1);
      if (in.op == RvOp::kLb && (result & 0x80u)) result |= 0xFFFFFF00u;
      break;
    case RvOp::kLh:
    case RvOp::kLhu:
      out.mem_addr = a + imm;
      if (!check_addr(out.mem_addr, 2, false)) return Outcome::kTrapped;
      result = load_n(out.mem_addr, 2);
      if (in.op == RvOp::kLh && (result & 0x8000u)) result |= 0xFFFF0000u;
      break;
    case RvOp::kLw:
      out.mem_addr = a + imm;
      if (!check_addr(out.mem_addr, 4, false)) return Outcome::kTrapped;
      result = load_n(out.mem_addr, 4);
      break;
    case RvOp::kSb:
    case RvOp::kSh:
    case RvOp::kSw: {
      const unsigned n = in.op == RvOp::kSb ? 1 : in.op == RvOp::kSh ? 2 : 4;
      out.mem_addr = a + imm;
      if (!check_addr(out.mem_addr, n, true)) return Outcome::kTrapped;
      store_n(out.mem_addr, n, b);
      wrote_rd = false;
      break;
    }
    case RvOp::kAddi: result = a + imm; break;
    case RvOp::kSlti: result = static_cast<i32>(a) < in.imm ? 1u : 0u; break;
    case RvOp::kSltiu: result = a < imm ? 1u : 0u; break;
    case RvOp::kXori: result = a ^ imm; break;
    case RvOp::kOri: result = a | imm; break;
    case RvOp::kAndi: result = a & imm; break;
    case RvOp::kSlli: result = a << (imm & 31u); break;
    case RvOp::kSrli: result = a >> (imm & 31u); break;
    case RvOp::kSrai: result = static_cast<u32>(static_cast<i32>(a) >> (imm & 31u)); break;
    case RvOp::kAdd: result = a + b; break;
    case RvOp::kSub: result = a - b; break;
    case RvOp::kSll: result = a << (b & 31u); break;
    case RvOp::kSlt: result = static_cast<i32>(a) < static_cast<i32>(b) ? 1u : 0u; break;
    case RvOp::kSltu: result = a < b ? 1u : 0u; break;
    case RvOp::kXor: result = a ^ b; break;
    case RvOp::kSrl: result = a >> (b & 31u); break;
    case RvOp::kSra: result = static_cast<u32>(static_cast<i32>(a) >> (b & 31u)); break;
    case RvOp::kOr: result = a | b; break;
    case RvOp::kAnd: result = a & b; break;
    case RvOp::kFence:
      wrote_rd = false;
      break;
    case RvOp::kEcall:
    case RvOp::kEbreak:
      // Environment call = clean halt. The step still retires (it appears
      // in the trace as a nop) so instret counts match the program.
      out.wrote_rd = false;
      out.next_pc = kRvHaltAddr;
      ++steps_;
      completed_ = true;
      pc_ = kRvHaltAddr;
      return Outcome::kRetired;
    default:
      return trap("unimplemented instruction");
  }

  wrote_rd = wrote_rd && in.rd != 0;
  if (wrote_rd) x_[in.rd] = result;
  out.wrote_rd = wrote_rd;
  out.result = wrote_rd ? result : 0;
  out.next_pc = next_pc;
  ++steps_;
  pc_ = next_pc;
  return Outcome::kRetired;
}

RvExecResult execute(const RvProgram& prog, const ExecLimits& limits,
                     const std::function<bool(const RvStep&)>& sink) {
  RvExecResult res;
  RvMachine m(prog, limits);
  if (!m.error().empty()) {
    res.error = m.error();
    return res;
  }
  RvStep step;
  for (;;) {
    const RvMachine::Outcome oc = m.step(step);
    if (oc == RvMachine::Outcome::kHalted) {
      res.completed = true;
      break;
    }
    if (oc == RvMachine::Outcome::kTrapped) {
      res.error = m.error();
      break;
    }
    if (oc == RvMachine::Outcome::kBudget) break;
    // Budget cut: completed stays false, and the rejected step does not
    // count toward instret (its µops never entered the trace).
    if (sink && !sink(step)) break;
    ++res.steps;
    if (m.completed()) {  // ecall/ebreak retired and was accepted
      res.completed = true;
      break;
    }
  }
  res.regs = m.regs();
  return res;
}

}  // namespace hcsim::rv
