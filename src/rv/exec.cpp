#include "rv/exec.hpp"

#include <sstream>
#include <vector>

namespace hcsim::rv {
namespace {

std::string hex(u32 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

RvExecResult execute(const RvProgram& prog, const ExecLimits& limits,
                     const std::function<bool(const RvStep&)>& sink) {
  RvExecResult res;
  if (prog.text_bytes == 0 || prog.text_bytes % 4 != 0) {
    res.error = "program has no (word-aligned) text";
    return res;
  }
  if (prog.image.size() > limits.mem_bytes) {
    res.error = "image larger than memory";
    return res;
  }

  // Pre-decode the text section once; the image is not self-modifying (a
  // store into text traps below).
  const u32 n_insts = prog.num_insts();
  std::vector<RvInst> code(n_insts);
  for (u32 i = 0; i < n_insts; ++i) code[i] = decode(prog.inst_word(i * 4));

  std::vector<u8> mem(limits.mem_bytes, 0);
  std::copy(prog.image.begin(), prog.image.end(), mem.begin());

  auto& x = res.regs;
  x[1] = kRvHaltAddr;                       // ra: top-level `ret` halts
  x[2] = limits.mem_bytes & ~15u;           // sp: 16-byte aligned stack top

  auto trap = [&](u32 pc, const std::string& msg) {
    res.error = "pc=" + hex(pc) + ": " + msg;
  };

  u32 pc = 0;
  while (res.steps < limits.max_steps) {
    if (pc == kRvHaltAddr) {
      res.completed = true;
      return res;
    }
    if (pc >= prog.text_bytes || pc % 4 != 0) {
      trap(pc, "instruction fetch outside text");
      return res;
    }
    const RvInst& in = code[pc / 4];
    if (in.op == RvOp::kIllegal) {
      trap(pc, "illegal instruction " + hex(prog.inst_word(pc)));
      return res;
    }

    RvStep step;
    step.pc = pc;
    step.inst = in;
    const u32 a = x[in.rs1];
    const u32 b = x[in.rs2];
    step.rs1_val = a;
    step.rs2_val = b;
    const u32 imm = static_cast<u32>(in.imm);

    u32 result = 0;
    bool wrote_rd = true;
    u32 next_pc = pc + 4;

    // Bounds- and alignment-checked memory access. Stores into the text
    // prefix trap: the executor pre-decodes and does not model i-fetch from
    // dirty lines.
    auto check_addr = [&](u32 addr, unsigned n, bool store) -> bool {
      if (addr % n != 0) {
        trap(pc, "unaligned " + std::to_string(n) + "-byte access at " + hex(addr));
        return false;
      }
      if (addr > limits.mem_bytes - n) {
        trap(pc, "memory access out of bounds at " + hex(addr));
        return false;
      }
      if (store && addr < prog.text_bytes) {
        trap(pc, "store into text at " + hex(addr));
        return false;
      }
      return true;
    };
    auto load_n = [&](u32 addr, unsigned n) {
      u32 v = 0;
      for (unsigned i = 0; i < n; ++i) v |= static_cast<u32>(mem[addr + i]) << (8 * i);
      return v;
    };
    auto store_n = [&](u32 addr, unsigned n, u32 v) {
      for (unsigned i = 0; i < n; ++i) mem[addr + i] = static_cast<u8>(v >> (8 * i));
    };

    switch (in.op) {
      case RvOp::kLui: result = imm; break;
      case RvOp::kAuipc: result = pc + imm; break;
      case RvOp::kJal:
        result = pc + 4;
        step.taken = true;
        next_pc = pc + imm;
        break;
      case RvOp::kJalr:
        result = pc + 4;
        step.taken = true;
        next_pc = (a + imm) & ~1u;
        break;
      case RvOp::kBeq:
      case RvOp::kBne:
      case RvOp::kBlt:
      case RvOp::kBge:
      case RvOp::kBltu:
      case RvOp::kBgeu: {
        bool taken = false;
        switch (in.op) {
          case RvOp::kBeq: taken = a == b; break;
          case RvOp::kBne: taken = a != b; break;
          case RvOp::kBlt: taken = static_cast<i32>(a) < static_cast<i32>(b); break;
          case RvOp::kBge: taken = static_cast<i32>(a) >= static_cast<i32>(b); break;
          case RvOp::kBltu: taken = a < b; break;
          default: taken = a >= b; break;
        }
        step.taken = taken;
        if (taken) next_pc = pc + imm;
        wrote_rd = false;
        break;
      }
      case RvOp::kLb:
      case RvOp::kLbu:
        step.mem_addr = a + imm;
        if (!check_addr(step.mem_addr, 1, false)) return res;
        result = load_n(step.mem_addr, 1);
        if (in.op == RvOp::kLb && (result & 0x80u)) result |= 0xFFFFFF00u;
        break;
      case RvOp::kLh:
      case RvOp::kLhu:
        step.mem_addr = a + imm;
        if (!check_addr(step.mem_addr, 2, false)) return res;
        result = load_n(step.mem_addr, 2);
        if (in.op == RvOp::kLh && (result & 0x8000u)) result |= 0xFFFF0000u;
        break;
      case RvOp::kLw:
        step.mem_addr = a + imm;
        if (!check_addr(step.mem_addr, 4, false)) return res;
        result = load_n(step.mem_addr, 4);
        break;
      case RvOp::kSb:
      case RvOp::kSh:
      case RvOp::kSw: {
        const unsigned n = in.op == RvOp::kSb ? 1 : in.op == RvOp::kSh ? 2 : 4;
        step.mem_addr = a + imm;
        if (!check_addr(step.mem_addr, n, true)) return res;
        store_n(step.mem_addr, n, b);
        wrote_rd = false;
        break;
      }
      case RvOp::kAddi: result = a + imm; break;
      case RvOp::kSlti: result = static_cast<i32>(a) < in.imm ? 1u : 0u; break;
      case RvOp::kSltiu: result = a < imm ? 1u : 0u; break;
      case RvOp::kXori: result = a ^ imm; break;
      case RvOp::kOri: result = a | imm; break;
      case RvOp::kAndi: result = a & imm; break;
      case RvOp::kSlli: result = a << (imm & 31u); break;
      case RvOp::kSrli: result = a >> (imm & 31u); break;
      case RvOp::kSrai: result = static_cast<u32>(static_cast<i32>(a) >> (imm & 31u)); break;
      case RvOp::kAdd: result = a + b; break;
      case RvOp::kSub: result = a - b; break;
      case RvOp::kSll: result = a << (b & 31u); break;
      case RvOp::kSlt: result = static_cast<i32>(a) < static_cast<i32>(b) ? 1u : 0u; break;
      case RvOp::kSltu: result = a < b ? 1u : 0u; break;
      case RvOp::kXor: result = a ^ b; break;
      case RvOp::kSrl: result = a >> (b & 31u); break;
      case RvOp::kSra: result = static_cast<u32>(static_cast<i32>(a) >> (b & 31u)); break;
      case RvOp::kOr: result = a | b; break;
      case RvOp::kAnd: result = a & b; break;
      case RvOp::kFence:
        wrote_rd = false;
        break;
      case RvOp::kEcall:
      case RvOp::kEbreak: {
        // Environment call = clean halt. The step still retires (it appears
        // in the trace as a nop) so instret counts match the program — but
        // only if the sink accepted it; a budget cut here is still a cut.
        step.wrote_rd = false;
        step.next_pc = kRvHaltAddr;
        if (sink && !sink(step)) return res;
        ++res.steps;
        res.completed = true;
        return res;
      }
      default:
        trap(pc, "unimplemented instruction");
        return res;
    }

    wrote_rd = wrote_rd && in.rd != 0;
    if (wrote_rd) x[in.rd] = result;
    step.wrote_rd = wrote_rd;
    step.result = wrote_rd ? result : 0;
    step.next_pc = next_pc;
    // Budget cut: completed stays false, and the rejected step does not
    // count toward instret (its µops never entered the trace).
    if (sink && !sink(step)) return res;
    ++res.steps;
    pc = next_pc;
  }
  return res;  // step budget exhausted
}

}  // namespace hcsim::rv
