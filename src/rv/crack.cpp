#include "rv/crack.hpp"

#include "util/log.hpp"

namespace hcsim::rv {
namespace {

RegId map_src(u8 r) { return static_cast<RegId>(kRegX0 + r); }
RegId map_dst(u8 r) { return r == 0 ? kRegNone : static_cast<RegId>(kRegX0 + r); }

/// hcsim condition code for an RV branch. Unsigned compares reuse the
/// signed sign-bit conditions; the recorded `taken` bit is always the
/// architecturally exact outcome from the executor.
u32 cond_of(RvOp op) {
  switch (op) {
    case RvOp::kBeq: return kCondEq;
    case RvOp::kBne: return kCondNe;
    case RvOp::kBlt:
    case RvOp::kBltu: return kCondLt;
    default: return kCondGe;
  }
}

Opcode alu_opcode(RvOp op) {
  switch (op) {
    case RvOp::kAddi:
    case RvOp::kAdd: return Opcode::kAdd;
    case RvOp::kSub: return Opcode::kSub;
    case RvOp::kXori:
    case RvOp::kXor: return Opcode::kXor;
    case RvOp::kOri:
    case RvOp::kOr: return Opcode::kOr;
    case RvOp::kAndi:
    case RvOp::kAnd: return Opcode::kAnd;
    case RvOp::kSlli:
    case RvOp::kSll: return Opcode::kShl;
    case RvOp::kSrli:
    case RvOp::kSrai:  // arithmetic shifts share the shifter µop shape
    case RvOp::kSrl:
    case RvOp::kSra: return Opcode::kShr;
    default: HCSIM_CHECK(false, "not an ALU instruction");
  }
  return Opcode::kNop;
}

constexpr bool has_imm_form(RvOp op) {
  return op >= RvOp::kAddi && op <= RvOp::kSrai;
}

/// Append the static µops of one instruction. `pc` is the RV byte address;
/// branch targets are filled in by the caller once first_uop is known.
void crack_one(const RvInst& in, u32 pc, std::vector<StaticUop>& uops) {
  auto push = [&](Opcode op, RegId dst, RegId s0, RegId s1, RegId s2, bool has_imm,
                  u32 imm) {
    StaticUop u;
    u.pc = static_cast<u32>(uops.size());
    u.opcode = op;
    u.dst = dst;
    u.srcs = {s0, s1, s2};
    u.has_imm = has_imm;
    u.imm = imm;
    uops.push_back(u);
  };
  const u32 imm = static_cast<u32>(in.imm);

  switch (in.op) {
    case RvOp::kLui:
      if (in.rd == 0) { push(Opcode::kNop, kRegNone, kRegNone, kRegNone, kRegNone, false, 0); break; }
      push(Opcode::kMovImm, map_dst(in.rd), kRegNone, kRegNone, kRegNone, true, imm);
      break;
    case RvOp::kAuipc:
      if (in.rd == 0) { push(Opcode::kNop, kRegNone, kRegNone, kRegNone, kRegNone, false, 0); break; }
      push(Opcode::kMovImm, map_dst(in.rd), kRegNone, kRegNone, kRegNone, true, pc + imm);
      break;
    case RvOp::kJal:
      if (in.rd != 0)
        push(Opcode::kMovImm, map_dst(in.rd), kRegNone, kRegNone, kRegNone, true, pc + 4);
      push(Opcode::kJump, kRegNone, kRegNone, kRegNone, kRegNone, false, 0);
      break;
    case RvOp::kJalr:
      if (in.rd != 0)
        push(Opcode::kMovImm, map_dst(in.rd), kRegNone, kRegNone, kRegNone, true, pc + 4);
      // Register-indirect: the jump reads rs1; its dynamic successor in the
      // record stream is the real target, so the static target stays 0.
      push(Opcode::kJump, kRegNone, map_src(in.rs1), kRegNone, kRegNone, true, imm);
      break;
    case RvOp::kBeq:
    case RvOp::kBne:
    case RvOp::kBlt:
    case RvOp::kBge:
    case RvOp::kBltu:
    case RvOp::kBgeu:
      push(Opcode::kCmp, kRegNone, map_src(in.rs1), map_src(in.rs2), kRegNone, false, 0);
      push(Opcode::kBranchCond, kRegNone, kRegFlags, kRegNone, kRegNone, true,
           cond_of(in.op));
      break;
    case RvOp::kLb:
    case RvOp::kLbu:
      push(Opcode::kLoadByte, map_dst(in.rd), map_src(in.rs1), kRegNone, kRegNone,
           true, imm);
      break;
    case RvOp::kLh:
    case RvOp::kLhu:
    case RvOp::kLw:
      push(Opcode::kLoad, map_dst(in.rd), map_src(in.rs1), kRegNone, kRegNone, true,
           imm);
      break;
    case RvOp::kSb:
      push(Opcode::kStoreByte, kRegNone, map_src(in.rs1), kRegNone, map_src(in.rs2),
           true, imm);
      break;
    case RvOp::kSh:
    case RvOp::kSw:
      push(Opcode::kStore, kRegNone, map_src(in.rs1), kRegNone, map_src(in.rs2), true,
           imm);
      break;
    case RvOp::kSlti:
    case RvOp::kSltiu:
    case RvOp::kSlt:
    case RvOp::kSltu:
      if (in.rd == 0) { push(Opcode::kNop, kRegNone, kRegNone, kRegNone, kRegNone, false, 0); break; }
      if (has_imm_form(in.op)) {
        push(Opcode::kSub, kRegT0, map_src(in.rs1), kRegNone, kRegNone, true, imm);
      } else {
        push(Opcode::kSub, kRegT0, map_src(in.rs1), map_src(in.rs2), kRegNone, false, 0);
      }
      push(Opcode::kShr, map_dst(in.rd), kRegT0, kRegNone, kRegNone, true, 31);
      break;
    case RvOp::kAddi:
    case RvOp::kXori:
    case RvOp::kOri:
    case RvOp::kAndi:
    case RvOp::kSlli:
    case RvOp::kSrli:
    case RvOp::kSrai:
      if (in.rd == 0) { push(Opcode::kNop, kRegNone, kRegNone, kRegNone, kRegNone, false, 0); break; }
      push(alu_opcode(in.op), map_dst(in.rd), map_src(in.rs1), kRegNone, kRegNone,
           true, imm);
      break;
    case RvOp::kAdd:
    case RvOp::kSub:
    case RvOp::kSll:
    case RvOp::kXor:
    case RvOp::kSrl:
    case RvOp::kSra:
    case RvOp::kOr:
    case RvOp::kAnd:
      if (in.rd == 0) { push(Opcode::kNop, kRegNone, kRegNone, kRegNone, kRegNone, false, 0); break; }
      push(alu_opcode(in.op), map_dst(in.rd), map_src(in.rs1), map_src(in.rs2),
           kRegNone, false, 0);
      break;
    case RvOp::kFence:
    case RvOp::kEcall:
    case RvOp::kEbreak:
      push(Opcode::kNop, kRegNone, kRegNone, kRegNone, kRegNone, false, 0);
      break;
    default:
      HCSIM_CHECK(false, "cannot crack an illegal instruction");
  }
}

}  // namespace

CrackedProgram crack_program(const RvProgram& prog) {
  const u32 n = prog.num_insts();
  HCSIM_CHECK(n > 0, "cannot crack an empty program");
  CrackedProgram out;
  out.program.name = prog.name;
  out.first_uop.reserve(n + 1);

  std::vector<RvInst> insts(n);
  for (u32 i = 0; i < n; ++i) {
    insts[i] = decode(prog.inst_word(i * 4));
    HCSIM_CHECK(insts[i].op != RvOp::kIllegal, "illegal instruction in text");
    out.first_uop.push_back(static_cast<u32>(out.program.uops.size()));
    crack_one(insts[i], i * 4, out.program.uops);
  }
  out.first_uop.push_back(static_cast<u32>(out.program.uops.size()));

  // Resolve static branch targets now that every µop address is known.
  out.program.branch_targets.assign(out.program.uops.size(), 0);
  for (u32 i = 0; i < n; ++i) {
    const RvInst& in = insts[i];
    if (!is_rv_branch(in.op) && in.op != RvOp::kJal) continue;
    const u32 target_pc = i * 4 + static_cast<u32>(in.imm);
    HCSIM_CHECK(target_pc % 4 == 0 && target_pc / 4 < n,
                "branch target outside text");
    // The branch/jump is the last µop of the crack.
    const u32 branch_uop = out.first_uop[i + 1] - 1;
    out.program.branch_targets[branch_uop] = out.first_uop[target_pc / 4];
  }
  return out;
}

void emit_step_records(const CrackedProgram& cracked, const RvStep& step,
                       const std::function<void(const TraceRecord&)>& fn) {
  const u32 base = cracked.first_uop[step.pc / 4];
  auto push_rec = [&](const TraceRecord& r) { fn(r); };
  {
    const RvInst& in = step.inst;
    const u32 a = step.rs1_val, b = step.rs2_val;
    const u32 imm = static_cast<u32>(in.imm);

    auto rec_at = [&](u32 offset) {
      TraceRecord r;
      r.pc = base + offset;
      return r;
    };

    switch (in.op) {
      case RvOp::kLui:
      case RvOp::kAuipc: {
        TraceRecord r = rec_at(0);
        r.result = step.result;  // 0 for the rd==0 nop crack
        push_rec(r);
        break;
      }
      case RvOp::kJal:
      case RvOp::kJalr: {
        u32 off = 0;
        if (in.rd != 0) {
          TraceRecord link = rec_at(off++);
          link.result = step.pc + 4;
          push_rec(link);
        }
        TraceRecord jmp = rec_at(off);
        if (in.op == RvOp::kJalr) jmp.src_vals[0] = a;
        jmp.taken = true;
        push_rec(jmp);
        break;
      }
      case RvOp::kBeq:
      case RvOp::kBne:
      case RvOp::kBlt:
      case RvOp::kBge:
      case RvOp::kBltu:
      case RvOp::kBgeu: {
        const u32 flags = a - b;  // kCmp convention: flags = rs1 - rs2
        TraceRecord cmp = rec_at(0);
        cmp.src_vals = {a, b, 0};
        cmp.flags_val = flags;
        push_rec(cmp);
        TraceRecord br = rec_at(1);
        br.src_vals[0] = flags;
        br.taken = step.taken;
        push_rec(br);
        break;
      }
      case RvOp::kLb:
      case RvOp::kLbu:
      case RvOp::kLh:
      case RvOp::kLhu:
      case RvOp::kLw: {
        TraceRecord r = rec_at(0);
        r.src_vals[0] = a;
        r.mem_addr = step.mem_addr;
        r.result = step.result;
        push_rec(r);
        break;
      }
      case RvOp::kSb:
      case RvOp::kSh:
      case RvOp::kSw: {
        TraceRecord r = rec_at(0);
        r.src_vals = {a, 0, b};
        r.mem_addr = step.mem_addr;
        push_rec(r);
        break;
      }
      case RvOp::kSlti:
      case RvOp::kSltiu:
      case RvOp::kSlt:
      case RvOp::kSltu: {
        if (in.rd == 0) {
          push_rec(rec_at(0));
          break;
        }
        const u32 rhs = has_imm_form(in.op) ? imm : b;
        const u32 diff = a - rhs;
        TraceRecord sub = rec_at(0);
        sub.src_vals = {a, has_imm_form(in.op) ? 0 : b, 0};
        sub.result = diff;
        sub.flags_val = diff;
        push_rec(sub);
        TraceRecord shr = rec_at(1);
        shr.src_vals[0] = diff;
        shr.result = step.result;  // architecturally exact 0/1
        shr.flags_val = step.result;
        push_rec(shr);
        break;
      }
      case RvOp::kAddi:
      case RvOp::kXori:
      case RvOp::kOri:
      case RvOp::kAndi:
      case RvOp::kSlli:
      case RvOp::kSrli:
      case RvOp::kSrai:
      case RvOp::kAdd:
      case RvOp::kSub:
      case RvOp::kSll:
      case RvOp::kXor:
      case RvOp::kSrl:
      case RvOp::kSra:
      case RvOp::kOr:
      case RvOp::kAnd: {
        TraceRecord r = rec_at(0);
        if (in.rd == 0) {  // cracked to kNop
          push_rec(r);
          break;
        }
        r.src_vals[0] = a;
        if (!has_imm_form(in.op)) r.src_vals[1] = b;
        r.result = step.result;
        r.flags_val = step.result;  // ALU µops write flags = result
        push_rec(r);
        break;
      }
      case RvOp::kFence:
      case RvOp::kEcall:
      case RvOp::kEbreak:
        push_rec(rec_at(0));
        break;
      default:
        HCSIM_CHECK(false, "unreachable: illegal instruction executed");
    }
  }
}

RvTraceInfo stream_from_program(const RvProgram& prog, const CrackedProgram& cracked,
                                u64 max_uops,
                                const std::function<void(const TraceRecord&)>& sink,
                                const ExecLimits& limits) {
  u64 emitted = 0;
  auto emit = [&](const RvStep& step) -> bool {
    const u32 idx = step.pc / 4;
    const u32 n_uops = cracked.first_uop[idx + 1] - cracked.first_uop[idx];
    if (emitted + n_uops > max_uops) return false;  // budget cut
    emit_step_records(cracked, step, [&](const TraceRecord& r) {
      ++emitted;
      sink(r);
    });
    return true;
  };

  const RvExecResult res = execute(prog, limits, emit);
  RvTraceInfo out;
  out.instret = res.steps;
  out.completed = res.completed;
  out.error = res.error;
  return out;
}

// --- RvStreamCursor ----------------------------------------------------------

RvStreamCursor::RvStreamCursor(const RvProgram& prog, const CrackedProgram& cracked,
                               const ExecLimits& limits)
    : cracked_(&cracked), machine_(prog, limits) {}

RvTraceInfo RvStreamCursor::info() const {
  RvTraceInfo out;
  out.instret = machine_.steps();
  out.completed = machine_.completed();
  out.error = machine_.error();
  return out;
}

bool RvStreamCursor::refill() {
  RvStep step;
  if (machine_.step(step) != RvMachine::Outcome::kRetired) return false;
  emit_step_records(*cracked_, step,
                    [this](const TraceRecord& r) { pending_.push_back(r); });
  return true;
}

RvTraceInfo RvStreamCursor::pump_range(
    u64 begin, u64 end, const std::function<void(const TraceRecord&)>& sink) {
  HCSIM_CHECK(begin <= end, "RvStreamCursor: begin > end");
  HCSIM_CHECK(begin >= pos_, "RvStreamCursor: backward seek (restore a checkpoint)");
  while (pos_ < end) {
    if (head_ == pending_.size()) {
      pending_.clear();
      head_ = 0;
      if (!refill()) break;  // halted / trapped / budget exhausted
    }
    // An instruction executes only while the cursor is short of `end`; a
    // crack straddling the boundary leaves its tail buffered for the next
    // range. Per-record filtering below trims the [pos_, begin) skip.
    while (head_ < pending_.size() && pos_ < end) {
      if (pos_ >= begin) sink(pending_[head_]);
      ++head_;
      ++pos_;
    }
  }
  return info();
}

RvStreamCursor::Checkpoint RvStreamCursor::checkpoint() const {
  Checkpoint c;
  c.machine = machine_.save();
  c.pos = pos_;
  c.pending.assign(pending_.begin() + static_cast<std::ptrdiff_t>(head_),
                   pending_.end());
  return c;
}

void RvStreamCursor::restore(const Checkpoint& c) {
  machine_.restore(c.machine);
  pending_ = c.pending;
  head_ = 0;
  pos_ = c.pos;
}

Trace trace_from_program(const RvProgram& prog, u64 max_uops, RvTraceInfo* info,
                         const ExecLimits& limits) {
  const CrackedProgram cracked = crack_program(prog);
  Trace trace;
  trace.program = cracked.program;
  trace.seed = 1;  // RV traces are seedless: the program fully determines them
  const RvTraceInfo res = stream_from_program(
      prog, cracked, max_uops, [&](const TraceRecord& r) { trace.records.push_back(r); },
      limits);
  if (info) {
    // The caller owns trap handling (hcrv turns it into a CLI diagnostic).
    *info = res;
  } else {
    HCSIM_CHECK(res.error.empty(), "rv executor trapped: " + res.error);
  }
  return trace;
}

}  // namespace hcsim::rv
