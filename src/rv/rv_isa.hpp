// hcsim — RV32I instruction set: opcodes, encoded forms, encoder/decoder.
//
// The RISC-V frontend (src/rv) diversifies the workload space beyond the
// profile-driven generator: real programs are assembled (assembler.hpp),
// functionally executed (exec.hpp) and cracked into hcsim µop traces
// (crack.hpp). This header is the shared vocabulary: the full RV32I base
// integer set, a decoded instruction form, and bit-exact encode/decode.
#pragma once

#include <string>
#include <string_view>

#include "util/types.hpp"

namespace hcsim::rv {

/// RV32I base integer instructions. FENCE is modeled as a no-op; ECALL and
/// EBREAK halt the functional executor.
enum class RvOp : u8 {
  kIllegal = 0,
  // U-type / J-type.
  kLui, kAuipc, kJal,
  // I-type jump.
  kJalr,
  // B-type conditional branches.
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  // I-type loads.
  kLb, kLh, kLw, kLbu, kLhu,
  // S-type stores.
  kSb, kSh, kSw,
  // I-type ALU.
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  // R-type ALU.
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  // System / misc.
  kFence, kEcall, kEbreak,
  kCount
};

inline constexpr unsigned kNumRvOps = static_cast<unsigned>(RvOp::kCount);

/// A decoded RV32I instruction. `imm` is the fully sign-extended immediate;
/// for LUI/AUIPC it already carries the shifted 20-bit value (imm20 << 12),
/// and for shifts it is the 5-bit shamt.
struct RvInst {
  RvOp op = RvOp::kIllegal;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i32 imm = 0;
};

/// Bit-exact RV32I encoding of a decoded instruction. Immediates out of the
/// encodable range abort (the assembler range-checks first).
u32 encode(const RvInst& inst);

/// Decode a 32-bit instruction word. Unrecognized words decode to
/// RvOp::kIllegal (the executor traps on them).
RvInst decode(u32 word);

std::string_view mnemonic(RvOp op);

constexpr bool is_rv_branch(RvOp op) {
  return op >= RvOp::kBeq && op <= RvOp::kBgeu;
}
constexpr bool is_rv_load(RvOp op) { return op >= RvOp::kLb && op <= RvOp::kLhu; }
constexpr bool is_rv_store(RvOp op) { return op >= RvOp::kSb && op <= RvOp::kSw; }

/// Parse a register operand: "x0".."x31" or an ABI name (zero, ra, sp, gp,
/// tp, t0-t6, s0-s11, fp, a0-a7). Returns -1 when unknown.
int parse_rv_reg(std::string_view token);

/// Canonical "x<N>" register name.
std::string_view rv_reg_name(unsigned r);

/// Human-readable rendering, e.g. "addi x5, x6, -1".
std::string rv_disassemble(const RvInst& inst);

}  // namespace hcsim::rv
