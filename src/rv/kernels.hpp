// hcsim — bundled RV32I kernel suite.
//
// The `.s` sources live in examples/rv/; CMake embeds them into the library
// at configure time (rv_kernels_data.inc), so every tool and test can run
// the suite without caring about source-tree paths. Kernels are registered
// as first-class workloads: rv_workload_profile() wraps one in a
// WorkloadProfile whose `rv_kernel` field routes trace generation through
// the assembler/executor/cracker instead of the synthetic program generator.
#pragma once

#include <string>
#include <vector>

#include "rv/crack.hpp"
#include "trace/trace.hpp"
#include "wload/profile.hpp"

namespace hcsim::rv {

struct RvKernel {
  std::string name;    // file stem, e.g. "crc32"
  std::string source;  // full assembly text
};

/// The embedded kernel suite, sorted by name. Empty only when the library
/// was built without the generated data (non-CMake builds).
const std::vector<RvKernel>& bundled_kernels();

/// Look up a bundled kernel; nullptr when unknown.
const RvKernel* find_kernel(const std::string& name);

/// A WorkloadProfile that routes through the RV frontend (profile.rv_kernel
/// set, name = kernel name). Aborts on unknown kernels.
WorkloadProfile rv_workload_profile(const std::string& name);

/// All bundled kernels as workload profiles (the `rv` sweep's workload set).
std::vector<WorkloadProfile> rv_workload_profiles();

/// Assemble + execute + crack a bundled kernel into a trace of at most
/// `max_uops` dynamic µops. Deterministic; aborts on unknown kernel or
/// assembly/execution failure (bundled kernels must be valid).
Trace kernel_trace(const std::string& name, u64 max_uops);

/// Streaming form of kernel_trace: the assembled binary plus its cracked
/// static program, ready to pump the dynamic record stream into a consumer
/// (e.g. Pipeline::feed) without materializing it. The stream is
/// bit-identical to kernel_trace's record vector.
struct KernelStream {
  RvProgram binary;
  CrackedProgram cracked;

  /// Execute the kernel, pushing every dynamic µop record to `sink`,
  /// bounded by `max_uops`. Aborts if the kernel traps.
  RvTraceInfo pump(u64 max_uops,
                   const std::function<void(const TraceRecord&)>& sink) const;

  /// Push only records [begin, end) of the stream to `sink` (the windowed
  /// sampler's slice primitive). Functional execution still starts from the
  /// kernel entry point — records before `begin` are executed and discarded,
  /// so the delivered range is bit-identical to the same slice of pump().
  RvTraceInfo pump_range(u64 begin, u64 end,
                         const std::function<void(const TraceRecord&)>& sink) const;
};

/// Assemble + crack a bundled kernel (no dynamic execution yet).
KernelStream open_kernel_stream(const std::string& name);

}  // namespace hcsim::rv
