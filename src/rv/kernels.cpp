#include "rv/kernels.hpp"

#include <algorithm>

#include "rv/assembler.hpp"
#include "rv/crack.hpp"
#include "util/log.hpp"

namespace hcsim::rv {

const std::vector<RvKernel>& bundled_kernels() {
  static const std::vector<RvKernel> kKernels = [] {
    std::vector<RvKernel> v = {
#if __has_include("rv_kernels_data.inc")
#include "rv_kernels_data.inc"
#endif
    };
    std::sort(v.begin(), v.end(),
              [](const RvKernel& a, const RvKernel& b) { return a.name < b.name; });
    return v;
  }();
  return kKernels;
}

const RvKernel* find_kernel(const std::string& name) {
  for (const RvKernel& k : bundled_kernels())
    if (k.name == name) return &k;
  return nullptr;
}

WorkloadProfile rv_workload_profile(const std::string& name) {
  HCSIM_CHECK(find_kernel(name) != nullptr, "unknown rv kernel: " + name);
  WorkloadProfile p;
  p.name = name;
  p.rv_kernel = name;
  p.seed = 1;  // RV traces are seedless; 1 keeps the cache key stable
  return p;
}

std::vector<WorkloadProfile> rv_workload_profiles() {
  std::vector<WorkloadProfile> out;
  for (const RvKernel& k : bundled_kernels()) out.push_back(rv_workload_profile(k.name));
  return out;
}

Trace kernel_trace(const std::string& name, u64 max_uops) {
  const RvKernel* k = find_kernel(name);
  HCSIM_CHECK(k != nullptr, "unknown rv kernel: " + name);
  AsmResult as = assemble(k->name, k->source);
  HCSIM_CHECK(as.ok(), "bundled kernel failed to assemble: " + as.error);
  RvTraceInfo info;
  Trace trace = trace_from_program(as.program, max_uops, &info);
  HCSIM_CHECK(info.error.empty(), "bundled kernel trapped: " + name + ": " + info.error);
  HCSIM_CHECK(!trace.records.empty(), "kernel produced an empty trace: " + name);
  return trace;
}

}  // namespace hcsim::rv
