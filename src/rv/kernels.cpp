#include "rv/kernels.hpp"

#include <algorithm>

#include "rv/assembler.hpp"
#include "rv/crack.hpp"
#include "util/log.hpp"

namespace hcsim::rv {

const std::vector<RvKernel>& bundled_kernels() {
  static const std::vector<RvKernel> kKernels = [] {
    std::vector<RvKernel> v = {
#if __has_include("rv_kernels_data.inc")
#include "rv_kernels_data.inc"
#endif
    };
    std::sort(v.begin(), v.end(),
              [](const RvKernel& a, const RvKernel& b) { return a.name < b.name; });
    return v;
  }();
  return kKernels;
}

const RvKernel* find_kernel(const std::string& name) {
  for (const RvKernel& k : bundled_kernels())
    if (k.name == name) return &k;
  return nullptr;
}

WorkloadProfile rv_workload_profile(const std::string& name) {
  HCSIM_CHECK(find_kernel(name) != nullptr, "unknown rv kernel: " + name);
  WorkloadProfile p;
  p.name = name;
  p.rv_kernel = name;
  p.seed = 1;  // RV traces are seedless; 1 keeps the cache key stable
  return p;
}

std::vector<WorkloadProfile> rv_workload_profiles() {
  std::vector<WorkloadProfile> out;
  for (const RvKernel& k : bundled_kernels()) out.push_back(rv_workload_profile(k.name));
  return out;
}

Trace kernel_trace(const std::string& name, u64 max_uops) {
  // Built on the streaming primitive, so the materialized vector and a
  // KernelStream pump are bit-identical by construction.
  const KernelStream stream = open_kernel_stream(name);
  Trace trace;
  trace.program = stream.cracked.program;
  trace.seed = 1;  // RV traces are seedless: the program fully determines them
  stream.pump(max_uops, [&](const TraceRecord& r) { trace.records.push_back(r); });
  HCSIM_CHECK(!trace.records.empty(), "kernel produced an empty trace: " + name);
  return trace;
}

RvTraceInfo KernelStream::pump(u64 max_uops,
                               const std::function<void(const TraceRecord&)>& sink) const {
  RvTraceInfo info = stream_from_program(binary, cracked, max_uops, sink);
  HCSIM_CHECK(info.error.empty(),
              "bundled kernel trapped: " + cracked.program.name + ": " + info.error);
  return info;
}

RvTraceInfo KernelStream::pump_range(
    u64 begin, u64 end, const std::function<void(const TraceRecord&)>& sink) const {
  HCSIM_CHECK(begin <= end, "pump_range: begin > end");
  // The executor's µop budget cuts at instruction boundaries: it stops
  // *before* an instruction whose crack would cross the budget. A range end
  // landing mid-crack must still deliver the µops below `end`, so extend the
  // budget by the widest crack in this program and trim with the filter —
  // otherwise two pump_range slices would disagree with one longer pump
  // about the records near their shared boundary.
  u64 max_crack = 1;
  for (std::size_t i = 0; i + 1 < cracked.first_uop.size(); ++i)
    max_crack = std::max<u64>(max_crack, cracked.first_uop[i + 1] - cracked.first_uop[i]);
  u64 pos = 0;
  return pump(end + max_crack - 1, [&](const TraceRecord& r) {
    if (pos >= begin && pos < end) sink(r);
    ++pos;
  });
}

KernelStream open_kernel_stream(const std::string& name) {
  const RvKernel* k = find_kernel(name);
  HCSIM_CHECK(k != nullptr, "unknown rv kernel: " + name);
  AsmResult as = assemble(k->name, k->source);
  HCSIM_CHECK(as.ok(), "bundled kernel failed to assemble: " + as.error);
  KernelStream stream;
  stream.binary = std::move(as.program);
  stream.cracked = crack_program(stream.binary);
  return stream;
}

}  // namespace hcsim::rv
