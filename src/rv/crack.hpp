// hcsim — µop cracking: RV32I instructions -> hcsim StaticUops + value-
// accurate TraceRecords.
//
// The pipeline (core/pipeline.cpp) is trace driven: it consumes a static
// µop program plus a dynamic record stream carrying real values. This layer
// makes an assembled RISC-V program indistinguishable from a generated one:
//
//  * compare-and-branch (beq/bne/blt/...) cracks into kCmp + kBranchCond,
//    mapping RISC-V's fused compare onto the flags model the BR steering
//    scheme keys on (the cmp writes flags = rs1 - rs2; the branch reads
//    them with the matching condition code);
//  * set-less-than (slt/sltu/slti/sltiu and their pseudo forms) cracks into
//    kSub (into the T0 µop temporary) + kShr #31 — the sign-bit extraction
//    idiom — with the *architecturally exact* 0/1 result recorded;
//  * loads/stores map onto the base+offset AGU form (kLoad/kLoadByte/
//    kStore/kStoreByte), so byte kernels exercise the LR scheme and
//    base+small-offset addressing exercises CR carry confinement;
//  * jal/jalr with a link register crack into kMovImm (static return
//    address) + kJump.
//
// Recorded source/result/flags values always come from the functional
// executor, so downstream width predictors and steering observe real data
// widths. Unsigned branches and arithmetic right shifts reuse the closest
// µop shape (kCmp / kShr); their recorded outcomes remain architecturally
// exact, which is what every consumer reads.
#pragma once

#include "rv/exec.hpp"
#include "trace/trace.hpp"

namespace hcsim::rv {

/// A statically cracked program: the hcsim µop program plus the mapping
/// from RV instruction index to its µop range.
struct CrackedProgram {
  Program program;
  /// first_uop[i] = index of instruction i's first µop; size num_insts()+1,
  /// so instruction i owns µops [first_uop[i], first_uop[i+1]).
  std::vector<u32> first_uop;
};

CrackedProgram crack_program(const RvProgram& prog);

/// Provenance of a cracked trace run.
struct RvTraceInfo {
  u64 instret = 0;     // RV instructions retired
  bool completed = false;  // program halted cleanly (vs. µop budget cut)
  std::string error;   // executor trap, if any
};

/// Assemble-free entry point: functionally execute `prog` and emit the
/// value-accurate µop trace, bounded by `max_uops` dynamic µops.
Trace trace_from_program(const RvProgram& prog, u64 max_uops,
                         RvTraceInfo* info = nullptr, const ExecLimits& limits = {});

/// Streaming form: push every dynamic µop record to `sink` instead of
/// materializing a vector — the record stream is bit-identical to
/// trace_from_program's (it is the same interpreter). `cracked` must be
/// crack_program(prog).
RvTraceInfo stream_from_program(const RvProgram& prog, const CrackedProgram& cracked,
                                u64 max_uops,
                                const std::function<void(const TraceRecord&)>& sink,
                                const ExecLimits& limits = {});

/// Emit the value-accurate TraceRecords of one retired instruction — exactly
/// the records stream_from_program pushes for `step` (same switch, no budget
/// logic). Shared by the one-shot streamer and the resumable cursor so the
/// two paths cannot drift.
void emit_step_records(const CrackedProgram& cracked, const RvStep& step,
                       const std::function<void(const TraceRecord&)>& fn);

/// Resumable streaming cracker: an RvMachine plus a pending-record buffer.
///
/// pump_range delivers arbitrary forward slices [begin, end) of the dynamic
/// µop stream, bit-identical to one long stream_from_program pump. An
/// instruction executes only while the cursor is short of `end`; if its
/// crack runs past the range boundary the leftover records stay buffered
/// for the next range (over-pump-and-trim at instruction granularity, the
/// same contract KernelStream::pump_range honored by re-executing).
///
/// checkpoint()/restore() capture machine state + buffered records, so a
/// holder can rewind to any previously saved position in O(mem_bytes)
/// instead of re-executing from the entry point.
class RvStreamCursor {
 public:
  /// Borrows `prog` and `cracked` (must be crack_program(prog)); the caller
  /// keeps both alive for the cursor's lifetime.
  RvStreamCursor(const RvProgram& prog, const CrackedProgram& cracked,
                 const ExecLimits& limits = {});

  /// Stream position of the next undelivered record.
  u64 position() const { return pos_; }

  /// Push records [begin, end) to `sink` in stream order; begin must be at
  /// or past position() (records already consumed cannot be re-delivered —
  /// restore a checkpoint instead). Skipping [position(), begin) executes
  /// and discards. Delivered short if the program halts, traps, or exhausts
  /// its instruction budget first.
  RvTraceInfo pump_range(u64 begin, u64 end,
                         const std::function<void(const TraceRecord&)>& sink);

  struct Checkpoint {
    RvMachineState machine;
    u64 pos = 0;                       // stream position of pending.front()
    std::vector<TraceRecord> pending;  // undelivered tail of a mid-range crack
  };
  Checkpoint checkpoint() const;
  void restore(const Checkpoint& c);

  /// Provenance so far (instret / completed / trap), same fields pump_range
  /// returns.
  RvTraceInfo info() const;

 private:
  bool refill();  // retire one instruction into pending_; false when done

  const CrackedProgram* cracked_;
  RvMachine machine_;
  std::vector<TraceRecord> pending_;
  std::size_t head_ = 0;  // next undelivered record within pending_
  u64 pos_ = 0;           // stream position of pending_[head_]
};

}  // namespace hcsim::rv
