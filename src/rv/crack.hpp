// hcsim — µop cracking: RV32I instructions -> hcsim StaticUops + value-
// accurate TraceRecords.
//
// The pipeline (core/pipeline.cpp) is trace driven: it consumes a static
// µop program plus a dynamic record stream carrying real values. This layer
// makes an assembled RISC-V program indistinguishable from a generated one:
//
//  * compare-and-branch (beq/bne/blt/...) cracks into kCmp + kBranchCond,
//    mapping RISC-V's fused compare onto the flags model the BR steering
//    scheme keys on (the cmp writes flags = rs1 - rs2; the branch reads
//    them with the matching condition code);
//  * set-less-than (slt/sltu/slti/sltiu and their pseudo forms) cracks into
//    kSub (into the T0 µop temporary) + kShr #31 — the sign-bit extraction
//    idiom — with the *architecturally exact* 0/1 result recorded;
//  * loads/stores map onto the base+offset AGU form (kLoad/kLoadByte/
//    kStore/kStoreByte), so byte kernels exercise the LR scheme and
//    base+small-offset addressing exercises CR carry confinement;
//  * jal/jalr with a link register crack into kMovImm (static return
//    address) + kJump.
//
// Recorded source/result/flags values always come from the functional
// executor, so downstream width predictors and steering observe real data
// widths. Unsigned branches and arithmetic right shifts reuse the closest
// µop shape (kCmp / kShr); their recorded outcomes remain architecturally
// exact, which is what every consumer reads.
#pragma once

#include "rv/exec.hpp"
#include "trace/trace.hpp"

namespace hcsim::rv {

/// A statically cracked program: the hcsim µop program plus the mapping
/// from RV instruction index to its µop range.
struct CrackedProgram {
  Program program;
  /// first_uop[i] = index of instruction i's first µop; size num_insts()+1,
  /// so instruction i owns µops [first_uop[i], first_uop[i+1]).
  std::vector<u32> first_uop;
};

CrackedProgram crack_program(const RvProgram& prog);

/// Provenance of a cracked trace run.
struct RvTraceInfo {
  u64 instret = 0;     // RV instructions retired
  bool completed = false;  // program halted cleanly (vs. µop budget cut)
  std::string error;   // executor trap, if any
};

/// Assemble-free entry point: functionally execute `prog` and emit the
/// value-accurate µop trace, bounded by `max_uops` dynamic µops.
Trace trace_from_program(const RvProgram& prog, u64 max_uops,
                         RvTraceInfo* info = nullptr, const ExecLimits& limits = {});

/// Streaming form: push every dynamic µop record to `sink` instead of
/// materializing a vector — the record stream is bit-identical to
/// trace_from_program's (it is the same interpreter). `cracked` must be
/// crack_program(prog).
RvTraceInfo stream_from_program(const RvProgram& prog, const CrackedProgram& cracked,
                                u64 max_uops,
                                const std::function<void(const TraceRecord&)>& sink,
                                const ExecLimits& limits = {});

}  // namespace hcsim::rv
