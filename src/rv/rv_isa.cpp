#include "rv/rv_isa.hpp"

#include <array>
#include <sstream>

#include "isa/reg.hpp"
#include "util/log.hpp"

namespace hcsim::rv {
namespace {

// Major opcode fields (bits [6:0]).
constexpr u32 kOpLui = 0x37, kOpAuipc = 0x17, kOpJal = 0x6F, kOpJalr = 0x67;
constexpr u32 kOpBranch = 0x63, kOpLoad = 0x03, kOpStore = 0x23;
constexpr u32 kOpImm = 0x13, kOpReg = 0x33, kOpFence = 0x0F, kOpSystem = 0x73;

constexpr u32 bits(u32 v, unsigned hi, unsigned lo) {
  return (v >> lo) & ((1u << (hi - lo + 1)) - 1u);
}

constexpr i32 sign_extend(u32 v, unsigned width) {
  const u32 m = 1u << (width - 1);
  return static_cast<i32>((v ^ m) - m);
}

constexpr bool fits_signed(i32 v, unsigned width) {
  const i32 lo = -(1 << (width - 1));
  const i32 hi = (1 << (width - 1)) - 1;
  return v >= lo && v <= hi;
}

struct OpDesc {
  std::string_view name;
  char type;   // 'R' 'I' 'S' 'B' 'U' 'J' 'F'(fence) 'E'(ecall/ebreak) '?':
  u32 opcode;
  u32 funct3;
  u32 funct7;  // R-type and the srli/srai discriminator
};

constexpr std::array<OpDesc, kNumRvOps> kOps = {{
    /* kIllegal */ {"illegal", '?', 0, 0, 0},
    /* kLui     */ {"lui", 'U', kOpLui, 0, 0},
    /* kAuipc   */ {"auipc", 'U', kOpAuipc, 0, 0},
    /* kJal     */ {"jal", 'J', kOpJal, 0, 0},
    /* kJalr    */ {"jalr", 'I', kOpJalr, 0, 0},
    /* kBeq     */ {"beq", 'B', kOpBranch, 0, 0},
    /* kBne     */ {"bne", 'B', kOpBranch, 1, 0},
    /* kBlt     */ {"blt", 'B', kOpBranch, 4, 0},
    /* kBge     */ {"bge", 'B', kOpBranch, 5, 0},
    /* kBltu    */ {"bltu", 'B', kOpBranch, 6, 0},
    /* kBgeu    */ {"bgeu", 'B', kOpBranch, 7, 0},
    /* kLb      */ {"lb", 'I', kOpLoad, 0, 0},
    /* kLh      */ {"lh", 'I', kOpLoad, 1, 0},
    /* kLw      */ {"lw", 'I', kOpLoad, 2, 0},
    /* kLbu     */ {"lbu", 'I', kOpLoad, 4, 0},
    /* kLhu     */ {"lhu", 'I', kOpLoad, 5, 0},
    /* kSb      */ {"sb", 'S', kOpStore, 0, 0},
    /* kSh      */ {"sh", 'S', kOpStore, 1, 0},
    /* kSw      */ {"sw", 'S', kOpStore, 2, 0},
    /* kAddi    */ {"addi", 'I', kOpImm, 0, 0},
    /* kSlti    */ {"slti", 'I', kOpImm, 2, 0},
    /* kSltiu   */ {"sltiu", 'I', kOpImm, 3, 0},
    /* kXori    */ {"xori", 'I', kOpImm, 4, 0},
    /* kOri     */ {"ori", 'I', kOpImm, 6, 0},
    /* kAndi    */ {"andi", 'I', kOpImm, 7, 0},
    /* kSlli    */ {"slli", 'I', kOpImm, 1, 0x00},
    /* kSrli    */ {"srli", 'I', kOpImm, 5, 0x00},
    /* kSrai    */ {"srai", 'I', kOpImm, 5, 0x20},
    /* kAdd     */ {"add", 'R', kOpReg, 0, 0x00},
    /* kSub     */ {"sub", 'R', kOpReg, 0, 0x20},
    /* kSll     */ {"sll", 'R', kOpReg, 1, 0x00},
    /* kSlt     */ {"slt", 'R', kOpReg, 2, 0x00},
    /* kSltu    */ {"sltu", 'R', kOpReg, 3, 0x00},
    /* kXor     */ {"xor", 'R', kOpReg, 4, 0x00},
    /* kSrl     */ {"srl", 'R', kOpReg, 5, 0x00},
    /* kSra     */ {"sra", 'R', kOpReg, 5, 0x20},
    /* kOr      */ {"or", 'R', kOpReg, 6, 0x00},
    /* kAnd     */ {"and", 'R', kOpReg, 7, 0x00},
    /* kFence   */ {"fence", 'F', kOpFence, 0, 0},
    /* kEcall   */ {"ecall", 'E', kOpSystem, 0, 0},
    /* kEbreak  */ {"ebreak", 'E', kOpSystem, 0, 1},
}};

const OpDesc& desc(RvOp op) { return kOps[static_cast<unsigned>(op)]; }

}  // namespace

u32 encode(const RvInst& inst) {
  const OpDesc& d = desc(inst.op);
  const u32 rd = inst.rd & 31u, rs1 = inst.rs1 & 31u, rs2 = inst.rs2 & 31u;
  const u32 imm = static_cast<u32>(inst.imm);
  switch (d.type) {
    case 'R':
      return (d.funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (d.funct3 << 12) |
             (rd << 7) | d.opcode;
    case 'I': {
      u32 imm12;
      if (inst.op == RvOp::kSlli || inst.op == RvOp::kSrli || inst.op == RvOp::kSrai) {
        HCSIM_CHECK(imm < 32, "shift amount out of range");
        imm12 = (d.funct7 << 5) | imm;
      } else {
        HCSIM_CHECK(fits_signed(inst.imm, 12), "I-type immediate out of range");
        imm12 = imm & 0xFFFu;
      }
      return (imm12 << 20) | (rs1 << 15) | (d.funct3 << 12) | (rd << 7) | d.opcode;
    }
    case 'S':
      HCSIM_CHECK(fits_signed(inst.imm, 12), "S-type immediate out of range");
      return (bits(imm, 11, 5) << 25) | (rs2 << 20) | (rs1 << 15) |
             (d.funct3 << 12) | (bits(imm, 4, 0) << 7) | d.opcode;
    case 'B':
      HCSIM_CHECK(fits_signed(inst.imm, 13) && (imm & 1u) == 0,
                  "branch offset out of range");
      return (bits(imm, 12, 12) << 31) | (bits(imm, 10, 5) << 25) | (rs2 << 20) |
             (rs1 << 15) | (d.funct3 << 12) | (bits(imm, 4, 1) << 8) |
             (bits(imm, 11, 11) << 7) | d.opcode;
    case 'U':
      // imm carries the already-shifted value; the low 12 bits must be clear.
      HCSIM_CHECK((imm & 0xFFFu) == 0, "U-type immediate has low bits set");
      return imm | (rd << 7) | d.opcode;
    case 'J':
      HCSIM_CHECK(fits_signed(inst.imm, 21) && (imm & 1u) == 0,
                  "jump offset out of range");
      return (bits(imm, 20, 20) << 31) | (bits(imm, 10, 1) << 21) |
             (bits(imm, 11, 11) << 20) | (bits(imm, 19, 12) << 12) | (rd << 7) |
             d.opcode;
    case 'F':
      return d.opcode;  // fence encodes pred/succ in imm; modeled as nop
    case 'E':
      return (d.funct7 << 20) | d.opcode;  // funct7 doubles as the imm12 bit
    default:
      HCSIM_CHECK(false, "cannot encode an illegal instruction");
  }
  return 0;
}

RvInst decode(u32 word) {
  RvInst inst;
  const u32 opcode = bits(word, 6, 0);
  const u32 rd = bits(word, 11, 7), funct3 = bits(word, 14, 12);
  const u32 rs1 = bits(word, 19, 15), rs2 = bits(word, 24, 20);
  const u32 funct7 = bits(word, 31, 25);
  inst.rd = static_cast<u8>(rd);
  inst.rs1 = static_cast<u8>(rs1);
  inst.rs2 = static_cast<u8>(rs2);

  auto match = [&](char type) -> RvOp {
    for (unsigned i = 1; i < kNumRvOps; ++i) {
      const OpDesc& d = kOps[i];
      if (d.type != type || d.opcode != opcode) continue;
      if (type == 'R' && (d.funct3 != funct3 || d.funct7 != funct7)) continue;
      if ((type == 'I' || type == 'S' || type == 'B') && d.funct3 != funct3) continue;
      // srli/srai share funct3=5 under OP-IMM; discriminate on funct7.
      if (type == 'I' && opcode == kOpImm && funct3 == 5 && d.funct7 != funct7)
        continue;
      if (type == 'I' && opcode == kOpImm && funct3 == 1 && funct7 != 0) continue;
      return static_cast<RvOp>(i);
    }
    return RvOp::kIllegal;
  };

  switch (opcode) {
    case kOpLui:
    case kOpAuipc:
      inst.op = opcode == kOpLui ? RvOp::kLui : RvOp::kAuipc;
      inst.imm = static_cast<i32>(word & 0xFFFFF000u);
      return inst;
    case kOpJal:
      inst.op = RvOp::kJal;
      inst.imm = sign_extend((bits(word, 31, 31) << 20) | (bits(word, 19, 12) << 12) |
                                 (bits(word, 20, 20) << 11) | (bits(word, 30, 21) << 1),
                             21);
      return inst;
    case kOpJalr:
      if (funct3 != 0) return inst;
      inst.op = RvOp::kJalr;
      inst.imm = sign_extend(bits(word, 31, 20), 12);
      return inst;
    case kOpBranch:
      inst.op = match('B');
      inst.imm = sign_extend((bits(word, 31, 31) << 12) | (bits(word, 7, 7) << 11) |
                                 (bits(word, 30, 25) << 5) | (bits(word, 11, 8) << 1),
                             13);
      return inst;
    case kOpLoad:
      inst.op = match('I');
      inst.imm = sign_extend(bits(word, 31, 20), 12);
      return inst;
    case kOpStore:
      inst.op = match('S');
      inst.imm = sign_extend((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12);
      return inst;
    case kOpImm:
      inst.op = match('I');
      if (funct3 == 1 || funct3 == 5)
        inst.imm = static_cast<i32>(rs2);  // shamt
      else
        inst.imm = sign_extend(bits(word, 31, 20), 12);
      return inst;
    case kOpReg:
      inst.op = match('R');
      return inst;
    case kOpFence:
      inst.op = RvOp::kFence;
      return inst;
    case kOpSystem:
      if (funct3 == 0 && rs1 == 0 && rd == 0) {
        const u32 imm12 = bits(word, 31, 20);
        if (imm12 == 0) inst.op = RvOp::kEcall;
        if (imm12 == 1) inst.op = RvOp::kEbreak;
      }
      return inst;
    default:
      return inst;  // kIllegal
  }
}

std::string_view mnemonic(RvOp op) { return desc(op).name; }

int parse_rv_reg(std::string_view t) {
  static constexpr std::string_view kAbi[] = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  for (unsigned i = 0; i < 32; ++i)
    if (t == kAbi[i]) return static_cast<int>(i);
  if (t == "fp") return 8;
  if (t.size() >= 2 && t.size() <= 3 && t[0] == 'x') {
    unsigned v = 0;
    for (char c : t.substr(1)) {
      if (c < '0' || c > '9') return -1;
      v = v * 10 + static_cast<unsigned>(c - '0');
    }
    if (v < 32 && (t.size() == 2 || t[1] != '0')) return static_cast<int>(v);
  }
  return -1;
}

std::string_view rv_reg_name(unsigned r) {
  // Single source of truth: the hcsim register namespace names the RV block.
  return r < 32 ? reg_name(static_cast<RegId>(kRegX0 + r)) : "x?";
}

std::string rv_disassemble(const RvInst& inst) {
  const OpDesc& d = desc(inst.op);
  std::ostringstream os;
  os << d.name;
  switch (d.type) {
    case 'R':
      os << " " << rv_reg_name(inst.rd) << ", " << rv_reg_name(inst.rs1) << ", "
         << rv_reg_name(inst.rs2);
      break;
    case 'I':
      if (is_rv_load(inst.op) || inst.op == RvOp::kJalr)
        os << " " << rv_reg_name(inst.rd) << ", " << inst.imm << "("
           << rv_reg_name(inst.rs1) << ")";
      else
        os << " " << rv_reg_name(inst.rd) << ", " << rv_reg_name(inst.rs1) << ", "
           << inst.imm;
      break;
    case 'S':
      os << " " << rv_reg_name(inst.rs2) << ", " << inst.imm << "("
         << rv_reg_name(inst.rs1) << ")";
      break;
    case 'B':
      os << " " << rv_reg_name(inst.rs1) << ", " << rv_reg_name(inst.rs2) << ", "
         << inst.imm;
      break;
    case 'U':
      os << " " << rv_reg_name(inst.rd) << ", 0x" << std::hex
         << (static_cast<u32>(inst.imm) >> 12) << std::dec;
      break;
    case 'J':
      os << " " << rv_reg_name(inst.rd) << ", " << inst.imm;
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace hcsim::rv
