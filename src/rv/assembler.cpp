#include "rv/assembler.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace hcsim::rv {
namespace {

struct Stmt {
  int line = 0;
  bool is_data = false;
  std::string mnem;              // lowercase mnemonic or ".directive"
  std::vector<std::string> ops;  // operand tokens, comma-split, trimmed
  u32 addr = 0;                  // byte address (assigned at the end of pass 1)
  u32 size = 0;                  // bytes occupied
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool valid_label(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' && s[0] != '.')
    return false;
  for (char c : s)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.')
      return false;
  return true;
}

/// Parse a decimal/hex integer literal (optional sign). Accepts the full
/// u32 range; the value is returned as the 32-bit two's-complement pattern.
bool parse_int(std::string_view t, i64& out) {
  t = trim(t);
  if (t.empty()) return false;
  bool neg = false;
  if (t[0] == '-' || t[0] == '+') {
    neg = t[0] == '-';
    t.remove_prefix(1);
    if (t.empty()) return false;
  }
  int base = 10;
  if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    base = 16;
    t.remove_prefix(2);
  }
  i64 v = 0;
  for (char c : t) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = v * base + digit;
    if (v > 0x1'0000'0000LL) return false;  // clamp: anything past u32 is an error
  }
  out = neg ? -v : v;
  return out >= -0x8000'0000LL && out <= 0xFFFF'FFFFLL;
}

bool parse_string_literal(std::string_view t, std::string& out) {
  t = trim(t);
  if (t.size() < 2 || t.front() != '"' || t.back() != '"') return false;
  out.clear();
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    char c = t[i];
    if (c == '\\' && i + 2 < t.size()) {
      ++i;
      switch (t[i]) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case '0': c = '\0'; break;
        case '\\': c = '\\'; break;
        case '"': c = '"'; break;
        default: return false;
      }
    }
    out.push_back(c);
  }
  return true;
}

RvOp op_by_name(std::string_view name) {
  for (unsigned i = 1; i < kNumRvOps; ++i)
    if (mnemonic(static_cast<RvOp>(i)) == name) return static_cast<RvOp>(i);
  return RvOp::kIllegal;
}

bool fits_simm12(i64 v) { return v >= -2048 && v <= 2047; }

class Assembler {
 public:
  AsmResult run(const std::string& name, std::string_view source) {
    result_.program.name = name;
    if (!tokenize(source)) return std::move(result_);
    if (!layout()) return std::move(result_);
    if (!emit()) return std::move(result_);
    return std::move(result_);
  }

 private:
  AsmResult result_;
  std::vector<Stmt> stmts_;
  u32 text_size_ = 0;
  u32 data_size_ = 0;
  u32 data_base_ = 0;

  bool fail(int line, const std::string& msg) {
    std::ostringstream os;
    os << "line " << line << ": " << msg;
    result_.error = os.str();
    return false;
  }

  // --- pass 0: split source into labeled statements -----------------------
  bool tokenize(std::string_view source) {
    bool in_data = false;
    int line_no = 0;
    std::size_t pos = 0;
    // Labels waiting for the next statement of their section; a label binds
    // to the *next emitted byte* of the section active when it appears.
    std::vector<std::pair<std::string, int>> pending;
    std::vector<bool> pending_is_data;

    auto bind_pending = [&](u32 stmt_index) -> bool {
      for (std::size_t i = 0; i < pending.size(); ++i) {
        auto& [label, lline] = pending[i];
        if (result_.program.symbols.count(label))
          return fail(lline, "duplicate label '" + label + "'");
        // Temporarily record the statement index; fixed up after layout.
        result_.program.symbols[label] = stmt_index;
        label_stmt_.emplace_back(label, stmt_index);
      }
      pending.clear();
      pending_is_data.clear();
      return true;
    };

    while (pos <= source.size()) {
      const std::size_t eol = source.find('\n', pos);
      std::string_view line = source.substr(
          pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
      pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
      ++line_no;

      // Strip comments ('#', ';', '//'), but not inside string literals —
      // `.asciz "a#b"` is valid.
      {
        bool in_quote = false;
        for (std::size_t i = 0; i < line.size(); ++i) {
          const char ch = line[i];
          if (in_quote) {
            if (ch == '\\') ++i;  // skip the escaped char
            else if (ch == '"') in_quote = false;
            continue;
          }
          if (ch == '"') { in_quote = true; continue; }
          if (ch == '#' || ch == ';' ||
              (ch == '/' && i + 1 < line.size() && line[i + 1] == '/')) {
            line = line.substr(0, i);
            break;
          }
        }
      }
      line = trim(line);

      // Peel off leading "label:" prefixes.
      for (;;) {
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) break;
        const std::string_view candidate = trim(line.substr(0, colon));
        if (!valid_label(candidate)) break;
        pending.emplace_back(std::string(candidate), line_no);
        pending_is_data.push_back(in_data);
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      // Mnemonic = first whitespace-delimited token; the rest are operands.
      std::size_t sp = 0;
      while (sp < line.size() && !std::isspace(static_cast<unsigned char>(line[sp])))
        ++sp;
      Stmt st;
      st.line = line_no;
      st.mnem = std::string(line.substr(0, sp));
      for (char& c : st.mnem) c = static_cast<char>(std::tolower(c));
      std::string_view rest = trim(line.substr(sp));

      // Section switches, including the ".section .data" GNU spelling.
      bool is_section_switch = st.mnem == ".text" || st.mnem == ".data";
      bool switch_to_data = st.mnem == ".data";
      if (st.mnem == ".section") {
        is_section_switch = true;
        // ".text" stays text; .data/.rodata/.bss and friends are all data.
        switch_to_data = rest.find("text") == std::string_view::npos;
      }
      if (is_section_switch) {
        // A label straddling a section switch would silently bind to the
        // wrong section's next statement; reject it.
        if (!pending.empty())
          return fail(pending.front().second,
                      "label '" + pending.front().first + "' precedes a section switch");
        in_data = switch_to_data;
        continue;
      }
      if (st.mnem == ".globl" || st.mnem == ".global" || st.mnem == ".p2align")
        continue;  // accepted and ignored

      st.is_data = in_data;
      // .asciz operands contain commas inside quotes: keep as one token.
      if (st.mnem == ".asciz" || st.mnem == ".string") {
        st.ops.emplace_back(rest);
      } else {
        while (!rest.empty()) {
          const std::size_t comma = rest.find(',');
          st.ops.emplace_back(trim(rest.substr(0, comma)));
          if (st.ops.back().empty()) return fail(line_no, "empty operand");
          if (comma == std::string_view::npos) break;
          rest = rest.substr(comma + 1);
        }
      }
      if (!bind_pending(static_cast<u32>(stmts_.size()))) return false;
      stmts_.push_back(std::move(st));
    }
    // Trailing labels bind to the end of their section.
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const auto& [label, lline] = pending[i];
      if (result_.program.symbols.count(label))
        return fail(lline, "duplicate label '" + label + "'");
      result_.program.symbols[label] = kEndOfSection;
      label_stmt_.emplace_back(label, kEndOfSection);
      trailing_label_in_data_.push_back(pending_is_data[i]);
    }
    return true;
  }

  // --- pass 1: size statements, assign addresses, resolve labels ----------
  bool layout() {
    for (Stmt& st : stmts_) {
      u32& off = st.is_data ? data_size_ : text_size_;
      st.addr = off;  // section-relative for now
      u32 size = 0;
      if (st.mnem[0] == '.') {
        if (!directive_size(st, off, size)) return false;
      } else {
        if (st.is_data) return fail(st.line, "instruction in .data section");
        if (!inst_size(st, size)) return false;
      }
      st.size = size;
      off += size;
    }
    if (text_size_ == 0) {
      result_.error = "program has no instructions";
      return false;
    }
    data_base_ = (text_size_ + kSectionAlign - 1u) & ~(kSectionAlign - 1u);

    // Rewrite symbol values from statement indices to byte addresses.
    std::size_t trailing = 0;
    for (std::size_t i = 0; i < label_stmt_.size(); ++i) {
      const auto& [label, idx] = label_stmt_[i];
      u32 addr;
      if (idx == kEndOfSection) {
        const bool in_data = trailing_label_in_data_[trailing++];
        addr = in_data ? data_base_ + data_size_ : text_size_;
      } else {
        const Stmt& st = stmts_[idx];
        addr = st.addr + (st.is_data ? data_base_ : 0u);
      }
      result_.program.symbols[label] = addr;
    }
    for (Stmt& st : stmts_)
      if (st.is_data) st.addr += data_base_;

    result_.program.text_bytes = text_size_;
    result_.program.image.assign(data_base_ + data_size_, 0);
    return true;
  }

  bool directive_size(const Stmt& st, u32 off, u32& size) {
    if (st.mnem == ".word") { size = 4u * static_cast<u32>(st.ops.size()); return true; }
    if (st.mnem == ".half") { size = 2u * static_cast<u32>(st.ops.size()); return true; }
    if (st.mnem == ".byte") { size = static_cast<u32>(st.ops.size()); return true; }
    if (st.mnem == ".zero" || st.mnem == ".space") {
      i64 n = 0;
      if (st.ops.size() != 1 || !parse_int(st.ops[0], n) || n < 0 || n > (1 << 24))
        return fail(st.line, st.mnem + " needs one non-negative size");
      size = static_cast<u32>(n);
      return true;
    }
    if (st.mnem == ".asciz" || st.mnem == ".string") {
      std::string s;
      if (st.ops.size() != 1 || !parse_string_literal(st.ops[0], s))
        return fail(st.line, "bad string literal");
      size = static_cast<u32>(s.size()) + 1u;
      return true;
    }
    if (st.mnem == ".align") {
      // Padding is computed against the section-relative offset; both
      // sections start at a kSectionAlign boundary (text at 0, data at
      // data_base_), so exponents up to log2(kSectionAlign) hold for the
      // absolute address too. Larger requests would be silently wrong.
      i64 p = 0;
      if (st.ops.size() != 1 || !parse_int(st.ops[0], p) || p < 0 || p > 4)
        return fail(st.line, ".align needs a power-of-two exponent in [0,4]");
      const u32 a = 1u << p;
      size = (a - (off % a)) % a;
      return true;
    }
    return fail(st.line, "unknown directive '" + st.mnem + "'");
  }

  /// Pseudo-instructions with a non-trivial expansion size. Everything else
  /// is 4 bytes.
  bool inst_size(const Stmt& st, u32& size) {
    size = 4;
    if (st.mnem == "li") {
      i64 v = 0;
      if (st.ops.size() != 2 || !parse_int(st.ops[1], v))
        return fail(st.line, "li needs 'rd, integer'");
      if (!fits_simm12(static_cast<i32>(v))) size = 8;
      return true;
    }
    if (st.mnem == "la") size = 8;
    return true;
  }

  // --- pass 2: encode ------------------------------------------------------
  bool emit() {
    for (const Stmt& st : stmts_) {
      if (st.mnem[0] == '.') {
        if (!emit_directive(st)) return false;
      } else {
        if (!emit_inst(st)) return false;
      }
    }
    return true;
  }

  void put_bytes(u32 addr, u64 v, unsigned n) {
    for (unsigned i = 0; i < n; ++i)
      result_.program.image[addr + i] = static_cast<u8>((v >> (8 * i)) & 0xFF);
  }

  bool emit_directive(const Stmt& st) {
    auto& img = result_.program.image;
    if (st.mnem == ".word" || st.mnem == ".half" || st.mnem == ".byte") {
      const unsigned n = st.mnem == ".word" ? 4 : st.mnem == ".half" ? 2 : 1;
      u32 addr = st.addr;
      for (const std::string& opnd : st.ops) {
        i64 v = 0;
        if (!parse_int(opnd, v)) {
          // Labels are valid .word initializers (jump tables, pointers).
          const auto it = result_.program.symbols.find(opnd);
          if (n != 4 || it == result_.program.symbols.end())
            return fail(st.line, "bad " + st.mnem + " value '" + opnd + "'");
          v = it->second;
        }
        put_bytes(addr, static_cast<u64>(v), n);
        addr += n;
      }
      return true;
    }
    if (st.mnem == ".asciz" || st.mnem == ".string") {
      std::string s;
      if (!parse_string_literal(st.ops[0], s)) return fail(st.line, "bad string");
      for (std::size_t i = 0; i < s.size(); ++i)
        img[st.addr + i] = static_cast<u8>(s[i]);
      img[st.addr + s.size()] = 0;
      return true;
    }
    return true;  // .zero/.space/.align: already zero-filled
  }

  bool reg(const Stmt& st, const std::string& t, u8& out) {
    const int r = parse_rv_reg(t);
    if (r < 0) return fail(st.line, "bad register '" + t + "'");
    out = static_cast<u8>(r);
    return true;
  }

  bool imm(const Stmt& st, const std::string& t, i64& out) {
    if (parse_int(t, out)) return true;
    const auto it = result_.program.symbols.find(t);
    if (it != result_.program.symbols.end()) {
      out = it->second;
      return true;
    }
    return fail(st.line, "bad immediate or unknown symbol '" + t + "'");
  }

  /// "off(reg)" or "(reg)" or "symbol" (absolute, base x0).
  bool mem_operand(const Stmt& st, const std::string& t, u8& base, i64& off) {
    const std::size_t open = t.find('(');
    if (open == std::string::npos) {
      base = 0;
      return imm(st, t, off);
    }
    if (t.back() != ')') return fail(st.line, "bad memory operand '" + t + "'");
    const std::string off_str(trim(std::string_view(t).substr(0, open)));
    const std::string reg_str(
        trim(std::string_view(t).substr(open + 1, t.size() - open - 2)));
    off = 0;
    if (!off_str.empty() && !imm(st, off_str, off)) return false;
    return reg(st, reg_str, base);
  }

  /// Branch/jump target: label or absolute address; returns pc-relative.
  bool target(const Stmt& st, const std::string& t, i64& rel) {
    i64 abs = 0;
    if (!imm(st, t, abs)) return false;
    // Control flow must land on an instruction; a data label (or the
    // end-of-text sentinel) is a programming error worth a line number.
    if (abs < 0 || abs >= static_cast<i64>(text_size_))
      return fail(st.line, "branch target '" + t + "' is not in .text");
    rel = abs - static_cast<i64>(st.addr);
    if (rel & 3) return fail(st.line, "misaligned branch target '" + t + "'");
    return true;
  }

  bool check_range(const Stmt& st, i64 v, i64 lo, i64 hi, const char* what) {
    if (v < lo || v > hi) {
      std::ostringstream os;
      os << what << " " << v << " out of range [" << lo << ", " << hi << "]";
      return fail(st.line, os.str());
    }
    return true;
  }

  void encode_at(u32 addr, const RvInst& inst) {
    put_bytes(addr, encode(inst), 4);
  }

  bool expect_ops(const Stmt& st, std::size_t n) {
    if (st.ops.size() != n) {
      std::ostringstream os;
      os << "'" << st.mnem << "' expects " << n << " operand(s), got "
         << st.ops.size();
      return fail(st.line, os.str());
    }
    return true;
  }

  /// li expansion shared by li and la: addi, or lui+addi.
  void emit_load_imm(u32 addr, u8 rd, u32 value, bool force_wide) {
    const i32 sv = static_cast<i32>(value);
    if (!force_wide && fits_simm12(sv)) {
      encode_at(addr, {RvOp::kAddi, rd, 0, 0, sv});
      return;
    }
    const u32 hi = (value + 0x800u) & 0xFFFFF000u;
    const i32 lo = static_cast<i32>(value - hi);  // in [-2048, 2047]
    encode_at(addr, {RvOp::kLui, rd, 0, 0, static_cast<i32>(hi)});
    encode_at(addr + 4, {RvOp::kAddi, rd, rd, 0, lo});
  }

  bool emit_inst(const Stmt& st) {
    u8 rd = 0, rs1 = 0, rs2 = 0;
    i64 v = 0;

    // ---- pseudo-instructions, alphabetical --------------------------------
    const std::string& m = st.mnem;
    if (m == "nop") {
      if (!expect_ops(st, 0)) return false;
      encode_at(st.addr, {RvOp::kAddi, 0, 0, 0, 0});
      return true;
    }
    if (m == "li" || m == "la") {
      if (!expect_ops(st, 2) || !reg(st, st.ops[0], rd)) return false;
      if (m == "la") {
        const auto it = result_.program.symbols.find(st.ops[1]);
        if (it == result_.program.symbols.end())
          return fail(st.line, "la: unknown symbol '" + st.ops[1] + "'");
        emit_load_imm(st.addr, rd, it->second, /*force_wide=*/true);
      } else {
        if (!parse_int(st.ops[1], v)) return fail(st.line, "li needs an integer");
        emit_load_imm(st.addr, rd, static_cast<u32>(v), st.size == 8);
      }
      return true;
    }
    if (m == "mv") {
      if (!expect_ops(st, 2) || !reg(st, st.ops[0], rd) || !reg(st, st.ops[1], rs1))
        return false;
      encode_at(st.addr, {RvOp::kAddi, rd, rs1, 0, 0});
      return true;
    }
    if (m == "not") {
      if (!expect_ops(st, 2) || !reg(st, st.ops[0], rd) || !reg(st, st.ops[1], rs1))
        return false;
      encode_at(st.addr, {RvOp::kXori, rd, rs1, 0, -1});
      return true;
    }
    if (m == "neg") {
      if (!expect_ops(st, 2) || !reg(st, st.ops[0], rd) || !reg(st, st.ops[1], rs2))
        return false;
      encode_at(st.addr, {RvOp::kSub, rd, 0, rs2, 0});
      return true;
    }
    if (m == "seqz" || m == "snez" || m == "sltz" || m == "sgtz") {
      if (!expect_ops(st, 2) || !reg(st, st.ops[0], rd) || !reg(st, st.ops[1], rs1))
        return false;
      if (m == "seqz") encode_at(st.addr, {RvOp::kSltiu, rd, rs1, 0, 1});
      if (m == "snez") encode_at(st.addr, {RvOp::kSltu, rd, 0, rs1, 0});
      if (m == "sltz") encode_at(st.addr, {RvOp::kSlt, rd, rs1, 0, 0});
      if (m == "sgtz") encode_at(st.addr, {RvOp::kSlt, rd, 0, rs1, 0});
      return true;
    }
    if (m == "j" || m == "call") {
      if (!expect_ops(st, 1) || !target(st, st.ops[0], v)) return false;
      if (!check_range(st, v, -(1 << 20), (1 << 20) - 1, "jump offset")) return false;
      encode_at(st.addr,
                {RvOp::kJal, static_cast<u8>(m == "call" ? 1 : 0), 0, 0,
                 static_cast<i32>(v)});
      return true;
    }
    if (m == "jr") {
      if (!expect_ops(st, 1) || !reg(st, st.ops[0], rs1)) return false;
      encode_at(st.addr, {RvOp::kJalr, 0, rs1, 0, 0});
      return true;
    }
    if (m == "ret") {
      if (!expect_ops(st, 0)) return false;
      encode_at(st.addr, {RvOp::kJalr, 0, 1, 0, 0});
      return true;
    }
    if (m == "beqz" || m == "bnez" || m == "bltz" || m == "bgez" || m == "blez" ||
        m == "bgtz") {
      if (!expect_ops(st, 2) || !reg(st, st.ops[0], rs1) ||
          !target(st, st.ops[1], v))
        return false;
      if (!check_range(st, v, -4096, 4095, "branch offset")) return false;
      const i32 off = static_cast<i32>(v);
      RvInst inst;
      if (m == "beqz") inst = {RvOp::kBeq, 0, rs1, 0, off};
      if (m == "bnez") inst = {RvOp::kBne, 0, rs1, 0, off};
      if (m == "bltz") inst = {RvOp::kBlt, 0, rs1, 0, off};
      if (m == "bgez") inst = {RvOp::kBge, 0, rs1, 0, off};
      if (m == "blez") inst = {RvOp::kBge, 0, 0, rs1, off};  // 0 >= rs1
      if (m == "bgtz") inst = {RvOp::kBlt, 0, 0, rs1, off};  // 0 < rs1
      encode_at(st.addr, inst);
      return true;
    }
    if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
      if (!expect_ops(st, 3) || !reg(st, st.ops[0], rs1) || !reg(st, st.ops[1], rs2) ||
          !target(st, st.ops[2], v))
        return false;
      if (!check_range(st, v, -4096, 4095, "branch offset")) return false;
      const i32 off = static_cast<i32>(v);
      // Swap operands: bgt a,b == blt b,a.
      RvInst inst;
      if (m == "bgt") inst = {RvOp::kBlt, 0, rs2, rs1, off};
      if (m == "ble") inst = {RvOp::kBge, 0, rs2, rs1, off};
      if (m == "bgtu") inst = {RvOp::kBltu, 0, rs2, rs1, off};
      if (m == "bleu") inst = {RvOp::kBgeu, 0, rs2, rs1, off};
      encode_at(st.addr, inst);
      return true;
    }

    // ---- base instructions -------------------------------------------------
    const RvOp op = op_by_name(m);
    if (op == RvOp::kIllegal) return fail(st.line, "unknown mnemonic '" + m + "'");

    switch (op) {
      case RvOp::kLui:
      case RvOp::kAuipc: {
        if (!expect_ops(st, 2) || !reg(st, st.ops[0], rd) || !imm(st, st.ops[1], v))
          return false;
        if (!check_range(st, v, 0, 0xFFFFF, "20-bit immediate")) return false;
        encode_at(st.addr, {op, rd, 0, 0, static_cast<i32>(v << 12)});
        return true;
      }
      case RvOp::kJal: {
        if (st.ops.size() == 1) {  // "jal label" == "jal ra, label"
          rd = 1;
          if (!target(st, st.ops[0], v)) return false;
        } else {
          if (!expect_ops(st, 2) || !reg(st, st.ops[0], rd) ||
              !target(st, st.ops[1], v))
            return false;
        }
        if (!check_range(st, v, -(1 << 20), (1 << 20) - 1, "jump offset"))
          return false;
        encode_at(st.addr, {op, rd, 0, 0, static_cast<i32>(v)});
        return true;
      }
      case RvOp::kJalr: {
        if (st.ops.size() == 1) {  // "jalr rs1" == "jalr ra, 0(rs1)"
          if (!reg(st, st.ops[0], rs1)) return false;
          encode_at(st.addr, {op, 1, rs1, 0, 0});
          return true;
        }
        if (!expect_ops(st, 2) || !reg(st, st.ops[0], rd) ||
            !mem_operand(st, st.ops[1], rs1, v))
          return false;
        if (!check_range(st, v, -2048, 2047, "jalr offset")) return false;
        encode_at(st.addr, {op, rd, rs1, 0, static_cast<i32>(v)});
        return true;
      }
      case RvOp::kBeq:
      case RvOp::kBne:
      case RvOp::kBlt:
      case RvOp::kBge:
      case RvOp::kBltu:
      case RvOp::kBgeu: {
        if (!expect_ops(st, 3) || !reg(st, st.ops[0], rs1) ||
            !reg(st, st.ops[1], rs2) || !target(st, st.ops[2], v))
          return false;
        if (!check_range(st, v, -4096, 4095, "branch offset")) return false;
        encode_at(st.addr, {op, 0, rs1, rs2, static_cast<i32>(v)});
        return true;
      }
      case RvOp::kLb:
      case RvOp::kLh:
      case RvOp::kLw:
      case RvOp::kLbu:
      case RvOp::kLhu: {
        if (!expect_ops(st, 2) || !reg(st, st.ops[0], rd) ||
            !mem_operand(st, st.ops[1], rs1, v))
          return false;
        if (!check_range(st, v, -2048, 2047, "load offset")) return false;
        encode_at(st.addr, {op, rd, rs1, 0, static_cast<i32>(v)});
        return true;
      }
      case RvOp::kSb:
      case RvOp::kSh:
      case RvOp::kSw: {
        if (!expect_ops(st, 2) || !reg(st, st.ops[0], rs2) ||
            !mem_operand(st, st.ops[1], rs1, v))
          return false;
        if (!check_range(st, v, -2048, 2047, "store offset")) return false;
        encode_at(st.addr, {op, 0, rs1, rs2, static_cast<i32>(v)});
        return true;
      }
      case RvOp::kAddi:
      case RvOp::kSlti:
      case RvOp::kSltiu:
      case RvOp::kXori:
      case RvOp::kOri:
      case RvOp::kAndi: {
        if (!expect_ops(st, 3) || !reg(st, st.ops[0], rd) ||
            !reg(st, st.ops[1], rs1) || !imm(st, st.ops[2], v))
          return false;
        if (!check_range(st, v, -2048, 2047, "12-bit immediate")) return false;
        encode_at(st.addr, {op, rd, rs1, 0, static_cast<i32>(v)});
        return true;
      }
      case RvOp::kSlli:
      case RvOp::kSrli:
      case RvOp::kSrai: {
        if (!expect_ops(st, 3) || !reg(st, st.ops[0], rd) ||
            !reg(st, st.ops[1], rs1) || !imm(st, st.ops[2], v))
          return false;
        if (!check_range(st, v, 0, 31, "shift amount")) return false;
        encode_at(st.addr, {op, rd, rs1, 0, static_cast<i32>(v)});
        return true;
      }
      case RvOp::kAdd:
      case RvOp::kSub:
      case RvOp::kSll:
      case RvOp::kSlt:
      case RvOp::kSltu:
      case RvOp::kXor:
      case RvOp::kSrl:
      case RvOp::kSra:
      case RvOp::kOr:
      case RvOp::kAnd: {
        if (!expect_ops(st, 3) || !reg(st, st.ops[0], rd) ||
            !reg(st, st.ops[1], rs1) || !reg(st, st.ops[2], rs2))
          return false;
        encode_at(st.addr, {op, rd, rs1, rs2, 0});
        return true;
      }
      case RvOp::kFence:
      case RvOp::kEcall:
      case RvOp::kEbreak:
        if (!expect_ops(st, 0)) return false;
        encode_at(st.addr, {op, 0, 0, 0, 0});
        return true;
      default:
        return fail(st.line, "unsupported instruction '" + m + "'");
    }
  }

  /// Sections start on this boundary, which caps the .align exponent.
  static constexpr u32 kSectionAlign = 16;
  static constexpr u32 kEndOfSection = 0xFFFFFFFFu;
  std::vector<std::pair<std::string, u32>> label_stmt_;
  std::vector<bool> trailing_label_in_data_;
};

}  // namespace

AsmResult assemble(const std::string& name, std::string_view source) {
  Assembler as;
  return as.run(name, source);
}

}  // namespace hcsim::rv
