// hcsim — RV32I functional executor.
//
// Interprets an assembled program with a concrete 32-entry register file and
// a small flat byte memory: the image loads at address 0, the stack grows
// down from the top. Execution is fully deterministic (no RNG, no I/O), so
// the same program yields a bit-identical step stream every run — the
// property the cracking layer (crack.hpp) relies on for reproducible traces.
//
// Halting: ECALL / EBREAK retire and halt, as does a jump to the
// return-address sentinel (ra is initialized to kRvHaltAddr, so a top-level
// `ret` cleanly ends the program). Exceeding the step budget stops execution
// with completed=false; malformed accesses (out-of-range pc, unaligned or
// out-of-bounds memory) set `error` and stop immediately.
#pragma once

#include <array>
#include <functional>
#include <string>

#include "rv/assembler.hpp"

namespace hcsim::rv {

/// Jumping here halts the program. Lives far outside any valid image.
inline constexpr u32 kRvHaltAddr = 0xFFFFFFF0u;

struct ExecLimits {
  u64 max_steps = 2'000'000;  // retired-instruction budget
  u32 mem_bytes = 1u << 20;   // flat memory size (stack starts at the top)
};

/// One retired instruction with its concrete values.
struct RvStep {
  u32 pc = 0;
  RvInst inst;
  u32 rs1_val = 0;
  u32 rs2_val = 0;
  u32 result = 0;    // value written to rd (0 when !wrote_rd)
  bool wrote_rd = false;
  u32 mem_addr = 0;  // effective address (loads/stores)
  bool taken = false;  // branch/jump outcome
  u32 next_pc = 0;
};

struct RvExecResult {
  std::array<u32, 32> regs{};
  u64 steps = 0;
  bool completed = false;  // reached ecall/ebreak/halt-sentinel
  std::string error;       // nonempty on trap (bad pc/address/instruction)
};

/// Execute `prog` to completion (or until the budget/sink stops it). `sink`
/// is invoked once per retired instruction; returning false stops execution
/// (used by the cracker to enforce a µop budget mid-program).
RvExecResult execute(const RvProgram& prog, const ExecLimits& limits = {},
                     const std::function<bool(const RvStep&)>& sink = nullptr);

}  // namespace hcsim::rv
