// hcsim — RV32I functional executor.
//
// Interprets an assembled program with a concrete 32-entry register file and
// a small flat byte memory: the image loads at address 0, the stack grows
// down from the top. Execution is fully deterministic (no RNG, no I/O), so
// the same program yields a bit-identical step stream every run — the
// property the cracking layer (crack.hpp) relies on for reproducible traces.
//
// Two entry points share one interpreter:
//   - execute(): run-to-completion with a per-step sink (the original API).
//   - RvMachine: a *resumable* stepper whose full architectural state
//     (registers, memory, pc, retired count) can be snapshotted and
//     restored. This is what makes an RV trace producer seekable — the
//     trace bus (src/bus) and the windowed sampler checkpoint machine
//     state at window entries so a seek restores the nearest checkpoint
//     instead of re-executing from the entry point (O(period), not
//     O(begin)).
//
// Halting: ECALL / EBREAK retire and halt, as does a jump to the
// return-address sentinel (ra is initialized to kRvHaltAddr, so a top-level
// `ret` cleanly ends the program). Exceeding the step budget stops execution
// with completed=false; malformed accesses (out-of-range pc, unaligned or
// out-of-bounds memory) set `error` and stop immediately.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "rv/assembler.hpp"

namespace hcsim::rv {

/// Jumping here halts the program. Lives far outside any valid image.
inline constexpr u32 kRvHaltAddr = 0xFFFFFFF0u;

struct ExecLimits {
  u64 max_steps = 2'000'000;  // retired-instruction budget
  u32 mem_bytes = 1u << 20;   // flat memory size (stack starts at the top)
};

/// One retired instruction with its concrete values.
struct RvStep {
  u32 pc = 0;
  RvInst inst;
  u32 rs1_val = 0;
  u32 rs2_val = 0;
  u32 result = 0;    // value written to rd (0 when !wrote_rd)
  bool wrote_rd = false;
  u32 mem_addr = 0;  // effective address (loads/stores)
  bool taken = false;  // branch/jump outcome
  u32 next_pc = 0;
};

struct RvExecResult {
  std::array<u32, 32> regs{};
  u64 steps = 0;
  bool completed = false;  // reached ecall/ebreak/halt-sentinel
  std::string error;       // nonempty on trap (bad pc/address/instruction)
};

/// Full resumable machine state: everything `restore` needs to continue a
/// run bit-identically from where `save` left it. Memory dominates the
/// size (ExecLimits::mem_bytes, 1MB by default) — checkpoint holders cap
/// their count, not their interval.
struct RvMachineState {
  std::array<u32, 32> regs{};
  std::vector<u8> mem;
  u32 pc = 0;
  u64 steps = 0;
  bool completed = false;
  std::string error;
};

/// Steppable RV32I interpreter. Construct once per program; `step` retires
/// one instruction at a time. All state lives in the object, so `save` /
/// `restore` give O(mem_bytes) checkpoints at any instruction boundary.
class RvMachine {
 public:
  enum class Outcome {
    kRetired,  // one instruction retired; `out` is valid
    kHalted,   // clean halt (ecall/ebreak already retired, or halt sentinel)
    kTrapped,  // error() describes the fault
    kBudget,   // limits.max_steps retired without halting
  };

  RvMachine(const RvProgram& prog, const ExecLimits& limits = {});

  /// Execute one instruction, committing its effects (registers, memory,
  /// pc, retired count). Only kRetired fills `out`.
  Outcome step(RvStep& out);

  const std::array<u32, 32>& regs() const { return x_; }
  u64 steps() const { return steps_; }
  u32 pc() const { return pc_; }
  /// True once ecall/ebreak retired or the halt sentinel was reached.
  bool completed() const { return completed_; }
  const std::string& error() const { return error_; }

  RvMachineState save() const;
  void restore(const RvMachineState& s);

 private:
  Outcome trap(const std::string& msg);

  const RvProgram* prog_;
  ExecLimits limits_;
  std::vector<RvInst> code_;  // pre-decoded text (image is not self-modifying)
  std::vector<u8> mem_;
  std::array<u32, 32> x_{};
  u32 pc_ = 0;
  u64 steps_ = 0;
  bool completed_ = false;
  std::string error_;
};

/// Execute `prog` to completion (or until the budget/sink stops it). `sink`
/// is invoked once per retired instruction; returning false stops execution
/// (used by the cracker to enforce a µop budget mid-program) — the rejected
/// step does not count toward `steps`.
RvExecResult execute(const RvProgram& prog, const ExecLimits& limits = {},
                     const std::function<bool(const RvStep&)>& sink = nullptr);

}  // namespace hcsim::rv
