// hcsim — two-pass RV32I assembler.
//
// Accepts the GNU-as flavored subset real kernels need: labels, the common
// pseudo-instructions (li, la, mv, j, ret, call, beqz, ...), and data
// directives (.word, .byte, .half, .zero/.space, .asciz, .align). The output
// is a flat little-endian memory image based at address 0: the encoded text
// section first, data placed after it (word-aligned) regardless of where
// .data appears in the source. Pass 1 sizes every statement and binds
// labels; pass 2 resolves symbols and encodes.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rv/rv_isa.hpp"
#include "util/types.hpp"

namespace hcsim::rv {

/// An assembled program: flat image, text prefix, symbol table.
struct RvProgram {
  std::string name;
  std::vector<u8> image;  // code (little-endian words) then data, base addr 0
  u32 text_bytes = 0;     // size of the code prefix; valid pcs are [0, text_bytes)
  std::map<std::string, u32> symbols;  // label -> byte address

  u32 num_insts() const { return text_bytes / 4; }
  /// Instruction word at byte address `pc` (must be word-aligned, in text).
  u32 inst_word(u32 pc) const {
    return static_cast<u32>(image[pc]) | (static_cast<u32>(image[pc + 1]) << 8) |
           (static_cast<u32>(image[pc + 2]) << 16) |
           (static_cast<u32>(image[pc + 3]) << 24);
  }
};

/// Assembly outcome: `error` is empty on success, else "line N: message".
struct AsmResult {
  RvProgram program;
  std::string error;
  bool ok() const { return error.empty(); }
};

AsmResult assemble(const std::string& name, std::string_view source);

}  // namespace hcsim::rv
