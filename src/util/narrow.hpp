// hcsim — narrow-value detection helpers.
//
// The paper (Section 2.1, Figure 3) detects narrow values with leading-zero
// and leading-one detectors: a 32-bit value is "narrow" (8-bit) when its top
// 24 bits are all zero (small unsigned / positive) or all one (sign-extended
// small negative). These helpers are the software equivalent of those
// detectors and are used by the trace generator, the predictors and the
// execution backends alike.
#pragma once

#include <bit>

#include "util/types.hpp"

namespace hcsim {

/// True when `v`'s top 24 bits are all zero (leading-zero detector of
/// Figure 3a): the value is representable as an unsigned byte.
constexpr bool leading_zeros24(u32 v) { return (v & 0xFFFFFF00u) == 0u; }

/// True when `v`'s top 24 bits are all one (leading-one detector of
/// Figure 3b): the value is a sign-extended negative byte.
constexpr bool leading_ones24(u32 v) { return (v & 0xFFFFFF00u) == 0xFFFFFF00u; }

/// The paper's narrowness predicate: fits in 8 bits after zero- or
/// sign-extension.
constexpr bool is_narrow8(u32 v) { return leading_zeros24(v) || leading_ones24(v); }

/// Generalised detector for a `width`-bit helper cluster (the paper fixes
/// width=8 but discusses wider clusters; the ablation bench sweeps this).
constexpr bool is_narrow(u32 v, unsigned width) {
  if (width >= 32) return true;
  const u32 mask = ~u32{0} << width;
  return (v & mask) == 0u || (v & mask) == mask;
}

/// Number of significant bits of `v` interpreted as a signed quantity, i.e.
/// the smallest w such that is_narrow(v, w). Always in [1, 32].
constexpr unsigned significant_bits(u32 v) {
  // Positive-style values: significant bits = 32 - countl_zero + 1 sign bit.
  // Negative-style: complement first.
  const u32 x = (v >> 31) ? ~v : v;
  const unsigned magnitude = 32u - static_cast<unsigned>(std::countl_zero(x));
  return magnitude + 1u <= 32u ? magnitude + 1u : 32u;
}

/// True when `a` and `b` agree on all bits above the low `width` bits.
constexpr bool upper_bits_match(u32 a, u32 b, unsigned width = 8) {
  if (width >= 32) return true;
  const u32 mask = ~u32{0} << width;
  return (a & mask) == (b & mask);
}

/// The paper's "carry not propagated" condition (Section 3.5, Figure 10):
/// adding the narrow source to the wide source leaves the upper bits of the
/// wide source intact, so the add can execute on the `width`-bit AGU/ALU and
/// the upper bits be reconstructed by tagging the wide source register.
constexpr bool carry_confined(u32 wide_src, u32 narrow_src, unsigned width = 8) {
  return upper_bits_match(wide_src, wide_src + narrow_src, width);
}

}  // namespace hcsim
