// hcsim — lightweight statistics primitives used by the simulator and the
// benches (counters, ratios, running mean/stddev, histograms).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/log.hpp"
#include "util/types.hpp"

namespace hcsim {

/// Welford running mean / variance accumulator.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  u64 count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) / total;
    mean_ += delta * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// numerator / denominator pair that renders as a percentage.
struct Ratio {
  u64 num = 0;
  u64 den = 0;

  void add(bool hit) { num += hit ? 1 : 0; ++den; }
  void add_n(u64 n, u64 d) { num += n; den += d; }
  double value() const { return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0; }
  double percent() const { return 100.0 * value(); }
};

/// Fixed-bin histogram over [0, bins) with a saturating overflow bin.
class Histogram {
 public:
  explicit Histogram(std::size_t bins = 64) : counts_(bins + 1, 0) {}

  void add(u64 v, u64 weight = 1) {
    const std::size_t idx = std::min<std::size_t>(v, counts_.size() - 1);
    counts_[idx] += weight;
    total_ += weight;
    sum_ += v * weight;
  }

  u64 total() const { return total_; }
  u64 sum() const { return sum_; }
  u64 bin(std::size_t i) const { return i < counts_.size() ? counts_[i] : 0; }
  std::size_t bins() const { return counts_.size() - 1; }
  double mean() const { return total_ ? static_cast<double>(sum_) / static_cast<double>(total_) : 0.0; }

  /// Smallest v such that at least `q` (0..1) of the mass is <= v.
  u64 quantile(double q) const {
    if (total_ == 0) return 0;
    const double target = q * static_cast<double>(total_);
    double acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      acc += static_cast<double>(counts_[i]);
      if (acc >= target) return i;
    }
    return counts_.size() - 1;
  }

  double fraction_at_most(u64 v) const {
    if (total_ == 0) return 0.0;
    u64 acc = 0;
    for (std::size_t i = 0; i <= std::min<std::size_t>(v, counts_.size() - 1); ++i) acc += counts_[i];
    return static_cast<double>(acc) / static_cast<double>(total_);
  }

  /// Bin-wise accumulation of another histogram with the same bin count
  /// (used to splice per-window measurement histograms in trace order).
  void merge(const Histogram& o) {
    HCSIM_CHECK(counts_.size() == o.counts_.size(), "Histogram::merge: bin mismatch");
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    sum_ += o.sum_;
  }

  /// Deserialization escape hatch (svc job journal / wire codec): restore a
  /// histogram from its serialized (counts, sum) parts. Rebuilding through
  /// add() cannot reproduce `sum_` exactly — values that landed in the
  /// overflow bin lost their magnitude — so the exact sum rides along.
  /// `counts` includes the overflow bin (bins()+1 entries); `total` is
  /// implied (add() keeps total_ == Σ counts).
  void restore(std::vector<u64> counts, u64 sum) {
    HCSIM_CHECK(!counts.empty(), "Histogram::restore: empty bin vector");
    counts_ = std::move(counts);
    total_ = 0;
    for (u64 c : counts_) total_ += c;
    sum_ = sum;
  }

  /// Bin-wise subtraction of an earlier checkpoint of *this same* histogram:
  /// `o` must be a prefix (every bin <= ours), which holds for any snapshot
  /// taken earlier in a run since bins only grow.
  void subtract(const Histogram& o) {
    HCSIM_CHECK(counts_.size() == o.counts_.size(), "Histogram::subtract: bin mismatch");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      HCSIM_CHECK(counts_[i] >= o.counts_[i], "Histogram::subtract: not a prefix");
      counts_[i] -= o.counts_[i];
    }
    total_ -= o.total_;
    sum_ -= o.sum_;
  }

 private:
  std::vector<u64> counts_;
  u64 total_ = 0;
  u64 sum_ = 0;
};

/// Named counter bag — the simulator exposes its raw event counts this way
/// so benches/tests can assert on any of them without new plumbing.
class CounterBag {
 public:
  u64& operator[](const std::string& name) { return counters_[name]; }
  u64 get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, u64>& all() const { return counters_; }

 private:
  std::map<std::string, u64> counters_;
};

/// Geometric mean helper for speedup aggregation across apps.
inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(std::max(x, 1e-12));
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace hcsim
