// hcsim — deterministic random number generation.
//
// Every experiment in the repo is seeded; benches and tests must be
// reproducible run-to-run and machine-to-machine, so we ship our own small
// xoshiro256** implementation instead of relying on unspecified standard
// library distributions.
#pragma once

#include <array>
#include <cmath>

#include "util/types.hpp"

namespace hcsim {

/// splitmix64 — used to expand a single seed into xoshiro state.
constexpr u64 splitmix64(u64& state) {
  state += 0x9E3779B97F4A7C15ull;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit constexpr Rng(u64 seed = 0x5EEDC0DEull) { reseed(seed); }

  constexpr void reseed(u64 seed) {
    u64 sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  constexpr u64 next_u64() {
    const u64 result = rotl(state_[1] * 5u, 7) * 9u;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound == 0 yields 0.
  constexpr u64 below(u64 bound) {
    if (bound == 0) return 0;
    // Multiply-shift reduction; bias is negligible for simulator purposes.
    return static_cast<u64>((static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr i64 range(i64 lo, i64 hi) {
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

  /// Geometric-ish distance >= 1 with mean approximately `mean`.
  u64 geometric(double mean) {
    if (mean <= 1.0) return 1;
    const double p = 1.0 / mean;
    const double u = uniform();
    const double val = std::log1p(-u) / std::log1p(-p);
    const u64 r = static_cast<u64>(val) + 1;
    return r == 0 ? 1 : r;
  }

  /// Fork a statistically independent child stream (for per-app seeding).
  constexpr Rng fork(u64 salt) {
    Rng child(next_u64() ^ (salt * 0x9E3779B97F4A7C15ull));
    return child;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  std::array<u64, 4> state_{};
};

}  // namespace hcsim
