// hcsim — per-cluster issue-slot and queue-occupancy bookkeeping.
//
// The pipeline processes µops in program order but µops issue out of order;
// these helpers track how many issue slots each cluster-cycle has consumed
// and which issue-queue entries are still occupied, so resource contention
// is modeled without a tick-by-tick wakeup/select loop.
#pragma once

#include <set>

#include "util/log.hpp"
#include "util/types.hpp"

namespace hcsim {

/// Issue-slot ledger: at most `width` µops may issue per cluster cycle.
/// Cycles are cluster-local (tick / cycle_ticks).
class SlotSchedule {
 public:
  SlotSchedule(unsigned width, Tick cycle_ticks)
      : width_(width), cycle_ticks_(cycle_ticks) {}

  /// Reserve the first free slot at a cycle whose start is >= `earliest`
  /// tick. Returns the tick at which the µop issues (start of that cycle).
  Tick reserve(Tick earliest);

  /// True if cycle containing `tick` still has a free slot (no reservation).
  bool has_free_slot(Tick tick) const;

  Tick cycle_ticks() const { return cycle_ticks_; }
  u64 reservations() const { return reservations_; }

 private:
  struct CycleUse {
    u64 cycle;
    unsigned used;
    bool operator<(const CycleUse& o) const { return cycle < o.cycle; }
  };

  unsigned width_;
  Tick cycle_ticks_;
  std::set<CycleUse> use_;  // sparse map cycle -> used slots
  u64 reservations_ = 0;
  u64 min_cycle_ = 0;  // cycles below this are fully garbage-collected
};

/// Issue-queue occupancy tracker: entries are held from dispatch until
/// issue. `earliest_dispatch` computes when a new µop can enter given the
/// queue size, and `occupancy_at` supports the IR imbalance trigger.
class QueueTracker {
 public:
  explicit QueueTracker(unsigned size) : size_(size) {}

  /// Given that the µop wants to dispatch at `tick`, return the earliest
  /// tick >= `tick` when the queue has a free entry, and record the entry as
  /// occupied until `issue_tick` (filled in later via `set_issue`).
  Tick earliest_dispatch(Tick tick) {
    gc(tick);
    if (in_queue_.size() < size_) return tick;
    // Wait for the earliest-issuing current occupant to leave.
    auto it = in_queue_.begin();
    const Tick freed = *it;
    in_queue_.erase(it);
    return freed > tick ? freed : tick;
  }

  /// Record a dispatched µop that will issue (leave the queue) at `issue`.
  void add(Tick issue) { in_queue_.insert(issue); }

  /// Occupancy as seen at tick `t` (after lazy cleanup).
  unsigned occupancy(Tick t) {
    gc(t);
    return static_cast<unsigned>(in_queue_.size());
  }

  unsigned size() const { return size_; }

 private:
  void gc(Tick t) {
    while (!in_queue_.empty() && *in_queue_.begin() <= t)
      in_queue_.erase(in_queue_.begin());
  }

  unsigned size_;
  std::multiset<Tick> in_queue_;  // issue ticks of queued µops
};

}  // namespace hcsim
