// hcsim — per-cluster issue-slot and queue-occupancy bookkeeping.
//
// The pipeline processes µops in program order but µops issue out of order;
// these helpers track how many issue slots each cluster-cycle has consumed
// and which issue-queue entries are still occupied, so resource contention
// is modeled without a tick-by-tick wakeup/select loop.
//
// Both structures are garbage-collected ring buffers: the per-µop hot path
// (core/pipeline.cpp) calls reserve()/earliest_dispatch()/has_free_slot()
// for every dynamic µop, so all operations are allocation-free and O(1)
// amortized. The previous std::set/std::multiset ledgers paid a node
// allocation plus a tree rebalance per µop.
#pragma once

#include <bit>
#include <vector>

#include "util/log.hpp"
#include "util/types.hpp"

namespace hcsim {

/// Issue-slot ledger: at most `width` µops may issue per cluster cycle.
/// Cycles are cluster-local (tick / cycle_ticks).
///
/// Storage is a ring of per-cycle occupancy counts over a sliding window of
/// kWindowCycles cycles ending at the highest cycle ever reserved (the
/// frontier). Cycles above the frontier are implicitly empty; cycles that
/// slid out of the window are garbage-collected and report "no free slot",
/// exactly like the old ledger's GC horizon. A parallel full-cycle bitmap
/// lets reserve() and range probes skip saturated regions 64 cycles at a
/// time.
class SlotSchedule {
 public:
  SlotSchedule(unsigned width, Tick cycle_ticks)
      : width_(width),
        cycle_ticks_(cycle_ticks),
        used_(kWindowCycles, 0),
        full_(kWindowCycles / 64, 0) {
    HCSIM_CHECK(width_ > 0 && width_ < 256, "SlotSchedule width out of range");
    HCSIM_CHECK(cycle_ticks_ > 0, "SlotSchedule cycle_ticks must be positive");
  }

  /// Reserve the first free slot at a cycle whose start is >= `earliest`
  /// tick. Returns the tick at which the µop issues (start of that cycle).
  Tick reserve(Tick earliest);

  /// True if cycle containing `tick` still has a free slot (no reservation).
  bool has_free_slot(Tick tick) const;

  /// Range probe for the NREADY imbalance metric: does any cycle overlapping
  /// the tick interval [from, until) have a free slot? `truncated` reports
  /// that part of the interval predates the GC horizon and was not probed.
  struct RangeProbe {
    bool free = false;
    bool truncated = false;
  };
  RangeProbe free_slot_in(Tick from, Tick until) const;

  Tick cycle_ticks() const { return cycle_ticks_; }
  u64 reservations() const { return reservations_; }
  /// Oldest cycle still tracked (cycles below were garbage-collected).
  u64 gc_horizon_cycle() const { return base_; }

 private:
  /// Sliding-window length in cycles. Must be a power of two and a multiple
  /// of 64; 64k cycles is far beyond any lookback the pipeline performs
  /// (reservations trail the frontier by at most a ROB lifetime).
  static constexpr u64 kWindowCycles = u64{1} << 16;
  static constexpr u64 kMask = kWindowCycles - 1;

  unsigned slot(u64 cycle) const { return used_[cycle & kMask]; }
  void gc_to(u64 new_base);
  /// First cycle >= `cycle` with a free slot; `frontier_ + 1` if every
  /// tracked cycle through the frontier is saturated. Requires
  /// base_ <= cycle <= frontier_.
  u64 first_nonfull(u64 cycle) const;

  unsigned width_;
  Tick cycle_ticks_;
  std::vector<u8> used_;   // per-cycle reservation counts (ring)
  std::vector<u64> full_;  // bitmap: cycle saturated (used == width)
  u64 base_ = 0;           // GC horizon: lowest cycle still tracked
  u64 frontier_ = 0;       // highest cycle ever reserved
  u64 reservations_ = 0;
};

/// Issue-queue occupancy tracker: entries are held from dispatch until
/// issue. `earliest_dispatch` computes when a new µop can enter given the
/// queue size, and `occupancy` supports the IR imbalance trigger.
///
/// Occupancy mutates only through add() and the lazy drain of entries whose
/// issue tick has passed — earliest_dispatch() is a pure query. (The old
/// multiset version erased the earliest occupant inside earliest_dispatch,
/// so a caller that probed without dispatching — e.g. the flush/re-steer
/// path running exec_in twice — silently freed a queue slot.)
class QueueTracker {
 public:
  explicit QueueTracker(unsigned size)
      : size_(size),
        ring_(kInitialTicks, 0),
        occ_(kInitialTicks / 64, 0),
        mask_(kInitialTicks - 1) {
    HCSIM_CHECK(size_ > 0, "QueueTracker size must be positive");
  }

  /// Given that the µop wants to dispatch at `tick`, return the earliest
  /// tick >= `tick` when the queue has a free entry. Pure query: the entry
  /// is recorded only by the subsequent add().
  Tick earliest_dispatch(Tick tick);

  /// Record a dispatched µop that will issue (leave the queue) at `issue`.
  void add(Tick issue);

  /// Occupancy as seen at tick `t` (after the lazy drain).
  unsigned occupancy(Tick t) {
    drain(t);
    return static_cast<unsigned>(live_);
  }

  unsigned size() const { return size_; }

 private:
  /// Initial ring span in ticks; must be a power of two and a multiple of
  /// 64 (the occupancy bitmap relies on word-contiguous positions). Grows
  /// by doubling when an issue tick lands beyond the window.
  static constexpr u64 kInitialTicks = u64{1} << 16;
  static_assert(kInitialTicks % 64 == 0);

  void drain(Tick t);   // retire entries with issue <= t
  void grow(Tick issue);
  /// First tick >= `from` whose bucket is occupied; `tail_` if none.
  Tick next_occupied(Tick from) const;

  unsigned size_;
  std::vector<u32> ring_;  // per-tick count of entries issuing at that tick
  std::vector<u64> occ_;   // bitmap: bucket non-empty (skip 64 ticks at a time)
  u64 mask_;
  Tick head_ = 0;  // every tick < head_ has been drained
  Tick tail_ = 0;  // one past the largest issue tick recorded
  u64 live_ = 0;   // entries currently in the queue
};

}  // namespace hcsim
