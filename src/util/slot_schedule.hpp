// hcsim — per-cluster issue-slot and queue-occupancy bookkeeping.
//
// The pipeline processes µops in program order but µops issue out of order;
// these helpers track how many issue slots each cluster-cycle has consumed
// and which issue-queue entries are still occupied, so resource contention
// is modeled without a tick-by-tick wakeup/select loop.
//
// Both structures are garbage-collected ring buffers: the per-µop hot path
// (core/pipeline.cpp) calls reserve()/earliest_dispatch()/has_free_slot()
// for every dynamic µop, so all operations are allocation-free and O(1)
// amortized. The previous std::set/std::multiset ledgers paid a node
// allocation plus a tree rebalance per µop.
//
// The per-µop entry points (reserve, earliest_dispatch, add, drain) are
// defined inline here with their common case open-coded — tick->cycle
// division is a shift whenever cycle_ticks is a power of two (1 and 2 in
// every stock configuration; the clock-ratio ablation's 3 falls back to a
// real divide) — while the cold paths (bitmap scans, GC, growth) stay in
// slot_schedule.cpp.
#pragma once

#include <bit>
#include <vector>

#include "util/log.hpp"
#include "util/types.hpp"

namespace hcsim {

/// Sliding-window length of a slot ledger in cycles. Shared by SlotSchedule
/// and the fused ClusterEpoch engine (core/cluster_epoch.hpp) so both report
/// the same GC horizon — range probes truncate identically. Must be a power
/// of two and a multiple of 64; 64k cycles is far beyond any lookback the
/// pipeline performs.
inline constexpr u64 kSlotWindowCycles = u64{1} << 16;

/// Result of a free-slot range probe (the NREADY imbalance metric).
struct SlotRangeProbe {
  bool free = false;
  bool truncated = false;
};

/// Issue-slot ledger: at most `width` µops may issue per cluster cycle.
/// Cycles are cluster-local (tick / cycle_ticks).
///
/// Storage is a ring of per-cycle occupancy counts over a sliding window of
/// kWindowCycles cycles ending at the highest cycle ever reserved (the
/// frontier). Cycles above the frontier are implicitly empty; cycles that
/// slid out of the window are garbage-collected and report "no free slot",
/// exactly like the old ledger's GC horizon. A parallel full-cycle bitmap
/// lets reserve() and range probes skip saturated regions 64 cycles at a
/// time.
class SlotSchedule {
 public:
  SlotSchedule(unsigned width, Tick cycle_ticks)
      : width_(width),
        cycle_ticks_(cycle_ticks),
        used_(kWindowCycles, 0),
        full_(kWindowCycles / 64, 0) {
    HCSIM_CHECK(width_ > 0 && width_ < 256, "SlotSchedule width out of range");
    HCSIM_CHECK(cycle_ticks_ > 0, "SlotSchedule cycle_ticks must be positive");
    pow2_ = std::has_single_bit(static_cast<u64>(cycle_ticks_));
    shift_ = static_cast<unsigned>(std::countr_zero(static_cast<u64>(cycle_ticks_)));
  }

  /// Reserve the first free slot at a cycle whose start is >= `earliest`
  /// tick. Returns the tick at which the µop issues (start of that cycle).
  Tick reserve(Tick earliest) {
    u64 cycle = to_cycle(earliest);
    if (cycle < base_) cycle = base_;
    if (cycle <= frontier_ && used_[cycle & kMask] >= width_) {
      // Saturated start cycle. In steady state the very next cycle has
      // room (reservations trail the frontier closely); fall back to the
      // bitmap scan only when it is saturated too.
      const u64 nxt = cycle + 1;
      if (nxt > frontier_ || used_[nxt & kMask] < width_)
        cycle = nxt;
      else
        cycle = first_nonfull(nxt);
    }
    if (cycle >= base_ + kWindowCycles) [[unlikely]] {
      // In steady state the frontier advances one cycle at a time, so the
      // window slides by one: open-code that step, call out for jumps.
      if (cycle == base_ + kWindowCycles) {
        used_[base_ & kMask] = 0;
        full_[(base_ & kMask) >> 6] &= ~(u64{1} << (base_ & 63));
        ++base_;
      } else {
        gc_to(cycle - kWindowCycles + 1);
      }
    }
    u8& used = used_[cycle & kMask];
    ++used;
    if (used == width_) full_[(cycle & kMask) >> 6] |= u64{1} << (cycle & 63);
    if (cycle > frontier_) frontier_ = cycle;
    ++reservations_;
    return from_cycle(cycle);
  }

  /// True if cycle containing `tick` still has a free slot (no reservation).
  bool has_free_slot(Tick tick) const;

  /// Range probe for the NREADY imbalance metric: does any cycle overlapping
  /// the tick interval [from, until) have a free slot? `truncated` reports
  /// that part of the interval predates the GC horizon and was not probed.
  using RangeProbe = SlotRangeProbe;
  RangeProbe free_slot_in(Tick from, Tick until) const;

  Tick cycle_ticks() const { return cycle_ticks_; }
  u64 reservations() const { return reservations_; }
  /// Oldest cycle still tracked (cycles below were garbage-collected).
  u64 gc_horizon_cycle() const { return base_; }

 private:
  static constexpr u64 kWindowCycles = kSlotWindowCycles;
  static constexpr u64 kMask = kWindowCycles - 1;

  u64 to_cycle(Tick t) const { return pow2_ ? (t >> shift_) : (t / cycle_ticks_); }
  Tick from_cycle(u64 c) const { return pow2_ ? (c << shift_) : (c * cycle_ticks_); }

  unsigned slot(u64 cycle) const { return used_[cycle & kMask]; }
  void gc_to(u64 new_base);
  /// First cycle >= `cycle` with a free slot; `frontier_ + 1` if every
  /// tracked cycle through the frontier is saturated. Requires
  /// base_ <= cycle <= frontier_.
  u64 first_nonfull(u64 cycle) const;

  unsigned width_;
  Tick cycle_ticks_;
  bool pow2_ = true;
  unsigned shift_ = 0;
  std::vector<u8> used_;   // per-cycle reservation counts (ring)
  std::vector<u64> full_;  // bitmap: cycle saturated (used == width)
  u64 base_ = 0;           // GC horizon: lowest cycle still tracked
  u64 frontier_ = 0;       // highest cycle ever reserved
  u64 reservations_ = 0;
};

/// In-order slot counter: behaviourally identical to SlotSchedule for
/// callers whose `reserve(earliest)` argument never precedes the previously
/// returned tick — the fetch and commit stages, which clamp each request to
/// their last result. Monotonicity collapses the ring + bitmap + GC to two
/// words of state: the current cycle and its occupancy.
class MonotonicSlots {
 public:
  MonotonicSlots(unsigned width, Tick cycle_ticks)
      : width_(width), cycle_ticks_(cycle_ticks) {
    HCSIM_CHECK(width_ > 0, "MonotonicSlots width must be positive");
    HCSIM_CHECK(cycle_ticks_ > 0, "MonotonicSlots cycle_ticks must be positive");
    pow2_ = std::has_single_bit(static_cast<u64>(cycle_ticks_));
    shift_ = static_cast<unsigned>(std::countr_zero(static_cast<u64>(cycle_ticks_)));
  }

  /// First free slot at a cycle whose start is >= `earliest`. Precondition:
  /// `earliest` is >= the tick returned by the previous reserve() (which is
  /// what makes "the current cycle or a later one" exhaustive).
  Tick reserve(Tick earliest) {
    const u64 cycle = pow2_ ? (earliest >> shift_) : (earliest / cycle_ticks_);
    if (cycle > cycle_) {
      cycle_ = cycle;
      used_ = 1;
    } else if (used_ < width_) {
      ++used_;
    } else {
      ++cycle_;
      used_ = 1;
    }
    return pow2_ ? (cycle_ << shift_) : (cycle_ * cycle_ticks_);
  }

 private:
  unsigned width_;
  Tick cycle_ticks_;
  bool pow2_ = true;
  unsigned shift_ = 0;
  u64 cycle_ = 0;
  unsigned used_ = 0;
};

/// Issue-queue occupancy tracker: entries are held from dispatch until
/// issue. `earliest_dispatch` computes when a new µop can enter given the
/// queue size, and `occupancy` supports the IR imbalance trigger.
///
/// Occupancy mutates only through add() and the lazy drain of entries whose
/// issue tick has passed — earliest_dispatch() is a pure query. (The old
/// multiset version erased the earliest occupant inside earliest_dispatch,
/// so a caller that probed without dispatching — e.g. the flush/re-steer
/// path running exec_in twice — silently freed a queue slot.)
class QueueTracker {
 public:
  explicit QueueTracker(unsigned size)
      : size_(size),
        ring_(kInitialTicks, 0),
        occ_(kInitialTicks / 64, 0),
        mask_(kInitialTicks - 1) {
    HCSIM_CHECK(size_ > 0, "QueueTracker size must be positive");
  }

  /// Given that the µop wants to dispatch at `tick`, return the earliest
  /// tick >= `tick` when the queue has a free entry. Pure query: the entry
  /// is recorded only by the subsequent add().
  Tick earliest_dispatch(Tick tick) {
    drain(tick);
    if (live_ < size_) [[likely]] return tick;
    return earliest_dispatch_full();
  }

  /// Record a dispatched µop that will issue (leave the queue) at `issue`.
  void add(Tick issue) {
    // An issue tick at or below the drain head already "left" the queue: by
    // the time any later query observes the tracker, its drain would have
    // retired this entry anyway.
    if (issue < head_) [[unlikely]] return;
    if (issue - head_ > mask_) [[unlikely]] grow(issue);
    const u64 pos = issue & mask_;
    if (ring_[pos]++ == 0) occ_[pos >> 6] |= u64{1} << (pos & 63);
    ++live_;
    if (issue >= tail_) tail_ = issue + 1;
    // Queue-full cache: an add beyond the cached answer raises the required
    // departures without raising the departures available by then; an add at
    // or before it raises both equally.
    if (issue > full_at_) --full_slack_;
  }

  /// Occupancy as seen at tick `t` (after the lazy drain).
  unsigned occupancy(Tick t) {
    drain(t);
    return static_cast<unsigned>(live_);
  }

  unsigned size() const { return size_; }

 private:
  /// Initial ring span in ticks; must be a power of two and a multiple of
  /// 64 (the occupancy bitmap relies on word-contiguous positions). Grows
  /// by doubling when an issue tick lands beyond the window.
  static constexpr u64 kInitialTicks = u64{1} << 16;
  static_assert(kInitialTicks % 64 == 0);

  /// Retire entries with issue <= t. Empty queues only move the head.
  void drain(Tick t) {
    const Tick target = t + 1;
    if (target <= head_) return;
    if (live_ == 0) {
      head_ = target;
      return;
    }
    drain_slow(target);
  }

  void drain_slow(Tick target);
  Tick earliest_dispatch_full() const;  // the queue-full walk
  void grow(Tick issue);
  /// First tick >= `from` whose bucket is occupied; `tail_` if none.
  Tick next_occupied(Tick from) const;

  unsigned size_;
  std::vector<u32> ring_;  // per-tick count of entries issuing at that tick
  std::vector<u64> occ_;   // bitmap: bucket non-empty (skip 64 ticks at a time)
  u64 mask_;
  Tick head_ = 0;  // every tick < head_ has been drained
  Tick tail_ = 0;  // one past the largest issue tick recorded
  u64 live_ = 0;   // entries currently in the queue

  // Queue-full answer cache (see earliest_dispatch_full): `full_at_` is the
  // last computed answer and `full_slack_` is (departures by full_at_) minus
  // (departures required for a free entry). The answer only ever moves
  // forward, so repairs resume from the cache instead of rewalking from
  // head_. Mutable: the cache is invisible to the query semantics.
  mutable Tick full_at_ = 0;
  mutable i64 full_slack_ = -1;
};

}  // namespace hcsim
