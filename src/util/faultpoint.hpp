// hcsim — deterministic fault injection.
//
// Robustness claims ("kill the daemon at any job boundary and the sweep CSV
// is still byte-identical") are only testable if failures are reproducible.
// A FaultPoint is a named site compiled into a failure-prone path — socket
// reads/writes, journal appends, the job loop — that normally does nothing
// and costs one relaxed atomic load. A schedule string arms points to fire
// on exact hit counts:
//
//   HCSIM_FAULT=<point>:<nth>[:<count>][,<point>:<nth>[:<count>]...]
//
//   sock.write.reset:5      the 5th write fails with ECONNRESET
//   sock.read.eintr:1:20    reads 1..20 take a simulated EINTR first
//   job.abort:7             the service abort()s before running its 7th job
//   journal.append.torn:3:0 every append from the 3rd on writes a torn record
//
// `nth` is 1-based; `count` defaults to 1 and 0 means "every hit from nth
// on". Hits are counted per schedule key, so one schedule can aim at several
// points independently.
//
// Domains scope a point to one side of an in-process client/daemon pair:
// a thread inside `ScopedDomain d("daemon")` matches both "sock.write.reset"
// and "daemon.sock.write.reset" entries, and the domain-qualified key keeps
// its own hit counter (counting only that domain's traffic). Tests that host
// the daemon in a thread use this to sever the daemon side of a socket
// without perturbing the client side.
#pragma once

#include <string>

#include "util/types.hpp"

namespace hcsim::fault {

/// True when any schedule entry is armed. The disarmed fast path is one
/// relaxed atomic load — cheap enough for per-syscall call sites.
bool enabled();

/// Count a hit on `point` and return true when the schedule says this hit
/// fails. Always false when no schedule is armed.
bool fire(const char* point);

/// Hits recorded for a schedule key ("sock.write.reset" counts every domain;
/// "daemon.sock.write.reset" counts only hits under that domain). Counting
/// starts when a schedule arms the key — 0 when disarmed.
u64 hits(const std::string& key);

/// Arm a schedule (same syntax as HCSIM_FAULT); "" disarms and clears every
/// hit counter. Aborts on a malformed schedule — a fault test that silently
/// injects nothing would pass vacuously.
void set_schedule(const std::string& schedule);

/// set_schedule(getenv("HCSIM_FAULT") or ""). Call once at process/daemon
/// start; tests drive set_schedule directly.
void reload_from_env();

/// Tag every fire() on this thread with a domain for the current scope.
class ScopedDomain {
 public:
  explicit ScopedDomain(const char* domain);
  ~ScopedDomain();
  ScopedDomain(const ScopedDomain&) = delete;
  ScopedDomain& operator=(const ScopedDomain&) = delete;

 private:
  const char* prev_;
};

}  // namespace hcsim::fault
