// hcsim — basic scalar types and time units shared by every module.
#pragma once

#include <cstdint>
#include <cstddef>

namespace hcsim {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Global simulation time unit. One tick is one *helper-cluster* cycle;
/// the wide cluster, frontend, caches and commit logic operate every
/// `kTicksPerWideCycle` ticks (the paper's 2x clock ratio, Section 2.2).
using Tick = u64;

/// Number of ticks per wide-cluster (slow) cycle. The helper cluster runs at
/// ratio 2 by default; it is a machine parameter so the ablation bench can
/// sweep it.
inline constexpr Tick kDefaultTicksPerWideCycle = 2;

/// Sentinel for "no tick scheduled yet".
inline constexpr Tick kTickNever = ~Tick{0};

/// Dynamic instruction sequence number (monotonic over a run).
using SeqNum = u64;

inline constexpr SeqNum kSeqNone = ~SeqNum{0};

}  // namespace hcsim
