#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hcsim {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << (c ? "  " : "") << cell << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << row[c];
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string ascii_bar(double value, double max_value, int width) {
  if (max_value <= 0) max_value = 1;
  int n = static_cast<int>(value / max_value * width + 0.5);
  n = std::clamp(n, 0, width);
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace hcsim
