// hcsim — assertion and environment helpers.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace hcsim {

[[noreturn]] inline void fatal(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "hcsim fatal: %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

/// Simulator invariant check: enabled in all build types — a cycle-level
/// model that silently corrupts state produces plausible-looking wrong
/// numbers, which is worse than crashing.
#define HCSIM_CHECK(cond, msg)                              \
  do {                                                      \
    if (!(cond)) ::hcsim::fatal(__FILE__, __LINE__, (msg)); \
  } while (0)

/// One-shot stderr warning: the first call per `key` prints and returns
/// true, every later call is a silent no-op (returns false). Used for
/// diagnostics that would otherwise spam a sweep — e.g. the O(begin) cost of
/// a large forward-only stream seek (ROADMAP item 3) is reported once per
/// process instead of once per window. Thread-safe; the returned flag lets
/// tests observe the once-latch directly.
bool log_warn_once(const std::string& key, const std::string& msg);

/// Read an environment-variable override (used by benches and the sampling
/// layer to scale runs without recompiling). Malformed values are fatal:
/// an override that silently truncates ("100k" -> 100, "1e8" -> 1) or wraps
/// on overflow would quietly run the wrong experiment, which is worse than
/// stopping. Only plain non-negative decimal integers are accepted.
inline unsigned long long env_u64(const char* name, unsigned long long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  // strtoull accepts leading whitespace, '+', '-' (negating modulo 2^64) and
  // base prefixes; reject everything but bare digits up front.
  for (const char* p = v; *p; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p)))
      fatal(__FILE__, __LINE__,
            std::string(name) + ": malformed value '" + v +
                "' (non-negative decimal integer required)");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno == ERANGE || end == v || *end != '\0')
    fatal(__FILE__, __LINE__,
          std::string(name) + ": value '" + v + "' does not fit in 64 bits");
  return parsed;
}

}  // namespace hcsim
