// hcsim — assertion and environment helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace hcsim {

[[noreturn]] inline void fatal(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "hcsim fatal: %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

/// Simulator invariant check: enabled in all build types — a cycle-level
/// model that silently corrupts state produces plausible-looking wrong
/// numbers, which is worse than crashing.
#define HCSIM_CHECK(cond, msg)                              \
  do {                                                      \
    if (!(cond)) ::hcsim::fatal(__FILE__, __LINE__, (msg)); \
  } while (0)

/// Read an environment-variable override (used by benches to scale trace
/// length without recompiling).
inline unsigned long long env_u64(const char* name, unsigned long long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::strtoull(v, nullptr, 10);
}

}  // namespace hcsim
