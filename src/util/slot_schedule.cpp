#include "util/slot_schedule.hpp"

namespace hcsim {

Tick SlotSchedule::reserve(Tick earliest) {
  u64 cycle = earliest / cycle_ticks_;
  if (cycle < min_cycle_) cycle = min_cycle_;
  for (;;) {
    auto it = use_.find(CycleUse{cycle, 0});
    if (it == use_.end()) {
      use_.insert(CycleUse{cycle, 1});
      break;
    }
    if (it->used < width_) {
      CycleUse updated = *it;
      ++updated.used;
      use_.erase(it);
      use_.insert(updated);
      break;
    }
    ++cycle;
  }
  ++reservations_;
  // Garbage-collect reservations far in the past to bound memory; the
  // pipeline never looks back more than a ROB lifetime.
  if (use_.size() > 65536) {
    const u64 horizon = use_.rbegin()->cycle;
    const u64 cutoff = horizon > 32768 ? horizon - 32768 : 0;
    while (!use_.empty() && use_.begin()->cycle < cutoff) use_.erase(use_.begin());
    min_cycle_ = cutoff;
  }
  return cycle * cycle_ticks_;
}

bool SlotSchedule::has_free_slot(Tick tick) const {
  const u64 cycle = tick / cycle_ticks_;
  if (cycle < min_cycle_) return false;
  auto it = use_.find(CycleUse{cycle, 0});
  return it == use_.end() || it->used < width_;
}

}  // namespace hcsim
