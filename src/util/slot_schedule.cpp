#include "util/slot_schedule.hpp"

namespace hcsim {

// --- SlotSchedule -----------------------------------------------------------

void SlotSchedule::gc_to(u64 new_base) {
  if (new_base <= base_) return;
  if (new_base - base_ >= kWindowCycles) {
    std::fill(used_.begin(), used_.end(), u8{0});
    std::fill(full_.begin(), full_.end(), u64{0});
  } else {
    for (u64 c = base_; c < new_base; ++c) {
      used_[c & kMask] = 0;
      full_[(c & kMask) >> 6] &= ~(u64{1} << (c & 63));
    }
  }
  base_ = new_base;
}

u64 SlotSchedule::first_nonfull(u64 cycle) const {
  // kWindowCycles is a multiple of 64, so consecutive cycles within one
  // bitmap word are consecutive ring positions: scan a word at a time.
  const u64 end = frontier_ + 1;
  u64 c = cycle;
  while (c < end) {
    const u64 pos = c & kMask;
    const u64 free_bits = ~full_[pos >> 6] >> (pos & 63);
    if (free_bits != 0) {
      const u64 cand = c + static_cast<u64>(std::countr_zero(free_bits));
      return cand < end ? cand : end;
    }
    c += 64 - (pos & 63);
  }
  return end;
}

Tick SlotSchedule::reserve(Tick earliest) {
  u64 cycle = earliest / cycle_ticks_;
  if (cycle < base_) cycle = base_;
  if (cycle <= frontier_) cycle = first_nonfull(cycle);
  if (cycle >= base_ + kWindowCycles) gc_to(cycle - kWindowCycles + 1);
  u8& used = used_[cycle & kMask];
  ++used;
  if (used == width_) full_[(cycle & kMask) >> 6] |= u64{1} << (cycle & 63);
  if (cycle > frontier_) frontier_ = cycle;
  ++reservations_;
  return cycle * cycle_ticks_;
}

bool SlotSchedule::has_free_slot(Tick tick) const {
  const u64 cycle = tick / cycle_ticks_;
  if (cycle < base_) return false;
  if (cycle > frontier_) return true;
  return slot(cycle) < width_;
}

SlotSchedule::RangeProbe SlotSchedule::free_slot_in(Tick from, Tick until) const {
  RangeProbe p;
  if (until <= from) return p;
  u64 c0 = from / cycle_ticks_;
  const u64 c1 = (until - 1) / cycle_ticks_;  // last cycle overlapping the range
  if (c0 < base_) {
    p.truncated = true;
    c0 = base_;
    if (c0 > c1) return p;
  }
  if (c1 > frontier_) {
    p.free = true;  // cycles past the frontier are empty
    return p;
  }
  p.free = first_nonfull(c0) <= c1;
  return p;
}

// --- QueueTracker -----------------------------------------------------------

Tick QueueTracker::next_occupied(Tick from) const {
  // The window is a multiple of 64 ticks, so positions within one bitmap
  // word are consecutive ticks: skip empty regions a word at a time.
  u64 c = from;
  while (c < tail_) {
    const u64 pos = c & mask_;
    const u64 bits = occ_[pos >> 6] >> (pos & 63);
    if (bits != 0) {
      const u64 cand = c + static_cast<u64>(std::countr_zero(bits));
      return cand < tail_ ? cand : tail_;
    }
    c += 64 - (pos & 63);
  }
  return tail_;
}

void QueueTracker::drain(Tick t) {
  const Tick target = t + 1;  // entries with issue <= t leave the queue
  if (target <= head_) return;
  Tick c = head_;
  while (live_ > 0) {
    c = next_occupied(c);
    if (c >= target) break;
    const u64 pos = c & mask_;
    live_ -= ring_[pos];
    ring_[pos] = 0;
    occ_[pos >> 6] &= ~(u64{1} << (pos & 63));
    ++c;
  }
  head_ = target;
}

void QueueTracker::grow(Tick issue) {
  u64 cap = mask_ + 1;
  while (issue - head_ >= cap) cap *= 2;
  std::vector<u32> bigger(cap, 0);
  std::vector<u64> bits(cap / 64, 0);
  const u64 new_mask = cap - 1;
  for (Tick t = head_; t < tail_; ++t) {
    const u32 n = ring_[t & mask_];
    if (n) {
      bigger[t & new_mask] = n;
      bits[(t & new_mask) >> 6] |= u64{1} << (t & 63);
    }
  }
  ring_ = std::move(bigger);
  occ_ = std::move(bits);
  mask_ = new_mask;
}

void QueueTracker::add(Tick issue) {
  // An issue tick at or below the drain head already "left" the queue: by
  // the time any later query observes the tracker, its drain would have
  // retired this entry anyway.
  if (issue < head_) return;
  if (issue - head_ > mask_) grow(issue);
  const u64 pos = issue & mask_;
  if (ring_[pos]++ == 0) occ_[pos >> 6] |= u64{1} << (pos & 63);
  ++live_;
  if (issue >= tail_) tail_ = issue + 1;
}

Tick QueueTracker::earliest_dispatch(Tick tick) {
  drain(tick);
  if (live_ < size_) return tick;
  // Full: the dispatch must wait until enough occupants have issued that an
  // entry frees up. Walk the occupied buckets in issue order; `need` counts
  // the departures required before occupancy drops below the queue size.
  // Stateless on purpose: a pure query must return the same answer when
  // repeated (live_ >= size_ >= 1 guarantees the walk terminates).
  u64 need = live_ - size_ + 1;
  Tick c = head_;
  for (;;) {
    c = next_occupied(c);
    HCSIM_CHECK(c < tail_, "QueueTracker: live entries unaccounted for");
    const u64 n = ring_[c & mask_];
    if (n >= need) return c;
    need -= n;
    ++c;
  }
}

}  // namespace hcsim
