#include "util/slot_schedule.hpp"

namespace hcsim {

// --- SlotSchedule -----------------------------------------------------------

void SlotSchedule::gc_to(u64 new_base) {
  if (new_base <= base_) return;
  if (new_base - base_ >= kWindowCycles) {
    std::fill(used_.begin(), used_.end(), u8{0});
    std::fill(full_.begin(), full_.end(), u64{0});
  } else {
    for (u64 c = base_; c < new_base; ++c) {
      used_[c & kMask] = 0;
      full_[(c & kMask) >> 6] &= ~(u64{1} << (c & 63));
    }
  }
  base_ = new_base;
}

u64 SlotSchedule::first_nonfull(u64 cycle) const {
  // kWindowCycles is a multiple of 64, so consecutive cycles within one
  // bitmap word are consecutive ring positions: scan a word at a time.
  const u64 end = frontier_ + 1;
  u64 c = cycle;
  while (c < end) {
    const u64 pos = c & kMask;
    const u64 free_bits = ~full_[pos >> 6] >> (pos & 63);
    if (free_bits != 0) {
      const u64 cand = c + static_cast<u64>(std::countr_zero(free_bits));
      return cand < end ? cand : end;
    }
    c += 64 - (pos & 63);
  }
  return end;
}

bool SlotSchedule::has_free_slot(Tick tick) const {
  const u64 cycle = to_cycle(tick);
  if (cycle < base_) return false;
  if (cycle > frontier_) return true;
  return slot(cycle) < width_;
}

SlotSchedule::RangeProbe SlotSchedule::free_slot_in(Tick from, Tick until) const {
  RangeProbe p;
  if (until <= from) return p;
  u64 c0 = to_cycle(from);
  const u64 c1 = to_cycle(until - 1);  // last cycle overlapping the range
  if (c0 < base_) {
    p.truncated = true;
    c0 = base_;
    if (c0 > c1) return p;
  }
  if (c1 > frontier_) {
    p.free = true;  // cycles past the frontier are empty
    return p;
  }
  p.free = first_nonfull(c0) <= c1;
  return p;
}

// --- QueueTracker -----------------------------------------------------------

Tick QueueTracker::next_occupied(Tick from) const {
  // The window is a multiple of 64 ticks, so positions within one bitmap
  // word are consecutive ticks: skip empty regions a word at a time.
  u64 c = from;
  while (c < tail_) {
    const u64 pos = c & mask_;
    const u64 bits = occ_[pos >> 6] >> (pos & 63);
    if (bits != 0) {
      const u64 cand = c + static_cast<u64>(std::countr_zero(bits));
      return cand < tail_ ? cand : tail_;
    }
    c += 64 - (pos & 63);
  }
  return tail_;
}

void QueueTracker::drain_slow(Tick target) {
  Tick c = head_;
  while (live_ > 0) {
    c = next_occupied(c);
    if (c >= target) break;
    const u64 pos = c & mask_;
    live_ -= ring_[pos];
    ring_[pos] = 0;
    occ_[pos >> 6] &= ~(u64{1} << (pos & 63));
    ++c;
  }
  head_ = target;
}

void QueueTracker::grow(Tick issue) {
  u64 cap = mask_ + 1;
  while (issue - head_ >= cap) cap *= 2;
  std::vector<u32> bigger(cap, 0);
  std::vector<u64> bits(cap / 64, 0);
  const u64 new_mask = cap - 1;
  for (Tick t = head_; t < tail_; ++t) {
    const u32 n = ring_[t & mask_];
    if (n) {
      bigger[t & new_mask] = n;
      bits[(t & new_mask) >> 6] |= u64{1} << (t & 63);
    }
  }
  ring_ = std::move(bigger);
  occ_ = std::move(bits);
  mask_ = new_mask;
}

Tick QueueTracker::earliest_dispatch_full() const {
  // Full: the dispatch must wait until enough occupants have issued that an
  // entry frees up. A pure query (live_ >= size_ >= 1 guarantees the walks
  // terminate), but amortized O(1) via the (full_at_, full_slack_) cache:
  //   - add(j <= full_at_) raises required and available departures equally;
  //   - add(j > full_at_) decrements the slack (see add());
  //   - a drain with head_ <= full_at_ removes k entries from both sides of
  //     the slack (all removed entries issue before head_), leaving it and
  //     the answer's minimality intact;
  //   - a drain past full_at_ invalidates the cache (head_ > full_at_).
  // The answer never moves backward under adds, so the slack repair resumes
  // the departure walk from the cache instead of restarting at head_.
  if (head_ > full_at_) {
    u64 need = live_ - size_ + 1;
    Tick c = head_;
    for (;;) {
      c = next_occupied(c);
      HCSIM_CHECK(c < tail_, "QueueTracker: live entries unaccounted for");
      const u64 n = ring_[c & mask_];
      if (n >= need) {
        full_at_ = c;
        full_slack_ = static_cast<i64>(n - need);
        return c;
      }
      need -= n;
      ++c;
    }
  }
  while (full_slack_ < 0) {
    const Tick c = next_occupied(full_at_ + 1);
    HCSIM_CHECK(c < tail_, "QueueTracker: live entries unaccounted for");
    full_slack_ += static_cast<i64>(ring_[c & mask_]);
    full_at_ = c;
  }
  return full_at_;
}

}  // namespace hcsim
