// hcsim — plain-text table / CSV rendering for bench output.
//
// Every bench prints the same rows/series the paper's figure or table
// reports; this helper keeps that output aligned and optionally mirrors it
// to CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace hcsim {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; each cell is pre-formatted text.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` decimals.
  static std::string num(double v, int prec = 2);

  /// Render with column alignment and a header rule.
  std::string render() const;

  /// Render as CSV (for offline plotting of the figure).
  std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a horizontal ASCII bar (used to sketch the paper's bar charts in
/// terminal output).
std::string ascii_bar(double value, double max_value, int width = 40);

}  // namespace hcsim
