#include "util/log.hpp"

#include <mutex>
#include <set>

namespace hcsim {

bool log_warn_once(const std::string& key, const std::string& msg) {
  static std::mutex mu;
  static std::set<std::string>* seen = new std::set<std::string>();  // leaked: process-lifetime
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!seen->insert(key).second) return false;
  }
  std::fprintf(stderr, "hcsim warning: %s\n", msg.c_str());
  return true;
}

}  // namespace hcsim
