#include "util/faultpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "util/log.hpp"

namespace hcsim::fault {

namespace {

struct Entry {
  std::string key;  // point name, optionally domain-qualified
  u64 nth = 1;      // 1-based hit index of the first failure
  u64 count = 1;    // failures injected; 0 = every hit from nth on
};

struct State {
  std::mutex mu;
  std::vector<Entry> entries;
  std::map<std::string, u64> hits;
};

// Armed flag outside the mutex: fire() call sites sit on per-syscall paths
// and must cost one relaxed load when fault injection is off (the normal
// case for every production run).
std::atomic<bool> g_armed{false};

State& state() {
  static State s;
  return s;
}

thread_local const char* t_domain = nullptr;

bool entry_triggers(const Entry& e, u64 hit) {
  if (hit < e.nth) return false;
  return e.count == 0 || hit < e.nth + e.count;
}

/// Parse "<key>:<nth>[:<count>]". Aborts on malformed input: a fault test
/// whose schedule silently fails to arm would pass without testing anything.
Entry parse_entry(const std::string& item) {
  const auto c1 = item.find(':');
  HCSIM_CHECK(c1 != std::string::npos && c1 > 0,
              "HCSIM_FAULT entry needs <point>:<nth>: " + item);
  Entry e;
  e.key = item.substr(0, c1);
  const auto c2 = item.find(':', c1 + 1);
  const std::string nth_s =
      c2 == std::string::npos ? item.substr(c1 + 1) : item.substr(c1 + 1, c2 - c1 - 1);
  char* end = nullptr;
  e.nth = std::strtoull(nth_s.c_str(), &end, 10);
  HCSIM_CHECK(end != nth_s.c_str() && *end == '\0' && e.nth >= 1,
              "HCSIM_FAULT nth must be a positive integer: " + item);
  if (c2 != std::string::npos) {
    const std::string count_s = item.substr(c2 + 1);
    e.count = std::strtoull(count_s.c_str(), &end, 10);
    HCSIM_CHECK(end != count_s.c_str() && *end == '\0',
                "HCSIM_FAULT count must be an integer: " + item);
  }
  return e;
}

}  // namespace

bool enabled() { return g_armed.load(std::memory_order_relaxed); }

bool fire(const char* point) {
  if (!enabled()) return false;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.entries.empty()) return false;
  const u64 hit = ++s.hits[point];
  u64 domain_hit = 0;
  std::string qualified;
  if (t_domain != nullptr) {
    qualified = std::string(t_domain) + "." + point;
    domain_hit = ++s.hits[qualified];
  }
  for (const Entry& e : s.entries) {
    if (e.key == point && entry_triggers(e, hit)) return true;
    if (!qualified.empty() && e.key == qualified && entry_triggers(e, domain_hit))
      return true;
  }
  return false;
}

u64 hits(const std::string& key) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.hits.find(key);
  return it == s.hits.end() ? 0 : it->second;
}

void set_schedule(const std::string& schedule) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.entries.clear();
  s.hits.clear();
  for (std::size_t pos = 0; pos < schedule.size();) {
    auto comma = schedule.find(',', pos);
    if (comma == std::string::npos) comma = schedule.size();
    if (comma > pos) s.entries.push_back(parse_entry(schedule.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  g_armed.store(!s.entries.empty(), std::memory_order_relaxed);
}

void reload_from_env() {
  const char* env = std::getenv("HCSIM_FAULT");
  set_schedule(env != nullptr ? env : "");
}

ScopedDomain::ScopedDomain(const char* domain) : prev_(t_domain) {
  t_domain = domain;
}

ScopedDomain::~ScopedDomain() { t_domain = prev_; }

}  // namespace hcsim::fault
