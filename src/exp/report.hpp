// hcsim — sweep aggregation and machine-readable reporting.
//
// Replaces the per-bench hand-rolled loops-and-printf: a finished
// SweepResult aggregates into per-variant summaries (mean/geomean speedup,
// helper occupancy, copy pressure, EDP/ED^2 gains) and serializes to CSV
// (one row per point, stable column order) or JSON (points + summaries +
// run metadata) for offline plotting.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace hcsim::exp {

/// Geometric mean; 0.0 for an empty input or any non-positive element.
double geomean(const std::vector<double>& v);

/// Arithmetic mean; 0.0 for an empty input.
double mean(const std::vector<double>& v);

/// Aggregate statistics of every point sharing one ConfigVariant.
struct VariantSummary {
  std::string config;
  u64 n_points = 0;
  double mean_speedup = 0.0;
  double geomean_speedup = 0.0;
  double mean_perf_pct = 0.0;        // (speedup-1)*100, averaged
  double mean_wide_cycle_speedup = 0.0;
  double mean_helper_pct = 0.0;      // % of µops executed in the helper
  double mean_copy_pct = 0.0;        // copies as % of µops
  double mean_edp_gain_pct = 0.0;
  double mean_ed2p_gain_pct = 0.0;
};

/// One summary per variant, in the sweep's variant order.
std::vector<VariantSummary> summarize(const SweepResult& result);

/// CSV with one row per point, in grid order. Deterministic: contains no
/// timing or thread-count metadata, so serial and parallel runs of the same
/// sweep produce byte-identical output.
std::string to_csv(const SweepResult& result);

/// JSON document: {"sweep", "threads", "wall_seconds", "points": [...],
/// "summary": [...]}. The "points" and "summary" arrays are deterministic;
/// the metadata fields describe this particular run.
std::string to_json(const SweepResult& result);

/// Human-readable per-variant summary table (TextTable-rendered).
std::string render_summary(const SweepResult& result);

/// Sampled-vs-full accuracy report: the same sweep run fully and through
/// the src/sample windowed simulator (points matched by grid index), each
/// metric aggregated to its mean full/sampled value and worst per-point
/// relative error. Counter metrics compare per-committed-µop rates; see
/// sample::sampling_errors for the metric list and error definition.
std::string render_sampling_error(const SweepResult& full, const SweepResult& sampled);

/// Worst per-point per-metric relative error between the two runs — the
/// bound CI and tests gate on. Fatal if the sweeps have different shapes.
double max_sampling_rel_error(const SweepResult& full, const SweepResult& sampled);

}  // namespace hcsim::exp
