// hcsim — declarative experiment sweeps.
//
// Every figure in the paper is a grid: applications x steering (or machine)
// configurations, sometimes x seeds or trace lengths. A SweepSpec describes
// that grid declaratively; expand() turns it into a flat, deterministically
// ordered list of ExperimentPoints that the runner (runner.hpp) executes —
// serially or on a thread pool — with identical results either way.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/machine_config.hpp"
#include "wload/profile.hpp"

namespace hcsim::exp {

/// One named machine configuration under test. For the common case (Table 1
/// machine + a steering scheme) use variant_from_steering(); ablations can
/// supply a fully customised MachineConfig (clock ratio, datapath width,
/// scheduler sizing, ...).
struct ConfigVariant {
  std::string name;
  MachineConfig machine;
};

/// Variant named after the steering scheme (e.g. "8_8_8+BR+LR+CR"), running
/// on the Table 1 helper machine.
ConfigVariant variant_from_steering(const SteeringConfig& steer);

/// The canonical cumulative scheme ladder of the evaluation section:
/// 8_8_8, +BR, +LR, +CR, +CP, +IR, IR-nodest.
std::vector<ConfigVariant> cumulative_scheme_variants();

/// A declarative experiment grid. Empty `seeds` means "each profile's own
/// seed"; empty `trace_lens` means "default_trace_len() once".
struct SweepSpec {
  std::string name;
  std::vector<WorkloadProfile> workloads;
  std::vector<ConfigVariant> variants;
  std::vector<u64> seeds;       // overrides profile.seed when non-empty
  std::vector<u64> trace_lens;  // 0 entries resolve to default_trace_len()
  /// The machine every point's speedup is measured against.
  MachineConfig baseline;

  SweepSpec();  // baseline = monolithic_baseline()

  /// Grid size after applying the empty-dimension defaults.
  u64 num_points() const;
};

/// One cell of the expanded grid.
struct ExperimentPoint {
  u32 index = 0;  // position in expansion order (workload-major)
  u32 workload_idx = 0, variant_idx = 0, seed_idx = 0, len_idx = 0;
  WorkloadProfile profile;  // seed already applied
  ConfigVariant variant;
  u64 n_records = 0;  // resolved trace length
};

/// Deterministic grid expansion: workload-major, then variant, then seed,
/// then trace length. `point.index` equals the position in the returned
/// vector.
std::vector<ExperimentPoint> expand(const SweepSpec& spec);

// --- named sweeps (used by the hcsim_sweep CLI and the benches) -----------

/// Registry of predefined sweeps: fig06, fig12, cumulative, edp,
/// helper_design, rv (bundled RISC-V kernels x cumulative ladder), smoke.
const std::vector<std::string>& sweep_names();

/// Look up a predefined sweep. std::nullopt if the name is unknown.
std::optional<SweepSpec> find_sweep(const std::string& name);

}  // namespace hcsim::exp
