#include "exp/sweep.hpp"

#include "rv/kernels.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace hcsim::exp {

ConfigVariant variant_from_steering(const SteeringConfig& steer) {
  if (!steer.helper_enabled) return {"baseline", monolithic_baseline()};
  return {steer.describe(), helper_machine(steer)};
}

std::vector<ConfigVariant> cumulative_scheme_variants() {
  return {
      variant_from_steering(steering_888()),
      variant_from_steering(steering_888_br()),
      variant_from_steering(steering_888_br_lr()),
      variant_from_steering(steering_888_br_lr_cr()),
      variant_from_steering(steering_cp()),
      variant_from_steering(steering_ir()),
      variant_from_steering(steering_ir_nodest()),
  };
}

SweepSpec::SweepSpec() : baseline(monolithic_baseline()) {}

u64 SweepSpec::num_points() const {
  const u64 s = seeds.empty() ? 1 : seeds.size();
  const u64 l = trace_lens.empty() ? 1 : trace_lens.size();
  return workloads.size() * variants.size() * s * l;
}

std::vector<ExperimentPoint> expand(const SweepSpec& spec) {
  const std::vector<u64> seeds = spec.seeds.empty() ? std::vector<u64>{0} : spec.seeds;
  const std::vector<u64> lens =
      spec.trace_lens.empty() ? std::vector<u64>{0} : spec.trace_lens;

  std::vector<ExperimentPoint> points;
  points.reserve(spec.workloads.size() * spec.variants.size() * seeds.size() *
                 lens.size());
  for (u32 wi = 0; wi < spec.workloads.size(); ++wi)
    for (u32 vi = 0; vi < spec.variants.size(); ++vi)
      for (u32 si = 0; si < seeds.size(); ++si)
        for (u32 li = 0; li < lens.size(); ++li) {
          ExperimentPoint p;
          p.index = static_cast<u32>(points.size());
          p.workload_idx = wi;
          p.variant_idx = vi;
          p.seed_idx = si;
          p.len_idx = li;
          p.profile = spec.workloads[wi];
          if (seeds[si] != 0) p.profile.seed = seeds[si];
          p.variant = spec.variants[vi];
          p.n_records = lens[li] != 0 ? lens[li] : default_trace_len();
          points.push_back(std::move(p));
        }
  return points;
}

namespace {

std::vector<WorkloadProfile> apps(std::initializer_list<const char*> names) {
  std::vector<WorkloadProfile> out;
  for (const char* n : names) out.push_back(spec_profile(n));
  return out;
}

SweepSpec make_fig06() {
  SweepSpec s;
  s.name = "fig06";
  s.workloads = spec_int_2000_profiles();
  s.variants = {variant_from_steering(steering_888())};
  return s;
}

SweepSpec make_fig12() {
  SweepSpec s;
  s.name = "fig12";
  s.workloads = spec_int_2000_profiles();
  s.variants = {variant_from_steering(steering_888()),
                variant_from_steering(steering_888_br_lr_cr())};
  return s;
}

SweepSpec make_cumulative() {
  SweepSpec s;
  s.name = "cumulative";
  s.workloads = spec_int_2000_profiles();
  s.variants = cumulative_scheme_variants();
  return s;
}

SweepSpec make_edp() {
  SweepSpec s;
  s.name = "edp";
  s.workloads = spec_int_2000_profiles();
  s.variants = {variant_from_steering(steering_ir())};
  return s;
}

SweepSpec make_helper_design() {
  SweepSpec s;
  s.name = "helper_design";
  s.workloads = apps({"gcc", "gzip", "twolf", "parser", "vpr"});
  for (unsigned ratio : {1u, 2u, 3u, 4u}) {
    ConfigVariant v = variant_from_steering(steering_ir());
    v.name = "clock" + std::to_string(ratio) + "x";
    v.machine.ticks_per_wide_cycle = ratio;
    s.variants.push_back(std::move(v));
  }
  // width8 is omitted: it would be the same machine as clock2x (8-bit
  // datapath at the default 2x clock) — the benches reuse that variant.
  for (unsigned width : {4u, 16u}) {
    ConfigVariant v = variant_from_steering(steering_ir());
    v.name = "width" + std::to_string(width);
    v.machine.helper_width_bits = width;
    s.variants.push_back(std::move(v));
  }
  {
    ConfigVariant v = variant_from_steering(steering_ir());
    v.name = "iq16x2";
    v.machine.iq_helper = 16;
    v.machine.issue_helper = 2;
    s.variants.push_back(std::move(v));
  }
  return s;
}

SweepSpec make_rv() {
  // Every bundled RISC-V kernel across the cumulative steering ladder: the
  // real-program counterpart of the `cumulative` sweep.
  SweepSpec s;
  s.name = "rv";
  s.workloads = rv::rv_workload_profiles();
  s.variants = cumulative_scheme_variants();
  return s;
}

SweepSpec make_smoke() {
  SweepSpec s;
  s.name = "smoke";
  s.workloads = apps({"bzip2", "gcc", "mcf"});
  s.variants = {variant_from_steering(steering_888()),
                variant_from_steering(steering_888_br_lr_cr())};
  s.trace_lens = {8000};
  return s;
}

// Single registry table: sweep_names() and find_sweep() cannot drift apart.
struct NamedSweep {
  const char* name;
  SweepSpec (*make)();
};
constexpr NamedSweep kSweeps[] = {
    {"fig06", make_fig06},   {"fig12", make_fig12},
    {"cumulative", make_cumulative}, {"edp", make_edp},
    {"helper_design", make_helper_design}, {"rv", make_rv},
    {"smoke", make_smoke},
};

}  // namespace

const std::vector<std::string>& sweep_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const NamedSweep& s : kSweeps) names.push_back(s.name);
    return names;
  }();
  return kNames;
}

std::optional<SweepSpec> find_sweep(const std::string& name) {
  for (const NamedSweep& s : kSweeps)
    if (name == s.name) return s.make();
  return std::nullopt;
}

}  // namespace hcsim::exp
