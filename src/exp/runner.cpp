#include "exp/runner.hpp"

#include <chrono>
#include <map>
#include <optional>
#include <tuple>

#include "core/pipeline.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace hcsim::exp {

// --- ThreadPool -------------------------------------------------------------

ThreadPool::ThreadPool(unsigned n_threads) {
  HCSIM_CHECK(n_threads > 0, "ThreadPool needs at least one worker");
  workers_.reserve(n_threads);
  for (unsigned i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    HCSIM_CHECK(!stopping_, "submit on a stopping ThreadPool");
    queue_.push(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

// --- run_sweep --------------------------------------------------------------

namespace {

/// Run all jobs: inline when serial, else on `pool` (or a private pool when
/// none was supplied). Each job must be independent of the others (they may
/// run in any order). `cancelled` is polled before each job — queued jobs
/// still drain through their wrapper, they just skip the work.
void run_jobs(std::vector<std::function<void()>>& jobs, unsigned threads,
              ThreadPool* pool, const std::function<bool()>& cancelled) {
  const auto stop = [&cancelled] { return cancelled && cancelled(); };
  if (!pool && threads <= 1) {
    for (auto& job : jobs) {
      if (stop()) return;
      job();
    }
    return;
  }

  // Per-batch latch, NOT ThreadPool::wait_idle: a shared pool may be running
  // other batches' jobs concurrently, and this call must only wait for its
  // own.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t left = jobs.size();
  if (left == 0) return;

  std::optional<ThreadPool> own;
  if (!pool) {
    own.emplace(threads);
    pool = &*own;
  }
  for (auto& job : jobs)
    pool->submit([&, job = std::move(job)] {
      if (!stop()) job();
      std::lock_guard<std::mutex> lock(mu);
      if (--left == 0) cv.notify_all();
    });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&left] { return left == 0; });
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, const RunOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();

  unsigned threads = opts.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  if (opts.pool) threads = opts.pool->size();

  const std::vector<ExperimentPoint> points = expand(spec);

  // Baseline cells: one (trace, baseline simulation) per unique
  // (workload, seed, length) combination, shared by every variant point.
  struct BaselineCell {
    const WorkloadProfile* profile = nullptr;
    u64 n_records = 0;
    SimResult sim;
    PowerReport power;
  };
  std::map<std::tuple<u32, u32, u32>, u32> cell_of;
  std::vector<BaselineCell> cells;
  std::vector<u32> point_cell(points.size());
  for (const ExperimentPoint& p : points) {
    const auto key = std::make_tuple(p.workload_idx, p.seed_idx, p.len_idx);
    auto [it, inserted] = cell_of.emplace(key, static_cast<u32>(cells.size()));
    if (inserted) cells.push_back({&p.profile, p.n_records, {}, {}});
    point_cell[p.index] = it->second;
  }

  // Phase 1: generate traces and simulate the baseline machine, one job per
  // cell. Below the stream threshold simulate_workload() warms the process-
  // wide trace cache (internally synchronized, so concurrent cells are
  // fine); above it every simulation streams records straight from the
  // generator and nothing is materialized.
  {
    std::vector<std::function<void()>> jobs;
    jobs.reserve(cells.size());
    for (BaselineCell& cell : cells)
      jobs.push_back([&cell, &spec] {
        cell.sim = simulate_workload(spec.baseline, *cell.profile, cell.n_records);
        cell.power = analyze_power(cell.sim, spec.baseline);
      });
    run_jobs(jobs, threads, opts.pool, opts.cancelled);
  }

  // Phase 2: one job per point; results land in their index slot, so the
  // collected vector is in grid order no matter the completion order.
  SweepResult result;
  result.sweep = spec.name;
  result.threads_used = threads;
  result.points.resize(points.size());

  std::mutex progress_mu;
  u64 done = 0;
  {
    std::vector<std::function<void()>> jobs;
    jobs.reserve(points.size());
    for (const ExperimentPoint& p : points)
      jobs.push_back([&, &p = p] {
        const BaselineCell& cell = cells[point_cell[p.index]];
        PointResult pr;
        pr.point = p;
        pr.baseline = cell.sim;
        pr.power_baseline = cell.power;
        pr.sim = simulate_workload(p.variant.machine, p.profile, p.n_records);
        pr.power_sim = analyze_power(pr.sim, p.variant.machine);
        result.points[p.index] = std::move(pr);
        if (opts.on_point) {
          std::lock_guard<std::mutex> lock(progress_mu);
          ++done;
          opts.on_point(result.points[p.index], done, points.size());
        }
      });
    run_jobs(jobs, threads, opts.pool, opts.cancelled);
  }

  result.cancelled = opts.cancelled && opts.cancelled();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace hcsim::exp
