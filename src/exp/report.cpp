#include "exp/report.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "sample/windowed.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace hcsim::exp {

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : v) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(v.size()));
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

std::vector<VariantSummary> summarize(const SweepResult& result) {
  // Group by variant index; variant indices are dense [0, n_variants).
  u32 n_variants = 0;
  for (const PointResult& pr : result.points)
    n_variants = std::max(n_variants, pr.point.variant_idx + 1);

  std::vector<std::vector<const PointResult*>> groups(n_variants);
  for (const PointResult& pr : result.points)
    groups[pr.point.variant_idx].push_back(&pr);

  std::vector<VariantSummary> out;
  out.reserve(n_variants);
  for (const auto& group : groups) {
    if (group.empty()) continue;
    VariantSummary s;
    s.config = group.front()->point.variant.name;
    s.n_points = group.size();
    std::vector<double> speedups, wc_speedups, perf, helper_pct, copy_pct, edp, ed2p;
    for (const PointResult* pr : group) {
      speedups.push_back(pr->speedup());
      wc_speedups.push_back(pr->wide_cycle_speedup());
      perf.push_back(pr->perf_increase_pct());
      helper_pct.push_back(100.0 * pr->sim.helper_frac());
      copy_pct.push_back(100.0 * pr->sim.copy_frac());
      edp.push_back(pr->edp_gain_pct());
      ed2p.push_back(pr->ed2p_gain_pct());
    }
    s.mean_speedup = mean(speedups);
    s.geomean_speedup = geomean(speedups);
    s.mean_perf_pct = mean(perf);
    s.mean_wide_cycle_speedup = mean(wc_speedups);
    s.mean_helper_pct = mean(helper_pct);
    s.mean_copy_pct = mean(copy_pct);
    s.mean_edp_gain_pct = mean(edp);
    s.mean_ed2p_gain_pct = mean(ed2p);
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

/// Minimal JSON string escaping (config names contain only ASCII, but stay
/// correct for quotes/backslashes anyway).
std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_csv(const SweepResult& result) {
  std::ostringstream os;
  os << "app,config,seed,n_uops,baseline_wide_cycles,wide_cycles,speedup,"
        "perf_pct,wide_cycle_speedup,helper_pct,copy_pct,wp_accuracy_pct,"
        "energy_baseline,energy,edp_gain_pct,ed2p_gain_pct\n";
  for (const PointResult& pr : result.points) {
    os << pr.point.profile.name << ',' << pr.point.variant.name << ','
       << pr.point.profile.seed << ',' << pr.sim.uops << ','
       << fmt("%.0f", pr.baseline.wide_cycles) << ','
       << fmt("%.0f", pr.sim.wide_cycles) << ',' << fmt("%.6f", pr.speedup()) << ','
       << fmt("%.3f", pr.perf_increase_pct()) << ','
       << fmt("%.6f", pr.wide_cycle_speedup()) << ','
       << fmt("%.3f", 100.0 * pr.sim.helper_frac()) << ','
       << fmt("%.3f", 100.0 * pr.sim.copy_frac()) << ','
       << fmt("%.3f", 100.0 * pr.sim.wp_accuracy()) << ','
       << fmt("%.1f", pr.power_baseline.energy) << ',' << fmt("%.1f", pr.power_sim.energy)
       << ',' << fmt("%.3f", pr.edp_gain_pct()) << ','
       << fmt("%.3f", pr.ed2p_gain_pct()) << '\n';
  }
  return os.str();
}

std::string to_json(const SweepResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"sweep\": " << json_str(result.sweep) << ",\n";
  os << "  \"threads\": " << result.threads_used << ",\n";
  os << "  \"wall_seconds\": " << fmt("%.3f", result.wall_seconds) << ",\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointResult& pr = result.points[i];
    os << "    {\"app\": " << json_str(pr.point.profile.name)
       << ", \"config\": " << json_str(pr.point.variant.name)
       << ", \"seed\": " << pr.point.profile.seed << ", \"n_uops\": " << pr.sim.uops
       << ", \"speedup\": " << fmt("%.6f", pr.speedup())
       << ", \"wide_cycle_speedup\": " << fmt("%.6f", pr.wide_cycle_speedup())
       << ", \"helper_pct\": " << fmt("%.3f", 100.0 * pr.sim.helper_frac())
       << ", \"copy_pct\": " << fmt("%.3f", 100.0 * pr.sim.copy_frac())
       << ", \"energy\": " << fmt("%.1f", pr.power_sim.energy)
       << ", \"edp_gain_pct\": " << fmt("%.3f", pr.edp_gain_pct())
       << ", \"ed2p_gain_pct\": " << fmt("%.3f", pr.ed2p_gain_pct()) << "}"
       << (i + 1 < result.points.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  const std::vector<VariantSummary> summaries = summarize(result);
  os << "  \"summary\": [\n";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const VariantSummary& s = summaries[i];
    os << "    {\"config\": " << json_str(s.config) << ", \"n_points\": " << s.n_points
       << ", \"mean_speedup\": " << fmt("%.6f", s.mean_speedup)
       << ", \"geomean_speedup\": " << fmt("%.6f", s.geomean_speedup)
       << ", \"mean_wide_cycle_speedup\": " << fmt("%.6f", s.mean_wide_cycle_speedup)
       << ", \"mean_perf_pct\": " << fmt("%.3f", s.mean_perf_pct)
       << ", \"mean_helper_pct\": " << fmt("%.3f", s.mean_helper_pct)
       << ", \"mean_copy_pct\": " << fmt("%.3f", s.mean_copy_pct)
       << ", \"mean_edp_gain_pct\": " << fmt("%.3f", s.mean_edp_gain_pct)
       << ", \"mean_ed2p_gain_pct\": " << fmt("%.3f", s.mean_ed2p_gain_pct) << "}"
       << (i + 1 < summaries.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

namespace {

/// Per-metric aggregation across all compared points of a sweep pair.
struct MetricAgg {
  double full_sum = 0.0;
  double sampled_sum = 0.0;
  double max_err = 0.0;
  u64 n = 0;
};

void check_same_shape(const SweepResult& full, const SweepResult& sampled) {
  HCSIM_CHECK(full.points.size() == sampled.points.size(),
              "sampling error report: sweeps have different point counts (" +
                  std::to_string(full.points.size()) + " vs " +
                  std::to_string(sampled.points.size()) + ")");
  for (std::size_t i = 0; i < full.points.size(); ++i) {
    const ExperimentPoint& f = full.points[i].point;
    const ExperimentPoint& s = sampled.points[i].point;
    HCSIM_CHECK(f.profile.name == s.profile.name && f.variant.name == s.variant.name,
                "sampling error report: point " + std::to_string(i) +
                    " mismatch (" + f.profile.name + "/" + f.variant.name + " vs " +
                    s.profile.name + "/" + s.variant.name + ")");
  }
}

}  // namespace

std::string render_sampling_error(const SweepResult& full, const SweepResult& sampled) {
  check_same_shape(full, sampled);
  // Aggregate per metric in first-appearance order; every point contributes
  // its variant run (the shared baseline runs would only duplicate entries).
  std::vector<std::string> order;
  std::map<std::string, MetricAgg> aggs;
  for (std::size_t i = 0; i < full.points.size(); ++i) {
    for (const sample::SampleError& e :
         sample::sampling_errors(full.points[i].sim, sampled.points[i].sim)) {
      auto it = aggs.find(e.metric);
      if (it == aggs.end()) {
        order.push_back(e.metric);
        it = aggs.emplace(e.metric, MetricAgg{}).first;
      }
      it->second.full_sum += e.full;
      it->second.sampled_sum += e.sampled;
      it->second.max_err = std::max(it->second.max_err, e.rel_err);
      ++it->second.n;
    }
  }
  TextTable t({"metric", "full (mean)", "sampled (mean)", "max rel err %"});
  for (const std::string& m : order) {
    const MetricAgg& a = aggs.at(m);
    const double n = a.n > 0 ? static_cast<double>(a.n) : 1.0;
    t.add_row({m, TextTable::num(a.full_sum / n, 5), TextTable::num(a.sampled_sum / n, 5),
               TextTable::num(100.0 * a.max_err, 3)});
  }
  std::ostringstream os;
  os << "Sampled vs full (" << full.points.size() << " points, worst point per metric)\n"
     << t.render();
  return os.str();
}

double max_sampling_rel_error(const SweepResult& full, const SweepResult& sampled) {
  check_same_shape(full, sampled);
  double worst = 0.0;
  for (std::size_t i = 0; i < full.points.size(); ++i)
    worst = std::max(worst, sample::max_rel_error(sample::sampling_errors(
                                full.points[i].sim, sampled.points[i].sim)));
  return worst;
}

std::string render_summary(const SweepResult& result) {
  TextTable t({"config", "points", "perf+% (avg)", "speedup (geo)", "helper %",
               "copy %", "EDP gain %", "ED2 gain %"});
  for (const VariantSummary& s : summarize(result)) {
    t.add_row({s.config, std::to_string(s.n_points), TextTable::num(s.mean_perf_pct, 1),
               TextTable::num(s.geomean_speedup, 3), TextTable::num(s.mean_helper_pct, 1),
               TextTable::num(s.mean_copy_pct, 1), TextTable::num(s.mean_edp_gain_pct, 1),
               TextTable::num(s.mean_ed2p_gain_pct, 1)});
  }
  return t.render();
}

}  // namespace hcsim::exp
