// hcsim — parallel sweep execution.
//
// Each ExperimentPoint is a pure function of (trace, machine config), so a
// sweep parallelises trivially: points execute on a fixed-size ThreadPool
// and results land in a pre-sized vector slot keyed by point index. The
// collected SweepResult is therefore bit-identical across thread counts —
// including threads=1, which bypasses the pool entirely (serial fallback).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/sim_result.hpp"
#include "exp/sweep.hpp"
#include "power/power_model.hpp"

namespace hcsim::exp {

/// Fixed-size worker pool. Jobs may be submitted from any thread; wait_idle()
/// blocks until every submitted job has finished.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned n_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);
  void wait_idle();
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs
  std::condition_variable idle_cv_;   // wait_idle() waits for drain
  unsigned in_flight_ = 0;
  bool stopping_ = false;
};

/// A finished experiment point: the variant run, the shared baseline run of
/// the same trace, and the power reports of both.
struct PointResult {
  ExperimentPoint point;
  SimResult baseline;
  SimResult sim;
  PowerReport power_baseline;
  PowerReport power_sim;

  double speedup() const { return sim.speedup_vs(baseline); }
  double perf_increase_pct() const { return (speedup() - 1.0) * 100.0; }
  /// Speedup in wide-cycle counts — invariant to the helper clock ratio, so
  /// it stays meaningful for ablations that change ticks_per_wide_cycle.
  double wide_cycle_speedup() const {
    return sim.wide_cycles > 0.0 ? baseline.wide_cycles / sim.wide_cycles : 0.0;
  }
  double edp_gain_pct() const {
    return power_baseline.edp > 0.0 ? 100.0 * (1.0 - power_sim.edp / power_baseline.edp)
                                    : 0.0;
  }
  double ed2p_gain_pct() const {
    return power_baseline.ed2p > 0.0
               ? 100.0 * (1.0 - power_sim.ed2p / power_baseline.ed2p)
               : 0.0;
  }
};

struct RunOptions {
  /// 0 = std::thread::hardware_concurrency(); 1 = serial (no pool).
  /// Ignored when `pool` is set.
  unsigned threads = 1;
  /// Progress callback, invoked once per finished point (completion order,
  /// serialized — never concurrently). `done` counts finished points.
  std::function<void(const PointResult&, u64 done, u64 total)> on_point;
  /// Cooperative cancellation, polled between points (a running simulation
  /// finishes). When it returns true remaining points are skipped and the
  /// result comes back with `cancelled` set — the daemon wires this to
  /// "client still connected?".
  std::function<bool()> cancelled;
  /// Schedule jobs on an existing pool instead of creating one per call.
  /// The sweep only waits for its own jobs, so several run_sweep calls may
  /// share one pool concurrently (hcsimd runs every client's sweeps on a
  /// single process-wide pool). Not owned.
  ThreadPool* pool = nullptr;
};

struct SweepResult {
  std::string sweep;
  unsigned threads_used = 1;
  double wall_seconds = 0.0;
  /// True when RunOptions::cancelled stopped the run early; `points` then
  /// contains default-constructed entries for the skipped points and must
  /// not be reported as a complete sweep.
  bool cancelled = false;
  /// Always in grid-expansion order (point.index), regardless of the order
  /// points finished in.
  std::vector<PointResult> points;
};

/// Execute every point of the sweep. Baseline simulations are shared: one
/// per unique (workload, seed, length) cell, not one per point.
SweepResult run_sweep(const SweepSpec& spec, const RunOptions& opts = {});

}  // namespace hcsim::exp
