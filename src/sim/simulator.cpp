#include "sim/simulator.hpp"

#include <map>
#include <mutex>
#include <span>
#include <sstream>
#include <vector>

#include "rv/kernels.hpp"
#include "sample/windowed.hpp"
#include "util/log.hpp"
#include "wload/program_gen.hpp"

namespace hcsim {

u64 default_trace_len() {
  static const u64 kLen = env_u64("HCSIM_TRACE_LEN", 300000);
  return kLen;
}

u64 stream_threshold() {
  // 2M records ≈ 64MB of trace — the most the process-wide cache should pin
  // per (workload, length) cell. Deliberately not cached in a static:
  // the threshold-boundary tests move it at runtime.
  return env_u64("HCSIM_STREAM_THRESHOLD", 2000000);
}

SimResult simulate_streamed(const MachineConfig& cfg, const WorkloadProfile& profile,
                            u64 n_records) {
  if (n_records == 0) n_records = default_trace_len();
  if (!profile.rv_kernel.empty()) {
    // RV kernels stream push-side: the functional executor drives a sink
    // that cracks each instruction into a bounded staging buffer; full
    // chunks flow to the pipeline's batched (SoA-classified) feed.
    const rv::KernelStream stream = rv::open_kernel_stream(profile.rv_kernel);
    Pipeline p(cfg, stream.cracked.program);
    std::vector<TraceRecord> buf;
    buf.reserve(kTraceChunkRecords);
    stream.pump(n_records, [&](const TraceRecord& rec) {
      buf.push_back(rec);
      if (buf.size() == kTraceChunkRecords) {
        p.feed(std::span<const TraceRecord>(buf));
        buf.clear();
      }
    });
    p.feed(std::span<const TraceRecord>(buf));
    return p.finish();
  }
  ProgramTraceCursor cursor(generate_program(profile), profile, n_records);
  return simulate(cfg, cursor);
}

SimResult simulate_workload(const MachineConfig& cfg, const WorkloadProfile& profile,
                            u64 n_records) {
  if (n_records == 0) n_records = default_trace_len();
  // Sampling hook: with an active spec every workload simulation — sweeps,
  // figure benches, CLIs — becomes a windowed run. Windows stay serial here
  // because callers (the sweep runner) already parallelize across points.
  const sample::SampleSpec& spec = sample::active_sample_spec();
  if (spec.enabled())
    return sample::simulate_sampled(cfg, profile, n_records, spec).total;
  if (n_records <= stream_threshold())
    return simulate(cfg, cached_trace(profile, n_records));
  return simulate_streamed(cfg, profile, n_records);
}

const Trace& cached_trace(const WorkloadProfile& profile, u64 n_records) {
  // Two-level locking so concurrent sweep runners (src/exp/runner.cpp) can
  // generate *different* traces in parallel: the map mutex only guards
  // entry lookup/insertion, while each entry's once_flag serializes the
  // (expensive) generation of that one trace. std::map node references are
  // stable, so the entry stays valid for the process lifetime.
  struct Entry {
    std::once_flag once;
    Trace trace;
  };
  using Key = std::tuple<std::string, u64, u64>;
  static std::map<Key, Entry> cache;
  static std::mutex mu;

  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu);
    entry = &cache.try_emplace(Key{profile.name, profile.seed, n_records}).first->second;
  }
  std::call_once(entry->once, [&] { entry->trace = generate_trace(profile, n_records); });
  return entry->trace;
}

AppRun run_app(const WorkloadProfile& profile, const SteeringConfig& steer,
               u64 n_records) {
  if (n_records == 0) n_records = default_trace_len();
  AppRun run;
  run.app = profile.name;
  run.baseline = simulate_workload(monolithic_baseline(), profile, n_records);
  run.helper = simulate_workload(helper_machine(steer), profile, n_records);
  return run;
}

MultiRun run_app_configs(const WorkloadProfile& profile,
                         std::span<const SteeringConfig> configs, u64 n_records) {
  if (n_records == 0) n_records = default_trace_len();
  MultiRun run;
  run.app = profile.name;
  run.baseline = simulate_workload(monolithic_baseline(), profile, n_records);
  run.configs.reserve(configs.size());
  for (const SteeringConfig& sc : configs)
    run.configs.push_back(simulate_workload(helper_machine(sc), profile, n_records));
  return run;
}

std::vector<AppRun> run_spec_suite(const SteeringConfig& steer, u64 n_records) {
  std::vector<AppRun> runs;
  for (const WorkloadProfile& p : spec_int_2000_profiles())
    runs.push_back(run_app(p, steer, n_records));
  return runs;
}

std::string describe_machine(const MachineConfig& cfg) {
  std::ostringstream os;
  os << "Machine configuration (Table 1 baseline";
  if (cfg.steer.helper_enabled) os << " + helper cluster";
  os << ")\n";
  os << "  Trace Cache fetch width : " << cfg.fetch_width << " uops/cycle\n";
  os << "  Rename / commit width   : " << cfg.rename_width << " / " << cfg.commit_width
     << "\n";
  os << "  ROB entries             : " << cfg.rob_entries << "\n";
  os << "  Int execution           : " << cfg.iq_wide << " entry scheduler, "
     << cfg.issue_wide << " issue\n";
  os << "  Fp execution            : " << cfg.iq_fp << " entry scheduler, "
     << cfg.issue_fp << " issue\n";
  if (cfg.steer.helper_enabled) {
    os << "  Helper cluster          : " << cfg.helper_width_bits << "-bit, "
       << cfg.iq_helper << " entry scheduler, " << cfg.issue_helper << " issue, "
       << cfg.ticks_per_wide_cycle << "x clock\n";
    os << "  Steering                : " << cfg.steer.describe() << "\n";
  }
  os << "  DL0                     : " << cfg.mem.dl0.size_bytes / 1024 << "KB, "
     << cfg.mem.dl0.ways << "w, " << cfg.mem.dl0.latency_cycles << " cycle, "
     << cfg.mem.dl0.ports << " R/W port\n";
  os << "  UL1                     : " << cfg.mem.ul1.size_bytes / (1024 * 1024)
     << "MB, " << cfg.mem.ul1.ways << "w, " << cfg.mem.ul1.latency_cycles
     << " cycle, " << cfg.mem.ul1.ports << " R/W port\n";
  os << "  Main memory             : " << cfg.mem.main_memory_cycles << " cycles\n";
  return os.str();
}

}  // namespace hcsim
