// hcsim — top-level simulation facade shared by examples, benches and tests.
//
// Wraps workload generation, trace caching (traces are deterministic, so one
// process-wide cache serves every experiment), and the
// baseline-vs-helper-cluster comparison that every figure reports.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "wload/executor.hpp"
#include "wload/profile.hpp"

namespace hcsim {

/// Default dynamic trace length for experiments. The paper simulates 100M
/// instructions per trace; shapes here are stable beyond ~200k µops, so the
/// default is CI-friendly and the HCSIM_TRACE_LEN environment variable
/// scales it up for higher-fidelity runs.
u64 default_trace_len();

/// Process-wide deterministic trace cache (keyed by profile name, seed and
/// length). Returned reference is valid for the process lifetime. Only
/// CI-sized traces belong here — simulate_workload() stops materializing
/// (and caching) above stream_threshold().
const Trace& cached_trace(const WorkloadProfile& profile, u64 n_records);

/// Trace length above which simulate_workload() streams records chunk-wise
/// from the generator instead of materializing + caching the whole trace
/// (a paper-scale 100M-µop window is ~3GB of records). Overridable via the
/// HCSIM_STREAM_THRESHOLD environment variable, re-read on every call so
/// tests can move the boundary at runtime.
u64 stream_threshold();

/// Always-streaming simulation: records flow from the workload generator
/// (or the RV kernel cracker) straight into the pipeline, O(chunk) memory.
/// Bit-identical to simulate(cfg, cached_trace(profile, n_records)).
SimResult simulate_streamed(const MachineConfig& cfg, const WorkloadProfile& profile,
                            u64 n_records);

/// Simulate one workload: cached in-memory trace for runs at or below
/// stream_threshold() (shared across experiments), streaming above it.
/// When the process-wide sampling spec (sample::active_sample_spec(),
/// HCSIM_SAMPLE_* environment variables or a CLI front-end) is enabled, the
/// run goes through the src/sample windowed simulator instead and the
/// returned result is the spliced measured-window aggregate — which is how
/// every named sweep runs sampled without new plumbing.
SimResult simulate_workload(const MachineConfig& cfg, const WorkloadProfile& profile,
                            u64 n_records = 0);

/// One application simulated on the monolithic baseline and on a helper
/// cluster configuration.
struct AppRun {
  std::string app;
  SimResult baseline;
  SimResult helper;
  double speedup() const { return helper.speedup_vs(baseline); }
  double perf_increase_pct() const { return (speedup() - 1.0) * 100.0; }
};

AppRun run_app(const WorkloadProfile& profile, const SteeringConfig& steer,
               u64 n_records = 0);

/// One application against several steering configurations (shared trace and
/// shared baseline run).
struct MultiRun {
  std::string app;
  SimResult baseline;
  std::vector<SimResult> configs;
};

MultiRun run_app_configs(const WorkloadProfile& profile,
                         std::span<const SteeringConfig> configs,
                         u64 n_records = 0);

/// The 12-app SPEC Int 2000 sweep used by most figures.
std::vector<AppRun> run_spec_suite(const SteeringConfig& steer, u64 n_records = 0);

/// Print the Table 1 machine parameters.
std::string describe_machine(const MachineConfig& cfg);

}  // namespace hcsim
