#include "trace/wire.hpp"

namespace hcsim::wire {

namespace {

bool valid_reg(RegId r) { return r == kRegNone || r < kNumRegs; }

}  // namespace

void put_string(std::vector<u8>& buf, const std::string& s) {
  put_u32(buf, static_cast<u32>(s.size()));
  const std::size_t off = buf.size();
  buf.resize(off + s.size());
  if (!s.empty()) std::memcpy(buf.data() + off, s.data(), s.size());
}

void put_uop(std::vector<u8>& buf, const StaticUop& u) {
  put_u32(buf, u.pc);
  put_u8(buf, static_cast<u8>(u.opcode));
  put_u8(buf, u.dst);
  put_u8(buf, u.srcs[0]);
  put_u8(buf, u.srcs[1]);
  put_u8(buf, u.srcs[2]);
  put_u8(buf, static_cast<u8>(u.has_imm));
  put_u32(buf, u.imm);
}

void put_record(std::vector<u8>& buf, const TraceRecord& r) {
  put_u32(buf, r.pc);
  put_u32(buf, r.src_vals[0]);
  put_u32(buf, r.src_vals[1]);
  put_u32(buf, r.src_vals[2]);
  put_u32(buf, r.result);
  put_u32(buf, r.flags_val);
  put_u32(buf, r.mem_addr);
  put_u8(buf, static_cast<u8>(r.taken));
}

void put_program(std::vector<u8>& buf, const Program& program, u64 seed) {
  put_string(buf, program.name);
  put_u64(buf, seed);
  const u32 n = static_cast<u32>(program.uops.size());
  put_u32(buf, n);
  for (u32 i = 0; i < n; ++i) {
    put_uop(buf, program.uops[i]);
    put_u32(buf, program.branch_targets[i]);
  }
}

bool Reader::get_u8(u8& v) {
  if (remaining() < sizeof(v)) return false;
  v = *p_++;
  return true;
}

bool Reader::get_u32(u32& v) {
  if (remaining() < sizeof(v)) return false;
  v = load_u32le(p_);
  p_ += sizeof(v);
  return true;
}

bool Reader::get_u64(u64& v) {
  if (remaining() < sizeof(v)) return false;
  v = load_u64le(p_);
  p_ += sizeof(v);
  return true;
}

bool Reader::get_string(std::string& s, u32 max_len) {
  u32 n = 0;
  if (!get_u32(n) || n > max_len || remaining() < n) return false;
  s.assign(reinterpret_cast<const char*>(p_), n);
  p_ += n;
  return true;
}

bool Reader::get_uop(StaticUop& u) {
  u8 opcode = 0, has_imm = 0;
  if (!(get_u32(u.pc) && get_u8(opcode) && get_u8(u.dst) && get_u8(u.srcs[0]) &&
        get_u8(u.srcs[1]) && get_u8(u.srcs[2]) && get_u8(has_imm) && get_u32(u.imm)))
    return false;
  if (opcode >= kNumOpcodes) return false;
  // Register ids index fixed arrays downstream (pipeline register state);
  // reject corrupt buffers here rather than corrupting memory there.
  if (!valid_reg(u.dst) || !valid_reg(u.srcs[0]) || !valid_reg(u.srcs[1]) ||
      !valid_reg(u.srcs[2]))
    return false;
  u.opcode = static_cast<Opcode>(opcode);
  u.has_imm = has_imm != 0;
  return true;
}

bool Reader::get_record(TraceRecord& r) {
  u8 taken = 0;
  if (!(get_u32(r.pc) && get_u32(r.src_vals[0]) && get_u32(r.src_vals[1]) &&
        get_u32(r.src_vals[2]) && get_u32(r.result) && get_u32(r.flags_val) &&
        get_u32(r.mem_addr) && get_u8(taken)))
    return false;
  r.taken = taken != 0;
  return true;
}

bool Reader::get_program(Program& program, u64& seed) {
  if (!get_string(program.name)) return false;
  if (!get_u64(seed)) return false;
  u32 n = 0;
  if (!get_u32(n) || n > (1u << 24)) return false;
  program.uops.resize(n);
  program.branch_targets.resize(n);
  for (u32 i = 0; i < n; ++i) {
    if (!get_uop(program.uops[i])) return false;
    if (!get_u32(program.branch_targets[i])) return false;
  }
  return true;
}

}  // namespace hcsim::wire
