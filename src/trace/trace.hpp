// hcsim — value-accurate dynamic µop traces.
//
// The paper's evaluation is trace driven (Section 3.1). A trace couples a
// static µop program with the dynamic stream produced by functionally
// executing it: every record carries the *actual* source and result values,
// so downstream consumers (width predictors, carry detection, steering)
// observe real data widths rather than sampled statistics.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "isa/uop.hpp"
#include "util/log.hpp"
#include "util/types.hpp"

namespace hcsim {

/// One dynamic µop instance.
struct TraceRecord {
  u32 pc = 0;  // index of the StaticUop in the owning program
  std::array<u32, kMaxSrcs> src_vals = {0, 0, 0};
  u32 result = 0;    // value written to dst (undefined when !has_dst)
  u32 flags_val = 0; // value written to flags (undefined unless writes_flags)
  u32 mem_addr = 0;  // effective address (memory ops only)
  bool taken = false;  // conditional branch outcome
};

/// A static program: the µops plus branch targets.
struct Program {
  std::string name;
  std::vector<StaticUop> uops;
  std::vector<u32> branch_targets;  // parallel to uops; 0 unless branch

  u32 target_of(u32 pc) const {
    HCSIM_CHECK(pc < branch_targets.size(), "target_of: pc out of range");
    return branch_targets[pc];
  }
};

/// A full trace: program + dynamic stream + provenance.
struct Trace {
  Program program;
  std::vector<TraceRecord> records;
  u64 seed = 0;

  const StaticUop& uop_of(const TraceRecord& r) const {
    HCSIM_CHECK(r.pc < program.uops.size(), "uop_of: record pc out of range");
    return program.uops[r.pc];
  }
  std::size_t size() const { return records.size(); }
};

/// Streaming view of a dynamic µop stream: the pipeline pulls records
/// chunk-wise, so long runs (the paper's 100M-instruction windows) never
/// materialize a multi-GB std::vector<TraceRecord>. Records arrive in
/// program order; an empty chunk ends the stream.
class TraceCursor {
 public:
  virtual ~TraceCursor() = default;

  /// The static program the records refer to. Stable for the cursor's
  /// lifetime (the pipeline holds a reference across the whole run).
  virtual const Program& program() const = 0;

  /// Next chunk of records, valid until the next call. Empty = end.
  virtual std::span<const TraceRecord> next_chunk() = 0;
};

/// Cursor over a materialized trace: one chunk, zero copies.
class TraceVectorCursor final : public TraceCursor {
 public:
  explicit TraceVectorCursor(const Trace& trace) : trace_(trace) {}

  const Program& program() const override { return trace_.program; }

  std::span<const TraceRecord> next_chunk() override {
    if (done_) return {};
    done_ = true;
    return trace_.records;
  }

 private:
  const Trace& trace_;
  bool done_ = false;
};

/// Binary trace serialization (versioned, little-endian). Returns false on
/// I/O failure; `load_trace` additionally validates the header.
bool save_trace(const Trace& trace, const std::string& path);
bool load_trace(Trace& trace, const std::string& path);

}  // namespace hcsim
