// hcsim — value-accurate dynamic µop traces.
//
// The paper's evaluation is trace driven (Section 3.1). A trace couples a
// static µop program with the dynamic stream produced by functionally
// executing it: every record carries the *actual* source and result values,
// so downstream consumers (width predictors, carry detection, steering)
// observe real data widths rather than sampled statistics.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "isa/uop.hpp"
#include "util/log.hpp"
#include "util/narrow.hpp"
#include "util/types.hpp"

namespace hcsim {

/// Shared chunk geometry: records per TraceCursor chunk. One constant so the
/// pull cursors (wload/executor.hpp), the shm trace bus (bus/trace_bus.hpp)
/// and the pipeline's SoA batches cannot drift apart.
inline constexpr std::size_t kTraceChunkRecords = std::size_t{1} << 16;

/// One dynamic µop instance.
struct TraceRecord {
  u32 pc = 0;  // index of the StaticUop in the owning program
  std::array<u32, kMaxSrcs> src_vals = {0, 0, 0};
  u32 result = 0;    // value written to dst (undefined when !has_dst)
  u32 flags_val = 0; // value written to flags (undefined unless writes_flags)
  u32 mem_addr = 0;  // effective address (memory ops only)
  bool taken = false;  // conditional branch outcome
};

/// A static program: the µops plus branch targets.
struct Program {
  std::string name;
  std::vector<StaticUop> uops;
  std::vector<u32> branch_targets;  // parallel to uops; 0 unless branch

  u32 target_of(u32 pc) const {
    HCSIM_CHECK(pc < branch_targets.size(), "target_of: pc out of range");
    return branch_targets[pc];
  }
};

/// A full trace: program + dynamic stream + provenance.
struct Trace {
  Program program;
  std::vector<TraceRecord> records;
  u64 seed = 0;

  const StaticUop& uop_of(const TraceRecord& r) const {
    HCSIM_CHECK(r.pc < program.uops.size(), "uop_of: record pc out of range");
    return program.uops[r.pc];
  }
  std::size_t size() const { return records.size(); }
};

/// Structure-of-arrays width lanes over one sub-batch of trace records.
///
/// The per-record width classification (is every source value narrow? is the
/// result narrow?) depends only on the record's values and the helper width,
/// so the batched pipeline front end hoists it out of the stateful per-µop
/// walk: classify() runs a branchless pass over a block of records filling
/// one bitmask lane per record, and the steering/training code folds those
/// lanes against the static µop template's operand masks. One block covers
/// kRecords records; TraceCursor chunks are a whole multiple of it.
struct WidthLaneBlock {
  /// Records per block. Small enough to stay cache-resident between the
  /// classify pass and the consuming walk; divides kTraceChunkRecords so
  /// cursor chunks split into whole blocks.
  static constexpr std::size_t kRecords = 1024;
  static_assert(kTraceChunkRecords % kRecords == 0,
                "trace chunks must split into whole width-lane blocks");

  /// Lane bit for the result value (source k uses bit k).
  static constexpr unsigned kResultBit = kMaxSrcs;
  static constexpr u8 kSrcMask = (u8{1} << kMaxSrcs) - 1;

  /// lanes[i] bit k (k < kMaxSrcs): src_vals[k] of record i is narrow;
  /// bit kResultBit: the result value is narrow.
  std::array<u8, kRecords> lanes{};

  /// Classify `recs` (at most kRecords of them) against a `width_bits`-wide
  /// helper datapath. Every value is classified unconditionally — no operand
  /// masking, no branches — which is what lets the loop auto-vectorize.
  void classify(std::span<const TraceRecord> recs, unsigned width_bits);

  // Accessors use std::array::at-free indexing on the hot path; the bounds
  // are exercised under ASan/UBSan by tests/test_bbcache.cpp.
  bool src_narrow(std::size_t i, unsigned k) const { return (lanes[i] >> k) & 1u; }
  bool result_narrow(std::size_t i) const { return (lanes[i] >> kResultBit) & 1u; }
  /// The kMaxSrcs source-narrow bits of record i, for mask folds.
  u8 src_mask(std::size_t i) const { return lanes[i] & kSrcMask; }
};

inline void WidthLaneBlock::classify(std::span<const TraceRecord> recs,
                                     unsigned width_bits) {
  HCSIM_CHECK(recs.size() <= kRecords, "WidthLaneBlock: block overflow");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const TraceRecord& r = recs[i];
    u8 m = 0;
    for (unsigned k = 0; k < kMaxSrcs; ++k)
      m |= static_cast<u8>(is_narrow(r.src_vals[k], width_bits)) << k;
    m |= static_cast<u8>(is_narrow(r.result, width_bits)) << kResultBit;
    lanes[i] = m;
  }
}

/// Streaming view of a dynamic µop stream: the pipeline pulls records
/// chunk-wise, so long runs (the paper's 100M-instruction windows) never
/// materialize a multi-GB std::vector<TraceRecord>. Records arrive in
/// program order; an empty chunk ends the stream.
class TraceCursor {
 public:
  virtual ~TraceCursor() = default;

  /// The static program the records refer to. Stable for the cursor's
  /// lifetime (the pipeline holds a reference across the whole run).
  virtual const Program& program() const = 0;

  /// Next chunk of records, valid until the next call. Empty = end.
  virtual std::span<const TraceRecord> next_chunk() = 0;
};

/// Cursor over a materialized trace: one chunk, zero copies.
class TraceVectorCursor final : public TraceCursor {
 public:
  explicit TraceVectorCursor(const Trace& trace) : trace_(trace) {}

  const Program& program() const override { return trace_.program; }

  std::span<const TraceRecord> next_chunk() override {
    if (done_) return {};
    done_ = true;
    return trace_.records;
  }

 private:
  const Trace& trace_;
  bool done_ = false;
};

/// Binary trace serialization (versioned, little-endian). Returns false on
/// I/O failure; `load_trace` additionally validates the header.
bool save_trace(const Trace& trace, const std::string& path);
bool load_trace(Trace& trace, const std::string& path);

}  // namespace hcsim
