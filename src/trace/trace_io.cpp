#include <cstdio>
#include <cstring>
#include <memory>

#include "trace/trace.hpp"

namespace hcsim {
namespace {

constexpr u32 kMagic = 0x48435452;  // "HCTR"
// v3: records and µops are serialized field by field (tightly packed).
// v2 wrote whole structs, which leaked uninitialized padding bytes into the
// file — same trace, different bytes across runs.
constexpr u32 kVersion = 3;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool write_pod(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool read_pod(std::FILE* f, T& v) {
  return std::fread(&v, sizeof(T), 1, f) == 1;
}

bool write_string(std::FILE* f, const std::string& s) {
  const u32 n = static_cast<u32>(s.size());
  return write_pod(f, n) && (n == 0 || std::fwrite(s.data(), 1, n, f) == n);
}

bool read_string(std::FILE* f, std::string& s) {
  u32 n = 0;
  if (!read_pod(f, n) || n > (1u << 20)) return false;
  s.resize(n);
  return n == 0 || std::fread(s.data(), 1, n, f) == n;
}

bool write_uop(std::FILE* f, const StaticUop& u) {
  return write_pod(f, u.pc) && write_pod(f, static_cast<u8>(u.opcode)) &&
         write_pod(f, u.dst) && write_pod(f, u.srcs[0]) && write_pod(f, u.srcs[1]) &&
         write_pod(f, u.srcs[2]) && write_pod(f, static_cast<u8>(u.has_imm)) &&
         write_pod(f, u.imm);
}

bool valid_reg(RegId r) { return r == kRegNone || r < kNumRegs; }

bool read_uop(std::FILE* f, StaticUop& u) {
  u8 opcode = 0, has_imm = 0;
  if (!(read_pod(f, u.pc) && read_pod(f, opcode) && read_pod(f, u.dst) &&
        read_pod(f, u.srcs[0]) && read_pod(f, u.srcs[1]) && read_pod(f, u.srcs[2]) &&
        read_pod(f, has_imm) && read_pod(f, u.imm)))
    return false;
  if (opcode >= kNumOpcodes) return false;
  // Register ids index fixed arrays downstream (pipeline register state);
  // reject corrupt files here rather than corrupting memory there.
  if (!valid_reg(u.dst) || !valid_reg(u.srcs[0]) || !valid_reg(u.srcs[1]) ||
      !valid_reg(u.srcs[2]))
    return false;
  u.opcode = static_cast<Opcode>(opcode);
  u.has_imm = has_imm != 0;
  return true;
}

bool write_record(std::FILE* f, const TraceRecord& r) {
  return write_pod(f, r.pc) && write_pod(f, r.src_vals[0]) &&
         write_pod(f, r.src_vals[1]) && write_pod(f, r.src_vals[2]) &&
         write_pod(f, r.result) && write_pod(f, r.flags_val) &&
         write_pod(f, r.mem_addr) && write_pod(f, static_cast<u8>(r.taken));
}

bool read_record(std::FILE* f, TraceRecord& r) {
  u8 taken = 0;
  if (!(read_pod(f, r.pc) && read_pod(f, r.src_vals[0]) &&
        read_pod(f, r.src_vals[1]) && read_pod(f, r.src_vals[2]) &&
        read_pod(f, r.result) && read_pod(f, r.flags_val) &&
        read_pod(f, r.mem_addr) && read_pod(f, taken)))
    return false;
  r.taken = taken != 0;
  return true;
}

}  // namespace

bool save_trace(const Trace& trace, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (!write_pod(f.get(), kMagic) || !write_pod(f.get(), kVersion)) return false;
  if (!write_string(f.get(), trace.program.name)) return false;
  if (!write_pod(f.get(), trace.seed)) return false;

  const u32 n_static = static_cast<u32>(trace.program.uops.size());
  if (!write_pod(f.get(), n_static)) return false;
  for (u32 i = 0; i < n_static; ++i) {
    if (!write_uop(f.get(), trace.program.uops[i])) return false;
    if (!write_pod(f.get(), trace.program.branch_targets[i])) return false;
  }

  const u64 n_dyn = trace.records.size();
  if (!write_pod(f.get(), n_dyn)) return false;
  for (const TraceRecord& r : trace.records)
    if (!write_record(f.get(), r)) return false;
  return true;
}

bool load_trace(Trace& trace, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  u32 magic = 0, version = 0;
  if (!read_pod(f.get(), magic) || magic != kMagic) return false;
  if (!read_pod(f.get(), version) || version != kVersion) return false;
  if (!read_string(f.get(), trace.program.name)) return false;
  if (!read_pod(f.get(), trace.seed)) return false;

  u32 n_static = 0;
  if (!read_pod(f.get(), n_static) || n_static > (1u << 24)) return false;
  trace.program.uops.resize(n_static);
  trace.program.branch_targets.resize(n_static);
  for (u32 i = 0; i < n_static; ++i) {
    if (!read_uop(f.get(), trace.program.uops[i])) return false;
    if (!read_pod(f.get(), trace.program.branch_targets[i])) return false;
  }

  u64 n_dyn = 0;
  if (!read_pod(f.get(), n_dyn) || n_dyn > (1ull << 33)) return false;
  trace.records.resize(n_dyn);
  for (TraceRecord& r : trace.records)
    if (!read_record(f.get(), r)) return false;

  // Validate pcs so downstream code can index without bounds checks.
  for (const TraceRecord& r : trace.records)
    if (r.pc >= n_static) return false;
  return true;
}

}  // namespace hcsim
