#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "trace/trace.hpp"
#include "trace/wire.hpp"

namespace hcsim {
namespace {

constexpr u32 kMagic = 0x48435452;  // "HCTR"
// v3: records and µops are serialized field by field (tightly packed) via
// trace/wire.hpp — the same encoding the shared-memory trace bus carries.
// v2 wrote whole structs, which leaked uninitialized padding bytes into the
// file — same trace, different bytes across runs.
constexpr u32 kVersion = 3;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool write_buf(std::FILE* f, const std::vector<u8>& buf) {
  return buf.empty() || std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
}

/// Read exactly `n` bytes into `buf` (resized). False on short read.
bool read_buf(std::FILE* f, std::vector<u8>& buf, std::size_t n) {
  buf.resize(n);
  return n == 0 || std::fread(buf.data(), 1, n, f) == n;
}

}  // namespace

bool save_trace(const Trace& trace, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;

  std::vector<u8> buf;
  wire::put_u32(buf, kMagic);
  wire::put_u32(buf, kVersion);
  wire::put_program(buf, trace.program, trace.seed);
  wire::put_u64(buf, trace.records.size());
  if (!write_buf(f.get(), buf)) return false;

  // Records stream through a bounded buffer so a 100M-µop trace never
  // materializes a second multi-GB copy of itself.
  constexpr std::size_t kFlushRecords = 1u << 16;
  buf.clear();
  buf.reserve(kFlushRecords * wire::kRecordBytes);
  std::size_t pending = 0;
  for (const TraceRecord& r : trace.records) {
    wire::put_record(buf, r);
    if (++pending == kFlushRecords) {
      if (!write_buf(f.get(), buf)) return false;
      buf.clear();
      pending = 0;
    }
  }
  return write_buf(f.get(), buf);
}

bool load_trace(Trace& trace, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;

  // Header through the µop table: sized by a bounded fixed prefix, re-read
  // incrementally. Simplest correct approach: slurp the whole file (traces
  // load back only at CI sizes; paper-scale runs stream and never hit disk).
  std::vector<u8> head;
  if (!read_buf(f.get(), head, 2 * sizeof(u32))) return false;
  wire::Reader header(head.data(), head.size());
  u32 magic = 0, version = 0;
  if (!header.get_u32(magic) || magic != kMagic) return false;
  if (!header.get_u32(version) || version != kVersion) return false;

  // Rest of the file.
  std::vector<u8> body;
  {
    constexpr std::size_t kChunk = 1u << 20;
    std::size_t used = 0;
    for (;;) {
      body.resize(used + kChunk);
      const std::size_t got = std::fread(body.data() + used, 1, kChunk, f.get());
      used += got;
      if (got < kChunk) break;
    }
    body.resize(used);
  }

  wire::Reader r(body.data(), body.size());
  if (!r.get_program(trace.program, trace.seed)) return false;

  u64 n_dyn = 0;
  if (!r.get_u64(n_dyn) || n_dyn > (1ull << 33)) return false;
  if (r.remaining() != n_dyn * wire::kRecordBytes) return false;  // truncated/overlong
  trace.records.resize(n_dyn);
  for (TraceRecord& rec : trace.records)
    if (!r.get_record(rec)) return false;

  // Validate pcs so downstream code can index without bounds checks.
  const u32 n_static = static_cast<u32>(trace.program.uops.size());
  for (const TraceRecord& rec : trace.records)
    if (rec.pc >= n_static) return false;
  return true;
}

}  // namespace hcsim
