// hcsim — buffer-level v3 trace wire format.
//
// One packed encoding of programs and trace records, shared by the file
// serializer (trace_io.cpp) and the shared-memory trace bus (src/bus): every
// field is written individually in little-endian order, so the bytes carry
// no struct padding and are identical across builds and processes. The
// Reader side is bounds-checked and validating — a truncated or corrupt
// buffer yields `false`, never an out-of-range read or a poisoned Program.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/types.hpp"

namespace hcsim::wire {

/// Packed v3 sizes (field-by-field, no padding).
inline constexpr std::size_t kRecordBytes = 7 * sizeof(u32) + 1;  // 29
inline constexpr std::size_t kUopBytes = 2 * sizeof(u32) + 6;     // 14

// --- byte order -------------------------------------------------------------
// The format is little-endian by definition. These helpers spell the byte
// order out (instead of memcpy'ing the host representation) so the encode
// and decode sides agree on every host; on little-endian machines they
// compile down to plain loads and stores.

inline u32 load_u32le(const u8* p) {
  return static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
         static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24;
}

inline void store_u32le(u8* p, u32 v) {
  p[0] = static_cast<u8>(v);
  p[1] = static_cast<u8>(v >> 8);
  p[2] = static_cast<u8>(v >> 16);
  p[3] = static_cast<u8>(v >> 24);
}

inline u64 load_u64le(const u8* p) {
  return static_cast<u64>(load_u32le(p)) | static_cast<u64>(load_u32le(p + 4)) << 32;
}

inline void store_u64le(u8* p, u64 v) {
  store_u32le(p, static_cast<u32>(v));
  store_u32le(p + 4, static_cast<u32>(v >> 32));
}

// --- writing ----------------------------------------------------------------

inline void put_u8(std::vector<u8>& buf, u8 v) { buf.push_back(v); }

inline void put_u32(std::vector<u8>& buf, u32 v) {
  const std::size_t off = buf.size();
  buf.resize(off + sizeof(v));
  store_u32le(buf.data() + off, v);
}

inline void put_u64(std::vector<u8>& buf, u64 v) {
  const std::size_t off = buf.size();
  buf.resize(off + sizeof(v));
  store_u64le(buf.data() + off, v);
}

/// u32 length prefix + raw bytes (the v3 string encoding).
void put_string(std::vector<u8>& buf, const std::string& s);

void put_uop(std::vector<u8>& buf, const StaticUop& u);
void put_record(std::vector<u8>& buf, const TraceRecord& r);

/// name, seed, n_uops, then per-µop (uop, branch_target) — the v3 program
/// section layout of save_trace.
void put_program(std::vector<u8>& buf, const Program& program, u64 seed);

// --- reading ----------------------------------------------------------------

/// Bounds-checked sequential reader over a byte buffer. Every getter
/// returns false on truncation (and on semantic violations where noted);
/// the cursor position is unspecified after a failure.
class Reader {
 public:
  Reader(const u8* data, std::size_t size) : p_(data), end_(data + size) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  bool get_u8(u8& v);
  bool get_u32(u32& v);
  bool get_u64(u64& v);
  /// Rejects lengths above `max_len` (corrupt prefix, not a real string).
  bool get_string(std::string& s, u32 max_len = 1u << 20);
  /// Validates opcode range and register ids (they index fixed arrays
  /// downstream) like load_trace does.
  bool get_uop(StaticUop& u);
  bool get_record(TraceRecord& r);
  /// Program section; rejects corrupt µop counts. Record pcs are validated
  /// against the program by the caller (records arrive separately).
  bool get_program(Program& program, u64& seed);

 private:
  const u8* p_;
  const u8* end_;
};

}  // namespace hcsim::wire
