#include "sample/spec.hpp"

#include <algorithm>
#include <sstream>

#include "util/log.hpp"

namespace hcsim::sample {

u64 SampleSpec::resolved_period(u64 trace_len) const {
  if (period != 0) return period;
  // Auto mode: kAutoWindows equal periods across the trace, but never so
  // short that windows overlap.
  const u64 auto_period = trace_len / kAutoWindows;
  return std::max(warmup + measure, auto_period);
}

void SampleSpec::validate() const {
  if (!enabled()) return;
  HCSIM_CHECK(period == 0 || period >= warmup + measure,
              "SampleSpec: period must be 0 (auto) or >= warmup + measure");
}

std::string SampleSpec::describe() const {
  if (!enabled()) return "sampling disabled";
  std::ostringstream os;
  os << "warmup=" << warmup << " measure=" << measure << " period=";
  if (period == 0)
    os << "auto(len/" << kAutoWindows << ")";
  else
    os << period;
  os << " windows=";
  if (max_windows == 0)
    os << "all";
  else
    os << max_windows;
  return os.str();
}

SampleSpec spec_from_env() {
  SampleSpec s;
  s.warmup = env_u64("HCSIM_SAMPLE_WARMUP", kDefaultWarmup);
  s.measure = env_u64("HCSIM_SAMPLE_MEASURE", 0);
  s.period = env_u64("HCSIM_SAMPLE_PERIOD", 0);
  s.max_windows = env_u64("HCSIM_SAMPLE_MAX_WINDOWS", 0);
  s.validate();
  return s;
}

namespace {
SampleSpec& active_spec_storage() {
  static SampleSpec spec = spec_from_env();
  return spec;
}
}  // namespace

const SampleSpec& active_sample_spec() { return active_spec_storage(); }

void set_active_sample_spec(const SampleSpec& spec) {
  spec.validate();
  active_spec_storage() = spec;
}

std::vector<WindowRange> plan_windows(const SampleSpec& spec, u64 trace_len) {
  spec.validate();
  std::vector<WindowRange> windows;
  if (!spec.enabled() || trace_len == 0) return windows;
  const u64 period = spec.resolved_period(trace_len);
  for (u64 begin = 0; begin < trace_len; begin += period) {
    if (spec.max_windows != 0 && windows.size() >= spec.max_windows) break;
    if (begin + spec.warmup >= trace_len) break;  // trace ends during warm-up
    WindowRange w;
    w.index = windows.size();
    w.begin = begin;
    w.warmup = spec.warmup;
    w.measure = std::min(spec.measure, trace_len - begin - spec.warmup);
    windows.push_back(w);
  }
  return windows;
}

}  // namespace hcsim::sample
