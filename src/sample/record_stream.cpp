#include "sample/record_stream.hpp"

#include <span>

#include "rv/kernels.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"
#include "wload/executor.hpp"
#include "wload/program_gen.hpp"

namespace hcsim::sample {

namespace {

/// Materialized trace: ranges are plain index slices.
class TraceRecordStream final : public RecordStream {
 public:
  explicit TraceRecordStream(const Trace& trace) : trace_(trace) {}

  const Program& program() const override { return trace_.program; }

  void feed_range(u64 begin, u64 end, const RecordSink& sink) override {
    const u64 stop = std::min<u64>(end, trace_.records.size());
    for (u64 i = begin; i < stop; ++i) sink(trace_.records[i]);
  }

  bool try_rewind(u64 pos) override {
    (void)pos;  // index slices carry no position state
    return true;
  }

 private:
  const Trace& trace_;
};

/// Synthetic generator: a ProgramTraceCursor interpreted on demand. Seeking
/// forward generates and discards — generation runs ~6x faster than the
/// pipeline, which is what makes skipped periods nearly free.
class CursorRecordStream final : public RecordStream {
 public:
  CursorRecordStream(const WorkloadProfile& profile, u64 n_records)
      : cursor_(std::make_unique<ProgramTraceCursor>(generate_program(profile),
                                                     profile, n_records)) {}

  const Program& program() const override { return cursor_->program(); }

  void feed_range(u64 begin, u64 end, const RecordSink& sink) override {
    HCSIM_CHECK(begin >= pos_, "CursorRecordStream: backward seek");
    if (begin > pos_) note_forward_seek("generator", begin - pos_);
    while (pos_ < end) {
      if (off_ >= chunk_.size()) {
        chunk_ = cursor_->next_chunk();
        off_ = 0;
        if (chunk_.empty()) return;  // trace exhausted: deliver short
      }
      const TraceRecord& rec = chunk_[off_++];
      if (pos_ >= begin) sink(rec);
      ++pos_;
    }
  }

 private:
  std::unique_ptr<ProgramTraceCursor> cursor_;  // not movable: heap-pinned
  std::span<const TraceRecord> chunk_;
  std::size_t off_ = 0;
  u64 pos_ = 0;
};

/// Checkpoint cadence for the RV kernel stream: one executor-state snapshot
/// per window entry, but never closer together than this many µops (each
/// snapshot copies the machine's memory, ExecLimits::mem_bytes).
constexpr u64 kCheckpointInterval = 1u << 20;
/// Snapshot count cap; on overflow every second checkpoint is dropped,
/// doubling the effective spacing (memory stays bounded, rewinds stay
/// O(spacing) instead of O(begin)).
constexpr std::size_t kMaxCheckpoints = 32;

/// RV kernel: a resumable executor cursor. The machine persists across
/// feed_range calls (seeks cost O(gap), not O(begin)), and window-entry
/// checkpoints make the stream rewindable — a backward range restores the
/// nearest snapshot at or below the target instead of re-executing from the
/// kernel entry point.
class KernelRecordStream final : public RecordStream {
 public:
  explicit KernelRecordStream(const std::string& kernel)
      : stream_(rv::open_kernel_stream(kernel)),
        cursor_(stream_.binary, stream_.cracked) {}

  const Program& program() const override { return stream_.cracked.program; }

  void feed_range(u64 begin, u64 end, const RecordSink& sink) override {
    HCSIM_CHECK(begin >= cursor_.position(),
                "KernelRecordStream: backward seek (call try_rewind first)");
    if (begin > cursor_.position())
      note_forward_seek("rv-kernel", begin - cursor_.position());
    maybe_checkpoint(begin);
    const rv::RvTraceInfo info = cursor_.pump_range(begin, end, sink);
    HCSIM_CHECK(info.error.empty(), "rv executor trapped: " + info.error);
  }

  bool try_rewind(u64 pos) override {
    if (pos >= cursor_.position()) return true;  // no progress to undo
    const rv::RvStreamCursor::Checkpoint* best = nullptr;
    for (const auto& c : ckpts_)
      if (c.pos <= pos && (!best || c.pos > best->pos)) best = &c;
    if (best) {
      cursor_.restore(*best);
    } else {
      // Entry state is an implicit checkpoint at position 0.
      cursor_ = rv::RvStreamCursor(stream_.binary, stream_.cracked);
    }
    return true;
  }

 private:
  /// Snapshot the cursor at a window entry: advance (executing + discarding)
  /// to `begin`, then save, respecting spacing and count caps.
  void maybe_checkpoint(u64 begin) {
    if (!ckpts_.empty() && begin < ckpts_.back().pos + kCheckpointInterval) return;
    if (begin == 0) return;  // the fresh-cursor fallback already covers 0
    cursor_.pump_range(begin, begin, [](const TraceRecord&) {});
    if (cursor_.position() < begin) return;  // stream ended before `begin`
    if (ckpts_.size() == kMaxCheckpoints) {
      std::vector<rv::RvStreamCursor::Checkpoint> thinned;
      for (std::size_t i = 0; i < ckpts_.size(); i += 2)
        thinned.push_back(std::move(ckpts_[i]));
      ckpts_ = std::move(thinned);
    }
    ckpts_.push_back(cursor_.checkpoint());
  }

  rv::KernelStream stream_;
  rv::RvStreamCursor cursor_;  // borrows stream_: declared after it
  std::vector<rv::RvStreamCursor::Checkpoint> ckpts_;  // pos ascending
};

}  // namespace

void note_forward_seek(const char* backend, u64 n_discard) {
  if (n_discard < kSeekWarnThreshold) return;
  log_warn_once(std::string("forward-seek:") + backend,
                std::string(backend) + " stream seek discarded " +
                    std::to_string(n_discard) +
                    " records (forward-only backend; consider the shared-memory "
                    "bus or wider sampling periods)");
}

std::unique_ptr<RecordStream> open_trace_stream(const Trace& trace) {
  return std::make_unique<TraceRecordStream>(trace);
}

StreamFactory workload_stream_factory(const WorkloadProfile& profile, u64 n_records) {
  if (n_records <= stream_threshold()) {
    // CI-sized runs share the process-wide materialized trace (stable
    // reference for the process lifetime) — windows slice it for free.
    const Trace& trace = cached_trace(profile, n_records);
    return [&trace] { return open_trace_stream(trace); };
  }
  if (!profile.rv_kernel.empty()) {
    const std::string kernel = profile.rv_kernel;
    return [kernel]() -> std::unique_ptr<RecordStream> {
      return std::make_unique<KernelRecordStream>(kernel);
    };
  }
  const WorkloadProfile prof = profile;
  return [prof, n_records]() -> std::unique_ptr<RecordStream> {
    return std::make_unique<CursorRecordStream>(prof, n_records);
  };
}

}  // namespace hcsim::sample
