#include "sample/record_stream.hpp"

#include <span>

#include "rv/kernels.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"
#include "wload/executor.hpp"
#include "wload/program_gen.hpp"

namespace hcsim::sample {

namespace {

/// Materialized trace: ranges are plain index slices.
class TraceRecordStream final : public RecordStream {
 public:
  explicit TraceRecordStream(const Trace& trace) : trace_(trace) {}

  const Program& program() const override { return trace_.program; }

  void feed_range(u64 begin, u64 end, const RecordSink& sink) override {
    const u64 stop = std::min<u64>(end, trace_.records.size());
    for (u64 i = begin; i < stop; ++i) sink(trace_.records[i]);
  }

 private:
  const Trace& trace_;
};

/// Synthetic generator: a ProgramTraceCursor interpreted on demand. Seeking
/// forward generates and discards — generation runs ~6x faster than the
/// pipeline, which is what makes skipped periods nearly free.
class CursorRecordStream final : public RecordStream {
 public:
  CursorRecordStream(const WorkloadProfile& profile, u64 n_records)
      : cursor_(std::make_unique<ProgramTraceCursor>(generate_program(profile),
                                                     profile, n_records)) {}

  const Program& program() const override { return cursor_->program(); }

  void feed_range(u64 begin, u64 end, const RecordSink& sink) override {
    HCSIM_CHECK(begin >= pos_, "CursorRecordStream: backward seek");
    while (pos_ < end) {
      if (off_ >= chunk_.size()) {
        chunk_ = cursor_->next_chunk();
        off_ = 0;
        if (chunk_.empty()) return;  // trace exhausted: deliver short
      }
      const TraceRecord& rec = chunk_[off_++];
      if (pos_ >= begin) sink(rec);
      ++pos_;
    }
  }

 private:
  std::unique_ptr<ProgramTraceCursor> cursor_;  // not movable: heap-pinned
  std::span<const TraceRecord> chunk_;
  std::size_t off_ = 0;
  u64 pos_ = 0;
};

/// RV kernel: the push-side executor stream. Each feed_range re-executes
/// from the kernel entry point (the executor cannot be suspended), so the
/// serial windowed path covers all of its windows with a single call.
class KernelRecordStream final : public RecordStream {
 public:
  explicit KernelRecordStream(const std::string& kernel)
      : stream_(rv::open_kernel_stream(kernel)) {}

  const Program& program() const override { return stream_.cracked.program; }

  void feed_range(u64 begin, u64 end, const RecordSink& sink) override {
    stream_.pump_range(begin, end, sink);
  }

 private:
  rv::KernelStream stream_;
};

}  // namespace

std::unique_ptr<RecordStream> open_trace_stream(const Trace& trace) {
  return std::make_unique<TraceRecordStream>(trace);
}

StreamFactory workload_stream_factory(const WorkloadProfile& profile, u64 n_records) {
  if (n_records <= stream_threshold()) {
    // CI-sized runs share the process-wide materialized trace (stable
    // reference for the process lifetime) — windows slice it for free.
    const Trace& trace = cached_trace(profile, n_records);
    return [&trace] { return open_trace_stream(trace); };
  }
  if (!profile.rv_kernel.empty()) {
    const std::string kernel = profile.rv_kernel;
    return [kernel]() -> std::unique_ptr<RecordStream> {
      return std::make_unique<KernelRecordStream>(kernel);
    };
  }
  const WorkloadProfile prof = profile;
  return [prof, n_records]() -> std::unique_ptr<RecordStream> {
    return std::make_unique<CursorRecordStream>(prof, n_records);
  };
}

}  // namespace hcsim::sample
