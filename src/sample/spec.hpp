// hcsim — warm-up/measure sampling windows (src/sample).
//
// The paper's figures come from 100M-instruction traces; simulating every
// µop of such a trace is ~10s of serial CPU even on the streaming pipeline.
// Classic sampled simulation cuts that by orders of magnitude: slice the
// trace into periodic windows, feed each window's first K µops as *warm-up*
// (predictors/caches/schedulers train, counters are discarded), measure the
// next M µops, and skip the rest of the period entirely. A SampleSpec
// describes that schedule; plan_windows() turns it into concrete record
// ranges over one trace.
//
// Window checkpoint contract (see core/pipeline.hpp): every window is
// re-simulated from a cold Pipeline, so a window is a pure function of
// (machine config, program, record range). Serial and thread-pool-sliced
// windowed runs are therefore bit-identical by construction.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace hcsim::sample {

/// A periodic warm-up/measure sampling schedule over one dynamic trace.
struct SampleSpec {
  /// µops fed before measurement in each window; counters discarded.
  u64 warmup = 0;
  /// µops measured per window. 0 disables sampling entirely.
  u64 measure = 0;
  /// Distance between window starts. 0 = auto: the trace is split into
  /// kAutoWindows equal periods (at least warmup+measure each). Must
  /// otherwise be >= warmup + measure.
  u64 period = 0;
  /// Cap on the number of windows; 0 = unlimited.
  u64 max_windows = 0;

  /// Window count targeted by the auto period (period == 0).
  static constexpr u64 kAutoWindows = 20;

  bool enabled() const { return measure > 0; }

  /// The concrete period for a trace of `trace_len` records.
  u64 resolved_period(u64 trace_len) const;

  /// Fatal on an inconsistent spec (enabled with period < warmup+measure).
  void validate() const;

  /// "warmup=20000 measure=80000 period=auto windows=all"-style summary.
  std::string describe() const;
};

/// Spec assembled from the HCSIM_SAMPLE_WARMUP / HCSIM_SAMPLE_MEASURE /
/// HCSIM_SAMPLE_PERIOD / HCSIM_SAMPLE_MAX_WINDOWS environment variables.
/// Sampling stays disabled unless HCSIM_SAMPLE_MEASURE is set (warmup alone
/// defaults to kDefaultWarmup so `--sampled` flags have a sane base).
SampleSpec spec_from_env();

inline constexpr u64 kDefaultWarmup = 20000;
inline constexpr u64 kDefaultMeasure = 80000;

/// Process-wide active spec consulted by simulate_workload(): initialized
/// from spec_from_env(), overridable by CLI front-ends. Set it before
/// spawning sweep workers — reads are unsynchronized by design (the value
/// is fixed for the lifetime of a run).
const SampleSpec& active_sample_spec();
void set_active_sample_spec(const SampleSpec& spec);

/// One window of a planned schedule: records [begin, begin+warmup) warm the
/// machine, records [measure_begin(), end()) are measured.
struct WindowRange {
  u64 index = 0;
  u64 begin = 0;
  u64 warmup = 0;   // actual warm-up µops (== spec.warmup; never truncated)
  u64 measure = 0;  // actual measured µops (final window may be truncated)

  u64 measure_begin() const { return begin + warmup; }
  u64 end() const { return begin + warmup + measure; }
};

/// Chop [0, trace_len) into measurement windows. The final window is
/// truncated when the trace ends mid-measure; windows whose measure region
/// would be empty (trace ends during warm-up) are dropped. An empty result
/// means the trace is too short to sample — callers fall back to a full run.
std::vector<WindowRange> plan_windows(const SampleSpec& spec, u64 trace_len);

}  // namespace hcsim::sample
