#include "sample/windowed.hpp"

#include <algorithm>
#include <cmath>

#include "exp/runner.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace hcsim::sample {

namespace {

/// end - start over every integer field of SimResult (strings/derived come
/// from `end`; derived doubles are recomputed by finalize()). Keep in sync
/// with the SimResult field list — see the note in core/sim_result.hpp.
SimResult measured_delta(const Pipeline::StatsCheckpoint& end,
                         const Pipeline::StatsCheckpoint& start) {
  SimResult d = end.res;
  const SimResult& s = start.res;
  d.uops -= s.uops;
  d.final_tick -= s.final_tick;
  d.to_wide -= s.to_wide;
  d.to_helper -= s.to_helper;
  d.br_steered -= s.br_steered;
  d.cr_steered -= s.cr_steered;
  d.split_uops -= s.split_uops;
  d.chunk_uops -= s.chunk_uops;
  d.replicated_loads -= s.replicated_loads;
  d.copies -= s.copies;
  d.copies_w2n -= s.copies_w2n;
  d.copies_n2w -= s.copies_n2w;
  d.copy_prefetches -= s.copy_prefetches;
  d.cp_useful -= s.cp_useful;
  d.copy_wait.subtract(s.copy_wait);
  d.wp_correct -= s.wp_correct;
  d.wp_nonfatal -= s.wp_nonfatal;
  d.wp_fatal -= s.wp_fatal;
  d.cr_violations -= s.cr_violations;
  d.branches -= s.branches;
  d.branch_mispredicts -= s.branch_mispredicts;
  d.nready_w2n -= s.nready_w2n;
  d.nready_n2w -= s.nready_n2w;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    d.counters[c] -= s.counters[c];
  }
  // A prefetch issued during warm-up can be consumed during measure, so the
  // deltas are not ordered; saturate like Pipeline::finish() does.
  d.cp_wasted =
      d.copy_prefetches >= d.cp_useful ? d.copy_prefetches - d.cp_useful : 0;
  return d;
}

/// Splice `w` into `into` (integer fields only; trace order is the caller's
/// responsibility — all additions commute, the order is for determinism of
/// intent, not arithmetic).
void accumulate(SimResult& into, const SimResult& w) {
  into.uops += w.uops;
  into.final_tick += w.final_tick;  // sum of measured commit-tick spans
  into.to_wide += w.to_wide;
  into.to_helper += w.to_helper;
  into.br_steered += w.br_steered;
  into.cr_steered += w.cr_steered;
  into.split_uops += w.split_uops;
  into.chunk_uops += w.chunk_uops;
  into.replicated_loads += w.replicated_loads;
  into.copies += w.copies;
  into.copies_w2n += w.copies_w2n;
  into.copies_n2w += w.copies_n2w;
  into.copy_prefetches += w.copy_prefetches;
  into.cp_useful += w.cp_useful;
  into.copy_wait.merge(w.copy_wait);
  into.wp_correct += w.wp_correct;
  into.wp_nonfatal += w.wp_nonfatal;
  into.wp_fatal += w.wp_fatal;
  into.cr_violations += w.cr_violations;
  into.branches += w.branches;
  into.branch_mispredicts += w.branch_mispredicts;
  into.nready_w2n += w.nready_w2n;
  into.nready_n2w += w.nready_n2w;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    into.counters[c] += w.counters[c];
  }
  into.cp_wasted = into.copy_prefetches >= into.cp_useful
                       ? into.copy_prefetches - into.cp_useful
                       : 0;
}

/// Derive the double-valued statistics from spliced integer totals, the way
/// Pipeline::finish() does for a full run.
void finalize(SimResult& r, Tick wide_ticks, u64 dl0_hits, u64 dl0_accesses,
              u64 ul1_hits, u64 ul1_accesses) {
  r.wide_cycles = static_cast<double>(r.final_tick) / static_cast<double>(wide_ticks);
  r.ipc = r.wide_cycles > 0 ? static_cast<double>(r.uops) / r.wide_cycles : 0.0;
  r.dl0_hit_rate = dl0_accesses
                       ? static_cast<double>(dl0_hits) / static_cast<double>(dl0_accesses)
                       : 0.0;
  r.ul1_hit_rate = ul1_accesses
                       ? static_cast<double>(ul1_hits) / static_cast<double>(ul1_accesses)
                       : 0.0;
  r.counters[Counter::kDl0Accesses] = dl0_accesses;
  r.counters[Counter::kUl1Accesses] = ul1_accesses;
}

/// One in-flight window: a cold pipeline plus the warm-up/measure boundary
/// checkpoint.
struct WindowRun {
  std::unique_ptr<Pipeline> pipeline;
  Pipeline::StatsCheckpoint warm;
  u64 fed = 0;

  void open(const MachineConfig& cfg, const Program& program, u64 warmup) {
    pipeline = std::make_unique<Pipeline>(cfg, program);
    fed = 0;
    if (warmup == 0) warm = pipeline->checkpoint_stats();
  }

  void feed(const TraceRecord& rec, u64 warmup) {
    pipeline->feed(rec);
    if (++fed == warmup) warm = pipeline->checkpoint_stats();
  }
};

/// Close an in-flight window: subtract the warm checkpoint and finalize the
/// per-window view. Returns false (and produces nothing) when the trace
/// ended before the window's measure region began.
bool close_window(const WindowRange& w, WindowRun& run, Tick wide_ticks,
                  WindowStats& out) {
  if (!run.pipeline || run.fed <= w.warmup) return false;
  const Pipeline::StatsCheckpoint end = run.pipeline->checkpoint_stats();
  out.range = w;
  out.range.measure = run.fed - w.warmup;  // truncated when the trace ended early
  out.measured = measured_delta(end, run.warm);
  out.dl0_hits = end.dl0_hits - run.warm.dl0_hits;
  out.dl0_accesses = end.dl0_accesses - run.warm.dl0_accesses;
  out.ul1_hits = end.ul1_hits - run.warm.ul1_hits;
  out.ul1_accesses = end.ul1_accesses - run.warm.ul1_accesses;
  finalize(out.measured, wide_ticks, out.dl0_hits, out.dl0_accesses, out.ul1_hits,
           out.ul1_accesses);
  run.pipeline.reset();
  return true;
}

}  // namespace

WindowedSimulator::WindowedSimulator(const MachineConfig& cfg, const SampleSpec& spec)
    : cfg_(cfg), spec_(spec) {
  spec_.validate();
}

SampledResult WindowedSimulator::run(const StreamFactory& factory, u64 trace_len,
                                     unsigned threads) const {
  SampledResult result;
  result.spec = spec_;
  result.trace_len = trace_len;
  const Tick wt = cfg_.ticks_per_wide_cycle;

  const auto full_run = [&]() {
    const std::unique_ptr<RecordStream> stream = factory();
    Pipeline p(cfg_, stream->program());
    stream->feed_range(0, trace_len, [&](const TraceRecord& rec) { p.feed(rec); });
    result.sampled = false;
    result.windows.clear();
    result.total = p.finish();
    result.simulated_uops = result.measured_uops = result.total.uops;
    return result;
  };

  const std::vector<WindowRange> plan = plan_windows(spec_, trace_len);
  // Trace too short to sample (or sampling disabled): full run.
  if (plan.empty()) return full_run();
  result.sampled = true;

  // Per-plan-slot results; windows the trace never reached stay invalid.
  // (unsigned char, not bool: vector<bool> packs bits, and parallel window
  // jobs writing adjacent slots would race on the shared byte.)
  std::vector<WindowStats> stats(plan.size());
  std::vector<unsigned char> valid(plan.size(), 0);

  if (threads <= 1) {
    // Serial: one stream, one forward pass. Windows open and close in trace
    // order as the scan crosses their boundaries; records between windows
    // are generated (determinism requires it) but not simulated.
    const std::unique_ptr<RecordStream> stream = factory();
    std::size_t wi = 0;
    u64 pos = plan.front().begin;
    WindowRun run;
    stream->feed_range(plan.front().begin, plan.back().end(),
                       [&](const TraceRecord& rec) {
                         if (wi >= plan.size()) return;
                         const WindowRange& w = plan[wi];
                         if (pos++ < w.begin) return;  // inter-window skip
                         if (!run.pipeline) run.open(cfg_, stream->program(), w.warmup);
                         run.feed(rec, w.warmup);
                         if (run.fed == w.warmup + w.measure) {
                           valid[wi] = close_window(w, run, wt, stats[wi]);
                           ++wi;
                         }
                       });
    // The stream may have ended mid-window (short trace): close what's open.
    if (wi < plan.size() && run.pipeline)
      valid[wi] = close_window(plan[wi], run, wt, stats[wi]);
  } else {
    // Parallel slicing: each window is an independent job — fresh stream,
    // cold pipeline, K warm-up µops — exactly the serial per-window
    // computation, so the splice below is bit-identical to the serial run.
    exp::ThreadPool pool(std::min<unsigned>(
        threads, static_cast<unsigned>(std::min<std::size_t>(plan.size(), 4096))));
    for (std::size_t i = 0; i < plan.size(); ++i) {
      pool.submit([&, i] {
        const WindowRange& w = plan[i];
        const std::unique_ptr<RecordStream> stream = factory();
        WindowRun run;
        run.open(cfg_, stream->program(), w.warmup);
        stream->feed_range(w.begin, w.end(),
                           [&](const TraceRecord& rec) { run.feed(rec, w.warmup); });
        valid[i] = close_window(w, run, wt, stats[i]);
      });
    }
    pool.wait_idle();
  }

  // Splice measured windows in trace order.
  u64 dl0_hits = 0, dl0_accesses = 0, ul1_hits = 0, ul1_accesses = 0;
  bool first = true;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (!valid[i]) continue;
    if (first) {
      result.total = stats[i].measured;  // adopts workload/config strings
      first = false;
    } else {
      accumulate(result.total, stats[i].measured);
    }
    dl0_hits += stats[i].dl0_hits;
    dl0_accesses += stats[i].dl0_accesses;
    ul1_hits += stats[i].ul1_hits;
    ul1_accesses += stats[i].ul1_accesses;
    result.measured_uops += stats[i].measured.uops;
    result.simulated_uops += stats[i].range.warmup + stats[i].measured.uops;
    result.windows.push_back(std::move(stats[i]));
  }
  if (first) {
    // The trace ended during the first window's warm-up (e.g. a kernel
    // halting almost immediately): no measured window exists, fall back.
    return full_run();
  }
  finalize(result.total, wt, dl0_hits, dl0_accesses, ul1_hits, ul1_accesses);
  return result;
}

SampledResult simulate_sampled(const MachineConfig& cfg, const WorkloadProfile& profile,
                               u64 n_records, const SampleSpec& spec,
                               unsigned threads) {
  if (n_records == 0) n_records = default_trace_len();
  const WindowedSimulator sim(cfg, spec);
  return sim.run(workload_stream_factory(profile, n_records), n_records, threads);
}

SampledResult simulate_sampled(const MachineConfig& cfg, const Trace& trace,
                               const SampleSpec& spec, unsigned threads) {
  const WindowedSimulator sim(cfg, spec);
  return sim.run([&trace] { return open_trace_stream(trace); }, trace.records.size(),
                 threads);
}

// --- sampled-vs-full error reporting ----------------------------------------

std::vector<SampleError> sampling_errors(const SimResult& full, const SimResult& sampled) {
  std::vector<SampleError> out;
  const auto add = [&out](std::string metric, double f, double s) {
    SampleError e;
    e.metric = std::move(metric);
    e.full = f;
    e.sampled = s;
    e.rel_err = std::abs(s - f) / std::max(std::abs(f), 0.01);
    out.push_back(std::move(e));
  };
  add("ipc", full.ipc, sampled.ipc);
  add("helper_frac", full.helper_frac(), sampled.helper_frac());
  add("copy_frac", full.copy_frac(), sampled.copy_frac());
  add("wp_accuracy", full.wp_accuracy(), sampled.wp_accuracy());
  const auto misp = [](const SimResult& r) {
    return r.branches ? static_cast<double>(r.branch_mispredicts) /
                            static_cast<double>(r.branches)
                      : 0.0;
  };
  add("branch_misp_rate", misp(full), misp(sampled));
  add("dl0_hit_rate", full.dl0_hit_rate, sampled.dl0_hit_rate);
  add("ul1_hit_rate", full.ul1_hit_rate, sampled.ul1_hit_rate);
  // Raw event counters as per-committed-µop rates.
  const auto rate = [](const SimResult& r, Counter c) {
    return r.uops ? static_cast<double>(r.counters[c]) / static_cast<double>(r.uops)
                  : 0.0;
  };
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    add("counter/" + std::string(counter_name(c)), rate(full, c), rate(sampled, c));
  }
  return out;
}

double max_rel_error(const std::vector<SampleError>& errors) {
  double worst = 0.0;
  for (const SampleError& e : errors) worst = std::max(worst, e.rel_err);
  return worst;
}

std::string render_window_table(const SampledResult& result) {
  TextTable t({"window", "begin", "warmup", "measured", "ipc", "helper %", "copy %",
               "dl0 hit %"});
  for (const WindowStats& w : result.windows) {
    t.add_row({std::to_string(w.range.index), std::to_string(w.range.begin),
               std::to_string(w.range.warmup), std::to_string(w.measured.uops),
               TextTable::num(w.measured.ipc, 3),
               TextTable::num(100.0 * w.measured.helper_frac(), 1),
               TextTable::num(100.0 * w.measured.copy_frac(), 1),
               TextTable::num(100.0 * w.measured.dl0_hit_rate, 1)});
  }
  return t.render();
}

}  // namespace hcsim::sample
