// hcsim — the windowed (warm-up/measure) simulator.
//
// WindowedSimulator streams one deterministic trace through the sampling
// schedule of a SampleSpec: each window cold-starts a fresh Pipeline, feeds
// the window's warm-up µops (training predictors/caches/schedulers, counters
// discarded via a StatsCheckpoint taken at the warm-up/measure boundary),
// feeds the measure µops, and closes by subtracting the checkpoint — the
// window's *measured* counters. Measured windows are spliced in trace order
// into one SimResult whose derived statistics (IPC, hit rates, ...) are
// computed from the spliced integer totals.
//
// Because a window is a pure function of (machine config, program, record
// range), the serial run (one stream, one forward pass) and the parallel run
// (windows sliced across an exp::ThreadPool, one fresh stream per job) are
// bit-identical — enforced by tests/test_sample.cpp.
#pragma once

#include <string>
#include <vector>

#include "core/machine_config.hpp"
#include "core/pipeline.hpp"
#include "sample/record_stream.hpp"
#include "sample/spec.hpp"

namespace hcsim::sample {

/// One measured window's spliced contribution.
struct WindowStats {
  WindowRange range;
  /// Counter deltas of the measured region; derived fields (ipc, hit rates)
  /// are finalized per window so the window table can show them.
  SimResult measured;
  u64 dl0_hits = 0, dl0_accesses = 0;  // measured-region cache deltas
  u64 ul1_hits = 0, ul1_accesses = 0;
};

struct SampledResult {
  SampleSpec spec;
  u64 trace_len = 0;       // requested dynamic length
  u64 simulated_uops = 0;  // warm-up + measured µops actually fed
  u64 measured_uops = 0;
  /// False when the plan had no measurable window (trace shorter than one
  /// warm-up) and the run fell back to full simulation.
  bool sampled = false;
  /// The spliced measured aggregate (or the full result on fallback).
  SimResult total;
  /// Per-window snapshots, in trace order. Windows the trace ended before
  /// reaching (e.g. an RV kernel halting early) are dropped.
  std::vector<WindowStats> windows;
};

class WindowedSimulator {
 public:
  WindowedSimulator(const MachineConfig& cfg, const SampleSpec& spec);

  /// Run the schedule over one trace. threads <= 1: serial, a single
  /// forward pass over one stream. threads > 1: every window is an
  /// independent slice job on a thread pool, each opening its own stream
  /// and cold-starting at its warm-up boundary. Results are bit-identical
  /// across thread counts.
  SampledResult run(const StreamFactory& factory, u64 trace_len,
                    unsigned threads = 1) const;

 private:
  MachineConfig cfg_;
  SampleSpec spec_;
};

/// Sampled counterpart of simulate_workload(): trace routing matches it
/// (cached/materialized at or below stream_threshold(), streamed above).
/// n_records == 0 resolves to default_trace_len().
SampledResult simulate_sampled(const MachineConfig& cfg, const WorkloadProfile& profile,
                               u64 n_records, const SampleSpec& spec,
                               unsigned threads = 1);

/// Sampled run over an already-materialized trace (loaded .hctrace files).
SampledResult simulate_sampled(const MachineConfig& cfg, const Trace& trace,
                               const SampleSpec& spec, unsigned threads = 1);

// --- sampled-vs-full error reporting ---------------------------------------

/// One compared metric. Counters are compared as per-committed-µop *rates*
/// (raw magnitudes differ by construction: a sampled run measures fewer
/// µops). rel_err uses a 0.01 absolute floor on the denominator so
/// near-zero rates don't explode the report.
struct SampleError {
  std::string metric;
  double full = 0.0;
  double sampled = 0.0;
  double rel_err = 0.0;
};

std::vector<SampleError> sampling_errors(const SimResult& full, const SimResult& sampled);

/// Worst rel_err in the list (0.0 for an empty list).
double max_rel_error(const std::vector<SampleError>& errors);

/// Per-window summary table (index, range, measured µops, IPC, helper%, ...).
std::string render_window_table(const SampledResult& result);

}  // namespace hcsim::sample
