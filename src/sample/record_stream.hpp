// hcsim — positioned record streams for windowed sampling.
//
// A RecordStream delivers arbitrary forward ranges [begin, end) of one
// deterministic dynamic trace. The windowed simulator slices a trace into
// warm-up/measure windows through this interface, which hides where the
// records come from:
//   - TraceRecordStream  — a materialized Trace (spans, free seeking)
//   - CursorRecordStream — the synthetic generator's pull cursor
//                          (seeks forward by generating + discarding)
//   - KernelRecordStream — the RV functional executor's push stream
//                          (re-executes from entry, delivering the slice)
// All three deliver bit-identical records for the same range, so serial
// windowed runs (one stream, windows in trace order) and parallel sliced
// runs (a fresh stream per window job) agree exactly.
#pragma once

#include <functional>
#include <memory>

#include "trace/trace.hpp"
#include "wload/profile.hpp"

namespace hcsim::sample {

using RecordSink = std::function<void(const TraceRecord&)>;

/// Forward-only positioned view of one deterministic record stream.
class RecordStream {
 public:
  virtual ~RecordStream() = default;

  /// The static program the records refer to. Stable for the stream's
  /// lifetime (a Pipeline holds a reference across a window).
  virtual const Program& program() const = 0;

  /// Push records [begin, end) into `sink`, in program order. `begin` must
  /// be at or after the furthest position already delivered (streams only
  /// move forward); ranges past the end of the trace are delivered short.
  virtual void feed_range(u64 begin, u64 end, const RecordSink& sink) = 0;

  /// Undo forward progress so the next feed_range may start at `pos` again.
  /// Backends with cheap repositioning override this: the materialized
  /// trace seeks freely, and the RV kernel stream restores the nearest
  /// executor-state checkpoint at or below `pos` (taken every
  /// kCheckpointInterval µops while streaming). Returns false when the
  /// backend cannot rewind — the caller reopens a fresh stream from its
  /// factory instead (paying the O(begin) replay this method exists to
  /// avoid). Default: not rewindable.
  virtual bool try_rewind(u64 pos) {
    (void)pos;
    return false;
  }
};

/// Forward-seek visibility (ROADMAP item 3): discarding more than this many
/// records to reach a range's begin logs a one-shot warning via
/// log_warn_once — the O(begin) seek cost is reported, never silent.
inline constexpr u64 kSeekWarnThreshold = 10'000'000;

/// Shared helper for forward-only backends: warn (once per stream kind) when
/// a seek is about to discard `n_discard` records.
void note_forward_seek(const char* backend, u64 n_discard);

/// Creates an independent stream over the same trace. Factories are
/// immutable and safe to invoke concurrently — each parallel window job
/// opens its own stream.
using StreamFactory = std::function<std::unique_ptr<RecordStream>()>;

/// Stream over a materialized trace. Borrows `trace`; the caller keeps it
/// alive for the stream's lifetime.
std::unique_ptr<RecordStream> open_trace_stream(const Trace& trace);

/// Factory for `profile`'s deterministic trace of `n_records` µops, routed
/// the same way simulate_workload routes full runs: a materialized cached
/// trace at or below stream_threshold(), the synthetic generator cursor or
/// the RV kernel executor above it (O(chunk) memory).
StreamFactory workload_stream_factory(const WorkloadProfile& profile, u64 n_records);

}  // namespace hcsim::sample
