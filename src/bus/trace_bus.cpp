#include "bus/trace_bus.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "trace/wire.hpp"
#include "util/log.hpp"

namespace hcsim::bus {

namespace {

/// Buffered chunk writer: packs records into [u32 count][records] frames.
/// Once the consumer departs (a write fails), it swallows further records —
/// the producing stream cannot be stopped mid-feed_range, so the cheap thing
/// is to stop copying and let the range finish.
struct ChunkWriter {
  ShmRing& ring;
  u64 chunk_records;
  u64 deadline_ms;
  std::vector<u8> buf;
  u64 count = 0;
  bool alive = true;

  ChunkWriter(ShmRing& r, const ProducerOptions& opts)
      : ring(r),
        chunk_records(std::clamp<u64>(opts.chunk_records, 1, kMaxChunkRecords)),
        deadline_ms(opts.write_deadline_ms) {
    buf.reserve(sizeof(u32) + chunk_records * wire::kRecordBytes);
  }

  void add(const TraceRecord& rec) {
    if (!alive) return;
    if (count == 0) {
      buf.clear();
      wire::put_u32(buf, 0);  // count patched in flush()
    }
    wire::put_record(buf, rec);
    if (++count == chunk_records) flush();
  }

  void flush() {
    if (!alive || count == 0) return;
    wire::store_u32le(buf.data(), static_cast<u32>(count));
    alive = ring.write(buf.data(), buf.size(), deadline_ms);
    count = 0;
  }

  /// End-of-range / end-of-stream marker.
  bool marker() {
    flush();
    if (!alive) return false;
    const u32 zero = 0;
    alive = ring.write(&zero, sizeof(zero), deadline_ms);
    return alive;
  }
};

bool write_header(ShmRing& ring, const Program& program, u64 seed, u64 deadline_ms) {
  std::vector<u8> prog;
  wire::put_program(prog, program, seed);
  HCSIM_CHECK(prog.size() <= kMaxProgramBytes, "program section too large for the bus");
  std::vector<u8> buf;
  wire::put_u32(buf, kBusMagic);
  wire::put_u32(buf, kBusVersion);
  wire::put_u32(buf, static_cast<u32>(prog.size()));
  buf.insert(buf.end(), prog.begin(), prog.end());
  return ring.write(buf.data(), buf.size(), deadline_ms);
}

}  // namespace

bool produce_trace(ShmRing& ring, sample::RecordStream& src, u64 seed, u64 len,
                   const ProducerOptions& opts) {
  if (!write_header(ring, src.program(), seed, opts.write_deadline_ms)) {
    ring.close_write();
    return false;
  }
  ChunkWriter out(ring, opts);
  src.feed_range(0, len, [&out](const TraceRecord& rec) { out.add(rec); });
  const bool complete = out.marker();
  ring.close_write();
  return complete;
}

u64 serve_trace_ranges(ShmRing& ring, const sample::StreamFactory& factory, u64 seed,
                       const ProducerOptions& opts) {
  std::unique_ptr<sample::RecordStream> stream = factory();
  if (!write_header(ring, stream->program(), seed, opts.write_deadline_ms)) {
    ring.close_write();
    return 0;
  }

  RingHeader& h = ring.header();
  u64 served_seq = 0;
  u64 served = 0;
  u64 pos = 0;  // furthest position the live stream has delivered
  for (;;) {
    // Wait for the next request; the consumer's departure ends the service.
    unsigned spins = 0;
    while (h.req_seq.load(std::memory_order_acquire) == served_seq) {
      if (ring.consumer_closed()) {
        ring.close_write();
        return served;
      }
      if (++spins < 64)
        std::this_thread::yield();
      else
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    served_seq = h.req_seq.load(std::memory_order_acquire);
    h.req_ack.store(served_seq, std::memory_order_release);
    const u64 begin = h.req_begin.load(std::memory_order_acquire);
    const u64 end = h.req_end.load(std::memory_order_acquire);

    if (begin < pos) {
      // Backward request (a replay over the same trace): prefer the
      // stream's own checkpoints, reopen from scratch only without them.
      if (!stream->try_rewind(begin)) stream = factory();
      pos = begin;
    }
    ChunkWriter out(ring, opts);
    if (begin < end)
      stream->feed_range(begin, end, [&out](const TraceRecord& rec) { out.add(rec); });
    pos = std::max(pos, end);
    ++served;
    if (!out.marker()) {
      ring.close_write();
      return served;  // consumer departed mid-range
    }
  }
}

// --- consumer ----------------------------------------------------------------

BusReader::BusReader(ShmRing& ring, u64 read_deadline_ms)
    : ring_(ring), deadline_ms_(read_deadline_ms) {
  if (!ring_.valid()) {
    error_ = "invalid ring: " + ring_.error();
    return;
  }
  u8 fixed[3 * sizeof(u32)];
  if (ring_.read(fixed, sizeof(fixed), deadline_ms_) != sizeof(fixed)) {
    fail("stream header truncated");
    return;
  }
  wire::Reader head(fixed, sizeof(fixed));
  u32 magic = 0, version = 0, prog_bytes = 0;
  head.get_u32(magic);
  head.get_u32(version);
  head.get_u32(prog_bytes);
  if (magic != kBusMagic) {
    fail("bad bus magic");
    return;
  }
  if (version != kBusVersion) {
    fail("unsupported bus version");
    return;
  }
  if (prog_bytes == 0 || prog_bytes > kMaxProgramBytes) {
    fail("corrupt program section size");
    return;
  }

  raw_.resize(prog_bytes);
  if (ring_.read(raw_.data(), prog_bytes, deadline_ms_) != prog_bytes) {
    fail("program section truncated");
    return;
  }
  wire::Reader prog(raw_.data(), raw_.size());
  if (!prog.get_program(program_, seed_) || prog.remaining() != 0) {
    fail("malformed program section");
    return;
  }
  if (program_.uops.empty()) fail("empty program on the bus");
}

void BusReader::fail(const std::string& msg) {
  if (error_.empty()) error_ = msg;
  ring_.close_read();  // unblock / fail-fast the producer
}

std::span<const TraceRecord> BusReader::next_chunk() {
  if (!ok()) return {};
  u8 tag[sizeof(u32)];
  const u64 got = ring_.read(tag, sizeof(tag), deadline_ms_);
  if (got < sizeof(tag)) {
    fail(got == 0 ? "stream ended without an end marker" : "stream truncated mid-tag");
    return {};
  }
  const u32 count = wire::load_u32le(tag);  // chunk tags use the wire byte order
  if (count == 0) return {};  // end-of-range / end-of-stream marker
  if (count > kMaxChunkRecords) {
    fail("corrupt chunk tag (" + std::to_string(count) + " records)");
    return {};
  }

  raw_.resize(static_cast<std::size_t>(count) * wire::kRecordBytes);
  if (ring_.read(raw_.data(), raw_.size(), deadline_ms_) != raw_.size()) {
    fail("truncated final chunk");
    return {};
  }
  records_.resize(count);
  wire::Reader r(raw_.data(), raw_.size());
  const u32 n_static = static_cast<u32>(program_.uops.size());
  for (u32 i = 0; i < count; ++i) {
    if (!r.get_record(records_[i])) {
      fail("malformed record");  // unreachable: sized above
      return {};
    }
    if (records_[i].pc >= n_static) {
      fail("record pc out of range");
      return {};
    }
  }
  return records_;
}

BusRecordStream::BusRecordStream(ShmRing& ring, u64 read_deadline_ms)
    : ring_(ring), reader_(ring, read_deadline_ms) {}

void BusRecordStream::feed_range(u64 begin, u64 end, const sample::RecordSink& sink) {
  HCSIM_CHECK(begin <= end, "BusRecordStream: begin > end");
  HCSIM_CHECK(begin >= pos_, "BusRecordStream: backward seek");
  pos_ = begin;
  if (!ok() || begin == end) return;

  RingHeader& h = ring_.header();
  h.req_begin.store(begin, std::memory_order_relaxed);
  h.req_end.store(end, std::memory_order_relaxed);
  h.req_seq.fetch_add(1, std::memory_order_release);

  for (;;) {
    const std::span<const TraceRecord> chunk = reader_.next_chunk();
    if (chunk.empty()) break;  // range marker, or truncation (ok() false)
    for (const TraceRecord& rec : chunk) sink(rec);
  }
  pos_ = end;
}

bool BusRecordStream::try_rewind(u64 pos) {
  if (!ok()) return false;
  // Nothing to undo locally: the next feed_range publishes `begin` and the
  // producer rewinds its own stream (serve_trace_ranges handles begin < pos).
  if (pos < pos_) pos_ = pos;
  return true;
}

}  // namespace hcsim::bus
