// hcsim — lock-free single-producer/single-consumer shared-memory byte ring.
//
// The out-of-process trace bus (ROADMAP item 3, after cavatools' shmfifo):
// a producer process (RV executor, program generator, or the hcsimd daemon)
// streams trace bytes to one consumer process through a memory-mapped ring.
// Head and tail are monotonically increasing byte counters in a shared
// header — the producer owns head, the consumer owns tail, and each side
// publishes with a release store and observes the other with an acquire
// load, so no locks are taken on the data path.
//
// Backing is a plain file created with open+ftruncate+mmap(MAP_SHARED)
// (put it on /dev/shm or $TMPDIR for a memory-backed segment) or an
// anonymous shared mapping (`ShmRing::anonymous`) for same-process and
// fork-based tests. The creating side owns the file and unlinks it on
// destruction, so an idle shutdown releases the segment.
//
// Blocking behavior: `write` waits for space, `read` waits for bytes, both
// with a yield/backoff spin. Each side can signal departure — the producer
// with `close_write` (EOF: reads drain and then return short), the consumer
// with `close_read` (writes fail fast instead of blocking forever on a
// departed peer). An optional deadline turns a dead peer into a clean
// timeout instead of a hang.
#pragma once

#include <atomic>
#include <string>

#include "util/types.hpp"

namespace hcsim::bus {

/// Shared control block at the start of the mapping. POD + std::atomic
/// counters only; both processes map it at (potentially) different
/// addresses, so nothing here may hold a pointer.
struct RingHeader {
  u32 magic = 0;
  u32 version = 0;
  u64 capacity = 0;  // data bytes following the header (power of two)

  alignas(64) std::atomic<u64> head{0};  // bytes produced (producer-owned)
  alignas(64) std::atomic<u64> tail{0};  // bytes consumed (consumer-owned)

  std::atomic<u32> producer_done{0};  // EOF marker
  std::atomic<u32> consumer_done{0};  // consumer detached

  // Range-request control channel (consumer -> producer), used by the
  // RecordStream mode of the trace bus: the consumer publishes a request
  // with a sequence bump; the producer acknowledges before streaming.
  std::atomic<u64> req_seq{0};
  std::atomic<u64> req_ack{0};
  std::atomic<u64> req_begin{0};
  std::atomic<u64> req_end{0};
};

class ShmRing {
 public:
  static constexpr u32 kMagic = 0x48435247;  // "HCRG"
  static constexpr u32 kVersion = 1;
  static constexpr u64 kDefaultCapacity = u64{1} << 20;
  /// Upper bound on `capacity` for create/anonymous (1 GiB) — a sanity cap,
  /// since capacities can arrive from untrusted daemon clients.
  static constexpr u64 kMaxCapacity = u64{1} << 30;

  /// Create a new ring backed by `path` (unlinked when this end is
  /// destroyed). `capacity` is rounded up to a power of two. Returns an
  /// invalid ring (valid() == false, `error()` set) on I/O failure, an
  /// over-cap capacity, or when `path` holds a file that is not a stale
  /// ring segment — an existing non-ring file is never unlinked, since the
  /// path may come from an untrusted client.
  static ShmRing create(const std::string& path, u64 capacity = kDefaultCapacity);

  /// Attach to a ring created by another process. Returns an invalid ring
  /// (valid() == false, `error()` set) when the file is missing or its
  /// header is malformed — attach is the untrusted direction.
  static ShmRing attach(const std::string& path);

  /// Anonymous MAP_SHARED ring: usable across fork() and between threads.
  static ShmRing anonymous(u64 capacity = kDefaultCapacity);

  ShmRing() = default;
  ~ShmRing();
  ShmRing(ShmRing&& other) noexcept;
  ShmRing& operator=(ShmRing&& other) noexcept;
  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  bool valid() const { return hdr_ != nullptr; }
  const std::string& error() const { return error_; }
  u64 capacity() const { return hdr_ ? hdr_->capacity : 0; }
  RingHeader& header() { return *hdr_; }

  /// Producer: append `n` bytes, blocking while the ring is full. Returns
  /// false when the consumer has departed or `deadline_ms` (0 = forever)
  /// expires — the write may then be partially applied, and the stream is
  /// dead either way.
  bool write(const void* data, u64 n, u64 deadline_ms = 0);

  /// Producer: publish EOF. Readers drain buffered bytes, then see a short
  /// read.
  void close_write();

  /// Consumer: read exactly `n` bytes, blocking while the ring is empty.
  /// Returns the byte count actually read — short only when the producer
  /// closed (truncation shows up here) or `deadline_ms` expired.
  u64 read(void* out, u64 n, u64 deadline_ms = 0);

  /// Consumer: signal departure so a blocked producer fails fast.
  void close_read();

  /// Bytes currently buffered (consumer-side view).
  u64 readable() const;
  bool producer_closed() const { return hdr_ && hdr_->producer_done.load(std::memory_order_acquire) != 0; }
  bool consumer_closed() const { return hdr_ && hdr_->consumer_done.load(std::memory_order_acquire) != 0; }

 private:
  void unmap();

  RingHeader* hdr_ = nullptr;
  u8* data_ = nullptr;       // ring data area, hdr_->capacity bytes
  u64 map_bytes_ = 0;        // total mapping size
  std::string path_;         // non-empty only on the owning (creating) end
  std::string error_;
};

}  // namespace hcsim::bus
