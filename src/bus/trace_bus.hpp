// hcsim — v3 trace chunks over a ShmRing: the out-of-process trace bus.
//
// Wire layout (all little-endian, the trace/wire.hpp packing):
//
//   [u32 magic "HCBT"] [u32 version] [u32 prog_bytes] [program section]
//   then repeated chunks:  [u32 count] [count * 29-byte packed records]
//   count == 0 is a marker: end-of-range in range mode, end-of-stream in
//   one-shot mode. The producer's close_write() ends the stream in either
//   mode; a stream that stops mid-chunk is reported as truncated, not
//   silently shortened.
//
// Two consumption modes over the same framing:
//   - BusCursor (TraceCursor): the producer pushes records [0, len) once;
//     Pipeline::feed / simulate() consume the ring unchanged.
//   - BusRecordStream (sample::RecordStream): the consumer publishes
//     [begin, end) range requests on the ring's control channel and the
//     producer answers each with chunks + a 0-count marker, so
//     WindowedSimulator's serial window plan runs against a remote
//     producer unchanged.
//
// Producer resumability: serve_trace_ranges keeps ONE live stream across
// requests — a forward request costs O(gap), not O(begin). Backward
// requests (a second sweep over the same trace) first try the stream's own
// checkpoint support (RecordStream::try_rewind — the RV executor snapshots
// machine state every checkpoint interval) and only reopen from the factory
// when the stream has none, preserving the pump_range over-pump-and-trim
// instruction-boundary contract either way because the slices are produced
// by the same resumable cursor that produced the forward stream.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bus/shm_ring.hpp"
#include "sample/record_stream.hpp"
#include "trace/trace.hpp"

namespace hcsim::bus {

inline constexpr u32 kBusMagic = 0x48434254;  // "HCBT"
inline constexpr u32 kBusVersion = 1;
/// Upper bound a consumer accepts for one chunk's record count (guards the
/// allocation against a corrupt tag). Tied to the process-wide trace chunk
/// granularity so bus chunks never exceed what the pipeline's batched feed
/// and the cursors stage at once.
inline constexpr u32 kMaxChunkRecords = static_cast<u32>(kTraceChunkRecords);
static_assert(kMaxChunkRecords == kTraceChunkRecords,
              "shm chunk tag width must cover the shared trace chunk size");
/// Upper bound on the serialized program section.
inline constexpr u32 kMaxProgramBytes = 1u << 26;

struct ProducerOptions {
  /// Records per chunk (bounded by kMaxChunkRecords).
  u64 chunk_records = 4096;
  /// Milliseconds write() may block on a full ring before declaring the
  /// consumer dead. 0 = block forever.
  u64 write_deadline_ms = 0;
};

/// One-shot producer: program header + records [0, len) + end marker + EOF.
/// Returns false when the consumer departed mid-stream (the ring is dead);
/// the stream is complete on true.
bool produce_trace(ShmRing& ring, sample::RecordStream& src, u64 seed, u64 len,
                   const ProducerOptions& opts = {});

/// Range server: program header, then serve [begin, end) requests from the
/// ring's control channel until the consumer departs. `factory` reopens the
/// stream for a backward request the live stream cannot rewind to.
/// Returns the number of requests served.
u64 serve_trace_ranges(ShmRing& ring, const sample::StreamFactory& factory, u64 seed,
                       const ProducerOptions& opts = {});

/// Shared consumer core: header parsing + chunk-wise record decoding.
class BusReader {
 public:
  /// Reads and validates the stream header (blocking up to deadline_ms, 0 =
  /// forever). On failure ok() is false and error() says why.
  explicit BusReader(ShmRing& ring, u64 read_deadline_ms = 0);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const Program& program() const { return program_; }
  u64 seed() const { return seed_; }

  /// Next decoded chunk (empty at a 0-count marker, stream EOF, or error —
  /// check ok() to tell the last from the first two). Records are validated
  /// against the program.
  std::span<const TraceRecord> next_chunk();

 private:
  void fail(const std::string& msg);

  ShmRing& ring_;
  u64 deadline_ms_;
  Program program_;
  u64 seed_ = 0;
  std::vector<u8> raw_;
  std::vector<TraceRecord> records_;
  std::string error_;
};

/// TraceCursor over a one-shot bus stream: Pipeline::feed / simulate()
/// consume a remote producer unchanged. After the pipeline drains the
/// cursor, check ok() — a truncated stream ends the cursor (the pipeline
/// sees a normal end-of-trace) but is an error the caller must surface.
class BusCursor final : public TraceCursor {
 public:
  explicit BusCursor(ShmRing& ring, u64 read_deadline_ms = 0)
      : reader_(ring, read_deadline_ms) {}

  bool ok() const { return reader_.ok(); }
  const std::string& error() const { return reader_.error(); }
  u64 seed() const { return reader_.seed(); }

  const Program& program() const override { return reader_.program(); }
  std::span<const TraceRecord> next_chunk() override { return reader_.next_chunk(); }

 private:
  BusReader reader_;
};

/// RecordStream over a range-serving bus producer. Forward-only between
/// rewinds on the consumer side (the RecordStream contract); backward moves
/// go through try_rewind, which simply resets the request position — the
/// *producer* resolves the rewind (checkpoint restore or stream reopen) when
/// the next range request arrives. Ranges past the producer's trace end are
/// delivered short, like every other RecordStream.
class BusRecordStream final : public sample::RecordStream {
 public:
  explicit BusRecordStream(ShmRing& ring, u64 read_deadline_ms = 0);

  bool ok() const { return reader_.ok(); }
  const std::string& error() const { return reader_.error(); }

  const Program& program() const override { return reader_.program(); }
  void feed_range(u64 begin, u64 end, const sample::RecordSink& sink) override;
  bool try_rewind(u64 pos) override;

 private:
  ShmRing& ring_;
  BusReader reader_;
  u64 pos_ = 0;  // furthest position requested (forward-only check)
};

}  // namespace hcsim::bus
