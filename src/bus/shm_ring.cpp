#include "bus/shm_ring.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>
#include <thread>

#include "util/faultpoint.hpp"
#include "util/log.hpp"

namespace hcsim::bus {

namespace {

u64 round_up_pow2(u64 v) {
  u64 p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Yield-then-sleep backoff for the blocking paths: cheap when the peer is
/// active, kind to the scheduler when it stalls. Returns false once
/// `deadline` (steady-clock, or time_point::max for "forever") has passed.
struct Backoff {
  std::chrono::steady_clock::time_point deadline;
  unsigned spins = 0;

  bool pause() {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return true;
  }
};

std::chrono::steady_clock::time_point deadline_from_ms(u64 ms) {
  if (ms == 0) return std::chrono::steady_clock::time_point::max();
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

/// A stale segment from a crashed run may sit at `path`; remove it so create
/// can claim the name. Only a file that provably is a ring segment (regular,
/// header-sized, correct magic) is unlinked — the path can come from an
/// untrusted client, and create must never become a delete-anything gadget.
bool replace_stale_segment(const std::string& path, std::string& error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_NOFOLLOW | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return true;  // nothing to replace
    error = "cannot inspect existing file at " + path;
    return false;
  }
  struct stat st{};
  u32 magic = 0;
  const bool is_ring =
      ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) &&
      st.st_size >= static_cast<off_t>(sizeof(RingHeader)) &&
      ::read(fd, &magic, sizeof(magic)) == static_cast<ssize_t>(sizeof(magic)) &&
      magic == ShmRing::kMagic;
  ::close(fd);
  if (!is_ring) {
    error = "refusing to replace " + path + ": not a ring segment";
    return false;
  }
  if (::unlink(path.c_str()) != 0) {
    error = "cannot unlink stale segment " + path;
    return false;
  }
  return true;
}

}  // namespace

ShmRing ShmRing::create(const std::string& path, u64 capacity) {
  ShmRing ring;
  // Deterministic ENOSPC-style failure for the fault-injection harness: the
  // segment never comes into existence, exactly like a full /dev/shm.
  if (fault::enabled() && fault::fire("ring.create.fail")) {
    ring.error_ = "cannot create ring segment " + path + " (injected fault)";
    return ring;
  }
  if (capacity > kMaxCapacity) {
    ring.error_ = "ring capacity too large for " + path;
    return ring;
  }
  capacity = round_up_pow2(capacity < 4096 ? 4096 : capacity);
  const u64 map_bytes = sizeof(RingHeader) + capacity;

  if (!replace_stale_segment(path, ring.error_)) return ring;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_NOFOLLOW, 0600);
  if (fd < 0) {
    ring.error_ = "cannot create ring segment " + path;
    return ring;
  }
  if (::ftruncate(fd, static_cast<off_t>(map_bytes)) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    ring.error_ = "ftruncate failed for " + path;
    return ring;
  }
  void* map = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    ::unlink(path.c_str());
    ring.error_ = "mmap failed for " + path;
    return ring;
  }

  ring.hdr_ = new (map) RingHeader();
  ring.data_ = static_cast<u8*>(map) + sizeof(RingHeader);
  ring.map_bytes_ = map_bytes;
  ring.path_ = path;
  ring.hdr_->capacity = capacity;
  ring.hdr_->version = kVersion;
  // Publish the magic last: attach() takes a header with the magic set as
  // fully initialized.
  std::atomic_thread_fence(std::memory_order_release);
  ring.hdr_->magic = kMagic;
  return ring;
}

ShmRing ShmRing::attach(const std::string& path) {
  ShmRing ring;
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    ring.error_ = "cannot open ring segment " + path;
    return ring;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < static_cast<off_t>(sizeof(RingHeader))) {
    ::close(fd);
    ring.error_ = "ring segment too small: " + path;
    return ring;
  }
  const u64 map_bytes = static_cast<u64>(st.st_size);
  void* map = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    ring.error_ = "mmap failed for " + path;
    return ring;
  }
  RingHeader* hdr = static_cast<RingHeader*>(map);
  if (hdr->magic != kMagic || hdr->version != kVersion ||
      hdr->capacity == 0 || (hdr->capacity & (hdr->capacity - 1)) != 0 ||
      map_bytes != sizeof(RingHeader) + hdr->capacity) {
    ::munmap(map, map_bytes);
    ring.error_ = "malformed ring header in " + path;
    return ring;
  }
  ring.hdr_ = hdr;
  ring.data_ = static_cast<u8*>(map) + sizeof(RingHeader);
  ring.map_bytes_ = map_bytes;
  return ring;
}

ShmRing ShmRing::anonymous(u64 capacity) {
  HCSIM_CHECK(capacity <= kMaxCapacity, "ShmRing::anonymous: capacity too large");
  capacity = round_up_pow2(capacity < 4096 ? 4096 : capacity);
  const u64 map_bytes = sizeof(RingHeader) + capacity;
  void* map = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  HCSIM_CHECK(map != MAP_FAILED, "ShmRing::anonymous: mmap failed");

  ShmRing ring;
  ring.hdr_ = new (map) RingHeader();
  ring.data_ = static_cast<u8*>(map) + sizeof(RingHeader);
  ring.map_bytes_ = map_bytes;
  ring.hdr_->capacity = capacity;
  ring.hdr_->version = kVersion;
  ring.hdr_->magic = kMagic;
  return ring;
}

ShmRing::~ShmRing() { unmap(); }

ShmRing::ShmRing(ShmRing&& other) noexcept { *this = std::move(other); }

ShmRing& ShmRing::operator=(ShmRing&& other) noexcept {
  if (this == &other) return *this;
  unmap();
  hdr_ = other.hdr_;
  data_ = other.data_;
  map_bytes_ = other.map_bytes_;
  path_ = std::move(other.path_);
  error_ = std::move(other.error_);
  other.hdr_ = nullptr;
  other.data_ = nullptr;
  other.map_bytes_ = 0;
  other.path_.clear();
  return *this;
}

void ShmRing::unmap() {
  if (!hdr_) return;
  ::munmap(hdr_, map_bytes_);
  if (!path_.empty()) ::unlink(path_.c_str());  // owner releases the segment
  hdr_ = nullptr;
  data_ = nullptr;
  map_bytes_ = 0;
}

bool ShmRing::write(const void* data, u64 n, u64 deadline_ms) {
  HCSIM_CHECK(valid(), "write on an invalid ShmRing");
  const u8* src = static_cast<const u8*>(data);
  const u64 cap = hdr_->capacity;
  u64 head = hdr_->head.load(std::memory_order_relaxed);  // producer-owned
  Backoff backoff{deadline_from_ms(deadline_ms)};

  while (n > 0) {
    if (hdr_->consumer_done.load(std::memory_order_acquire) != 0) return false;
    const u64 tail = hdr_->tail.load(std::memory_order_acquire);
    const u64 space = cap - (head - tail);
    if (space == 0) {
      if (!backoff.pause()) return false;  // deadline: peer presumed dead
      continue;
    }
    const u64 chunk0 = std::min(n, space);
    const u64 off = head & (cap - 1);
    const u64 run = std::min(chunk0, cap - off);  // up to the wrap point
    std::memcpy(data_ + off, src, run);
    if (chunk0 > run) std::memcpy(data_, src + run, chunk0 - run);
    head += chunk0;
    hdr_->head.store(head, std::memory_order_release);
    src += chunk0;
    n -= chunk0;
  }
  return true;
}

void ShmRing::close_write() {
  if (hdr_) hdr_->producer_done.store(1, std::memory_order_release);
}

u64 ShmRing::read(void* out, u64 n, u64 deadline_ms) {
  HCSIM_CHECK(valid(), "read on an invalid ShmRing");
  u8* dst = static_cast<u8*>(out);
  const u64 cap = hdr_->capacity;
  u64 tail = hdr_->tail.load(std::memory_order_relaxed);  // consumer-owned
  u64 got = 0;
  Backoff backoff{deadline_from_ms(deadline_ms)};

  while (got < n) {
    const u64 head = hdr_->head.load(std::memory_order_acquire);
    const u64 avail = head - tail;
    if (avail == 0) {
      // Check EOF only after observing an empty ring: producer_done is set
      // after the final head publish, so this order never drops a tail.
      if (hdr_->producer_done.load(std::memory_order_acquire) != 0) {
        if (hdr_->head.load(std::memory_order_acquire) == tail) return got;
        continue;  // bytes landed between the two loads
      }
      if (!backoff.pause()) return got;  // deadline
      continue;
    }
    const u64 chunk0 = std::min(n - got, avail);
    const u64 off = tail & (cap - 1);
    const u64 run = std::min(chunk0, cap - off);
    std::memcpy(dst + got, data_ + off, run);
    if (chunk0 > run) std::memcpy(dst + got + run, data_, chunk0 - run);
    tail += chunk0;
    hdr_->tail.store(tail, std::memory_order_release);
    got += chunk0;
  }
  return got;
}

void ShmRing::close_read() {
  if (hdr_) hdr_->consumer_done.store(1, std::memory_order_release);
}

u64 ShmRing::readable() const {
  if (!hdr_) return 0;
  return hdr_->head.load(std::memory_order_acquire) -
         hdr_->tail.load(std::memory_order_acquire);
}

}  // namespace hcsim::bus
