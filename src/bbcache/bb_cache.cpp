#include "bbcache/bb_cache.hpp"

#include <atomic>
#include <cstdlib>

#include "isa/reg.hpp"
#include "util/log.hpp"
#include "util/narrow.hpp"

namespace hcsim {

namespace {

constexpr bool cr_eligible_opcode(Opcode op) {
  // The CR scheme relies on the carry signal, so only additive address/value
  // arithmetic and memory address generation qualify; mul/div are explicitly
  // ineligible (Section 3.5).
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kLea:
    case Opcode::kLoad:
    case Opcode::kLoadByte:
    case Opcode::kStore:
    case Opcode::kStoreByte:
      return true;
    default:
      return false;
  }
}

/// -1 = follow the environment; 0/1 = forced by bbcache_set_enabled.
std::atomic<int> g_enabled_override{-1};

bool env_enabled() {
  static const bool kEnabled = [] {
    const char* v = std::getenv("HCSIM_BBCACHE");
    return !(v && v[0] == '0' && v[1] == '\0');
  }();
  return kEnabled;
}

}  // namespace

bool bbcache_enabled_default() {
  const int o = g_enabled_override.load(std::memory_order_relaxed);
  return o < 0 ? env_enabled() : o != 0;
}

void bbcache_set_enabled(bool enabled) {
  g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void bbcache_reset_enabled() {
  g_enabled_override.store(-1, std::memory_order_relaxed);
}

UopTemplate build_uop_template(const StaticUop& su, const SteeringConfig& steer,
                               unsigned helper_width_bits) {
  UopTemplate t;
  t.uop = &su;

  for (unsigned k = 0; k < kMaxSrcs; ++k) {
    const RegId r = su.srcs[k];
    if (r == kRegNone) continue;
    t.srcs[t.n_srcs++] = r;
    if (!is_flags(r)) {
      t.width_srcs[t.n_width_srcs] = r;
      t.width_lane[t.n_width_srcs] = static_cast<u8>(k);
      ++t.n_width_srcs;
      t.width_lane_mask |= static_cast<u8>(u8{1} << k);
    }
  }

  t.dst = su.dst;
  t.has_dst = su.has_dst();
  t.has_imm = su.has_imm;
  t.imm = su.imm;
  t.imm_narrow = !su.has_imm || is_narrow(su.imm, helper_width_bits);

  const OpcodeInfo& info = opcode_info(su.opcode);
  t.opcode = su.opcode;
  t.latency_wide = info.latency_wide;
  t.writes_flags = info.writes_flags;
  t.reads_flags = info.reads_flags;
  t.helper_capable = info.helper_capable;
  t.tracked = info.width_tracked && t.has_dst;
  t.is_mem = is_memory(su.opcode);
  t.is_store_op = is_store(su.opcode);
  t.is_load_op = is_load(su.opcode);
  t.is_load_byte = su.opcode == Opcode::kLoadByte;
  t.is_fp_op = is_fp(su.opcode);
  t.is_branch_op = is_branch(su.opcode);
  t.is_branch_cond = su.opcode == Opcode::kBranchCond;

  t.cr_op = cr_eligible_opcode(su.opcode);
  t.splittable = info.helper_capable && info.op_class == OpClass::kIntAlu &&
                 !t.is_branch_op;
  t.static_wide = !steer.helper_enabled || !info.helper_capable;
  t.wants_cr = steer.cr && t.cr_op;
  return t;
}

u64 DecodeCache::bind(const Program& program, const SteeringConfig& steer,
                      unsigned helper_width_bits) {
  const bool same_key = bound_ && program_ == &program &&
                        program_size_ == program.uops.size() &&
                        program_name_ == program.name && steer_ == steer &&
                        helper_width_bits_ == helper_width_bits;
  u64 invalidated = 0;
  if (!same_key) {
    invalidated = filled_;
    filled_ = 0;
    slots_.assign(program.uops.size(), UopTemplate{});
    valid_.assign(program.uops.size(), 0);
    program_ = &program;
    program_size_ = program.uops.size();
    program_name_ = program.name;
    steer_ = steer;
    helper_width_bits_ = helper_width_bits;
    bound_ = true;
  }
  return invalidated;
}

const UopTemplate& DecodeCache::fill(u32 pc) {
  HCSIM_CHECK(bound_ && pc < slots_.size(), "DecodeCache: pc outside bound program");
  slots_[pc] = build_uop_template(program_->uops[pc], steer_, helper_width_bits_);
  valid_[pc] = 1;
  ++filled_;
  return slots_[pc];
}

}  // namespace hcsim
