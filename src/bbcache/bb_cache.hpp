// hcsim — per-PC decode-and-steer cache (the cavatools find_bb idea applied
// to the trace-driven pipeline).
//
// Every dynamic instance of a static µop used to re-derive the same facts on
// the hot path: opcode_info lookups, operand-list scans over kRegNone holes,
// immediate width classification, CR-shape eligibility, and — for ops the
// steering ladder can never move — the steering verdict itself. All of that
// depends only on (StaticUop, SteeringConfig, helper width), so it is
// cracked ONCE into a UopTemplate on first encounter of the PC and replayed
// for every later instance with only the dynamic values/flags/addresses
// rebound by the pipeline.
//
// The cache is keyed by (program identity, steering config, helper width):
// rebinding with a different key — a new program, a different rung of the
// steering ladder, a different datapath width mid-sweep — invalidates every
// cached template (counted, so hit-rate regressions are observable as
// bb_cache_* counters). Templates are a pure function of the key, so a
// shared cache is bit-identical to a private one and to no cache at all;
// HCSIM_BBCACHE=0 (or bbcache_set_enabled(false)) disables replay for
// debugging, forcing a fresh crack per record through the same code path.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "isa/uop.hpp"
#include "steer/steering.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace hcsim {

/// Everything Pipeline::feed derives from the static µop alone, pre-packed
/// for branch-free replay: operand lists with the kRegNone holes squeezed
/// out, opcode_info fields flattened, width/CR/steering eligibility decided.
struct UopTemplate {
  const StaticUop* uop = nullptr;  // backing static µop (SteerContext.uop)

  // Packed operand lists. `srcs` is every real source (flags included) in
  // operand order — the acquire/copy loops. `width_srcs` is the subset the
  // width rules look at (real, non-flags), with `width_lane[j]` giving the
  // original operand slot so dynamic values/lanes can be rebound.
  std::array<RegId, kMaxSrcs> srcs{};
  std::array<RegId, kMaxSrcs> width_srcs{};
  std::array<u8, kMaxSrcs> width_lane{};
  u8 n_srcs = 0;
  u8 n_width_srcs = 0;
  /// Bit k set when operand slot k participates in the actual-source-width
  /// fold — fold a WidthLaneBlock src mask against this.
  u8 width_lane_mask = 0;

  RegId dst = kRegNone;
  bool has_dst = false;
  bool has_imm = false;
  bool imm_narrow = true;  // vs the bound helper width
  u32 imm = 0;

  // Flattened opcode facts (one opcode_info call at build time).
  Opcode opcode = Opcode::kNop;
  u8 latency_wide = 1;
  bool writes_flags = false;
  bool reads_flags = false;
  bool helper_capable = false;
  bool tracked = false;  // width_tracked && has_dst
  bool is_mem = false;
  bool is_store_op = false;
  bool is_load_op = false;
  bool is_load_byte = false;
  bool is_fp_op = false;
  bool is_branch_op = false;
  bool is_branch_cond = false;

  // Steering eligibility decided at crack time.
  bool cr_op = false;       // additive op the CR scheme may confine
  bool splittable = false;  // IR block mode may pull it into a helper block
  /// The steering ladder returns kWide for every dynamic instance of this
  /// µop (helper disabled, or op class absent from the helper cluster) —
  /// the memoized steering verdict: replay skips context collection and
  /// the policy call entirely.
  bool static_wide = false;
  /// The config has CR enabled and this is a CR-eligible opcode: the carry
  /// predictor must be consulted/trained even when the verdict is static.
  bool wants_cr = false;
};

/// Crack one static µop against a steering config + helper width. Pure: two
/// builds from the same inputs yield identical templates, which is what
/// makes cache-on and cache-off runs bit-identical.
UopTemplate build_uop_template(const StaticUop& su, const SteeringConfig& steer,
                               unsigned helper_width_bits);

/// Process-wide decode-cache enable knob: HCSIM_BBCACHE=0 disables, anything
/// else (or unset) enables. bbcache_set_enabled overrides the environment
/// (pass std::nullopt to drop back to it) — tests use it instead of setenv,
/// which is unsafe while sweep threads run.
bool bbcache_enabled_default();
void bbcache_set_enabled(bool enabled);
void bbcache_reset_enabled();

/// Direct-mapped template store parallel to Program::uops, filled lazily on
/// first encounter. May be shared across Pipeline instances (and programs):
/// bind() detects key changes and invalidates.
class DecodeCache {
 public:
  /// Enabled per the process-wide knob at construction time.
  DecodeCache() : enabled_(bbcache_enabled_default()) {}
  /// Explicitly enabled/disabled, ignoring the knob (test injection).
  explicit DecodeCache(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// (Re)bind to a program + config. Returns the number of cached templates
  /// invalidated (0 on first bind or when the key is unchanged — templates
  /// built under an identical key replay as-is).
  u64 bind(const Program& program, const SteeringConfig& steer,
           unsigned helper_width_bits);

  /// Hot-path probe: the cached template for `pc`, or nullptr on a miss
  /// (call fill). No bounds check beyond the valid map — `pc` must index the
  /// bound program, same contract as Program::uops access.
  const UopTemplate* try_get(u32 pc) const {
    return valid_[pc] ? &slots_[pc] : nullptr;
  }

  /// Build, store and return the template for `pc` (the miss path).
  const UopTemplate& fill(u32 pc);

  u64 filled() const { return filled_; }

 private:
  bool enabled_;
  const Program* program_ = nullptr;
  std::size_t program_size_ = 0;
  std::string program_name_;
  SteeringConfig steer_{};
  unsigned helper_width_bits_ = 0;
  bool bound_ = false;

  std::vector<UopTemplate> slots_;
  std::vector<u8> valid_;
  u64 filled_ = 0;  // currently valid templates
};

}  // namespace hcsim
