// hcsim — wattch-style activity-based power/energy model (Section 3.1:
// "we utilize an in-house wattch-like power simulator, modified to take
// into account the helper cluster power, including the 8-bit datapath and
// the clock network as well as the width predictors").
//
// Energy = sum over structures of (per-access energy x activity count)
// plus clock-network energy per cycle per domain. Per-access energies are
// relative units calibrated so the baseline machine's energy breakdown
// matches the classic wattch distribution (clock ~30%, RF/IQ/ALU ~35%,
// caches ~25%, frontend ~10%). Narrow structures scale at least linearly
// with data width (Section 2.1), so helper-cluster accesses cost
// width_ratio x the wide equivalents.
#pragma once

#include "core/machine_config.hpp"
#include "core/sim_result.hpp"

namespace hcsim {

struct EnergyParams {
  // Per-access energies, arbitrary consistent units ("units/access").
  double fetch = 1.2;        // trace cache read per µop
  double rename = 0.8;       // rename/steer per µop
  double rob = 0.6;          // allocate+commit per µop
  double iq_wide = 1.6;      // wide scheduler wakeup/select per issue
  double rf_wide = 1.0;      // 32-bit register file access
  double alu_wide = 1.8;     // 32-bit ALU op
  double fp_unit = 3.6;      // FP op
  double dl0 = 2.4;          // DL0 access
  double ul1 = 12.0;         // UL1 access
  double copy = 1.4;         // copy µop: issue + interconnect + remote write
  double wpred = 0.12;       // width predictor lookup/update
  double clock_wide_per_cycle = 9.0;   // wide-domain clock tree per wide cycle
  /// Helper-domain clock tree per *helper* cycle. The helper datapath is
  /// 8 bits wide, but it runs at 2x frequency with dynamic-logic detectors
  /// (Figure 3) and speed-sized latches/drivers, so the per-cycle cost is a
  /// substantial fraction of the wide tree. This is the parameter that
  /// keeps the helper's ED^2 advantage modest (the paper reports 5.1%)
  /// despite double-digit delay wins: the fast clock burns the margin.
  double clock_helper_per_cycle = 4.5;
  /// Width scaling of the helper backend structures (8/32 by area, plus a
  /// fixed overhead for sense amps, control and the 2x-speed circuit style
  /// that does not shrink with the datapath).
  double helper_width_ratio = 8.0 / 32.0;
  double helper_fixed_overhead = 0.45;
};

struct PowerReport {
  double energy = 0.0;        // total (relative units)
  double delay = 0.0;         // execution time in wide cycles
  double edp = 0.0;           // energy x delay
  double ed2p = 0.0;          // energy x delay^2
  // breakdown
  double frontend = 0.0, wide_backend = 0.0, helper_backend = 0.0;
  double memory = 0.0, clock = 0.0, copies = 0.0, predictors = 0.0;
};

/// Compute the energy/delay report for a finished run.
PowerReport analyze_power(const SimResult& result, const MachineConfig& cfg,
                          const EnergyParams& params = {});

}  // namespace hcsim
