#include "power/power_model.hpp"

namespace hcsim {

PowerReport analyze_power(const SimResult& r, const MachineConfig& cfg,
                          const EnergyParams& p) {
  PowerReport rep;
  const auto cnt = [&](Counter c) { return static_cast<double>(r.counters.get(c)); };
  const double helper_scale = p.helper_width_ratio + p.helper_fixed_overhead;

  // Frontend: every fetched µop flows through fetch/rename/ROB; copies and
  // chunks consume rename bandwidth too.
  const double uops = static_cast<double>(r.uops);
  rep.frontend = uops * (p.fetch + p.rename + p.rob) +
                 (cnt(Counter::kCopyRenameSlots) + cnt(Counter::kChunkRenameSlots)) * p.rename;

  // Wide backend: integer + FP issue, RF and ALU activity.
  const double wide_issues = cnt(Counter::kIssueWide);
  const double fp_issues = cnt(Counter::kIssueFp);
  rep.wide_backend = wide_issues * (p.iq_wide + p.alu_wide + 2.0 * p.rf_wide) +
                     fp_issues * (p.iq_wide + p.fp_unit + 2.0 * p.rf_wide) +
                     cnt(Counter::kRfWriteWide) * p.rf_wide;

  // Helper backend: same structures scaled by datapath width.
  const double helper_issues = cnt(Counter::kIssueHelper);
  rep.helper_backend =
      helper_issues * (p.iq_wide + p.alu_wide + 2.0 * p.rf_wide) * helper_scale +
      cnt(Counter::kRfWriteHelper) * p.rf_wide * helper_scale;

  // Memory hierarchy.
  rep.memory = cnt(Counter::kDl0Accesses) * p.dl0 + cnt(Counter::kUl1Accesses) * p.ul1;

  // Inter-cluster traffic.
  rep.copies = static_cast<double>(r.copies) * p.copy;

  // Predictors (width predictor lookups + branch predictor, folded).
  rep.predictors = cnt(Counter::kWpredLookups) * p.wpred +
                   static_cast<double>(r.branches) * p.wpred;

  // Clock networks: the wide domain always runs; the helper domain adds its
  // fast-clock tree whenever the helper cluster exists.
  const double wide_cycles = r.wide_cycles;
  rep.clock = wide_cycles * p.clock_wide_per_cycle;
  if (cfg.steer.helper_enabled) {
    const double helper_cycles =
        wide_cycles * static_cast<double>(cfg.ticks_per_wide_cycle);
    rep.clock += helper_cycles * p.clock_helper_per_cycle;
  }

  rep.energy = rep.frontend + rep.wide_backend + rep.helper_backend + rep.memory +
               rep.copies + rep.predictors + rep.clock;
  rep.delay = wide_cycles;
  rep.edp = rep.energy * rep.delay;
  rep.ed2p = rep.energy * rep.delay * rep.delay;
  return rep;
}

}  // namespace hcsim
