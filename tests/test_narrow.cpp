// Tests for the narrow-value detectors (Figure 3 equivalents) and the
// carry-confinement predicate (Figure 10).
#include <gtest/gtest.h>

#include "util/narrow.hpp"
#include "util/rng.hpp"

namespace hcsim {
namespace {

TEST(Narrow, LeadingZeroDetector) {
  EXPECT_TRUE(leading_zeros24(0u));
  EXPECT_TRUE(leading_zeros24(1u));
  EXPECT_TRUE(leading_zeros24(0xFFu));
  EXPECT_FALSE(leading_zeros24(0x100u));
  EXPECT_FALSE(leading_zeros24(0xFFFFFFFFu));
}

TEST(Narrow, LeadingOneDetector) {
  EXPECT_TRUE(leading_ones24(0xFFFFFFFFu));   // -1
  EXPECT_TRUE(leading_ones24(0xFFFFFF00u));   // -256
  EXPECT_TRUE(leading_ones24(0xFFFFFF80u));   // -128
  EXPECT_FALSE(leading_ones24(0xFFFFFE00u));  // -512
  EXPECT_FALSE(leading_ones24(0u));
}

TEST(Narrow, Narrow8Boundaries) {
  EXPECT_TRUE(is_narrow8(0u));
  EXPECT_TRUE(is_narrow8(255u));
  EXPECT_FALSE(is_narrow8(256u));
  EXPECT_TRUE(is_narrow8(static_cast<u32>(-1)));
  EXPECT_TRUE(is_narrow8(static_cast<u32>(-256)));
  EXPECT_FALSE(is_narrow8(static_cast<u32>(-257)));
}

TEST(Narrow, GeneralWidthDegeneratesTo32) {
  // Every value is "narrow" at the full machine width.
  EXPECT_TRUE(is_narrow(0xDEADBEEFu, 32));
  EXPECT_TRUE(is_narrow(0xDEADBEEFu, 33));
}

TEST(Narrow, GeneralWidthMatchesNarrow8) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const u32 v = rng.next_u32();
    EXPECT_EQ(is_narrow8(v), is_narrow(v, 8)) << v;
  }
}

// Property: is_narrow is monotone in width — if a value fits in w bits it
// fits in w+1 bits.
class NarrowWidthProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(NarrowWidthProperty, MonotoneInWidth) {
  const unsigned w = GetParam();
  Rng rng(7 * w + 1);
  for (int i = 0; i < 2000; ++i) {
    const unsigned sh = static_cast<unsigned>(i) % 33;  // 33 cases: 32 means "all bits gone"
    const u32 v = sh == 32 ? 0u : rng.next_u32() >> sh;
    if (is_narrow(v, w)) {
      EXPECT_TRUE(is_narrow(v, w + 1)) << v << " w=" << w;
    }
  }
}

TEST_P(NarrowWidthProperty, SignificantBitsConsistent) {
  const unsigned w = GetParam();
  Rng rng(13 * w + 5);
  for (int i = 0; i < 2000; ++i) {
    const unsigned sh = static_cast<unsigned>(i) % 33;  // 33 cases: 32 means "all bits gone"
    const u32 v = sh == 32 ? 0u : rng.next_u32() >> sh;
    // is_narrow(v, w) holds iff significant_bits(v) <= w... except that the
    // detector-style definition treats [-2^w, 2^w) as w-bit, matching the
    // leading-zero/one hardware, so compare against that definition.
    const bool by_bits = significant_bits(v) <= w + 1;
    const bool by_mask = is_narrow(v, w);
    // by_mask admits unsigned values up to 2^w - 1 and signed down to -2^w.
    if (by_bits) {
      EXPECT_TRUE(is_narrow(v, w + 1));
    }
    (void)by_mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, NarrowWidthProperty,
                         ::testing::Values(1u, 4u, 8u, 12u, 16u, 20u, 24u, 31u));

TEST(Narrow, SignificantBits) {
  EXPECT_EQ(significant_bits(0u), 1u);
  EXPECT_EQ(significant_bits(1u), 2u);       // 01
  EXPECT_EQ(significant_bits(127u), 8u);     // 0111_1111
  EXPECT_EQ(significant_bits(128u), 9u);
  EXPECT_EQ(significant_bits(static_cast<u32>(-1)), 1u);
  EXPECT_EQ(significant_bits(static_cast<u32>(-128)), 8u);
  EXPECT_EQ(significant_bits(0x7FFFFFFFu), 32u);
  EXPECT_EQ(significant_bits(0x80000000u), 32u);
}

TEST(Carry, UpperBitsMatch) {
  EXPECT_TRUE(upper_bits_match(0x12345600u, 0x123456FFu, 8));
  EXPECT_FALSE(upper_bits_match(0x12345600u, 0x12345700u, 8));
  EXPECT_TRUE(upper_bits_match(0xDEADBEEFu, 0x12345678u, 32));
}

TEST(Carry, PaperFigure10Example) {
  // Loadbyte R1, (R2+R3): R2 = FFFC4A02, R3 = 0000001C -> FFFC4A1E.
  // The carry stays in the low byte, so the add can run on the 8-bit AGU.
  const u32 r2 = 0xFFFC4A02u;
  const u32 r3 = 0x0000001Cu;
  EXPECT_EQ(r2 + r3, 0xFFFC4A1Eu);
  EXPECT_TRUE(carry_confined(r2, r3, 8));
}

TEST(Carry, PropagationDetected) {
  // 0x...F0 + 0x20 carries out of the low byte.
  EXPECT_FALSE(carry_confined(0x123456F0u, 0x20u, 8));
  EXPECT_TRUE(carry_confined(0x12345600u, 0xF0u, 8));
}

TEST(Carry, ConfinedIffUpperBitsPreserved) {
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const u32 wide = rng.next_u32();
    const u32 narrow = rng.next_u32() & 0xFFu;
    EXPECT_EQ(carry_confined(wide, narrow, 8),
              (wide & 0xFFFFFF00u) == ((wide + narrow) & 0xFFFFFF00u));
  }
}

TEST(Carry, WidthParameterized) {
  // At width 16 a carry out of the low 16 bits must be detected.
  EXPECT_TRUE(carry_confined(0x12340000u, 0xFFFFu, 16));
  EXPECT_FALSE(carry_confined(0x1234FFFFu, 0x1u, 16));
}

}  // namespace
}  // namespace hcsim
