// Tests for the wattch-style power model.
#include <gtest/gtest.h>

#include "power/power_model.hpp"
#include "sim/simulator.hpp"

namespace hcsim {
namespace {

SimResult fake_result() {
  SimResult r;
  r.uops = 1000;
  r.final_tick = 4000;
  r.wide_cycles = 2000;
  r.branches = 100;
  r.copies = 50;
  r.counters["issue_wide"] = 700;
  r.counters["issue_helper"] = 300;
  r.counters["issue_fp"] = 20;
  r.counters["rf_write_wide"] = 600;
  r.counters["rf_write_helper"] = 250;
  r.counters["dl0_accesses"] = 200;
  r.counters["ul1_accesses"] = 20;
  r.counters["wpred_lookups"] = 1000;
  return r;
}

TEST(Power, EnergyPositiveAndDecomposes) {
  const SimResult r = fake_result();
  const PowerReport rep = analyze_power(r, helper_machine(steering_ir()));
  EXPECT_GT(rep.energy, 0.0);
  const double sum = rep.frontend + rep.wide_backend + rep.helper_backend +
                     rep.memory + rep.clock + rep.copies + rep.predictors;
  EXPECT_NEAR(rep.energy, sum, 1e-9);
}

TEST(Power, EdpMath) {
  const SimResult r = fake_result();
  const PowerReport rep = analyze_power(r, monolithic_baseline());
  EXPECT_DOUBLE_EQ(rep.delay, r.wide_cycles);
  EXPECT_DOUBLE_EQ(rep.edp, rep.energy * rep.delay);
  EXPECT_DOUBLE_EQ(rep.ed2p, rep.energy * rep.delay * rep.delay);
}

TEST(Power, HelperClusterAddsClockEnergy) {
  const SimResult r = fake_result();
  const PowerReport base = analyze_power(r, monolithic_baseline());
  const PowerReport helper = analyze_power(r, helper_machine(steering_888()));
  EXPECT_GT(helper.clock, base.clock);
}

TEST(Power, HelperAccessesCheaperThanWide) {
  // Same issue count in the helper must cost less than in the wide backend
  // (width-scaled structures, Section 2.1).
  SimResult wide_heavy = fake_result();
  wide_heavy.counters["issue_wide"] = 1000;
  wide_heavy.counters["issue_helper"] = 0;
  SimResult helper_heavy = fake_result();
  helper_heavy.counters["issue_wide"] = 0;
  helper_heavy.counters["issue_helper"] = 1000;
  const MachineConfig cfg = helper_machine(steering_888());
  const PowerReport w = analyze_power(wide_heavy, cfg);
  const PowerReport h = analyze_power(helper_heavy, cfg);
  EXPECT_GT(w.wide_backend, h.helper_backend);
}

TEST(Power, MonotonicInActivity) {
  SimResult lo = fake_result();
  SimResult hi = fake_result();
  hi.counters["issue_wide"] += 1000;
  hi.copies += 100;
  const MachineConfig cfg = monolithic_baseline();
  EXPECT_GT(analyze_power(hi, cfg).energy, analyze_power(lo, cfg).energy);
}

TEST(Power, CopiesCostEnergy) {
  SimResult with = fake_result();
  SimResult without = fake_result();
  without.copies = 0;
  const MachineConfig cfg = helper_machine(steering_888());
  EXPECT_GT(analyze_power(with, cfg).copies, analyze_power(without, cfg).copies);
}

TEST(Power, EndToEndEd2Comparison) {
  // Section 3.7: the helper cluster in its most aggressive configuration is
  // ED^2-favourable versus the baseline (paper: 5.1% better). Check the
  // direction on a real run.
  const AppRun run = run_app(spec_profile("gcc"), steering_ir(), 30000);
  const PowerReport pb = analyze_power(run.baseline, monolithic_baseline());
  const PowerReport ph = analyze_power(run.helper, helper_machine(steering_ir()));
  EXPECT_LT(ph.ed2p, pb.ed2p);
  // Energy itself goes up (extra cluster, fast clock tree, copies).
  EXPECT_GT(ph.energy, pb.energy);
}

}  // namespace
}  // namespace hcsim
