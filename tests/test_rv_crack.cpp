// Tests for the µop cracking layer (src/rv/crack.*) and the RV workload
// integration: static crack shapes, value-accurate records, flags/branch
// semantics, bundled kernels, trace determinism (including across sweep
// thread counts), and the paper's qualitative scheme ordering on the suite.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "rv/assembler.hpp"
#include "rv/crack.hpp"
#include "rv/kernels.hpp"
#include "sim/simulator.hpp"

namespace hcsim::rv {
namespace {

RvProgram asm_ok(const std::string& src) {
  AsmResult r = assemble("t", src);
  EXPECT_TRUE(r.ok()) << r.error;
  return std::move(r.program);
}

CrackedProgram crack_of(const std::string& src) { return crack_program(asm_ok(src)); }

Trace trace_of(const std::string& src, u64 budget = 1u << 20) {
  RvTraceInfo info;
  const Trace t = trace_from_program(asm_ok(src), budget, &info);
  EXPECT_TRUE(info.error.empty()) << info.error;
  return t;
}

// --- static crack shapes -----------------------------------------------------

TEST(RvCrack, CompareAndBranchCracksToCmpPlusJcc) {
  const CrackedProgram c = crack_of(
      "loop:\n"
      "  addi a0, a0, 1\n"
      "  blt a0, a1, loop\n"
      "  ret\n");
  // blt -> kCmp + kBranchCond.
  const u32 first = c.first_uop[1];
  ASSERT_EQ(c.first_uop[2] - first, 2u);
  const StaticUop& cmp = c.program.uops[first];
  const StaticUop& br = c.program.uops[first + 1];
  EXPECT_EQ(cmp.opcode, Opcode::kCmp);
  EXPECT_EQ(cmp.srcs[0], static_cast<RegId>(kRegX0 + 10));
  EXPECT_EQ(cmp.srcs[1], static_cast<RegId>(kRegX0 + 11));
  EXPECT_TRUE(cmp.writes_flags());
  EXPECT_EQ(br.opcode, Opcode::kBranchCond);
  EXPECT_EQ(br.srcs[0], kRegFlags);
  EXPECT_EQ(br.imm, kCondLt);
  // The branch targets the first µop of the loop head.
  EXPECT_EQ(c.program.target_of(first + 1), c.first_uop[0]);
}

TEST(RvCrack, SltCracksToSubPlusShift) {
  const CrackedProgram c = crack_of("slt a0, a1, a2\nret\n");
  ASSERT_EQ(c.first_uop[1] - c.first_uop[0], 2u);
  const StaticUop& sub = c.program.uops[0];
  const StaticUop& shr = c.program.uops[1];
  EXPECT_EQ(sub.opcode, Opcode::kSub);
  EXPECT_EQ(sub.dst, kRegT0);  // µop temporary, not an architectural RV reg
  EXPECT_EQ(shr.opcode, Opcode::kShr);
  EXPECT_EQ(shr.srcs[0], kRegT0);
  EXPECT_EQ(shr.imm, 31u);
}

TEST(RvCrack, CallCracksToLinkPlusJump) {
  const CrackedProgram c = crack_of(
      "main:\n"
      "  call f\n"
      "  ret\n"
      "f:\n"
      "  ret\n");
  // call == jal ra,f -> kMovImm ra, retaddr ; kJump.
  ASSERT_EQ(c.first_uop[1] - c.first_uop[0], 2u);
  const StaticUop& link = c.program.uops[0];
  const StaticUop& jmp = c.program.uops[1];
  EXPECT_EQ(link.opcode, Opcode::kMovImm);
  EXPECT_EQ(link.dst, static_cast<RegId>(kRegX0 + 1));
  EXPECT_EQ(link.imm, 4u);  // return address = pc + 4
  EXPECT_EQ(jmp.opcode, Opcode::kJump);
  EXPECT_EQ(c.program.target_of(1), c.first_uop[2]);
  // ret == jalr x0,0(ra) -> a single register-indirect kJump reading ra.
  ASSERT_EQ(c.first_uop[2] - c.first_uop[1], 1u);
  const StaticUop& ret = c.program.uops[c.first_uop[1]];
  EXPECT_EQ(ret.opcode, Opcode::kJump);
  EXPECT_EQ(ret.srcs[0], static_cast<RegId>(kRegX0 + 1));
}

TEST(RvCrack, LoadsAndStoresMapToAguForms) {
  const CrackedProgram c = crack_of(
      "lbu a0, 3(a1)\n"
      "sb a0, 7(a2)\n"
      "lw a3, 8(a4)\n"
      "sw a3, 12(a5)\n"
      "ret\n");
  EXPECT_EQ(c.program.uops[0].opcode, Opcode::kLoadByte);
  EXPECT_EQ(c.program.uops[0].imm, 3u);
  EXPECT_EQ(c.program.uops[1].opcode, Opcode::kStoreByte);
  EXPECT_EQ(c.program.uops[1].srcs[2], static_cast<RegId>(kRegX0 + 10));  // data
  EXPECT_EQ(c.program.uops[2].opcode, Opcode::kLoad);
  EXPECT_EQ(c.program.uops[3].opcode, Opcode::kStore);
}

TEST(RvCrack, WritesToX0BecomeNops) {
  const CrackedProgram c = crack_of("add x0, a0, a1\nlui x0, 1\nret\n");
  EXPECT_EQ(c.program.uops[0].opcode, Opcode::kNop);
  EXPECT_EQ(c.program.uops[1].opcode, Opcode::kNop);
}

// --- dynamic records: value accuracy ----------------------------------------

TEST(RvCrack, RecordsCarryArchitecturalValues) {
  const Trace t = trace_of(
      "li a0, 200\n"
      "li a1, 100\n"
      "add a2, a0, a1\n"
      "blt a0, a1, skip\n"
      "add a3, a2, a2\n"
      "skip:\n"
      "  ret\n");
  // record 2: add a2 = 300 (flags follow the ALU result).
  const TraceRecord& add = t.records[2];
  EXPECT_EQ(t.uop_of(add).opcode, Opcode::kAdd);
  EXPECT_EQ(add.src_vals[0], 200u);
  EXPECT_EQ(add.src_vals[1], 100u);
  EXPECT_EQ(add.result, 300u);
  EXPECT_EQ(add.flags_val, 300u);
  // records 3-4: cmp writes flags = a0-a1; the not-taken branch reads them.
  const TraceRecord& cmp = t.records[3];
  const TraceRecord& br = t.records[4];
  EXPECT_EQ(t.uop_of(cmp).opcode, Opcode::kCmp);
  EXPECT_EQ(cmp.flags_val, 100u);  // 200 - 100
  EXPECT_EQ(br.src_vals[0], cmp.flags_val);
  EXPECT_FALSE(br.taken);
  // The recorded branch outcome agrees with the flags model for signed
  // compares: eval_cond(cond, flags) == taken.
  EXPECT_EQ(eval_cond(t.uop_of(br).imm, br.src_vals[0]), br.taken);
  // record 5: the fallthrough add executed.
  EXPECT_EQ(t.records[5].result, 600u);
}

TEST(RvCrack, SltRecordsExactResultEvenNearOverflow) {
  // INT_MIN < 1 signed: the sub+shr idiom would misreport under overflow,
  // but the recorded value must be the architectural result.
  const Trace t = trace_of(
      "li a0, 0x80000000\n"
      "li a1, 1\n"
      "slt a2, a0, a1\n"
      "ret\n");
  // li a0 cracks to lui+addi (2 µops), li a1 to addi (1), slt to sub+shr (2).
  const TraceRecord& shr = t.records[4];
  EXPECT_EQ(t.uop_of(shr).opcode, Opcode::kShr);
  EXPECT_EQ(shr.result, 1u);  // INT_MIN < 1 is true
}

TEST(RvCrack, MemoryRecordsCarryAddressesAndData) {
  const Trace t = trace_of(
      "la a0, buf\n"
      "li a1, 0xAB\n"
      "sb a1, 2(a0)\n"
      "lbu a2, 2(a0)\n"
      "ret\n"
      ".data\nbuf: .zero 8\n");
  bool saw_store = false, saw_load = false;
  for (const TraceRecord& r : t.records) {
    const StaticUop& u = t.uop_of(r);
    if (u.opcode == Opcode::kStoreByte) {
      saw_store = true;
      EXPECT_EQ(r.src_vals[2], 0xABu);
      EXPECT_EQ(r.mem_addr % 8u, 2u);
    }
    if (u.opcode == Opcode::kLoadByte) {
      saw_load = true;
      EXPECT_EQ(r.result, 0xABu);
    }
  }
  EXPECT_TRUE(saw_store);
  EXPECT_TRUE(saw_load);
}

TEST(RvCrack, AllRecordPcsAndTargetsInRange) {
  const Trace t = kernel_trace("fib", 1u << 20);
  for (const TraceRecord& r : t.records) ASSERT_LT(r.pc, t.program.uops.size());
  for (u32 pc = 0; pc < t.program.uops.size(); ++pc)
    ASSERT_LT(t.program.target_of(pc),
              static_cast<u32>(t.program.uops.size()) + 1u);
}

TEST(RvCrack, BudgetBoundsTheTrace) {
  const Trace t = kernel_trace("crc32", 5000);
  EXPECT_LE(t.size(), 5000u);
  EXPECT_GT(t.size(), 4000u);  // cut at an instruction boundary near the cap
}

// --- bundled kernels ---------------------------------------------------------

TEST(RvKernels, AllBundledKernelsAssembleExecuteAndComplete) {
  const auto& kernels = bundled_kernels();
  ASSERT_GE(kernels.size(), 8u);
  for (const RvKernel& k : kernels) {
    AsmResult as = assemble(k.name, k.source);
    ASSERT_TRUE(as.ok()) << k.name << ": " << as.error;
    RvTraceInfo info;
    const Trace t = trace_from_program(as.program, 1u << 20, &info);
    EXPECT_TRUE(info.error.empty()) << k.name << ": " << info.error;
    EXPECT_TRUE(info.completed) << k.name << " exceeded the 1M-uop budget";
    EXPECT_GT(t.size(), 1000u) << k.name << " is too small to be interesting";
    // Every kernel must also fit the stock default budget (300k µops), so
    // the rv sweep runs each to completion out of the box.
    EXPECT_LE(t.size(), 300000u) << k.name;
    // The trace must actually drive the pipeline.
    const SimResult r = simulate(monolithic_baseline(), t);
    EXPECT_EQ(r.uops, t.size()) << k.name;
  }
}

TEST(RvKernels, WorkloadProfileRoutesThroughRvFrontend) {
  const WorkloadProfile p = rv_workload_profile("strlen");
  EXPECT_EQ(p.name, "strlen");
  EXPECT_EQ(p.rv_kernel, "strlen");
  const Trace& t = cached_trace(p, 20000);
  EXPECT_EQ(t.program.name, "strlen");
  EXPECT_LE(t.size(), 20000u);
  // Same cache entry on re-request.
  EXPECT_EQ(&cached_trace(p, 20000), &t);
}

TEST(RvKernels, TracesAreBitIdenticalAcrossRuns) {
  const Trace a = kernel_trace("bsort", 50000);
  const Trace b = kernel_trace("bsort", 50000);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.program.uops.size(), b.program.uops.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const TraceRecord& ra = a.records[i];
    const TraceRecord& rb = b.records[i];
    ASSERT_EQ(ra.pc, rb.pc) << i;
    ASSERT_EQ(ra.src_vals, rb.src_vals) << i;
    ASSERT_EQ(ra.result, rb.result) << i;
    ASSERT_EQ(ra.flags_val, rb.flags_val) << i;
    ASSERT_EQ(ra.mem_addr, rb.mem_addr) << i;
    ASSERT_EQ(ra.taken, rb.taken) << i;
  }
  for (std::size_t i = 0; i < a.program.uops.size(); ++i) {
    const StaticUop& ua = a.program.uops[i];
    const StaticUop& ub = b.program.uops[i];
    ASSERT_EQ(ua.opcode, ub.opcode) << i;
    ASSERT_EQ(ua.dst, ub.dst) << i;
    ASSERT_EQ(ua.srcs, ub.srcs) << i;
    ASSERT_EQ(ua.has_imm, ub.has_imm) << i;
    ASSERT_EQ(ua.imm, ub.imm) << i;
    ASSERT_EQ(a.program.branch_targets[i], b.program.branch_targets[i]) << i;
  }
  // The serialized form (what `hcrv trace` ships) must be byte-identical:
  // v3 writes field by field, so no struct padding can leak in.
  ASSERT_TRUE(save_trace(a, "rv_bitident_a.trace"));
  ASSERT_TRUE(save_trace(b, "rv_bitident_b.trace"));
  std::ifstream fa("rv_bitident_a.trace", std::ios::binary);
  std::ifstream fb("rv_bitident_b.trace", std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                            std::istreambuf_iterator<char>());
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove("rv_bitident_a.trace");
  std::remove("rv_bitident_b.trace");
}

// --- the rv sweep ------------------------------------------------------------

TEST(RvSweep, RegisteredAndCoversSuiteTimesLadder) {
  const auto spec = exp::find_sweep("rv");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->workloads.size(), bundled_kernels().size());
  EXPECT_EQ(spec->variants.size(), 7u);  // the cumulative ladder
  for (const WorkloadProfile& w : spec->workloads)
    EXPECT_FALSE(w.rv_kernel.empty()) << w.name;
}

TEST(RvSweep, SerialAndParallelResultsAreByteIdentical) {
  auto spec = *exp::find_sweep("rv");
  // Trim for test runtime: 3 kernels x 2 variants at a small budget.
  spec.workloads = {rv_workload_profile("strlen"), rv_workload_profile("fib"),
                    rv_workload_profile("crc32")};
  spec.variants = {exp::variant_from_steering(steering_888()),
                   exp::variant_from_steering(steering_888_br_lr_cr())};
  spec.trace_lens = {8000};
  exp::RunOptions serial;
  serial.threads = 1;
  const exp::SweepResult a = exp::run_sweep(spec, serial);
  exp::RunOptions parallel;
  parallel.threads = 4;
  const exp::SweepResult b = exp::run_sweep(spec, parallel);
  EXPECT_EQ(exp::to_csv(a), exp::to_csv(b));
}

TEST(RvSweep, CumulativeSchemesBeatPlain888OnTheSuite) {
  // The paper's qualitative ordering on real programs: every cumulative
  // scheme's suite geomean speedup is at least plain 8-8-8's.
  auto spec = *exp::find_sweep("rv");
  spec.trace_lens = {60000};
  exp::RunOptions opts;
  opts.threads = 4;
  const exp::SweepResult r = exp::run_sweep(spec, opts);
  const auto summaries = exp::summarize(r);
  ASSERT_EQ(summaries.size(), 7u);
  ASSERT_EQ(summaries.front().config, "8_8_8");
  const double base = summaries.front().geomean_speedup;
  EXPECT_GT(base, 1.0);  // steering pays off at all
  for (std::size_t i = 1; i < summaries.size(); ++i)
    EXPECT_GE(summaries[i].geomean_speedup, base) << summaries[i].config;
}

}  // namespace
}  // namespace hcsim::rv
