// Tests for the RV32I functional executor (src/rv/exec.*): arithmetic
// semantics (including overflow wrap and signed/unsigned compares), memory
// access width and extension, control flow, halting and trapping.
#include <gtest/gtest.h>

#include "rv/assembler.hpp"
#include "rv/exec.hpp"

namespace hcsim::rv {
namespace {

RvExecResult run(const std::string& src, const ExecLimits& limits = {}) {
  AsmResult r = assemble("t", src);
  EXPECT_TRUE(r.ok()) << r.error;
  return execute(r.program, limits);
}

// --- arithmetic --------------------------------------------------------------

TEST(RvExec, OverflowWrapsModulo32) {
  const RvExecResult r = run(
      "li a0, 0x7FFFFFFF\n"
      "addi a1, a0, 1\n"      // INT_MAX + 1 wraps to INT_MIN
      "li a2, -1\n"
      "addi a3, a2, 2\n"      // 0xFFFFFFFF + 2 wraps to 1
      "li a4, 0\n"
      "addi a5, a4, -1\n"     // 0 - 1 wraps to 0xFFFFFFFF
      "slli a6, a0, 1\n"      // shifts discard carried-out bits
      "ret\n");
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.regs[11], 0x80000000u);
  EXPECT_EQ(r.regs[13], 1u);
  EXPECT_EQ(r.regs[15], 0xFFFFFFFFu);
  EXPECT_EQ(r.regs[16], 0xFFFFFFFEu);
}

TEST(RvExec, SignedVsUnsignedCompares) {
  const RvExecResult r = run(
      "li a0, -1\n"
      "li a1, 1\n"
      "slt a2, a0, a1\n"    // -1 < 1 signed -> 1
      "sltu a3, a0, a1\n"   // 0xFFFFFFFF < 1 unsigned -> 0
      "slti a4, a1, -5\n"   // 1 < -5 -> 0
      "sltiu a5, a1, -5\n"  // 1 < 0xFFFFFFFB unsigned -> 1
      "ret\n");
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.regs[12], 1u);
  EXPECT_EQ(r.regs[13], 0u);
  EXPECT_EQ(r.regs[14], 0u);
  EXPECT_EQ(r.regs[15], 1u);
}

TEST(RvExec, ShiftSemantics) {
  const RvExecResult r = run(
      "li a0, 0x80000000\n"
      "srli a1, a0, 4\n"   // logical: zero fill
      "srai a2, a0, 4\n"   // arithmetic: sign fill
      "li a3, 33\n"
      "sll a4, a0, a3\n"   // shift amount is mod 32 -> shift by 1
      "ret\n");
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.regs[11], 0x08000000u);
  EXPECT_EQ(r.regs[12], 0xF8000000u);
  EXPECT_EQ(r.regs[14], 0u);  // 0x80000000 << 1
}

TEST(RvExec, X0IsAlwaysZero) {
  const RvExecResult r = run(
      "li a0, 7\n"
      "add x0, a0, a0\n"  // write to x0 is discarded
      "add a1, x0, x0\n"
      "ret\n");
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.regs[0], 0u);
  EXPECT_EQ(r.regs[11], 0u);
}

// --- memory ------------------------------------------------------------------

TEST(RvExec, LoadStoreWidthsAndExtension) {
  const RvExecResult r = run(
      "la a0, buf\n"
      "li a1, 0x818283F4\n"
      "sw a1, 0(a0)\n"
      "lb a2, 3(a0)\n"    // 0x81 sign-extends
      "lbu a3, 3(a0)\n"   // 0x81 zero-extends
      "lh a4, 0(a0)\n"    // 0x83F4 sign-extends
      "lhu a5, 0(a0)\n"
      "sb x0, 0(a0)\n"    // byte store leaves the rest of the word
      "lw a6, 0(a0)\n"
      "ret\n"
      ".data\n"
      "buf: .zero 16\n");
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.regs[12], 0xFFFFFF81u);
  EXPECT_EQ(r.regs[13], 0x81u);
  EXPECT_EQ(r.regs[14], 0xFFFF83F4u);
  EXPECT_EQ(r.regs[15], 0x83F4u);
  EXPECT_EQ(r.regs[16], 0x81828300u);
}

TEST(RvExec, StackWorks) {
  const RvExecResult r = run(
      "li a0, 123\n"
      "addi sp, sp, -8\n"
      "sw a0, 4(sp)\n"
      "li a0, 0\n"
      "lw a1, 4(sp)\n"
      "addi sp, sp, 8\n"
      "ret\n");
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.regs[11], 123u);
}

TEST(RvExec, TrapsOnBadAccess) {
  // Out of bounds.
  RvExecResult r = run("li a0, 0x7FFFFFF0\nlw a1, 0(a0)\nret\n");
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("out of bounds"), std::string::npos);
  // Unaligned word access.
  r = run("la a0, b\nlw a1, 1(a0)\nret\n.data\nb: .zero 8\n");
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("unaligned"), std::string::npos);
  // Store into text.
  r = run("sw a0, 0(x0)\nret\n");
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("store into text"), std::string::npos);
}

// --- control flow ------------------------------------------------------------

TEST(RvExec, BranchesAndLoops) {
  const RvExecResult r = run(
      "li a0, 0\n"
      "li a1, 10\n"
      "loop:\n"
      "  add a0, a0, a1\n"
      "  addi a1, a1, -1\n"
      "  bnez a1, loop\n"
      "ret\n");
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.regs[10], 55u);  // 10+9+...+1
}

TEST(RvExec, CallAndReturn) {
  const RvExecResult r = run(
      "main:\n"
      "  li a0, 5\n"
      "  call double_it\n"
      "  call double_it\n"
      "  ecall\n"            // call clobbered ra: halt explicitly
      "double_it:\n"
      "  add a0, a0, a0\n"
      "  ret\n");
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.regs[10], 20u);
}

TEST(RvExec, EcallHalts) {
  const RvExecResult r = run("li a0, 9\necall\nli a0, 1\nret\n");
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.regs[10], 9u);  // the instruction after ecall never runs
}

TEST(RvExec, BudgetExhaustionStopsCleanly) {
  ExecLimits lim;
  lim.max_steps = 100;
  const RvExecResult r = run("spin: j spin\n", lim);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.error.empty());  // not a trap: just out of budget
  EXPECT_EQ(r.steps, 100u);
}

TEST(RvExec, RecursiveFibonacci) {
  // fib(17) == 1597 through a real call stack (bundled kernel logic).
  const RvExecResult r = run(
      "main:\n"
      "  li a0, 17\n"
      "  call fib\n"
      "  ecall\n"            // call clobbered ra: halt explicitly
      "fib:\n"
      "  li t0, 2\n"
      "  blt a0, t0, base\n"
      "  addi sp, sp, -16\n"
      "  sw ra, 12(sp)\n"
      "  sw s0, 8(sp)\n"
      "  mv s0, a0\n"
      "  addi a0, a0, -1\n"
      "  call fib\n"
      "  sw a0, 4(sp)\n"
      "  addi a0, s0, -2\n"
      "  call fib\n"
      "  lw t1, 4(sp)\n"
      "  add a0, a0, t1\n"
      "  lw s0, 8(sp)\n"
      "  lw ra, 12(sp)\n"
      "  addi sp, sp, 16\n"
      "  ret\n"
      "base:\n"
      "  ret\n");
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.regs[10], 1597u);
}

TEST(RvExec, DeterministicAcrossRuns) {
  const std::string src =
      "li a0, 0\nli a1, 200\nloop:\nadd a0, a0, a1\naddi a1, a1, -3\n"
      "bgtz a1, loop\nret\n";
  const RvExecResult a = run(src);
  const RvExecResult b = run(src);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.regs, b.regs);
  EXPECT_EQ(a.steps, b.steps);
}

}  // namespace
}  // namespace hcsim::rv
