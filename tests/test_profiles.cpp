// Tests for the workload profile catalog (SPEC Int 2000 + Table 2).
#include <gtest/gtest.h>

#include <set>

#include "wload/profile.hpp"

namespace hcsim {
namespace {

TEST(Profiles, TwelveSpecApps) {
  const auto& profiles = spec_int_2000_profiles();
  ASSERT_EQ(profiles.size(), 12u);
  std::set<std::string> names;
  std::set<u64> seeds;
  for (const auto& p : profiles) {
    names.insert(p.name);
    seeds.insert(p.seed);
  }
  EXPECT_EQ(names.size(), 12u);
  EXPECT_EQ(seeds.size(), 12u);  // distinct seeds -> distinct programs
  for (const char* n : {"bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf",
                        "parser", "perlbmk", "twolf", "vortex", "vpr"})
    EXPECT_TRUE(names.count(n)) << n;
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(spec_profile("gcc").name, "gcc");
  EXPECT_EQ(spec_profile("mcf").name, "mcf");
}

TEST(ProfilesDeath, UnknownNameAborts) {
  EXPECT_DEATH({ (void)spec_profile("doom"); }, "unknown SPEC profile");
}

TEST(Profiles, Table2Categories) {
  const auto& cats = workload_categories();
  ASSERT_EQ(cats.size(), 7u);
  // Table 2 of the paper: name -> #traces.
  const std::vector<std::pair<std::string, unsigned>> expected = {
      {"enc", 62}, {"sfp", 41}, {"kernels", 52}, {"mm", 85},
      {"office", 75}, {"prod", 45}, {"ws", 49}};
  unsigned total = 0;
  for (std::size_t i = 0; i < cats.size(); ++i) {
    EXPECT_EQ(cats[i].name, expected[i].first);
    EXPECT_EQ(cats[i].num_traces, expected[i].second);
    EXPECT_FALSE(cats[i].description.empty());
    total += cats[i].num_traces;
  }
  // The paper's headline says 412 apps while Table 2's rows sum to 409; we
  // reproduce Table 2 as printed.
  EXPECT_EQ(total, 409u);
}

TEST(Profiles, CategoryAppsAreDeterministic) {
  const auto& cat = workload_categories()[0];
  const WorkloadProfile a = category_app_profile(cat, 5);
  const WorkloadProfile b = category_app_profile(cat, 5);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.num_loops, b.num_loops);
  EXPECT_DOUBLE_EQ(a.w_narrow_chain, b.w_narrow_chain);
}

TEST(Profiles, CategoryAppsDiffer) {
  const auto& cat = workload_categories()[0];
  const WorkloadProfile a = category_app_profile(cat, 1);
  const WorkloadProfile b = category_app_profile(cat, 2);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_NE(a.name, b.name);
}

TEST(Profiles, CategoryAppsKeepFamilyCharacter) {
  // Office apps must stay wide/branch-dominated; kernels narrow/regular.
  const auto& cats = workload_categories();
  const WorkloadCategory* office = nullptr;
  const WorkloadCategory* kernels = nullptr;
  for (const auto& c : cats) {
    if (c.name == "office") office = &c;
    if (c.name == "kernels") kernels = &c;
  }
  ASSERT_NE(office, nullptr);
  ASSERT_NE(kernels, nullptr);
  for (unsigned i = 0; i < 10; ++i) {
    const WorkloadProfile o = category_app_profile(*office, i);
    const WorkloadProfile k = category_app_profile(*kernels, i);
    EXPECT_GT(o.w_wide_chain / o.w_narrow_chain, 0.8) << i;
    EXPECT_LT(k.w_branchy_chain, 1.0) << i;
  }
}

TEST(Profiles, JitterStaysInSaneBounds) {
  for (const auto& cat : workload_categories()) {
    for (unsigned i = 0; i < cat.num_traces; i += 7) {
      const WorkloadProfile p = category_app_profile(cat, i);
      EXPECT_GT(p.w_narrow_chain, 0.0);
      EXPECT_GE(p.p_cross_width_use, 0.02);
      EXPECT_LE(p.p_cross_width_use, 0.8);
      EXPECT_GE(p.value_stability, 0.75);
      EXPECT_LE(p.value_stability, 0.99);
      EXPECT_GE(p.num_loops, 8u);
      EXPECT_LE(p.num_loops, 24u);
    }
  }
}

TEST(ProfilesDeath, CategoryIndexOutOfRange) {
  const auto& cat = workload_categories()[0];
  EXPECT_DEATH({ (void)category_app_profile(cat, cat.num_traces); },
               "out of range");
}

TEST(Profiles, SpecProfilesEncodePaperCharacters) {
  // bzip2 has the highest cross-width use (copy pressure, Figure 6/7
  // discussion); gcc the lowest; mcf is the memory-bound pointer chaser.
  const auto& v = spec_int_2000_profiles();
  double max_cross = 0, min_cross = 1;
  std::string max_name, min_name;
  for (const auto& p : v) {
    if (p.p_cross_width_use > max_cross) { max_cross = p.p_cross_width_use; max_name = p.name; }
    if (p.p_cross_width_use < min_cross) { min_cross = p.p_cross_width_use; min_name = p.name; }
  }
  EXPECT_EQ(max_name, "bzip2");
  EXPECT_EQ(min_name, "gcc");
  EXPECT_GT(spec_profile("mcf").p_pointer_chase, 0.0);
  EXPECT_GT(spec_profile("mcf").word_footprint_log2, 24u);
}

}  // namespace
}  // namespace hcsim
