// Tests for the width predictor (Section 3.2 / Figure 4), the CR carry bit
// (Section 3.5) and the CP copy bit (Section 3.6).
#include <gtest/gtest.h>

#include "predict/width_predictor.hpp"

namespace hcsim {
namespace {

TEST(WidthPredictor, InitializedWideAndUnconfident) {
  WidthPredictor p;
  const auto pred = p.predict_result(0x42);
  EXPECT_FALSE(pred.narrow);   // safe default: wide
  EXPECT_FALSE(pred.confident);
}

TEST(WidthPredictor, LearnsLastWidth) {
  WidthPredictor p;
  p.train_result(7, true);
  EXPECT_TRUE(p.predict_result(7).narrow);
  p.train_result(7, false);
  EXPECT_FALSE(p.predict_result(7).narrow);
}

TEST(WidthPredictor, ConfidenceRequiresConsecutiveAgreement) {
  WidthPredictor p;  // threshold 3
  p.train_result(7, true);          // bit flips to narrow, conf 0
  EXPECT_FALSE(p.predict_result(7).confident);
  p.train_result(7, true);          // conf 1
  p.train_result(7, true);          // conf 2
  EXPECT_FALSE(p.predict_result(7).confident);
  p.train_result(7, true);          // conf 3
  EXPECT_TRUE(p.predict_result(7).confident);
}

TEST(WidthPredictor, MispredictionResetsConfidence) {
  WidthPredictor p;
  for (int i = 0; i < 5; ++i) p.train_result(7, true);
  EXPECT_TRUE(p.predict_result(7).confident);
  p.train_result(7, false);  // flip
  EXPECT_FALSE(p.predict_result(7).confident);
  EXPECT_FALSE(p.predict_result(7).narrow);
}

TEST(WidthPredictor, ConfidenceDisabledAlwaysConfident) {
  WidthPredictorConfig cfg;
  cfg.use_confidence = false;
  WidthPredictor p(cfg);
  EXPECT_TRUE(p.predict_result(7).confident);
}

TEST(WidthPredictor, TaglessAliasing) {
  WidthPredictorConfig cfg;
  cfg.entries = 16;
  WidthPredictor p(cfg);
  p.train_result(3, true);
  // pc 19 aliases to the same entry (19 & 15 == 3): tagless table.
  EXPECT_TRUE(p.predict_result(19).narrow);
}

TEST(WidthPredictor, CarryBitIndependentOfWidthBit) {
  WidthPredictor p;
  p.train_result(9, false);
  p.train_carry(9, true);
  EXPECT_FALSE(p.predict_result(9).narrow);
  EXPECT_TRUE(p.predict_carry(9).narrow);  // "narrow" = confined here
}

TEST(WidthPredictor, CarryConfidence) {
  WidthPredictor p;
  for (int i = 0; i < 4; ++i) p.train_carry(5, true);
  EXPECT_TRUE(p.predict_carry(5).confident);
  p.train_carry(5, false);
  EXPECT_FALSE(p.predict_carry(5).confident);
}

TEST(WidthPredictor, CopyBitLastValue) {
  WidthPredictor p;
  EXPECT_FALSE(p.predict_copy(4));
  p.train_copy(4, true);
  EXPECT_TRUE(p.predict_copy(4));
  p.train_copy(4, false);
  EXPECT_FALSE(p.predict_copy(4));
}

TEST(WidthPredictor, AccuracyRatios) {
  WidthPredictor p;
  p.train_result(1, true);   // predicted wide (init), actual narrow: miss
  p.train_result(1, true);   // predicted narrow, actual narrow: hit
  p.train_result(1, true);   // hit
  EXPECT_EQ(p.result_accuracy().den, 3u);
  EXPECT_EQ(p.result_accuracy().num, 2u);
}

TEST(WidthPredictor, StablePatternReachesHighAccuracy) {
  // A 95%-stable width stream should be predicted with >= 90% accuracy —
  // the regime behind the paper's 93.5% average (Figure 5).
  WidthPredictor p;
  unsigned seed = 12345;
  for (int i = 0; i < 20000; ++i) {
    seed = seed * 1664525 + 1013904223;
    const bool narrow = (seed >> 16) % 100 < 95;
    p.train_result(seed % 256, narrow);
  }
  EXPECT_GT(p.result_accuracy().value(), 0.88);
}

TEST(WidthPredictorDeath, RejectsNonPowerOfTwo) {
  WidthPredictorConfig cfg;
  cfg.entries = 100;
  EXPECT_DEATH({ WidthPredictor p(cfg); }, "power of two");
}

class PredictorTableSizes : public ::testing::TestWithParam<u32> {};

TEST_P(PredictorTableSizes, LargerTablesDoNotHurtStableStreams) {
  WidthPredictorConfig cfg;
  cfg.entries = GetParam();
  WidthPredictor p(cfg);
  for (u32 pc = 0; pc < 1000; ++pc)
    for (int i = 0; i < 4; ++i) p.train_result(pc, pc % 2 == 0);
  // After warmup every pc is predicted per its own (aliased) history.
  EXPECT_GT(p.result_accuracy().value(), 0.45);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PredictorTableSizes,
                         ::testing::Values(16u, 64u, 256u, 1024u, 4096u));

}  // namespace
}  // namespace hcsim
