// Tests for the bench table renderer.
#include <gtest/gtest.h>

#include "util/table.hpp"

namespace hcsim {
namespace {

TEST(TextTable, RenderAligned) {
  TextTable t({"app", "value"});
  t.add_row({"gcc", "1.5"});
  t.add_row({"bzip2", "10.25"});
  const std::string out = t.render();
  EXPECT_NE(out.find("app"), std::string::npos);
  EXPECT_NE(out.find("bzip2"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW({ const auto s = t.render(); (void)s; });
}

TEST(TextTable, Csv) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
  EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
}

TEST(AsciiBar, Scaling) {
  EXPECT_EQ(ascii_bar(10, 10, 10).size(), 10u);
  EXPECT_EQ(ascii_bar(5, 10, 10).size(), 5u);
  EXPECT_EQ(ascii_bar(0, 10, 10).size(), 0u);
  // Clamped, never exceeds width.
  EXPECT_EQ(ascii_bar(100, 10, 10).size(), 10u);
  // Degenerate max treated as 1.
  EXPECT_EQ(ascii_bar(1, 0, 10).size(), 10u);
}

}  // namespace
}  // namespace hcsim
