// Tests for the gshare branch predictor.
#include <gtest/gtest.h>

#include "predict/branch_predictor.hpp"

namespace hcsim {
namespace {

TEST(BranchPredictor, LearnsAlwaysTaken) {
  // gshare hashes the pc with the global history, so train long enough for
  // the history register to reach its all-taken steady state.
  BranchPredictor p;
  for (int i = 0; i < 50; ++i) p.update(0x10, true);
  EXPECT_TRUE(p.predict(0x10));
}

TEST(BranchPredictor, LearnsNeverTaken) {
  BranchPredictor p;
  for (int i = 0; i < 50; ++i) p.update(0x10, false);
  EXPECT_FALSE(p.predict(0x10));
}

TEST(BranchPredictor, HighAccuracyOnLoopBranches) {
  // Back edge taken 99 times, then not taken: classic loop pattern.
  BranchPredictor p;
  for (int loop = 0; loop < 50; ++loop) {
    for (int i = 0; i < 99; ++i) p.update(0x20, true);
    p.update(0x20, false);
  }
  EXPECT_GT(p.accuracy().value(), 0.95);
}

TEST(BranchPredictor, HistoryDisambiguatesAlternation) {
  // Strict alternation is predictable through global history.
  BranchPredictor p;
  bool taken = false;
  for (int i = 0; i < 4000; ++i) {
    p.update(0x30, taken);
    taken = !taken;
  }
  EXPECT_GT(p.accuracy().value(), 0.80);
}

TEST(BranchPredictor, AccuracyCountsAllUpdates) {
  BranchPredictor p;
  for (int i = 0; i < 10; ++i) p.update(0x40, true);
  EXPECT_EQ(p.accuracy().den, 10u);
}

TEST(BranchPredictorDeath, RejectsNonPowerOfTwo) {
  BranchPredictorConfig cfg;
  cfg.entries = 1000;
  EXPECT_DEATH({ BranchPredictor p(cfg); }, "power of two");
}

}  // namespace
}  // namespace hcsim
