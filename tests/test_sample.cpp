// src/sample — warm-up/measure sampling windows.
//
// The load-bearing property is the checkpoint contract: a window is a pure
// function of (machine config, program, record range), so the serial
// windowed run, the thread-pool-sliced parallel run, and the same schedule
// over any of the three record-stream backends (materialized trace,
// synthetic cursor, RV kernel executor) must all be bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "rv/kernels.hpp"
#include "sample/record_stream.hpp"
#include "sample/spec.hpp"
#include "sample/windowed.hpp"
#include "sim/simulator.hpp"

namespace hcsim::sample {
namespace {

/// Scoped environment override restoring the previous value on destruction.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_)
      setenv(name_, old_.c_str(), 1);
    else
      unsetenv(name_);
  }

 private:
  const char* name_;
  std::string old_;
  bool had_ = false;
};

/// Bit-identity over every integer field, the counter bag and the copy-wait
/// histogram; derived doubles are computed from those integers the same way
/// on both sides, so exact double equality is expected too.
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.uops, b.uops);
  EXPECT_EQ(a.final_tick, b.final_tick);
  EXPECT_EQ(a.to_wide, b.to_wide);
  EXPECT_EQ(a.to_helper, b.to_helper);
  EXPECT_EQ(a.br_steered, b.br_steered);
  EXPECT_EQ(a.cr_steered, b.cr_steered);
  EXPECT_EQ(a.split_uops, b.split_uops);
  EXPECT_EQ(a.chunk_uops, b.chunk_uops);
  EXPECT_EQ(a.replicated_loads, b.replicated_loads);
  EXPECT_EQ(a.copies, b.copies);
  EXPECT_EQ(a.copies_w2n, b.copies_w2n);
  EXPECT_EQ(a.copies_n2w, b.copies_n2w);
  EXPECT_EQ(a.copy_prefetches, b.copy_prefetches);
  EXPECT_EQ(a.cp_useful, b.cp_useful);
  EXPECT_EQ(a.cp_wasted, b.cp_wasted);
  EXPECT_EQ(a.wp_correct, b.wp_correct);
  EXPECT_EQ(a.wp_nonfatal, b.wp_nonfatal);
  EXPECT_EQ(a.wp_fatal, b.wp_fatal);
  EXPECT_EQ(a.cr_violations, b.cr_violations);
  EXPECT_EQ(a.branches, b.branches);
  EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts);
  EXPECT_EQ(a.nready_w2n, b.nready_w2n);
  EXPECT_EQ(a.nready_n2w, b.nready_n2w);
  EXPECT_EQ(a.counters.to_bag().all(), b.counters.to_bag().all());
  EXPECT_EQ(a.copy_wait.total(), b.copy_wait.total());
  ASSERT_EQ(a.copy_wait.bins(), b.copy_wait.bins());
  for (std::size_t i = 0; i <= a.copy_wait.bins(); ++i)
    EXPECT_EQ(a.copy_wait.bin(i), b.copy_wait.bin(i)) << "copy_wait bin " << i;
  EXPECT_EQ(a.dl0_hit_rate, b.dl0_hit_rate);
  EXPECT_EQ(a.ul1_hit_rate, b.ul1_hit_rate);
  EXPECT_EQ(a.wide_cycles, b.wide_cycles);
  EXPECT_EQ(a.ipc, b.ipc);
}

// Deliberately skips trace_len: a profile-based run reports the requested
// length while a Trace-based run reports the actual record count (an RV
// kernel budget-cut at an instruction boundary can make them differ by a
// crack width), and the window schedule is identical either way.
void expect_identical(const SampledResult& a, const SampledResult& b) {
  EXPECT_EQ(a.sampled, b.sampled);
  EXPECT_EQ(a.simulated_uops, b.simulated_uops);
  EXPECT_EQ(a.measured_uops, b.measured_uops);
  expect_identical(a.total, b.total);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].range.begin, b.windows[i].range.begin);
    EXPECT_EQ(a.windows[i].range.measure, b.windows[i].range.measure);
    EXPECT_EQ(a.windows[i].dl0_hits, b.windows[i].dl0_hits);
    EXPECT_EQ(a.windows[i].dl0_accesses, b.windows[i].dl0_accesses);
    EXPECT_EQ(a.windows[i].ul1_hits, b.windows[i].ul1_hits);
    EXPECT_EQ(a.windows[i].ul1_accesses, b.windows[i].ul1_accesses);
    expect_identical(a.windows[i].measured, b.windows[i].measured);
  }
}

// --- schedule planning ------------------------------------------------------

TEST(SampleSpec, PlanFixedPeriod) {
  const SampleSpec spec{/*warmup=*/100, /*measure=*/200, /*period=*/1000};
  const auto plan = plan_windows(spec, 2500);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].begin, 0u);
  EXPECT_EQ(plan[1].begin, 1000u);
  EXPECT_EQ(plan[2].begin, 2000u);
  for (const WindowRange& w : plan) {
    EXPECT_EQ(w.warmup, 100u);
    EXPECT_EQ(w.measure, 200u);
    EXPECT_EQ(w.end(), w.begin + 300u);
  }
}

TEST(SampleSpec, PlanTruncatesFinalWindowMidMeasure) {
  const SampleSpec spec{/*warmup=*/100, /*measure=*/200, /*period=*/1000};
  const auto plan = plan_windows(spec, 2250);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[2].measure, 150u);  // 2250 - (2000 + 100)
  EXPECT_EQ(plan[2].end(), 2250u);
}

TEST(SampleSpec, PlanDropsWindowEndingDuringWarmup) {
  const SampleSpec spec{/*warmup=*/100, /*measure=*/200, /*period=*/1000};
  // Trace ends at 2050: the third window's warm-up [2000, 2100) overruns.
  EXPECT_EQ(plan_windows(spec, 2050).size(), 2u);
  // Shorter than one warm-up: nothing to measure at all.
  EXPECT_TRUE(plan_windows(spec, 100).empty());
  EXPECT_TRUE(plan_windows(spec, 0).empty());
}

TEST(SampleSpec, PlanAutoPeriodTargetsTwentyWindows) {
  const SampleSpec spec{/*warmup=*/10, /*measure=*/20, /*period=*/0};
  EXPECT_EQ(spec.resolved_period(10000), 500u);
  EXPECT_EQ(plan_windows(spec, 10000).size(), SampleSpec::kAutoWindows);
  // Auto period never lets windows overlap, however short the trace.
  EXPECT_EQ(spec.resolved_period(100), 30u);
}

TEST(SampleSpec, PlanHonorsMaxWindows) {
  SampleSpec spec{/*warmup=*/100, /*measure=*/200, /*period=*/1000};
  spec.max_windows = 2;
  EXPECT_EQ(plan_windows(spec, 100000).size(), 2u);
}

TEST(SampleSpec, ValidateRejectsOverlappingPeriod) {
  const SampleSpec bad{/*warmup=*/100, /*measure=*/200, /*period=*/250};
  EXPECT_DEATH({ bad.validate(); }, "period must be 0");
}

TEST(SampleSpec, Describe) {
  const SampleSpec spec{/*warmup=*/100, /*measure=*/200, /*period=*/0};
  EXPECT_NE(spec.describe().find("warmup=100"), std::string::npos);
  EXPECT_NE(spec.describe().find("auto"), std::string::npos);
  EXPECT_EQ(SampleSpec{}.describe(), "sampling disabled");
}

// --- environment spec -------------------------------------------------------

TEST(SampleSpec, FromEnvDisabledWithoutMeasure) {
  EnvGuard w("HCSIM_SAMPLE_WARMUP", "123");
  EnvGuard m("HCSIM_SAMPLE_MEASURE", "");
  const SampleSpec s = spec_from_env();
  EXPECT_FALSE(s.enabled());
  EXPECT_EQ(s.warmup, 123u);
}

TEST(SampleSpec, FromEnvReadsAllFields) {
  EnvGuard w("HCSIM_SAMPLE_WARMUP", "1000");
  EnvGuard m("HCSIM_SAMPLE_MEASURE", "4000");
  EnvGuard p("HCSIM_SAMPLE_PERIOD", "50000");
  EnvGuard x("HCSIM_SAMPLE_MAX_WINDOWS", "7");
  const SampleSpec s = spec_from_env();
  EXPECT_TRUE(s.enabled());
  EXPECT_EQ(s.warmup, 1000u);
  EXPECT_EQ(s.measure, 4000u);
  EXPECT_EQ(s.period, 50000u);
  EXPECT_EQ(s.max_windows, 7u);
}

TEST(SampleSpec, FromEnvRejectsMalformedValue) {
  EnvGuard m("HCSIM_SAMPLE_MEASURE", "100k");
  EXPECT_DEATH({ (void)spec_from_env(); }, "malformed value");
}

TEST(SampleSpec, FromEnvRejectsNegativeValue) {
  EnvGuard m("HCSIM_SAMPLE_MEASURE", "-5");
  EXPECT_DEATH({ (void)spec_from_env(); }, "malformed value");
}

TEST(SampleSpec, FromEnvRejectsOverflow) {
  EnvGuard m("HCSIM_SAMPLE_MEASURE", "99999999999999999999999999");
  EXPECT_DEATH({ (void)spec_from_env(); }, "does not fit in 64 bits");
}

// --- windowed simulation: bit-identity --------------------------------------

constexpr u64 kLen = 24000;

SampleSpec test_spec() {
  SampleSpec s;
  s.warmup = 500;
  s.measure = 1500;
  s.period = 4000;
  return s;
}

TEST(Windowed, SerialAndParallelBitIdentical) {
  const WorkloadProfile& prof = spec_profile("gcc");
  for (const MachineConfig& cfg :
       {monolithic_baseline(), helper_machine(steering_888_br_lr_cr())}) {
    const SampledResult serial = simulate_sampled(cfg, prof, kLen, test_spec(), 1);
    const SampledResult parallel = simulate_sampled(cfg, prof, kLen, test_spec(), 4);
    ASSERT_TRUE(serial.sampled);
    EXPECT_EQ(serial.trace_len, kLen);
    EXPECT_EQ(serial.windows.size(), 6u);
    EXPECT_EQ(serial.trace_len, parallel.trace_len);
    expect_identical(serial, parallel);
  }
}

TEST(Windowed, CursorStreamMatchesMaterializedTrace) {
  // A tiny stream threshold forces the profile-based run onto the synthetic
  // generator cursor; the Trace overload simulates the materialized records.
  // Period 6500 over 20000 records truncates the final window mid-measure
  // (begin 19500, warm-up to 19800, only 200 of 800 measured µops left).
  EnvGuard threshold("HCSIM_STREAM_THRESHOLD", "1000");
  SampleSpec spec;
  spec.warmup = 300;
  spec.measure = 800;
  spec.period = 6500;
  const WorkloadProfile& prof = spec_profile("bzip2");
  const MachineConfig cfg = helper_machine(steering_ir());

  const SampledResult streamed = simulate_sampled(cfg, prof, 20000, spec, 1);
  const SampledResult materialized =
      simulate_sampled(cfg, cached_trace(prof, 20000), spec, 1);
  ASSERT_TRUE(streamed.sampled);
  ASSERT_EQ(streamed.windows.size(), 4u);
  EXPECT_EQ(streamed.windows.back().range.measure, 200u);
  expect_identical(streamed, materialized);
  // And the parallel sliced run agrees with both.
  expect_identical(streamed, simulate_sampled(cfg, prof, 20000, spec, 3));
}

TEST(Windowed, RvKernelStreamBitIdentical) {
  // Below the threshold the RV kernel is materialized through cached_trace;
  // above it each window job re-executes the kernel from entry. Both paths
  // and all thread counts must agree.
  EnvGuard threshold("HCSIM_STREAM_THRESHOLD", "1000");
  const WorkloadProfile prof = rv::rv_workload_profile("crc32");
  const MachineConfig cfg = helper_machine(steering_888_br_lr_cr());
  const SampleSpec spec = test_spec();

  const SampledResult executor = simulate_sampled(cfg, prof, kLen, spec, 1);
  ASSERT_TRUE(executor.sampled);
  expect_identical(executor, simulate_sampled(cfg, rv::kernel_trace("crc32", kLen), spec, 1));
  expect_identical(executor, simulate_sampled(cfg, prof, kLen, spec, 4));
}

TEST(Windowed, FallsBackToFullRunOnShortTrace) {
  SampleSpec spec;
  spec.warmup = 50000;  // longer than the whole trace
  spec.measure = 1000;
  const WorkloadProfile& prof = spec_profile("mcf");
  const MachineConfig cfg = monolithic_baseline();
  const SampledResult r = simulate_sampled(cfg, prof, 10000, spec, 2);
  EXPECT_FALSE(r.sampled);
  EXPECT_TRUE(r.windows.empty());
  expect_identical(r.total, simulate(cfg, cached_trace(prof, 10000)));
}

TEST(Windowed, MeasuredUopsAddUp) {
  const WorkloadProfile& prof = spec_profile("gzip");
  const SampledResult r =
      simulate_sampled(monolithic_baseline(), prof, kLen, test_spec(), 1);
  ASSERT_TRUE(r.sampled);
  u64 measured = 0, simulated = 0;
  for (const WindowStats& w : r.windows) {
    measured += w.range.measure;
    simulated += w.range.warmup + w.range.measure;
    EXPECT_EQ(w.measured.uops, w.range.measure);
  }
  EXPECT_EQ(r.measured_uops, measured);
  EXPECT_EQ(r.simulated_uops, simulated);
  EXPECT_EQ(r.total.uops, measured);
  EXPECT_LT(r.simulated_uops, kLen);  // sampling actually skipped something
}

// --- sampling through simulate_workload -------------------------------------

TEST(Windowed, ActiveSpecRoutesSimulateWorkload) {
  const WorkloadProfile& prof = spec_profile("parser");
  const MachineConfig cfg = helper_machine(steering_ir());
  set_active_sample_spec(test_spec());
  const SimResult via_workload = simulate_workload(cfg, prof, kLen);
  set_active_sample_spec(SampleSpec{});  // restore: sampling off
  expect_identical(via_workload, simulate_sampled(cfg, prof, kLen, test_spec()).total);
}

// --- sampled-vs-full accuracy -----------------------------------------------

TEST(Windowed, SampledTracksFullRunLoosely) {
  // Sampling is an approximation; the bound here is deliberately loose and
  // only guards against gross breakage (wrong windows, counters from the
  // warm-up region leaking in, ...).
  const WorkloadProfile& prof = spec_profile("gcc");
  const MachineConfig cfg = helper_machine(steering_888_br_lr_cr());
  constexpr u64 kFullLen = 120000;
  SampleSpec spec;
  spec.warmup = 2000;
  spec.measure = 4000;  // ~20 windows via auto period
  const SimResult full = simulate(cfg, cached_trace(prof, kFullLen));
  const SampledResult sampled = simulate_sampled(cfg, prof, kFullLen, spec, 2);
  ASSERT_TRUE(sampled.sampled);

  const std::vector<SampleError> errors = sampling_errors(full, sampled.total);
  EXPECT_FALSE(errors.empty());
  for (const SampleError& e : errors)
    EXPECT_LT(e.rel_err, 0.35) << e.metric << ": full=" << e.full
                               << " sampled=" << e.sampled;
  EXPECT_EQ(max_rel_error(errors),
            [&] {
              double m = 0.0;
              for (const SampleError& e : errors) m = std::max(m, e.rel_err);
              return m;
            }());
}

TEST(Windowed, WindowTableRenders) {
  const SampledResult r = simulate_sampled(monolithic_baseline(), spec_profile("gap"),
                                           kLen, test_spec(), 1);
  const std::string table = render_window_table(r);
  EXPECT_NE(table.find("window"), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'),
            static_cast<long>(r.windows.size()) + 2);  // header + rule + rows
}

}  // namespace
}  // namespace hcsim::sample
