// Tests for the enum-indexed counter array and its string-name bridge.
#include <gtest/gtest.h>

#include "core/counters.hpp"

namespace hcsim {
namespace {

TEST(Counters, NameTableRoundTrips) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    const std::string_view name = counter_name(c);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(counter_from_name(name), c) << name;
  }
}

TEST(Counters, UnknownNameIsRejected) {
  EXPECT_EQ(counter_from_name("no_such_counter"), Counter::kCount);
  const CounterArray a;
  EXPECT_EQ(a.get("no_such_counter"), 0u);  // CounterBag-compatible reads
}

TEST(Counters, EnumAndStringAccessAlias) {
  CounterArray a;
  a[Counter::kIssueWide] += 3;
  a["issue_wide"] += 2;
  EXPECT_EQ(a.get(Counter::kIssueWide), 5u);
  EXPECT_EQ(a.get("issue_wide"), 5u);
}

TEST(Counters, ToBagExportsEveryCounter) {
  CounterArray a;
  a[Counter::kCommitted] = 7;
  a[Counter::kDl0Accesses] = 11;
  const CounterBag bag = a.to_bag();
  EXPECT_EQ(bag.all().size(), kNumCounters);
  EXPECT_EQ(bag.get("committed"), 7u);
  EXPECT_EQ(bag.get("dl0_accesses"), 11u);
  EXPECT_EQ(bag.get("issue_fp"), 0u);
}

}  // namespace
}  // namespace hcsim
