// Tests for the functional executor: opcode semantics, memory behaviour,
// control flow and trace-record fidelity.
#include <gtest/gtest.h>

#include "util/narrow.hpp"
#include "wload/executor.hpp"
#include "wload/program_gen.hpp"

namespace hcsim {
namespace {

// Small helper to hand-assemble programs.
struct Asm {
  Program prog;

  u32 emit(StaticUop u, u32 target = 0) {
    u.pc = static_cast<u32>(prog.uops.size());
    prog.uops.push_back(u);
    prog.branch_targets.push_back(target);
    return u.pc;
  }
  u32 movi(RegId d, u32 imm) {
    StaticUop u;
    u.opcode = Opcode::kMovImm;
    u.dst = d;
    u.has_imm = true;
    u.imm = imm;
    return emit(u);
  }
  u32 alu(Opcode op, RegId d, RegId a, RegId b) {
    StaticUop u;
    u.opcode = op;
    u.dst = d;
    u.srcs = {a, b, kRegNone};
    return emit(u);
  }
  u32 alui(Opcode op, RegId d, RegId a, u32 imm) {
    StaticUop u;
    u.opcode = op;
    u.dst = d;
    u.srcs = {a, kRegNone, kRegNone};
    u.has_imm = true;
    u.imm = imm;
    return emit(u);
  }
  u32 branch(u32 cond, u32 target) {
    StaticUop u;
    u.opcode = Opcode::kBranchCond;
    u.srcs = {kRegFlags, kRegNone, kRegNone};
    u.has_imm = true;
    u.imm = cond;
    return emit(u, target);
  }
};

WorkloadProfile test_profile() {
  WorkloadProfile p;
  p.name = "exec-test";
  p.seed = 1;
  return p;
}

TEST(Executor, AluSemantics) {
  Asm a;
  a.movi(kRegEax, 10);
  a.movi(kRegEbx, 3);
  a.alu(Opcode::kAdd, kRegEcx, kRegEax, kRegEbx);   // 13
  a.alu(Opcode::kSub, kRegEdx, kRegEax, kRegEbx);   // 7
  a.alu(Opcode::kAnd, kRegEsi, kRegEax, kRegEbx);   // 2
  a.alu(Opcode::kOr, kRegEdi, kRegEax, kRegEbx);    // 11
  a.alu(Opcode::kXor, kRegT0, kRegEax, kRegEbx);    // 9
  a.alui(Opcode::kShl, kRegT1, kRegEax, 2);         // 40
  a.alui(Opcode::kShr, kRegT2, kRegEax, 1);         // 5
  a.alu(Opcode::kMul, kRegT3, kRegEax, kRegEbx);    // 30
  a.alu(Opcode::kDiv, kRegT4, kRegEax, kRegEbx);    // 3
  const Trace t = execute_program(a.prog, test_profile(), a.prog.uops.size());
  EXPECT_EQ(t.records[2].result, 13u);
  EXPECT_EQ(t.records[3].result, 7u);
  EXPECT_EQ(t.records[4].result, 2u);
  EXPECT_EQ(t.records[5].result, 11u);
  EXPECT_EQ(t.records[6].result, 9u);
  EXPECT_EQ(t.records[7].result, 40u);
  EXPECT_EQ(t.records[8].result, 5u);
  EXPECT_EQ(t.records[9].result, 30u);
  EXPECT_EQ(t.records[10].result, 3u);
}

TEST(Executor, DivByZeroIsTotal) {
  Asm a;
  a.movi(kRegEax, 42);
  a.movi(kRegEbx, 0);
  a.alu(Opcode::kDiv, kRegEcx, kRegEax, kRegEbx);
  const Trace t = execute_program(a.prog, test_profile(), 3);
  EXPECT_EQ(t.records[2].result, 42u);  // defined fallback, no trap
}

TEST(Executor, MovAndLea) {
  Asm a;
  a.movi(kRegEax, 0x1234);
  a.alu(Opcode::kMov, kRegEbx, kRegEax, kRegNone);
  a.alui(Opcode::kLea, kRegEcx, kRegEax, 0x10);
  const Trace t = execute_program(a.prog, test_profile(), 3);
  EXPECT_EQ(t.records[1].result, 0x1234u);
  EXPECT_EQ(t.records[2].result, 0x1244u);
}

TEST(Executor, CmpSetsFlagsWithoutResult) {
  Asm a;
  a.movi(kRegEax, 5);
  a.alui(Opcode::kCmp, kRegNone, kRegEax, 5);
  const Trace t = execute_program(a.prog, test_profile(), 2);
  EXPECT_EQ(t.records[1].flags_val, 0u);
  EXPECT_EQ(t.records[1].result, 0u);  // no destination written
}

TEST(Executor, BranchTakenAndNotTaken) {
  Asm a;
  a.movi(kRegEax, 1);                 // 0
  a.alui(Opcode::kCmp, kRegNone, kRegEax, 1);  // 1: flags = 0
  a.branch(kCondEq, 4);               // 2: taken -> skips pc 3
  a.movi(kRegEbx, 99);                // 3: skipped
  a.movi(kRegEcx, 7);                 // 4
  const Trace t = execute_program(a.prog, test_profile(), 4);
  EXPECT_TRUE(t.records[2].taken);
  EXPECT_EQ(t.records[3].pc, 4u);  // pc 3 skipped
}

TEST(Executor, LoopRunsTripTimes) {
  // for (i = 0; i != 3; ++i) {}
  Asm a;
  a.movi(kRegEcx, 0);                              // 0
  const u32 top = static_cast<u32>(a.prog.uops.size());
  a.alui(Opcode::kAdd, kRegEcx, kRegEcx, 1);       // 1
  a.alui(Opcode::kCmp, kRegNone, kRegEcx, 3);      // 2
  a.branch(kCondNe, top);                          // 3
  const Trace t = execute_program(a.prog, test_profile(), 10);
  // Expect: movi, then 3 iterations of (add, cmp, jcc) = 10 records total.
  EXPECT_EQ(t.records[1].pc, top);
  unsigned iterations = 0;
  for (const TraceRecord& r : t.records)
    if (r.pc == 3 && r.taken) ++iterations;
  EXPECT_EQ(iterations, 2u);  // taken twice, falls through the third time
}

TEST(Executor, ProgramRestartsAtEnd) {
  Asm a;
  a.movi(kRegEax, 1);
  a.movi(kRegEbx, 2);
  const Trace t = execute_program(a.prog, test_profile(), 6);
  EXPECT_EQ(t.records[0].pc, 0u);
  EXPECT_EQ(t.records[2].pc, 0u);
  EXPECT_EQ(t.records[4].pc, 0u);
}

TEST(Executor, StoreLoadRoundTrip) {
  using namespace mem_layout;
  Asm a;
  a.movi(kRegEbp, kWordRegionBase);
  a.movi(kRegEax, 0xABCD1234);
  {  // store [ebp + 0], eax
    StaticUop u;
    u.opcode = Opcode::kStore;
    u.srcs = {kRegEbp, kRegNone, kRegEax};
    u.has_imm = true;
    u.imm = 0;
    a.emit(u);
  }
  {  // load ebx, [ebp + 0]
    StaticUop u;
    u.opcode = Opcode::kLoad;
    u.dst = kRegEbx;
    u.srcs = {kRegEbp, kRegNone, kRegNone};
    u.has_imm = true;
    u.imm = 0;
    a.emit(u);
  }
  const Trace t = execute_program(a.prog, test_profile(), 4);
  EXPECT_EQ(t.records[2].mem_addr, kWordRegionBase);
  EXPECT_EQ(t.records[3].result, 0xABCD1234u);
}

TEST(Executor, ByteStoreMasksValue) {
  using namespace mem_layout;
  Asm a;
  a.movi(kRegEbp, kByteRegionBase + 64);
  a.movi(kRegEax, 0xFFFFFF42);  // byte store keeps 0x42
  {
    StaticUop u;
    u.opcode = Opcode::kStoreByte;
    u.srcs = {kRegEbp, kRegNone, kRegEax};
    u.has_imm = true;
    a.emit(u);
  }
  {
    StaticUop u;
    u.opcode = Opcode::kLoadByte;
    u.dst = kRegEbx;
    u.srcs = {kRegEbp, kRegNone, kRegNone};
    u.has_imm = true;
    a.emit(u);
  }
  const Trace t = execute_program(a.prog, test_profile(), 4);
  EXPECT_EQ(t.records[3].result, 0x42u);
}

TEST(Executor, EffectiveAddressUsesBaseIndexDisp) {
  using namespace mem_layout;
  Asm a;
  a.movi(kRegEbp, kByteRegionBase);
  a.movi(kRegEcx, 8);
  {
    StaticUop u;
    u.opcode = Opcode::kLoadByte;
    u.dst = kRegEax;
    u.srcs = {kRegEbp, kRegEcx, kRegNone};
    u.has_imm = true;
    u.imm = 3;
    a.emit(u);
  }
  const Trace t = execute_program(a.prog, test_profile(), 3);
  EXPECT_EQ(t.records[2].mem_addr, kByteRegionBase + 8 + 3);
}

TEST(Executor, RecordsSourceValues) {
  Asm a;
  a.movi(kRegEax, 11);
  a.movi(kRegEbx, 22);
  a.alu(Opcode::kAdd, kRegEcx, kRegEax, kRegEbx);
  const Trace t = execute_program(a.prog, test_profile(), 3);
  EXPECT_EQ(t.records[2].src_vals[0], 11u);
  EXPECT_EQ(t.records[2].src_vals[1], 22u);
}

TEST(SyntheticMemory, ByteRegionAlwaysNarrow) {
  using namespace mem_layout;
  WorkloadProfile p = test_profile();
  SyntheticMemory mem(p);
  for (u32 i = 0; i < 1000; ++i) {
    const u32 v = mem.load(kByteRegionBase + i * 7, /*byte=*/true);
    EXPECT_TRUE(is_narrow8(v));
  }
}

TEST(SyntheticMemory, PointerRegionValuesAreInRegionPointers) {
  using namespace mem_layout;
  WorkloadProfile p = test_profile();
  SyntheticMemory mem(p);
  for (u32 i = 0; i < 1000; ++i) {
    const u32 v = mem.load(kPtrRegionBase + i * 16, /*byte=*/false);
    EXPECT_TRUE(in_ptr_region(v)) << std::hex << v;
  }
}

TEST(SyntheticMemory, LoadsAreDeterministic) {
  using namespace mem_layout;
  WorkloadProfile p = test_profile();
  SyntheticMemory a(p), b(p);
  for (u32 i = 0; i < 200; ++i) {
    const u32 addr = kWordRegionBase + i * 4;
    EXPECT_EQ(a.load(addr, false), b.load(addr, false));
  }
}

TEST(SyntheticMemory, StoresPersist) {
  using namespace mem_layout;
  WorkloadProfile p = test_profile();
  SyntheticMemory mem(p);
  mem.store(kWordRegionBase + 4, 0xCAFEBABE, false);
  EXPECT_EQ(mem.load(kWordRegionBase + 4, false), 0xCAFEBABEu);
}

TEST(SyntheticMemory, ByteStoreUpdatesOnlyThatByte) {
  using namespace mem_layout;
  WorkloadProfile p = test_profile();
  SyntheticMemory mem(p);
  const u32 addr = kWordRegionBase + 16;
  const u32 before = mem.load(addr, false);
  mem.store(addr + 1, 0x5A, true);
  const u32 after = mem.load(addr, false);
  EXPECT_EQ(after & 0xFFFF00FFu, before & 0xFFFF00FFu);
  EXPECT_EQ((after >> 8) & 0xFFu, 0x5Au);
}

TEST(SyntheticMemory, WordRegionStabilityControlsNarrowMix) {
  using namespace mem_layout;
  WorkloadProfile p = test_profile();
  p.value_stability = 0.99;
  SyntheticMemory mem(p);
  unsigned narrow = 0;
  const unsigned n = 4000;
  for (u32 i = 0; i < n; ++i)
    narrow += is_narrow8(mem.load(kWordRegionBase + i * 4, false));
  // Around 30% of blocks are narrow by construction.
  EXPECT_GT(narrow, n / 8);
  EXPECT_LT(narrow, n / 2);
}

}  // namespace
}  // namespace hcsim
