// Tests for the statistics primitives.
#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace hcsim {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Ratio, Basics) {
  Ratio r;
  EXPECT_DOUBLE_EQ(r.value(), 0.0);  // no division by zero
  r.add(true);
  r.add(true);
  r.add(false);
  r.add(true);
  EXPECT_DOUBLE_EQ(r.value(), 0.75);
  EXPECT_DOUBLE_EQ(r.percent(), 75.0);
}

TEST(Ratio, AddN) {
  Ratio r;
  r.add_n(30, 100);
  r.add_n(20, 100);
  EXPECT_DOUBLE_EQ(r.percent(), 25.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(8);
  h.add(0);
  h.add(7);
  h.add(8);    // overflow bin
  h.add(100);  // overflow bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(7), 1u);
  EXPECT_EQ(h.bin(8), 2u);
}

TEST(Histogram, MeanUsesUncappedValues) {
  Histogram h(4);
  h.add(2);
  h.add(10);  // overflows the bins but not the mean
  EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(Histogram, Quantiles) {
  Histogram h(100);
  for (u64 v = 0; v < 100; ++v) h.add(v);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 49.0, 1.0);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.9)), 89.0, 1.0);
  EXPECT_EQ(h.quantile(1.0), 99u);
}

TEST(Histogram, FractionAtMost) {
  Histogram h(10);
  for (u64 v = 0; v < 10; ++v) h.add(v);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(4), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(9), 1.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(4);
  h.add(1, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bin(1), 10u);
}

TEST(CounterBag, DefaultZeroAndIncrement) {
  CounterBag bag;
  EXPECT_EQ(bag.get("missing"), 0u);
  bag["x"]++;
  bag["x"] += 2;
  EXPECT_EQ(bag.get("x"), 3u);
  EXPECT_EQ(bag.all().size(), 1u);
}

TEST(Geomean, Basics) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

}  // namespace
}  // namespace hcsim
