// Fault-tolerant sweeps end to end: the kRunJobs protocol, the resilient
// client, and run_sweep_ft under injected faults.
//
// The headline invariant: kill the daemon or sever the socket at any job
// boundary or mid-frame, restart or fall back, and the recovered sweep's CSV
// is byte-identical to an uninterrupted in-process run — with re-run jobs
// served from a journal instead of recomputed (asserted via the journal-hit
// counters). Fault schedules come from util/faultpoint.hpp; every test
// disarms on exit because the schedule is process-global.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/protocol.hpp"
#include "svc/remote_sweep.hpp"
#include "svc/service.hpp"
#include "util/faultpoint.hpp"

namespace hcsim::svc {
namespace {

std::string unique_path(const char* tag, const char* suffix) {
  return "/tmp/hcsim_ftrec_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + suffix;
}

/// The small grid every recovery test reruns: smoke at a short trace length,
/// so one sweep is cheap enough to run several times per test.
exp::SweepSpec small_spec() {
  auto spec = exp::find_sweep("smoke");
  EXPECT_TRUE(spec.has_value());
  spec->trace_lens = {2000};
  return *spec;
}

void remove_dir(const std::string& dir) {
  ::unlink((dir + "/daemon.journal").c_str());
  ::unlink((dir + "/client.journal").c_str());
  ::rmdir(dir.c_str());
}

/// In-thread daemon for socket-level tests (same pattern as
/// test_service.cpp). run_daemon() reloads the fault schedule from the
/// environment on startup, so tests arm their schedules *after* the fixture
/// is up.
class DaemonFixture {
 public:
  explicit DaemonFixture(const char* tag, DaemonOptions base = {})
      : path_(unique_path(tag, ".sock")) {
    thread_ = std::thread([this, base] {
      DaemonOptions opts = base;
      opts.socket_path = path_;
      opts.threads = 1;
      run_daemon(opts);
    });
    for (int i = 0; i < 500 && ::access(path_.c_str(), F_OK) != 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  ~DaemonFixture() {
    fault::set_schedule("");  // never shut down through a live fault schedule
    if (thread_.joinable()) {
      std::string error;
      Client c = Client::connect(path_);
      if (c.ok()) c.shutdown(error);
      thread_.join();
    }
    ::unlink(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::thread thread_;
};

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::set_schedule(""); }
};

JobRequest small_job(u64 n_records) {
  JobRequest req;
  req.config = exp::SweepSpec().baseline;
  std::string error;
  EXPECT_TRUE(resolve_workload("rv:crc32", req.profile, error)) << error;
  req.n_records = n_records;
  return req;
}

// --- protocol round trips ---------------------------------------------------

TEST(Protocol, JobRequestRoundTrip) {
  JobRequest req = small_job(4321);
  req.sampled = true;
  req.warmup = 111;
  req.measure = 222;
  req.period = 3333;
  req.max_windows = 4;

  std::vector<u8> buf;
  encode(buf, req);
  wire::Reader r(buf.data(), buf.size());
  JobRequest back;
  ASSERT_TRUE(decode(r, back));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(back.version, req.version);
  EXPECT_EQ(back.n_records, req.n_records);
  EXPECT_EQ(back.sampled, req.sampled);
  EXPECT_EQ(back.warmup, req.warmup);
  EXPECT_EQ(back.measure, req.measure);
  EXPECT_EQ(back.period, req.period);
  EXPECT_EQ(back.max_windows, req.max_windows);
  EXPECT_EQ(back.profile.name, req.profile.name);
  // Full-fidelity check without field-by-field comparison: the re-encoding
  // and the content hash must both match.
  std::vector<u8> buf2;
  encode(buf2, back);
  EXPECT_EQ(buf2, buf);
  EXPECT_EQ(job_id(back), job_id(req));

  // Truncation at every prefix must be detected, never read OOB.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    wire::Reader short_r(buf.data(), cut);
    JobRequest ignored;
    EXPECT_FALSE(decode(short_r, ignored)) << "cut at " << cut;
  }
}

TEST(Protocol, JobResponseAndJobsDoneRoundTrip) {
  JobResponse resp;
  resp.job_id = 0xDEADBEEFCAFEF00DULL;
  resp.from_journal = true;
  resp.result = simulate_workload(exp::SweepSpec().baseline,
                                  small_job(1500).profile, 1500);
  std::vector<u8> buf;
  encode(buf, resp);
  wire::Reader r(buf.data(), buf.size());
  JobResponse back;
  ASSERT_TRUE(decode(r, back));
  EXPECT_EQ(back.job_id, resp.job_id);
  EXPECT_EQ(back.from_journal, resp.from_journal);
  std::vector<u8> a, b;
  encode(a, resp.result);
  encode(b, back.result);
  EXPECT_EQ(a, b);

  JobsDone done;
  done.completed = 9;
  done.journal_hits = 4;
  buf.clear();
  encode(buf, done);
  wire::Reader r2(buf.data(), buf.size());
  JobsDone done_back;
  ASSERT_TRUE(decode(r2, done_back));
  EXPECT_EQ(done_back.completed, done.completed);
  EXPECT_EQ(done_back.journal_hits, done.journal_hits);
}

// --- kRunJobs over the socket ----------------------------------------------

TEST_F(FaultRecoveryTest, RunJobsBatchStreamsResultsAndDedupes) {
  const std::string jdir = unique_path("runjobs", ".jdir");
  ::mkdir(jdir.c_str(), 0755);
  DaemonOptions base;
  base.journal_dir = jdir;
  {
    DaemonFixture daemon("runjobs", base);
    Client client = Client::connect(daemon.path());
    ASSERT_TRUE(client.ok()) << client.error();

    const std::vector<JobRequest> reqs = {small_job(1500), small_job(2500)};
    std::vector<JobResponse> got;
    JobsDone done;
    std::string error;
    ASSERT_EQ(client.run_jobs(
                  reqs, [&](const JobResponse& r) { got.push_back(r); }, done,
                  error),
              Client::BatchStatus::kDone)
        << error;
    EXPECT_EQ(done.completed, 2u);
    EXPECT_EQ(done.journal_hits, 0u);
    ASSERT_EQ(got.size(), 2u);
    for (const JobResponse& r : got) EXPECT_FALSE(r.from_journal);

    // Same batch again on the same connection: everything from the journal.
    got.clear();
    ASSERT_EQ(client.run_jobs(
                  reqs, [&](const JobResponse& r) { got.push_back(r); }, done,
                  error),
              Client::BatchStatus::kDone)
        << error;
    EXPECT_EQ(done.journal_hits, 2u);
    for (const JobResponse& r : got) EXPECT_TRUE(r.from_journal);

    // Version skew is a semantic verdict (kRemoteError), not a transport
    // failure — the connection survives.
    std::vector<JobRequest> bad = reqs;
    bad[0].version = 99;
    EXPECT_EQ(client.run_jobs(bad, nullptr, done, error),
              Client::BatchStatus::kRemoteError);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
    EXPECT_TRUE(client.ping(error)) << error;
  }
  remove_dir(jdir);
}

TEST_F(FaultRecoveryTest, EintrStormAndShortIoAreInvisible) {
  DaemonFixture daemon("eintr");
  Client client = Client::connect(daemon.path());
  ASSERT_TRUE(client.ok()) << client.error();

  // Finite storms of retryable conditions on every socket path, both sides:
  // EINTR on read/write/poll plus 1-byte short reads and writes. None of it
  // may surface — these are exactly the conditions the io helpers absorb.
  fault::set_schedule(
      "sock.read.eintr:1:500,sock.write.eintr:1:500,sock.poll.eintr:1:500,"
      "sock.read.short:1:500,sock.write.short:1:500");

  std::string error;
  EXPECT_TRUE(client.ping(error)) << error;
  const std::vector<JobRequest> reqs = {small_job(1500)};
  JobsDone done;
  ASSERT_EQ(client.run_jobs(reqs, nullptr, done, error),
            Client::BatchStatus::kDone)
      << error;
  EXPECT_EQ(done.completed, 1u);

  // The storm actually happened (the schedule was not a no-op).
  EXPECT_GT(fault::hits("sock.read.eintr"), 0u);
  EXPECT_GT(fault::hits("sock.write.eintr"), 0u);
  fault::set_schedule("");
  EXPECT_TRUE(client.ping(error)) << error;
}

// --- run_sweep_ft recovery matrix -------------------------------------------

TEST_F(FaultRecoveryTest, MidFrameDisconnectReconnectsAndMatchesByteForByte) {
  const exp::SweepSpec spec = small_spec();
  const exp::SweepResult reference = exp::run_sweep(spec, exp::RunOptions{});
  const std::string csv_ref = exp::to_csv(reference);

  const std::string ddir = unique_path("midframe", ".ddir");
  const std::string cdir = unique_path("midframe", ".cdir");
  DaemonOptions base;
  base.journal_dir = ddir;
  {
    DaemonFixture daemon("midframe", base);
    // Sever the daemon's 4th result write mid-stream (ECONNRESET). Only the
    // daemon-domain entry is armed, so the client's own socket writes are
    // untouched. The daemon keeps simulating and journaling after the
    // stream dies, so the re-submission is served as pure journal hits.
    fault::set_schedule("daemon.sock.write.reset:4");

    FtSweepOptions opts;
    opts.socket_path = daemon.path();
    opts.journal_dir = cdir;
    opts.retries = 5;
    opts.backoff_base_ms = 1;
    exp::SweepResult result;
    FtSweepStats stats;
    std::string error;
    ASSERT_EQ(run_sweep_ft(spec, opts, result, stats, error), FtStatus::kOk)
        << error;
    EXPECT_EQ(exp::to_csv(result), csv_ref);
    EXPECT_GE(stats.reconnects, 1u);
    EXPECT_GE(stats.daemon_journal_hits, 1u);
    EXPECT_EQ(stats.local_jobs, 0u);  // the daemon recovered, not the fallback
    fault::set_schedule("");

    // A rerun resumes entirely from the client journal: no sockets touched.
    exp::SweepResult rerun;
    FtSweepStats stats2;
    ASSERT_EQ(run_sweep_ft(spec, opts, rerun, stats2, error), FtStatus::kOk)
        << error;
    EXPECT_EQ(exp::to_csv(rerun), csv_ref);
    EXPECT_EQ(stats2.client_journal_hits, stats2.jobs);
    EXPECT_EQ(stats2.connect_attempts, 0u);
  }
  remove_dir(ddir);
  remove_dir(cdir);
}

TEST_F(FaultRecoveryTest, TornClientJournalTailStillResumesCleanly) {
  const exp::SweepSpec spec = small_spec();
  const std::string cdir = unique_path("torn", ".cdir");

  FtSweepOptions opts;
  opts.journal_dir = cdir;  // no socket: journaled local mode
  exp::SweepResult first;
  FtSweepStats stats;
  std::string error;
  ASSERT_EQ(run_sweep_ft(spec, opts, first, stats, error), FtStatus::kOk)
      << error;
  const std::string csv_ref = exp::to_csv(first);
  EXPECT_EQ(stats.local_jobs, stats.jobs);

  // Tear the journal's tail as a crash-mid-append would.
  const std::string jpath = cdir + "/client.journal";
  struct stat st{};
  ASSERT_EQ(::stat(jpath.c_str(), &st), 0);
  ASSERT_EQ(::truncate(jpath.c_str(), st.st_size - 7), 0);

  exp::SweepResult resumed;
  FtSweepStats stats2;
  ASSERT_EQ(run_sweep_ft(spec, opts, resumed, stats2, error), FtStatus::kOk)
      << error;
  EXPECT_EQ(exp::to_csv(resumed), csv_ref);
  // Exactly one job (the torn final record) was recomputed.
  EXPECT_EQ(stats2.local_jobs, 1u);
  EXPECT_EQ(stats2.client_journal_hits, stats2.jobs - 1);
  remove_dir(cdir);
}

TEST_F(FaultRecoveryTest, NoFallbackFailsWithTransportStatusWhenDaemonIsDead) {
  const exp::SweepSpec spec = small_spec();
  FtSweepOptions opts;
  opts.socket_path = unique_path("nodaemon", ".sock");  // nothing listening
  opts.retries = 2;
  opts.backoff_base_ms = 1;
  opts.allow_fallback = false;
  exp::SweepResult result;
  FtSweepStats stats;
  std::string error;
  EXPECT_EQ(run_sweep_ft(spec, opts, result, stats, error),
            FtStatus::kTransportFailed);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(stats.connect_attempts, 2u);

  // With fallback (the default) the same dead socket still yields the sweep.
  opts.allow_fallback = true;
  ASSERT_EQ(run_sweep_ft(spec, opts, result, stats, error), FtStatus::kOk)
      << error;
  EXPECT_EQ(stats.local_jobs, stats.jobs);
  EXPECT_EQ(exp::to_csv(result),
            exp::to_csv(exp::run_sweep(spec, exp::RunOptions{})));
}

/// Forked daemon for abort()-style crash tests: an in-thread daemon cannot
/// abort without taking the test down with it.
pid_t spawn_daemon(const std::string& sock, const std::string& jdir,
                   const char* fault_schedule) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (fault_schedule != nullptr)
      ::setenv("HCSIM_FAULT", fault_schedule, 1);
    else
      ::unsetenv("HCSIM_FAULT");
    // Keep the daemon's logging out of the test output.
    std::freopen("/dev/null", "w", stdout);
    std::freopen("/dev/null", "w", stderr);
    DaemonOptions opts;
    opts.socket_path = sock;
    opts.threads = 1;
    opts.journal_dir = jdir;
    ::_exit(run_daemon(opts));
  }
  for (int i = 0; i < 500 && ::access(sock.c_str(), F_OK) != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  return pid;
}

TEST_F(FaultRecoveryTest, DaemonAbortAtJobKThenRestartMatchesByteForByte) {
  const exp::SweepSpec spec = small_spec();
  const std::string csv_ref = exp::to_csv(exp::run_sweep(spec, exp::RunOptions{}));
  const std::string sock = unique_path("abort", ".sock");
  const std::string ddir = unique_path("abort", ".ddir");
  const std::string cdir1 = unique_path("abort1", ".cdir");
  const std::string cdir2 = unique_path("abort2", ".cdir");

  // Phase 1: the daemon abort()s right before simulating its 5th fresh job
  // — everything before it is already durable in its journal. The client
  // rides the transport failure into the in-process fallback and still
  // produces the exact CSV.
  const pid_t crashing = spawn_daemon(sock, ddir, "job.abort:5");
  ASSERT_GT(crashing, 0);
  FtSweepOptions opts;
  opts.socket_path = sock;
  opts.journal_dir = cdir1;
  opts.retries = 2;
  opts.backoff_base_ms = 1;
  exp::SweepResult result;
  FtSweepStats stats;
  std::string error;
  ASSERT_EQ(run_sweep_ft(spec, opts, result, stats, error), FtStatus::kOk)
      << error;
  EXPECT_EQ(exp::to_csv(result), csv_ref);
  EXPECT_GE(stats.remote_jobs, 1u);  // some results arrived before the crash
  EXPECT_GE(stats.local_jobs, 1u);   // the fallback finished the remainder
  int status = 0;
  ASSERT_EQ(::waitpid(crashing, &status, 0), crashing);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT);

  // Phase 2: restart the daemon clean on the same journal. The crashed
  // daemon left a stale socket file behind; remove it so the socket's
  // reappearance signals the restarted daemon actually listening. A fresh
  // client (fresh client journal) re-submits everything; the jobs the
  // crashed daemon completed come back as journal hits, not recomputation.
  ::unlink(sock.c_str());
  const pid_t restarted = spawn_daemon(sock, ddir, nullptr);
  ASSERT_GT(restarted, 0);
  FtSweepOptions opts2 = opts;
  opts2.journal_dir = cdir2;
  exp::SweepResult result2;
  FtSweepStats stats2;
  ASSERT_EQ(run_sweep_ft(spec, opts2, result2, stats2, error), FtStatus::kOk)
      << error;
  EXPECT_EQ(exp::to_csv(result2), csv_ref);
  EXPECT_GE(stats2.daemon_journal_hits, 1u);
  EXPECT_EQ(stats2.local_jobs, 0u);

  Client c = Client::connect(sock);
  ASSERT_TRUE(c.ok()) << c.error();
  EXPECT_TRUE(c.shutdown(error)) << error;
  ASSERT_EQ(::waitpid(restarted, &status, 0), restarted);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  ::unlink(sock.c_str());
  remove_dir(ddir);
  remove_dir(cdir1);
  remove_dir(cdir2);
}

}  // namespace
}  // namespace hcsim::svc
