// src/svc/journal — durable job results, and the job ids that key them.
//
// The recovery contract under test: any prefix-preserving crash (torn tail,
// flipped byte, injected mid-write failure) loses at most the record being
// written — every record before it survives reopen, and the journal stays
// appendable. Plus the identity contract: job ids are a pure function of the
// request content, stable across processes (pinned golden constant) and
// insensitive to the protocol version field.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "sim/simulator.hpp"
#include "svc/journal.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "trace/wire.hpp"
#include "util/faultpoint.hpp"

namespace hcsim::svc {
namespace {

std::string test_path(const char* tag) {
  return "/tmp/hcsim_journal_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".journal";
}

std::vector<u8> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<u8>(std::istreambuf_iterator<char>(f),
                         std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<u8>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

/// A real (tiny) simulation result — journal payloads should exercise the
/// full SimResult codec, histogram and counters included.
SimResult tiny_result(u64 n_records) {
  WorkloadProfile profile;
  std::string error;
  EXPECT_TRUE(resolve_workload("rv:crc32", profile, error)) << error;
  return simulate_workload(exp::SweepSpec().baseline, profile, n_records);
}

std::vector<u8> encoded(const SimResult& r) {
  std::vector<u8> buf;
  encode(buf, r);
  return buf;
}

class JournalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::set_schedule("");
    for (const std::string& p : cleanup_) ::unlink(p.c_str());
  }
  std::string make_path(const char* tag) {
    cleanup_.push_back(test_path(tag));
    return cleanup_.back();
  }
  std::vector<std::string> cleanup_;
};

TEST_F(JournalTest, AppendLookupAndReopen) {
  const std::string path = make_path("roundtrip");
  const SimResult r1 = tiny_result(1000);
  const SimResult r2 = tiny_result(2000);
  {
    Journal j;
    ASSERT_TRUE(j.open(path)) << j.error();
    ASSERT_TRUE(j.valid());
    EXPECT_TRUE(j.append(11, r1));
    EXPECT_TRUE(j.append(22, r2));
    EXPECT_EQ(j.size(), 2u);
    EXPECT_TRUE(j.contains(11));
    EXPECT_FALSE(j.contains(33));
  }
  Journal j;
  ASSERT_TRUE(j.open(path)) << j.error();
  EXPECT_EQ(j.recovered(), 2u);
  EXPECT_EQ(j.dropped_bytes(), 0u);
  SimResult back;
  ASSERT_TRUE(j.lookup(11, back));
  EXPECT_EQ(encoded(back), encoded(r1));
  ASSERT_TRUE(j.lookup(22, back));
  EXPECT_EQ(encoded(back), encoded(r2));
  EXPECT_EQ(j.hits(), 2u);
  EXPECT_FALSE(j.lookup(33, back));
  EXPECT_EQ(j.hits(), 2u);  // misses are not hits
}

TEST_F(JournalTest, DuplicateAppendIsADurableNoOp) {
  const std::string path = make_path("dup");
  const SimResult r = tiny_result(1000);
  Journal j;
  ASSERT_TRUE(j.open(path)) << j.error();
  ASSERT_TRUE(j.append(7, r));
  const u64 bytes_after_first = static_cast<u64>(read_file(path).size());
  EXPECT_TRUE(j.append(7, r));  // reports success, writes nothing
  EXPECT_EQ(j.size(), 1u);
  EXPECT_EQ(static_cast<u64>(read_file(path).size()), bytes_after_first);
}

TEST_F(JournalTest, TornTailIsTruncatedAtEveryCut) {
  const std::string path = make_path("torn_src");
  {
    Journal j;
    ASSERT_TRUE(j.open(path)) << j.error();
    ASSERT_TRUE(j.append(1, tiny_result(1000)));
    ASSERT_TRUE(j.append(2, tiny_result(2000)));
  }
  const std::vector<u8> bytes = read_file(path);
  ASSERT_GT(bytes.size(), 8u);

  // Record boundaries from the length fields (8-byte file header, then
  // [len][crc][payload] records).
  std::vector<std::size_t> boundaries = {8};
  for (std::size_t pos = 8; pos + 8 <= bytes.size();) {
    pos += 8 + wire::load_u32le(bytes.data() + pos);
    boundaries.push_back(pos);
  }
  ASSERT_EQ(boundaries.size(), 3u);
  ASSERT_EQ(boundaries.back(), bytes.size());

  const std::string torn = make_path("torn");
  // Sample every cut of the second record and a spread of cuts of the first
  // (every byte of a multi-KB record would be slow for no extra coverage).
  for (std::size_t cut = 8; cut < bytes.size();
       cut += (cut < boundaries[1] ? 97 : 1)) {
    write_file(torn, std::vector<u8>(bytes.begin(), bytes.begin() + cut));
    Journal j;
    ASSERT_TRUE(j.open(torn)) << "cut at " << cut << ": " << j.error();
    const u64 expect_recovered = cut >= boundaries[1] ? 1u : 0u;
    EXPECT_EQ(j.recovered(), expect_recovered) << "cut at " << cut;
    EXPECT_EQ(j.dropped_bytes(), cut - boundaries[expect_recovered])
        << "cut at " << cut;
    // The truncated journal must stay appendable, and the re-append must be
    // recoverable in turn.
    ASSERT_TRUE(j.append(99, tiny_result(1000))) << "cut at " << cut;
  }
  Journal again;
  ASSERT_TRUE(again.open(torn)) << again.error();
  EXPECT_TRUE(again.contains(99));
}

TEST_F(JournalTest, CorruptRecordDropsItAndEverythingAfter) {
  const std::string path = make_path("corrupt");
  {
    Journal j;
    ASSERT_TRUE(j.open(path)) << j.error();
    ASSERT_TRUE(j.append(1, tiny_result(1000)));
    ASSERT_TRUE(j.append(2, tiny_result(2000)));
  }
  std::vector<u8> bytes = read_file(path);
  const std::size_t second = 8 + 8 + wire::load_u32le(bytes.data() + 8);
  bytes[second + 8 + 3] ^= 0xFF;  // flip a payload byte of record 2
  write_file(path, bytes);

  Journal j;
  ASSERT_TRUE(j.open(path)) << j.error();
  EXPECT_EQ(j.recovered(), 1u);
  EXPECT_TRUE(j.contains(1));
  EXPECT_FALSE(j.contains(2));
  EXPECT_EQ(j.dropped_bytes(), bytes.size() - second);
}

TEST_F(JournalTest, ForeignFileIsRefusedAndNeverTruncated) {
  const std::string path = make_path("foreign");
  const std::vector<u8> foreign = {'p', 'r', 'e', 'c', 'i', 'o', 'u', 's',
                                   'd', 'a', 't', 'a'};
  write_file(path, foreign);
  Journal j;
  EXPECT_FALSE(j.open(path));
  EXPECT_FALSE(j.valid());
  EXPECT_NE(j.error().find("magic"), std::string::npos) << j.error();
  EXPECT_EQ(read_file(path), foreign);  // byte-for-byte untouched
}

TEST_F(JournalTest, InjectedTornAppendIsRecoveredOnReopen) {
  const std::string path = make_path("inject");
  const SimResult keep = tiny_result(1000);
  {
    Journal j;
    ASSERT_TRUE(j.open(path)) << j.error();
    ASSERT_TRUE(j.append(1, keep));
    fault::set_schedule("journal.append.torn:1");
    EXPECT_FALSE(j.append(2, tiny_result(2000)));  // half a record lands
    EXPECT_FALSE(j.valid());
    fault::set_schedule("");
  }
  Journal j;
  ASSERT_TRUE(j.open(path)) << j.error();
  EXPECT_EQ(j.recovered(), 1u);
  EXPECT_GT(j.dropped_bytes(), 0u);
  SimResult back;
  ASSERT_TRUE(j.lookup(1, back));
  EXPECT_EQ(encoded(back), encoded(keep));
}

// --- job ids ---------------------------------------------------------------

JobRequest golden_request() {
  JobRequest req;
  req.config = exp::SweepSpec().baseline;  // monolithic_baseline()
  for (const WorkloadProfile& p : spec_int_2000_profiles())
    if (p.name == "gcc") req.profile = p;
  req.n_records = 100000;
  return req;
}

TEST(JobId, StableAcrossProcessesGoldenConstant) {
  // Computed once and pinned: job ids key on-disk journals, so any codec or
  // hash change that shifts them silently invalidates every existing journal
  // — this test makes that a loud, deliberate decision.
  EXPECT_EQ(job_id(golden_request()), 0x74f1544751967e1dULL);
}

TEST(JobId, IgnoresProtocolVersion) {
  JobRequest req = golden_request();
  const u64 id = job_id(req);
  req.version = 99;  // versioning the transport must not re-key the work
  EXPECT_EQ(job_id(req), id);
}

TEST(JobId, ChangesWithAnyContentField) {
  const JobRequest base = golden_request();
  const u64 id = job_id(base);

  JobRequest req = base;
  req.n_records = 100001;
  EXPECT_NE(job_id(req), id);

  req = base;
  req.profile.seed += 1;
  EXPECT_NE(job_id(req), id);

  req = base;
  req.config.fetch_width += 1;
  EXPECT_NE(job_id(req), id);

  req = base;
  req.sampled = true;
  req.measure = 80000;
  EXPECT_NE(job_id(req), id);
}

}  // namespace
}  // namespace hcsim::svc
