// Tests for the deterministic xoshiro256** RNG.
#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace hcsim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const u64 first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(5);
  for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowZeroIsZero) {
  Rng r(5);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const i64 v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanApproximatelyRight) {
  Rng r(23);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(5.0));
  EXPECT_NEAR(sum / n, 5.0, 0.35);
}

TEST(Rng, GeometricAtLeastOne) {
  Rng r(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.geometric(1.0), 1u);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.geometric(0.1), 1u);
}

TEST(Rng, ForkIndependence) {
  Rng parent(31);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (c1.next_u64() == c2.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitMix64KnownGood) {
  // Reference values from the splitmix64 reference implementation.
  u64 state = 0;
  const u64 a = splitmix64(state);
  const u64 b = splitmix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

TEST(Rng, NoShortCycles) {
  Rng r(37);
  std::set<u64> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(r.next_u64());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace hcsim
