// End-to-end integration tests: the paper's qualitative claims must hold on
// generated workloads at reduced trace lengths.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace hcsim {
namespace {

constexpr u64 kLen = 40000;

// Shared across tests in this file (traces are cached process-wide anyway).
const std::vector<SteeringConfig>& all_schemes() {
  static const std::vector<SteeringConfig> kSchemes = {
      steering_888(),         steering_888_br(), steering_888_br_lr(),
      steering_888_br_lr_cr(), steering_cp(),    steering_ir(),
      steering_ir_nodest()};
  return kSchemes;
}

TEST(Integration, AllSchemesRunAllApps) {
  for (const auto& prof : spec_int_2000_profiles()) {
    const MultiRun run = run_app_configs(prof, all_schemes(), kLen);
    for (const SimResult& r : run.configs) {
      EXPECT_EQ(r.uops, kLen) << prof.name << " " << r.config;
      EXPECT_GT(r.final_tick, 0u);
    }
  }
}

TEST(Integration, SteeredFractionGrowsAcrossSchemes) {
  // Paper: 15% (8-8-8) -> 19.5% (BR) -> 47.5% (CR). Check monotone growth
  // for the stacking that adds steering rules.
  const MultiRun run = run_app_configs(spec_profile("gcc"), all_schemes(), kLen);
  const double s888 = run.configs[0].helper_frac();
  const double sbr = run.configs[1].helper_frac();
  const double scr = run.configs[3].helper_frac();
  EXPECT_GT(sbr, s888);
  EXPECT_GT(scr, sbr);
}

TEST(Integration, BrAndLrReduceCopyFraction) {
  // Figures 8 and 9.
  int br_wins = 0, lr_wins = 0;
  for (const char* app : {"gcc", "gzip", "parser", "twolf"}) {
    const MultiRun run = run_app_configs(spec_profile(app), all_schemes(), kLen);
    br_wins += run.configs[1].copy_frac() < run.configs[0].copy_frac();
    lr_wins += run.configs[2].copy_frac() < run.configs[1].copy_frac();
  }
  EXPECT_GE(br_wins, 3);
  EXPECT_GE(lr_wins, 3);
}

TEST(Integration, HelperClusterWinsOnAverage) {
  // The headline: the helper cluster speeds up SPEC Int (paper: +22% best
  // scheme). Demand a clearly positive geomean for the IR-family configs.
  std::vector<double> speedups;
  for (const auto& prof : spec_int_2000_profiles()) {
    const AppRun run = run_app(prof, steering_ir_nodest(), kLen);
    speedups.push_back(run.speedup());
  }
  EXPECT_GT(geomean(speedups), 1.05);
}

TEST(Integration, LaterSchemesBeatPlain888OnAverage) {
  std::vector<double> s888, scr;
  for (const auto& prof : spec_int_2000_profiles()) {
    const MultiRun run = run_app_configs(prof, all_schemes(), kLen);
    s888.push_back(run.configs[0].speedup_vs(run.baseline));
    scr.push_back(run.configs[3].speedup_vs(run.baseline));
  }
  EXPECT_GT(geomean(scr), geomean(s888));
}

TEST(Integration, FatalMispredictionsStayRare) {
  // Paper: 0.83% of instructions with the confidence estimator.
  for (const char* app : {"gcc", "gzip", "perlbmk"}) {
    const AppRun run = run_app(spec_profile(app), steering_cp(), kLen);
    EXPECT_LT(run.helper.fatal_rate(), 0.02) << app;
  }
}

TEST(Integration, ConfidenceEstimatorCutsFatalMispredictions) {
  // Section 3.2: 2.11% -> 0.83% when adding the 2-bit confidence estimator.
  double with_conf = 0, without_conf = 0;
  for (const char* app : {"gcc", "gzip", "perlbmk", "twolf"}) {
    const Trace& t = cached_trace(spec_profile(app), kLen);
    MachineConfig on = helper_machine(steering_888());
    MachineConfig off = helper_machine(steering_888());
    off.wpred.use_confidence = false;
    with_conf += simulate(on, t).fatal_rate();
    without_conf += simulate(off, t).fatal_rate();
  }
  EXPECT_LT(with_conf, without_conf);
}

TEST(Integration, WidthPredictionAccuracyHigh) {
  // Paper Figure 5: ~93.5% average correct predictions.
  for (const char* app : {"gcc", "twolf", "vpr"}) {
    const AppRun run = run_app(spec_profile(app), steering_888(), kLen);
    EXPECT_GT(run.helper.wp_accuracy(), 0.85) << app;
  }
}

TEST(Integration, ImbalanceShapeMatchesPaper) {
  // Section 3.7: before IR, wide-to-narrow imbalance dominates
  // narrow-to-wide by an order of magnitude.
  double w2n = 0, n2w = 0;
  for (const auto& prof : spec_int_2000_profiles()) {
    const AppRun run = run_app(prof, steering_888_br_lr(), kLen);
    w2n += run.helper.nready_w2n_pct();
    n2w += run.helper.nready_n2w_pct();
  }
  EXPECT_GT(w2n, 3.0 * n2w);
}

TEST(Integration, MemoryBoundAppGainsLeast) {
  // mcf is memory bound: its speedup must sit well below the suite's best.
  double mcf_gain = 0, best = 0;
  for (const auto& prof : spec_int_2000_profiles()) {
    const AppRun run = run_app(prof, steering_ir(), kLen);
    const double g = run.perf_increase_pct();
    if (prof.name == "mcf") mcf_gain = g;
    best = std::max(best, g);
  }
  EXPECT_LT(mcf_gain, best / 2.0);
}

TEST(Integration, ScalesWithTraceLength) {
  // Results at 20k and 60k µops agree in direction (shape stability).
  const AppRun small = run_app(spec_profile("gcc"), steering_ir(), 20000);
  const AppRun large = run_app(spec_profile("gcc"), steering_ir(), 60000);
  EXPECT_GT(small.speedup(), 1.0);
  EXPECT_GT(large.speedup(), 1.0);
}

TEST(Integration, CategoryAppsSimulateEndToEnd) {
  // One app from each Table 2 family.
  for (const auto& cat : workload_categories()) {
    const WorkloadProfile p = category_app_profile(cat, 0);
    const AppRun run = run_app(p, steering_ir(), 15000);
    EXPECT_EQ(run.helper.uops, 15000u) << cat.name;
    EXPECT_GT(run.speedup(), 0.7) << cat.name;
  }
}

}  // namespace
}  // namespace hcsim
