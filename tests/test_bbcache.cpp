// Decode-and-steer cache (src/bbcache) invariants:
//   - templates are a pure function of (StaticUop, SteeringConfig, width)
//   - rebinding a shared cache under a new key invalidates (and counts it)
//   - a cache shared across programs/configs is output-identical to private
//     caches and to no cache at all (aliased PCs must never leak templates)
//   - the batched SoA feed is bit-identical to the scalar feed
//   - WidthLaneBlock classification matches per-value is_narrow
// The suite runs under the ASan/UBSan CI job, which is what backs the
// bounds-comment on WidthLaneBlock's unchecked accessors.
#include <gtest/gtest.h>

#include <span>

#include "bbcache/bb_cache.hpp"
#include "core/pipeline.hpp"
#include "rv/kernels.hpp"
#include "sim/simulator.hpp"
#include "util/narrow.hpp"

namespace hcsim {
namespace {

constexpr u64 kLen = 6000;  // not a WidthLaneBlock multiple: exercises the tail

/// All output-visible result fields — everything except the bb_cache_*
/// counters, which describe the cache itself and legitimately differ
/// between cache-on and cache-off runs.
void expect_same_output(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.uops, b.uops);
  EXPECT_EQ(a.final_tick, b.final_tick);
  EXPECT_EQ(a.to_helper, b.to_helper);
  EXPECT_EQ(a.to_wide, b.to_wide);
  EXPECT_EQ(a.br_steered, b.br_steered);
  EXPECT_EQ(a.cr_steered, b.cr_steered);
  EXPECT_EQ(a.split_uops, b.split_uops);
  EXPECT_EQ(a.copies, b.copies);
  EXPECT_EQ(a.copies_w2n, b.copies_w2n);
  EXPECT_EQ(a.copies_n2w, b.copies_n2w);
  EXPECT_EQ(a.copy_prefetches, b.copy_prefetches);
  EXPECT_EQ(a.wp_correct, b.wp_correct);
  EXPECT_EQ(a.wp_nonfatal, b.wp_nonfatal);
  EXPECT_EQ(a.wp_fatal, b.wp_fatal);
  EXPECT_EQ(a.cr_violations, b.cr_violations);
  EXPECT_EQ(a.branches, b.branches);
  EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts);
  EXPECT_EQ(a.nready_w2n, b.nready_w2n);
  EXPECT_EQ(a.nready_n2w, b.nready_n2w);
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    if (c == Counter::kBbCacheHits || c == Counter::kBbCacheMisses ||
        c == Counter::kBbCacheInvalidations)
      continue;
    EXPECT_EQ(a.counters.get(c), b.counters.get(c)) << counter_name(c);
  }
}

SimResult run_batched(const MachineConfig& cfg, const Trace& t, DecodeCache* cache) {
  Pipeline p(cfg, t.program, cache);
  p.feed(std::span<const TraceRecord>(t.records));
  return p.finish();
}

TEST(BbCache, TemplateBuildIsPure) {
  const Trace t = cached_trace(spec_profile("gcc"), kLen);
  const SteeringConfig steer = steering_888_br_lr_cr();
  for (const StaticUop& su : t.program.uops) {
    const UopTemplate a = build_uop_template(su, steer, 8);
    const UopTemplate b = build_uop_template(su, steer, 8);
    EXPECT_EQ(a.uop, b.uop);
    EXPECT_EQ(a.srcs, b.srcs);
    EXPECT_EQ(a.width_srcs, b.width_srcs);
    EXPECT_EQ(a.width_lane, b.width_lane);
    EXPECT_EQ(a.n_srcs, b.n_srcs);
    EXPECT_EQ(a.n_width_srcs, b.n_width_srcs);
    EXPECT_EQ(a.width_lane_mask, b.width_lane_mask);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.has_dst, b.has_dst);
    EXPECT_EQ(a.has_imm, b.has_imm);
    EXPECT_EQ(a.imm_narrow, b.imm_narrow);
    EXPECT_EQ(a.imm, b.imm);
    EXPECT_EQ(a.static_wide, b.static_wide);
    EXPECT_EQ(a.wants_cr, b.wants_cr);
    EXPECT_EQ(a.splittable, b.splittable);
    EXPECT_EQ(a.tracked, b.tracked);
  }
}

TEST(BbCache, SteeringRebindInvalidatesAndStaysIdentical) {
  const Trace t = cached_trace(spec_profile("gcc"), kLen);
  const MachineConfig cfg_a = helper_machine(steering_888());
  const MachineConfig cfg_b = helper_machine(steering_888_br_lr_cr());

  DecodeCache shared(/*enabled=*/true);
  const SimResult a1 = run_batched(cfg_a, t, &shared);
  EXPECT_EQ(a1.counters.get(Counter::kBbCacheInvalidations), 0u);
  EXPECT_GT(a1.counters.get(Counter::kBbCacheMisses), 0u);
  EXPECT_GT(a1.counters.get(Counter::kBbCacheHits), 0u);

  // New steering rung, same program: every cached template must drop — a
  // stale template would replay config-A verdicts under config B.
  const SimResult b1 = run_batched(cfg_b, t, &shared);
  EXPECT_GT(b1.counters.get(Counter::kBbCacheInvalidations), 0u);
  DecodeCache fresh_b(/*enabled=*/true);
  expect_same_output(b1, run_batched(cfg_b, t, &fresh_b));

  // Same PC set re-cracked after the invalidation: the miss count of the
  // post-rebind run proves re-cracking, not stale replay.
  EXPECT_EQ(b1.counters.get(Counter::kBbCacheMisses), shared.filled());

  // Rebinding with an unchanged key keeps the templates: all hits, no
  // misses, no invalidations.
  const SimResult b2 = run_batched(cfg_b, t, &shared);
  EXPECT_EQ(b2.counters.get(Counter::kBbCacheInvalidations), 0u);
  EXPECT_EQ(b2.counters.get(Counter::kBbCacheMisses), 0u);
  EXPECT_EQ(b2.counters.get(Counter::kBbCacheHits), t.records.size());
  expect_same_output(b1, b2);
}

TEST(BbCache, AliasedPcsAcrossKernelsShareOneCache) {
  // Two different RV kernels: PC k in one program is a different static µop
  // than PC k in the other (PCs alias). A cache shared across both — the
  // worst case a sweep driver can produce — must rebind per program and
  // still match private-cache runs exactly.
  const auto& kernels = rv::bundled_kernels();
  ASSERT_GE(kernels.size(), 2u);
  const Trace ta = rv::kernel_trace(kernels[0].name, kLen);
  const Trace tb = rv::kernel_trace(kernels[1].name, kLen);
  const MachineConfig cfg = helper_machine(steering_888_br_lr_cr());

  DecodeCache shared(/*enabled=*/true);
  const SimResult a_shared = run_batched(cfg, ta, &shared);
  const SimResult b_shared = run_batched(cfg, tb, &shared);   // rebind a->b
  const SimResult a_again = run_batched(cfg, ta, &shared);    // rebind b->a
  EXPECT_GT(b_shared.counters.get(Counter::kBbCacheInvalidations), 0u);
  EXPECT_GT(a_again.counters.get(Counter::kBbCacheInvalidations), 0u);

  DecodeCache pa(/*enabled=*/true), pb(/*enabled=*/true);
  expect_same_output(a_shared, run_batched(cfg, ta, &pa));
  expect_same_output(b_shared, run_batched(cfg, tb, &pb));
  expect_same_output(a_again, a_shared);
}

TEST(BbCache, BatchedScalarAndUncachedFeedsAgree) {
  const Trace t = cached_trace(spec_profile("gcc"), kLen);
  const MachineConfig cfg = helper_machine(steering_ir());

  DecodeCache c1(/*enabled=*/true);
  const SimResult batched = run_batched(cfg, t, &c1);

  Pipeline scalar(cfg, t.program);
  for (const TraceRecord& rec : t.records) scalar.feed(rec);
  expect_same_output(batched, scalar.finish());

  DecodeCache off(/*enabled=*/false);
  const SimResult uncached = run_batched(cfg, t, &off);
  EXPECT_EQ(uncached.counters.get(Counter::kBbCacheHits), 0u);
  EXPECT_EQ(uncached.counters.get(Counter::kBbCacheMisses), 0u);
  expect_same_output(batched, uncached);
}

TEST(BbCache, WidthLaneBlockMatchesIsNarrow) {
  // Values straddling the 8-bit boundary in every lane position, plus a
  // partial tail block; accessors run over every index under ASan/UBSan.
  std::vector<TraceRecord> recs(WidthLaneBlock::kRecords + 37);
  u32 x = 0x9e3779b9u;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    for (unsigned k = 0; k < kMaxSrcs; ++k) {
      x = x * 1664525u + 1013904223u;
      recs[i].src_vals[k] = (x & 1u) ? (x & 0x7Fu) : x;
    }
    x = x * 1664525u + 1013904223u;
    recs[i].result = (x & 2u) ? (x | 0x80000000u) : (x & 0xFFu);
  }
  for (std::size_t base = 0; base < recs.size(); base += WidthLaneBlock::kRecords) {
    const std::size_t n = std::min(recs.size() - base, WidthLaneBlock::kRecords);
    const std::span<const TraceRecord> sub(recs.data() + base, n);
    WidthLaneBlock block;
    block.classify(sub, 8);
    for (std::size_t i = 0; i < n; ++i) {
      u8 mask = 0;
      for (unsigned k = 0; k < kMaxSrcs; ++k) {
        EXPECT_EQ(block.src_narrow(i, k), is_narrow(sub[i].src_vals[k], 8));
        mask |= static_cast<u8>(is_narrow(sub[i].src_vals[k], 8)) << k;
      }
      EXPECT_EQ(block.result_narrow(i), is_narrow(sub[i].result, 8));
      EXPECT_EQ(block.src_mask(i), mask);
    }
  }
}

TEST(BbCache, EnableKnobOverride) {
  bbcache_set_enabled(false);
  EXPECT_FALSE(bbcache_enabled_default());
  EXPECT_FALSE(DecodeCache{}.enabled());
  bbcache_set_enabled(true);
  EXPECT_TRUE(bbcache_enabled_default());
  bbcache_reset_enabled();
  // Back to the environment default (enabled unless HCSIM_BBCACHE=0, which
  // the test harness does not set).
  EXPECT_TRUE(DecodeCache{}.enabled());
}

}  // namespace
}  // namespace hcsim
