// Streaming trace interface: chunk-wise record delivery must be invisible —
// the generated stream, and every statistic the pipeline derives from it,
// is bit-identical to the materialized-vector path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "rv/kernels.hpp"
#include "sim/simulator.hpp"
#include "wload/program_gen.hpp"

namespace hcsim {
namespace {

constexpr u64 kLen = 20000;

bool records_equal(const TraceRecord& a, const TraceRecord& b) {
  return a.pc == b.pc && a.src_vals == b.src_vals && a.result == b.result &&
         a.flags_val == b.flags_val && a.mem_addr == b.mem_addr && a.taken == b.taken;
}

void expect_same_result(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.uops, b.uops);
  EXPECT_EQ(a.final_tick, b.final_tick);
  EXPECT_EQ(a.to_helper, b.to_helper);
  EXPECT_EQ(a.to_wide, b.to_wide);
  EXPECT_EQ(a.copies, b.copies);
  EXPECT_EQ(a.wp_fatal, b.wp_fatal);
  EXPECT_EQ(a.nready_w2n, b.nready_w2n);
  EXPECT_EQ(a.nready_n2w, b.nready_n2w);
  EXPECT_EQ(a.counters.to_bag().all(), b.counters.to_bag().all());
}

TEST(Streaming, CursorReproducesExecuteProgram) {
  const WorkloadProfile& prof = spec_profile("gcc");
  const Program program = generate_program(prof);
  const Trace trace = execute_program(program, prof, kLen);

  // An odd chunk size exercises chunk-boundary state carry-over.
  ProgramTraceCursor cursor(program, prof, kLen, /*chunk_records=*/777);
  u64 i = 0;
  for (auto chunk = cursor.next_chunk(); !chunk.empty(); chunk = cursor.next_chunk()) {
    for (const TraceRecord& rec : chunk) {
      ASSERT_LT(i, trace.records.size());
      ASSERT_TRUE(records_equal(rec, trace.records[i])) << "record " << i;
      ++i;
    }
  }
  EXPECT_EQ(i, trace.records.size());
}

TEST(Streaming, KernelStreamReproducesKernelTrace) {
  const Trace trace = rv::kernel_trace("crc32", kLen);
  const rv::KernelStream stream = rv::open_kernel_stream("crc32");
  ASSERT_EQ(stream.cracked.program.uops.size(), trace.program.uops.size());

  u64 i = 0;
  stream.pump(kLen, [&](const TraceRecord& rec) {
    ASSERT_LT(i, trace.records.size());
    ASSERT_TRUE(records_equal(rec, trace.records[i])) << "record " << i;
    ++i;
  });
  EXPECT_EQ(i, trace.records.size());
}

TEST(Streaming, SimulateStreamedMatchesMaterialized) {
  const WorkloadProfile& prof = spec_profile("bzip2");
  for (const MachineConfig& cfg :
       {monolithic_baseline(), helper_machine(steering_ir())}) {
    const SimResult materialized = simulate(cfg, cached_trace(prof, kLen));
    const SimResult streamed = simulate_streamed(cfg, prof, kLen);
    expect_same_result(materialized, streamed);
  }
}

TEST(Streaming, SimulateStreamedMatchesMaterializedRvKernel) {
  const WorkloadProfile prof = rv::rv_workload_profile("strlen");
  const MachineConfig cfg = helper_machine(steering_888_br_lr_cr());
  const SimResult materialized = simulate(cfg, cached_trace(prof, kLen));
  const SimResult streamed = simulate_streamed(cfg, prof, kLen);
  expect_same_result(materialized, streamed);
}

TEST(Streaming, SimulateWorkloadRoutesByThreshold) {
  // Below the threshold simulate_workload must agree with the cached path;
  // the streaming equivalence above makes the two branches interchangeable.
  const WorkloadProfile& prof = spec_profile("mcf");
  const MachineConfig cfg = monolithic_baseline();
  expect_same_result(simulate_workload(cfg, prof, kLen),
                     simulate(cfg, cached_trace(prof, kLen)));
}

TEST(Streaming, ThresholdBoundaryIsInvisible) {
  // Pin the routing boundary and run exactly at, one below and one above it:
  // 999/1000 take the cached-trace branch, 1001 the streaming branch. All
  // three must match the materialized simulation bit-for-bit — the boundary
  // may change memory behavior, never results.
  const char* old = std::getenv("HCSIM_STREAM_THRESHOLD");
  const std::string saved = old ? old : "";
  setenv("HCSIM_STREAM_THRESHOLD", "1000", 1);
  ASSERT_EQ(stream_threshold(), 1000u);

  const WorkloadProfile& prof = spec_profile("twolf");
  const MachineConfig cfg = helper_machine(steering_ir());
  for (u64 len : {u64{999}, u64{1000}, u64{1001}}) {
    const SimResult routed = simulate_workload(cfg, prof, len);
    const SimResult materialized = simulate(cfg, cached_trace(prof, len));
    expect_same_result(materialized, routed);
  }

  if (old)
    setenv("HCSIM_STREAM_THRESHOLD", saved.c_str(), 1);
  else
    unsetenv("HCSIM_STREAM_THRESHOLD");
}

}  // namespace
}  // namespace hcsim
