// Tests for the experiment-orchestration subsystem (src/exp/): grid
// expansion, the thread pool, parallel-vs-serial result determinism, and
// the CSV/JSON report emitters.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "sim/simulator.hpp"

namespace hcsim::exp {
namespace {

SweepSpec tiny_sweep() {
  SweepSpec s;
  s.name = "tiny";
  s.workloads = {spec_profile("gcc"), spec_profile("gzip")};
  s.variants = {variant_from_steering(steering_888()),
                variant_from_steering(steering_888_br_lr_cr())};
  s.trace_lens = {4000};
  return s;
}

// --- grid expansion ---------------------------------------------------------

TEST(Sweep, ExpansionCountMatchesGrid) {
  SweepSpec s = tiny_sweep();
  s.seeds = {7, 11, 13};
  s.trace_lens = {2000, 4000};
  EXPECT_EQ(s.num_points(), 2u * 2u * 3u * 2u);
  const auto points = expand(s);
  EXPECT_EQ(points.size(), s.num_points());
}

TEST(Sweep, ExpansionIsWorkloadMajorAndIndexed) {
  SweepSpec s = tiny_sweep();
  s.seeds = {7, 11};
  const auto points = expand(s);
  ASSERT_EQ(points.size(), 8u);
  for (u32 i = 0; i < points.size(); ++i) EXPECT_EQ(points[i].index, i);
  // workload-major, then variant, then seed.
  EXPECT_EQ(points[0].profile.name, "gcc");
  EXPECT_EQ(points[0].variant.name, "8_8_8");
  EXPECT_EQ(points[0].profile.seed, 7u);
  EXPECT_EQ(points[1].profile.seed, 11u);
  EXPECT_EQ(points[2].variant.name, "8_8_8+BR+LR+CR");
  EXPECT_EQ(points[4].profile.name, "gzip");
  EXPECT_EQ(points[7].profile.name, "gzip");
  EXPECT_EQ(points[7].variant.name, "8_8_8+BR+LR+CR");
  EXPECT_EQ(points[7].profile.seed, 11u);
}

TEST(Sweep, EmptyDimensionsDefaultToOnePoint) {
  SweepSpec s = tiny_sweep();
  s.trace_lens.clear();  // -> default_trace_len()
  const auto points = expand(s);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& p : points) {
    EXPECT_EQ(p.n_records, default_trace_len());
    // seed 0 placeholder keeps the profile's own seed.
    EXPECT_EQ(p.profile.seed, spec_profile(p.profile.name).seed);
  }
}

TEST(Sweep, NamedSweepsResolve) {
  for (const std::string& name : sweep_names()) {
    const auto spec = find_sweep(name);
    ASSERT_TRUE(spec.has_value()) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_GT(spec->num_points(), 0u) << name;
  }
  EXPECT_FALSE(find_sweep("no-such-sweep").has_value());
  EXPECT_EQ(find_sweep("fig06")->num_points(), 12u);
  EXPECT_EQ(find_sweep("cumulative")->num_points(), 84u);
}

TEST(Sweep, BaselineVariantIsMonolithic) {
  const ConfigVariant v = variant_from_steering(steering_baseline());
  EXPECT_EQ(v.name, "baseline");
  EXPECT_FALSE(v.machine.steer.helper_enabled);
  const ConfigVariant h = variant_from_steering(steering_888());
  EXPECT_TRUE(h.machine.steer.helper_enabled);
  EXPECT_EQ(h.name, "8_8_8");
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.wait_idle();  // no jobs: returns immediately
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

// --- runner determinism -----------------------------------------------------

void expect_same_results(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const PointResult& pa = a.points[i];
    const PointResult& pb = b.points[i];
    EXPECT_EQ(pa.point.index, pb.point.index);
    EXPECT_EQ(pa.point.profile.name, pb.point.profile.name);
    EXPECT_EQ(pa.point.variant.name, pb.point.variant.name);
    EXPECT_EQ(pa.sim.final_tick, pb.sim.final_tick);
    EXPECT_EQ(pa.sim.uops, pb.sim.uops);
    EXPECT_EQ(pa.sim.to_helper, pb.sim.to_helper);
    EXPECT_EQ(pa.sim.copies, pb.sim.copies);
    EXPECT_EQ(pa.baseline.final_tick, pb.baseline.final_tick);
    EXPECT_DOUBLE_EQ(pa.power_sim.energy, pb.power_sim.energy);
    EXPECT_DOUBLE_EQ(pa.speedup(), pb.speedup());
  }
}

TEST(Runner, ParallelMatchesSerialAcrossThreadCounts) {
  const SweepSpec spec = tiny_sweep();
  RunOptions serial;
  serial.threads = 1;
  const SweepResult base = run_sweep(spec, serial);
  EXPECT_EQ(base.threads_used, 1u);
  for (unsigned threads : {2u, 4u, 8u}) {
    RunOptions par;
    par.threads = threads;
    const SweepResult r = run_sweep(spec, par);
    EXPECT_EQ(r.threads_used, threads);
    expect_same_results(base, r);
    // The full machine-readable reports must be byte-identical too.
    EXPECT_EQ(to_csv(base), to_csv(r));
  }
}

TEST(Runner, ProgressCallbackSeesEveryPointExactlyOnce) {
  const SweepSpec spec = tiny_sweep();
  RunOptions opts;
  opts.threads = 4;
  std::set<u32> seen;
  u64 last_total = 0, calls = 0;
  opts.on_point = [&](const PointResult& pr, u64 done, u64 total) {
    // Called under the runner's progress lock, so no synchronization needed.
    seen.insert(pr.point.index);
    ++calls;
    EXPECT_EQ(done, calls);  // done counts monotonically
    last_total = total;
  };
  const SweepResult r = run_sweep(spec, opts);
  EXPECT_EQ(calls, r.points.size());
  EXPECT_EQ(seen.size(), r.points.size());
  EXPECT_EQ(last_total, r.points.size());
}

TEST(Runner, BaselineSharedAcrossVariantsOfOneApp) {
  const SweepResult r = run_sweep(tiny_sweep(), {});
  ASSERT_EQ(r.points.size(), 4u);
  // Same app, different variants -> identical baseline runs.
  EXPECT_EQ(r.points[0].baseline.final_tick, r.points[1].baseline.final_tick);
  EXPECT_EQ(r.points[2].baseline.final_tick, r.points[3].baseline.final_tick);
  // Sim results carry the steering scheme's config name.
  EXPECT_EQ(r.points[0].sim.config, "8_8_8");
  EXPECT_EQ(r.points[1].sim.config, "8_8_8+BR+LR+CR");
  EXPECT_EQ(r.points[0].baseline.config, "baseline");
}

// --- reporting --------------------------------------------------------------

TEST(Report, GeomeanAndMean) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({1.0, 0.0}), 0.0);  // non-positive input
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Report, SummaryGroupsByVariantInOrder) {
  const SweepResult r = run_sweep(tiny_sweep(), {});
  const auto summaries = summarize(r);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].config, "8_8_8");
  EXPECT_EQ(summaries[1].config, "8_8_8+BR+LR+CR");
  EXPECT_EQ(summaries[0].n_points, 2u);
  EXPECT_EQ(summaries[1].n_points, 2u);
  EXPECT_GT(summaries[0].geomean_speedup, 0.0);
  // Hand-check one aggregate.
  const double expected =
      geomean({r.points[0].speedup(), r.points[2].speedup()});
  EXPECT_DOUBLE_EQ(summaries[0].geomean_speedup, expected);
}

TEST(Report, CsvShapeAndHeader) {
  const SweepResult r = run_sweep(tiny_sweep(), {});
  const std::string csv = to_csv(r);
  // Header + one line per point.
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            1 + r.points.size());
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "app,config,seed,n_uops,baseline_wide_cycles,wide_cycles,speedup,"
            "perf_pct,wide_cycle_speedup,helper_pct,copy_pct,wp_accuracy_pct,"
            "energy_baseline,energy,edp_gain_pct,ed2p_gain_pct");
  EXPECT_NE(csv.find("\ngcc,8_8_8,"), std::string::npos);
  EXPECT_NE(csv.find("\ngzip,8_8_8+BR+LR+CR,"), std::string::npos);
  EXPECT_NE(csv.find(",4000,"), std::string::npos);  // n_uops column
}

TEST(Report, JsonContainsPointsAndSummary) {
  const SweepResult r = run_sweep(tiny_sweep(), {});
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"sweep\": \"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"points\": ["), std::string::npos);
  EXPECT_NE(json.find("\"summary\": ["), std::string::npos);
  EXPECT_NE(json.find("\"config\": \"8_8_8+BR+LR+CR\""), std::string::npos);
  EXPECT_NE(json.find("\"geomean_speedup\": "), std::string::npos);
  EXPECT_NE(json.find("\"mean_wide_cycle_speedup\": "), std::string::npos);
  // Every point appears.
  std::size_t apps = 0;
  for (std::size_t pos = 0; (pos = json.find("\"app\": ", pos)) != std::string::npos;
       ++pos)
    ++apps;
  EXPECT_EQ(apps, r.points.size());
}

TEST(Report, RenderSummaryMentionsEveryVariant) {
  const SweepResult r = run_sweep(tiny_sweep(), {});
  const std::string table = render_summary(r);
  EXPECT_NE(table.find("8_8_8"), std::string::npos);
  EXPECT_NE(table.find("8_8_8+BR+LR+CR"), std::string::npos);
  EXPECT_NE(table.find("perf+% (avg)"), std::string::npos);
}

}  // namespace
}  // namespace hcsim::exp
