// Tests for the trace analytics behind Figures 1, 11 and 13.
#include <gtest/gtest.h>

#include "analysis/trace_stats.hpp"
#include "wload/executor.hpp"
#include "wload/profile.hpp"

namespace hcsim {
namespace {

struct TraceBuilder {
  Trace trace;
  u32 emit(StaticUop u, TraceRecord r) {
    u.pc = static_cast<u32>(trace.program.uops.size());
    r.pc = u.pc;
    trace.program.uops.push_back(u);
    trace.program.branch_targets.push_back(0);
    trace.records.push_back(r);
    return u.pc;
  }
  void movi(RegId d, u32 imm) {
    StaticUop u;
    u.opcode = Opcode::kMovImm;
    u.dst = d;
    u.has_imm = true;
    u.imm = imm;
    TraceRecord r;
    r.result = imm;
    emit(u, r);
  }
  void add(RegId d, RegId a, RegId b, u32 va, u32 vb) {
    StaticUop u;
    u.opcode = Opcode::kAdd;
    u.dst = d;
    u.srcs = {a, b, kRegNone};
    TraceRecord r;
    r.src_vals = {va, vb, 0};
    r.result = va + vb;
    emit(u, r);
  }
};

TEST(NarrowDependency, CountsProducersWidth) {
  TraceBuilder tb;
  tb.movi(kRegEax, 5);        // eax narrow
  tb.movi(kRegEbx, 0x10000);  // ebx wide
  tb.add(kRegEcx, kRegEax, kRegEbx, 5, 0x10000);  // operands: narrow + wide
  tb.add(kRegEdx, kRegEax, kRegEax, 5, 5);        // operands: narrow + narrow
  const auto s = narrow_dependency_stats(tb.trace);
  // 4 register operands total, 3 of them read a narrow producer value.
  EXPECT_EQ(s.operands_narrow_dependent.den, 4u);
  EXPECT_EQ(s.operands_narrow_dependent.num, 3u);
}

TEST(NarrowDependency, InitialRegistersCountNarrow) {
  TraceBuilder tb;
  tb.add(kRegEcx, kRegEax, kRegEbx, 0, 0);  // reads two untouched (zero) regs
  const auto s = narrow_dependency_stats(tb.trace);
  EXPECT_EQ(s.operands_narrow_dependent.num, 2u);
}

TEST(NarrowDependency, AluOperandMixBuckets) {
  TraceBuilder tb;
  tb.movi(kRegEax, 5);        // narrow producer
  tb.movi(kRegEbx, 0x10000);  // wide producer
  // one-narrow: eax (narrow) + ebx (wide)
  tb.add(kRegEcx, kRegEax, kRegEbx, 5, 0x10000);
  // two-narrow producing narrow: eax + eax
  tb.add(kRegEdx, kRegEax, kRegEax, 5, 5);
  // two-narrow producing wide: 200 + 200 = 400
  tb.movi(kRegEsi, 200);
  tb.add(kRegEdi, kRegEsi, kRegEsi, 200, 200);
  const auto s = narrow_dependency_stats(tb.trace);
  EXPECT_GT(s.alu_one_narrow.num, 0u);
  EXPECT_GT(s.alu_two_narrow_narrow_result.num, 0u);
  EXPECT_GT(s.alu_two_narrow_wide_result.num, 0u);
}

TEST(CarryStats, ClassifiesConfinedArith) {
  TraceBuilder tb;
  tb.movi(kRegEax, 0x12345600);  // wide, low byte clear
  tb.movi(kRegEbx, 0x10);        // narrow
  tb.add(kRegEcx, kRegEax, kRegEbx, 0x12345600, 0x10);  // confined
  tb.movi(kRegEdx, 0x123456F0);
  tb.add(kRegEsi, kRegEdx, kRegEbx, 0x123456F0, 0x20);  // carries out
  const auto s = carry_stats(tb.trace);
  EXPECT_EQ(s.arith_confined.den, 2u);
  EXPECT_EQ(s.arith_confined.num, 1u);
}

TEST(CarryStats, LoadsTrackedSeparately) {
  TraceBuilder tb;
  tb.movi(kRegEax, 0x40000000);  // wide base
  tb.movi(kRegEbx, 0x8);         // narrow index
  StaticUop ld;
  ld.opcode = Opcode::kLoad;
  ld.dst = kRegEcx;
  ld.srcs = {kRegEax, kRegEbx, kRegNone};
  TraceRecord r;
  r.src_vals = {0x40000000, 0x8, 0};
  r.mem_addr = 0x40000008;
  r.result = 0x77;
  tb.emit(ld, r);
  const auto s = carry_stats(tb.trace);
  EXPECT_EQ(s.load_confined.den, 1u);
  EXPECT_EQ(s.load_confined.num, 1u);
  EXPECT_EQ(s.arith_confined.den, 0u);
}

TEST(CarryStats, RequiresExactlyOneWideSource) {
  TraceBuilder tb;
  tb.movi(kRegEax, 0x10000);
  tb.movi(kRegEbx, 0x20000);
  tb.add(kRegEcx, kRegEax, kRegEbx, 0x10000, 0x20000);  // two wide: excluded
  tb.movi(kRegEdx, 1);
  tb.add(kRegEsi, kRegEdx, kRegEdx, 1, 1);  // two narrow: excluded
  const auto s = carry_stats(tb.trace);
  EXPECT_EQ(s.arith_confined.den, 0u);
}

TEST(Distance, FirstConsumerMeasured) {
  TraceBuilder tb;
  tb.movi(kRegEax, 1);                       // idx 0: producer
  tb.movi(kRegEbx, 2);                       // idx 1
  tb.movi(kRegEcx, 3);                       // idx 2
  tb.add(kRegEdx, kRegEax, kRegEbx, 1, 2);   // idx 3: consumes eax (d=3), ebx (d=2)
  tb.add(kRegEsi, kRegEax, kRegEax, 1, 1);   // idx 4: eax already consumed
  const auto s = producer_consumer_distance(tb.trace);
  EXPECT_EQ(s.distance.total(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

TEST(Distance, RedefinitionResetsProducer) {
  TraceBuilder tb;
  tb.movi(kRegEax, 1);                      // idx 0
  tb.movi(kRegEax, 2);                      // idx 1 redefines
  tb.add(kRegEbx, kRegEax, kRegEax, 2, 2);  // idx 2: distance 1 from idx 1
  const auto s = producer_consumer_distance(tb.trace);
  EXPECT_EQ(s.distance.total(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(Distance, GeneratedWorkloadsHaveShortDistances) {
  // Figure 13: IA-32 average producer-consumer distance is ~2-6 µops.
  for (const char* app : {"gcc", "gzip", "parser"}) {
    const Trace t = generate_trace(spec_profile(app), 30000);
    const auto s = producer_consumer_distance(t);
    EXPECT_GT(s.mean(), 1.0) << app;
    EXPECT_LT(s.mean(), 10.0) << app;
  }
}

class SpecTraceCharacter : public ::testing::TestWithParam<std::string> {};

TEST_P(SpecTraceCharacter, NarrowDependencyInPlausibleRange) {
  const Trace t = generate_trace(spec_profile(GetParam()), 30000);
  const auto s = narrow_dependency_stats(t);
  // Figure 1 range across SPEC Int: roughly 25-90%.
  EXPECT_GT(s.operands_narrow_dependent.percent(), 15.0);
  EXPECT_LT(s.operands_narrow_dependent.percent(), 95.0);
}

TEST_P(SpecTraceCharacter, CarryMostlyConfined) {
  const Trace t = generate_trace(spec_profile(GetParam()), 30000);
  const auto s = carry_stats(t);
  // Figure 11: substantial confinement for loads.
  if (s.load_confined.den > 100) {
    EXPECT_GT(s.load_confined.percent(), 30.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Spec, SpecTraceCharacter,
                         ::testing::Values("bzip2", "gcc", "gzip", "mcf", "vpr"));

}  // namespace
}  // namespace hcsim
