// Tests for binary trace serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "trace/trace.hpp"
#include "wload/executor.hpp"
#include "wload/profile.hpp"

namespace hcsim {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Trace tiny_trace() {
  WorkloadProfile p;
  p.name = "io-test";
  p.seed = 77;
  p.num_loops = 2;
  return generate_trace(p, 500);
}

TEST(TraceIo, RoundTrip) {
  const Trace original = tiny_trace();
  const std::string path = temp_path("hcsim_roundtrip.trace");
  ASSERT_TRUE(save_trace(original, path));

  Trace loaded;
  ASSERT_TRUE(load_trace(loaded, path));
  EXPECT_EQ(loaded.program.name, original.program.name);
  EXPECT_EQ(loaded.seed, original.seed);
  ASSERT_EQ(loaded.program.uops.size(), original.program.uops.size());
  ASSERT_EQ(loaded.records.size(), original.records.size());
  for (std::size_t i = 0; i < original.program.uops.size(); ++i) {
    EXPECT_EQ(loaded.program.uops[i].opcode, original.program.uops[i].opcode);
    EXPECT_EQ(loaded.program.uops[i].dst, original.program.uops[i].dst);
    EXPECT_EQ(loaded.program.branch_targets[i], original.program.branch_targets[i]);
  }
  for (std::size_t i = 0; i < original.records.size(); ++i) {
    EXPECT_EQ(loaded.records[i].pc, original.records[i].pc);
    EXPECT_EQ(loaded.records[i].result, original.records[i].result);
    EXPECT_EQ(loaded.records[i].mem_addr, original.records[i].mem_addr);
    EXPECT_EQ(loaded.records[i].taken, original.records[i].taken);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails) {
  Trace t;
  EXPECT_FALSE(load_trace(t, "/nonexistent/dir/foo.trace"));
}

TEST(TraceIo, BadMagicRejected) {
  const std::string path = temp_path("hcsim_badmagic.trace");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a trace file at all";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  Trace t;
  EXPECT_FALSE(load_trace(t, path));
  std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileRejected) {
  const Trace original = tiny_trace();
  const std::string path = temp_path("hcsim_trunc.trace");
  ASSERT_TRUE(save_trace(original, path));
  // Truncate to half size.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  Trace t;
  EXPECT_FALSE(load_trace(t, path));
  std::remove(path.c_str());
}

TEST(TraceIo, SavedFilesAreByteStableAcrossRuns) {
  // v3 serializes field by field: no uninitialized struct padding may leak
  // into the file, so two saves of equal traces are byte-identical.
  const std::string pa = temp_path("hcsim_stable_a.trace");
  const std::string pb = temp_path("hcsim_stable_b.trace");
  ASSERT_TRUE(save_trace(tiny_trace(), pa));
  ASSERT_TRUE(save_trace(tiny_trace(), pb));
  std::ifstream fa(pa, std::ios::binary), fb(pb, std::ios::binary);
  const std::string a((std::istreambuf_iterator<char>(fa)),
                      std::istreambuf_iterator<char>());
  const std::string b((std::istreambuf_iterator<char>(fb)),
                      std::istreambuf_iterator<char>());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(TraceIo, CorruptRegisterIdRejected) {
  // An out-of-range register id would index past the pipeline's fixed
  // register-state array; load_trace must refuse the file.
  Trace t = tiny_trace();
  const std::string path = temp_path("hcsim_badreg.trace");
  t.program.uops[0].dst = 200;  // not kRegNone, >= kNumRegs
  ASSERT_TRUE(save_trace(t, path));
  Trace loaded;
  EXPECT_FALSE(load_trace(loaded, path));
  std::remove(path.c_str());
}

TEST(TraceIo, SaveToUnwritablePathFails) {
  EXPECT_FALSE(save_trace(tiny_trace(), "/nonexistent/dir/foo.trace"));
}

TEST(TraceIo, EmptyRecordsAllowed) {
  Trace t = tiny_trace();
  t.records.clear();
  const std::string path = temp_path("hcsim_empty.trace");
  ASSERT_TRUE(save_trace(t, path));
  Trace loaded;
  ASSERT_TRUE(load_trace(loaded, path));
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_EQ(loaded.program.uops.size(), t.program.uops.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hcsim
