// Integration tests for the clustered pipeline model using hand-built
// traces with known dataflow, plus invariants on generated workloads.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "util/narrow.hpp"
#include "wload/executor.hpp"
#include "wload/profile.hpp"

namespace hcsim {
namespace {

// Build a trace directly (program + records) so every value is controlled.
struct TraceBuilder {
  Trace trace;

  u32 emit(StaticUop u, TraceRecord r, u32 target = 0) {
    u.pc = static_cast<u32>(trace.program.uops.size());
    r.pc = u.pc;
    trace.program.uops.push_back(u);
    trace.program.branch_targets.push_back(target);
    trace.records.push_back(r);
    return u.pc;
  }

  void movi(RegId d, u32 imm) {
    StaticUop u;
    u.opcode = Opcode::kMovImm;
    u.dst = d;
    u.has_imm = true;
    u.imm = imm;
    TraceRecord r;
    r.result = imm;
    emit(u, r);
  }

  void add(RegId d, RegId a, RegId b, u32 va, u32 vb) {
    StaticUop u;
    u.opcode = Opcode::kAdd;
    u.dst = d;
    u.srcs = {a, b, kRegNone};
    TraceRecord r;
    r.src_vals = {va, vb, 0};
    r.result = va + vb;
    r.flags_val = va + vb;
    emit(u, r);
  }

  /// Repeat the same record stream n times: models a loop body revisiting
  /// its static µops, which is what lets the predictors warm up.
  void repeat_all(unsigned n) {
    const auto base_records = trace.records;
    for (unsigned i = 1; i < n; ++i)
      trace.records.insert(trace.records.end(), base_records.begin(),
                           base_records.end());
  }

  /// Append one more dynamic instance of an existing static µop.
  void redo(u32 pc, TraceRecord r) {
    r.pc = pc;
    trace.records.push_back(r);
  }
};

MachineConfig baseline() { return monolithic_baseline(); }

TEST(Pipeline, NreadyClassifiesWaitingUopsWithoutTruncation) {
  // Wide-valued independent adds are helper-capable but steer wide; six
  // dispatch per wide cycle against an issue width of three, so some sit
  // ready-but-unissued while the helper cluster idles: textbook NREADY
  // w2n events. The ring-ledger range probe classifies every gap exactly —
  // the old 64-sample stepping loop recorded nothing past its cap, which
  // the truncation counter now makes observable (and must stay zero here).
  TraceBuilder tb;
  tb.movi(kRegEax, 0x123456);  // wide value
  for (int i = 0; i < 40; ++i)
    tb.add(kRegEbx, kRegEax, kRegEax, 0x123456, 0x123456);
  const SimResult r = simulate(helper_machine(steering_888()), tb.trace);
  EXPECT_GT(r.nready_w2n, 0u);
  EXPECT_EQ(r.counters.get("nready_truncations"), 0u);
}

TEST(Pipeline, CommitsEveryUop) {
  TraceBuilder tb;
  tb.movi(kRegEax, 1);
  tb.movi(kRegEbx, 2);
  tb.add(kRegEcx, kRegEax, kRegEbx, 1, 2);
  const SimResult r = simulate(baseline(), tb.trace);
  EXPECT_EQ(r.uops, 3u);
  EXPECT_GT(r.final_tick, 0u);
  EXPECT_EQ(r.counters.get("committed"), 3u);
}

TEST(Pipeline, BaselineUsesNoHelperResources) {
  const Trace t = generate_trace(spec_profile("gcc"), 20000);
  const SimResult r = simulate(baseline(), t);
  EXPECT_EQ(r.to_helper, 0u);
  EXPECT_EQ(r.copies, 0u);
  EXPECT_EQ(r.split_uops, 0u);
  EXPECT_EQ(r.counters.get("issue_helper"), 0u);
  EXPECT_EQ(r.nready_w2n, 0u);
}

TEST(Pipeline, SteeringPartitionInvariant) {
  const Trace t = generate_trace(spec_profile("gcc"), 20000);
  const SimResult r = simulate(helper_machine(steering_ir()), t);
  // Every committed µop ran in exactly one backend.
  EXPECT_EQ(r.to_helper + r.to_wide + r.counters.get("issue_fp"), r.uops);
}

TEST(Pipeline, DeterministicRuns) {
  const Trace t = generate_trace(spec_profile("twolf"), 20000);
  const SimResult a = simulate(helper_machine(steering_ir()), t);
  const SimResult b = simulate(helper_machine(steering_ir()), t);
  EXPECT_EQ(a.final_tick, b.final_tick);
  EXPECT_EQ(a.copies, b.copies);
  EXPECT_EQ(a.to_helper, b.to_helper);
  EXPECT_EQ(a.wp_fatal, b.wp_fatal);
}

TEST(Pipeline, IpcBoundedByMachineWidths) {
  const Trace t = generate_trace(spec_profile("gcc"), 20000);
  const MachineConfig cfg = baseline();
  const SimResult r = simulate(cfg, t);
  EXPECT_LE(r.ipc, static_cast<double>(cfg.commit_width));
  EXPECT_GT(r.ipc, 0.0);
}

TEST(Pipeline, DependentChainSlowerThanIndependentOps) {
  // A chain of dependent adds must take at least one wide cycle each on the
  // baseline; independent adds pack 3 per cycle.
  TraceBuilder chain;
  chain.movi(kRegEax, 1);
  for (int i = 0; i < 60; ++i) chain.add(kRegEax, kRegEax, kRegEax, 1, 1);

  TraceBuilder indep;
  indep.movi(kRegEax, 1);
  for (int i = 0; i < 60; ++i)
    indep.add(static_cast<RegId>(kRegT0 + (i % 6)), kRegEax, kRegEax, 1, 1);

  const SimResult rc = simulate(baseline(), chain.trace);
  const SimResult ri = simulate(baseline(), indep.trace);
  EXPECT_GT(rc.final_tick, ri.final_tick);
}

TEST(Pipeline, HelperAcceleratesNarrowChain) {
  // A dependent narrow chain inside a "loop" (repeated pcs, so the width
  // predictor gains confidence) finishes faster on the 2x-clocked helper.
  TraceBuilder tb;
  tb.movi(kRegEax, 1);
  for (int i = 0; i < 20; ++i) tb.add(kRegEax, kRegEax, kRegEax, 1, 1);
  tb.repeat_all(30);
  const SimResult base = simulate(baseline(), tb.trace);
  const SimResult helper = simulate(helper_machine(steering_888()), tb.trace);
  EXPECT_LT(helper.final_tick, base.final_tick);
  EXPECT_GT(helper.to_helper, 300u);
}

TEST(Pipeline, WideValuesDoNotSteerTo888) {
  TraceBuilder tb;
  tb.movi(kRegEax, 0x10000);  // wide
  for (int i = 0; i < 50; ++i) tb.add(kRegEbx, kRegEax, kRegEax, 0x10000, 0x10000);
  const SimResult r = simulate(helper_machine(steering_888()), tb.trace);
  EXPECT_EQ(r.to_helper, 0u);
}

TEST(Pipeline, CrossClusterDependencyGeneratesCopies) {
  // narrow producers (helper) feeding a wide computation -> copies.
  TraceBuilder tb;
  tb.movi(kRegEax, 3);                                // narrow -> helper
  tb.movi(kRegEbx, 0x123456);                         // wide   -> wide
  tb.add(kRegEax, kRegEax, kRegEax, 3, 3);            // helper (once warm)
  tb.add(kRegEcx, kRegEbx, kRegEax, 0x123456, 6);     // wide, needs eax
  tb.repeat_all(40);
  const SimResult r = simulate(helper_machine(steering_888()), tb.trace);
  EXPECT_GT(r.to_helper, 0u);
  EXPECT_GT(r.copies, 0u);
  EXPECT_GT(r.copies_n2w, 0u);
}

TEST(Pipeline, FatalWidthMispredictionFlushesAndResteers) {
  // Train a pc as narrow, then produce a wide value at the same pc: the µop
  // is steered to the helper on a confident narrow prediction and must be
  // squashed and re-executed wide.
  TraceBuilder tb;
  StaticUop u;
  u.opcode = Opcode::kAdd;
  u.dst = kRegEax;
  u.srcs = {kRegEbx, kRegEcx, kRegNone};
  TraceRecord narrow;
  narrow.src_vals = {1, 2, 0};
  narrow.result = 3;
  narrow.flags_val = 3;
  const u32 pc = tb.emit(u, narrow);
  // 30 narrow instances of the same static µop to build confidence...
  for (int i = 0; i < 30; ++i) tb.redo(pc, narrow);
  // ...then an instance whose result is wide (sources still narrow so the
  // 8-8-8 rule fires on prediction, and the result violates).
  TraceRecord wide;
  wide.src_vals = {100, 200, 0};
  wide.result = 0x12345;
  wide.flags_val = 0x12345;
  tb.redo(pc, wide);

  const SimResult r = simulate(helper_machine(steering_888()), tb.trace);
  EXPECT_GE(r.wp_fatal, 1u);
  EXPECT_GE(r.counters.get("flush_refills"), 1u);
}

TEST(Pipeline, FlushPenaltyCostsTime) {
  // Same trace with and without a width-violating tail instance: the
  // violating version must pay at least a frontend refill.
  auto make = [](bool violate) {
    TraceBuilder tb;
    StaticUop u;
    u.opcode = Opcode::kAdd;
    u.dst = kRegEax;
    u.srcs = {kRegEbx, kRegEcx, kRegNone};
    TraceRecord r;
    r.src_vals = {1, 2, 0};
    r.result = 3;
    const u32 pc = tb.emit(u, r);
    for (int i = 0; i < 30; ++i) tb.redo(pc, r);
    if (violate) r.result = 0x55555;  // wide: fatal in the helper
    tb.redo(pc, r);
    return tb.trace;
  };
  const SimResult rc = simulate(helper_machine(steering_888()), make(false));
  const SimResult rv = simulate(helper_machine(steering_888()), make(true));
  const MachineConfig cfg = helper_machine(steering_888());
  EXPECT_GE(rv.final_tick,
            rc.final_tick + cfg.frontend_depth * cfg.ticks_per_wide_cycle);
}

TEST(Pipeline, BranchMispredictionCostsTime) {
  // A data-dependent 50/50 branch stream vs an always-taken stream.
  auto make = [](bool alternate) {
    TraceBuilder tb;
    StaticUop cmp;
    cmp.opcode = Opcode::kTest;
    cmp.srcs = {kRegEax, kRegEax, kRegNone};
    StaticUop br;
    br.opcode = Opcode::kBranchCond;
    br.srcs = {kRegFlags, kRegNone, kRegNone};
    br.has_imm = true;
    br.imm = kCondEq;
    u32 x = 12345;
    for (int i = 0; i < 300; ++i) {
      TraceRecord rc;
      rc.src_vals = {1, 1, 0};
      rc.flags_val = 1;
      tb.emit(cmp, rc);
      TraceRecord rb;
      x = x * 1103515245 + 12345;
      rb.taken = alternate ? ((x >> 16) & 1) : false;
      tb.emit(br, rb, 0);
    }
    return tb.trace;
  };
  const SimResult predictable = simulate(baseline(), make(false));
  const SimResult random = simulate(baseline(), make(true));
  EXPECT_GT(random.final_tick, predictable.final_tick);
  EXPECT_GT(random.branch_mispredicts, predictable.branch_mispredicts);
}

TEST(Pipeline, RobLimitsInFlightWork) {
  // With a tiny ROB the same trace takes longer (less overlap).
  const Trace t = generate_trace(spec_profile("gcc"), 10000);
  MachineConfig small = baseline();
  small.rob_entries = 8;
  const SimResult rs = simulate(small, t);
  const SimResult rb = simulate(baseline(), t);
  EXPECT_GT(rs.final_tick, rb.final_tick);
}

TEST(Pipeline, NarrowIqThrottlesIssue) {
  const Trace t = generate_trace(spec_profile("gcc"), 10000);
  MachineConfig tiny = baseline();
  tiny.iq_wide = 4;
  const SimResult rt = simulate(tiny, t);
  const SimResult rb = simulate(baseline(), t);
  EXPECT_GT(rt.final_tick, rb.final_tick);
}

TEST(Pipeline, MemoryLatencySlowsExecution) {
  // mcf's pointer chase serializes loads, so cache/memory latency is on the
  // critical path.
  const Trace t = generate_trace(spec_profile("mcf"), 10000);
  MachineConfig slow = baseline();
  slow.mem.dl0.size_bytes = 1024;  // thrash DL0
  slow.mem.ul1.size_bytes = 64 * 1024;
  slow.mem.main_memory_cycles = 2000;
  const SimResult rs = simulate(slow, t);
  const SimResult rb = simulate(baseline(), t);
  EXPECT_GT(rs.final_tick, rb.final_tick);
}

TEST(Pipeline, LrReplicatesByteLoads) {
  const Trace t = generate_trace(spec_profile("gzip"), 30000);
  const SimResult no_lr = simulate(helper_machine(steering_888_br()), t);
  const SimResult lr = simulate(helper_machine(steering_888_br_lr()), t);
  EXPECT_GT(lr.replicated_loads, 0u);
  EXPECT_LT(lr.copies, no_lr.copies);
}

TEST(Pipeline, CrSteersMixedWidthWork) {
  const Trace t = generate_trace(spec_profile("gcc"), 30000);
  const SimResult no_cr = simulate(helper_machine(steering_888_br_lr()), t);
  const SimResult cr = simulate(helper_machine(steering_888_br_lr_cr()), t);
  EXPECT_GT(cr.cr_steered, 0u);
  EXPECT_GT(cr.to_helper, no_cr.to_helper);
}

TEST(Pipeline, CpGeneratesPrefetchesWithMeasuredAccuracy) {
  const Trace t = generate_trace(spec_profile("gcc"), 30000);
  const SimResult cp = simulate(helper_machine(steering_cp()), t);
  EXPECT_GT(cp.copy_prefetches, 0u);
  EXPECT_EQ(cp.cp_useful + cp.cp_wasted, cp.copy_prefetches);
  // The last-value copy predictor should be mostly useful (paper: ~90%).
  EXPECT_GT(static_cast<double>(cp.cp_useful) /
                static_cast<double>(cp.copy_prefetches),
            0.5);
}

TEST(Pipeline, IrSplitsProduceChunksAndCopies) {
  const Trace t = generate_trace(spec_profile("parser"), 30000);
  const SimResult ir = simulate(helper_machine(steering_ir()), t);
  EXPECT_GT(ir.split_uops, 0u);
  EXPECT_EQ(ir.chunk_uops, 4 * ir.split_uops);
}

TEST(Pipeline, IrNodestProducesFewerCopiesThanFullIr) {
  const Trace t = generate_trace(spec_profile("parser"), 30000);
  const SimResult full = simulate(helper_machine(steering_ir()), t);
  const SimResult nodest = simulate(helper_machine(steering_ir_nodest()), t);
  EXPECT_LE(nodest.copies, full.copies);
}

TEST(Pipeline, BrSteersBranchesAndCutsCopies) {
  const Trace t = generate_trace(spec_profile("gcc"), 30000);
  const SimResult p888 = simulate(helper_machine(steering_888()), t);
  const SimResult br = simulate(helper_machine(steering_888_br()), t);
  EXPECT_EQ(p888.br_steered, 0u);
  EXPECT_GT(br.br_steered, 0u);
  EXPECT_LT(br.copy_frac(), p888.copy_frac());
}

TEST(Pipeline, ClockRatioOneRemovesHelperSpeedAdvantage) {
  TraceBuilder tb;
  tb.movi(kRegEax, 1);
  for (int i = 0; i < 15; ++i) tb.add(kRegEax, kRegEax, kRegEax, 1, 1);
  tb.repeat_all(25);
  MachineConfig same_clock = helper_machine(steering_888());
  same_clock.ticks_per_wide_cycle = 1;
  MachineConfig fast = helper_machine(steering_888());
  const SimResult r1 = simulate(same_clock, tb.trace);
  const SimResult r2 = simulate(fast, tb.trace);
  // 2x helper clock must beat 1x on a dependence-bound narrow chain.
  // (final_tick is in ticks of different length; compare wide cycles.)
  EXPECT_LT(r2.wide_cycles, r1.wide_cycles);
}


TEST(Pipeline, BlockSplittingCutsCopyBacksVsFullIr) {
  // Section 3.7's proposed extension: sending whole blocks of split work to
  // the helper avoids the per-split 4-copy result prefetch, so at equal or
  // higher split counts the block variant generates fewer copies per split.
  const Trace t = generate_trace(spec_profile("parser"), 30000);
  const SimResult full = simulate(helper_machine(steering_ir()), t);
  const SimResult block = simulate(helper_machine(steering_ir_block()), t);
  ASSERT_GT(full.split_uops, 0u);
  ASSERT_GT(block.split_uops, 0u);
  const double full_cps = static_cast<double>(full.copies) /
                          static_cast<double>(full.split_uops);
  const double block_cps = static_cast<double>(block.copies) /
                           static_cast<double>(block.split_uops);
  EXPECT_LT(block_cps, full_cps);
}

TEST(Pipeline, BlockSplittingRecruitsExtraSplits) {
  const Trace t = generate_trace(spec_profile("parser"), 30000);
  const SimResult full = simulate(helper_machine(steering_ir()), t);
  const SimResult block = simulate(helper_machine(steering_ir_block()), t);
  EXPECT_GE(block.split_uops + block.counters.get("block_splits"),
            full.split_uops);
}

TEST(Pipeline, SpeedupVsComputesRatio) {
  SimResult base, fast;
  base.final_tick = 2000;
  fast.final_tick = 1000;
  EXPECT_DOUBLE_EQ(fast.speedup_vs(base), 2.0);
}

TEST(Pipeline, EmptyTraceIsHarmless) {
  Trace t;
  t.program.name = "empty";
  t.program.uops.push_back(StaticUop{});
  t.program.branch_targets.push_back(0);
  const SimResult r = simulate(baseline(), t);
  EXPECT_EQ(r.uops, 0u);
  EXPECT_EQ(r.final_tick, 0u);
}

}  // namespace
}  // namespace hcsim
