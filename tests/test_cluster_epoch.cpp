// Differential tests for the fused per-cluster epoch engine.
//
// ClusterEpoch replaces the SlotSchedule + QueueTracker + SlotSchedule
// triple on the pipeline hot path; the legacy structures stay behind the
// HCSIM_EPOCH=0 kill switch and double here as the reference model. The
// fuzz drives both through long randomized sequences shaped like the
// pipeline's actual usage — mostly-forward dispatch ticks with occasional
// far jumps, source-ready ticks that sometimes land far in the future,
// interleaved occupancy probes, copy-port reservations and NREADY range
// probes — and demands tick-exact agreement on every reply. The suite runs
// under the sanitizer CI job, so the fuzz also shakes out any OOB in the
// engine's ring/bitmap arithmetic.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster_epoch.hpp"
#include "util/rng.hpp"
#include "util/slot_schedule.hpp"

namespace hcsim {
namespace {

/// The legacy triple with the exact call sequence pipeline.cpp used.
struct ReferenceCluster {
  SlotSchedule slots;
  QueueTracker queue;
  SlotSchedule copy;

  ReferenceCluster(unsigned width, unsigned qsize, unsigned copy_ports,
                   Tick cycle_ticks)
      : slots(width, cycle_ticks),
        queue(qsize),
        copy(copy_ports > 0 ? copy_ports : 1, cycle_ticks) {}

  ClusterEpoch::Dispatched dispatch(Tick from, Tick src_ready) {
    const Tick qdisp = queue.earliest_dispatch(from);
    const Tick ready = std::max(src_ready, qdisp);
    const Tick issue = slots.reserve(ready);
    queue.add(issue);
    return {qdisp, ready, issue};
  }
};

struct FuzzConfig {
  unsigned width;
  unsigned qsize;
  unsigned copy_ports;
  Tick cycle_ticks;
};

void run_fuzz(const FuzzConfig& cfg, u64 seed, int ops) {
  ClusterEpoch engine;
  engine.init(cfg.width, cfg.qsize, cfg.copy_ports, cfg.cycle_ticks);
  ReferenceCluster ref(cfg.width, cfg.qsize, cfg.copy_ports, cfg.cycle_ticks);

  Rng rng(seed);
  Tick cursor = 0;
  for (int op = 0; op < ops; ++op) {
    const u64 kind = rng.below(10);
    // The dispatch tick creeps forward like the frontend does, with
    // occasional far jumps (drained program phases) and small backsteps
    // (the flush/re-steer path re-probes at an older tick).
    const u64 step = rng.below(20) == 0 ? rng.below(100000) : rng.below(4);
    const Tick back = rng.below(8) == 0 ? rng.below(32) : 0;
    cursor += step;
    const Tick from = cursor > back ? cursor - back : 0;

    if (kind < 7) {
      // Source operands are usually near the dispatch tick but sometimes
      // far in the future (a load miss feeding this µop).
      const Tick src_ready =
          from + (rng.below(10) == 0 ? rng.below(200000) : rng.below(16));
      const ClusterEpoch::Dispatched got = engine.dispatch(from, src_ready);
      const ClusterEpoch::Dispatched want = ref.dispatch(from, src_ready);
      ASSERT_EQ(got.qdisp, want.qdisp) << "op " << op;
      ASSERT_EQ(got.ready, want.ready) << "op " << op;
      ASSERT_EQ(got.issue, want.issue) << "op " << op;
    } else if (kind == 7) {
      ASSERT_EQ(engine.occupancy(from), ref.queue.occupancy(from))
          << "op " << op;
    } else if (kind == 8 && cfg.copy_ports > 0) {
      const Tick ready = from + rng.below(8);
      ASSERT_EQ(engine.reserve_copy(ready), ref.copy.reserve(ready))
          << "op " << op;
    } else {
      const Tick until = from + 1 + rng.below(64);
      const SlotRangeProbe got = engine.free_issue_slot_in(from, until);
      const SlotRangeProbe want = ref.slots.free_slot_in(from, until);
      ASSERT_EQ(got.free, want.free) << "op " << op;
      ASSERT_EQ(got.truncated, want.truncated) << "op " << op;
    }
  }
  ASSERT_EQ(engine.issue_reservations(), ref.slots.reservations());
}

TEST(ClusterEpochFuzz, MatchesLegacyTripleAcrossGeometries) {
  // Widths, queue sizes and clock ratios cover the stock configurations
  // (wide 2-tick cycles, helper 1-tick) plus the non-power-of-two clock
  // the clock-ratio ablation uses, which exercises the divide path.
  int seed = 0;
  for (unsigned width : {1u, 2u, 3u}) {
    for (unsigned qsize : {2u, 4u, 32u}) {
      for (Tick cycle_ticks : {Tick{1}, Tick{2}, Tick{3}}) {
        for (unsigned copy_ports : {0u, 2u}) {
          run_fuzz({width, qsize, copy_ports, cycle_ticks},
                   /*seed=*/0x9E3779B9u + seed++, /*ops=*/20000);
          if (HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(ClusterEpochFuzz, SaturatedQueueLongRun) {
  // Pin the dispatch tick to a slow crawl with large source delays so the
  // queue spends most of the run full: the earliest_dispatch_full walk and
  // its (answer, slack) cache are the trickiest shared logic.
  run_fuzz({2, 2, 0, Tick{2}}, /*seed=*/0xF0752ull, /*ops=*/60000);
}

TEST(ClusterEpoch, DispatchMatchesLegacyStepByStep) {
  // A hand-checked miniature of the fused call: width 1, queue 1 — the
  // second dispatch must wait for the first entry's departure.
  ClusterEpoch e;
  e.init(/*width=*/1, /*qsize=*/1, /*copy_ports=*/0, /*cycle_ticks=*/1);
  const auto a = e.dispatch(/*from=*/0, /*src_ready=*/10);
  EXPECT_EQ(a.qdisp, 0u);
  EXPECT_EQ(a.ready, 10u);
  EXPECT_EQ(a.issue, 10u);
  const auto b = e.dispatch(/*from=*/1, /*src_ready=*/1);
  EXPECT_EQ(b.qdisp, 10u);  // queue of one: full until the first issues
  EXPECT_EQ(b.ready, 10u);
  EXPECT_EQ(b.issue, 11u);  // issue slot at 10 is taken by the first µop
}

TEST(ClusterEpoch, OccupancyDrainsAtIssueTicks) {
  ClusterEpoch e;
  e.init(2, 4, 0, Tick{1});
  (void)e.dispatch(0, 10);  // issues at 10
  (void)e.dispatch(0, 12);  // issues at 12
  EXPECT_EQ(e.occupancy(5), 2u);
  EXPECT_EQ(e.occupancy(10), 1u);
  EXPECT_EQ(e.occupancy(12), 0u);
}

}  // namespace
}  // namespace hcsim
