// Tests for the steering policies (the paper's Section 3 decision rules).
#include <gtest/gtest.h>

#include "steer/steering.hpp"

namespace hcsim {
namespace {

StaticUop alu_uop(Opcode op = Opcode::kAdd, bool with_dst = true) {
  StaticUop u;
  u.opcode = op;
  u.dst = with_dst ? kRegEax : kRegNone;
  u.srcs = {kRegEbx, kRegEcx, kRegNone};
  return u;
}

SteerContext narrow_ctx(const StaticUop& u) {
  SteerContext ctx;
  ctx.uop = &u;
  ctx.helper_capable = opcode_info(u.opcode).helper_capable;
  ctx.all_srcs_narrow = true;
  ctx.result_pred_narrow = true;
  ctx.result_confident = true;
  return ctx;
}

TEST(Steering, BaselineAlwaysWide) {
  SteeringPolicy p(steering_baseline());
  const StaticUop u = alu_uop();
  EXPECT_EQ(p.decide(narrow_ctx(u)), SteerDecision::kWide);
}

TEST(Steering, P888SteersAllNarrow) {
  SteeringPolicy p(steering_888());
  const StaticUop u = alu_uop();
  EXPECT_EQ(p.decide(narrow_ctx(u)), SteerDecision::kHelper);
}

TEST(Steering, P888RequiresNarrowSources) {
  SteeringPolicy p(steering_888());
  const StaticUop u = alu_uop();
  SteerContext ctx = narrow_ctx(u);
  ctx.all_srcs_narrow = false;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
}

TEST(Steering, P888RequiresConfidence) {
  // Low-confidence narrow predictions stay wide — this is the 2.11% -> 0.83%
  // fatal-misprediction fix of Section 3.2.
  SteeringPolicy p(steering_888());
  const StaticUop u = alu_uop();
  SteerContext ctx = narrow_ctx(u);
  ctx.result_confident = false;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
}

TEST(Steering, P888RequiresNarrowResultOnlyIfDstExists) {
  SteeringPolicy p(steering_888());
  const StaticUop u = alu_uop(Opcode::kCmp, /*with_dst=*/false);
  SteerContext ctx = narrow_ctx(u);
  ctx.result_pred_narrow = false;  // irrelevant without a destination
  ctx.result_confident = false;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kHelper);
}

TEST(Steering, HelperIncapableOpsStayWide) {
  SteeringPolicy p(steering_888());
  const StaticUop mul = alu_uop(Opcode::kMul);
  EXPECT_EQ(p.decide(narrow_ctx(mul)), SteerDecision::kWide);
  const StaticUop fp = alu_uop(Opcode::kFpAdd);
  EXPECT_EQ(p.decide(narrow_ctx(fp)), SteerDecision::kWide);
}

TEST(Steering, BranchesStayWideWithout_BR) {
  SteeringPolicy p(steering_888());
  StaticUop br;
  br.opcode = Opcode::kBranchCond;
  br.srcs = {kRegFlags, kRegNone, kRegNone};
  SteerContext ctx = narrow_ctx(br);
  ctx.flags_producer_in_helper = true;
  ctx.frontend_resolvable = true;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
}

TEST(Steering, BrFollowsHelperFlagsProducer) {
  SteeringPolicy p(steering_888_br());
  StaticUop br;
  br.opcode = Opcode::kBranchCond;
  br.srcs = {kRegFlags, kRegNone, kRegNone};
  SteerContext ctx = narrow_ctx(br);
  ctx.frontend_resolvable = true;
  ctx.flags_producer_in_helper = true;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kHelper);
  ctx.flags_producer_in_helper = false;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
}

TEST(Steering, BrNeedsFrontendResolvableTarget) {
  SteeringPolicy p(steering_888_br());
  StaticUop br;
  br.opcode = Opcode::kBranchCond;
  SteerContext ctx = narrow_ctx(br);
  ctx.flags_producer_in_helper = true;
  ctx.frontend_resolvable = false;  // e.g. an indirect branch
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
}

TEST(Steering, CrSteersCarryConfinedMixedWidth) {
  SteeringPolicy p(steering_888_br_lr_cr());
  const StaticUop u = alu_uop();
  SteerContext ctx = narrow_ctx(u);
  ctx.all_srcs_narrow = false;  // one wide source
  ctx.cr_shape = true;
  ctx.carry_pred_confined = true;
  ctx.carry_confident = true;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kHelperCr);
}

TEST(Steering, CrNeedsConfidentConfinementPrediction) {
  SteeringPolicy p(steering_888_br_lr_cr());
  const StaticUop u = alu_uop();
  SteerContext ctx = narrow_ctx(u);
  ctx.all_srcs_narrow = false;
  ctx.cr_shape = true;
  ctx.carry_pred_confined = true;
  ctx.carry_confident = false;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
  ctx.carry_confident = true;
  ctx.carry_pred_confined = false;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
}

TEST(Steering, CrDisabledInEarlierSchemes) {
  SteeringPolicy p(steering_888_br_lr());
  const StaticUop u = alu_uop();
  SteerContext ctx = narrow_ctx(u);
  ctx.all_srcs_narrow = false;
  ctx.cr_shape = true;
  ctx.carry_pred_confined = true;
  ctx.carry_confident = true;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
}

TEST(Steering, IrSplitsOnImbalance) {
  SteeringPolicy p(steering_ir());
  const StaticUop u = alu_uop();
  SteerContext ctx = narrow_ctx(u);
  ctx.all_srcs_narrow = false;  // wide op, not otherwise steerable
  ctx.iq_occ_wide = 30;
  ctx.iq_size_wide = 32;
  ctx.iq_occ_helper = 0;
  ctx.iq_size_helper = 32;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kSplit);
}

TEST(Steering, IrRespectsTriggerThresholds) {
  SteeringPolicy p(steering_ir());
  const StaticUop u = alu_uop();
  SteerContext ctx = narrow_ctx(u);
  ctx.all_srcs_narrow = false;
  ctx.iq_occ_wide = 2;  // wide not congested
  ctx.iq_occ_helper = 0;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
  ctx.iq_occ_wide = 30;
  ctx.iq_occ_helper = 30;  // helper busy
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
}

TEST(Steering, IrNodestSplitsOnlyDestlessUops) {
  SteeringPolicy p(steering_ir_nodest());
  SteerContext ctx;
  const StaticUop with_dst = alu_uop(Opcode::kAdd, true);
  const StaticUop no_dst = alu_uop(Opcode::kCmp, false);
  ctx = narrow_ctx(with_dst);
  ctx.all_srcs_narrow = false;
  ctx.iq_occ_wide = 30;
  ctx.iq_occ_helper = 0;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
  ctx = narrow_ctx(no_dst);
  ctx.all_srcs_narrow = false;
  ctx.iq_occ_wide = 30;
  ctx.iq_occ_helper = 0;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kSplit);
}

TEST(Steering, IrNeverSplitsMemoryOrLongLatencyOps) {
  SteeringPolicy p(steering_ir());
  for (Opcode op : {Opcode::kLoad, Opcode::kStore, Opcode::kMul, Opcode::kDiv}) {
    StaticUop u = alu_uop(op, op != Opcode::kStore);
    SteerContext ctx = narrow_ctx(u);
    ctx.all_srcs_narrow = false;
    ctx.result_pred_narrow = false;
    ctx.iq_occ_wide = 30;
    ctx.iq_occ_helper = 0;
    EXPECT_NE(p.decide(ctx), SteerDecision::kSplit) << opcode_info(op).mnemonic;
  }
}

TEST(Steering, OverloadThrottleSendsNarrowWorkWide) {
  SteeringPolicy p(steering_ir());  // throttle enabled with IR
  const StaticUop u = alu_uop();
  SteerContext ctx = narrow_ctx(u);
  ctx.iq_occ_helper = 32;
  ctx.iq_size_helper = 32;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kWide);
  ctx.iq_occ_helper = 0;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kHelper);
}

TEST(Steering, ThrottleDisabledInNonIrSchemes) {
  SteeringPolicy p(steering_cp());
  const StaticUop u = alu_uop();
  SteerContext ctx = narrow_ctx(u);
  ctx.iq_occ_helper = 32;
  ctx.iq_size_helper = 32;
  EXPECT_EQ(p.decide(ctx), SteerDecision::kHelper);
}


TEST(Steering, IrBlockConfig) {
  const SteeringConfig c = steering_ir_block();
  EXPECT_TRUE(c.ir);
  EXPECT_TRUE(c.ir_block);
  EXPECT_GT(c.ir_block_len, 0u);
  EXPECT_EQ(c.describe(), "8_8_8+BR+LR+CR+CP+IR(block)");
}

TEST(Steering, ConfigDescriptions) {
  EXPECT_EQ(steering_baseline().describe(), "baseline");
  EXPECT_EQ(steering_888().describe(), "8_8_8");
  EXPECT_EQ(steering_888_br().describe(), "8_8_8+BR");
  EXPECT_EQ(steering_888_br_lr().describe(), "8_8_8+BR+LR");
  EXPECT_EQ(steering_888_br_lr_cr().describe(), "8_8_8+BR+LR+CR");
  EXPECT_EQ(steering_cp().describe(), "8_8_8+BR+LR+CR+CP");
  EXPECT_EQ(steering_ir().describe(), "8_8_8+BR+LR+CR+CP+IR");
  EXPECT_EQ(steering_ir_nodest().describe(), "8_8_8+BR+LR+CR+CP+IR(nodest)");
}

TEST(Steering, NameParsingRoundTrips) {
  // Every canonical scheme parses back from its describe() string.
  const SteeringConfig schemes[] = {
      steering_baseline(),      steering_888(),       steering_888_br(),
      steering_888_br_lr(),     steering_888_br_lr_cr(), steering_cp(),
      steering_ir(),            steering_ir_nodest(), steering_ir_block()};
  for (const SteeringConfig& c : schemes) {
    const auto parsed = steering_from_name(c.describe());
    ASSERT_TRUE(parsed.has_value()) << c.describe();
    EXPECT_EQ(parsed->describe(), c.describe());
    EXPECT_EQ(parsed->helper_enabled, c.helper_enabled);
    EXPECT_EQ(parsed->br, c.br);
    EXPECT_EQ(parsed->lr, c.lr);
    EXPECT_EQ(parsed->cr, c.cr);
    EXPECT_EQ(parsed->cp, c.cp);
    EXPECT_EQ(parsed->ir, c.ir);
    EXPECT_EQ(parsed->ir_nodest_only, c.ir_nodest_only);
    EXPECT_EQ(parsed->ir_block, c.ir_block);
  }
  // Skipping a rung works ("+BR" without "+LR" etc.).
  const auto br_cr = steering_from_name("8_8_8+BR+CR");
  ASSERT_TRUE(br_cr.has_value());
  EXPECT_TRUE(br_cr->br && br_cr->cr);
  EXPECT_FALSE(br_cr->lr);
  // Malformed names are rejected, not guessed at.
  EXPECT_FALSE(steering_from_name("").has_value());
  EXPECT_FALSE(steering_from_name("8_8_8+XX").has_value());
  EXPECT_FALSE(steering_from_name("8_8_8+LR+BR").has_value());  // wrong order
  EXPECT_FALSE(steering_from_name("8_8_8+IR+CP").has_value());
}

TEST(Steering, CumulativeConfigsStackFeatures) {
  EXPECT_FALSE(steering_888().br);
  EXPECT_TRUE(steering_888_br().br);
  EXPECT_TRUE(steering_888_br_lr().lr);
  EXPECT_FALSE(steering_888_br_lr().cr);
  EXPECT_TRUE(steering_888_br_lr_cr().cr);
  EXPECT_TRUE(steering_cp().cp);
  EXPECT_TRUE(steering_ir().ir);
  EXPECT_FALSE(steering_ir().ir_nodest_only);
  EXPECT_TRUE(steering_ir_nodest().ir_nodest_only);
}

}  // namespace
}  // namespace hcsim
