// Golden determinism: the hot-path rewrite (enum-indexed counters,
// ring-buffer schedulers, streaming traces) must hold every paper statistic
// bit-identical to the pre-refactor simulator. The embedded CSVs were
// captured from the seed implementation (std::map counters + std::set
// ledgers); the fig06/fig12/rv named sweeps must reproduce them
// byte-for-byte, serially and on the thread pool.
#include <gtest/gtest.h>

#include "bbcache/bb_cache.hpp"
#include "core/cluster_epoch.hpp"
#include "core/pipeline.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "wload/executor.hpp"
#include "wload/profile.hpp"

#include "golden_sweep_data.inc"

namespace hcsim::exp {
namespace {

constexpr u64 kGoldenTraceLen = 4000;  // the length the goldens were captured at

std::string sweep_csv(const std::string& name, unsigned threads) {
  auto spec = find_sweep(name);
  EXPECT_TRUE(spec.has_value()) << name;
  spec->trace_lens = {kGoldenTraceLen};
  RunOptions opts;
  opts.threads = threads;
  return to_csv(run_sweep(*spec, opts));
}

TEST(GoldenSweeps, Fig06MatchesSeedSerial) {
  EXPECT_EQ(sweep_csv("fig06", 1), kGolden_fig06);
}

TEST(GoldenSweeps, Fig06MatchesSeedThreaded) {
  EXPECT_EQ(sweep_csv("fig06", 4), kGolden_fig06);
}

TEST(GoldenSweeps, Fig12MatchesSeedSerial) {
  EXPECT_EQ(sweep_csv("fig12", 1), kGolden_fig12);
}

TEST(GoldenSweeps, Fig12MatchesSeedThreaded) {
  EXPECT_EQ(sweep_csv("fig12", 4), kGolden_fig12);
}

TEST(GoldenSweeps, RvMatchesSeedSerial) {
  EXPECT_EQ(sweep_csv("rv", 1), kGolden_rv);
}

TEST(GoldenSweeps, RvMatchesSeedThreaded) {
  EXPECT_EQ(sweep_csv("rv", 4), kGolden_rv);
}

/// RAII decode-cache disable (restores the env-derived default on exit).
struct BbCacheOff {
  BbCacheOff() { bbcache_set_enabled(false); }
  ~BbCacheOff() { bbcache_reset_enabled(); }
};

// The decode cache must be output-invisible: with template replay disabled
// (every record re-cracked, the HCSIM_BBCACHE=0 path) the goldens still
// reproduce byte-for-byte — cache-on and cache-off runs share feed_record,
// so any divergence is a template purity bug.
TEST(GoldenSweeps, Fig06MatchesSeedCacheDisabled) {
  BbCacheOff off;
  EXPECT_EQ(sweep_csv("fig06", 1), kGolden_fig06);
}

TEST(GoldenSweeps, Fig12MatchesSeedCacheDisabled) {
  BbCacheOff off;
  EXPECT_EQ(sweep_csv("fig12", 1), kGolden_fig12);
}

TEST(GoldenSweeps, RvMatchesSeedCacheDisabledThreaded) {
  BbCacheOff off;
  EXPECT_EQ(sweep_csv("rv", 4), kGolden_rv);
}

// Cross-check without goldens: the cumulative sweep (every steering-ladder
// rung, so every invalidation edge between configs) emits identical CSVs
// with the cache enabled and disabled.
TEST(GoldenSweeps, CumulativeCacheOnOffIdentical) {
  const std::string with_cache = sweep_csv("cumulative", 1);
  BbCacheOff off;
  EXPECT_EQ(sweep_csv("cumulative", 1), with_cache);
}

/// RAII epoch-engine disable: routes every resource probe through the
/// legacy SlotSchedule/QueueTracker structures (the HCSIM_EPOCH=0 path).
struct EpochOff {
  EpochOff() { epoch_set_enabled(false); }
  ~EpochOff() { epoch_reset_enabled(); }
};

// The fused per-cluster epoch engine must be output-invisible: with it
// disabled the goldens still reproduce byte-for-byte, so any divergence
// between the engine and the legacy triple is a modeling bug, not a
// "new baseline".
TEST(GoldenSweeps, Fig06MatchesSeedEpochDisabled) {
  EpochOff off;
  EXPECT_EQ(sweep_csv("fig06", 1), kGolden_fig06);
}

TEST(GoldenSweeps, Fig12MatchesSeedEpochDisabled) {
  EpochOff off;
  EXPECT_EQ(sweep_csv("fig12", 1), kGolden_fig12);
}

TEST(GoldenSweeps, RvMatchesSeedEpochDisabledThreaded) {
  EpochOff off;
  EXPECT_EQ(sweep_csv("rv", 4), kGolden_rv);
}

TEST(GoldenSweeps, CumulativeEpochOnOffIdentical) {
  const std::string with_engine = sweep_csv("cumulative", 1);
  EpochOff off;
  EXPECT_EQ(sweep_csv("cumulative", 1), with_engine);
}

// The NREADY range probes behind the goldens must classify every gap
// exactly: a nonzero truncation count means the GC horizon clipped a probe
// and the imbalance statistics silently degraded to a lower bound. Both
// engines share the window constant, so both must report zero.
TEST(GoldenSweeps, HelperSweepHasNoNreadyTruncation) {
  const Trace t = generate_trace(spec_profile("gcc"), 30000);
  const SimResult with_engine = simulate(helper_machine(steering_888()), t);
  EXPECT_EQ(with_engine.counters.get("nready_truncations"), 0u);
  EpochOff off;
  const SimResult legacy = simulate(helper_machine(steering_888()), t);
  EXPECT_EQ(legacy.counters.get("nready_truncations"), 0u);
  EXPECT_EQ(legacy.final_tick, with_engine.final_tick);
}

}  // namespace
}  // namespace hcsim::exp
