// src/svc — framed protocol, sweep service, and the daemon loop.
//
// The robustness contract under test: semantic errors (unknown sweep,
// undecodable payload) get a kError reply on a connection that stays
// usable; framing errors drop the connection but never the daemon; a
// client departing mid-job cancels the job without killing the daemon.
// And the payoff property: a sweep run through the service is
// byte-identical to the same sweep run in-process.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "bus/shm_ring.hpp"
#include "bus/trace_bus.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "sample/record_stream.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"

namespace hcsim::svc {
namespace {

std::string test_socket_path(const char* tag) {
  return "/tmp/hcsimd_test_" + std::string(tag) + "_" + std::to_string(::getpid()) +
         ".sock";
}

/// JSON reports embed the run's wall time (the one non-deterministic field);
/// drop those lines so the rest can be compared byte-for-byte.
std::string strip_wall_seconds(const std::string& json) {
  std::string out;
  std::size_t pos = 0;
  while (pos < json.size()) {
    std::size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    const std::string line = json.substr(pos, eol - pos);
    if (line.find("wall_seconds") == std::string::npos) out += line + "\n";
    pos = eol + 1;
  }
  return out;
}

// --- framing ------------------------------------------------------------------

TEST(Protocol, FrameRoundTrip) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::vector<u8> payload = {1, 2, 3, 250, 0, 7};
  ASSERT_TRUE(write_frame(fds[0], kPing, payload));
  Frame f;
  std::string err;
  ASSERT_TRUE(read_frame(fds[1], f, kMaxRequestFrame, &err)) << err;
  EXPECT_EQ(f.type, kPing);
  EXPECT_EQ(f.payload, payload);

  // Empty payload is a valid frame (len == 1, just the type byte).
  ASSERT_TRUE(write_frame(fds[0], kPong, {}));
  ASSERT_TRUE(read_frame(fds[1], f, kMaxRequestFrame, &err)) << err;
  EXPECT_EQ(f.type, kPong);
  EXPECT_TRUE(f.payload.empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Protocol, OversizedAndZeroLengthFramesAreRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // len = 0: below the [1, max] window.
  const u32 zero = 0;
  ASSERT_EQ(::send(fds[0], &zero, sizeof(zero), 0), (ssize_t)sizeof(zero));
  Frame f;
  std::string err;
  EXPECT_FALSE(read_frame(fds[1], f, kMaxRequestFrame, &err));
  EXPECT_FALSE(err.empty());

  // len beyond max_frame: rejected before any allocation.
  const u32 huge = kMaxRequestFrame + 1;
  ASSERT_EQ(::send(fds[0], &huge, sizeof(huge), 0), (ssize_t)sizeof(huge));
  err.clear();
  EXPECT_FALSE(read_frame(fds[1], f, kMaxRequestFrame, &err));
  EXPECT_FALSE(err.empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Protocol, CleanEofIsNotAnError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  Frame f;
  std::string err = "sentinel";
  EXPECT_FALSE(read_frame(fds[1], f, kMaxRequestFrame, &err));
  EXPECT_TRUE(err.empty());  // EOF, not corruption
  ::close(fds[1]);
}

TEST(Protocol, SweepRequestRoundTrip) {
  SweepRequest req;
  req.sweep = "fig06";
  req.trace_len = 123456;
  req.seeds = {7, 11, 13};
  req.sampled = true;
  req.warmup = 2000;
  req.measure = 8000;
  req.period = 50000;
  req.max_windows = 12;
  req.want_csv = true;

  std::vector<u8> buf;
  encode(buf, req);
  wire::Reader r(buf.data(), buf.size());
  SweepRequest back;
  ASSERT_TRUE(decode(r, back));
  EXPECT_EQ(back.version, req.version);
  EXPECT_EQ(back.sweep, req.sweep);
  EXPECT_EQ(back.trace_len, req.trace_len);
  EXPECT_EQ(back.seeds, req.seeds);
  EXPECT_EQ(back.sampled, req.sampled);
  EXPECT_EQ(back.warmup, req.warmup);
  EXPECT_EQ(back.measure, req.measure);
  EXPECT_EQ(back.period, req.period);
  EXPECT_EQ(back.max_windows, req.max_windows);
  EXPECT_EQ(back.want_csv, req.want_csv);
  EXPECT_EQ(back.want_json, req.want_json);

  // Truncation at every prefix length must be detected, never read OOB.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    wire::Reader short_r(buf.data(), cut);
    SweepRequest ignored;
    EXPECT_FALSE(decode(short_r, ignored)) << "cut at " << cut;
  }
}

TEST(Protocol, SweepResponseRoundTrip) {
  SweepResponse resp;
  resp.summary = "summary text\nwith rows";
  resp.csv = "a,b\n1,2\n";
  resp.json = "{}";
  resp.n_points = 42;
  resp.threads_used = 3;
  resp.wall_ms = 777;

  std::vector<u8> buf;
  encode(buf, resp);
  wire::Reader r(buf.data(), buf.size());
  SweepResponse back;
  ASSERT_TRUE(decode(r, back));
  EXPECT_EQ(back.summary, resp.summary);
  EXPECT_EQ(back.csv, resp.csv);
  EXPECT_EQ(back.json, resp.json);
  EXPECT_EQ(back.n_points, resp.n_points);
  EXPECT_EQ(back.threads_used, resp.threads_used);
  EXPECT_EQ(back.wall_ms, resp.wall_ms);
}

TEST(Protocol, SweepListRoundTrip) {
  const std::vector<std::string> names = {"fig06", "smoke", "rv"};
  std::vector<u8> buf;
  encode_sweep_list(buf, names);
  wire::Reader r(buf.data(), buf.size());
  std::vector<std::string> back;
  ASSERT_TRUE(decode_sweep_list(r, back));
  EXPECT_EQ(back, names);
}

// --- service ------------------------------------------------------------------

TEST(SweepService, UnknownSweepIsAnErrorNotAnAbort) {
  SweepService service(/*threads=*/1);
  SweepRequest req;
  req.sweep = "no_such_sweep";
  SweepResponse resp;
  std::string error;
  EXPECT_FALSE(service.run(req, nullptr, resp, error));
  EXPECT_NE(error.find("no_such_sweep"), std::string::npos) << error;
}

TEST(SweepService, BadVersionAndBadSampleSpecAreErrors) {
  SweepService service(/*threads=*/1);
  SweepRequest req;
  req.sweep = "smoke";
  req.version = 99;
  SweepResponse resp;
  std::string error;
  EXPECT_FALSE(service.run(req, nullptr, resp, error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  req.version = kProtocolVersion;
  req.sampled = true;
  req.warmup = 5000;
  req.measure = 5000;
  req.period = 100;  // < warmup + measure: inconsistent schedule
  error.clear();
  EXPECT_FALSE(service.run(req, nullptr, resp, error));
  EXPECT_FALSE(error.empty());
}

TEST(SweepService, CancelledJobReportsCancelled) {
  SweepService service(/*threads=*/1);
  SweepRequest req;
  req.sweep = "smoke";
  SweepResponse resp;
  std::string error;
  EXPECT_FALSE(service.run(req, [] { return true; }, resp, error));
  EXPECT_EQ(error, "cancelled");
}

TEST(SweepService, MatchesInProcessSweepByteForByte) {
  SweepRequest req;
  req.sweep = "smoke";
  req.want_csv = true;
  req.want_json = true;
  SweepService service(/*threads=*/1);
  SweepResponse resp;
  std::string error;
  ASSERT_TRUE(service.run(req, nullptr, resp, error)) << error;

  const auto spec = exp::find_sweep("smoke");
  ASSERT_TRUE(spec.has_value());
  exp::RunOptions opts;
  const exp::SweepResult local = exp::run_sweep(*spec, opts);
  EXPECT_EQ(resp.summary, exp::render_summary(local));
  EXPECT_EQ(resp.csv, exp::to_csv(local));
  EXPECT_EQ(strip_wall_seconds(resp.json), strip_wall_seconds(exp::to_json(local)));
  EXPECT_EQ(resp.n_points, local.points.size());
}

TEST(SweepService, ResolveWorkloadNames) {
  WorkloadProfile profile;
  std::string error;
  ASSERT_TRUE(resolve_workload("rv:crc32", profile, error)) << error;
  EXPECT_EQ(profile.rv_kernel, "crc32");
  ASSERT_TRUE(resolve_workload("gcc", profile, error)) << error;
  EXPECT_EQ(profile.name, "gcc");
  EXPECT_FALSE(resolve_workload("rv:nope", profile, error));
  EXPECT_FALSE(resolve_workload("not_a_profile", profile, error));
}

// --- daemon -------------------------------------------------------------------

/// Daemon running on a background thread for client round-trip tests.
/// `base` overrides DaemonOptions defaults (shm_dir, timeouts); socket path
/// and thread count are always set by the fixture.
class DaemonFixture {
 public:
  explicit DaemonFixture(const char* tag, DaemonOptions base = {})
      : path_(test_socket_path(tag)) {
    thread_ = std::thread([this, base] {
      DaemonOptions opts = base;
      opts.socket_path = path_;
      opts.threads = 1;
      run_daemon(opts);
    });
    // The socket appears once the daemon is listening.
    for (int i = 0; i < 500 && ::access(path_.c_str(), F_OK) != 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  ~DaemonFixture() {
    if (thread_.joinable()) {
      std::string error;
      Client c = Client::connect(path_);
      if (c.ok()) c.shutdown(error);
      thread_.join();
    }
    ::unlink(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::thread thread_;
};

TEST(Daemon, PingListAndSweepOverTheSocket) {
  DaemonFixture daemon("basic");
  Client client = Client::connect(daemon.path());
  ASSERT_TRUE(client.ok()) << client.error();

  std::string error;
  EXPECT_TRUE(client.ping(error)) << error;

  std::vector<std::string> names;
  ASSERT_TRUE(client.list_sweeps(names, error)) << error;
  EXPECT_EQ(names, exp::sweep_names());

  SweepRequest req;
  req.sweep = "smoke";
  req.want_csv = true;
  SweepResponse resp;
  ASSERT_TRUE(client.sweep(req, resp, error)) << error;
  EXPECT_EQ(resp.n_points, 6u);
  EXPECT_FALSE(resp.csv.empty());

  // The connection is reusable for a second job.
  resp = SweepResponse{};
  ASSERT_TRUE(client.sweep(req, resp, error)) << error;
  EXPECT_EQ(resp.n_points, 6u);
}

TEST(Daemon, SemanticErrorKeepsConnectionFramingErrorDropsIt) {
  DaemonFixture daemon("robust");
  Client client = Client::connect(daemon.path());
  ASSERT_TRUE(client.ok()) << client.error();

  // Undecodable sweep payload: kError reply, connection stays usable.
  ASSERT_TRUE(write_frame(client.fd(), kSweep, {0xFF, 0xFF}));
  Frame f;
  std::string err;
  ASSERT_TRUE(read_frame(client.fd(), f, kMaxResponseFrame, &err)) << err;
  EXPECT_EQ(f.type, kError);
  std::string error;
  EXPECT_TRUE(client.ping(error)) << error;

  // Unknown frame type: also semantic, also survivable.
  ASSERT_TRUE(write_frame(client.fd(), 0x7E, {}));
  ASSERT_TRUE(read_frame(client.fd(), f, kMaxResponseFrame, &err)) << err;
  EXPECT_EQ(f.type, kError);
  EXPECT_TRUE(client.ping(error)) << error;

  // Framing corruption (oversized len): the daemon drops this connection...
  const u32 huge = 0xFFFFFFFF;
  ASSERT_EQ(::send(client.fd(), &huge, sizeof(huge), MSG_NOSIGNAL),
            (ssize_t)sizeof(huge));
  EXPECT_FALSE(read_frame(client.fd(), f, kMaxResponseFrame, &err));

  // ... but not itself: a fresh connection works.
  Client again = Client::connect(daemon.path());
  ASSERT_TRUE(again.ok()) << again.error();
  EXPECT_TRUE(again.ping(error)) << error;
}

TEST(Daemon, ClientDisconnectMidJobLeavesDaemonAlive) {
  DaemonFixture daemon("cancel");
  {
    Client client = Client::connect(daemon.path());
    ASSERT_TRUE(client.ok()) << client.error();
    SweepRequest req;
    req.sweep = "smoke";
    std::vector<u8> payload;
    encode(payload, req);
    ASSERT_TRUE(write_frame(client.fd(), kSweep, payload));
    // Depart without reading the reply; the daemon notices EOF between
    // points (cancel) or when sending the result (EPIPE) — either way it
    // must survive.
  }
  Client probe = Client::connect(daemon.path());
  ASSERT_TRUE(probe.ok()) << probe.error();
  std::string error;
  EXPECT_TRUE(probe.ping(error)) << error;
}

TEST(Daemon, ExplicitCancelFrameAbortsTheJob) {
  DaemonFixture daemon("cancel2");
  Client client = Client::connect(daemon.path());
  ASSERT_TRUE(client.ok()) << client.error();

  SweepRequest req;
  req.sweep = "smoke";
  req.trace_len = 200000;  // enough points * length for the cancel to land
  std::vector<u8> payload;
  encode(payload, req);
  ASSERT_TRUE(write_frame(client.fd(), kSweep, payload));
  ASSERT_TRUE(client.cancel());

  Frame f;
  std::string err;
  ASSERT_TRUE(read_frame(client.fd(), f, kMaxResponseFrame, &err)) << err;
  // Timing decides whether the cancel landed before the last point; both a
  // cancelled-error and a completed result are protocol-correct, and the
  // connection stays usable either way.
  EXPECT_TRUE(f.type == kError || f.type == kResult);
  std::string error;
  EXPECT_TRUE(client.ping(error)) << error;
}

TEST(Daemon, ServeTraceOutsideShmDirIsRejected) {
  DaemonFixture daemon("shmdir");  // default shm_dir: /dev/shm
  Client client = Client::connect(daemon.path());
  ASSERT_TRUE(client.ok()) << client.error();

  // shm_path is client-controlled and create() may unlink its target, so
  // anything outside the configured directory — absolute escapes, ".."
  // traversal, subdirectories — must come back as kError, and the
  // connection (and daemon) must survive.
  const char* hostile[] = {"/etc/passwd", "/dev/shm/../etc/passwd",
                           "/dev/shm/sub/ring", "/dev/shmext/ring", "relative"};
  for (const char* path : hostile) {
    ServeTraceRequest req;
    req.shm_path = path;
    req.workload = "rv:crc32";
    std::string error;
    EXPECT_FALSE(client.serve_trace(req, error)) << path;
    EXPECT_NE(error.find("shm_path"), std::string::npos) << path << ": " << error;
  }
  std::string error;
  EXPECT_TRUE(client.ping(error)) << error;
}

TEST(Daemon, ServeTraceCreateFailureIsAnErrorNotACrash) {
  // A path that passes confinement but cannot be created (the directory
  // does not exist) must produce kError — before the fix, ShmRing::create
  // aborted the whole daemon here.
  DaemonOptions base;
  base.shm_dir = "/hcsim_no_such_dir";
  DaemonFixture daemon("shmfail", base);
  Client client = Client::connect(daemon.path());
  ASSERT_TRUE(client.ok()) << client.error();

  ServeTraceRequest req;
  req.shm_path = "/hcsim_no_such_dir/ring.shm";
  req.workload = "rv:crc32";
  std::string error;
  EXPECT_FALSE(client.serve_trace(req, error));
  EXPECT_NE(error.find("ring"), std::string::npos) << error;
  EXPECT_TRUE(client.ping(error)) << error;
}

TEST(Daemon, ServeTraceStreamsRecordsBitIdenticalToLocal) {
  DaemonOptions base;
  base.shm_dir = "/tmp";
  DaemonFixture daemon("serve", base);
  Client client = Client::connect(daemon.path());
  ASSERT_TRUE(client.ok()) << client.error();

  const std::string shm_path =
      "/tmp/hcsimd_test_serve_" + std::to_string(::getpid()) + ".shm";
  constexpr u64 kLen = 5000;
  ServeTraceRequest req;
  req.shm_path = shm_path;
  req.workload = "rv:crc32";
  req.trace_len = kLen;
  std::string error;
  ASSERT_TRUE(client.serve_trace(req, error)) << error;

  // kServing means the segment exists; attach and pull a range.
  bus::ShmRing ring = bus::ShmRing::attach(shm_path);
  ASSERT_TRUE(ring.valid()) << ring.error();
  bus::BusRecordStream stream(ring);
  ASSERT_TRUE(stream.ok()) << stream.error();
  std::vector<u8> remote;
  stream.feed_range(0, 500, [&remote](const TraceRecord& rec) {
    wire::put_record(remote, rec);
  });
  ASSERT_TRUE(stream.ok()) << stream.error();

  WorkloadProfile profile;
  ASSERT_TRUE(resolve_workload("rv:crc32", profile, error)) << error;
  auto local_stream = sample::workload_stream_factory(profile, kLen)();
  std::vector<u8> local;
  local_stream->feed_range(0, 500, [&local](const TraceRecord& rec) {
    wire::put_record(local, rec);
  });
  EXPECT_EQ(remote, local);

  // Departing consumer: the daemon reaps the producer and stays serviceable.
  ring.close_read();
  EXPECT_TRUE(client.ping(error)) << error;
}

TEST(Daemon, IdleConnectionIsDroppedInsteadOfStarvingOthers) {
  DaemonOptions base;
  base.conn_idle_timeout_ms = 100;
  DaemonFixture daemon("idle", base);

  // First client connects and goes silent — never sends a frame, never
  // closes. Connections are served one at a time, so before the bounded
  // idle wait this parked the daemon forever.
  Client idler = Client::connect(daemon.path());
  ASSERT_TRUE(idler.ok()) << idler.error();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Second client must still get service once the idler is dropped.
  Client active = Client::connect(daemon.path());
  ASSERT_TRUE(active.ok()) << active.error();
  std::string error;
  EXPECT_TRUE(active.ping(error)) << error;

  // The idler's connection was closed by the daemon.
  EXPECT_FALSE(idler.ping(error));
}

}  // namespace
}  // namespace hcsim::svc
