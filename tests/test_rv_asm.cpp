// Tests for the RV32I assembler (src/rv/assembler.*): golden encodings,
// encode/decode round trips, pseudo-instruction expansion, label and data
// layout, and loud failures on malformed input.
#include <gtest/gtest.h>

#include "rv/assembler.hpp"
#include "rv/rv_isa.hpp"

namespace hcsim::rv {
namespace {

/// Assemble a snippet that must succeed; returns the program.
RvProgram ok(const std::string& src) {
  AsmResult r = assemble("t", src);
  EXPECT_TRUE(r.ok()) << r.error;
  return std::move(r.program);
}

/// Assemble a snippet that must fail; returns the error text.
std::string err(const std::string& src) {
  AsmResult r = assemble("t", src);
  EXPECT_FALSE(r.ok()) << "expected failure for: " << src;
  return r.error;
}

// --- golden encodings (cross-checked against the RV32I spec tables) ---------

TEST(RvAsm, GoldenEncodings) {
  const RvProgram p = ok(
      "nop\n"
      "add x1, x2, x3\n"
      "addi x1, x2, -5\n"
      "lui x5, 0x12345\n"
      "lw x6, 8(x7)\n"
      "sw x6, 12(x7)\n"
      "srai x1, x2, 3\n"
      "ret\n"
      "ecall\n"
      "ebreak\n");
  EXPECT_EQ(p.inst_word(0), 0x00000013u);   // nop == addi x0,x0,0
  EXPECT_EQ(p.inst_word(4), 0x003100B3u);   // add
  EXPECT_EQ(p.inst_word(8), 0xFFB10093u);   // addi negative imm
  EXPECT_EQ(p.inst_word(12), 0x123452B7u);  // lui
  EXPECT_EQ(p.inst_word(16), 0x0083A303u);  // lw
  EXPECT_EQ(p.inst_word(20), 0x0063A623u);  // sw
  EXPECT_EQ(p.inst_word(24), 0x40315093u);  // srai
  EXPECT_EQ(p.inst_word(28), 0x00008067u);  // ret == jalr x0,0(ra)
  EXPECT_EQ(p.inst_word(32), 0x00000073u);  // ecall
  EXPECT_EQ(p.inst_word(36), 0x00100073u);  // ebreak
}

TEST(RvAsm, GoldenBranchAndJumpEncodings) {
  const RvProgram p = ok(
      "start:\n"
      "  beq x1, x2, next\n"   // +8
      "  nop\n"
      "next:\n"
      "  jal x1, tgt\n"        // +16
      "  nop\n"
      "  nop\n"
      "  nop\n"
      "tgt:\n"
      "  bltu x10, x11, tgt\n");  // self-target: offset 0
  EXPECT_EQ(p.inst_word(0), 0x00208463u);   // beq +8
  EXPECT_EQ(p.inst_word(8), 0x010000EFu);   // jal x1, +16
  EXPECT_EQ(p.inst_word(24), 0x00B56063u);  // bltu 0
}

TEST(RvAsm, EncodeDecodeRoundTripAllOps) {
  // Every encodable instruction shape survives encode(decode(encode(x))).
  const RvInst cases[] = {
      {RvOp::kLui, 7, 0, 0, static_cast<i32>(0xFFFFF000)},
      {RvOp::kAuipc, 1, 0, 0, 0x7F000},
      {RvOp::kJal, 1, 0, 0, -1048576},
      {RvOp::kJalr, 1, 2, 0, -2048},
      {RvOp::kBeq, 0, 3, 4, 4094},  {RvOp::kBne, 0, 5, 6, -4096},
      {RvOp::kBlt, 0, 7, 8, 16},    {RvOp::kBge, 0, 9, 10, -16},
      {RvOp::kBltu, 0, 11, 12, 8},  {RvOp::kBgeu, 0, 13, 14, -8},
      {RvOp::kLb, 15, 16, 0, 2047}, {RvOp::kLh, 17, 18, 0, -1},
      {RvOp::kLw, 19, 20, 0, 0},    {RvOp::kLbu, 21, 22, 0, 5},
      {RvOp::kLhu, 23, 24, 0, 6},   {RvOp::kSb, 0, 25, 26, -2048},
      {RvOp::kSh, 0, 27, 28, 2047}, {RvOp::kSw, 0, 29, 30, 4},
      {RvOp::kAddi, 31, 1, 0, 1},   {RvOp::kSlti, 2, 3, 0, -7},
      {RvOp::kSltiu, 4, 5, 0, 7},   {RvOp::kXori, 6, 7, 0, -1},
      {RvOp::kOri, 8, 9, 0, 255},   {RvOp::kAndi, 10, 11, 0, 15},
      {RvOp::kSlli, 12, 13, 0, 31}, {RvOp::kSrli, 14, 15, 0, 1},
      {RvOp::kSrai, 16, 17, 0, 30}, {RvOp::kAdd, 18, 19, 20, 0},
      {RvOp::kSub, 21, 22, 23, 0},  {RvOp::kSll, 24, 25, 26, 0},
      {RvOp::kSlt, 27, 28, 29, 0},  {RvOp::kSltu, 30, 31, 1, 0},
      {RvOp::kXor, 2, 3, 4, 0},     {RvOp::kSrl, 5, 6, 7, 0},
      {RvOp::kSra, 8, 9, 10, 0},    {RvOp::kOr, 11, 12, 13, 0},
      {RvOp::kAnd, 14, 15, 16, 0},  {RvOp::kEcall, 0, 0, 0, 0},
      {RvOp::kEbreak, 0, 0, 0, 0},
  };
  for (const RvInst& in : cases) {
    const u32 word = encode(in);
    const RvInst back = decode(word);
    EXPECT_EQ(back.op, in.op) << mnemonic(in.op);
    EXPECT_EQ(encode(back), word) << mnemonic(in.op);
    if (in.op != RvOp::kEcall && in.op != RvOp::kEbreak) {
      EXPECT_EQ(back.imm, in.imm) << mnemonic(in.op);
    }
  }
  EXPECT_EQ(decode(0xFFFFFFFFu).op, RvOp::kIllegal);
  EXPECT_EQ(decode(0).op, RvOp::kIllegal);
}

// --- pseudo-instructions -----------------------------------------------------

TEST(RvAsm, PseudoExpansion) {
  const RvProgram p = ok(
      "li a0, 42\n"          // 1 inst (addi)
      "li a1, 0x12345678\n"  // 2 insts (lui+addi)
      "li a2, -1\n"          // 1 inst
      "mv a3, a0\n"
      "not a4, a0\n"
      "neg a5, a0\n"
      "seqz a6, a0\n"
      "snez a7, a0\n"
      "ret\n");
  EXPECT_EQ(p.num_insts(), 10u);
  EXPECT_EQ(decode(p.inst_word(0)).op, RvOp::kAddi);
  EXPECT_EQ(decode(p.inst_word(0)).imm, 42);
  EXPECT_EQ(decode(p.inst_word(4)).op, RvOp::kLui);
  EXPECT_EQ(decode(p.inst_word(8)).op, RvOp::kAddi);
  // lui+addi reconstruct the constant (addi sign-extends, lui compensates).
  const u32 hi = static_cast<u32>(decode(p.inst_word(4)).imm);
  const u32 lo = static_cast<u32>(decode(p.inst_word(8)).imm);
  EXPECT_EQ(hi + lo, 0x12345678u);
  EXPECT_EQ(decode(p.inst_word(12)).imm, -1);
  EXPECT_EQ(decode(p.inst_word(16)).op, RvOp::kAddi);   // mv
  EXPECT_EQ(decode(p.inst_word(20)).op, RvOp::kXori);   // not
  EXPECT_EQ(decode(p.inst_word(20)).imm, -1);
  EXPECT_EQ(decode(p.inst_word(24)).op, RvOp::kSub);    // neg
  EXPECT_EQ(decode(p.inst_word(28)).op, RvOp::kSltiu);  // seqz
  EXPECT_EQ(decode(p.inst_word(32)).op, RvOp::kSltu);   // snez
}

TEST(RvAsm, AbiRegisterNames) {
  const RvProgram p = ok("add sp, ra, a0\nadd s0, t6, zero\nadd fp, s11, t0\nret\n");
  RvInst i0 = decode(p.inst_word(0));
  EXPECT_EQ(i0.rd, 2u);   // sp
  EXPECT_EQ(i0.rs1, 1u);  // ra
  EXPECT_EQ(i0.rs2, 10u); // a0
  RvInst i1 = decode(p.inst_word(4));
  EXPECT_EQ(i1.rd, 8u);   // s0
  EXPECT_EQ(i1.rs1, 31u); // t6
  EXPECT_EQ(i1.rs2, 0u);  // zero
  RvInst i2 = decode(p.inst_word(8));
  EXPECT_EQ(i2.rd, 8u);   // fp == s0
  EXPECT_EQ(i2.rs1, 27u); // s11
  EXPECT_EQ(i2.rs2, 5u);  // t0
}

// --- labels, sections, data --------------------------------------------------

TEST(RvAsm, LabelsAndDataLayout) {
  const RvProgram p = ok(
      ".text\n"
      "main:\n"
      "  la a0, buf\n"       // 2 insts
      "  lw a1, 0(a0)\n"
      "  j main\n"
      ".data\n"
      "buf:\n"
      "  .word 0xDEADBEEF, 17\n"
      "tail:\n"
      "  .byte 1, 2\n"
      "  .asciz \"hi\"\n");
  EXPECT_EQ(p.text_bytes, 16u);
  ASSERT_TRUE(p.symbols.count("main"));
  ASSERT_TRUE(p.symbols.count("buf"));
  ASSERT_TRUE(p.symbols.count("tail"));
  EXPECT_EQ(p.symbols.at("main"), 0u);
  EXPECT_EQ(p.symbols.at("buf"), 16u);  // data starts word-aligned after text
  EXPECT_EQ(p.symbols.at("tail"), 24u);
  // .word is little-endian.
  EXPECT_EQ(p.image[16], 0xEFu);
  EXPECT_EQ(p.image[19], 0xDEu);
  EXPECT_EQ(p.image[20], 17u);
  EXPECT_EQ(p.image[24], 1u);
  EXPECT_EQ(p.image[25], 2u);
  EXPECT_EQ(p.image[26], 'h');
  EXPECT_EQ(p.image[28], 0u);  // NUL terminator
  // la expands to lui+addi producing the symbol address.
  const RvInst lui = decode(p.inst_word(0));
  const RvInst addi = decode(p.inst_word(4));
  EXPECT_EQ(lui.op, RvOp::kLui);
  EXPECT_EQ(addi.op, RvOp::kAddi);
  EXPECT_EQ(static_cast<u32>(lui.imm) + static_cast<u32>(addi.imm), 16u);
  // Backward jump targets the label.
  const RvInst j = decode(p.inst_word(12));
  EXPECT_EQ(j.op, RvOp::kJal);
  EXPECT_EQ(j.rd, 0u);
  EXPECT_EQ(j.imm, -12);
}

TEST(RvAsm, ForwardBranchesResolve) {
  const RvProgram p = ok(
      "  beqz a0, done\n"
      "  addi a0, a0, -1\n"
      "done:\n"
      "  ret\n");
  const RvInst b = decode(p.inst_word(0));
  EXPECT_EQ(b.op, RvOp::kBeq);
  EXPECT_EQ(b.imm, 8);
}

TEST(RvAsm, CommentsAndBlankLines) {
  const RvProgram p = ok(
      "# full-line comment\n"
      "\n"
      "  nop  # trailing comment\n"
      "  nop  // c++ style\n"
      "  ret  ; asm style\n");
  EXPECT_EQ(p.num_insts(), 3u);
}

TEST(RvAsm, CommentMarkersInsideStringLiteralsArePreserved) {
  const RvProgram p = ok(
      "ret\n"
      ".data\n"
      "s: .asciz \"a#b;c//d\"  # real comment\n");
  const u32 base = p.symbols.at("s");
  EXPECT_EQ(p.image[base + 1], '#');
  EXPECT_EQ(p.image[base + 3], ';');
  EXPECT_EQ(p.image[base + 5], '/');
  EXPECT_EQ(p.image[base + 8], 0u);  // "a#b;c//d" + NUL
}

// --- failure modes -----------------------------------------------------------

TEST(RvAsm, RejectsMalformedInput) {
  EXPECT_NE(err("bogus a0, a1\n").find("unknown mnemonic"), std::string::npos);
  EXPECT_NE(err("add a0, a1\n").find("expects 3"), std::string::npos);
  EXPECT_NE(err("addi a0, a1, 5000\n").find("out of range"), std::string::npos);
  EXPECT_NE(err("addi a0, q7, 1\n").find("bad register"), std::string::npos);
  EXPECT_NE(err("j nowhere\n").find("unknown symbol"), std::string::npos);
  EXPECT_NE(err("x: nop\nx: ret\n").find("duplicate label"), std::string::npos);
  EXPECT_NE(err(".data\n.word 1\n").find("no instructions"), std::string::npos);
  EXPECT_NE(err(".data\naddi a0, a0, 1\n").find("instruction in .data"),
            std::string::npos);
  EXPECT_NE(err("slli a0, a0, 32\n").find("out of range"), std::string::npos);
  // Control flow into .data (or past the end of text) is caught with a
  // line number instead of aborting later in the cracker.
  EXPECT_NE(err("j buf\n.data\nbuf: .word 1\n").find("not in .text"),
            std::string::npos);
  EXPECT_NE(err("beqz a0, end\nret\nend:\n").find("not in .text"),
            std::string::npos);
  // Line numbers point at the offending statement.
  EXPECT_EQ(err("nop\nnop\nbogus\n").substr(0, 7), "line 3:");
}

TEST(RvAsm, BranchRangeChecked) {
  // A branch further than +-4 KiB must be rejected, not silently wrapped.
  std::string src = "top:\n";
  for (int i = 0; i < 1100; ++i) src += "  nop\n";
  src += "  j top\n";      // jal reaches +-1 MiB: fine
  src += "  beqz a0, top\n";  // conditional: out of the +-4 KiB window
  EXPECT_NE(err(src).find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace hcsim::rv
