// Tests for the µop ISA: opcode properties, registers, encoding, disasm.
#include <gtest/gtest.h>

#include "isa/opcode.hpp"
#include "isa/reg.hpp"
#include "isa/uop.hpp"

namespace hcsim {
namespace {

TEST(Opcode, TableCompleteAndConsistent) {
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const OpcodeInfo& info = opcode_info(op);
    EXPECT_FALSE(info.mnemonic.empty()) << i;
    EXPECT_GT(info.latency_wide, 0u) << info.mnemonic;
  }
}

TEST(Opcode, HelperHasNoFpOrLongLatencyUnits) {
  // Section 2.1: the helper cluster has integer functional units only;
  // Section 3.5: mul/div are ineligible.
  EXPECT_FALSE(opcode_info(Opcode::kFpAdd).helper_capable);
  EXPECT_FALSE(opcode_info(Opcode::kFpMul).helper_capable);
  EXPECT_FALSE(opcode_info(Opcode::kFpDiv).helper_capable);
  EXPECT_FALSE(opcode_info(Opcode::kMul).helper_capable);
  EXPECT_FALSE(opcode_info(Opcode::kDiv).helper_capable);
  EXPECT_TRUE(opcode_info(Opcode::kAdd).helper_capable);
  EXPECT_TRUE(opcode_info(Opcode::kLoadByte).helper_capable);
}

TEST(Opcode, FlagSemantics) {
  EXPECT_TRUE(opcode_info(Opcode::kCmp).writes_flags);
  EXPECT_TRUE(opcode_info(Opcode::kTest).writes_flags);
  EXPECT_TRUE(opcode_info(Opcode::kAdd).writes_flags);
  EXPECT_FALSE(opcode_info(Opcode::kMov).writes_flags);
  EXPECT_TRUE(opcode_info(Opcode::kBranchCond).reads_flags);
  EXPECT_FALSE(opcode_info(Opcode::kJump).reads_flags);
}

TEST(Opcode, Classifiers) {
  EXPECT_TRUE(is_memory(Opcode::kLoad));
  EXPECT_TRUE(is_memory(Opcode::kStoreByte));
  EXPECT_FALSE(is_memory(Opcode::kAdd));
  EXPECT_TRUE(is_load(Opcode::kLoadByte));
  EXPECT_FALSE(is_load(Opcode::kStore));
  EXPECT_TRUE(is_store(Opcode::kStore));
  EXPECT_TRUE(is_branch(Opcode::kBranchCond));
  EXPECT_TRUE(is_branch(Opcode::kJump));
  EXPECT_TRUE(is_fp(Opcode::kFpDiv));
  EXPECT_FALSE(is_fp(Opcode::kDiv));
}

TEST(Opcode, LatencyOrdering) {
  // div > mul > alu; fp div is the longest FP op.
  EXPECT_GT(opcode_info(Opcode::kDiv).latency_wide, opcode_info(Opcode::kMul).latency_wide);
  EXPECT_GT(opcode_info(Opcode::kMul).latency_wide, opcode_info(Opcode::kAdd).latency_wide);
  EXPECT_GT(opcode_info(Opcode::kFpDiv).latency_wide, opcode_info(Opcode::kFpAdd).latency_wide);
}

TEST(Cond, EvalAllCodes) {
  EXPECT_TRUE(eval_cond(kCondEq, 0));
  EXPECT_FALSE(eval_cond(kCondEq, 1));
  EXPECT_TRUE(eval_cond(kCondNe, 5));
  EXPECT_FALSE(eval_cond(kCondNe, 0));
  EXPECT_TRUE(eval_cond(kCondLt, 0x80000000u));
  EXPECT_FALSE(eval_cond(kCondLt, 1));
  EXPECT_TRUE(eval_cond(kCondGe, 0));
  EXPECT_FALSE(eval_cond(kCondGe, 0xFFFFFFFFu));
}

TEST(Reg, Names) {
  EXPECT_EQ(reg_name(kRegEax), "eax");
  EXPECT_EQ(reg_name(kRegEsp), "esp");
  EXPECT_EQ(reg_name(kRegT0), "t0");
  EXPECT_EQ(reg_name(kRegT7), "t7");
  EXPECT_EQ(reg_name(kRegFlags), "flags");
  EXPECT_EQ(reg_name(kRegF0), "f0");
  EXPECT_EQ(reg_name(static_cast<RegId>(200)), "r?");
}

TEST(Reg, Classifiers) {
  EXPECT_TRUE(is_gpr(kRegEax));
  EXPECT_TRUE(is_gpr(kRegT7));
  EXPECT_FALSE(is_gpr(kRegFlags));
  EXPECT_TRUE(is_flags(kRegFlags));
  EXPECT_TRUE(is_fp(static_cast<RegId>(kRegF0 + 7)));
  EXPECT_FALSE(is_fp(static_cast<RegId>(kRegF0 + 8)));
}

TEST(Uop, SourceCountAndAccessors) {
  StaticUop u;
  u.opcode = Opcode::kAdd;
  u.dst = kRegEax;
  u.srcs = {kRegEbx, kRegEcx, kRegNone};
  EXPECT_EQ(u.num_srcs(), 2u);
  EXPECT_TRUE(u.has_dst());
  EXPECT_TRUE(u.writes_flags());
  u.dst = kRegNone;
  EXPECT_FALSE(u.has_dst());
}

TEST(Uop, Disassemble) {
  StaticUop u;
  u.opcode = Opcode::kAdd;
  u.dst = kRegEax;
  u.srcs = {kRegEbx, kRegNone, kRegNone};
  u.has_imm = true;
  u.imm = 4;
  EXPECT_EQ(disassemble(u), "add eax, ebx, #4");
}

TEST(Uop, DisassembleNegativeImmediate) {
  StaticUop u;
  u.opcode = Opcode::kMovImm;
  u.dst = kRegEcx;
  u.has_imm = true;
  u.imm = static_cast<u32>(-5);
  EXPECT_EQ(disassemble(u), "movi ecx, #-5");
}

TEST(Uop, DisassembleNoOperands) {
  StaticUop u;
  u.opcode = Opcode::kNop;
  EXPECT_EQ(disassemble(u), "nop");
}

}  // namespace
}  // namespace hcsim
