// Tests for the set-associative cache model.
#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace hcsim {
namespace {

CacheConfig small_cache(u32 ways) {
  CacheConfig c;
  c.name = "test";
  c.size_bytes = 1024;
  c.line_bytes = 64;
  c.ways = ways;
  return c;
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache(2));
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1004));  // same line
  EXPECT_FALSE(c.access(0x1040));  // next line
}

TEST(Cache, ProbeDoesNotAllocate) {
  Cache c(small_cache(2));
  EXPECT_FALSE(c.probe(0x2000));
  EXPECT_FALSE(c.probe(0x2000));  // still absent
  c.access(0x2000);
  EXPECT_TRUE(c.probe(0x2000));
}

TEST(Cache, LruEviction) {
  // 1024B / 64B lines / 2 ways = 8 sets. Lines mapping to the same set are
  // 8*64 = 512 bytes apart.
  Cache c(small_cache(2));
  c.access(0x0000);
  c.access(0x0200);  // same set, second way
  EXPECT_TRUE(c.access(0x0000));  // refresh LRU of line A
  c.access(0x0400);  // evicts 0x0200 (LRU), not 0x0000
  EXPECT_TRUE(c.probe(0x0000));
  EXPECT_FALSE(c.probe(0x0200));
  EXPECT_TRUE(c.probe(0x0400));
}

TEST(Cache, AssociativityConflicts) {
  Cache direct(small_cache(1));
  direct.access(0x0000);
  direct.access(0x0400);  // same set in a direct-mapped cache
  EXPECT_FALSE(direct.probe(0x0000));  // evicted

  Cache assoc(small_cache(4));
  assoc.access(0x0000);
  assoc.access(0x0400);
  EXPECT_TRUE(assoc.probe(0x0000));  // enough ways
}

TEST(Cache, FullyAssociativeHoldsWorkingSet) {
  CacheConfig cfg = small_cache(16);  // 1024/64 = 16 lines, 1 set
  Cache c(cfg);
  for (u32 i = 0; i < 16; ++i) c.access(i * 64);
  for (u32 i = 0; i < 16; ++i) EXPECT_TRUE(c.probe(i * 64)) << i;
}

TEST(Cache, HitRatioAccounting) {
  Cache c(small_cache(2));
  c.access(0x0000);  // miss
  c.access(0x0000);  // hit
  c.access(0x0000);  // hit
  EXPECT_EQ(c.accesses(), 3u);
  EXPECT_NEAR(c.hit_ratio().value(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, InvalidateAll) {
  Cache c(small_cache(2));
  c.access(0x0000);
  c.invalidate_all();
  EXPECT_FALSE(c.probe(0x0000));
}

TEST(Cache, LargerWorkingSetThanCacheThrashes) {
  Cache c(small_cache(2));  // 1KB
  // Stream 8KB twice: second pass still misses (capacity).
  for (int pass = 0; pass < 2; ++pass)
    for (u32 a = 0; a < 8192; a += 64) c.access(a);
  EXPECT_LT(c.hit_ratio().value(), 0.01);
}

TEST(CacheDeath, RejectsBadGeometry) {
  CacheConfig c = small_cache(2);
  c.line_bytes = 48;  // not a power of two
  EXPECT_DEATH({ Cache bad(c); }, "power of two");
  CacheConfig tiny = small_cache(32);
  tiny.size_bytes = 64;  // smaller than one set
  EXPECT_DEATH({ Cache bad(tiny); }, "smaller");
}

class CacheGeometry : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(CacheGeometry, TableOneConfigsWork) {
  const auto [size, ways] = GetParam();
  CacheConfig cfg;
  cfg.size_bytes = size;
  cfg.ways = ways;
  Cache c(cfg);
  c.access(0x12345678);
  EXPECT_TRUE(c.probe(0x12345678));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::tuple<u32, u32>{32 * 1024, 8},       // DL0 (Table 1)
                      std::tuple<u32, u32>{4 * 1024 * 1024, 16},  // UL1 (Table 1)
                      std::tuple<u32, u32>{1024, 1},
                      std::tuple<u32, u32>{64 * 1024, 4}));

}  // namespace
}  // namespace hcsim
