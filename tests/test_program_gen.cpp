// Tests for the structured program generator: structural well-formedness,
// termination, determinism and profile coverage.
#include <gtest/gtest.h>

#include <set>

#include "wload/executor.hpp"
#include "wload/profile.hpp"
#include "wload/program_gen.hpp"

namespace hcsim {
namespace {

class ProgramGenAllProfiles : public ::testing::TestWithParam<std::string> {};

TEST_P(ProgramGenAllProfiles, WellFormed) {
  const WorkloadProfile& prof = spec_profile(GetParam());
  const Program prog = generate_program(prof);
  ASSERT_FALSE(prog.uops.empty());
  ASSERT_EQ(prog.uops.size(), prog.branch_targets.size());
  for (u32 pc = 0; pc < prog.uops.size(); ++pc) {
    const StaticUop& u = prog.uops[pc];
    EXPECT_EQ(u.pc, pc);
    if (is_branch(u.opcode)) {
      EXPECT_LT(prog.branch_targets[pc], prog.uops.size()) << "target out of range";
      EXPECT_TRUE(u.has_imm);
      EXPECT_LE(u.imm, kCondGe);
    }
    for (RegId s : u.srcs)
      if (s != kRegNone) {
        EXPECT_LT(s, kNumRegs);
      }
    if (u.has_dst()) {
      EXPECT_LT(u.dst, kNumRegs);
    }
    // Stores never have a destination, compares never have one either.
    if (is_store(u.opcode) || u.opcode == Opcode::kCmp || u.opcode == Opcode::kTest) {
      EXPECT_FALSE(u.has_dst()) << disassemble(u);
    }
    // Pipeline-internal opcodes must not appear in static programs.
    EXPECT_NE(u.opcode, Opcode::kCopy);
    EXPECT_NE(u.opcode, Opcode::kChunkAlu);
  }
}

TEST_P(ProgramGenAllProfiles, ExecutionTerminatesAndFillsTrace) {
  const WorkloadProfile& prof = spec_profile(GetParam());
  const Trace t = generate_trace(prof, 5000);
  EXPECT_EQ(t.records.size(), 5000u);
  // Every record's pc must be valid.
  for (const TraceRecord& r : t.records) ASSERT_LT(r.pc, t.program.uops.size());
}

TEST_P(ProgramGenAllProfiles, ContainsTheExpectedStructures) {
  const WorkloadProfile& prof = spec_profile(GetParam());
  const Program prog = generate_program(prof);
  bool has_branch = false, has_load = false, has_alu = false;
  for (const StaticUop& u : prog.uops) {
    has_branch |= u.opcode == Opcode::kBranchCond;
    has_load |= is_load(u.opcode);
    has_alu |= opcode_info(u.opcode).op_class == OpClass::kIntAlu;
  }
  EXPECT_TRUE(has_branch);
  EXPECT_TRUE(has_load);
  EXPECT_TRUE(has_alu);
}

INSTANTIATE_TEST_SUITE_P(
    Spec, ProgramGenAllProfiles,
    ::testing::Values("bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf",
                      "parser", "perlbmk", "twolf", "vortex", "vpr"));

TEST(ProgramGen, DeterministicForSeed) {
  WorkloadProfile p = spec_profile("gcc");
  const Program a = generate_program(p);
  const Program b = generate_program(p);
  ASSERT_EQ(a.uops.size(), b.uops.size());
  for (std::size_t i = 0; i < a.uops.size(); ++i) {
    EXPECT_EQ(a.uops[i].opcode, b.uops[i].opcode);
    EXPECT_EQ(a.uops[i].imm, b.uops[i].imm);
  }
}

TEST(ProgramGen, DifferentSeedsDiffer) {
  WorkloadProfile p = spec_profile("gcc");
  const Program a = generate_program(p);
  p.seed ^= 0xDEADBEEF;
  const Program b = generate_program(p);
  bool differ = a.uops.size() != b.uops.size();
  for (std::size_t i = 0; !differ && i < a.uops.size(); ++i)
    differ = a.uops[i].opcode != b.uops[i].opcode || a.uops[i].imm != b.uops[i].imm;
  EXPECT_TRUE(differ);
}

TEST(ProgramGen, BackEdgesFormLoops) {
  const Program prog = generate_program(spec_profile("gcc"));
  unsigned back_edges = 0;
  for (u32 pc = 0; pc < prog.uops.size(); ++pc)
    if (is_branch(prog.uops[pc].opcode) && prog.branch_targets[pc] < pc) ++back_edges;
  EXPECT_GE(back_edges, spec_profile("gcc").num_loops);
}

TEST(ProgramGen, BaseRegistersPointIntoRegions) {
  using namespace mem_layout;
  const Program prog = generate_program(spec_profile("gzip"));
  for (const StaticUop& u : prog.uops) {
    if (u.opcode != Opcode::kMovImm) continue;
    if (u.dst == kRegEbp) {
      EXPECT_TRUE(in_byte_region(u.imm)) << std::hex << u.imm;
    }
    if (u.dst == kRegEsp) {
      EXPECT_TRUE(in_word_region(u.imm)) << std::hex << u.imm;
    }
    if (u.dst == kRegEdi) {
      EXPECT_TRUE(in_ptr_region(u.imm)) << std::hex << u.imm;
    }
  }
}

TEST(ProgramGen, FpChainsOnlyWhenProfiled) {
  // mcf has no FP weight; eon does.
  const Program no_fp = generate_program(spec_profile("mcf"));
  for (const StaticUop& u : no_fp.uops) EXPECT_FALSE(is_fp(u.opcode));
  const Program with_fp = generate_program(spec_profile("eon"));
  bool has_fp = false;
  for (const StaticUop& u : with_fp.uops) has_fp |= is_fp(u.opcode);
  EXPECT_TRUE(has_fp);
}

TEST(ProgramGen, EmptyProfileStillGeneratesOneLoop) {
  WorkloadProfile p;
  p.name = "minimal";
  p.num_loops = 0;  // clamped to 1
  const Program prog = generate_program(p);
  EXPECT_FALSE(prog.uops.empty());
}

}  // namespace
}  // namespace hcsim
