// src/util/faultpoint — the deterministic fault-injection harness.
//
// The contract under test: a schedule arms exactly the named points at
// exactly the named hit indices; everything else — other points, other hits,
// a disarmed harness — is a guaranteed no-op. The recovery tests
// (test_fault_recovery.cpp) lean on this determinism, so it gets its own
// unit coverage.
#include <gtest/gtest.h>

#include <cstdlib>

#include "util/faultpoint.hpp"

namespace hcsim::fault {
namespace {

/// Every test leaves the process disarmed — fault schedules are global and
/// must never leak into an unrelated test.
class FaultPointTest : public ::testing::Test {
 protected:
  void TearDown() override { set_schedule(""); }
};

TEST_F(FaultPointTest, DisarmedFiresNothing) {
  set_schedule("");
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(fire("sock.read.eintr"));
  // A disarmed harness does not even count hits (fast-path early out).
  EXPECT_EQ(hits("sock.read.eintr"), 0u);
}

TEST_F(FaultPointTest, NthHitFiresExactlyOnce) {
  set_schedule("p:2");
  EXPECT_TRUE(enabled());
  EXPECT_FALSE(fire("p"));  // hit 1
  EXPECT_TRUE(fire("p"));   // hit 2: the scheduled one
  EXPECT_FALSE(fire("p"));  // hit 3: count defaults to 1
  EXPECT_EQ(hits("p"), 3u);
  EXPECT_EQ(hits("q"), 0u);
}

TEST_F(FaultPointTest, CountExtendsTheWindow) {
  set_schedule("p:2:3");
  bool fired[5];
  for (bool& f : fired) f = fire("p");
  EXPECT_FALSE(fired[0]);
  EXPECT_TRUE(fired[1]);
  EXPECT_TRUE(fired[2]);
  EXPECT_TRUE(fired[3]);
  EXPECT_FALSE(fired[4]);
}

TEST_F(FaultPointTest, CountZeroMeansEveryHitFromNth) {
  set_schedule("p:3:0");
  EXPECT_FALSE(fire("p"));
  EXPECT_FALSE(fire("p"));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fire("p")) << "hit " << (i + 3);
}

TEST_F(FaultPointTest, MultipleEntriesAreIndependent) {
  set_schedule("a:1,b:2");
  EXPECT_TRUE(fire("a"));
  EXPECT_FALSE(fire("b"));
  EXPECT_TRUE(fire("b"));
  EXPECT_FALSE(fire("c"));
}

TEST_F(FaultPointTest, DomainQualifiedEntryOnlyFiresUnderThatDomain) {
  set_schedule("daemon.p:1");
  EXPECT_FALSE(fire("p"));  // no domain: plain counter, no match
  {
    ScopedDomain domain("client");
    EXPECT_FALSE(fire("p"));  // wrong domain
  }
  {
    ScopedDomain domain("daemon");
    EXPECT_TRUE(fire("p"));  // first *daemon* hit, even though third overall
  }
  // Plain and qualified counters are tracked separately.
  EXPECT_EQ(hits("p"), 3u);
  EXPECT_EQ(hits("daemon.p"), 1u);
  EXPECT_EQ(hits("client.p"), 1u);
}

TEST_F(FaultPointTest, PlainEntryFiresRegardlessOfDomain) {
  set_schedule("p:1:0");
  ScopedDomain domain("daemon");
  EXPECT_TRUE(fire("p"));
}

TEST_F(FaultPointTest, ScopedDomainRestoresThePreviousDomain) {
  set_schedule("outer.p:1:0,inner.p:1:0");
  ScopedDomain outer("outer");
  {
    ScopedDomain inner("inner");
    EXPECT_TRUE(fire("p"));
    EXPECT_EQ(hits("inner.p"), 1u);
  }
  EXPECT_TRUE(fire("p"));
  EXPECT_EQ(hits("outer.p"), 1u);  // back under "outer" after inner's dtor
}

TEST_F(FaultPointTest, ReloadFromEnvArmsAndDisarms) {
  ::setenv("HCSIM_FAULT", "env.point:1", 1);
  reload_from_env();
  EXPECT_TRUE(enabled());
  EXPECT_TRUE(fire("env.point"));
  ::unsetenv("HCSIM_FAULT");
  reload_from_env();
  EXPECT_FALSE(enabled());
}

TEST_F(FaultPointTest, SetScheduleResetsCounters) {
  set_schedule("p:2");
  EXPECT_FALSE(fire("p"));
  set_schedule("p:2");  // counters cleared: the next hit is hit 1 again
  EXPECT_FALSE(fire("p"));
  EXPECT_TRUE(fire("p"));
}

}  // namespace
}  // namespace hcsim::fault
