// src/bus — shared-memory trace bus: the SPSC ring and the chunk protocol.
//
// Two load-bearing properties:
//   1. The ring is a faithful byte pipe under every boundary condition —
//      wrap-around, exactly-full, exactly-empty, and mismatched
//      producer/consumer speeds.
//   2. The bus is invisible to the simulator: a trace streamed from another
//      process (or thread) produces a SimResult bit-identical to the
//      in-process path, for both the one-shot cursor and the range-serving
//      RecordStream modes.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bus/shm_ring.hpp"
#include "bus/trace_bus.hpp"
#include "core/machine_config.hpp"
#include "rv/kernels.hpp"
#include "sample/record_stream.hpp"
#include "sample/windowed.hpp"
#include "sim/simulator.hpp"
#include "steer/steering.hpp"
#include "trace/wire.hpp"

namespace hcsim::bus {
namespace {

/// Deterministic byte pattern so corruption shows the offset, not just "ne".
u8 pattern(u64 i) { return static_cast<u8>((i * 131) ^ (i >> 8)); }

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.uops, b.uops);
  EXPECT_EQ(a.final_tick, b.final_tick);
  EXPECT_EQ(a.to_wide, b.to_wide);
  EXPECT_EQ(a.to_helper, b.to_helper);
  EXPECT_EQ(a.copies, b.copies);
  EXPECT_EQ(a.branches, b.branches);
  EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts);
  EXPECT_EQ(a.wp_fatal, b.wp_fatal);
  EXPECT_EQ(a.nready_w2n, b.nready_w2n);
  EXPECT_EQ(a.nready_n2w, b.nready_n2w);
  EXPECT_EQ(a.counters.to_bag().all(), b.counters.to_bag().all());
  EXPECT_EQ(a.dl0_hit_rate, b.dl0_hit_rate);
  EXPECT_EQ(a.ul1_hit_rate, b.ul1_hit_rate);
}

// --- ring edge cases --------------------------------------------------------

TEST(ShmRing, WrapAroundPreservesBytes) {
  // Minimum-size (4 KiB) ring, 64 KiB of patterned data in deliberately
  // ragged slices: every write and read straddles the wrap point many times
  // over.
  ShmRing ring = ShmRing::anonymous(/*capacity=*/4096);
  ASSERT_TRUE(ring.valid());
  constexpr u64 kTotal = 64 * 1024;

  std::thread producer([&ring] {
    std::vector<u8> buf;
    u64 sent = 0;
    u64 step = 1;
    while (sent < kTotal) {
      const u64 n = std::min(step, kTotal - sent);
      buf.resize(n);
      for (u64 i = 0; i < n; ++i) buf[i] = pattern(sent + i);
      ASSERT_TRUE(ring.write(buf.data(), n));
      sent += n;
      step = step % 2999 + 1;  // 1..2999: up to ~3/4 of capacity
    }
    ring.close_write();
  });

  u64 got = 0;
  u64 step = 5;
  std::vector<u8> buf;
  while (got < kTotal) {
    const u64 n = std::min(step, kTotal - got);
    buf.resize(n);
    ASSERT_EQ(ring.read(buf.data(), n), n);
    for (u64 i = 0; i < n; ++i)
      ASSERT_EQ(buf[i], pattern(got + i)) << "byte " << got + i;
    got += n;
    step = step % 2767 + 1;
  }
  // Drained and EOF: the next read is short.
  u8 extra = 0;
  EXPECT_EQ(ring.read(&extra, 1), 0u);
  producer.join();
}

TEST(ShmRing, FullAndEmptyBoundaries) {
  ShmRing ring = ShmRing::anonymous(/*capacity=*/4096);
  ASSERT_TRUE(ring.valid());
  ASSERT_EQ(ring.capacity(), 4096u);  // the documented minimum
  EXPECT_EQ(ring.readable(), 0u);

  // Fill to exactly capacity: head - tail == capacity is the full state.
  std::vector<u8> buf(4096);
  for (u64 i = 0; i < buf.size(); ++i) buf[i] = pattern(i);
  ASSERT_TRUE(ring.write(buf.data(), buf.size()));
  EXPECT_EQ(ring.readable(), 4096u);

  // One more byte cannot fit: with a deadline the write fails cleanly
  // instead of blocking forever.
  const u8 overflow = 0xAB;
  EXPECT_FALSE(ring.write(&overflow, 1, /*deadline_ms=*/20));

  std::vector<u8> out(4096);
  ASSERT_EQ(ring.read(out.data(), out.size()), 4096u);
  EXPECT_EQ(out, buf);
  EXPECT_EQ(ring.readable(), 0u);

  // Empty + deadline: the read times out short rather than hanging.
  EXPECT_EQ(ring.read(out.data(), 1, /*deadline_ms=*/20), 0u);
}

TEST(ShmRing, ProducerFasterThanConsumer) {
  ShmRing ring = ShmRing::anonymous(/*capacity=*/4096);
  ASSERT_TRUE(ring.valid());
  constexpr u64 kTotal = 4096;

  std::thread producer([&ring] {
    std::vector<u8> buf(64);
    for (u64 sent = 0; sent < kTotal; sent += buf.size()) {
      for (u64 i = 0; i < buf.size(); ++i) buf[i] = pattern(sent + i);
      ASSERT_TRUE(ring.write(buf.data(), buf.size()));  // blocks on full
    }
    ring.close_write();
  });

  u64 got = 0;
  u8 b = 0;
  while (ring.read(&b, 1) == 1) {  // 1-byte reads: consumer is the bottleneck
    ASSERT_EQ(b, pattern(got)) << "byte " << got;
    ++got;
  }
  EXPECT_EQ(got, kTotal);
  producer.join();
}

TEST(ShmRing, ConsumerFasterThanProducer) {
  ShmRing ring = ShmRing::anonymous(/*capacity=*/4096);
  ASSERT_TRUE(ring.valid());
  constexpr u64 kTotal = 512;

  std::thread producer([&ring] {
    for (u64 i = 0; i < kTotal; ++i) {
      const u8 b = pattern(i);
      ASSERT_TRUE(ring.write(&b, 1));
      if (i % 64 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ring.close_write();
  });

  // Large reads against a dribbling producer: read() blocks until the full
  // count arrives, short only at EOF.
  std::vector<u8> buf(kTotal);
  ASSERT_EQ(ring.read(buf.data(), buf.size()), kTotal);
  for (u64 i = 0; i < kTotal; ++i) ASSERT_EQ(buf[i], pattern(i)) << "byte " << i;
  EXPECT_EQ(ring.read(buf.data(), 1), 0u);
  producer.join();
}

TEST(ShmRing, ConsumerDepartureFailsWritesFast) {
  ShmRing ring = ShmRing::anonymous(/*capacity=*/4096);
  ASSERT_TRUE(ring.valid());
  ring.close_read();
  // Larger than capacity: would block forever on a live-but-idle consumer.
  std::vector<u8> buf(8192, 0x55);
  EXPECT_FALSE(ring.write(buf.data(), buf.size()));
}

TEST(Wire, IntegersAreLittleEndianOnEveryHost) {
  // The v3 format (and the socket frame length prefix built on it) is
  // little-endian by definition, not host-endian by accident.
  std::vector<u8> buf;
  wire::put_u32(buf, 0x01020304u);
  EXPECT_EQ(buf, (std::vector<u8>{0x04, 0x03, 0x02, 0x01}));
  buf.clear();
  wire::put_u64(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf, (std::vector<u8>{0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01}));

  u64 v64 = 0;
  wire::Reader r(buf.data(), buf.size());
  ASSERT_TRUE(r.get_u64(v64));
  EXPECT_EQ(v64, 0x0102030405060708ull);
  EXPECT_EQ(wire::load_u32le(buf.data()), 0x05060708u);
}

TEST(ShmRing, CreateFailureIsNonFatalAndReportsAnError) {
  // A bad path (here: a directory that does not exist) must yield an
  // invalid ring with a diagnostic, never a process abort — the daemon
  // passes client-controlled paths into create().
  ShmRing ring = ShmRing::create("/hcsim_no_such_dir/ring.shm", 4096);
  EXPECT_FALSE(ring.valid());
  EXPECT_FALSE(ring.error().empty());
}

TEST(ShmRing, CreateRefusesToReplaceNonRingFile) {
  const std::string path =
      "/tmp/hcsim_not_a_ring_" + std::to_string(::getpid()) + ".dat";
  const std::string precious = "user data, not a ring segment";
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(precious.data(), 1, precious.size(), f), precious.size());
    std::fclose(f);
  }
  ShmRing ring = ShmRing::create(path, 4096);
  EXPECT_FALSE(ring.valid());
  EXPECT_NE(ring.error().find("refusing"), std::string::npos) << ring.error();

  // The existing file survives untouched.
  std::string back(precious.size(), '\0');
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fread(back.data(), 1, back.size(), f), back.size());
  std::fclose(f);
  EXPECT_EQ(back, precious);
  ::unlink(path.c_str());
}

TEST(ShmRing, CreateReplacesAStaleSegment) {
  const std::string path =
      "/tmp/hcsim_stale_ring_" + std::to_string(::getpid()) + ".shm";
  // Fake the leftovers of a crashed run: a header-sized file carrying the
  // ring magic.
  {
    std::vector<u8> stale(sizeof(RingHeader), 0);
    std::memcpy(stale.data(), &ShmRing::kMagic, sizeof(ShmRing::kMagic));
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(stale.data(), 1, stale.size(), f), stale.size());
    std::fclose(f);
  }
  {
    ShmRing ring = ShmRing::create(path, 4096);
    EXPECT_TRUE(ring.valid()) << ring.error();
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0);  // owner unlinked it on destruction
}

TEST(ShmRing, FileBackedCreateAttachUnlink) {
  const std::string path =
      "/tmp/hcsim_ring_test_" + std::to_string(::getpid()) + ".shm";
  {
    ShmRing owner = ShmRing::create(path, 4096);
    ASSERT_TRUE(owner.valid());
    ShmRing peer = ShmRing::attach(path);
    ASSERT_TRUE(peer.valid()) << peer.error();
    EXPECT_EQ(peer.capacity(), owner.capacity());

    const char msg[] = "across the mapping";
    ASSERT_TRUE(owner.write(msg, sizeof(msg)));
    char out[sizeof(msg)] = {};
    ASSERT_EQ(peer.read(out, sizeof(msg)), sizeof(msg));
    EXPECT_STREQ(out, msg);
  }
  // The owning end unlinked the segment on destruction.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
  ShmRing gone = ShmRing::attach(path);
  EXPECT_FALSE(gone.valid());
  EXPECT_FALSE(gone.error().empty());
}

// --- bus protocol edge cases --------------------------------------------------

TEST(TraceBus, TruncatedFinalChunkIsAnError) {
  ShmRing ring = ShmRing::anonymous();
  ASSERT_TRUE(ring.valid());

  const rv::KernelStream stream = rv::open_kernel_stream("crc32");
  std::thread producer([&ring, &stream] {
    std::vector<u8> prog;
    wire::put_program(prog, stream.cracked.program, /*seed=*/1);
    std::vector<u8> buf;
    wire::put_u32(buf, kBusMagic);
    wire::put_u32(buf, kBusVersion);
    wire::put_u32(buf, static_cast<u32>(prog.size()));
    buf.insert(buf.end(), prog.begin(), prog.end());
    wire::put_u32(buf, 8);  // chunk tag promising 8 records ...
    TraceRecord rec{};
    wire::put_record(buf, rec);  // ... but only 1 follows
    ASSERT_TRUE(ring.write(buf.data(), buf.size()));
    ring.close_write();
  });

  BusReader reader(ring);
  ASSERT_TRUE(reader.ok()) << reader.error();
  const auto chunk = reader.next_chunk();
  EXPECT_TRUE(chunk.empty());
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("truncated"), std::string::npos) << reader.error();
  producer.join();
}

TEST(TraceBus, HeaderRejectsBadMagic) {
  ShmRing ring = ShmRing::anonymous();
  ASSERT_TRUE(ring.valid());
  std::vector<u8> buf;
  wire::put_u32(buf, 0xDEADBEEF);
  wire::put_u32(buf, kBusVersion);
  wire::put_u32(buf, 16);
  ASSERT_TRUE(ring.write(buf.data(), buf.size()));
  ring.close_write();
  BusReader reader(ring);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("magic"), std::string::npos) << reader.error();
}

// --- bit-identity acceptance ---------------------------------------------------

/// ISSUE 7 acceptance: an RV-kernel workload streamed over a ShmRing from a
/// separate *process* yields a SimResult bit-identical to the in-process
/// KernelStream path.
TEST(TraceBus, ForkedProducerBitIdenticalToInProcess) {
  const WorkloadProfile profile = rv::rv_workload_profile("crc32");
  constexpr u64 kLen = 30000;
  const MachineConfig cfg = helper_machine(steering_888_br_lr_cr());
  const SimResult local = simulate_streamed(cfg, profile, kLen);

  ShmRing ring = ShmRing::anonymous();  // MAP_SHARED: survives fork()
  ASSERT_TRUE(ring.valid());
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the producer process. _exit, not exit — no gtest teardown here.
    auto src = sample::workload_stream_factory(profile, kLen)();
    const bool complete = produce_trace(ring, *src, /*seed=*/1, kLen);
    ::_exit(complete ? 0 : 1);
  }

  BusCursor cursor(ring);
  ASSERT_TRUE(cursor.ok()) << cursor.error();
  const SimResult remote = simulate(cfg, cursor);
  EXPECT_TRUE(cursor.ok()) << cursor.error();
  expect_identical(remote, local);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

/// Adapter so a windowed run can ride one long-lived BusRecordStream: the
/// factory "reopens" by rewinding the shared stream to 0, which the
/// *producer* resolves (checkpoint restore or stream reopen) on the next
/// range request — the resumable-producer contract under test.
class SharedBusStream final : public sample::RecordStream {
 public:
  explicit SharedBusStream(BusRecordStream& inner) : inner_(inner) {}
  const Program& program() const override { return inner_.program(); }
  void feed_range(u64 begin, u64 end, const sample::RecordSink& sink) override {
    inner_.feed_range(begin, end, sink);
  }
  bool try_rewind(u64 pos) override { return inner_.try_rewind(pos); }

 private:
  BusRecordStream& inner_;
};

TEST(TraceBus, RangeServerBitIdenticalWindowedRuns) {
  const WorkloadProfile profile = rv::rv_workload_profile("dot");
  constexpr u64 kLen = 24000;
  sample::SampleSpec spec;
  spec.warmup = 500;
  spec.measure = 1500;
  spec.period = 4000;

  const MachineConfig cfg = helper_machine(steering_ir());
  const sample::StreamFactory local_factory =
      sample::workload_stream_factory(profile, kLen);
  const sample::WindowedSimulator sim(cfg, spec);
  const sample::SampledResult local = sim.run(local_factory, kLen);

  ShmRing ring = ShmRing::anonymous();
  ASSERT_TRUE(ring.valid());
  std::thread producer([&ring, &local_factory] {
    serve_trace_ranges(ring, local_factory, /*seed=*/1);
  });

  BusRecordStream stream(ring);
  ASSERT_TRUE(stream.ok()) << stream.error();
  const sample::StreamFactory bus_factory = [&stream] {
    EXPECT_TRUE(stream.try_rewind(0));
    return std::make_unique<SharedBusStream>(stream);
  };

  // Twice over the same ring: the second run's first request is backward,
  // forcing the producer through its rewind/reopen path.
  for (int round = 0; round < 2; ++round) {
    const sample::SampledResult remote = sim.run(bus_factory, kLen);
    ASSERT_TRUE(stream.ok()) << stream.error();
    EXPECT_EQ(remote.sampled, local.sampled);
    EXPECT_EQ(remote.measured_uops, local.measured_uops);
    ASSERT_EQ(remote.windows.size(), local.windows.size()) << "round " << round;
    expect_identical(remote.total, local.total);
  }

  ring.close_read();  // the range server exits on consumer departure
  producer.join();
}

}  // namespace
}  // namespace hcsim::bus
