// Property tests: pipeline invariants that must hold for every workload and
// every steering configuration (parameterized sweep).
#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulator.hpp"

namespace hcsim {
namespace {

constexpr u64 kLen = 8000;

using Param = std::tuple<std::string, std::string>;  // app, scheme

SteeringConfig scheme(const std::string& s) {
  if (s == "888") return steering_888();
  if (s == "cr") return steering_888_br_lr_cr();
  if (s == "ir") return steering_ir();
  return steering_ir_block();
}

class PipelineInvariants : public ::testing::TestWithParam<Param> {
 protected:
  const SimResult& result() {
    const auto& [app, sch] = GetParam();
    static std::map<Param, SimResult> cache;
    auto it = cache.find(GetParam());
    if (it == cache.end()) {
      const Trace& t = cached_trace(spec_profile(app), kLen);
      it = cache.emplace(GetParam(), simulate(helper_machine(scheme(sch)), t)).first;
    }
    return it->second;
  }
};

TEST_P(PipelineInvariants, EveryUopCommitsExactlyOnce) {
  const SimResult& r = result();
  EXPECT_EQ(r.uops, kLen);
  EXPECT_EQ(r.counters.get("committed"), kLen);
}

TEST_P(PipelineInvariants, BackendPartition) {
  const SimResult& r = result();
  EXPECT_EQ(r.to_helper + r.to_wide + r.counters.get("issue_fp"), r.uops);
}

TEST_P(PipelineInvariants, ChunksAreFourPerSplit) {
  const SimResult& r = result();
  EXPECT_EQ(r.chunk_uops, 4 * r.split_uops);
}

TEST_P(PipelineInvariants, CopyDirectionsSumToTotal) {
  const SimResult& r = result();
  EXPECT_EQ(r.copies_w2n + r.copies_n2w, r.copies);
}

TEST_P(PipelineInvariants, WidthClassificationExhaustive) {
  const SimResult& r = result();
  // Every width-tracked µop is classified exactly once; the classified
  // population cannot exceed the committed count.
  EXPECT_LE(r.wp_correct + r.wp_nonfatal + r.wp_fatal, r.uops);
  EXPECT_GT(r.wp_correct, 0u);
}

TEST_P(PipelineInvariants, TimeAndIpcSane) {
  const SimResult& r = result();
  EXPECT_GT(r.final_tick, 0u);
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_LE(r.ipc, 6.0);  // commit width (Table 1)
  // At most commit_width µops commit per wide cycle.
  EXPECT_GE(r.wide_cycles * 6.0 + 6.0, static_cast<double>(r.uops));
}

TEST_P(PipelineInvariants, PrefetchAccountingConsistent) {
  const SimResult& r = result();
  EXPECT_EQ(r.cp_useful + r.cp_wasted, r.copy_prefetches);
  EXPECT_LE(r.copy_prefetches, r.copies);
}

TEST_P(PipelineInvariants, BranchCountsMatchTrace) {
  const auto& [app, sch] = GetParam();
  const Trace& t = cached_trace(spec_profile(app), kLen);
  u64 branches = 0;
  for (const TraceRecord& rec : t.records)
    branches += t.uop_of(rec).opcode == Opcode::kBranchCond ? 1 : 0;
  EXPECT_EQ(result().branches, branches);
  EXPECT_LE(result().branch_mispredicts, branches);
}

TEST_P(PipelineInvariants, HitRatesAreProbabilities) {
  const SimResult& r = result();
  EXPECT_GE(r.dl0_hit_rate, 0.0);
  EXPECT_LE(r.dl0_hit_rate, 1.0);
  EXPECT_GE(r.ul1_hit_rate, 0.0);
  EXPECT_LE(r.ul1_hit_rate, 1.0);
}

TEST_P(PipelineInvariants, FatalMispredictionsBounded) {
  // With confidence gating, fatal flushes stay a small fraction of µops.
  const SimResult& r = result();
  EXPECT_LT(r.fatal_rate(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AppsTimesSchemes, PipelineInvariants,
    ::testing::Combine(::testing::Values("bzip2", "crafty", "eon", "gap", "gcc",
                                         "gzip", "mcf", "parser", "perlbmk",
                                         "twolf", "vortex", "vpr"),
                       ::testing::Values("888", "cr", "ir", "irblock")),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return std::get<0>(param_info.param) + "_" + std::get<1>(param_info.param);
    });

}  // namespace
}  // namespace hcsim
