// Tests for the issue-slot ledger and issue-queue occupancy tracker.
#include <gtest/gtest.h>

#include "util/slot_schedule.hpp"

namespace hcsim {
namespace {

TEST(SlotSchedule, WidthPerCycleEnforced) {
  SlotSchedule s(/*width=*/2, /*cycle_ticks=*/1);
  EXPECT_EQ(s.reserve(0), 0u);
  EXPECT_EQ(s.reserve(0), 0u);
  EXPECT_EQ(s.reserve(0), 1u);  // third slot pushed to the next cycle
  EXPECT_EQ(s.reserve(0), 1u);
  EXPECT_EQ(s.reserve(0), 2u);
}

TEST(SlotSchedule, CycleAlignment) {
  SlotSchedule s(1, /*cycle_ticks=*/2);
  // tick 3 falls inside cycle 1 (ticks 2..3); reservation reports the cycle
  // start.
  EXPECT_EQ(s.reserve(3), 2u);
  EXPECT_EQ(s.reserve(3), 4u);
}

TEST(SlotSchedule, HolesCanBeFilled) {
  SlotSchedule s(1, 1);
  EXPECT_EQ(s.reserve(10), 10u);
  // An earlier request may use an earlier, still-free cycle.
  EXPECT_EQ(s.reserve(3), 3u);
}

TEST(SlotSchedule, HasFreeSlot) {
  SlotSchedule s(1, 1);
  EXPECT_TRUE(s.has_free_slot(5));
  (void)s.reserve(5);
  EXPECT_FALSE(s.has_free_slot(5));
  EXPECT_TRUE(s.has_free_slot(6));
}

TEST(SlotSchedule, ReservationCount) {
  SlotSchedule s(3, 2);
  for (int i = 0; i < 7; ++i) (void)s.reserve(0);
  EXPECT_EQ(s.reservations(), 7u);
}

TEST(SlotSchedule, HelperClockPacksTwicePerWideCycle) {
  // A helper cluster at 1-tick cycles fits 2x the issue opportunities of a
  // wide cluster at 2-tick cycles over the same interval.
  SlotSchedule helper(1, 1), wide(1, 2);
  int helper_in_4_ticks = 0, wide_in_4_ticks = 0;
  for (int i = 0; i < 16; ++i) {
    if (helper.reserve(0) < 4) ++helper_in_4_ticks;
    if (wide.reserve(0) < 4) ++wide_in_4_ticks;
  }
  EXPECT_EQ(helper_in_4_ticks, 4);
  EXPECT_EQ(wide_in_4_ticks, 2);
}

TEST(QueueTracker, OccupancyTracksIssueTimes) {
  QueueTracker q(4);
  q.add(/*issue=*/10);
  q.add(12);
  EXPECT_EQ(q.occupancy(5), 2u);
  EXPECT_EQ(q.occupancy(10), 1u);  // first entry left at tick 10
  EXPECT_EQ(q.occupancy(12), 0u);
}

TEST(QueueTracker, DispatchWaitsWhenFull) {
  QueueTracker q(2);
  q.add(100);
  q.add(200);
  // Queue full until tick 100; a dispatch at tick 5 must wait.
  EXPECT_EQ(q.earliest_dispatch(5), 100u);
}

TEST(QueueTracker, DispatchImmediateWhenSpace) {
  QueueTracker q(2);
  q.add(100);
  EXPECT_EQ(q.earliest_dispatch(5), 5u);
}

TEST(QueueTracker, GarbageCollection) {
  QueueTracker q(2);
  q.add(1);
  q.add(2);
  // By tick 3 both entries have issued; occupancy is zero and dispatch free.
  EXPECT_EQ(q.occupancy(3), 0u);
  EXPECT_EQ(q.earliest_dispatch(3), 3u);
}

TEST(QueueTracker, SizeAccessor) {
  QueueTracker q(32);
  EXPECT_EQ(q.size(), 32u);
}

class SlotScheduleWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(SlotScheduleWidths, ThroughputMatchesWidth) {
  const unsigned width = GetParam();
  SlotSchedule s(width, 1);
  // Reserve 10*width slots starting at tick 0: they must occupy exactly 10
  // cycles.
  Tick last = 0;
  for (unsigned i = 0; i < 10 * width; ++i) last = s.reserve(0);
  EXPECT_EQ(last, 9u);
}

INSTANTIATE_TEST_SUITE_P(Widths, SlotScheduleWidths, ::testing::Values(1u, 2u, 3u, 6u));

}  // namespace
}  // namespace hcsim
