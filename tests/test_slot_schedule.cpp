// Tests for the issue-slot ledger and issue-queue occupancy tracker.
#include <gtest/gtest.h>

#include "util/slot_schedule.hpp"

namespace hcsim {
namespace {

TEST(SlotSchedule, WidthPerCycleEnforced) {
  SlotSchedule s(/*width=*/2, /*cycle_ticks=*/1);
  EXPECT_EQ(s.reserve(0), 0u);
  EXPECT_EQ(s.reserve(0), 0u);
  EXPECT_EQ(s.reserve(0), 1u);  // third slot pushed to the next cycle
  EXPECT_EQ(s.reserve(0), 1u);
  EXPECT_EQ(s.reserve(0), 2u);
}

TEST(SlotSchedule, CycleAlignment) {
  SlotSchedule s(1, /*cycle_ticks=*/2);
  // tick 3 falls inside cycle 1 (ticks 2..3); reservation reports the cycle
  // start.
  EXPECT_EQ(s.reserve(3), 2u);
  EXPECT_EQ(s.reserve(3), 4u);
}

TEST(SlotSchedule, HolesCanBeFilled) {
  SlotSchedule s(1, 1);
  EXPECT_EQ(s.reserve(10), 10u);
  // An earlier request may use an earlier, still-free cycle.
  EXPECT_EQ(s.reserve(3), 3u);
}

TEST(SlotSchedule, HasFreeSlot) {
  SlotSchedule s(1, 1);
  EXPECT_TRUE(s.has_free_slot(5));
  (void)s.reserve(5);
  EXPECT_FALSE(s.has_free_slot(5));
  EXPECT_TRUE(s.has_free_slot(6));
}

TEST(SlotSchedule, ReservationCount) {
  SlotSchedule s(3, 2);
  for (int i = 0; i < 7; ++i) (void)s.reserve(0);
  EXPECT_EQ(s.reservations(), 7u);
}

TEST(SlotSchedule, HelperClockPacksTwicePerWideCycle) {
  // A helper cluster at 1-tick cycles fits 2x the issue opportunities of a
  // wide cluster at 2-tick cycles over the same interval.
  SlotSchedule helper(1, 1), wide(1, 2);
  int helper_in_4_ticks = 0, wide_in_4_ticks = 0;
  for (int i = 0; i < 16; ++i) {
    if (helper.reserve(0) < 4) ++helper_in_4_ticks;
    if (wide.reserve(0) < 4) ++wide_in_4_ticks;
  }
  EXPECT_EQ(helper_in_4_ticks, 4);
  EXPECT_EQ(wide_in_4_ticks, 2);
}

TEST(QueueTracker, OccupancyTracksIssueTimes) {
  QueueTracker q(4);
  q.add(/*issue=*/10);
  q.add(12);
  EXPECT_EQ(q.occupancy(5), 2u);
  EXPECT_EQ(q.occupancy(10), 1u);  // first entry left at tick 10
  EXPECT_EQ(q.occupancy(12), 0u);
}

TEST(QueueTracker, DispatchWaitsWhenFull) {
  QueueTracker q(2);
  q.add(100);
  q.add(200);
  // Queue full until tick 100; a dispatch at tick 5 must wait.
  EXPECT_EQ(q.earliest_dispatch(5), 100u);
}

TEST(QueueTracker, DispatchImmediateWhenSpace) {
  QueueTracker q(2);
  q.add(100);
  EXPECT_EQ(q.earliest_dispatch(5), 5u);
}

TEST(QueueTracker, GarbageCollection) {
  QueueTracker q(2);
  q.add(1);
  q.add(2);
  // By tick 3 both entries have issued; occupancy is zero and dispatch free.
  EXPECT_EQ(q.occupancy(3), 0u);
  EXPECT_EQ(q.earliest_dispatch(3), 3u);
}

TEST(QueueTracker, SizeAccessor) {
  QueueTracker q(32);
  EXPECT_EQ(q.size(), 32u);
}

TEST(QueueTracker, EarliestDispatchIsAPureQuery) {
  // Regression: the old multiset tracker erased the earliest occupant
  // inside earliest_dispatch, so a caller that probed without dispatching
  // (the flush/re-steer path runs exec_in twice) silently freed a slot.
  QueueTracker q(2);
  q.add(100);
  q.add(200);
  EXPECT_EQ(q.earliest_dispatch(5), 100u);
  EXPECT_EQ(q.earliest_dispatch(5), 100u);  // unchanged: no occupant was evicted
  EXPECT_EQ(q.occupancy(5), 2u);            // both entries still live
}

TEST(QueueTracker, FullQueueWaitsForEnoughDepartures) {
  // With the queue over-subscribed (probe + add pattern of the IR split
  // loop), a dispatch must wait until occupancy actually drops below the
  // queue size, i.e. for the n-th departure, not just the first.
  QueueTracker q(1);
  q.add(100);
  EXPECT_EQ(q.earliest_dispatch(0), 100u);
  q.add(150);  // the µop that dispatches at 100
  EXPECT_EQ(q.earliest_dispatch(0), 150u);  // 2 live, size 1: needs 2 departures
  EXPECT_EQ(q.earliest_dispatch(120), 150u);  // entry at 100 drained; 1 live, full
  EXPECT_EQ(q.earliest_dispatch(150), 150u);  // all drained: dispatch immediately
}

TEST(QueueTracker, RepeatedOverfullProbesAreStable) {
  // Over-subscribed queue (probe + add pattern): the multi-departure walk
  // must not remember progress across calls — a pure query returns the
  // same answer every time, and no live entry is skipped.
  QueueTracker q(2);
  q.add(100);
  q.add(200);
  q.add(300);
  EXPECT_EQ(q.earliest_dispatch(0), 200u);  // 3 live, size 2: 2 departures
  EXPECT_EQ(q.earliest_dispatch(0), 200u);  // identical on repeat
  EXPECT_EQ(q.occupancy(0), 3u);
  EXPECT_EQ(q.earliest_dispatch(100), 200u);  // entry at 100 drained: 2 live, full
  EXPECT_EQ(q.earliest_dispatch(100), 200u);
}

TEST(QueueTracker, RingGrowsForFarFutureIssueTicks) {
  QueueTracker q(4);
  q.add(10);
  q.add(u64{1} << 20);  // far beyond the initial ring capacity
  EXPECT_EQ(q.occupancy(0), 2u);
  EXPECT_EQ(q.occupancy(10), 1u);
  EXPECT_EQ(q.occupancy(u64{1} << 20), 0u);
}

TEST(SlotSchedule, RingWrapAroundKeepsCounts) {
  // Drive the reservation window far past the 64k-cycle ring capacity: the
  // ring must keep per-cycle counts exact across the wrap.
  SlotSchedule s(2, 1);
  const Tick far = 3u << 16;  // 3x the window
  EXPECT_EQ(s.reserve(far), far);
  EXPECT_EQ(s.reserve(far), far);
  EXPECT_EQ(s.reserve(far), far + 1);  // width enforced after the wrap
  EXPECT_FALSE(s.has_free_slot(far));
  EXPECT_TRUE(s.has_free_slot(far + 1));
}

TEST(SlotSchedule, GcHorizonAdvancesWithTheWindow) {
  SlotSchedule s(1, 1);
  (void)s.reserve(0);
  EXPECT_EQ(s.gc_horizon_cycle(), 0u);
  // Reserving far ahead slides the window; cycle 0 is garbage-collected and
  // reports no free slot (same contract as the old ledger's GC cutoff).
  const Tick far = 5u << 16;
  (void)s.reserve(far);
  EXPECT_GT(s.gc_horizon_cycle(), 0u);
  EXPECT_FALSE(s.has_free_slot(0));
  // A reservation below the horizon is clamped up to it.
  EXPECT_EQ(s.reserve(0), s.gc_horizon_cycle());
}

TEST(SlotSchedule, FreeSlotInFindsGapAndRespectsRange) {
  SlotSchedule s(1, 1);
  for (Tick t = 0; t < 400; ++t) (void)s.reserve(t);  // cycles 0..399 full
  EXPECT_FALSE(s.free_slot_in(0, 400).free);   // saturated region only
  EXPECT_TRUE(s.free_slot_in(0, 401).free);    // cycle 400 is past the frontier
  EXPECT_TRUE(s.free_slot_in(100, 200).truncated == false);
  EXPECT_FALSE(s.free_slot_in(100, 100).free);  // empty interval
}

TEST(SlotSchedule, FreeSlotInClassifiesLongGaps) {
  // Regression for the NREADY accounting: the old tick-stepping probe gave
  // up after 64 samples, so a free slot opening >64 cycles into a long
  // ready->issue gap was missed. The range probe must see it.
  SlotSchedule s(1, 1);
  for (Tick t = 0; t < 500; ++t) (void)s.reserve(t);  // full through cycle 499
  (void)s.reserve(501);                               // leave cycle 500 free
  const auto probe = s.free_slot_in(0, 501);
  EXPECT_TRUE(probe.free);  // the only free cycle is the 501st of the gap
  EXPECT_FALSE(probe.truncated);
  EXPECT_FALSE(s.free_slot_in(0, 500).free);
}

TEST(SlotSchedule, FreeSlotInReportsTruncationBelowHorizon) {
  SlotSchedule s(1, 1);
  (void)s.reserve(6u << 16);  // slide the window; cycle 0 is GC'd
  const auto probe = s.free_slot_in(0, 10);
  EXPECT_TRUE(probe.truncated);
}

TEST(SlotSchedule, FreeSlotInWideClockProbesWholeCycles) {
  // cycle_ticks=2: the tick range [2, 6) overlaps cycles 1 and 2.
  SlotSchedule s(1, 2);
  (void)s.reserve(2);  // cycle 1 full
  (void)s.reserve(4);  // cycle 2 full
  (void)s.reserve(6);  // cycle 3 full (keeps the frontier past the range)
  EXPECT_FALSE(s.free_slot_in(2, 6).free);
  EXPECT_TRUE(s.free_slot_in(2, 9).free);  // cycle 4 is past the frontier
}

class SlotScheduleWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(SlotScheduleWidths, ThroughputMatchesWidth) {
  const unsigned width = GetParam();
  SlotSchedule s(width, 1);
  // Reserve 10*width slots starting at tick 0: they must occupy exactly 10
  // cycles.
  Tick last = 0;
  for (unsigned i = 0; i < 10 * width; ++i) last = s.reserve(0);
  EXPECT_EQ(last, 9u);
}

INSTANTIATE_TEST_SUITE_P(Widths, SlotScheduleWidths, ::testing::Values(1u, 2u, 3u, 6u));

}  // namespace
}  // namespace hcsim
