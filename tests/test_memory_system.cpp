// Tests for the two-level hierarchy timing and the shared MOB.
#include <gtest/gtest.h>

#include "mem/memory_system.hpp"

namespace hcsim {
namespace {

MemoryConfig table1() { return MemoryConfig{}; }

TEST(MemorySystem, Dl0HitLatency) {
  MemorySystem m(table1());
  (void)m.access(0, 0x1000, false);  // cold miss, fills
  const u64 done = m.access(100, 0x1000, false);
  EXPECT_EQ(done, 100 + 3u);  // DL0 hit latency (Table 1)
}

TEST(MemorySystem, Ul1HitLatency) {
  MemoryConfig cfg = table1();
  MemorySystem m(cfg);
  (void)m.access(0, 0x2000, false);  // miss everywhere, fills both
  // Evict from DL0 by streaming a DL0-sized working set mapped widely.
  for (u32 a = 0; a < cfg.dl0.size_bytes * 2; a += 64) (void)m.access(1, 0x100000 + a, false);
  const u64 done = m.access(10000, 0x2000, false);
  EXPECT_EQ(done, 10000 + 3 + 13u);  // DL0 miss -> UL1 hit
}

TEST(MemorySystem, MainMemoryLatency) {
  MemorySystem m(table1());
  const u64 done = m.access(50, 0x3000, false);
  EXPECT_EQ(done, 50 + 3 + 13 + 450u);  // cold: DL0 + UL1 + memory
}

TEST(MemorySystem, PortsArePipelined) {
  // Two DL0 ports: three simultaneous hits take two cycles of port time,
  // not 2x the full latency.
  MemorySystem m(table1());
  (void)m.access(0, 0x4000, false);
  (void)m.access(0, 0x4040, false);
  (void)m.access(0, 0x4080, false);
  const u64 a = m.access(100, 0x4000, false);
  const u64 b = m.access(100, 0x4040, false);
  const u64 c = m.access(100, 0x4080, false);
  EXPECT_EQ(a, 103u);
  EXPECT_EQ(b, 103u);
  EXPECT_EQ(c, 104u);  // third access waits one cycle for a port
}

TEST(MemorySystem, StoreMissDoesNotPayFullMemoryRoundTrip) {
  MemorySystem m(table1());
  const u64 st = m.access(0, 0x9000, true);
  EXPECT_LE(st, 0 + 3 + 13u);
}

TEST(Mob, ForwardFromOlderStore) {
  Mob mob;
  mob.add_store(/*seq=*/10, /*addr=*/0x100, /*ready=*/55);
  const auto chk = mob.check_load(/*seq=*/12, 0x100);
  EXPECT_TRUE(chk.forwarded);
  EXPECT_EQ(chk.ready_cycle, 55u);
}

TEST(Mob, NoForwardFromYoungerStore) {
  Mob mob;
  mob.add_store(20, 0x100, 55);
  const auto chk = mob.check_load(15, 0x100);
  EXPECT_FALSE(chk.forwarded);
}

TEST(Mob, NoForwardDifferentWord) {
  Mob mob;
  mob.add_store(10, 0x100, 55);
  EXPECT_FALSE(mob.check_load(12, 0x104).forwarded);
  // Same word, different byte: forwards (word granularity).
  EXPECT_TRUE(mob.check_load(12, 0x102).forwarded);
}

TEST(Mob, YoungestOlderStoreWins) {
  Mob mob;
  mob.add_store(10, 0x100, 55);
  mob.add_store(11, 0x100, 77);
  const auto chk = mob.check_load(12, 0x100);
  EXPECT_TRUE(chk.forwarded);
  EXPECT_EQ(chk.ready_cycle, 77u);
}

TEST(Mob, RetireRemovesOldStores) {
  Mob mob;
  mob.add_store(10, 0x100, 55);
  mob.add_store(20, 0x200, 66);
  mob.store_retired(10);
  EXPECT_EQ(mob.size(), 1u);
  EXPECT_FALSE(mob.check_load(30, 0x100).forwarded);
  EXPECT_TRUE(mob.check_load(30, 0x200).forwarded);
}

TEST(Mob, SquashRemovesYoungStores) {
  Mob mob;
  mob.add_store(10, 0x100, 55);
  mob.add_store(20, 0x200, 66);
  mob.add_store(30, 0x300, 77);
  mob.squash_from(20);
  EXPECT_EQ(mob.size(), 1u);
  EXPECT_TRUE(mob.check_load(40, 0x100).forwarded);
  EXPECT_FALSE(mob.check_load(40, 0x200).forwarded);
}

}  // namespace
}  // namespace hcsim
