// Tests for the simulation facade.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace hcsim {
namespace {

TEST(Simulator, CachedTraceReturnsSameObject) {
  const WorkloadProfile& p = spec_profile("gcc");
  const Trace& a = cached_trace(p, 5000);
  const Trace& b = cached_trace(p, 5000);
  EXPECT_EQ(&a, &b);
  const Trace& c = cached_trace(p, 6000);
  EXPECT_NE(&a, &c);
}

TEST(Simulator, RunAppProducesBothMachines) {
  const AppRun run = run_app(spec_profile("gcc"), steering_888(), 10000);
  EXPECT_EQ(run.app, "gcc");
  EXPECT_EQ(run.baseline.uops, 10000u);
  EXPECT_EQ(run.helper.uops, 10000u);
  EXPECT_EQ(run.baseline.config, "baseline");
  EXPECT_EQ(run.helper.config, "8_8_8");
  EXPECT_GT(run.speedup(), 0.0);
  EXPECT_NEAR(run.perf_increase_pct(), (run.speedup() - 1.0) * 100.0, 1e-12);
}

TEST(Simulator, MultiRunSharesBaseline) {
  const std::vector<SteeringConfig> cfgs = {steering_888(), steering_ir()};
  const MultiRun run = run_app_configs(spec_profile("gzip"), cfgs, 10000);
  ASSERT_EQ(run.configs.size(), 2u);
  EXPECT_EQ(run.configs[0].config, "8_8_8");
  EXPECT_EQ(run.configs[1].config, "8_8_8+BR+LR+CR+CP+IR");
  EXPECT_EQ(run.baseline.uops, run.configs[0].uops);
}

TEST(Simulator, SpecSuiteCoversAllApps) {
  const auto runs = run_spec_suite(steering_888(), 5000);
  ASSERT_EQ(runs.size(), 12u);
  std::set<std::string> names;
  for (const auto& r : runs) names.insert(r.app);
  EXPECT_EQ(names.size(), 12u);
}

TEST(Simulator, DescribeMachineMentionsTable1Parameters) {
  const std::string s = describe_machine(helper_machine(steering_ir()));
  EXPECT_NE(s.find("32 entry scheduler, 3 issue"), std::string::npos);
  EXPECT_NE(s.find("32KB"), std::string::npos);
  EXPECT_NE(s.find("4MB"), std::string::npos);
  EXPECT_NE(s.find("450 cycles"), std::string::npos);
  EXPECT_NE(s.find("8-bit"), std::string::npos);
  EXPECT_NE(s.find("2x clock"), std::string::npos);
}

TEST(Simulator, BaselineDescriptionOmitsHelper) {
  const std::string s = describe_machine(monolithic_baseline());
  EXPECT_EQ(s.find("Helper cluster"), std::string::npos);
}

TEST(Simulator, DefaultTraceLenPositive) {
  EXPECT_GT(default_trace_len(), 0u);
}

TEST(Simulator, MachineConfigFactories) {
  EXPECT_FALSE(monolithic_baseline().steer.helper_enabled);
  EXPECT_TRUE(helper_machine(steering_888()).steer.helper_enabled);
  EXPECT_TRUE(helper_machine(steering_ir()).steer.ir);
}

}  // namespace
}  // namespace hcsim
