// Figure 9 — minimization of copy percentage due to Load Replication.
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 9 - copy percentage: 8_8_8 / +BR / +BR+LR",
         "LR (8-bit loads allocate registers in both clusters via the shared "
         "MOB) decreases copies from 10.8% to 6.4%");

  const std::vector<SteeringConfig> cfgs = {steering_888(), steering_888_br(),
                                            steering_888_br_lr()};
  TextTable t({"app", "8_8_8", "+BR", "+BR+LR"});
  std::vector<double> c0s, c1s, c2s;
  for (const std::string& app : spec_names()) {
    const MultiRun run = run_app_configs(spec_profile(app), cfgs);
    const double c0 = 100.0 * run.configs[0].copy_frac();
    const double c1 = 100.0 * run.configs[1].copy_frac();
    const double c2 = 100.0 * run.configs[2].copy_frac();
    c0s.push_back(c0);
    c1s.push_back(c1);
    c2s.push_back(c2);
    t.add_row({app, TextTable::num(c0, 1), TextTable::num(c1, 1), TextTable::num(c2, 1)});
  }
  t.add_row({"AVG", TextTable::num(avg(c0s), 1), TextTable::num(avg(c1s), 1),
             TextTable::num(avg(c2s), 1)});
  std::printf("%s\n", t.render().c_str());
  footer_shape(avg(c2s) < avg(c1s) && avg(c1s) < avg(c0s),
               "copies fall monotonically: 8_8_8 > +BR > +BR+LR");
  return 0;
}
