// Figure 1 — percentage of register operands that are narrow (8-bit)
// data-width dependent, per SPEC Int 2000 application; plus the Section 1
// ALU operand-mix statistics (39.4% / 3.3% / 43.5%).
#include "analysis/trace_stats.hpp"
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 1 - narrow data-width dependent register operands",
         "substantial narrow dependency across SPEC Int 2000, ~65% average");

  TextTable t({"app", "narrow-dependent %", "bar"});
  std::vector<double> vals;
  for (const std::string& app : spec_names()) {
    const Trace& tr = cached_trace(spec_profile(app), default_trace_len());
    const auto s = narrow_dependency_stats(tr);
    const double pct = s.operands_narrow_dependent.percent();
    vals.push_back(pct);
    t.add_row({app, TextTable::num(pct, 1), ascii_bar(pct, 100.0)});
  }
  t.add_row({"AVG", TextTable::num(avg(vals), 1), ascii_bar(avg(vals), 100.0)});
  std::printf("%s\n", t.render().c_str());

  // Section 1 text: ALU operand mix.
  Ratio one, two_wide, two_narrow;
  for (const std::string& app : spec_names()) {
    const Trace& tr = cached_trace(spec_profile(app), default_trace_len());
    const auto s = narrow_dependency_stats(tr);
    one.add_n(s.alu_one_narrow.num, s.alu_one_narrow.den);
    two_wide.add_n(s.alu_two_narrow_wide_result.num, s.alu_two_narrow_wide_result.den);
    two_narrow.add_n(s.alu_two_narrow_narrow_result.num,
                     s.alu_two_narrow_narrow_result.den);
  }
  std::printf("ALU operand mix (paper: 39.4%% one-narrow, 3.3%% 2-narrow->wide, "
              "43.5%% 2-narrow->narrow):\n");
  std::printf("  one narrow operand          : %.1f%%\n", one.percent());
  std::printf("  two narrow -> wide result   : %.1f%%\n", two_wide.percent());
  std::printf("  two narrow -> narrow result : %.1f%%\n", two_narrow.percent());

  const bool ok = avg(vals) > 30.0 && avg(vals) < 90.0 &&
                  two_narrow.percent() > two_wide.percent();
  footer_shape(ok, "substantial narrow dependency; 2-narrow->narrow dominates "
                   "2-narrow->wide");
  return 0;
}
