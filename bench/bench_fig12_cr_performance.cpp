// Figure 12 — performance of the Carry Not Propagated (CR) scheme:
// 8_8_8 vs 8_8_8+BR+LR+CR per app.
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 12 - performance of the CR scheme",
         "47.5% of instructions execute in the helper with 15.7% copies; "
         "+14.5% average performance (vs +6.2% for plain 8_8_8)");

  const std::vector<SteeringConfig> cfgs = {steering_888(), steering_888_br_lr_cr()};
  TextTable t({"app", "8_8_8 %", "8_8_8+BR+LR+CR %"});
  std::vector<double> g0s, g1s, steered, copies;
  for (const std::string& app : spec_names()) {
    const MultiRun run = run_app_configs(spec_profile(app), cfgs);
    const double g0 = (run.configs[0].speedup_vs(run.baseline) - 1.0) * 100.0;
    const double g1 = (run.configs[1].speedup_vs(run.baseline) - 1.0) * 100.0;
    g0s.push_back(g0);
    g1s.push_back(g1);
    steered.push_back(100.0 * run.configs[1].helper_frac());
    copies.push_back(100.0 * run.configs[1].copy_frac());
    t.add_row({app, TextTable::num(g0, 1), TextTable::num(g1, 1)});
  }
  t.add_row({"AVG", TextTable::num(avg(g0s), 1), TextTable::num(avg(g1s), 1)});
  std::printf("%s\n", t.render().c_str());
  std::printf("CR config: %.1f%% steered, %.1f%% copies (paper: 47.5%%, 15.7%%)\n",
              avg(steered), avg(copies));
  footer_shape(avg(g1s) > avg(g0s) && avg(steered) > 35.0,
               "CR raises both helper occupancy and performance over 8_8_8");
  return 0;
}
