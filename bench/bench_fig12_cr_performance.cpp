// Figure 12 — performance of the Carry Not Propagated (CR) scheme:
// 8_8_8 vs 8_8_8+BR+LR+CR per app. Driven by the exp/ sweep engine
// ("fig12": 12 apps x {8_8_8, 8_8_8+BR+LR+CR}).
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 12 - performance of the CR scheme",
         "47.5% of instructions execute in the helper with 15.7% copies; "
         "+14.5% average performance (vs +6.2% for plain 8_8_8)");

  const exp::SweepResult res = run_named_sweep("fig12");

  // Grid order is app-major: points[2*a] is 8_8_8, points[2*a+1] is +BR+LR+CR.
  TextTable t({"app", "8_8_8 %", "8_8_8+BR+LR+CR %"});
  std::vector<double> g0s, g1s, steered, copies;
  HCSIM_CHECK(res.points.size() % 2 == 0, "fig12 sweep must have 2 variants per app");
  for (std::size_t i = 0; i + 1 < res.points.size(); i += 2) {
    const exp::PointResult& p0 = res.points[i];
    const exp::PointResult& p1 = res.points[i + 1];
    HCSIM_CHECK(p0.point.workload_idx == p1.point.workload_idx &&
                    p0.point.variant_idx == 0 && p1.point.variant_idx == 1,
                "fig12 sweep grid no longer pairs {8_8_8, +BR+LR+CR} per app");
    g0s.push_back(p0.perf_increase_pct());
    g1s.push_back(p1.perf_increase_pct());
    steered.push_back(100.0 * p1.sim.helper_frac());
    copies.push_back(100.0 * p1.sim.copy_frac());
    t.add_row({p0.point.profile.name, TextTable::num(g0s.back(), 1),
               TextTable::num(g1s.back(), 1)});
  }
  t.add_row({"AVG", TextTable::num(avg(g0s), 1), TextTable::num(avg(g1s), 1)});
  std::printf("%s\n", t.render().c_str());
  std::printf("CR config: %.1f%% steered, %.1f%% copies (paper: 47.5%%, 15.7%%)\n",
              avg(steered), avg(copies));
  footer_shape(avg(g1s) > avg(g0s) && avg(steered) > 35.0,
               "CR raises both helper occupancy and performance over 8_8_8");
  return 0;
}
