// Figure 13 — average producer-consumer distance in dynamic instructions.
#include "analysis/trace_stats.hpp"
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 13 - average producer-consumer distance (IA-32)",
         "distances of ~2-6 instructions: good for copy prefetching (CP)");

  TextTable t({"app", "distance (uops)", "p90"});
  std::vector<double> means;
  for (const std::string& app : spec_names()) {
    const Trace& tr = cached_trace(spec_profile(app), default_trace_len());
    const DistanceStats s = producer_consumer_distance(tr);
    means.push_back(s.mean());
    t.add_row({app, TextTable::num(s.mean(), 2),
               std::to_string(s.distance.quantile(0.9))});
  }
  t.add_row({"AVG", TextTable::num(avg(means), 2), ""});
  std::printf("%s\n", t.render().c_str());
  footer_shape(avg(means) > 1.5 && avg(means) < 8.0,
               "short distances: prefetched copies arrive just in time, "
               "without long queue residence");
  return 0;
}
