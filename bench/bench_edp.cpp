// Section 3.7 (end) — energy-delay^2 comparison of the baseline with the
// helper cluster in its most resource-aggressive configuration (IR).
#include "bench_util.hpp"
#include "power/power_model.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Energy-delay^2 - baseline vs helper cluster (IR configuration)",
         "helper cluster is 5.1% more energy-delay^2 efficient than baseline");

  TextTable t({"app", "E base", "E helper", "D ratio", "ED2 gain %"});
  std::vector<double> gains, e_ratio;
  for (const std::string& app : spec_names()) {
    const AppRun run = run_app(spec_profile(app), steering_ir());
    const PowerReport pb = analyze_power(run.baseline, monolithic_baseline());
    const PowerReport ph = analyze_power(run.helper, helper_machine(steering_ir()));
    const double gain = 100.0 * (1.0 - ph.ed2p / pb.ed2p);
    gains.push_back(gain);
    e_ratio.push_back(ph.energy / pb.energy);
    t.add_row({app, TextTable::num(pb.energy, 0), TextTable::num(ph.energy, 0),
               TextTable::num(ph.delay / pb.delay, 3), TextTable::num(gain, 1)});
  }
  t.add_row({"AVG", "", "", "", TextTable::num(avg(gains), 1)});
  std::printf("%s\n", t.render().c_str());
  std::printf("average energy ratio helper/baseline: %.2f (the helper adds "
              "energy; the ED^2 win comes from delay)\n", avg(e_ratio));
  footer_shape(avg(gains) > 0.0 && avg(e_ratio) > 1.0,
               "helper cluster spends more energy but wins on ED^2");
  return 0;
}
