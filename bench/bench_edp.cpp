// Section 3.7 (end) — energy-delay^2 comparison of the baseline with the
// helper cluster in its most resource-aggressive configuration (IR).
// Driven by the exp/ sweep engine ("edp": 12 apps x {IR}), which computes
// the power reports alongside each simulation.
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Energy-delay^2 - baseline vs helper cluster (IR configuration)",
         "helper cluster is 5.1% more energy-delay^2 efficient than baseline");

  const exp::SweepResult res = run_named_sweep("edp");

  TextTable t({"app", "E base", "E helper", "D ratio", "ED2 gain %"});
  std::vector<double> gains, e_ratio;
  for (const exp::PointResult& pr : res.points) {
    const double gain = pr.ed2p_gain_pct();
    gains.push_back(gain);
    e_ratio.push_back(pr.power_sim.energy / pr.power_baseline.energy);
    t.add_row({pr.point.profile.name, TextTable::num(pr.power_baseline.energy, 0),
               TextTable::num(pr.power_sim.energy, 0),
               TextTable::num(pr.power_sim.delay / pr.power_baseline.delay, 3),
               TextTable::num(gain, 1)});
  }
  t.add_row({"AVG", "", "", "", TextTable::num(avg(gains), 1)});
  std::printf("%s\n", t.render().c_str());
  std::printf("average energy ratio helper/baseline: %.2f (the helper adds "
              "energy; the ED^2 win comes from delay)\n", avg(e_ratio));
  footer_shape(avg(gains) > 0.0 && avg(e_ratio) > 1.0,
               "helper cluster spends more energy but wins on ED^2");
  return 0;
}
