// Ablation — block-granularity splitting, the extension the paper proposes
// in the last paragraph of Section 3.7: "a helper cluster that operates
// with a looser granularity: complete blocks of wide instructions are split
// up and sent in their entirety to the narrow cluster, thus minimizing
// copies while decreasing imbalance."
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Ablation - block-granularity instruction splitting (paper's "
         "proposed extension)",
         "sending whole blocks to the helper should minimize copies while "
         "still reducing imbalance");

  const std::vector<SteeringConfig> cfgs = {steering_ir(), steering_ir_block()};
  TextTable t({"config", "perf+%", "steered%", "copies%", "copies/split",
               "NREADY w2n%"});
  double perf[2] = {0, 0}, steered[2] = {0, 0}, copies[2] = {0, 0};
  double cps[2] = {0, 0}, w2n[2] = {0, 0};
  for (const std::string& app : spec_names()) {
    const MultiRun run = run_app_configs(spec_profile(app), cfgs);
    for (int i = 0; i < 2; ++i) {
      const SimResult& r = run.configs[i];
      perf[i] += (r.speedup_vs(run.baseline) - 1.0) * 100.0;
      steered[i] += 100.0 * r.helper_frac();
      copies[i] += 100.0 * r.copy_frac();
      cps[i] += r.split_uops ? static_cast<double>(r.copies) /
                                   static_cast<double>(r.split_uops)
                             : 0.0;
      w2n[i] += r.nready_w2n_pct();
    }
  }
  const double n = static_cast<double>(spec_names().size());
  const char* names[] = {"+IR (4-copy prefetch back)", "+IR(block)"};
  for (int i = 0; i < 2; ++i)
    t.add_row({names[i], TextTable::num(perf[i] / n, 1),
               TextTable::num(steered[i] / n, 1), TextTable::num(copies[i] / n, 1),
               TextTable::num(cps[i] / n, 1), TextTable::num(w2n[i] / n, 1)});
  std::printf("%s\n", t.render().c_str());
  footer_shape(copies[1] < copies[0] && perf[1] > 0.0,
               "block splitting cuts copy traffic relative to per-uop "
               "splitting at comparable performance");
  return 0;
}
