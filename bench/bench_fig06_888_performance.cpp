// Figure 6 — performance of the 8-8-8 scheme per SPEC Int 2000 app.
// Driven by the exp/ sweep engine ("fig06": 12 apps x {8_8_8}).
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 6 - performance of the 8_8_8 scheme",
         "+6.2% average; bzip2 worst (high copy/narrow ratio), gcc best (low)");

  const exp::SweepResult res = run_named_sweep("fig06");

  TextTable t({"app", "perf increase %", "copy/narrow ratio", "bar"});
  std::vector<double> gains;
  double bzip2_gain = 0, bzip2_ratio = 0, gcc_ratio = 0;
  for (const exp::PointResult& pr : res.points) {
    const std::string& app = pr.point.profile.name;
    const double g = pr.perf_increase_pct();
    const double ratio = pr.sim.to_helper
                             ? static_cast<double>(pr.sim.copies) /
                                   static_cast<double>(pr.sim.to_helper)
                             : 0.0;
    gains.push_back(g);
    if (app == "bzip2") { bzip2_gain = g; bzip2_ratio = ratio; }
    if (app == "gcc") gcc_ratio = ratio;
    t.add_row({app, TextTable::num(g, 1), TextTable::num(ratio, 2),
               ascii_bar(g, 25.0, 25)});
  }
  t.add_row({"AVG", TextTable::num(avg(gains), 1), "", ""});
  std::printf("%s\n", t.render().c_str());
  std::printf("bzip2 copy/narrow ratio %.2f vs gcc %.2f (the paper singles out "
              "bzip2's very high ratio and gcc's low one)\n",
              bzip2_ratio, gcc_ratio);
  footer_shape(avg(gains) > 0.0 && bzip2_gain < avg(gains),
               "positive average with bzip2 below it (copy/memory bound). "
               "Note: our copy/narrow ratios cluster near 1.0 for all apps "
               "(see EXPERIMENTS.md)");
  return 0;
}
