// Figure 14 + Table 2 — the wrap-up study: per-category performance of the
// best steering (IR) over 409 generated applications in 7 categories, plus
// the per-app S-curve summary (baseline = 1).
//
// The per-app trace length is reduced relative to the SPEC benches to keep
// 409 x 2 simulations tractable; HCSIM_FIG14_LEN overrides it.
#include <algorithm>

#include "bench_util.hpp"
#include "util/log.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 14 - helper cluster performance across workload categories",
         "consistent gains; multimedia/kernels/sfp benefit more than "
         "office/productivity; 11% average over the full set");

  const u64 len = env_u64("HCSIM_FIG14_LEN", 40000);
  std::vector<double> all_speedups;
  TextTable t({"category", "#traces", "perf increase %", "bar"});
  std::vector<std::pair<std::string, double>> cat_gain;
  for (const WorkloadCategory& cat : workload_categories()) {
    std::vector<double> speedups;
    for (unsigned i = 0; i < cat.num_traces; ++i) {
      const WorkloadProfile prof = category_app_profile(cat, i);
      const AppRun run = run_app(prof, steering_ir(), len);
      speedups.push_back(run.speedup());
      all_speedups.push_back(run.speedup());
    }
    const double gain = (geomean(speedups) - 1.0) * 100.0;
    cat_gain.emplace_back(cat.name, gain);
    t.add_row({cat.name, std::to_string(cat.num_traces), TextTable::num(gain, 1),
               ascii_bar(gain, 30.0, 30)});
  }
  const double overall = (geomean(all_speedups) - 1.0) * 100.0;
  t.add_row({"ALL", std::to_string(all_speedups.size()), TextTable::num(overall, 1),
             ascii_bar(overall, 30.0, 30)});
  std::printf("%s\n", t.render().c_str());

  // S-curve summary (the paper plots per-app speedup sorted ascending).
  std::sort(all_speedups.begin(), all_speedups.end());
  auto q = [&](double f) {
    return all_speedups[static_cast<std::size_t>(f * (all_speedups.size() - 1))];
  };
  std::printf("S-curve (baseline=1): min %.2f  p10 %.2f  p25 %.2f  median %.2f  "
              "p75 %.2f  p90 %.2f  max %.2f\n",
              all_speedups.front(), q(0.10), q(0.25), q(0.50), q(0.75), q(0.90),
              all_speedups.back());
  const double frac_above_1 =
      static_cast<double>(std::count_if(all_speedups.begin(), all_speedups.end(),
                                        [](double s) { return s > 1.0; })) /
      static_cast<double>(all_speedups.size());
  std::printf("fraction of apps with speedup > 1: %.1f%%\n", 100.0 * frac_above_1);

  // Shape: regular/arithmetic categories beat office/productivity.
  double regular = 0, irregular = 0;
  for (const auto& [name, gain] : cat_gain) {
    if (name == "kernels" || name == "mm" || name == "sfp" || name == "enc")
      regular += gain / 4.0;
    if (name == "office" || name == "prod") irregular += gain / 2.0;
  }
  footer_shape(overall > 0.0 && regular > irregular && frac_above_1 > 0.8,
               "consistent gains; regular/arithmetic categories benefit most");
  return 0;
}
