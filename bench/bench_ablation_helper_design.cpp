// Ablation — helper cluster design space: clock ratio (Section 2.2's 2x
// claim), datapath width (Section 2.1: "more narrow instructions would be
// executed ... if it would be possible to construct a wider than 8-bits"),
// and reduced helper scheduler resources (Section 2.2: "negligible impact").
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

namespace {

double avg_gain(const MachineConfig& helper_cfg, u64 len) {
  std::vector<double> gains;
  for (const char* app : {"gcc", "gzip", "twolf", "parser", "vpr"}) {
    const hcsim::Trace& tr = cached_trace(spec_profile(app), len);
    const SimResult rb = simulate(monolithic_baseline(), tr);
    const SimResult rh = simulate(helper_cfg, tr);
    // Compare wide-cycle counts, not raw ticks: a wide cycle is the same
    // physical duration regardless of the helper clock ratio.
    gains.push_back((rb.wide_cycles / rh.wide_cycles - 1.0) * 100.0);
  }
  return hcsim::bench::avg(gains);
}

}  // namespace

int main() {
  const u64 len = default_trace_len();

  header("Ablation A - helper clock ratio",
         "the 8-bit backend can be clocked 2x the 32-bit backend (Sec 2.2)");
  TextTable ta({"clock ratio", "perf+% (avg)"});
  std::vector<double> ratio_gain;
  for (unsigned ratio : {1u, 2u, 3u, 4u}) {
    MachineConfig cfg = helper_machine(steering_ir());
    cfg.ticks_per_wide_cycle = ratio;
    const double g = avg_gain(cfg, len);
    ratio_gain.push_back(g);
    ta.add_row({std::to_string(ratio) + "x", TextTable::num(g, 1)});
  }
  std::printf("%s\n", ta.render().c_str());

  header("Ablation B - helper datapath width",
         "8 bits is the complexity/performance design point; wider helpers "
         "catch more instructions (Sec 2.1)");
  TextTable tb({"width (bits)", "perf+% (avg)", "steered% (gcc)"});
  for (unsigned width : {4u, 8u, 16u}) {
    MachineConfig cfg = helper_machine(steering_ir());
    cfg.helper_width_bits = width;
    const double g = avg_gain(cfg, len);
    const SimResult r = simulate(cfg, cached_trace(spec_profile("gcc"), len));
    tb.add_row({std::to_string(width), TextTable::num(g, 1),
                TextTable::num(100.0 * r.helper_frac(), 1)});
  }
  std::printf("%s\n", tb.render().c_str());

  header("Ablation C - reduced helper scheduler",
         "reduced issue queue size and width: negligible impact (Sec 2.2)");
  TextTable tc({"helper IQ/issue", "perf+% (avg)"});
  double full = 0, reduced = 0;
  {
    MachineConfig cfg = helper_machine(steering_ir());
    full = avg_gain(cfg, len);
    tc.add_row({"32 / 3", TextTable::num(full, 1)});
    cfg.iq_helper = 16;
    cfg.issue_helper = 2;
    reduced = avg_gain(cfg, len);
    tc.add_row({"16 / 2", TextTable::num(reduced, 1)});
  }
  std::printf("%s\n", tc.render().c_str());

  footer_shape(ratio_gain[1] > ratio_gain[0] && full - reduced < 6.0,
               "2x clock clearly beats 1x; shrinking the helper scheduler "
               "costs comparatively little");
  return 0;
}
