// Ablation — helper cluster design space: clock ratio (Section 2.2's 2x
// claim), datapath width (Section 2.1: "more narrow instructions would be
// executed ... if it would be possible to construct a wider than 8-bits"),
// and reduced helper scheduler resources (Section 2.2: "negligible impact").
//
// Driven by the exp/ sweep engine ("helper_design": 5 apps x 7 machine
// variants; width8 is the clock2x variant — same machine). Gains compare
// wide-cycle counts, not raw ticks: a wide cycle is the same physical
// duration regardless of the helper clock ratio.
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

namespace {

/// Mean wide-cycle gain (%) of one variant across the sweep's apps.
double variant_gain(const std::vector<exp::VariantSummary>& summaries,
                    const std::string& config) {
  for (const exp::VariantSummary& s : summaries)
    if (s.config == config) return (s.mean_wide_cycle_speedup - 1.0) * 100.0;
  HCSIM_CHECK(false, "variant missing from helper_design sweep: " + config);
}

}  // namespace

int main() {
  const exp::SweepResult res = run_named_sweep("helper_design");
  const std::vector<exp::VariantSummary> summaries = exp::summarize(res);

  header("Ablation A - helper clock ratio",
         "the 8-bit backend can be clocked 2x the 32-bit backend (Sec 2.2)");
  TextTable ta({"clock ratio", "perf+% (avg)"});
  std::vector<double> ratio_gain;
  for (unsigned ratio : {1u, 2u, 3u, 4u}) {
    const double g = variant_gain(summaries, "clock" + std::to_string(ratio) + "x");
    ratio_gain.push_back(g);
    ta.add_row({std::to_string(ratio) + "x", TextTable::num(g, 1)});
  }
  std::printf("%s\n", ta.render().c_str());

  header("Ablation B - helper datapath width",
         "8 bits is the complexity/performance design point; wider helpers "
         "catch more instructions (Sec 2.1)");
  TextTable tb({"width (bits)", "perf+% (avg)", "steered% (gcc)"});
  for (unsigned width : {4u, 8u, 16u}) {
    // The 8-bit row is the default machine, which the sweep names "clock2x".
    const std::string config = width == 8 ? "clock2x" : "width" + std::to_string(width);
    double gcc_steered = -1.0;
    for (const exp::PointResult& pr : res.points)
      if (pr.point.profile.name == "gcc" && pr.point.variant.name == config)
        gcc_steered = 100.0 * pr.sim.helper_frac();
    HCSIM_CHECK(gcc_steered >= 0.0, "helper_design sweep lost the (gcc, " + config +
                                        ") point");
    tb.add_row({std::to_string(width), TextTable::num(variant_gain(summaries, config), 1),
                TextTable::num(gcc_steered, 1)});
  }
  std::printf("%s\n", tb.render().c_str());

  header("Ablation C - reduced helper scheduler",
         "reduced issue queue size and width: negligible impact (Sec 2.2)");
  TextTable tc({"helper IQ/issue", "perf+% (avg)"});
  // The full 32-entry/3-issue helper at the default 2x clock is the
  // "clock2x" variant.
  const double full = variant_gain(summaries, "clock2x");
  const double reduced = variant_gain(summaries, "iq16x2");
  tc.add_row({"32 / 3", TextTable::num(full, 1)});
  tc.add_row({"16 / 2", TextTable::num(reduced, 1)});
  std::printf("%s\n", tc.render().c_str());

  footer_shape(ratio_gain[1] > ratio_gain[0] && full - reduced < 6.0,
               "2x clock clearly beats 1x; shrinking the helper scheduler "
               "costs comparatively little");
  return 0;
}
