// Section 3.6 — Copy Prefetching: predictor accuracy (~90%), copy
// percentage (21.4%) and performance (+16.7% vs +14.5% for CR).
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Section 3.6 - Copy Prefetching (CP)",
         "CP predictor ~90% accurate; copies rise to 21.4%; perf to +16.7%");

  const std::vector<SteeringConfig> cfgs = {steering_888_br_lr_cr(), steering_cp()};
  TextTable t({"app", "CR perf%", "+CP perf%", "CR copies%", "+CP copies%",
               "prefetch useful%"});
  std::vector<double> g0s, g1s, c0s, c1s, acc;
  for (const std::string& app : spec_names()) {
    const MultiRun run = run_app_configs(spec_profile(app), cfgs);
    const double g0 = (run.configs[0].speedup_vs(run.baseline) - 1.0) * 100.0;
    const double g1 = (run.configs[1].speedup_vs(run.baseline) - 1.0) * 100.0;
    const double c0 = 100.0 * run.configs[0].copy_frac();
    const double c1 = 100.0 * run.configs[1].copy_frac();
    const SimResult& cp = run.configs[1];
    const double useful = cp.copy_prefetches
                              ? 100.0 * static_cast<double>(cp.cp_useful) /
                                    static_cast<double>(cp.copy_prefetches)
                              : 0.0;
    g0s.push_back(g0);
    g1s.push_back(g1);
    c0s.push_back(c0);
    c1s.push_back(c1);
    acc.push_back(useful);
    t.add_row({app, TextTable::num(g0, 1), TextTable::num(g1, 1),
               TextTable::num(c0, 1), TextTable::num(c1, 1), TextTable::num(useful, 1)});
  }
  t.add_row({"AVG", TextTable::num(avg(g0s), 1), TextTable::num(avg(g1s), 1),
             TextTable::num(avg(c0s), 1), TextTable::num(avg(c1s), 1),
             TextTable::num(avg(acc), 1)});
  std::printf("%s\n", t.render().c_str());
  footer_shape(avg(g1s) >= avg(g0s) - 0.3 && avg(c1s) > avg(c0s) && avg(acc) > 60.0,
               "CP trades extra copies for latency hiding; prefetches are "
               "mostly useful");
  return 0;
}
