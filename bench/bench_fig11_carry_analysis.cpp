// Figure 11 — for µops with one 8-bit and one 32-bit source and a 32-bit
// output, the percentage whose carry does not propagate past the low byte,
// split into loads (address generation) and additive arithmetic.
#include "analysis/trace_stats.hpp"
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 11 - carry-not-propagated percentage (8+32->32 pattern)",
         "substantial confinement for both loads and arithmetic: the CR "
         "opportunity");

  TextTable t({"app", "arith %", "load %"});
  std::vector<double> arith, load;
  for (const std::string& app : spec_names()) {
    const Trace& tr = cached_trace(spec_profile(app), default_trace_len());
    const CarryStats s = carry_stats(tr);
    arith.push_back(s.arith_confined.percent());
    load.push_back(s.load_confined.percent());
    t.add_row({app, TextTable::num(s.arith_confined.percent(), 1),
               TextTable::num(s.load_confined.percent(), 1)});
  }
  t.add_row({"AVG", TextTable::num(avg(arith), 1), TextTable::num(avg(load), 1)});
  std::printf("%s\n", t.render().c_str());
  footer_shape(avg(load) > 30.0 && avg(arith) > 20.0,
               "carry confinement is common enough to make CR worthwhile");
  return 0;
}
