// Figure 8 — decrease in copy percentage due to the BR scheme
// (branches steered to the flags producer's cluster).
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 8 - copy percentage: 8_8_8 vs 8_8_8+BR",
         "BR steers 19.5% of instructions and cuts copies to 10.8%, +9% perf");

  const std::vector<SteeringConfig> cfgs = {steering_888(), steering_888_br()};
  TextTable t({"app", "8_8_8 copies%", "+BR copies%"});
  std::vector<double> base_copies, br_copies, br_steered, br_gain;
  for (const std::string& app : spec_names()) {
    const MultiRun run = run_app_configs(spec_profile(app), cfgs);
    const double c0 = 100.0 * run.configs[0].copy_frac();
    const double c1 = 100.0 * run.configs[1].copy_frac();
    base_copies.push_back(c0);
    br_copies.push_back(c1);
    br_steered.push_back(100.0 * run.configs[1].helper_frac());
    br_gain.push_back((run.configs[1].speedup_vs(run.baseline) - 1.0) * 100.0);
    t.add_row({app, TextTable::num(c0, 1), TextTable::num(c1, 1)});
  }
  t.add_row({"AVG", TextTable::num(avg(base_copies), 1), TextTable::num(avg(br_copies), 1)});
  std::printf("%s\n", t.render().c_str());
  std::printf("+BR steers %.1f%% of instructions, perf +%.1f%% (paper: 19.5%%, +9%%)\n",
              avg(br_steered), avg(br_gain));
  footer_shape(avg(br_copies) < avg(base_copies),
               "BR simultaneously raises helper occupancy and cuts copies");
  return 0;
}
