// Section 3.7 — Instruction Splitting for Imbalance Reduction (IR):
// NREADY imbalance before/after, steered fraction, copies, performance, and
// the no-destination fine-tuned variant.
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Section 3.7 - IR: instruction splitting for imbalance reduction",
         "pre-IR imbalance: ~22% wide-to-narrow vs ~2% narrow-to-wide. "
         "IR: +22.1% perf, 72.4% steered, imbalance -> 2.3%. "
         "IR(nodest): +21.3%, 63.6% steered, copies 36.9% -> 24.4%");

  const std::vector<SteeringConfig> cfgs = {steering_888_br_lr(), steering_cp(),
                                            steering_ir(), steering_ir_nodest()};
  struct Row {
    double perf = 0, steered = 0, copies = 0, w2n = 0, n2w = 0, splits = 0;
  };
  std::vector<Row> rows(cfgs.size());
  for (const std::string& app : spec_names()) {
    const MultiRun run = run_app_configs(spec_profile(app), cfgs);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      const SimResult& r = run.configs[i];
      rows[i].perf += (r.speedup_vs(run.baseline) - 1.0) * 100.0;
      rows[i].steered += 100.0 * r.helper_frac();
      rows[i].copies += 100.0 * r.copy_frac();
      rows[i].w2n += r.nready_w2n_pct();
      rows[i].n2w += r.nready_n2w_pct();
      rows[i].splits += static_cast<double>(r.split_uops);
    }
  }
  const double n = static_cast<double>(spec_names().size());
  TextTable t({"config", "perf+%", "steered%", "copies%", "NREADY w2n%",
               "NREADY n2w%", "splits/app"});
  const char* names[] = {"8_8_8+BR+LR", "pre-IR (CP)", "+IR", "+IR(nodest)"};
  for (std::size_t i = 0; i < cfgs.size(); ++i)
    t.add_row({names[i], TextTable::num(rows[i].perf / n, 1),
               TextTable::num(rows[i].steered / n, 1),
               TextTable::num(rows[i].copies / n, 1),
               TextTable::num(rows[i].w2n / n, 1), TextTable::num(rows[i].n2w / n, 1),
               TextTable::num(rows[i].splits / n, 0)});
  std::printf("%s\n", t.render().c_str());
  std::printf("note: in this implementation CR already drains most of the\n"
              "wide-to-narrow imbalance, so IR's incremental headroom is\n"
              "smaller than the paper's (see EXPERIMENTS.md).\n");

  const bool shape = rows[0].w2n > 3.0 * rows[0].n2w &&  // helper underutilized pre-CR
                     rows[2].w2n < rows[1].w2n &&        // IR reduces w2n imbalance
                     rows[3].copies < rows[2].copies &&  // nodest cuts copies
                     rows[2].steered >= rows[1].steered && // IR raises occupancy
                     rows[2].splits > 0;
  footer_shape(shape,
               "wide-to-narrow imbalance dominates while the helper is "
               "underutilized; splitting raises occupancy and reduces it; the "
               "nodest variant trades steering for fewer copies");
  return 0;
}
