// Simulator micro-benchmarks (google-benchmark): trace generation rate,
// pipeline simulation rate, and predictor lookup cost. These guard the
// repository's own performance, not a paper figure.
#include <benchmark/benchmark.h>

#include <span>

#include "bbcache/bb_cache.hpp"
#include "core/cluster_epoch.hpp"
#include "predict/width_predictor.hpp"
#include "util/slot_schedule.hpp"
#include "sample/spec.hpp"
#include "sample/windowed.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace hcsim;

void BM_TraceGeneration(benchmark::State& state) {
  const WorkloadProfile& prof = spec_profile("gcc");
  const u64 n = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    Trace t = generate_trace(prof, n);
    benchmark::DoNotOptimize(t.records.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_TraceGeneration)->Arg(10000)->Arg(100000);

void BM_PipelineBaseline(benchmark::State& state) {
  const Trace& t = cached_trace(spec_profile("gcc"), static_cast<u64>(state.range(0)));
  const MachineConfig cfg = monolithic_baseline();
  for (auto _ : state) {
    SimResult r = simulate(cfg, t);
    benchmark::DoNotOptimize(r.final_tick);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PipelineBaseline)->Arg(10000)->Arg(100000);

void BM_PipelineBatched(benchmark::State& state) {
  // The intended hot path: a decode cache shared across runs (as the sweep
  // drivers share it across a config's workloads) + the batched SoA feed.
  // After the first iteration every template replays from the cache.
  const Trace& t = cached_trace(spec_profile("gcc"), static_cast<u64>(state.range(0)));
  const MachineConfig cfg = monolithic_baseline();
  DecodeCache cache(/*enabled=*/true);
  for (auto _ : state) {
    Pipeline p(cfg, t.program, &cache);
    p.feed(std::span<const TraceRecord>(t.records));
    SimResult r = p.finish();
    benchmark::DoNotOptimize(r.final_tick);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PipelineBatched)->Arg(10000)->Arg(100000);

void BM_PipelineBatchedNoCache(benchmark::State& state) {
  // Cache-disabled twin of BM_PipelineBatched: identical feed path, but
  // every record re-cracks its template (the HCSIM_BBCACHE=0 debug mode).
  // The gap between the two is the decode cache's contribution alone.
  const Trace& t = cached_trace(spec_profile("gcc"), static_cast<u64>(state.range(0)));
  const MachineConfig cfg = monolithic_baseline();
  DecodeCache cache(/*enabled=*/false);
  for (auto _ : state) {
    Pipeline p(cfg, t.program, &cache);
    p.feed(std::span<const TraceRecord>(t.records));
    SimResult r = p.finish();
    benchmark::DoNotOptimize(r.final_tick);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PipelineBatchedNoCache)->Arg(10000)->Arg(100000);

void BM_PipelineHelperIr(benchmark::State& state) {
  const Trace& t = cached_trace(spec_profile("gcc"), static_cast<u64>(state.range(0)));
  const MachineConfig cfg = helper_machine(steering_ir());
  for (auto _ : state) {
    SimResult r = simulate(cfg, t);
    benchmark::DoNotOptimize(r.final_tick);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PipelineHelperIr)->Arg(10000)->Arg(100000);

void BM_PipelineStreamed(benchmark::State& state) {
  // Fused generation + simulation through the streaming cursor: the path
  // long runs take (no materialized trace), including the generator cost.
  const WorkloadProfile& prof = spec_profile("gcc");
  const MachineConfig cfg = monolithic_baseline();
  const u64 n = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    SimResult r = simulate_streamed(cfg, prof, n);
    benchmark::DoNotOptimize(r.final_tick);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PipelineStreamed)->Arg(10000)->Arg(100000);

void BM_PipelineSampled(benchmark::State& state) {
  // Warm-up/measure sampled simulation: 5 windows of 1% warm-up + 4% measure
  // feed ~25% of the trace. Items processed counts every trace µop *covered*
  // (simulated or skipped), so the ratio to BM_PipelineStreamed is the
  // sampling speedup at this schedule.
  const WorkloadProfile& prof = spec_profile("gcc");
  const MachineConfig cfg = monolithic_baseline();
  const u64 n = static_cast<u64>(state.range(0));
  sample::SampleSpec spec;
  spec.warmup = n / 100;
  spec.measure = n / 25;
  spec.period = n / 5;
  for (auto _ : state) {
    sample::SampledResult r = sample::simulate_sampled(cfg, prof, n, spec);
    benchmark::DoNotOptimize(r.total.final_tick);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PipelineSampled)->Arg(10000)->Arg(100000);

void BM_ClusterEpoch(benchmark::State& state) {
  // The fused per-cluster resource engine alone: a synthetic dispatch
  // stream shaped like the pipeline's (mostly-forward ticks, short source
  // delays, width 3 / queue 32 / 2-tick cycles — the wide cluster).
  ClusterEpoch e;
  e.init(/*issue_width=*/3, /*queue_size=*/32, /*copy_ports=*/2,
         /*cycle_ticks=*/2);
  Tick from = 0;
  u32 x = 1;
  u64 sum = 0;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    from += x % 3;
    const auto d = e.dispatch(from, from + (x >> 16) % 8);
    sum += d.issue;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ClusterEpoch);

void BM_SlotScheduleRef(benchmark::State& state) {
  // The legacy triple (SlotSchedule + QueueTracker + copy SlotSchedule)
  // under the identical dispatch stream: the per-probe reference for
  // BM_ClusterEpoch, kept alive by the HCSIM_EPOCH=0 path.
  SlotSchedule slots(3, 2);
  QueueTracker queue(32);
  Tick from = 0;
  u32 x = 1;
  u64 sum = 0;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    from += x % 3;
    const Tick qdisp = queue.earliest_dispatch(from);
    const Tick src = from + (x >> 16) % 8;
    const Tick issue = slots.reserve(src > qdisp ? src : qdisp);
    queue.add(issue);
    sum += issue;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_SlotScheduleRef);

void BM_WidthPredictorTrain(benchmark::State& state) {
  WidthPredictor p;
  u32 x = 1;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    p.train_result(x & 0xFFFF, (x >> 20) & 1);
    benchmark::DoNotOptimize(p.predict_result(x & 0xFFFF));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_WidthPredictorTrain);

}  // namespace

BENCHMARK_MAIN();
